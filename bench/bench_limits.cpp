//===- bench_limits.cpp - resource-governance overhead and payoff --------------===//
//
// Two questions about docs/ROBUSTNESS.md's budgets:
//
//  1. Overhead: what does an armed-but-never-tripping meter cost on a
//     normal run? (Expected: noise — one branch per governed site.)
//  2. Payoff: how fast does a deadline tame wlgen's pathological
//     programs, and what does the degraded answer look like?
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "wlgen/WorkloadGen.h"

#include <chrono>

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

void printGovernedSweep() {
  printHeader("Resource governance",
              "governed vs. ungoverned cost on pathological programs");
  std::printf("%-22s %10s %10s %8s %12s\n", "configuration", "time-ms",
              "ig-nodes", "pairs", "degradations");
  struct Config {
    const char *Name;
    unsigned Depth;
    uint64_t TimeoutMs;
  };
  // Depth 7+ ungoverned takes seconds to minutes (3^Depth contexts);
  // keep the ungoverned rows small and let the deadline handle the big
  // ones.
  const Config Configs[] = {
      {"depth 4, no limits", 4, 0},   {"depth 5, no limits", 5, 0},
      {"depth 5, 100ms", 5, 100},     {"depth 7, 100ms", 7, 100},
      {"depth 8, 200ms", 8, 200},
  };
  for (const Config &C : Configs) {
    std::string Src = wlgen::pathologicalSource(C.Depth);
    pta::Analyzer::Options Opts;
    Opts.Limits.TimeoutMs = C.TimeoutMs;
    auto T0 = std::chrono::steady_clock::now();
    Pipeline P = Pipeline::analyzeSource(Src, Opts);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    if (!P.Analysis.Analyzed) {
      std::printf("%-22s <failed>\n", C.Name);
      continue;
    }
    std::printf("%-22s %10.1f %10u %8zu %12zu\n", C.Name, Ms,
                P.Analysis.IG->numNodes(),
                P.Analysis.MainOut ? P.Analysis.MainOut->size() : 0,
                P.Analysis.Degradations.size());
  }
  std::printf("\n");
}

// Armed meter that never trips: measures pure governance overhead on a
// well-behaved corpus program.
void BM_CorpusGovernedVsNot(benchmark::State &State) {
  const corpus::CorpusProgram &CP = corpus::corpus()[0];
  pta::Analyzer::Options Opts;
  if (State.range(0))
    Opts.Limits.TimeoutMs = 3600000; // 1h: armed, never trips
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(CP.Source, Opts);
    benchmark::DoNotOptimize(P.Analysis.Analyzed);
  }
}
BENCHMARK(BM_CorpusGovernedVsNot)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_PathologicalDeadline(benchmark::State &State) {
  std::string Src =
      wlgen::pathologicalSource(static_cast<unsigned>(State.range(0)));
  pta::Analyzer::Options Opts;
  Opts.Limits.TimeoutMs = 100;
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(Src, Opts);
    benchmark::DoNotOptimize(P.Analysis.Degradations.size());
  }
}
BENCHMARK(BM_PathologicalDeadline)
    ->Arg(5)
    ->Arg(7)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printGovernedSweep();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "limits"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
