//===- bench_livc.cpp - the Sec. 6 'livc' function-pointer study ---------------===//
//
// Regenerates the paper's 'livc' experiment: a Livermore-loops-style
// program with 82 functions, three global arrays of 24 function
// pointers each (72 address-taken functions), and three indirect call
// sites inside loops. The paper reports invocation graph sizes of
//
//     precise (Figure 5 algorithm): 203 nodes
//     all-functions baseline:       619 nodes
//     address-taken baseline:       589 nodes
//
// Our generated livc matches those proportions by construction and the
// exact direct-call structure determines the absolute counts; the
// ordering precise < address-taken < all-functions is the result.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "clients/CallGraphBaselines.h"
#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

void printStudy() {
  printHeader("'livc' study (Sec. 6)",
              "Function-pointer call graph instantiation strategies");

  std::string Src = wlgen::livcSource(82, 3, 24);
  Pipeline P = Pipeline::frontend(Src);
  if (!P.Prog) {
    std::fprintf(stderr, "FATAL: livc source failed to lower\n");
    std::abort();
  }
  auto Cmp = clients::CallGraphComparison::compute(*P.Prog);

  std::printf("%-28s %10s %10s\n", "strategy", "IG nodes", "paper");
  std::printf("%-28s %10u %10s\n", "precise (points-to, Fig. 5)",
              Cmp.PreciseNodes, "203");
  std::printf("%-28s %10u %10s\n", "address-taken baseline",
              Cmp.AddressTakenNodes, "589");
  std::printf("%-28s %10u %10s\n", "all-functions baseline",
              Cmp.AllFunctionsNodes, "619");
  std::printf("\nratios vs precise: address-taken %.2fx, all-functions "
              "%.2fx\n(paper: 2.90x and 3.05x — the naive strategies "
              "yield very imprecise graphs)\n\n",
              static_cast<double>(Cmp.AddressTakenNodes) / Cmp.PreciseNodes,
              static_cast<double>(Cmp.AllFunctionsNodes) / Cmp.PreciseNodes);
}

void BM_LivcPrecise(benchmark::State &State) {
  std::string Src = wlgen::livcSource(82, 3, 24);
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(Src);
    benchmark::DoNotOptimize(P.Analysis.IG);
  }
}
BENCHMARK(BM_LivcPrecise)->Unit(benchmark::kMillisecond);

void BM_LivcAllFunctions(benchmark::State &State) {
  std::string Src = wlgen::livcSource(82, 3, 24);
  pta::Analyzer::Options Opts;
  Opts.FnPtr = pta::FnPtrMode::AllFunctions;
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(Src, Opts);
    benchmark::DoNotOptimize(P.Analysis.IG);
  }
}
BENCHMARK(BM_LivcAllFunctions)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printStudy();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "livc"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
