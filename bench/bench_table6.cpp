//===- bench_table6.cpp - Table 6: invocation graph statistics -----------------===//
//
// Regenerates Table 6: per benchmark, the invocation graph node count,
// static call sites, functions actually called, Recursive and
// Approximate node counts, and the node-per-call-site and
// node-per-function averages.
//
// Paper shape: the average number of invocation graph nodes per call
// site stays small (paper overall: 1.45, max 2.53) — explicit
// invocation chains are practical despite the theoretical exponential.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "clients/IGStats.h"

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::clients;

namespace {

void printTable() {
  printHeader("Table 6", "Invocation Graph Statistics");
  std::printf("%-10s %8s %9s %6s %4s %4s %7s %7s\n", "Benchmark",
              "ig-nodes", "callsites", "#fns", "R", "A", "Avgc", "Avgf");
  double MaxAvgc = 0;
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = analyzeCorpus(CP);
    auto S = IGStats::compute(*P.Prog, P.Analysis);
    std::printf("%-10s %8u %9u %6u %4u %4u %7.2f %7.2f\n", CP.Name,
                S.Nodes, S.CallSites, S.Functions, S.Recursive,
                S.Approximate, S.avgPerCallSite(), S.avgPerFunction());
    MaxAvgc = std::max(MaxAvgc, S.avgPerCallSite());
  }
  std::printf("\nMax avg nodes/call-site: %.2f (paper max: 2.53; small "
              "values mean the\nexplicit invocation graph stays practical)"
              "\n\n",
              MaxAvgc);
}

void BM_FullAnalysis(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(CP.Source);
    benchmark::DoNotOptimize(P.Analysis.Analyzed);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_FullAnalysis)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printTable();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "table6"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
