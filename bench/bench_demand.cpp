//===- bench_demand.cpp - demand-vs-exhaustive query speedup -------------------===//
//
// The demand engine's reason to exist (docs/DEMAND.md): a single
// points_to/alias question about main's final state should not pay for
// the whole exhaustive analysis. The engine seeds the Relevance
// liveness pass with the query's roots and runs the ordinary analyzer
// with Options::LiveStmts installed; DemandTest proves the answers are
// byte-equal, this binary measures the payoff.
//
// Method: on incrstress (the corpus pathological case — over a million
// visited statements exhaustively, while main's own p/q never escape)
// compare
//   exhaustive: Pipeline::analyzeSource + ResultSnapshot::capture
//   demand:     DemandEngine::query against a warm engine
// with the median of three runs each. The engine's documented cost
// model (DemandQuery.h) is burst-shaped: frontend, engine construction,
// and the Relevance liveness structures are paid once per program and
// amortize across the query set, so the per-query number is the warm
// one; the one-time setup (frontend + engine + first query, which
// forces the Relevance build) is measured and reported separately.
// Gates (exit 1 so CI catches a regressed pruning pass): every
// incrstress query must be answered on the demand path, the median
// warm-query speedup must be >= 5x, and the visited-statement ratio
// must stay < 0.5.
//
// The corpus sweep and the wlgen queryWorkload sweep then report how
// often demand answers vs. falls back (with which recorded reasons)
// across realistic and synthetic query mixes. --demand-bench-json=FILE
// (or MCPTA_DEMAND_BENCH_JSON) exports the whole table as a
// `mcpta-demand-bench-v1` document.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "demand/DemandQuery.h"
#include "serve/Serialize.h"
#include "wlgen/WorkloadGen.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

/// Analysis options for both sides. Per-statement set recording would
/// gate every demand query ("stmt-scope" needs it off), and the demand
/// run forces it off anyway; keep the exhaustive side symmetric.
pta::Analyzer::Options benchOptions() {
  pta::Analyzer::Options Opts;
  Opts.RecordStmtSets = false;
  return Opts;
}

/// Extracts `--demand-bench-json=FILE` before google-benchmark sees it,
/// mirroring BenchUtil::statsJsonPath. MCPTA_DEMAND_BENCH_JSON is the
/// env fallback for CI.
std::string demandBenchJsonPath(int &argc, char **argv) {
  std::string Path;
  int W = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--demand-bench-json=", 0) == 0) {
      Path = Arg.substr(std::strlen("--demand-bench-json="));
      continue;
    }
    if (Arg == "--demand-bench-json" && I + 1 < argc) {
      Path = argv[++I];
      continue;
    }
    argv[W++] = argv[I];
  }
  argc = W;
  if (Path.empty())
    if (const char *Env = std::getenv("MCPTA_DEMAND_BENCH_JSON"))
      Path = Env;
  return Path;
}

std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  Out += support::Telemetry::jsonEscape(S);
  Out += "\"";
  return Out;
}

struct QueryRow {
  std::string Label;
  demand::Query Q;
  std::string Strategy;
  std::string FallbackReason;
  double DemandMs = 0;
  double Speedup = 0;
  uint64_t Visited = 0, Skipped = 0;
  double VisitedRatio = 0;
};

struct CorpusRow {
  std::string Program;
  unsigned Queries = 0, Answered = 0, Fallbacks = 0;
  std::set<std::string> Reasons;
};

struct WorkloadRow {
  uint64_t Seed = 0;
  unsigned Queries = 0, Hot = 0;
  unsigned HotAnswered = 0, ColdAnswered = 0, Fallbacks = 0;
  double TotalMs = 0;
};

/// One warm query against an existing engine.
demand::Answer demandRun(demand::DemandEngine &Engine,
                         const demand::Query &Q, double &MsOut) {
  Clock::time_point T0 = Clock::now();
  demand::Answer A = Engine.query(Q);
  MsOut = msSince(T0);
  if (!A.Ok) {
    std::fprintf(stderr, "FATAL: query failed: %s\n", A.Error.c_str());
    std::abort();
  }
  return A;
}

/// The exhaustive side of the comparison: what serve's analyze path
/// does to be able to answer any query at all.
double exhaustiveRun(const std::string &Source,
                     const pta::Analyzer::Options &Opts) {
  Clock::time_point T0 = Clock::now();
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  if (P.Diags.hasErrors() || !P.Analysis.Analyzed) {
    std::fprintf(stderr, "FATAL: bench source failed to analyze:\n%s",
                 P.Diags.dump().c_str());
    std::abort();
  }
  serve::ResultSnapshot S = serve::ResultSnapshot::capture(
      *P.Prog, P.Analysis, serve::optionsFingerprint(Opts));
  benchmark::DoNotOptimize(S.IG.size());
  return msSince(T0);
}

/// Up to \p Cap queryable display names for a corpus program: globals
/// first, then main's params and locals, skipping simplifier temps.
std::vector<std::string> queryNames(const simple::Program &Prog,
                                    size_t Cap) {
  std::vector<std::string> Names;
  std::set<std::string> Seen;
  auto Add = [&](const std::string &N) {
    if (Names.size() < Cap && !N.empty() && N[0] != '.' &&
        Seen.insert(N).second)
      Names.push_back(N);
  };
  for (const cfront::VarDecl *G : Prog.globals())
    Add(G->name());
  for (const simple::FunctionIR &F : Prog.functions())
    if (F.Decl && F.Decl->name() == "main") {
      for (const cfront::VarDecl *P : F.Decl->params())
        Add(P->name());
      for (const cfront::VarDecl *L : F.Locals)
        Add(L->name());
    }
  return Names;
}

struct BenchReport {
  double ExhaustiveMs = 0;
  uint64_t ExhaustiveVisits = 0;
  /// One-time demand setup: frontend + engine construction + the first
  /// query (which forces the Relevance build). Reported, not gated.
  double SetupMs = 0;
  std::vector<QueryRow> Incrstress;
  double MedianSpeedup = 0;
  double WorstVisitedRatio = 0;
  std::vector<CorpusRow> Corpus;
  std::vector<WorkloadRow> Workloads;
};

int runComparison(BenchReport &Report) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  if (!CP) {
    std::fprintf(stderr, "FATAL: corpus program 'incrstress' missing\n");
    return 1;
  }
  const std::string Source = CP->Source;
  const pta::Analyzer::Options Opts = benchOptions();

  printHeader("Demand-driven queries",
              "single query: liveness-pruned run vs. exhaustive analysis");
  std::printf("program: %s (%u lines)\n\n", CP->Name, countLines(CP->Source));

  // Exhaustive side: wall time (median of 3) and the visited-statement
  // denominator for the pruning-ratio gate.
  {
    std::vector<double> Ms;
    for (int I = 0; I < 3; ++I)
      Ms.push_back(exhaustiveRun(Source, Opts));
    Report.ExhaustiveMs = medianOf(Ms);

    support::Telemetry T;
    pta::Analyzer::Options Traced = Opts;
    Traced.Telem = &T;
    Pipeline P = Pipeline::analyzeSource(Source, Traced);
    benchmark::DoNotOptimize(P.Analysis.Analyzed);
    Report.ExhaustiveVisits = T.countersSnapshot()["pta.stmt_visits"];
  }
  // Demand side: one engine per program, the burst shape serve's query
  // cache amortizes toward. The setup line is everything the first
  // request additionally pays.
  Clock::time_point Setup0 = Clock::now();
  Pipeline FE = Pipeline::frontend(Source);
  if (!FE.Prog) {
    std::fprintf(stderr, "FATAL: bench source failed the frontend:\n%s",
                 FE.Diags.dump().c_str());
    return 1;
  }
  demand::DemandOptions DO;
  DO.Analyzer = Opts;
  demand::DemandEngine Engine(*FE.Prog, DO);
  {
    double FirstMs = 0;
    demandRun(Engine, demand::Query::pointsTo("p"), FirstMs);
    Report.SetupMs = msSince(Setup0);
  }

  std::printf("exhaustive: %.1f ms, %llu statement visits\n", Report.ExhaustiveMs,
              static_cast<unsigned long long>(Report.ExhaustiveVisits));
  std::printf("demand setup (frontend + engine + first query): %.1f ms\n\n",
              Report.SetupMs);
  std::printf("%-16s %10s %9s %9s %9s %9s  %s\n", "query", "demand(ms)",
              "speedup", "visited", "skipped", "ratio", "strategy");

  const std::pair<const char *, demand::Query> Queries[] = {
      {"points_to p", demand::Query::pointsTo("p")},
      {"points_to q", demand::Query::pointsTo("q")},
      {"alias *p:*q", demand::Query::alias("*p", "*q")},
      {"alias p:q", demand::Query::alias("p", "q")},
  };
  std::vector<double> Speedups;
  for (const auto &QP : Queries) {
    QueryRow R;
    R.Label = QP.first;
    R.Q = QP.second;
    std::vector<double> Ms;
    demand::Answer A;
    for (int I = 0; I < 3; ++I) {
      double OneMs = 0;
      A = demandRun(Engine, R.Q, OneMs);
      Ms.push_back(OneMs);
    }
    R.DemandMs = medianOf(Ms);
    R.Strategy = A.Strategy;
    R.FallbackReason = A.FallbackReason;
    R.Visited = A.VisitedStmts;
    R.Skipped = A.SkippedStmts;
    // Trivial answers (distinct 0-star roots) take ~0 ms; clamp so the
    // ratio stays finite and readable.
    R.Speedup = Report.ExhaustiveMs / std::max(R.DemandMs, 0.01);
    R.VisitedRatio = Report.ExhaustiveVisits
                         ? static_cast<double>(R.Visited) /
                               static_cast<double>(Report.ExhaustiveVisits)
                         : 1.0;
    std::printf("%-16s %10.2f %8.1fx %9llu %9llu %9.4f  %s\n", R.Label.c_str(),
                R.DemandMs, R.Speedup,
                static_cast<unsigned long long>(R.Visited),
                static_cast<unsigned long long>(R.Skipped), R.VisitedRatio,
                R.Strategy.c_str());
    Speedups.push_back(R.Speedup);
    Report.Incrstress.push_back(std::move(R));
  }
  Report.MedianSpeedup = medianOf(Speedups);
  for (const QueryRow &R : Report.Incrstress)
    Report.WorstVisitedRatio = std::max(Report.WorstVisitedRatio,
                                        R.VisitedRatio);
  std::printf("\nmedian query speedup: %.1fx (requirement: >=5x), worst "
              "visited ratio: %.4f (requirement: <0.5)\n\n",
              Report.MedianSpeedup, Report.WorstVisitedRatio);

  // The regression gates. incrstress is built so main's p/q never have
  // their addresses taken: if any of these queries leaves the demand
  // path, or the pruned run stops being dramatically smaller, the
  // liveness pass has regressed.
  for (const QueryRow &R : Report.Incrstress)
    if (R.Strategy != "demand") {
      std::fprintf(stderr,
                   "FATAL: incrstress '%s' fell back to %s (reason %s)\n",
                   R.Label.c_str(), R.Strategy.c_str(),
                   R.FallbackReason.c_str());
      return 1;
    }
  if (Report.MedianSpeedup < 5.0) {
    std::fprintf(stderr,
                 "FATAL: median demand speedup %.1fx < required 5x\n",
                 Report.MedianSpeedup);
    return 1;
  }
  if (Report.WorstVisitedRatio >= 0.5) {
    std::fprintf(stderr,
                 "FATAL: visited-statement ratio %.4f >= required 0.5\n",
                 Report.WorstVisitedRatio);
    return 1;
  }

  // Corpus sweep: how the strategy splits across every embedded
  // program — small programs mostly answer on the demand path, fnptr-
  // and recursion-heavy ones fall back with a recorded reason.
  std::printf("%-14s %8s %9s %10s  %s\n", "corpus", "queries", "answered",
              "fallbacks", "reasons");
  for (const corpus::CorpusProgram &C : corpus::corpus()) {
    Pipeline FE = Pipeline::frontend(C.Source);
    if (!FE.Prog) {
      std::fprintf(stderr, "FATAL: corpus '%s' failed the frontend:\n%s",
                   C.Name, FE.Diags.dump().c_str());
      return 1;
    }
    demand::DemandOptions DO;
    DO.Analyzer = Opts;
    demand::DemandEngine Engine(*FE.Prog, DO);
    CorpusRow Row;
    Row.Program = C.Name;
    std::vector<demand::Query> Qs;
    std::vector<std::string> Names = queryNames(*FE.Prog, 4);
    for (const std::string &N : Names)
      Qs.push_back(demand::Query::pointsTo(N));
    if (Names.size() >= 2)
      Qs.push_back(demand::Query::alias("*" + Names[0], "*" + Names[1]));
    for (const demand::Query &Q : Qs) {
      demand::Answer A = Engine.query(Q);
      ++Row.Queries;
      if (A.answeredByDemand()) {
        ++Row.Answered;
      } else {
        ++Row.Fallbacks;
        if (A.FallbackReason.empty()) {
          std::fprintf(stderr,
                       "FATAL: corpus '%s' fallback without a reason\n",
                       C.Name);
          return 1;
        }
        Row.Reasons.insert(A.FallbackReason);
      }
    }
    std::string Reasons;
    for (const std::string &R : Row.Reasons)
      Reasons += (Reasons.empty() ? "" : ",") + R;
    std::printf("%-14s %8u %9u %10u  %s\n", Row.Program.c_str(), Row.Queries,
                Row.Answered, Row.Fallbacks,
                Reasons.empty() ? "-" : Reasons.c_str());
    Report.Corpus.push_back(std::move(Row));
  }
  std::printf("\n");

  // queryWorkload sweep: synthetic (program, query-set) pairs with the
  // generator's hot/cold skew, answered through one warm engine per
  // program — the serve burst shape, where Relevance and the fallback
  // snapshot amortize across the set.
  std::printf("%-10s %8s %6s %13s %14s %10s %10s\n", "workload", "queries",
              "hot", "hot_answered", "cold_answered", "fallbacks",
              "total(ms)");
  for (uint64_t Seed : {1, 2, 3}) {
    wlgen::QueryWorkloadConfig Cfg;
    Cfg.Seed = Seed;
    wlgen::QueryWorkload W = wlgen::queryWorkload(Cfg);
    Pipeline FE = Pipeline::frontend(W.Source);
    if (!FE.Prog) {
      std::fprintf(stderr, "FATAL: workload seed %llu failed the frontend\n",
                   static_cast<unsigned long long>(Seed));
      return 1;
    }
    demand::DemandOptions DO;
    DO.Analyzer = Opts;
    demand::DemandEngine Engine(*FE.Prog, DO);
    WorkloadRow Row;
    Row.Seed = Seed;
    Clock::time_point T0 = Clock::now();
    for (const wlgen::QuerySpec &QS : W.Queries) {
      demand::Query Q = QS.K == wlgen::QuerySpec::Kind::PointsTo
                            ? demand::Query::pointsTo(QS.Name)
                            : demand::Query::alias(QS.A, QS.B);
      demand::Answer A = Engine.query(Q);
      ++Row.Queries;
      Row.Hot += QS.Hot;
      if (A.answeredByDemand())
        ++(QS.Hot ? Row.HotAnswered : Row.ColdAnswered);
      else
        ++Row.Fallbacks;
    }
    Row.TotalMs = msSince(T0);
    std::printf("seed %-5llu %8u %6u %13u %14u %10u %10.1f\n",
                static_cast<unsigned long long>(Row.Seed), Row.Queries,
                Row.Hot, Row.HotAnswered, Row.ColdAnswered, Row.Fallbacks,
                Row.TotalMs);
    Report.Workloads.push_back(Row);
  }
  std::printf("\n");
  return 0;
}

bool writeDemandBenchJson(const std::string &Path,
                          const BenchReport &Report) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write demand bench JSON to '%s'\n",
                 Path.c_str());
    return false;
  }
  OS << "{\"format\":\"mcpta-demand-bench-v1\",\"tool_version\":"
     << jsonStr(version::kToolVersion) << ",\"incrstress\":{"
     << "\"exhaustive_ms\":" << Report.ExhaustiveMs
     << ",\"exhaustive_stmt_visits\":" << Report.ExhaustiveVisits
     << ",\"demand_setup_ms\":" << Report.SetupMs << ",\"queries\":[";
  for (size_t I = 0; I < Report.Incrstress.size(); ++I) {
    const QueryRow &R = Report.Incrstress[I];
    if (I)
      OS << ",";
    OS << "{\"query\":" << jsonStr(R.Label) << ",\"strategy\":"
       << jsonStr(R.Strategy) << ",\"demand_ms\":" << R.DemandMs
       << ",\"speedup\":" << R.Speedup << ",\"visited_stmts\":" << R.Visited
       << ",\"skipped_stmts\":" << R.Skipped
       << ",\"visited_ratio\":" << R.VisitedRatio << "}";
  }
  OS << "],\"median_speedup\":" << Report.MedianSpeedup
     << ",\"worst_visited_ratio\":" << Report.WorstVisitedRatio
     << "},\"corpus\":[";
  for (size_t I = 0; I < Report.Corpus.size(); ++I) {
    const CorpusRow &R = Report.Corpus[I];
    if (I)
      OS << ",";
    OS << "{\"program\":" << jsonStr(R.Program) << ",\"queries\":"
       << R.Queries << ",\"demand_answered\":" << R.Answered
       << ",\"fallbacks\":" << R.Fallbacks << ",\"fallback_reasons\":[";
    bool First = true;
    for (const std::string &Reason : R.Reasons) {
      if (!First)
        OS << ",";
      First = false;
      OS << jsonStr(Reason);
    }
    OS << "]}";
  }
  OS << "],\"workloads\":[";
  for (size_t I = 0; I < Report.Workloads.size(); ++I) {
    const WorkloadRow &R = Report.Workloads[I];
    if (I)
      OS << ",";
    OS << "{\"seed\":" << R.Seed << ",\"queries\":" << R.Queries
       << ",\"hot\":" << R.Hot << ",\"hot_answered\":" << R.HotAnswered
       << ",\"cold_answered\":" << R.ColdAnswered
       << ",\"fallbacks\":" << R.Fallbacks
       << ",\"total_demand_ms\":" << R.TotalMs << "}";
  }
  OS << "],\"gates\":{\"median_speedup_min\":5.0,\"visited_ratio_max\":0.5,"
     << "\"pass\":true}}\n";
  return bool(OS);
}

void BM_ExhaustiveAnalyze(benchmark::State &State) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  const pta::Analyzer::Options Opts = benchOptions();
  for (auto _ : State)
    benchmark::DoNotOptimize(exhaustiveRun(CP->Source, Opts));
}
BENCHMARK(BM_ExhaustiveAnalyze)->Unit(benchmark::kMillisecond);

void BM_DemandQueryCold(benchmark::State &State) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  const demand::Query Q = demand::Query::pointsTo("p");
  for (auto _ : State) {
    Pipeline FE = Pipeline::frontend(CP->Source);
    demand::DemandOptions DO;
    DO.Analyzer = benchOptions();
    demand::DemandEngine Engine(*FE.Prog, DO);
    benchmark::DoNotOptimize(Engine.query(Q).VisitedStmts);
  }
}
BENCHMARK(BM_DemandQueryCold)->Unit(benchmark::kMillisecond);

void BM_DemandQueryWarm(benchmark::State &State) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  Pipeline FE = Pipeline::frontend(CP->Source);
  demand::DemandOptions DO;
  DO.Analyzer = benchOptions();
  demand::DemandEngine Engine(*FE.Prog, DO);
  const demand::Query P = demand::Query::pointsTo("p");
  const demand::Query A = demand::Query::alias("*p", "*q");
  for (auto _ : State) {
    benchmark::DoNotOptimize(Engine.query(P).VisitedStmts);
    benchmark::DoNotOptimize(Engine.query(A).Aliased);
  }
}
BENCHMARK(BM_DemandQueryWarm)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string DemandJson = demandBenchJsonPath(argc, argv);
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  BenchReport Report;
  int RC = runComparison(Report);
  if (RC != 0)
    return RC;
  if (!DemandJson.empty() && !writeDemandBenchJson(DemandJson, Report))
    return 1;
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "demand"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
