//===- bench_table5.cpp - Table 5: general points-to statistics ----------------===//
//
// Regenerates Table 5: total points-to pairs summed over every SIMPLE
// basic statement, classified by memory region (stack-to-stack,
// stack-to-heap, heap-to-heap, heap-to-stack), with the average and
// maximum pairs valid at a statement.
//
// Paper shape: the Heap-To-Stack column is zero for every benchmark —
// the empirical basis for decoupling stack and heap analyses (Sec. 6).
// Pairs targeting static storage (string literals, functions) are
// reported separately; see GeneralStats.h.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "clients/GeneralStats.h"

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::clients;

namespace {

void printTable() {
  printHeader("Table 5", "General Points-to Statistics");
  std::printf("%-10s %10s %10s %10s %10s %8s %6s %6s\n", "Benchmark",
              "StackTo", "StackTo", "HeapTo", "HeapTo", "ToStatic", "Avg",
              "Max");
  std::printf("%-10s %10s %10s %10s %10s %8s %6s %6s\n", "", "Stack",
              "Heap", "Heap", "Stack", "", "", "/stmt");
  bool HeapToStackAllZero = true;
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = analyzeCorpus(CP);
    auto G = GeneralStats::compute(*P.Prog, P.Analysis);
    std::printf("%-10s %10llu %10llu %10llu %10llu %8llu %6.1f %6u\n",
                CP.Name, G.StackToStack, G.StackToHeap, G.HeapToHeap,
                G.HeapToStack, G.ToStatic, G.average(), G.MaxPerStmt);
    if (G.HeapToStack != 0)
      HeapToStackAllZero = false;
  }
  std::printf("\nHeap-To-Stack column all zero: %s (paper: yes — heap "
              "pointers never point\nback to the stack, supporting the "
              "stack/heap analysis split)\n\n",
              HeapToStackAllZero ? "yes" : "NO");
}

void BM_GeneralStats(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  Pipeline P = analyzeCorpus(CP);
  for (auto _ : State) {
    auto G = GeneralStats::compute(*P.Prog, P.Analysis);
    benchmark::DoNotOptimize(G.StackToStack);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_GeneralStats)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printTable();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "table5"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
