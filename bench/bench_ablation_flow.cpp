//===- bench_ablation_flow.cpp - flow-sensitivity ablation ---------------------===//
//
// Ablation B (DESIGN.md): the paper's flow-sensitive kill/gen analysis
// with definite information vs. a classic Andersen-style
// flow-insensitive inclusion analysis. Metric: average number of
// targets of the dereferenced pointer over all indirect references
// (Table 3's headline number).
//
// Expected shape: the flow-sensitive analysis reports strictly fewer
// targets wherever strong updates or branch ordering matter; Andersen
// is cheaper but keeps every stale target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Andersen.h"
#include "clients/IndirectRefStats.h"

using namespace mcpta;
using namespace mcpta::baselines;
using namespace mcpta::benchutil;

namespace {

void printComparison() {
  printHeader("Ablation B",
              "Flow-sensitive (paper) vs. Andersen flow-insensitive");
  std::printf("%-10s | %12s %12s | %10s\n", "Benchmark", "flow-sens avg",
              "andersen avg", "solver-its");
  unsigned Wins = 0, Total = 0;
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = analyzeCorpus(CP);
    auto A = clients::IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    auto R = AndersenAnalysis::run(*P.Prog);
    std::printf("%-10s | %12.2f %12.2f | %10u\n", CP.Name,
                A.Stats.average(), R.AvgIndirectTargets,
                R.SolverIterations);
    ++Total;
    if (A.Stats.average() <= R.AvgIndirectTargets + 1e-9)
      ++Wins;
  }
  std::printf("\nFlow-sensitive average is <= Andersen's in %u/%u "
              "programs.\nCaveat: the two averages are not perfectly "
              "comparable — Andersen collapses\narrays and fields onto "
              "their root variable, which *undercounts* its target\nsets "
              "on array-heavy programs (clinpack, msc, lws). The "
              "apples-to-apples\ncomparison is the strong-update "
              "microbenchmark below.\n\n",
              Wins, Total);
}

/// Strong-update chains: p is reassigned K times, then dereferenced.
/// The flow-sensitive analysis kills stale targets at every step and
/// reports exactly 1; Andersen accumulates all K.
void printStrongUpdateMicro() {
  std::printf("Strong-update microbenchmark (p reassigned K times, then "
              "*p):\n");
  std::printf("%6s %18s %15s\n", "K", "flow-sens targets",
              "andersen targets");
  for (unsigned K : {2u, 4u, 8u, 16u}) {
    std::string Src = "int main(void) {\n";
    for (unsigned I = 0; I < K; ++I)
      Src += "  int x" + std::to_string(I) + ";\n";
    Src += "  int *p;\n";
    for (unsigned I = 0; I < K; ++I)
      Src += "  p = &x" + std::to_string(I) + ";\n";
    Src += "  return *p;\n}\n";

    Pipeline P = Pipeline::analyzeSource(Src);
    auto A = clients::IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    auto R = AndersenAnalysis::run(*P.Prog);
    std::printf("%6u %18.0f %15.0f\n", K, A.Stats.average(),
                R.AvgIndirectTargets);
  }
  std::printf("\n(the factor grows linearly in K: kills are what the "
              "paper's flow-sensitive\nrules buy over inclusion-based "
              "analysis)\n\n");
}

void BM_FlowSensitive(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(CP.Source);
    benchmark::DoNotOptimize(P.Analysis.Analyzed);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_FlowSensitive)->DenseRange(0, 16);

void BM_Andersen(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  Pipeline P = Pipeline::frontend(CP.Source);
  for (auto _ : State) {
    auto R = AndersenAnalysis::run(*P.Prog);
    benchmark::DoNotOptimize(R.TotalPairs);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_Andersen)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printComparison();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "ablation_flow"))
    return 1;
  printStrongUpdateMicro();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
