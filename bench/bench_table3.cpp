//===- bench_table3.cpp - Table 3: indirect reference statistics ---------------===//
//
// Regenerates Table 3: per benchmark, the classification of indirect
// references by the number of locations the dereferenced pointer can
// point to (definitely one / possibly one / 2 / 3 / >=4), the number of
// references replaceable by a direct reference, and the points-to pairs
// used split by stack/heap target, with the per-program average.
//
// Paper shapes to check against (Sec. 6's observations):
//   - the overall average is close to 1 (paper: 1.13, max 1.77);
//   - a substantial share of references has a definite single target
//     (paper: 28.8% overall);
//   - heap targets are a meaningful minority (paper: 27.92%).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "clients/IndirectRefStats.h"

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::clients;

namespace {

void printTable() {
  printHeader("Table 3", "Points-to Statistics for Indirect References");
  std::printf("%-10s %5s %5s %4s %4s %4s %7s %7s %8s %7s %5s %6s\n",
              "Benchmark", "1D", "1P", "2", "3", ">=4", "indRef",
              "ScalRep", "ToStack", "ToHeap", "Tot", "Avg");
  unsigned long long TotRefs = 0, TotOneD = 0, TotPairs = 0, TotHeap = 0;
  double WeightedAvg = 0;
  unsigned Resolved = 0;
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = analyzeCorpus(CP);
    auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    const IndirectRefStats &S = A.Stats;
    std::printf("%-10s %5u %5u %4u %4u %4u %7u %7u %8u %7u %5u %6.2f\n",
                CP.Name, S.OneD.total(), S.OneP.total(), S.TwoP.total(),
                S.ThreeP.total(), S.FourPlusP.total(), S.IndirectRefs,
                S.ScalarReplaceable, S.PairsToStack, S.PairsToHeap,
                S.totalPairs(), S.average());
    TotRefs += S.IndirectRefs;
    TotOneD += S.OneD.total();
    TotPairs += S.totalPairs();
    TotHeap += S.PairsToHeap;
    unsigned R = S.OneD.total() + S.OneP.total() + S.TwoP.total() +
                 S.ThreeP.total() + S.FourPlusP.total();
    WeightedAvg += S.totalPairs();
    Resolved += R;
  }
  std::printf("\nOverall: %llu indirect refs, %.1f%% definitely-single "
              "(paper: 28.8%%),\n         avg targets %.2f (paper: 1.13), "
              "%.1f%% heap-target pairs (paper: 27.9%%)\n\n",
              TotRefs, TotRefs ? 100.0 * TotOneD / TotRefs : 0,
              Resolved ? WeightedAvg / Resolved : 0,
              TotPairs ? 100.0 * TotHeap / TotPairs : 0);
}

void BM_IndirectRefStats(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  Pipeline P = analyzeCorpus(CP);
  for (auto _ : State) {
    auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    benchmark::DoNotOptimize(A.Stats.IndirectRefs);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_IndirectRefStats)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printTable();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "table3"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
