//===- bench_parallel.cpp - parallel engine speedup ----------------------------===//
//
// The parallel fixed-point engine's payoff (docs/PARALLEL.md), measured
// at both layers:
//
//   batch:      the 18-program corpus analyzed in-process, one file per
//               work unit on a shared ThreadPool — the exact shape of
//               `pta-tool --batch --analysis-threads=N`. File-level
//               parallelism is embarrassingly parallel, so this is the
//               near-linear axis.
//   incrstress: the largest single program with --analysis-threads=N,
//               which exercises the StmtInFolder offload path (the
//               per-visit StmtIn folds move to the pool while the
//               analysis itself stays on the calling thread).
//
// Each side is the median of three runs at T=1 and T=4. Before timing,
// the parallel incrstress result is checked byte-identical to the
// sequential one (the determinism bar ParallelDeterminismTest enforces
// across the whole corpus) — a speedup number for a wrong answer would
// be worthless.
//
// --par-bench-json=FILE (or MCPTA_PAR_BENCH_JSON) exports an
// `mcpta-par-bench-v1` document with a `cores` field from
// hardware_concurrency(): the perf-smoke gate (check_perf_smoke.py)
// only enforces its min-speedup floors when the host actually has the
// cores — on a 1-core runner a 4-thread run cannot speed up, and the
// numbers printed here are still useful as overhead measurements.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "serve/Serialize.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kParThreads = 4;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

pta::Analyzer::Options benchOptions(unsigned Threads) {
  pta::Analyzer::Options Opts;
  Opts.RecordStmtSets = true; // the fold-offload path needs the slots
  Opts.AnalysisThreads = Threads;
  return Opts;
}

/// One full single-file analysis at the given width; aborts on any
/// frontend or analysis failure (corpus programs are known-good).
Pipeline analyzeOne(const std::string &Source, unsigned Threads) {
  Pipeline P = Pipeline::analyzeSource(Source, benchOptions(Threads));
  if (P.Diags.hasErrors() || !P.Analysis.Analyzed) {
    std::fprintf(stderr, "FATAL: bench source failed to analyze:\n%s",
                 P.Diags.dump().c_str());
    std::abort();
  }
  return P;
}

/// Wall time for analyzing incrstress once at the given width.
double incrstressRun(const std::string &Source, unsigned Threads) {
  Clock::time_point T0 = Clock::now();
  Pipeline P = analyzeOne(Source, Threads);
  benchmark::DoNotOptimize(P.Analysis.Analyzed);
  return msSince(T0);
}

/// Wall time for the whole corpus as an in-process batch: one analysis
/// per program submitted to a shared pool, each file itself sequential
/// — the runBatchParallel shape. Threads == 1 degrades to an inline
/// pool, i.e. a plain in-order loop.
double batchRun(unsigned Threads) {
  support::ThreadPool Pool(Threads);
  Clock::time_point T0 = Clock::now();
  for (const corpus::CorpusProgram &C : corpus::corpus())
    Pool.submit([&C] {
      Pipeline P = analyzeOne(C.Source, 1);
      benchmark::DoNotOptimize(P.Analysis.Analyzed);
    });
  Pool.wait();
  return msSince(T0);
}

/// mcpta-result-v3 blob for the byte-identity check.
std::string resultBlob(const std::string &Source, unsigned Threads) {
  pta::Analyzer::Options Opts = benchOptions(Threads);
  Pipeline P = analyzeOne(Source, Threads);
  return serve::serialize(serve::ResultSnapshot::capture(
      *P.Prog, P.Analysis, serve::optionsFingerprint(Opts)));
}

/// Extracts `--par-bench-json=FILE` before google-benchmark sees it,
/// mirroring BenchUtil::statsJsonPath. MCPTA_PAR_BENCH_JSON is the env
/// fallback for CI.
std::string parBenchJsonPath(int &argc, char **argv) {
  std::string Path;
  int W = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--par-bench-json=", 0) == 0) {
      Path = Arg.substr(std::strlen("--par-bench-json="));
      continue;
    }
    if (Arg == "--par-bench-json" && I + 1 < argc) {
      Path = argv[++I];
      continue;
    }
    argv[W++] = argv[I];
  }
  argc = W;
  if (Path.empty())
    if (const char *Env = std::getenv("MCPTA_PAR_BENCH_JSON"))
      Path = Env;
  return Path;
}

struct BenchReport {
  unsigned Cores = 0;
  unsigned Threads = kParThreads;
  double IncrSeqMs = 0, IncrParMs = 0, IncrSpeedup = 0;
  unsigned BatchPrograms = 0;
  double BatchSeqMs = 0, BatchParMs = 0, BatchSpeedup = 0;
};

int runComparison(BenchReport &Report) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  if (!CP) {
    std::fprintf(stderr, "FATAL: corpus program 'incrstress' missing\n");
    return 1;
  }
  Report.Cores = std::max(1u, std::thread::hardware_concurrency());
  for (const corpus::CorpusProgram &C : corpus::corpus()) {
    (void)C;
    ++Report.BatchPrograms;
  }

  printHeader("Parallel engine speedup",
              "in-process batch and single-file analysis at T=1 vs T=4");
  std::printf("host cores: %u (speedup floors apply only when cores >= "
              "threads)\n\n",
              Report.Cores);

  // Correctness first: the parallel single-file result must be
  // byte-identical to the sequential one before its time means
  // anything.
  {
    std::string Seq = resultBlob(CP->Source, 1);
    std::string Par = resultBlob(CP->Source, kParThreads);
    if (Seq != Par) {
      std::fprintf(stderr, "FATAL: incrstress result at %u threads is not "
                           "byte-identical to sequential\n",
                   kParThreads);
      return 1;
    }
  }

  std::vector<double> Seq, Par;
  for (int I = 0; I < 3; ++I) {
    Seq.push_back(incrstressRun(CP->Source, 1));
    Par.push_back(incrstressRun(CP->Source, kParThreads));
  }
  Report.IncrSeqMs = medianOf(Seq);
  Report.IncrParMs = medianOf(Par);
  Report.IncrSpeedup = Report.IncrSeqMs / std::max(Report.IncrParMs, 0.01);

  Seq.clear();
  Par.clear();
  for (int I = 0; I < 3; ++I) {
    Seq.push_back(batchRun(1));
    Par.push_back(batchRun(kParThreads));
  }
  Report.BatchSeqMs = medianOf(Seq);
  Report.BatchParMs = medianOf(Par);
  Report.BatchSpeedup = Report.BatchSeqMs / std::max(Report.BatchParMs, 0.01);

  std::printf("%-22s %10s %10s %9s\n", "workload", "T=1 (ms)", "T=4 (ms)",
              "speedup");
  std::printf("%-22s %10.1f %10.1f %8.2fx\n", "incrstress (1 file)",
              Report.IncrSeqMs, Report.IncrParMs, Report.IncrSpeedup);
  std::printf("%-22s %10.1f %10.1f %8.2fx\n", "batch (18 programs)",
              Report.BatchSeqMs, Report.BatchParMs, Report.BatchSpeedup);
  std::printf("\n");
  return 0;
}

bool writeParBenchJson(const std::string &Path, const BenchReport &R) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write parallel bench JSON to '%s'\n",
                 Path.c_str());
    return false;
  }
  OS << "{\"format\":\"mcpta-par-bench-v1\",\"tool_version\":\""
     << support::Telemetry::jsonEscape(version::kToolVersion)
     << "\",\"cores\":" << R.Cores << ",\"threads\":" << R.Threads
     << ",\"incrstress\":{\"seq_ms\":" << R.IncrSeqMs
     << ",\"par_ms\":" << R.IncrParMs << ",\"speedup\":" << R.IncrSpeedup
     << "},\"batch\":{\"programs\":" << R.BatchPrograms
     << ",\"seq_ms\":" << R.BatchSeqMs << ",\"par_ms\":" << R.BatchParMs
     << ",\"speedup\":" << R.BatchSpeedup << "}}\n";
  return bool(OS);
}

void BM_IncrstressAnalyze(benchmark::State &State) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  const unsigned Threads = unsigned(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(incrstressRun(CP->Source, Threads));
}
BENCHMARK(BM_IncrstressAnalyze)
    ->Arg(1)
    ->Arg(kParThreads)
    ->Unit(benchmark::kMillisecond);

void BM_CorpusBatch(benchmark::State &State) {
  const unsigned Threads = unsigned(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(batchRun(Threads));
}
BENCHMARK(BM_CorpusBatch)
    ->Arg(1)
    ->Arg(kParThreads)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string ParJson = parBenchJsonPath(argc, argv);
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  BenchReport Report;
  int RC = runComparison(Report);
  if (RC != 0)
    return RC;
  if (!ParJson.empty() && !writeParBenchJson(ParJson, Report))
    return 1;
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "parallel"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
