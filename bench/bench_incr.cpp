//===- bench_incr.cpp - incremental re-analysis speedup ------------------------===//
//
// The incremental engine's reason to exist (docs/INCREMENTAL.md): after
// a single-function edit, re-analyzing against the previous snapshot
// must be much cheaper than analyzing from scratch, while producing a
// byte-identical result (IncrementalTest proves the equivalence; this
// binary measures the payoff).
//
// Method: take the largest corpus program (incrstress — thousands of
// calling contexts over 64 functions), apply each wlgen mutation kind
// as the "developer edit", and compare
//   cold:        Pipeline::analyzeSource + capture + serialize
//   incremental: IncrementalEngine::reanalyze (same artifacts out)
// with the median of three runs each. Set-preserving edits (constant
// tweaks, renames, local-to-local copies, added calls) must hit the
// incremental path with memo_reuse > 0, and the best single-function
// edit must show at least a 5x wall-clock speedup — the binary exits 1
// otherwise, so CI catches a regressed graft path. Set-perturbing edits
// (RemoveAssignment) legitimately fall back with a recorded reason and
// are reported without the speedup requirement.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "incr/IncrementalEngine.h"
#include "serve/Serialize.h"
#include "wlgen/WorkloadGen.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Analysis options for the comparison. Per-statement set recording is
/// a query-layer feature with identical cost on both sides; it is off
/// here so the numbers isolate the analysis itself.
pta::Analyzer::Options benchOptions() {
  pta::Analyzer::Options Opts;
  Opts.RecordStmtSets = false;
  return Opts;
}

const corpus::CorpusProgram &largestCorpusProgram() {
  const corpus::CorpusProgram *Largest = nullptr;
  for (const corpus::CorpusProgram &CP : corpus::corpus())
    if (!Largest || std::strlen(CP.Source) > std::strlen(Largest->Source))
      Largest = &CP;
  return *Largest;
}

/// Cold path: everything reanalyze() produces, from scratch.
std::string coldRun(const std::string &Source,
                    const pta::Analyzer::Options &Opts) {
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  if (P.Diags.hasErrors() || !P.Analysis.Analyzed) {
    std::fprintf(stderr, "FATAL: bench source failed to analyze:\n%s",
                 P.Diags.dump().c_str());
    std::abort();
  }
  return serve::serialize(serve::ResultSnapshot::capture(
      *P.Prog, P.Analysis, serve::optionsFingerprint(Opts)));
}

double medianOf3(double A, double B, double C) {
  double V[3] = {A, B, C};
  std::sort(V, V + 3);
  return V[1];
}

struct KindResult {
  const char *Name = "";
  double ColdMs = 0, IncrMs = 0;
  incr::IncrStats Stats;
};

int runComparison() {
  const corpus::CorpusProgram &CP = largestCorpusProgram();
  const std::string Seed = CP.Source;
  const pta::Analyzer::Options Opts = benchOptions();

  serve::ResultSnapshot Baseline;
  {
    Pipeline P = Pipeline::analyzeSource(Seed, Opts);
    Baseline = serve::ResultSnapshot::capture(
        *P.Prog, P.Analysis, serve::optionsFingerprint(Opts));
  }

  printHeader("Incremental re-analysis",
              "single-function edit: from-scratch vs. snapshot reuse");
  std::printf("largest corpus program: %s (%u lines, %zu baseline contexts)\n\n",
              CP.Name, countLines(CP.Source), Baseline.IG.size());
  std::printf("%-18s %10s %10s %9s %7s %10s  %s\n", "edit kind", "cold(ms)",
              "incr(ms)", "speedup", "dirty", "memo_reuse", "path");

  std::vector<KindResult> Results;
  for (wlgen::MutationKind K : wlgen::AllMutationKinds) {
    const std::string Edited = wlgen::mutateSource(Seed, K);
    KindResult R;
    R.Name = wlgen::mutationKindName(K);

    double Cold[3], Incr[3];
    for (int I = 0; I < 3; ++I) {
      Clock::time_point T0 = Clock::now();
      std::string Blob = coldRun(Edited, Opts);
      Cold[I] = msSince(T0);
      benchmark::DoNotOptimize(Blob.data());

      T0 = Clock::now();
      incr::IncrOutput O =
          incr::IncrementalEngine::reanalyze(Baseline, Edited, Opts);
      Incr[I] = msSince(T0);
      if (!O.Ok) {
        std::fprintf(stderr, "FATAL: reanalyze failed for %s: %s\n", R.Name,
                     O.Error.c_str());
        return 1;
      }
      R.Stats = O.Stats;
    }
    R.ColdMs = medianOf3(Cold[0], Cold[1], Cold[2]);
    R.IncrMs = medianOf3(Incr[0], Incr[1], Incr[2]);

    std::string Path = R.Stats.UsedIncremental
                           ? "incremental"
                           : "fallback (" + R.Stats.FallbackReason + ")";
    std::printf("%-18s %10.1f %10.1f %8.1fx %7llu %10llu  %s\n", R.Name,
                R.ColdMs, R.IncrMs, R.ColdMs / R.IncrMs,
                static_cast<unsigned long long>(R.Stats.DirtyFunctions),
                static_cast<unsigned long long>(R.Stats.MemoReuse),
                Path.c_str());
    Results.push_back(R);
  }
  std::printf("\n");

  // The regression gate. Every edit must either reuse memoized results
  // or say why it could not; the best single-function edit must repay
  // the snapshot with at least a 5x wall-clock win.
  double BestSpeedup = 0;
  bool BestHadReuse = false;
  for (const KindResult &R : Results) {
    if (!R.Stats.UsedIncremental && R.Stats.FallbackReason.empty()) {
      std::fprintf(stderr, "FATAL: %s fell back without a recorded reason\n",
                   R.Name);
      return 1;
    }
    if (R.Stats.UsedIncremental && R.Stats.MemoReuse == 0) {
      std::fprintf(stderr, "FATAL: %s used the incremental path but reused "
                           "nothing\n",
                   R.Name);
      return 1;
    }
    double Speedup = R.ColdMs / R.IncrMs;
    if (R.Stats.UsedIncremental && Speedup > BestSpeedup) {
      BestSpeedup = Speedup;
      BestHadReuse = R.Stats.MemoReuse > 0;
    }
  }
  if (BestSpeedup < 5.0 || !BestHadReuse) {
    std::fprintf(stderr,
                 "FATAL: best incremental speedup %.1fx < required 5x "
                 "(memo_reuse %s)\n",
                 BestSpeedup, BestHadReuse ? ">0" : "==0");
    return 1;
  }
  std::printf("best single-function edit speedup: %.1fx (requirement: >=5x, "
              "memo_reuse > 0)\n\n",
              BestSpeedup);
  return 0;
}

void BM_ColdAnalyze(benchmark::State &State) {
  const corpus::CorpusProgram &CP = largestCorpusProgram();
  const pta::Analyzer::Options Opts = benchOptions();
  std::string Edited =
      wlgen::mutateSource(CP.Source, wlgen::MutationKind::TweakConstant);
  for (auto _ : State) {
    std::string Blob = coldRun(Edited, Opts);
    benchmark::DoNotOptimize(Blob.data());
  }
}
BENCHMARK(BM_ColdAnalyze)->Unit(benchmark::kMillisecond);

void BM_IncrementalReanalyze(benchmark::State &State) {
  const corpus::CorpusProgram &CP = largestCorpusProgram();
  const pta::Analyzer::Options Opts = benchOptions();
  serve::ResultSnapshot Baseline;
  {
    Pipeline P = Pipeline::analyzeSource(CP.Source, Opts);
    Baseline = serve::ResultSnapshot::capture(
        *P.Prog, P.Analysis, serve::optionsFingerprint(Opts));
  }
  std::string Edited =
      wlgen::mutateSource(CP.Source, wlgen::MutationKind::TweakConstant);
  for (auto _ : State) {
    incr::IncrOutput O =
        incr::IncrementalEngine::reanalyze(Baseline, Edited, Opts);
    benchmark::DoNotOptimize(O.Stats.MemoReuse);
  }
}
BENCHMARK(BM_IncrementalReanalyze)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  int RC = runComparison();
  if (RC != 0)
    return RC;
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "incr"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
