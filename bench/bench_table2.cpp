//===- bench_table2.cpp - Table 2: benchmark characteristics -------------------===//
//
// Regenerates Table 2 of the paper: per benchmark, source lines, number
// of statements in SIMPLE, and the minimum/maximum number of variables
// in the abstract stacks of its functions (including symbolic variables
// and struct fields relevant to the points-to analysis).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <map>

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

struct Row {
  std::string Name;
  unsigned Lines;
  unsigned SimpleStmts;
  unsigned MinVars;
  unsigned MaxVars;
};

Row computeRow(const corpus::CorpusProgram &CP) {
  Pipeline P = analyzeCorpus(CP);

  // Per-function abstract stack size: globals (incl. their pointer
  // components) are visible everywhere; frame entities (params, locals,
  // temps, retval, symbolic names) belong to their owner.
  unsigned GlobalCount = 0;
  std::map<const cfront::FunctionDecl *, unsigned> FrameCounts;
  for (const simple::FunctionIR &F : P.Prog->functions())
    FrameCounts[F.Decl] = 0;
  P.Analysis.Locs->forEachEntity([&](const pta::Entity *E) {
    switch (E->kind()) {
    case pta::Entity::Kind::Heap:
    case pta::Entity::Kind::Null:
    case pta::Entity::Kind::Function:
      return;
    case pta::Entity::Kind::String:
      ++GlobalCount;
      return;
    default:
      break;
    }
    if (const cfront::FunctionDecl *Owner = E->owner()) {
      auto It = FrameCounts.find(Owner);
      if (It != FrameCounts.end())
        ++It->second;
      return;
    }
    ++GlobalCount;
  });

  Row R;
  R.Name = CP.Name;
  R.Lines = countLines(CP.Source);
  R.SimpleStmts = P.Prog->numBasicStmts();
  R.MinVars = ~0u;
  R.MaxVars = 0;
  for (const auto &[F, N] : FrameCounts) {
    unsigned Total = N + GlobalCount;
    R.MinVars = std::min(R.MinVars, Total);
    R.MaxVars = std::max(R.MaxVars, Total);
  }
  if (R.MinVars == ~0u)
    R.MinVars = GlobalCount;
  return R;
}

void printTable() {
  printHeader("Table 2", "Characteristics of Benchmark Programs");
  std::printf("%-10s %7s %10s %8s %8s  %s\n", "Benchmark", "Lines",
              "#SIMPLE", "Min#var", "Max#var", "Description");
  for (const auto &CP : corpus::corpus()) {
    Row R = computeRow(CP);
    std::printf("%-10s %7u %10u %8u %8u  %s\n", R.Name.c_str(), R.Lines,
                R.SimpleStmts, R.MinVars, R.MaxVars, CP.Description);
  }
  std::printf("\n");
}

void BM_FrontendAndSimplify(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  for (auto _ : State) {
    Pipeline P = Pipeline::frontend(CP.Source);
    benchmark::DoNotOptimize(P.Prog);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_FrontendAndSimplify)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printTable();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "table2"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
