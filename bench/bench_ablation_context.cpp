//===- bench_ablation_context.cpp - context-sensitivity ablation ---------------===//
//
// Ablation A (DESIGN.md): what the paper's central design decision buys.
// Runs the identical flow-sensitive analysis twice — once with
// per-invocation-context memoization and map information (the paper's
// design), once with a single merged summary per function — and compares
// the Table 3 precision metrics plus analysis effort.
//
// Expected shape: sensitivity wins precision (more definite single
// targets, lower average target counts); the insensitive variant does
// fewer body analyses on call-heavy programs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/ContextInsensitive.h"

using namespace mcpta;
using namespace mcpta::baselines;
using namespace mcpta::benchutil;

namespace {

void printComparison() {
  printHeader("Ablation A", "Context-sensitive vs. merged-summary analysis");
  std::printf("%-10s | %9s %9s | %9s %9s | %8s %8s\n", "Benchmark",
              "sens 1D", "insen 1D", "sens avg", "insen avg", "sens "
              "runs", "insenrun");
  unsigned WinOrTie = 0, Total = 0;
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = Pipeline::frontend(CP.Source);
    if (!P.Prog)
      continue;
    auto Cmp = PrecisionComparison::compute(*P.Prog);
    std::printf("%-10s | %9u %9u | %9.2f %9.2f | %8u %8u\n", CP.Name,
                Cmp.Sensitive.Stats.OneD.total(),
                Cmp.Insensitive.Stats.OneD.total(),
                Cmp.Sensitive.Stats.average(),
                Cmp.Insensitive.Stats.average(),
                Cmp.SensitiveBodyAnalyses, Cmp.InsensitiveBodyAnalyses);
    ++Total;
    if (Cmp.Sensitive.Stats.OneD.total() >=
            Cmp.Insensitive.Stats.OneD.total() &&
        Cmp.Sensitive.Stats.average() <=
            Cmp.Insensitive.Stats.average() + 1e-9)
      ++WinOrTie;
  }
  std::printf("\nContext sensitivity at least ties on precision in %u/%u "
              "programs.\nThe corpus miniatures rarely call one helper "
              "with divergent pointer\narguments; the microbenchmark "
              "below isolates exactly that pattern.\n\n",
              WinOrTie, Total);
}

/// The calling-context separator, scaled: one helper `assign` invoked
/// from K call sites with K distinct targets. The context-sensitive
/// analysis keeps every site definite-single; the merged summary sees
/// all K targets at every site.
void printSeparatorMicro() {
  std::printf("Calling-context microbenchmark (one helper, K call "
              "sites):\n");
  std::printf("%6s %12s %12s %14s %14s\n", "K", "sens 1D", "insen 1D",
              "sens avg", "insen avg");
  for (unsigned K : {2u, 4u, 8u, 16u}) {
    std::string Src = "void assign(int **dst, int *src) { *dst = src; }\n"
                      "int main(void) {\n  int r;\n";
    for (unsigned I = 0; I < K; ++I)
      Src += "  int x" + std::to_string(I) + "; int *p" +
             std::to_string(I) + ";\n";
    for (unsigned I = 0; I < K; ++I)
      Src += "  assign(&p" + std::to_string(I) + ", &x" +
             std::to_string(I) + ");\n";
    Src += "  r = 0;\n";
    for (unsigned I = 0; I < K; ++I)
      Src += "  r = r + *p" + std::to_string(I) + ";\n";
    Src += "  return r;\n}\n";

    Pipeline PF = Pipeline::frontend(Src);
    auto Cmp = PrecisionComparison::compute(*PF.Prog);
    std::printf("%6u %12u %12u %14.2f %14.2f\n", K,
                Cmp.Sensitive.Stats.OneD.total(),
                Cmp.Insensitive.Stats.OneD.total(),
                Cmp.Sensitive.Stats.average(),
                Cmp.Insensitive.Stats.average());
  }
  std::printf("\n(the insensitive average grows linearly with K — the "
              "calling context\nproblem of Sec. 4)\n\n");
}

void BM_Sensitive(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(CP.Source);
    benchmark::DoNotOptimize(P.Analysis.BodyAnalyses);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_Sensitive)->DenseRange(0, 16);

void BM_Insensitive(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  pta::Analyzer::Options Opts;
  Opts.ContextSensitive = false;
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(CP.Source, Opts);
    benchmark::DoNotOptimize(P.Analysis.BodyAnalyses);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_Insensitive)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printComparison();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "ablation_context"))
    return 1;
  printSeparatorMicro();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
