//===- bench_serve.cpp - summary-cache payoff and query throughput -------------===//
//
// Four questions about the serve layer (docs/SERVING.md):
//
//  1. Payoff: how much faster is a warm-cache analyze than a cold one?
//     The acceptance bar is >= 10x — a cached analyze is one key hash
//     plus an LRU lookup, so in practice it is orders of magnitude.
//  2. Throughput: how many alias / points_to queries per second does a
//     resident ResultSnapshot answer? Queries never touch the analyzer,
//     so this is pure snapshot-lookup cost.
//  3. Pool speedup: does --serve-threads=4 actually overlap analyses?
//     The same mixed request stream runs through a Threads=1 and a
//     Threads=4 daemon; the pool must be faster on distinct-source
//     analyze work AND answer every id identically (out of order is
//     fine, different payloads are not).
//  4. Overload: hundreds of requests against a tiny queue and a short
//     deadline. Reported: throughput, shed rate, and the p50/p99 of
//     admitted requests from the serve.latency.* recorders.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "serve/Json.h"
#include "serve/Server.h"

#include <chrono>
#include <functional>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::serve;

namespace {

double timeMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// One in-process request; aborts on a malformed or failed response
/// (this binary measures the serve layer, it does not test it).
std::string request(Server &S, const std::string &Line) {
  bool Shutdown = false;
  std::ostringstream Log;
  std::string Reply = S.handleLine(Line, Shutdown, Log);
  if (Reply.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "FATAL: serve request failed:\n  %s\n  -> %s\n",
                 Line.c_str(), Reply.c_str());
    std::abort();
  }
  return Reply;
}

void printColdWarmSweep() {
  printHeader("Serve layer", "cold vs. warm analyze latency per program");
  std::printf("%-12s %10s %10s %10s %8s\n", "program", "cold-ms", "warm-ms",
              "speedup", "cached");

  // Memory-only cache: the sweep measures the LRU hit path, the disk
  // tier's extra cost is one read+deserialize on the first hit only.
  Server::Config Cfg;
  Server S(Cfg);

  double WorstSpeedup = -1.0;
  for (const corpus::CorpusProgram &CP : corpus::corpus()) {
    const std::string Req = std::string("{\"id\":1,\"method\":\"analyze\","
                                        "\"corpus\":\"") +
                            CP.Name + "\"}";
    std::string ColdReply;
    double ColdMs = timeMs([&] { ColdReply = request(S, Req); });
    std::string WarmReply;
    double WarmMs = timeMs([&] { WarmReply = request(S, Req); });

    bool Cached = WarmReply.find("\"cached\":true") != std::string::npos;
    if (!Cached) {
      std::fprintf(stderr, "FATAL: warm analyze of '%s' missed the cache\n",
                   CP.Name);
      std::abort();
    }
    double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0.0;
    if (WorstSpeedup < 0 || Speedup < WorstSpeedup)
      WorstSpeedup = Speedup;
    std::printf("%-12s %10.3f %10.3f %9.1fx %8s\n", CP.Name, ColdMs, WarmMs,
                Speedup, Cached ? "yes" : "no");
  }
  std::printf("\nworst-case warm speedup: %.1fx (acceptance bar: 10x)\n\n",
              WorstSpeedup);
}

void printQueryThroughput() {
  printHeader("Serve layer", "query throughput over a resident snapshot");
  Server::Config Cfg;
  Server S(Cfg);
  request(S, "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");

  struct Q {
    const char *Name;
    const char *Line;
  };
  const Q Queries[] = {
      {"alias", "{\"id\":2,\"method\":\"alias\",\"a\":\"*p\",\"b\":\"x\"}"},
      {"points_to", "{\"id\":3,\"method\":\"points_to\",\"name\":\"table\"}"},
  };
  std::printf("%-12s %12s %14s\n", "method", "reqs", "queries/sec");
  for (const Q &Query : Queries) {
    const int N = 2000;
    double Ms = timeMs([&] {
      bool Shutdown = false;
      std::ostringstream Log;
      for (int I = 0; I < N; ++I)
        (void)S.handleLine(Query.Line, Shutdown, Log);
    });
    std::printf("%-12s %12d %14.0f\n", Query.Name, N,
                Ms > 0 ? N * 1000.0 / Ms : 0.0);
  }
  std::printf("\n");
}

//===----------------------------------------------------------------------===//
// Pool speedup: the same stream through Threads=1 and Threads=4
//===----------------------------------------------------------------------===//

/// Distinct-source analyze requests (a unique trailing declaration per
/// id defeats the cache) so the pool has genuinely parallel work.
std::string mixedStream(int Requests) {
  std::string Input;
  const auto &Corpus = corpus::corpus();
  for (int I = 0; I < Requests; ++I) {
    const corpus::CorpusProgram &CP = Corpus[I % Corpus.size()];
    std::string Source = std::string(CP.Source) + "\nint bench_uniq_" +
                         std::to_string(I) + "(void) { return " +
                         std::to_string(I) + "; }\n";
    Input += "{\"id\":" + std::to_string(I + 1) +
             ",\"method\":\"analyze\",\"source\":\"" +
             support::Telemetry::jsonEscape(Source) + "\"}\n";
  }
  Input += "{\"id\":0,\"method\":\"shutdown\"}\n";
  return Input;
}

/// Runs \p Input through a daemon with \p Threads workers; returns wall
/// ms and fills \p ById with each response's result members (transport
/// metadata stripped), for the identity check.
double runStream(unsigned Threads, const std::string &Input,
                 std::map<int, std::string> &ById) {
  Server::Config Cfg;
  Cfg.Threads = Threads;
  Server S(Cfg);
  std::istringstream In(Input);
  std::ostringstream OutS, Log;
  double Ms = timeMs([&] {
    if (S.run(In, OutS, Log) != 0) {
      std::fprintf(stderr, "FATAL: serve loop exited non-zero\n");
      std::abort();
    }
  });
  std::istringstream Lines(OutS.str());
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    JsonValue R;
    std::string Err;
    if (!parseJson(Line, R, Err)) {
      std::fprintf(stderr, "FATAL: malformed response: %s\n", Line.c_str());
      std::abort();
    }
    int Id = static_cast<int>(R.getNumber("id", -1));
    std::ostringstream Sig;
    Sig << R.getBool("ok", false) << "|" << R.getBool("degraded", false)
        << "|" << R.getBool("overloaded", false) << "|"
        << R.getString("key", "") << "|" << R.getNumber("locations", -1)
        << "|" << R.getNumber("alias_pairs", -1);
    ById[Id] = Sig.str();
  }
  return Ms;
}

struct PoolResult {
  double SeqMs = 0, PoolMs = 0, Speedup = 0;
  bool Identical = false;
  int Requests = 0;
};

PoolResult measurePoolSpeedup() {
  printHeader("Serve layer", "worker-pool speedup on distinct analyzes");
  PoolResult PR;
  PR.Requests = 32;
  const std::string Input = mixedStream(PR.Requests);
  std::map<int, std::string> Seq, Pool;
  PR.SeqMs = runStream(1, Input, Seq);
  PR.PoolMs = runStream(4, Input, Pool);
  PR.Speedup = PR.PoolMs > 0 ? PR.SeqMs / PR.PoolMs : 0.0;
  PR.Identical = Seq == Pool;
  std::printf("%-10s %10s %10s %10s %10s\n", "requests", "seq-ms", "pool-ms",
              "speedup", "identical");
  std::printf("%-10d %10.1f %10.1f %9.2fx %10s\n", PR.Requests, PR.SeqMs,
              PR.PoolMs, PR.Speedup, PR.Identical ? "yes" : "NO");
  if (!PR.Identical) {
    std::fprintf(stderr, "FATAL: pool answers differ from sequential\n");
    std::abort();
  }
  unsigned HW = std::thread::hardware_concurrency();
  std::printf("\nacceptance bar: >= 2x with --serve-threads=4 on "
              "parallelizable work\n(%u hardware thread%s available%s)\n\n",
              HW, HW == 1 ? "" : "s",
              HW < 2 ? "; speedup is not expected on this machine" : "");
  return PR;
}

//===----------------------------------------------------------------------===//
// Overload: hundreds of requests against a tiny queue + short deadline
//===----------------------------------------------------------------------===//

struct OverloadResult {
  int Requests = 0, Ok = 0, Shed = 0, Errors = 0;
  double WallMs = 0, Throughput = 0, ShedRate = 0;
  double P50Ms = 0, P99Ms = 0, QueueWaitP99Ms = 0;
};

OverloadResult measureOverload() {
  printHeader("Serve layer",
              "overload: tiny queue, short deadline, mixed cold/warm");
  OverloadResult O;
  O.Requests = 400;

  // Mixed pressure: one cold analyze per 4 requests (distinct source),
  // the rest warm repeats of a small working set — the realistic shape
  // of a build-service burst.
  const auto &Corpus = corpus::corpus();
  std::string Input;
  for (int I = 0; I < O.Requests; ++I) {
    const corpus::CorpusProgram &CP = Corpus[I % Corpus.size()];
    std::string Source(CP.Source);
    if (I % 4 == 0)
      Source += "\nint bench_cold_" + std::to_string(I) +
                "(void) { return 0; }\n";
    Input += "{\"id\":" + std::to_string(I + 1) +
             ",\"method\":\"analyze\",\"source\":\"" +
             support::Telemetry::jsonEscape(Source) + "\"}\n";
  }
  // EOF (not shutdown) ends the stream: the queue drains fully.

  Server::Config Cfg;
  Cfg.Threads = 4;
  Cfg.QueueCap = 8;
  Cfg.RequestDeadlineMs = 50;
  Server S(Cfg);
  std::istringstream In(Input);
  std::ostringstream Out, Log;
  O.WallMs = timeMs([&] {
    if (S.run(In, Out, Log) != 0)
      std::abort();
  });

  std::istringstream Lines(Out.str());
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    JsonValue R;
    std::string Err;
    if (!parseJson(Line, R, Err))
      std::abort();
    if (R.getBool("ok", false))
      ++O.Ok;
    else if (R.getBool("overloaded", false))
      ++O.Shed;
    else
      ++O.Errors;
  }
  O.Throughput = O.WallMs > 0 ? (O.Ok + O.Shed) * 1000.0 / O.WallMs : 0.0;
  O.ShedRate = O.Requests ? double(O.Shed) / O.Requests : 0.0;
  support::LatencyRecorder &Lat =
      S.telemetry().latency("serve.latency.analyze");
  O.P50Ms = Lat.quantileMs(0.50);
  O.P99Ms = Lat.quantileMs(0.99);
  O.QueueWaitP99Ms =
      S.telemetry().latency("serve.latency.queue_wait").quantileMs(0.99);

  std::printf("%-10s %8s %8s %8s %10s %10s %8s %8s\n", "requests", "ok",
              "shed", "errors", "reqs/sec", "shed-rate", "p50-ms", "p99-ms");
  std::printf("%-10d %8d %8d %8d %10.0f %9.1f%% %8.2f %8.2f\n", O.Requests,
              O.Ok, O.Shed, O.Errors, O.Throughput, O.ShedRate * 100.0,
              O.P50Ms, O.P99Ms);
  std::printf("\nqueue-wait p99: %.2f ms; every request was answered "
              "(%d + %d + %d = %d)\n",
              O.QueueWaitP99Ms, O.Ok, O.Shed, O.Errors,
              O.Ok + O.Shed + O.Errors);
  std::printf("(p50/p99 cover served requests only; on an oversubscribed "
              "machine wall-clock\n latency includes scheduler time the "
              "deadline budget cannot see)\n\n");
  if (O.Ok + O.Shed + O.Errors != O.Requests) {
    std::fprintf(stderr, "FATAL: %d responses for %d requests\n",
                 O.Ok + O.Shed + O.Errors, O.Requests);
    std::abort();
  }
  return O;
}

/// The machine-readable side (ROADMAP: "mcpta-serve-bench schema"):
/// pool-speedup and overload metrics as one JSON document.
bool writeServeBenchJson(const std::string &Path, const PoolResult &PR,
                         const OverloadResult &O) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write serve-bench JSON to '%s'\n",
                 Path.c_str());
    return false;
  }
  OS << "{\"schema\":\"mcpta-serve-bench-v1\",\"tool_version\":\""
     << support::Telemetry::jsonEscape(version::kToolVersion)
     << "\",\"hw_threads\":" << std::thread::hardware_concurrency() << ","
     << "\"pool\":{\"requests\":" << PR.Requests << ",\"seq_ms\":" << PR.SeqMs
     << ",\"pool_ms\":" << PR.PoolMs << ",\"speedup\":" << PR.Speedup
     << ",\"identical\":" << (PR.Identical ? "true" : "false") << "},"
     << "\"overload\":{\"requests\":" << O.Requests << ",\"ok\":" << O.Ok
     << ",\"shed\":" << O.Shed << ",\"errors\":" << O.Errors
     << ",\"wall_ms\":" << O.WallMs << ",\"reqs_per_sec\":" << O.Throughput
     << ",\"shed_rate\":" << O.ShedRate << ",\"p50_ms\":" << O.P50Ms
     << ",\"p99_ms\":" << O.P99Ms
     << ",\"queue_wait_p99_ms\":" << O.QueueWaitP99Ms << "}}\n";
  return bool(OS);
}

/// Extracts `--serve-bench-json=FILE` before google-benchmark parses
/// argv (same contract as benchutil::statsJsonPath).
std::string serveBenchJsonPath(int &argc, char **argv) {
  std::string Path;
  int W = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--serve-bench-json=", 0) == 0) {
      Path = Arg.substr(std::strlen("--serve-bench-json="));
      continue;
    }
    argv[W++] = argv[I];
  }
  argc = W;
  return Path;
}

//===----------------------------------------------------------------------===//
// google-benchmark timers
//===----------------------------------------------------------------------===//

void BM_AnalyzeColdVsWarm(benchmark::State &State) {
  const bool Warm = State.range(0) != 0;
  const corpus::CorpusProgram &CP = corpus::corpus()[0];
  const std::string Req = std::string("{\"id\":1,\"method\":\"analyze\","
                                      "\"corpus\":\"") +
                          CP.Name + "\"}";
  Server::Config Cfg;
  Server S(Cfg);
  if (Warm)
    request(S, Req); // prime the cache once
  for (auto _ : State) {
    if (!Warm) {
      // Cold on every iteration: drop the cached entry first (the
      // invalidation itself is outside what a cold analyze costs, but
      // it is microseconds against milliseconds of analysis).
      bool Shutdown = false;
      std::ostringstream Log;
      (void)S.handleLine("{\"id\":0,\"method\":\"invalidate\"}", Shutdown, Log);
    }
    std::string Reply = request(S, Req);
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_AnalyzeColdVsWarm)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_AliasQuery(benchmark::State &State) {
  Server::Config Cfg;
  Server S(Cfg);
  request(S, "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  bool Shutdown = false;
  std::ostringstream Log;
  for (auto _ : State) {
    std::string Reply = S.handleLine(
        "{\"id\":2,\"method\":\"alias\",\"a\":\"*p\",\"b\":\"x\"}", Shutdown,
        Log);
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_AliasQuery)->Unit(benchmark::kMicrosecond);

void BM_PointsToQuery(benchmark::State &State) {
  Server::Config Cfg;
  Server S(Cfg);
  request(S, "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  bool Shutdown = false;
  std::ostringstream Log;
  for (auto _ : State) {
    std::string Reply = S.handleLine(
        "{\"id\":3,\"method\":\"points_to\",\"name\":\"table\"}", Shutdown,
        Log);
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_PointsToQuery)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  std::string ServeBenchJson = serveBenchJsonPath(argc, argv);
  printColdWarmSweep();
  printQueryThroughput();
  PoolResult PR = measurePoolSpeedup();
  OverloadResult O = measureOverload();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "serve"))
    return 1;
  if (!ServeBenchJson.empty() && !writeServeBenchJson(ServeBenchJson, PR, O))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
