//===- bench_serve.cpp - summary-cache payoff and query throughput -------------===//
//
// Two questions about the serve layer (docs/SERVING.md):
//
//  1. Payoff: how much faster is a warm-cache analyze than a cold one?
//     The acceptance bar is >= 10x — a cached analyze is one key hash
//     plus an LRU lookup, so in practice it is orders of magnitude.
//  2. Throughput: how many alias / points_to queries per second does a
//     resident ResultSnapshot answer? Queries never touch the analyzer,
//     so this is pure snapshot-lookup cost.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "serve/Server.h"

#include <chrono>
#include <functional>
#include <sstream>

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::serve;

namespace {

double timeMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// One in-process request; aborts on a malformed or failed response
/// (this binary measures the serve layer, it does not test it).
std::string request(Server &S, const std::string &Line) {
  bool Shutdown = false;
  std::ostringstream Log;
  std::string Reply = S.handleLine(Line, Shutdown, Log);
  if (Reply.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "FATAL: serve request failed:\n  %s\n  -> %s\n",
                 Line.c_str(), Reply.c_str());
    std::abort();
  }
  return Reply;
}

void printColdWarmSweep() {
  printHeader("Serve layer", "cold vs. warm analyze latency per program");
  std::printf("%-12s %10s %10s %10s %8s\n", "program", "cold-ms", "warm-ms",
              "speedup", "cached");

  // Memory-only cache: the sweep measures the LRU hit path, the disk
  // tier's extra cost is one read+deserialize on the first hit only.
  Server::Config Cfg;
  Server S(Cfg);

  double WorstSpeedup = -1.0;
  for (const corpus::CorpusProgram &CP : corpus::corpus()) {
    const std::string Req = std::string("{\"id\":1,\"method\":\"analyze\","
                                        "\"corpus\":\"") +
                            CP.Name + "\"}";
    std::string ColdReply;
    double ColdMs = timeMs([&] { ColdReply = request(S, Req); });
    std::string WarmReply;
    double WarmMs = timeMs([&] { WarmReply = request(S, Req); });

    bool Cached = WarmReply.find("\"cached\":true") != std::string::npos;
    if (!Cached) {
      std::fprintf(stderr, "FATAL: warm analyze of '%s' missed the cache\n",
                   CP.Name);
      std::abort();
    }
    double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0.0;
    if (WorstSpeedup < 0 || Speedup < WorstSpeedup)
      WorstSpeedup = Speedup;
    std::printf("%-12s %10.3f %10.3f %9.1fx %8s\n", CP.Name, ColdMs, WarmMs,
                Speedup, Cached ? "yes" : "no");
  }
  std::printf("\nworst-case warm speedup: %.1fx (acceptance bar: 10x)\n\n",
              WorstSpeedup);
}

void printQueryThroughput() {
  printHeader("Serve layer", "query throughput over a resident snapshot");
  Server::Config Cfg;
  Server S(Cfg);
  request(S, "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");

  struct Q {
    const char *Name;
    const char *Line;
  };
  const Q Queries[] = {
      {"alias", "{\"id\":2,\"method\":\"alias\",\"a\":\"*p\",\"b\":\"x\"}"},
      {"points_to", "{\"id\":3,\"method\":\"points_to\",\"name\":\"table\"}"},
  };
  std::printf("%-12s %12s %14s\n", "method", "reqs", "queries/sec");
  for (const Q &Query : Queries) {
    const int N = 2000;
    double Ms = timeMs([&] {
      bool Shutdown = false;
      std::ostringstream Log;
      for (int I = 0; I < N; ++I)
        (void)S.handleLine(Query.Line, Shutdown, Log);
    });
    std::printf("%-12s %12d %14.0f\n", Query.Name, N,
                Ms > 0 ? N * 1000.0 / Ms : 0.0);
  }
  std::printf("\n");
}

//===----------------------------------------------------------------------===//
// google-benchmark timers
//===----------------------------------------------------------------------===//

void BM_AnalyzeColdVsWarm(benchmark::State &State) {
  const bool Warm = State.range(0) != 0;
  const corpus::CorpusProgram &CP = corpus::corpus()[0];
  const std::string Req = std::string("{\"id\":1,\"method\":\"analyze\","
                                      "\"corpus\":\"") +
                          CP.Name + "\"}";
  Server::Config Cfg;
  Server S(Cfg);
  if (Warm)
    request(S, Req); // prime the cache once
  for (auto _ : State) {
    if (!Warm) {
      // Cold on every iteration: drop the cached entry first (the
      // invalidation itself is outside what a cold analyze costs, but
      // it is microseconds against milliseconds of analysis).
      bool Shutdown = false;
      std::ostringstream Log;
      (void)S.handleLine("{\"id\":0,\"method\":\"invalidate\"}", Shutdown, Log);
    }
    std::string Reply = request(S, Req);
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_AnalyzeColdVsWarm)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_AliasQuery(benchmark::State &State) {
  Server::Config Cfg;
  Server S(Cfg);
  request(S, "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  bool Shutdown = false;
  std::ostringstream Log;
  for (auto _ : State) {
    std::string Reply = S.handleLine(
        "{\"id\":2,\"method\":\"alias\",\"a\":\"*p\",\"b\":\"x\"}", Shutdown,
        Log);
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_AliasQuery)->Unit(benchmark::kMicrosecond);

void BM_PointsToQuery(benchmark::State &State) {
  Server::Config Cfg;
  Server S(Cfg);
  request(S, "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  bool Shutdown = false;
  std::ostringstream Log;
  for (auto _ : State) {
    std::string Reply = S.handleLine(
        "{\"id\":3,\"method\":\"points_to\",\"name\":\"table\"}", Shutdown,
        Log);
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_PointsToQuery)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printColdWarmSweep();
  printQueryThroughput();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "serve"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
