//===- BenchUtil.h - shared benchmark harness helpers -----------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Each bench binary regenerates one of the paper's tables or figures
// over the embedded benchmark corpus (DESIGN.md substitution 2: absolute
// numbers differ from the paper — the corpus is a stand-in — but the
// shapes must match) and then times the underlying computation with
// google-benchmark.
//
//===----------------------------------------------------------------------===//

#ifndef MCPTA_BENCH_BENCHUTIL_H
#define MCPTA_BENCH_BENCHUTIL_H

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "support/Telemetry.h"
#include "support/Version.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

namespace mcpta {
namespace benchutil {

/// Analyzes one corpus program, aborting the binary on any error (the
/// corpus is part of the repository; failures are bugs).
inline Pipeline analyzeCorpus(const corpus::CorpusProgram &CP) {
  Pipeline P = Pipeline::analyzeSource(CP.Source);
  if (P.Diags.hasErrors() || !P.Analysis.Analyzed) {
    std::fprintf(stderr, "FATAL: corpus program '%s' failed to analyze:\n%s",
                 CP.Name, P.Diags.dump().c_str());
    std::abort();
  }
  return P;
}

/// Counts source lines (the corpus stand-in for Table 2's "Lines").
inline unsigned countLines(const char *Source) {
  unsigned N = 0;
  for (const char *P = Source; *P; ++P)
    if (*P == '\n')
      ++N;
  return N;
}

inline void printHeader(const char *Table, const char *Description) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", Table, Description);
  std::printf("(corpus programs are miniature stand-ins for the paper's "
              "benchmarks;\n absolute values differ, shapes should hold — "
              "see DESIGN.md)\n");
  std::printf("==============================================================="
              "=================\n");
}

//===----------------------------------------------------------------------===//
// Machine-readable stats export (BENCH_*.json trajectories)
//===----------------------------------------------------------------------===//

/// Extracts `--stats-json=FILE` (or `--stats-json FILE`) from argv
/// before google-benchmark sees it (it rejects unknown flags). Returns
/// the requested path, or "" when the flag is absent. Also honors the
/// MCPTA_STATS_JSON environment variable as a fallback, so CI can drive
/// every bench binary uniformly.
inline std::string statsJsonPath(int &argc, char **argv) {
  std::string Path;
  int W = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--stats-json=", 0) == 0) {
      Path = Arg.substr(std::strlen("--stats-json="));
      continue;
    }
    if (Arg == "--stats-json" && I + 1 < argc) {
      Path = argv[++I];
      continue;
    }
    argv[W++] = argv[I];
  }
  argc = W;
  if (Path.empty())
    if (const char *Env = std::getenv("MCPTA_STATS_JSON"))
      Path = Env;
  return Path;
}

/// Analyzes every corpus program with telemetry enabled and writes one
/// JSON document keyed by program name, each entry being the run's full
/// stats object (counters, histogram summaries, per-phase wall times):
///
///   {"schema":"mcpta-bench-stats-v1","bench":"table3",
///    "programs":{"hash":{...},"misc":{...}}}
///
/// This is the machine-readable side of each bench binary's table — the
/// building block for BENCH_*.json trajectory tracking. Returns false
/// (after printing an error) if the file cannot be written.
inline bool writeCorpusStatsJson(const std::string &Path,
                                 const char *BenchName) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write stats JSON to '%s'\n",
                 Path.c_str());
    return false;
  }
  OS << "{\"schema\":\"mcpta-bench-stats-v1\",\"bench\":\""
     << support::Telemetry::jsonEscape(BenchName) << "\",\"tool_version\":\""
     << support::Telemetry::jsonEscape(version::kToolVersion)
     << "\",\"programs\":{";
  bool First = true;
  for (const corpus::CorpusProgram &CP : corpus::corpus()) {
    Pipeline P = Pipeline::analyzeSourceTraced(CP.Source);
    if (P.Diags.hasErrors() || !P.Analysis.Analyzed) {
      std::fprintf(stderr,
                   "FATAL: corpus program '%s' failed to analyze:\n%s",
                   CP.Name, P.Diags.dump().c_str());
      std::abort();
    }
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << support::Telemetry::jsonEscape(CP.Name) << "\":";
    P.Telem->writeStatsJson(OS);
  }
  OS << "}}\n";
  return bool(OS);
}

} // namespace benchutil
} // namespace mcpta

#endif // MCPTA_BENCH_BENCHUTIL_H
