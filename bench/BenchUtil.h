//===- BenchUtil.h - shared benchmark harness helpers -----------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Each bench binary regenerates one of the paper's tables or figures
// over the embedded benchmark corpus (DESIGN.md substitution 2: absolute
// numbers differ from the paper — the corpus is a stand-in — but the
// shapes must match) and then times the underlying computation with
// google-benchmark.
//
//===----------------------------------------------------------------------===//

#ifndef MCPTA_BENCH_BENCHUTIL_H
#define MCPTA_BENCH_BENCHUTIL_H

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace mcpta {
namespace benchutil {

/// Analyzes one corpus program, aborting the binary on any error (the
/// corpus is part of the repository; failures are bugs).
inline Pipeline analyzeCorpus(const corpus::CorpusProgram &CP) {
  Pipeline P = Pipeline::analyzeSource(CP.Source);
  if (P.Diags.hasErrors() || !P.Analysis.Analyzed) {
    std::fprintf(stderr, "FATAL: corpus program '%s' failed to analyze:\n%s",
                 CP.Name, P.Diags.dump().c_str());
    std::abort();
  }
  return P;
}

/// Counts source lines (the corpus stand-in for Table 2's "Lines").
inline unsigned countLines(const char *Source) {
  unsigned N = 0;
  for (const char *P = Source; *P; ++P)
    if (*P == '\n')
      ++N;
  return N;
}

inline void printHeader(const char *Table, const char *Description) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", Table, Description);
  std::printf("(corpus programs are miniature stand-ins for the paper's "
              "benchmarks;\n absolute values differ, shapes should hold — "
              "see DESIGN.md)\n");
  std::printf("==============================================================="
              "=================\n");
}

} // namespace benchutil
} // namespace mcpta

#endif // MCPTA_BENCH_BENCHUTIL_H
