//===- bench_alias.cpp - Figures 8 & 9: points-to pairs vs alias pairs ---------===//
//
// Regenerates the Sec. 7.1 comparison of the points-to abstraction
// against exhaustive alias pairs:
//
//   Figure 8 — after  x = &y; y = &z; y = &w;  the points-to set holds
//   2 pairs and its alias closure does NOT contain the Landi/Ryder
//   spurious pair (**x, z).
//
//   Figure 9 — branches  a = &b  /  b = &c  merge into possible pairs
//   whose closure contains the artifact (**a, c) that alias pairs avoid
//   — the case the paper concedes.
//
// Also reports, per corpus program, the compactness of the points-to
// abstraction: pairs in the final set vs alias pairs implied by it.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "clients/AliasPairs.h"

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::clients;

namespace {

void printFigures() {
  printHeader("Figures 8 & 9", "Points-to Pairs vs. Alias Pairs");

  {
    Pipeline P = Pipeline::analyzeSource(R"(
      int main(void) {
        int **x; int *y; int z; int w;
        x = &y;
        y = &z;
        y = &w;
        return 0;
      })");
    auto Pairs = aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 2);
    std::printf("Figure 8: points-to set at S3: %s\n",
                P.Analysis.MainOut->str(*P.Analysis.Locs).c_str());
    std::printf("  alias pairs implied: %zu; contains spurious (**x,z): "
                "%s (paper: no)\n",
                Pairs.size(), hasAlias(Pairs, "**x", "z") ? "YES" : "no");
  }
  {
    Pipeline P = Pipeline::analyzeSource(R"(
      int main(void) {
        int **a; int *b; int c;
        if (c)
          a = &b;
        else
          b = &c;
        return 0;
      })");
    auto Pairs = aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 2);
    std::printf("Figure 9: points-to set at S3: %s\n",
                P.Analysis.MainOut->str(*P.Analysis.Locs).c_str());
    std::printf("  alias closure contains artifact (**a,c): %s (paper: "
                "yes — the one case\n  where alias pairs are more "
                "precise)\n\n",
                hasAlias(Pairs, "**a", "c") ? "yes" : "NO");
  }

  std::printf("%-10s %14s %12s %8s\n", "Benchmark", "points-to", "alias",
              "ratio");
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = analyzeCorpus(CP);
    if (!P.Analysis.MainOut)
      continue;
    size_t Pt = P.Analysis.MainOut->size();
    auto Pairs = aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 2);
    std::printf("%-10s %14zu %12zu %8.2f\n", CP.Name, Pt, Pairs.size(),
                Pt ? static_cast<double>(Pairs.size()) / Pt : 0);
  }
  std::printf("\n(points-to is the more compact representation; alias "
              "pairs grow by the\ntransitive closure)\n\n");
}

void BM_AliasClosure(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  Pipeline P = analyzeCorpus(CP);
  if (!P.Analysis.MainOut) {
    State.SkipWithError("program has bottom output");
    return;
  }
  for (auto _ : State) {
    auto Pairs = aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 2);
    benchmark::DoNotOptimize(Pairs.size());
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_AliasClosure)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printFigures();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "alias"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
