#!/usr/bin/env python3
"""Perf smoke gate for the bench binaries.

Compares measured mcpta-bench-stats-v1 exports against a stored baseline
(bench/baselines/perf-smoke.json) and fails on wall-time regression.

Usage:
    check_perf_smoke.py BASELINE MEASURED.json [MEASURED.json ...]
    check_perf_smoke.py --record BASELINE MEASURED.json [...]

Each MEASURED.json is the output of a bench binary's --stats-json flag,
e.g. `bench_scaling --stats-json=s.json --benchmark_filter='^$'`.
Multiple exports from the same bench are allowed (run each binary a few
times); the gate takes the minimum, which filters out scheduler noise.

A gate fails when min(measured) > baseline * (1 + tolerance). Tolerance
comes from the baseline file (default 0.20) and can be overridden with
--tolerance or the MCPTA_PERF_TOLERANCE environment variable — raise it
temporarily if a CI runner generation is slower than the recorded host.

Gates with a recorded peak_rss_kb also compare the export's
mem.peak_rss_kb gauge, under the baseline's mem_tolerance (default
0.35 — RSS is noisier across allocators and runner generations than
wall time). A memory regression fails the same way a wall-time one
does.

Gates carrying a query_us field instead of total_us are demand-query
latency gates: they read mcpta-demand-bench-v1 exports (bench_demand's
--demand-bench-json output) and compare the median warm per-query
demand_ms on incrstress against the recorded budget, under the same
wall-time tolerance.

Gates carrying a min_speedup field are parallel-speedup floors: they
read mcpta-par-bench-v1 exports (bench_parallel's --par-bench-json
output) and require the named section's T=4-vs-T=1 speedup to reach
the floor. Unlike latency gates these are fixed requirements, not
recorded measurements, so --record leaves them untouched. The gate is
skipped (with a note) when every export reports fewer host cores than
bench threads — a 4-thread run cannot speed up on a 1-core runner.

--record rewrites the baseline's total_us/peak_rss_kb (and query_us)
fields from the measured minimums (keeping the gate list and
tolerances), for refreshing after an intentional perf change.
"""

import argparse
import datetime
import json
import os
import sys

# Top-level pipeline phases; nested spans (ig-build, pointsto) are
# already counted inside "analyze".
TOP_PHASES = ("lex", "parse", "simplify", "analyze")


def program_total_us(doc, program):
    progs = doc.get("programs", {})
    if program not in progs:
        raise KeyError(f"program '{program}' missing from stats export "
                       f"(bench '{doc.get('bench')}')")
    phases = progs[program].get("phases_us", {})
    return sum(phases.get(p, 0) for p in TOP_PHASES)


def program_peak_rss_kb(doc, program):
    """The mem.peak_rss_kb gauge for one program, or 0 when the export
    predates memory telemetry (or getrusage failed)."""
    progs = doc.get("programs", {})
    if program not in progs:
        raise KeyError(f"program '{program}' missing from stats export "
                       f"(bench '{doc.get('bench')}')")
    return int(progs[program].get("gauges", {}).get("mem.peak_rss_kb", 0))


def demand_query_us(doc):
    """Median warm per-query latency of a mcpta-demand-bench-v1 export's
    incrstress query table, in microseconds."""
    queries = doc.get("incrstress", {}).get("queries", [])
    if not queries:
        raise KeyError("no incrstress queries in demand bench export")
    vals = sorted(q["demand_ms"] for q in queries)
    return int(vals[len(vals) // 2] * 1000)


def par_speedup(doc, program):
    """The measured speedup of one mcpta-par-bench-v1 section
    ('incrstress' or 'batch')."""
    sec = doc.get(program)
    if not isinstance(sec, dict) or "speedup" not in sec:
        raise KeyError(f"section '{program}' missing from parallel bench "
                       f"export")
    return float(sec["speedup"])


def load_measurements(paths):
    """Maps bench name -> list of parsed stats documents. Demand bench
    exports (mcpta-demand-bench-v1) land under the 'demand-query' key,
    parallel bench exports (mcpta-par-bench-v1) under 'parallel' —
    the bench names their gate kinds use."""
    by_bench = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("format") == "mcpta-demand-bench-v1":
            by_bench.setdefault("demand-query", []).append(doc)
            continue
        if doc.get("format") == "mcpta-par-bench-v1":
            by_bench.setdefault("parallel", []).append(doc)
            continue
        if doc.get("schema") != "mcpta-bench-stats-v1":
            sys.exit(f"error: {path}: not an mcpta-bench-stats-v1 export "
                     f"(schema={doc.get('schema')!r})")
        by_bench.setdefault(doc["bench"], []).append(doc)
    return by_bench


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("measured", nargs="+")
    ap.add_argument("--record", action="store_true",
                    help="rewrite baseline totals from the measurements")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="override the baseline's tolerance fraction")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") != "mcpta-perf-smoke-baseline-v1":
        sys.exit(f"error: {args.baseline}: unknown baseline schema "
                 f"{baseline.get('schema')!r}")

    tolerance = baseline.get("tolerance", 0.20)
    if os.environ.get("MCPTA_PERF_TOLERANCE"):
        tolerance = float(os.environ["MCPTA_PERF_TOLERANCE"])
    if args.tolerance is not None:
        tolerance = args.tolerance
    mem_tolerance = baseline.get("mem_tolerance", 0.35)
    if os.environ.get("MCPTA_MEM_TOLERANCE"):
        mem_tolerance = float(os.environ["MCPTA_MEM_TOLERANCE"])

    by_bench = load_measurements(args.measured)

    failures = []
    for gate in baseline["gates"]:
        bench, program = gate["bench"], gate["program"]
        docs = by_bench.get(bench)
        if not docs:
            failures.append(f"{bench}/{program}: no measured stats export "
                            f"for bench '{bench}'")
            continue

        if "min_speedup" in gate:
            # Fixed floor, not a recorded measurement: nothing to
            # rewrite under --record.
            if args.record:
                print(f"record {bench}/{program}: min_speedup="
                      f"{gate['min_speedup']} kept (fixed floor)")
                continue
            capable = [d for d in docs
                       if int(d.get("cores", 0)) >= int(d.get("threads", 0))]
            if not capable:
                cores = max(int(d.get("cores", 0)) for d in docs)
                threads = max(int(d.get("threads", 0)) for d in docs)
                print(f"--  {bench}/{program}: skipped — host has {cores} "
                      f"core(s), bench ran {threads} threads")
                continue
            measured = max(par_speedup(d, program) for d in capable)
            floor = gate["min_speedup"]
            verdict = "ok" if measured >= floor else "FAIL"
            print(f"{verdict} {bench}/{program}: speedup {measured:.2f}x "
                  f"vs required {floor}x (n={len(capable)})")
            if measured < floor:
                failures.append(f"{bench}/{program}: speedup "
                                f"{measured:.2f}x below the {floor}x floor")
            continue

        if "query_us" in gate:
            measured = min(demand_query_us(d) for d in docs)
            if args.record:
                gate["query_us"] = measured
                print(f"record {bench}/{program}: query_us={measured}")
                continue
            budget = gate["query_us"] * (1.0 + tolerance)
            ratio = measured / gate["query_us"] if gate["query_us"] else 0.0
            verdict = "ok" if measured <= budget else "FAIL"
            print(f"{verdict} {bench}/{program}: demand query {measured}us "
                  f"vs baseline {gate['query_us']}us ({ratio:.2f}x, "
                  f"budget {budget:.0f}us, n={len(docs)})")
            if measured > budget:
                failures.append(f"{bench}/{program}: demand query "
                                f"{ratio:.2f}x baseline exceeds "
                                f"+{tolerance:.0%} tolerance")
            continue

        measured = min(program_total_us(d, program) for d in docs)
        measured_rss = min(program_peak_rss_kb(d, program) for d in docs)
        if args.record:
            gate["total_us"] = measured
            gate["peak_rss_kb"] = measured_rss
            print(f"record {bench}/{program}: total_us={measured} "
                  f"peak_rss_kb={measured_rss}")
            continue
        budget = gate["total_us"] * (1.0 + tolerance)
        ratio = measured / gate["total_us"] if gate["total_us"] else 0.0
        verdict = "ok" if measured <= budget else "FAIL"
        print(f"{verdict} {bench}/{program}: measured {measured}us vs "
              f"baseline {gate['total_us']}us ({ratio:.2f}x, "
              f"budget {budget:.0f}us, n={len(docs)})")
        if measured > budget:
            failures.append(f"{bench}/{program}: {ratio:.2f}x baseline "
                            f"exceeds +{tolerance:.0%} tolerance")

        base_rss = gate.get("peak_rss_kb", 0)
        if base_rss and measured_rss:
            rss_budget = base_rss * (1.0 + mem_tolerance)
            rss_ratio = measured_rss / base_rss
            verdict = "ok" if measured_rss <= rss_budget else "FAIL"
            print(f"{verdict} {bench}/{program}: peak RSS {measured_rss}kB "
                  f"vs baseline {base_rss}kB ({rss_ratio:.2f}x, "
                  f"budget {rss_budget:.0f}kB)")
            if measured_rss > rss_budget:
                failures.append(
                    f"{bench}/{program}: peak RSS {rss_ratio:.2f}x baseline "
                    f"exceeds +{mem_tolerance:.0%} mem tolerance")
        elif not base_rss:
            print(f"--  {bench}/{program}: no peak_rss_kb in baseline "
                  f"(re-record to enable the memory gate)")

    if args.record:
        if failures:
            sys.exit("error: " + "; ".join(failures))
        baseline["recorded"] = datetime.date.today().isoformat()
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"baseline rewritten: {args.baseline}")
        return

    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        sys.exit(1)
    print("perf smoke passed")


if __name__ == "__main__":
    main()
