//===- bench_table4.cpp - Table 4: from/to categorization ----------------------===//
//
// Regenerates Table 4: the points-to pairs used by indirect references,
// categorized by the kind of the source (the dereferenced pointer) and
// the kind of the stack target: local, global, formal parameter, or
// symbolic name.
//
// Paper shape: most relationships arise FROM formal parameters and are
// directed TO globals or symbolic names — the observation motivating
// context-sensitive interprocedural analysis (Sec. 6).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "clients/IndirectRefStats.h"

using namespace mcpta;
using namespace mcpta::benchutil;
using namespace mcpta::clients;

namespace {

void printTable() {
  printHeader("Table 4",
              "Categorization of Points-to Information Used by Indirect "
              "References");
  std::printf("%-10s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "Benchmark",
              "Fr:lo", "Fr:gl", "Fr:fp", "Fr:sy", "To:lo", "To:gl",
              "To:fp", "To:sy");
  unsigned long long FromFormal = 0, FromOther = 0;
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = analyzeCorpus(CP);
    auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    const IndirectRefCategories &C = A.Categories;
    std::printf("%-10s | %6u %6u %6u %6u | %6u %6u %6u %6u\n", CP.Name,
                C.FromLocal, C.FromGlobal, C.FromFormal, C.FromSymbolic,
                C.ToLocal, C.ToGlobal, C.ToFormal, C.ToSymbolic);
    FromFormal += C.FromFormal;
    FromOther += C.FromLocal + C.FromGlobal + C.FromSymbolic;
  }
  std::printf("\nOverall: %.1f%% of used pairs originate at formal "
              "parameters (the paper's\nheadline: procedure calls "
              "generate the majority of points-to relationships,\nhence "
              "context-sensitive interprocedural analysis).\n\n",
              FromFormal + FromOther
                  ? 100.0 * FromFormal / (FromFormal + FromOther)
                  : 0);
}

void BM_Categorization(benchmark::State &State) {
  const auto &CP = corpus::corpus()[State.range(0)];
  Pipeline P = analyzeCorpus(CP);
  for (auto _ : State) {
    auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    benchmark::DoNotOptimize(A.Categories.FromFormal);
  }
  State.SetLabel(CP.Name);
}
BENCHMARK(BM_Categorization)->DenseRange(0, 16);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printTable();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "table4"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
