//===- bench_scaling.cpp - analysis cost scaling -------------------------------===//
//
// The Sec. 6 practicality question: the invocation-graph approach is
// theoretically exponential; is it practical? Sweeps generated programs
// over function count, statement count, and feature mix, reporting
// invocation graph sizes and analysis times.
//
// Expected shape: near-linear growth for direct-call programs;
// super-linear growth when dense function-pointer dispatch and
// recursion combine (the known worst case, see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::benchutil;

namespace {

void printSweep() {
  printHeader("Scaling sweep", "Analysis cost vs. program size/features");
  std::printf("%-26s %8s %9s %9s %9s %9s\n", "configuration", "stmts",
              "ig-nodes", "bodies", "memohits", "loop-its");
  struct Config {
    const char *Name;
    unsigned Fns;
    unsigned Stmts;
    bool FnPtrs;
    bool Rec;
  };
  const Config Configs[] = {
      {"direct small (4 fns)", 4, 8, false, false},
      {"direct medium (8 fns)", 8, 12, false, false},
      {"direct large (16 fns)", 16, 16, false, false},
      {"recursive (8 fns)", 8, 12, false, true},
      {"fnptr (6 fns)", 6, 10, true, false},
      {"fnptr+rec (6 fns)", 6, 10, true, true},
      {"fnptr+rec (8 fns)", 8, 12, true, true},
  };
  for (const Config &C : Configs) {
    wlgen::GenConfig Cfg;
    Cfg.Seed = 42;
    Cfg.NumFunctions = C.Fns;
    Cfg.StmtsPerFunction = C.Stmts;
    Cfg.UseFunctionPointers = C.FnPtrs;
    Cfg.UseRecursion = C.Rec;
    std::string Src = wlgen::generateProgram(Cfg);
    Pipeline P = Pipeline::analyzeSource(Src);
    if (!P.Analysis.Analyzed) {
      std::printf("%-26s <failed>\n", C.Name);
      continue;
    }
    std::printf("%-26s %8u %9u %9u %9u %9u\n", C.Name,
                P.Prog->numBasicStmts(), P.Analysis.IG->numNodes(),
                P.Analysis.BodyAnalyses, P.Analysis.MemoHits,
                P.Analysis.LoopIterations);
  }
  std::printf("\n");
}

void BM_AnalyzeGenerated(benchmark::State &State) {
  wlgen::GenConfig Cfg;
  Cfg.Seed = 42;
  Cfg.NumFunctions = static_cast<unsigned>(State.range(0));
  Cfg.StmtsPerFunction = 12;
  std::string Src = wlgen::generateProgram(Cfg);
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(Src);
    benchmark::DoNotOptimize(P.Analysis.Analyzed);
  }
}
// Capped at 16 functions: the context-sensitive call tree grows
// exponentially with the function count (the paper's worst case); 32
// would run for hours.
BENCHMARK(BM_AnalyzeGenerated)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeGeneratedFnPtrs(benchmark::State &State) {
  wlgen::GenConfig Cfg;
  Cfg.Seed = 42;
  Cfg.NumFunctions = static_cast<unsigned>(State.range(0));
  Cfg.UseFunctionPointers = true;
  Cfg.UseRecursion = true;
  std::string Src = wlgen::generateProgram(Cfg);
  for (auto _ : State) {
    Pipeline P = Pipeline::analyzeSource(Src);
    benchmark::DoNotOptimize(P.Analysis.Analyzed);
  }
}
BENCHMARK(BM_AnalyzeGeneratedFnPtrs)->RangeMultiplier(2)->Range(2, 8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsJson = mcpta::benchutil::statsJsonPath(argc, argv);
  printSweep();
  if (!StatsJson.empty() &&
      !mcpta::benchutil::writeCorpusStatsJson(StatsJson, "scaling"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
