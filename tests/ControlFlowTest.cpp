//===- ControlFlowTest.cpp - compositional rule tests --------------------------===//
//
// Figure 1's if/while rules plus the break/continue/return channels.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

TEST(ControlFlowTest, IfMergeMakesPossible) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int c; int *p;
      c = 1;
      if (c) p = &x; else p = &y;
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, IfBothBranchesSameStaysDefinite) {
  auto P = analyze(R"(
    int main(void) {
      int x; int c; int *p;
      c = 1;
      if (c) p = &x; else p = &x;
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(ControlFlowTest, IfWithoutElseKeepsInput) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int c; int *p;
      c = 0;
      p = &x;
      if (c) p = &y;
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, NestedIfPrecision) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int z; int c; int *p;
      c = 1;
      if (c) {
        if (c) p = &x; else p = &y;
      } else {
        p = &z;
      }
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "z", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, WhileReachesFixedPoint) {
  // Inside the loop p alternates; after it p may point to x or y.
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int n; int *p;
      p = &x;
      n = 10;
      while (n > 0) {
        p = &y;
        n = n - 1;
      }
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, LoopInvariantPointerStaysDefinite) {
  auto P = analyze(R"(
    int main(void) {
      int x; int n; int *p;
      p = &x;
      n = 5;
      while (n > 0) { *p = n; n = n - 1; }
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(ControlFlowTest, PointerChainGrowsInLoopTerminates) {
  // Builds a chain through locals in a loop — the fixed point must
  // terminate and the result stay safe.
  auto P = analyze(R"(
    void *malloc(int n);
    struct N { struct N *next; };
    int main(void) {
      struct N *head; struct N *t;
      int n;
      head = NULL;
      n = 4;
      while (n > 0) {
        t = (struct N *)malloc(8);
        t->next = head;
        head = t;
        n = n - 1;
      }
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "head", "heap", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "heap", "heap", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, DoWhileRunsAtLeastOnce) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int n; int *p;
      p = &x;
      n = 3;
      do { p = &y; n = n - 1; } while (n > 0);
      return *p;
    })");
  // The body always runs, so p definitely points to y afterwards.
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(ControlFlowTest, BreakChannelMergesAtExit) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int n; int *p;
      p = &x;
      n = 9;
      while (n > 0) {
        if (n == 5) { p = &y; break; }
        n = n - 1;
      }
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, ContinueRunsForStep) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int i; int *p;
      p = &x;
      for (i = 0; i < 4; i++) {
        if (i == 2) continue;
        p = &y;
      }
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, InfiniteLoopOnlyExitsThroughBreak) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int *p;
      p = &x;
      while (1) {
        p = &y;
        break;
      }
      return *p;
    })");
  // The only exit is the break, after p = &y: definite.
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(ControlFlowTest, EarlyReturnMergesIntoFunctionOutput) {
  auto P = analyze(R"(
    int g;
    int *gp;
    void f(int c) {
      gp = &g;
      if (c)
        return;
      gp = NULL;
    }
    int main(void) {
      f(1);
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "gp", "NULL", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, CodeAfterReturnIsDead) {
  auto P = analyze(R"(
    int g; int *gp;
    int main(void) {
      gp = &g;
      return 0;
      gp = NULL;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "gp", "NULL")) << mainOut(P);
}

TEST(ControlFlowTest, SwitchMergesAllCases) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int z; int c; int *p;
      c = 2;
      p = &x;
      switch (c) {
      case 1: p = &y; break;
      case 2: p = &z; break;
      }
      return *p;
    })");
  // No default: the input can also flow around.
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "z", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, SwitchWithDefaultCoversInput) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int c; int *p;
      c = 1;
      p = &x;
      switch (c) {
      case 1: p = &y; break;
      default: p = &y; break;
      }
      return *p;
    })");
  // Every path reassigns p.
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(ControlFlowTest, SwitchFallthroughFlows) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int c; int *p; int *q;
      c = 1;
      p = NULL; q = NULL;
      switch (c) {
      case 1: p = &x; /* fallthrough */
      case 2: q = p; break;
      default: break;
      }
      return 0;
    })");
  // Via fallthrough q can pick up p = &x.
  EXPECT_TRUE(mainHasPair(P, "q", "x", 'P')) << mainOut(P);
}

TEST(ControlFlowTest, ExitMakesRestUnreachable) {
  auto P = analyze(R"(
    void exit(int c);
    int g; int *gp;
    int main(void) {
      gp = &g;
      if (*gp) {
        gp = NULL;
        exit(1);
      }
      return 0;
    })");
  // The NULL assignment is followed by exit: it never reaches the end.
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "gp", "NULL")) << mainOut(P);
}

} // namespace
