//===- PointerReplaceTest.cpp - pointer replacement transformation tests -------===//

#include "TestUtil.h"

#include "clients/PointerReplace.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::testutil;

namespace {

TEST(PointerReplaceTest, DefiniteSingleTargetReplaced) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int *q;
      q = &y;
      x = *q;
      return x;
    })");
  auto R = replacePointers(*P.Prog, P.Analysis);
  EXPECT_EQ(R.Replaced, 1u);
  // The paper's example: x = *q becomes x = y.
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("= y;"), std::string::npos) << S;
  EXPECT_EQ(S.find("(*q)"), std::string::npos) << S;
}

TEST(PointerReplaceTest, PossibleTargetNotReplaced) {
  auto P = analyze(R"(
    int main(void) {
      int x; int a; int b; int c; int *q;
      if (c) q = &a; else q = &b;
      x = *q;
      return x;
    })");
  auto R = replacePointers(*P.Prog, P.Analysis);
  EXPECT_EQ(R.Replaced, 0u);
  EXPECT_GE(R.Candidates, 1u);
}

TEST(PointerReplaceTest, InvisibleTargetNotReplaced) {
  // Footnote 7: no replacement when the pointer definitely points to an
  // invisible variable.
  auto P = analyze(R"(
    int readThrough(int **pp) { return **pp; }
    int main(void) {
      int x; int *p;
      p = &x;
      return readThrough(&p);
    })");
  auto R = replacePointers(*P.Prog, P.Analysis);
  // *pp inside readThrough points to the symbolic 1_pp: not nameable.
  EXPECT_EQ(R.Replaced, 0u);
}

TEST(PointerReplaceTest, HeapTargetNotReplaced) {
  auto P = analyze(R"(
    void *malloc(int);
    int main(void) {
      int *p;
      p = (int *)malloc(4);
      return *p;
    })");
  auto R = replacePointers(*P.Prog, P.Analysis);
  EXPECT_EQ(R.Replaced, 0u);
}

TEST(PointerReplaceTest, WriteSideReplaced) {
  auto P = analyze(R"(
    int main(void) {
      int y; int *q;
      q = &y;
      *q = 5;
      return y;
    })");
  auto R = replacePointers(*P.Prog, P.Analysis);
  EXPECT_EQ(R.Replaced, 1u);
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("y = 5;"), std::string::npos) << S;
}

TEST(PointerReplaceTest, FieldTargetNotReplacedDirectly) {
  // Targets with paths (s.f) are not plain variables; conservatively
  // kept as dereferences.
  auto P = analyze(R"(
    struct S { int f; };
    int main(void) {
      struct S s; int *q;
      q = &s.f;
      return *q;
    })");
  auto R = replacePointers(*P.Prog, P.Analysis);
  EXPECT_EQ(R.Replaced, 0u);
}

} // namespace
