//===- LexerTest.cpp - lexer unit tests ----------------------------------------===//

#include "cfront/Lexer.h"

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::cfront;

namespace {

std::vector<Token> lex(const std::string &Src, DiagnosticsEngine &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::vector<Token> lexOk(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Tokens = lex(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.dump();
  return Tokens;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, Identifiers) {
  auto Tokens = lexOk("foo _bar baz42");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "baz42");
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
}

TEST(LexerTest, Keywords) {
  auto Tokens = lexOk("int while struct return");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwStruct);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwReturn);
}

TEST(LexerTest, NullMacroIsKeyword) {
  auto Tokens = lexOk("NULL");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwNull);
}

TEST(LexerTest, IntLiterals) {
  auto Tokens = lexOk("0 42 0x1f 100L 7u");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 31);
  EXPECT_EQ(Tokens[3].IntValue, 100);
  EXPECT_EQ(Tokens[4].IntValue, 7);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lexOk("3.14 1e10 2.5e-3 1.0f");
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::FloatLiteral) << I;
  EXPECT_DOUBLE_EQ(Tokens[0].FloatValue, 3.14);
  EXPECT_DOUBLE_EQ(Tokens[1].FloatValue, 1e10);
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 2.5e-3);
}

TEST(LexerTest, IntegerFollowedByDotMember) {
  // "x.y" after an int: the dot must not be glued into a float.
  auto Tokens = lexOk("a.b");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Dot);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(LexerTest, CharLiterals) {
  auto Tokens = lexOk("'a' '\\n' '\\0'");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
}

TEST(LexerTest, StringLiterals) {
  auto Tokens = lexOk("\"hello\\tworld\"");
  ASSERT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "hello\tworld");
}

TEST(LexerTest, Operators) {
  auto Tokens =
      lexOk("+ ++ += - -- -= -> * *= / /= % %= & && &= | || |= ^ ^= ! != "
            "= == < <= << <<= > >= >> >>= ~ ? : . ...");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,        TokenKind::PlusPlus,
      TokenKind::PlusEqual,   TokenKind::Minus,
      TokenKind::MinusMinus,  TokenKind::MinusEqual,
      TokenKind::Arrow,       TokenKind::Star,
      TokenKind::StarEqual,   TokenKind::Slash,
      TokenKind::SlashEqual,  TokenKind::Percent,
      TokenKind::PercentEqual, TokenKind::Amp,
      TokenKind::AmpAmp,      TokenKind::AmpEqual,
      TokenKind::Pipe,        TokenKind::PipePipe,
      TokenKind::PipeEqual,   TokenKind::Caret,
      TokenKind::CaretEqual,  TokenKind::Bang,
      TokenKind::BangEqual,   TokenKind::Equal,
      TokenKind::EqualEqual,  TokenKind::Less,
      TokenKind::LessEqual,   TokenKind::LessLess,
      TokenKind::LessLessEqual, TokenKind::Greater,
      TokenKind::GreaterEqual, TokenKind::GreaterGreater,
      TokenKind::GreaterGreaterEqual, TokenKind::Tilde,
      TokenKind::Question,    TokenKind::Colon,
      TokenKind::Dot,         TokenKind::Ellipsis,
  };
  ASSERT_GE(Tokens.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Tokens = lexOk("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(LexerTest, UnterminatedBlockCommentDiagnosed) {
  DiagnosticsEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, PreprocessorLinesSkipped) {
  auto Tokens = lexOk("#include <stdio.h>\nint x;");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto Tokens = lexOk("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(LexerTest, InvalidCharacterDiagnosed) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing recovers: both identifiers still present.
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

} // namespace
