//===- SimplifierTest.cpp - AST-to-SIMPLE lowering tests -----------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::simple;

namespace {

Pipeline lower(const std::string &Src) {
  Pipeline P = Pipeline::frontend(Src);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  EXPECT_NE(P.Prog, nullptr);
  return P;
}

/// P3: every reference in every basic statement has at most one level of
/// indirection, and dereference bases are plain pointer variables.
void checkRefInvariant(const Reference &R) {
  ASSERT_TRUE(R.isValid());
  if (R.Deref) {
    ASSERT_NE(R.Base->type(), nullptr);
    EXPECT_TRUE(R.Base->type()->isPointer())
        << "deref base " << R.Base->name() << " must be a plain pointer";
  }
}

void checkOperand(const Operand &O) {
  if (O.isRef())
    checkRefInvariant(O.Ref);
}

void checkStmtInvariant(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    checkRefInvariant(A->Lhs);
    checkOperand(A->A);
    checkOperand(A->B);
    for (const Operand &Arg : A->Call.Args)
      checkOperand(Arg);
    break;
  }
  case Stmt::Kind::Call: {
    const auto *C = castStmt<CallStmt>(S);
    // Paper: procedure arguments are constants or variable names.
    for (const Operand &Arg : C->Call.Args)
      if (Arg.isRef()) {
        EXPECT_FALSE(Arg.Ref.Deref);
        EXPECT_FALSE(Arg.Ref.AddrOf);
        EXPECT_TRUE(Arg.Ref.Path.empty());
      }
    if (C->Call.isIndirect()) {
      EXPECT_FALSE(C->Call.FnPtr.Deref);
      EXPECT_TRUE(C->Call.FnPtr.Path.empty());
    }
    break;
  }
  case Stmt::Kind::Block:
    for (const Stmt *Child : castStmt<BlockStmt>(S)->Body)
      checkStmtInvariant(Child);
    break;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    checkStmtInvariant(I->Then);
    checkStmtInvariant(I->Else);
    break;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    checkStmtInvariant(L->Body);
    checkStmtInvariant(L->Trailer);
    break;
  }
  case Stmt::Kind::Switch:
    for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (const Stmt *B : C.Body)
        checkStmtInvariant(B);
    break;
  default:
    break;
  }
}

void checkProgramInvariant(const Program &Prog) {
  for (const FunctionIR &F : Prog.functions())
    checkStmtInvariant(F.Body);
  checkStmtInvariant(Prog.globalInit());
}

TEST(SimplifierTest, DoubleDerefIntroducesTemp) {
  auto P = lower("int main(void) { int x; int *p; int **q; "
                 "p = &x; q = &p; x = **q; return x; }");
  std::string S = P.Prog->str();
  // **q must be split into t = *q; x = *t.
  EXPECT_NE(S.find("= (*q);"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, ArrowChainsSplit) {
  auto P = lower(R"(
    struct N { struct N *next; int v; };
    int main(void) {
      struct N a; struct N b; struct N c;
      a.next = &b; b.next = &c;
      return a.next->next->v;
    })");
  checkProgramInvariant(*P.Prog);
  std::string S = P.Prog->str();
  EXPECT_NE(S.find(".next"), std::string::npos);
}

TEST(SimplifierTest, CallArgumentsBecomeSimple) {
  auto P = lower(R"(
    int f(int *p, int x);
    int f(int *p, int x) { return *p + x; }
    int main(void) {
      int a[4]; int i; i = 1;
      return f(&a[i], a[0] + 2);
    })");
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, CompoundAssignExpanded) {
  auto P = lower("int main(void) { int x; x = 1; x += 2; x <<= 1; "
                 "return x; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("x = x + 2;"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, IncDecExpanded) {
  auto P = lower("int main(void) { int x; int y; x = 1; y = x++; "
                 "--x; return y; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("x = x + 1;"), std::string::npos) << S;
  EXPECT_NE(S.find("x = x - 1;"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, PointerIncrement) {
  auto P = lower("int main(void) { int a[4]; int *p; p = a; p++; "
                 "return *p; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("p = p + 1;"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, TernaryBecomesIf) {
  auto P = lower("int main(void) { int c; int x; c = 1; "
                 "x = c ? 10 : 20; return x; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("if ("), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, ShortCircuitWithCallGuarded) {
  auto P = lower(R"(
    int f(void);
    int f(void) { return 1; }
    int main(void) {
      int c; int x;
      c = 0;
      x = c && f();
      return x;
    })");
  std::string S = P.Prog->str();
  // The call must sit under an if, not be hoisted unconditionally.
  EXPECT_NE(S.find("if ("), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, PureShortCircuitStaysFlat) {
  auto P = lower("int main(void) { int a; int b; a = 1; b = 2; "
                 "return a && b; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("&&"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, WhileConditionReevaluatedInTrailer) {
  auto P = lower(R"(
    int f(int);
    int f(int x) { return x - 1; }
    int main(void) {
      int n; n = 5;
      while (f(n) > 0) n = n - 1;
      return n;
    })");
  std::string S = P.Prog->str();
  // Two calls to f lowered: one before the loop, one in the trailer.
  size_t First = S.find("f(");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(S.find("f(", First + 1), std::string::npos) << S;
  EXPECT_NE(S.find("trailer:"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, ForLoopStructure) {
  auto P = lower("int main(void) { int i; int s; s = 0; "
                 "for (i = 0; i < 4; i++) s += i; return s; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("while ("), std::string::npos) << S;
  EXPECT_NE(S.find("trailer:"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, InfiniteLoopHasNoCondVar) {
  auto P = lower("int main(void) { while (1) { break; } return 0; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("while (1)"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, MallocBecomesAlloc) {
  auto P = lower("void *malloc(int); int main(void) { int *p; "
                 "p = (int *)malloc(4); return 0; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("= malloc()"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, GlobalInitializersLowered) {
  auto P = lower("int g; int *gp = &g; int a[2] = {1, 2}; "
                 "int main(void) { return *gp; }");
  ASSERT_NE(P.Prog->globalInit(), nullptr);
  EXPECT_FALSE(P.Prog->globalInit()->Body.empty());
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("gp = &g;"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, LocalInitializersBecomeStatements) {
  auto P = lower("int main(void) { int x = 3; int *p = &x; return *p; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("x = 3;"), std::string::npos) << S;
  EXPECT_NE(S.find("p = &x;"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, ArrayDecayProducesAddrOfHead) {
  auto P = lower("int main(void) { int a[4]; int *p; p = a; return *p; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("p = &a[0];"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, IndirectCallThroughTable) {
  auto P = lower(R"(
    int f(void);
    int f(void) { return 1; }
    int (*tab[2])(void) = {f, f};
    int main(void) {
      int (*fp)(void);
      fp = tab[1];
      return fp();
    })");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("(*fp)()"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, FunctionNameDecaysToAddress) {
  auto P = lower("int f(void); int f(void) { return 0; } "
                 "int main(void) { int (*fp)(void); fp = f; "
                 "fp = &f; return 0; }");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("fp = &f;"), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, SwitchPreserved) {
  auto P = lower(R"(
    int main(void) {
      int x; int y;
      x = 2; y = 0;
      switch (x) {
      case 1: y = 1; break;
      case 2: y = 2; /* fallthrough */
      case 3: y = y + 10; break;
      default: y = -1;
      }
      return y;
    })");
  std::string S = P.Prog->str();
  EXPECT_NE(S.find("switch ("), std::string::npos) << S;
  checkProgramInvariant(*P.Prog);
}

TEST(SimplifierTest, StmtCountIsReasonable) {
  auto P = lower("int main(void) { int x; x = 1 + 2 * 3 - 4; return x; }");
  // x = t2 where t1 = 2*3, t2 = 1+t1, t3 = t2-4 — a handful of stmts.
  EXPECT_GE(P.Prog->numBasicStmts(), 4u);
  EXPECT_LE(P.Prog->numBasicStmts(), 8u);
}

TEST(SimplifierTest, CorpusProgramsKeepInvariant) {
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = Pipeline::frontend(CP.Source);
    ASSERT_FALSE(P.Diags.hasErrors())
        << CP.Name << ": " << P.Diags.dump();
    ASSERT_NE(P.Prog, nullptr) << CP.Name;
    checkProgramInvariant(*P.Prog);
  }
}

} // namespace
