//===- LRLocationsTest.cpp - Table 1 L/R-location tests ------------------------===//
//
// Parameterized sweep over the rows of the paper's Table 1, evaluated
// through complete programs: each case pins down the L- or R-location
// set of a reference form against a known points-to set.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::testutil;
using namespace mcpta::pta;
using namespace mcpta::simple;

namespace {

/// One Table 1 row exercised through a tiny program: the statement under
/// test writes &marker through/into the reference form; the expectation
/// strings name the locations that must (not) receive the marker pair.
struct Table1Case {
  const char *Name;
  const char *Source;
  /// Pairs expected at end of main, as "src>dst>D" / "src>dst>P".
  std::vector<const char *> Expected;
  std::vector<const char *> Absent;
};

class Table1Test : public ::testing::TestWithParam<Table1Case> {};

TEST_P(Table1Test, Row) {
  const Table1Case &C = GetParam();
  auto P = analyze(C.Source);
  for (const char *E : C.Expected) {
    std::string S(E);
    size_t A = S.find('>');
    size_t B = S.find('>', A + 1);
    std::string Src = S.substr(0, A);
    std::string Dst = S.substr(A + 1, B - A - 1);
    char D = S[B + 1];
    EXPECT_TRUE(mainHasPair(P, Src, Dst, D))
        << C.Name << ": missing (" << Src << "," << Dst << "," << D
        << ")\n  got: " << mainOut(P);
  }
  for (const char *E : C.Absent) {
    std::string S(E);
    size_t A = S.find('>');
    std::string Src = S.substr(0, A);
    std::string Dst = S.substr(A + 1);
    EXPECT_FALSE(mainHasPair(P, Src, Dst))
        << C.Name << ": spurious (" << Src << "," << Dst
        << ")\n  got: " << mainOut(P);
  }
}

const Table1Case Cases[] = {
    {"AddrOfVar",
     "int main(void){ int a; int *p; p = &a; return 0; }",
     {"p>a>D"},
     {}},
    {"AddrOfField",
     "struct S{int f;int g;}; int main(void){ struct S a; int *p; "
     "p = &a.f; return 0; }",
     {"p>a.f>D"},
     {"p>a.g"}},
    {"AddrOfElemZero",
     "int main(void){ int a[4]; int *p; p = &a[0]; return 0; }",
     {"p>a[0]>D"},
     {"p>a[1..]"}},
    {"AddrOfElemPositive",
     "int main(void){ int a[4]; int *p; p = &a[2]; return 0; }",
     {"p>a[1..]>P"},
     {"p>a[0]"}},
    {"AddrOfElemUnknown",
     "int main(void){ int a[4]; int i; int *p; i = 1; p = &a[i]; "
     "return 0; }",
     {"p>a[0]>P", "p>a[1..]>P"},
     {}},
    {"VarCopy",
     "int main(void){ int x; int *a; int *p; a = &x; p = a; return 0; }",
     {"p>x>D"},
     {}},
    {"FieldCopy",
     "struct S{int *f;}; int main(void){ int x; struct S a; int *p; "
     "a.f = &x; p = a.f; return 0; }",
     {"p>x>D"},
     {}},
    {"ElemZeroCopy",
     "int main(void){ int x; int *a[4]; int *p; a[0] = &x; p = a[0]; "
     "return 0; }",
     {"p>x>D"},
     {}},
    {"ElemPositiveCopy",
     "int main(void){ int x; int *a[4]; int *p; a[1] = &x; p = a[2]; "
     "return 0; }",
     {"p>x>P", "p>NULL>P"},
     {}},
    {"ElemUnknownCopy",
     "int main(void){ int x; int i; int *a[4]; int *p; i = 2; "
     "a[0] = &x; p = a[i]; return 0; }",
     {"p>x>P", "p>NULL>P"},
     {}},
    {"DerefLval",
     "int main(void){ int x; int *y; int **a; a = &y; *a = &x; "
     "return 0; }",
     {"y>x>D", "a>y>D"},
     {"y>NULL"}},
    {"DerefRval",
     "int main(void){ int x; int *y; int **a; int *p; y = &x; a = &y; "
     "p = *a; return 0; }",
     {"p>x>D"},
     {}},
    {"DerefFieldLval",
     "struct S{int *f;}; int main(void){ int x; struct S s; "
     "struct S *a; a = &s; (*a).f = &x; return 0; }",
     {"s.f>x>D"},
     {"s.f>NULL"}},
    {"ArrowFieldRval",
     "struct S{int *f;}; int main(void){ int x; struct S s; "
     "struct S *a; int *p; s.f = &x; a = &s; p = a->f; return 0; }",
     {"p>x>D"},
     {}},
    {"PtrElemZeroLval",
     "int main(void){ int x; int *b[4]; int **a; a = b; a[0] = &x; "
     "return 0; }",
     {"b[0]>x>D"},
     {"b[1..]>x"}},
    {"PtrElemPositiveLval",
     "int main(void){ int x; int *b[4]; int **a; a = b; a[2] = &x; "
     "return 0; }",
     {"b[1..]>x>P"},
     {"b[0]>x"}},
    {"PtrElemUnknownLval",
     "int main(void){ int x; int i; int *b[4]; int **a; i = 1; a = b; "
     "a[i] = &x; return 0; }",
     {"b[0]>x>P", "b[1..]>x>P"},
     {}},
    {"PtrElemRval",
     "int main(void){ int x; int *b[4]; int **a; int *p; b[0] = &x; "
     "a = b; p = a[0]; return 0; }",
     {"p>x>D"},
     {}},
    {"MallocRow",
     "void *malloc(int); int main(void){ int *p; p = (int *)malloc(4); "
     "return 0; }",
     {"p>heap>P"},
     {}},
    {"DoubleIndirection",
     "int main(void){ int x; int *y; int **a; int *p; int *q; "
     "y = &x; a = &y; p = *a; q = *a; return 0; }",
     {"p>x>D", "q>x>D"},
     {}},
    {"DerefPossibleChainIsPossible",
     "int main(void){ int x; int y; int c; int *p1; int **a; int *r; "
     "c = 1; if (c) p1 = &x; else p1 = &y; a = &p1; r = *a; return 0; }",
     {"r>x>P", "r>y>P"},
     {}},
};

INSTANTIATE_TEST_SUITE_P(Table1, Table1Test, ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<Table1Case> &I) {
                           return std::string(I.param.Name);
                         });

} // namespace
