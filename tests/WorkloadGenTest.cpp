//===- WorkloadGenTest.cpp - synthetic program generator tests -----------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "interp/Interpreter.h"
#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::wlgen;
using namespace mcpta::testutil;

namespace {

TEST(WorkloadGenTest, Deterministic) {
  GenConfig Cfg;
  Cfg.Seed = 7;
  EXPECT_EQ(generateProgram(Cfg), generateProgram(Cfg));
  GenConfig Cfg2 = Cfg;
  Cfg2.Seed = 8;
  EXPECT_NE(generateProgram(Cfg), generateProgram(Cfg2));
}

TEST(WorkloadGenTest, GeneratedProgramsAnalyze) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    GenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.UseFunctionPointers = (Seed % 2) == 0;
    std::string Src = generateProgram(Cfg);
    Pipeline P = Pipeline::analyzeSource(Src);
    EXPECT_FALSE(P.Diags.hasErrors())
        << "seed " << Seed << ":\n" << P.Diags.dump() << Src;
    EXPECT_TRUE(P.Analysis.Analyzed) << "seed " << Seed;
  }
}

TEST(WorkloadGenTest, GeneratedProgramsTerminate) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    GenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.UseRecursion = true;
    Cfg.UseLoops = true;
    std::string Src = generateProgram(Cfg);
    Pipeline P = Pipeline::frontend(Src);
    ASSERT_TRUE(P.Prog) << "seed " << Seed;
    auto R = interp::run(*P.Prog, 3000000);
    EXPECT_TRUE(R.Completed) << "seed " << Seed << ": " << R.Error;
  }
}

TEST(QueryWorkloadTest, DeterministicAndValid) {
  QueryWorkloadConfig Cfg;
  Cfg.Seed = 5;
  QueryWorkload W = queryWorkload(Cfg);
  QueryWorkload W2 = queryWorkload(Cfg);
  EXPECT_EQ(W.Source, W2.Source);
  ASSERT_EQ(W.Queries.size(), W2.Queries.size());
  for (size_t I = 0; I < W.Queries.size(); ++I) {
    EXPECT_EQ(W.Queries[I].Name, W2.Queries[I].Name);
    EXPECT_EQ(W.Queries[I].A, W2.Queries[I].A);
    EXPECT_EQ(W.Queries[I].Hot, W2.Queries[I].Hot);
  }
  EXPECT_EQ(W.Queries.size(), static_cast<size_t>(Cfg.NumQueries));

  Pipeline P = Pipeline::analyzeSource(W.Source);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump() << W.Source;
  EXPECT_TRUE(P.Analysis.Analyzed);
}

TEST(QueryWorkloadTest, HotColdSkewTracksConfig) {
  QueryWorkloadConfig Cfg;
  Cfg.Seed = 11;
  Cfg.NumQueries = 64;
  Cfg.HotPercent = 75;
  QueryWorkload W = queryWorkload(Cfg);
  size_t Hot = 0;
  for (const QuerySpec &Q : W.Queries) {
    Hot += Q.Hot;
    // Hot queries touch main's m-prefixed frame; cold ones globals.
    const std::string &Base = Q.K == QuerySpec::Kind::PointsTo ? Q.Name : Q.A;
    size_t Star = Base.find_first_not_of('*');
    ASSERT_NE(Star, std::string::npos);
    if (Q.Hot)
      EXPECT_EQ(Base[Star], 'm') << Base;
    else
      EXPECT_EQ(Base[Star], 'g') << Base;
  }
  // Binomial(64, 0.75): the deterministic draw lands well inside this.
  EXPECT_GT(Hot, 32u);
  EXPECT_LT(Hot, 64u);

  Cfg.HotPercent = 0;
  for (const QuerySpec &Q : queryWorkload(Cfg).Queries)
    EXPECT_FALSE(Q.Hot);
}

TEST(QueryWorkloadTest, GatedShapesStillGenerateValidPrograms) {
  for (int Mode = 0; Mode < 2; ++Mode) {
    QueryWorkloadConfig Cfg;
    Cfg.Seed = 3;
    Cfg.UseFunctionPointers = Mode == 0;
    Cfg.UseRecursion = Mode == 1;
    QueryWorkload W = queryWorkload(Cfg);
    Pipeline P = Pipeline::analyzeSource(W.Source);
    EXPECT_FALSE(P.Diags.hasErrors())
        << "mode " << Mode << ":\n" << P.Diags.dump() << W.Source;
    EXPECT_TRUE(P.Analysis.Analyzed);
  }
}

TEST(WorkloadGenTest, PathologicalSourceIsValidAndTerminating) {
  // Hostile to the analyzer, but still a well-formed terminating
  // program: small shapes must parse, analyze cleanly ungoverned, and
  // run to completion under the interpreter.
  std::string Src = pathologicalSource(3, 2, 3, 4);
  EXPECT_EQ(Src, pathologicalSource(3, 2, 3, 4)); // deterministic
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump() << Src;
  EXPECT_TRUE(P.Analysis.Analyzed);
  EXPECT_FALSE(P.degraded());

  Pipeline F = Pipeline::frontend(Src);
  ASSERT_TRUE(F.Prog);
  auto R = interp::run(*F.Prog, 3000000);
  EXPECT_TRUE(R.Completed) << R.Error;
}

TEST(WorkloadGenTest, PathologicalSourceScalesContexts) {
  // Each extra level multiplies direct call sites by the fanout, so
  // the source (and the invocation graph it induces) must grow.
  EXPECT_GT(pathologicalSource(6, 3, 4, 8).size(),
            pathologicalSource(3, 3, 4, 8).size());
}

TEST(WorkloadGenTest, LivcShapeMatchesPaperDescription) {
  // The paper's livc: 82 functions, three arrays of 24 function
  // pointers (72 address-taken), three indirect call sites in loops.
  std::string Src = livcSource();
  Pipeline P = Pipeline::frontend(Src);
  ASSERT_TRUE(P.Prog) << P.Diags.dump();

  unsigned Defined = 0, AddressTaken = 0;
  for (const auto *F : P.Unit->functions())
    if (F->isDefined() && F->name() != "main") {
      ++Defined;
      if (F->isAddressTaken())
        ++AddressTaken;
    }
  EXPECT_EQ(Defined, 82u);
  EXPECT_EQ(AddressTaken, 72u);

  unsigned IndirectSites = 0;
  std::vector<const simple::CallInfo *> Calls;
  for (const auto &F : P.Prog->functions())
    pta::collectCallInfos(F.Body, Calls);
  for (const auto *CI : Calls)
    if (CI->isIndirect())
      ++IndirectSites;
  EXPECT_EQ(IndirectSites, 3u);
}

TEST(MutateSourceTest, EveryKindAppliesToCorpusPrograms) {
  // Every kind finds a site in every corpus program, the edit is
  // deterministic, and the mutant still parses and analyzes.
  for (const char *Name : {"hash", "xref", "incrstress"}) {
    const corpus::CorpusProgram *CP = corpus::find(Name);
    ASSERT_NE(CP, nullptr);
    std::string Seed = CP->Source;
    for (MutationKind K : AllMutationKinds) {
      std::string Mut = mutateSource(Seed, K);
      EXPECT_NE(Mut, Seed) << Name << "/" << mutationKindName(K);
      EXPECT_EQ(Mut, mutateSource(Seed, K))
          << Name << "/" << mutationKindName(K);
      Pipeline P = Pipeline::analyzeSource(Mut);
      EXPECT_FALSE(P.Diags.hasErrors())
          << Name << "/" << mutationKindName(K) << ":\n" << P.Diags.dump();
      EXPECT_TRUE(P.Analysis.Analyzed) << Name << "/" << mutationKindName(K);
    }
  }
}

TEST(MutateSourceTest, InapplicableKindReturnsSeedUnchanged) {
  std::string Seed = "int main(void) {\n  return 0;\n}\n";
  EXPECT_EQ(mutateSource(Seed, MutationKind::RenameLocal), Seed);
  EXPECT_EQ(mutateSource(Seed, MutationKind::RemoveAssignment), Seed);
  EXPECT_EQ(mutateSource(Seed, MutationKind::AddAssignment), Seed);
  // AddCall needs only a function body, so it always applies.
  EXPECT_NE(mutateSource(Seed, MutationKind::AddCall), Seed);
}

TEST(MutateSourceTest, SaltSelectsDistinctSites) {
  std::string Seed = "int main(void) {\n"
                     "  int a;\n"
                     "  int b;\n"
                     "  a = 1;\n"
                     "  b = 2;\n"
                     "  return a + b;\n"
                     "}\n";
  std::string R0 = mutateSource(Seed, MutationKind::TweakConstant, 0);
  std::string R1 = mutateSource(Seed, MutationKind::TweakConstant, 1);
  EXPECT_NE(R0, Seed);
  EXPECT_NE(R1, Seed);
  EXPECT_NE(R0, R1);
  EXPECT_NE(R0.find("a = 2;"), std::string::npos) << R0;
  EXPECT_NE(R1.find("b = 3;"), std::string::npos) << R1;
}

TEST(MutateSourceTest, RenameRespectsFieldsAndScope) {
  std::string Seed = "struct s { int t; };\n"
                     "int t;\n"
                     "int other(void) {\n"
                     "  t = 3;\n"
                     "  return t;\n"
                     "}\n"
                     "int main(void) {\n"
                     "  struct s v;\n"
                     "  int t;\n"
                     "  t = 1;\n"
                     "  v.t = t;\n"
                     "  return v.t;\n"
                     "}\n";
  // Salt selects the local `t` in main (candidates are file-ordered:
  // v, then t).
  std::string Mut = mutateSource(Seed, MutationKind::RenameLocal, 1);
  EXPECT_NE(Mut.find("int t_r;"), std::string::npos) << Mut;
  EXPECT_NE(Mut.find("t_r = 1;"), std::string::npos) << Mut;
  // Field accesses and the other function's global use keep the name.
  EXPECT_NE(Mut.find("v.t = t_r;"), std::string::npos) << Mut;
  EXPECT_NE(Mut.find("t = 3;"), std::string::npos) << Mut;
}

TEST(WorkloadGenTest, ScalesWithConfig) {
  GenConfig Small;
  Small.NumFunctions = 2;
  Small.StmtsPerFunction = 4;
  GenConfig Large;
  Large.NumFunctions = 12;
  Large.StmtsPerFunction = 20;
  EXPECT_LT(generateProgram(Small).size(), generateProgram(Large).size());
}

} // namespace
