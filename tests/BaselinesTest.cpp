//===- BaselinesTest.cpp - ablation baseline tests -----------------------------===//

#include "TestUtil.h"

#include "baselines/Andersen.h"
#include "corpus/Corpus.h"
#include "baselines/ContextInsensitive.h"

using namespace mcpta;
using namespace mcpta::baselines;
using namespace mcpta::testutil;

namespace {

// The classic context-sensitivity separator: one helper called from two
// call sites with different arguments.
const char *const SeparatorSrc = R"(
  void assign(int **dst, int *src) { *dst = src; }
  int main(void) {
    int a; int b;
    int *p; int *q;
    assign(&p, &a);
    assign(&q, &b);
    return *p + *q;
  })";

TEST(BaselinesTest, ContextInsensitiveLosesPrecision) {
  auto P = Pipeline::frontend(SeparatorSrc);
  ASSERT_TRUE(P.Prog);
  auto Cmp = PrecisionComparison::compute(*P.Prog);

  // Sensitive: *p, *q, and the callee's *dst all have one definite
  // target.
  EXPECT_EQ(Cmp.Sensitive.Stats.OneD.total(), 3u);
  // Insensitive: only *dst stays definite (dst -> 1_dst in the merged
  // summary); *p and *q see {a, b}.
  EXPECT_EQ(Cmp.Insensitive.Stats.OneD.total(), 1u);
  EXPECT_EQ(Cmp.Insensitive.Stats.TwoP.total(), 2u);
  EXPECT_GT(Cmp.Insensitive.Stats.average(),
            Cmp.Sensitive.Stats.average());
}

TEST(BaselinesTest, ContextInsensitiveStillSafe) {
  pta::Analyzer::Options Opts;
  Opts.ContextSensitive = false;
  auto P = analyze(SeparatorSrc, Opts);
  ASSERT_TRUE(P.Analysis.Analyzed);
  // Safe: both possibilities reported on both pointers.
  EXPECT_TRUE(mainHasPair(P, "p", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "b", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "q", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "q", "b", 'P')) << mainOut(P);
}

TEST(BaselinesTest, ContextInsensitiveHandlesRecursion) {
  pta::Analyzer::Options Opts;
  Opts.ContextSensitive = false;
  auto P = analyze(R"(
    int g;
    void rec(int **pp, int n) {
      if (n <= 0) { *pp = &g; return; }
      rec(pp, n - 1);
    }
    int main(void) {
      int *p;
      rec(&p, 3);
      return *p;
    })",
                   Opts);
  EXPECT_TRUE(mainHasPair(P, "p", "g")) << mainOut(P);
}

TEST(BaselinesTest, AndersenBasics) {
  auto P = Pipeline::frontend(R"(
    int main(void) {
      int x; int y; int *p; int *q;
      p = &x;
      q = p;
      p = &y;
      return *q;
    })");
  auto R = AndersenAnalysis::run(*P.Prog);
  // Flow-insensitive: no kills; p sees both, q sees both through the
  // inclusion p ⊆ q evaluated over the final solution.
  const auto &Pp = R.pointsTo("main::p");
  EXPECT_TRUE(Pp.count("main::x"));
  EXPECT_TRUE(Pp.count("main::y"));
  const auto &Pq = R.pointsTo("main::q");
  EXPECT_TRUE(Pq.count("main::x"));
  EXPECT_TRUE(Pq.count("main::y")) << "flow-insensitivity artifact";
}

TEST(BaselinesTest, AndersenLoadStore) {
  auto P = Pipeline::frontend(R"(
    int main(void) {
      int x; int *p; int **q; int *r;
      p = &x;
      q = &p;
      r = *q;
      return *r;
    })");
  auto R = AndersenAnalysis::run(*P.Prog);
  EXPECT_TRUE(R.pointsTo("main::r").count("main::x"));
}

TEST(BaselinesTest, AndersenIndirectCalls) {
  auto P = Pipeline::frontend(R"(
    int g;
    int f(int *p) { g = *p; return 0; }
    int main(void) {
      int x;
      int (*fp)(int *);
      fp = f;
      return fp(&x);
    })");
  auto R = AndersenAnalysis::run(*P.Prog);
  EXPECT_TRUE(R.pointsTo("main::fp").count("f"));
  EXPECT_TRUE(R.pointsTo("f::p").count("main::x"))
      << "indirect call binds arguments";
}

TEST(BaselinesTest, AndersenCoarserThanFlowSensitive) {
  // Flow-sensitive kills make the paper's analysis strictly more
  // precise on the strong-update pattern.
  const char *Src = R"(
    int main(void) {
      int x; int y; int *p;
      p = &x;
      p = &y;
      return *p;
    })";
  auto P = analyze(Src);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);

  auto PF = Pipeline::frontend(Src);
  auto R = AndersenAnalysis::run(*PF.Prog);
  EXPECT_TRUE(R.pointsTo("main::p").count("main::x"))
      << "Andersen keeps the stale target";
  EXPECT_GE(R.AvgIndirectTargets, 2.0);
}

TEST(BaselinesTest, AndersenTerminatesOnCorpus) {
  for (const auto &CP : corpus::corpus()) {
    auto P = Pipeline::frontend(CP.Source);
    ASSERT_TRUE(P.Prog) << CP.Name;
    auto R = AndersenAnalysis::run(*P.Prog);
    EXPECT_GT(R.SolverIterations, 0u) << CP.Name;
  }
}

} // namespace
