//===- FunctionPointerTest.cpp - Sec. 5 / Figures 5-7 tests --------------------===//

#include "TestUtil.h"

#include "clients/CallGraphBaselines.h"
#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

TEST(FunctionPointerTest, DirectAssignmentAndCall) {
  auto P = analyze(R"(
    int g;
    int set(void) { g = 1; return g; }
    int main(void) {
      int (*fp)(void);
      fp = set;
      return fp();
    })");
  EXPECT_TRUE(mainHasPair(P, "fp", "set", 'D')) << mainOut(P);
  // The IG contains main -> set via the indirect call.
  EXPECT_EQ(P.Analysis.IG->numNodes(), 2u) << P.Analysis.IG->str();
}

TEST(FunctionPointerTest, PaperFigure6Example) {
  // The paper's worked example (Figure 6): fp may be foo or bar at A;
  // inside foo, fp definitely points to foo, making the nested fp()
  // call recursive; at B the merged outputs hold.
  auto P = analyze(R"(
    int a; int b; int c;
    int *pa; int *pb; int *pc;
    int (*fp)(void);
    int cond;
    int foo(void);
    int bar(void);
    int foo(void) {
      pa = &a;
      if (cond)
        fp();
      /* Point C */
      return 0;
    }
    int bar(void) {
      pb = &b;
      /* Point D */
      return 0;
    }
    int main(void) {
      pc = &c;
      if (cond)
        fp = foo;
      else
        fp = bar;
      /* Point A */
      fp();
      /* Point B */
      return 0;
    })");

  // Point B facts (bottom of Figure 6):
  //   (fp,foo,P) (fp,bar,P) (pc,c,D) (pa,a,P) (pb,b,P)
  EXPECT_TRUE(mainHasPair(P, "fp", "foo", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "fp", "bar", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "pc", "c", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "pa", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "pb", "b", 'P')) << mainOut(P);

  // Figure 7(c): the discovered recursion (foo -> fp() -> foo) makes a
  // Recursive/Approximate pair.
  EXPECT_GE(P.Analysis.IG->numRecursive(), 1u) << P.Analysis.IG->str();
  EXPECT_GE(P.Analysis.IG->numApproximate(), 1u) << P.Analysis.IG->str();

  // Interior points C (in foo) and D (in bar): the return statements'
  // recorded inputs. Figure 6:
  //   C: (fp,foo,D) (pc,c,D) (pa,a,D)
  //   D: (fp,bar,D) (pc,c,D) (pb,b,D)
  auto ReturnInputOf = [&](const std::string &Fn) -> std::string {
    for (const simple::FunctionIR &F : P.Prog->functions()) {
      if (F.Decl->name() != Fn)
        continue;
      for (const simple::Stmt *S : F.Body->Body)
        if (S->kind() == simple::Stmt::Kind::Return &&
            S->id() < P.Analysis.StmtIn.size() &&
            P.Analysis.StmtIn[S->id()])
          return P.Analysis.StmtIn[S->id()]->str(*P.Analysis.Locs);
    }
    return "<missing>";
  };
  std::string AtC = ReturnInputOf("foo");
  EXPECT_NE(AtC.find("(fp,foo,D)"), std::string::npos) << AtC;
  EXPECT_NE(AtC.find("(pc,c,D)"), std::string::npos) << AtC;
  EXPECT_NE(AtC.find("(pa,a,D)"), std::string::npos) << AtC;
  EXPECT_EQ(AtC.find("(fp,bar"), std::string::npos)
      << "inside foo, fp definitely points to foo: " << AtC;
  std::string AtD = ReturnInputOf("bar");
  EXPECT_NE(AtD.find("(fp,bar,D)"), std::string::npos) << AtD;
  EXPECT_NE(AtD.find("(pc,c,D)"), std::string::npos) << AtD;
  EXPECT_NE(AtD.find("(pb,b,D)"), std::string::npos) << AtD;
}

TEST(FunctionPointerTest, TargetSpecializationMakeDefinite) {
  // While analyzing a target, the fp definitely points to it: a nested
  // call through the same fp goes only to that target (Figure 5's
  // makeDefinitePointsTo), visible here through side effects.
  auto P = analyze(R"(
    int which;
    int (*fp)(void);
    int first(void);
    int second(void);
    int helper(void) { return fp(); }
    int first(void) { which = 1; return 0; }
    int second(void) { which = 2; return 0; }
    int main(void) {
      int c;
      c = 0;
      if (c) fp = first; else fp = second;
      fp();
      return which;
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
  // Both targets instantiated from main's call.
  std::string IG = P.Analysis.IG->str();
  EXPECT_NE(IG.find("first"), std::string::npos) << IG;
  EXPECT_NE(IG.find("second"), std::string::npos) << IG;
}

TEST(FunctionPointerTest, TableOfFunctionPointers) {
  auto P = analyze(R"(
    int g;
    int f0(void) { return 0; }
    int f1(void) { return 1; }
    int f2(void) { return 2; }
    int (*tab[3])(void) = {f0, f1, f2};
    int main(void) {
      int (*fp)(void);
      int i;
      int s;
      s = 0;
      for (i = 0; i < 3; i++) {
        fp = tab[i];
        s = s + fp();
      }
      return s;
    })");
  // fp = tab[i] with unknown i reads head and tail: all three targets.
  EXPECT_TRUE(mainHasPair(P, "fp", "f0", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "fp", "f1", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "fp", "f2", 'P')) << mainOut(P);
  std::string IG = P.Analysis.IG->str();
  EXPECT_NE(IG.find("f0"), std::string::npos);
  EXPECT_NE(IG.find("f1"), std::string::npos);
  EXPECT_NE(IG.find("f2"), std::string::npos);
}

TEST(FunctionPointerTest, FunctionPointerAsParameter) {
  auto P = analyze(R"(
    int g;
    int inc(void) { g = g + 1; return g; }
    int apply(int (*f)(void)) { return f(); }
    int main(void) {
      return apply(inc);
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
  std::string IG = P.Analysis.IG->str();
  EXPECT_NE(IG.find("apply"), std::string::npos) << IG;
  EXPECT_NE(IG.find("inc"), std::string::npos) << IG;
}

TEST(FunctionPointerTest, FunctionPointerInStruct) {
  auto P = analyze(R"(
    int g;
    int op(void) { g = 7; return g; }
    struct Ops { int (*run)(void); };
    int main(void) {
      struct Ops ops;
      int (*fp)(void);
      ops.run = op;
      fp = ops.run;
      return fp();
    })");
  EXPECT_TRUE(mainHasPair(P, "ops.run", "op", 'D')) << mainOut(P);
  std::string IG = P.Analysis.IG->str();
  EXPECT_NE(IG.find("op"), std::string::npos) << IG;
}

TEST(FunctionPointerTest, MultiLevelFunctionPointer) {
  auto P = analyze(R"(
    int g;
    int f(void) { return 3; }
    int main(void) {
      int (*fp)(void);
      int (**pfp)(void);
      fp = f;
      pfp = &fp;
      return (*pfp)();
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
  std::string IG = P.Analysis.IG->str();
  EXPECT_NE(IG.find("f"), std::string::npos) << IG;
}

TEST(FunctionPointerTest, UnresolvedIndirectCallWarns) {
  auto P = Pipeline::analyzeSource(R"(
    int main(void) {
      int (*fp)(void);
      fp = NULL;
      return fp();
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
  bool Found = false;
  for (const std::string &W : P.Analysis.Warnings)
    if (W.find("no resolvable targets") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(FunctionPointerTest, LivcStyleInvocationGraphCounts) {
  // A scaled-down livc: 10 functions, 2 arrays of 3 each (6
  // address-taken), 4 called directly. Precise instantiation resolves
  // each indirect site to its own array's 3 kernels.
  std::string Src = wlgen::livcSource(10, 2, 3);
  auto P = analyze(Src);
  // main + 2*3 via fptr + 4 direct = 11 nodes.
  EXPECT_EQ(P.Analysis.IG->numNodes(), 11u) << P.Analysis.IG->str();

  pta::Analyzer::Options All;
  All.FnPtr = pta::FnPtrMode::AllFunctions;
  auto PAll = analyze(Src, All);
  // main + 2 sites * 11 defined functions (main included!) + 4 direct
  // = 27 nodes — the naive strategy even conjures recursion via main.
  EXPECT_EQ(PAll.Analysis.IG->numNodes(), 27u);

  pta::Analyzer::Options At;
  At.FnPtr = pta::FnPtrMode::AddressTaken;
  auto PAt = analyze(Src, At);
  // main + 2 sites * 6 address-taken + 4 direct = 17 nodes.
  EXPECT_EQ(PAt.Analysis.IG->numNodes(), 17u);
}

TEST(FunctionPointerTest, PreciseBeatsBaselinesOnLivc) {
  std::string Src = wlgen::livcSource(20, 3, 5);
  auto Cmp = clients::CallGraphComparison::compute(
      *Pipeline::frontend(Src).Prog);
  EXPECT_LT(Cmp.PreciseNodes, Cmp.AddressTakenNodes);
  EXPECT_LT(Cmp.AddressTakenNodes, Cmp.AllFunctionsNodes);
}

} // namespace
