//===- PrinterTest.cpp - SIMPLE pretty-printer tests ---------------------------===//
//
// The printer is the main debugging surface (pta-tool --dump-simple and
// countless test expectations); lock down its output for every
// statement kind and reference form.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mcpta;

namespace {

std::string lowered(const std::string &Src) {
  Pipeline P = Pipeline::frontend(Src);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  return P.Prog->str();
}

TEST(PrinterTest, ReferenceForms) {
  std::string S = lowered(R"(
    struct T { int *f; int arr[3]; };
    int main(void) {
      struct T t; struct T *pt;
      int a[4]; int *p; int x; int i;
      p = &x;          /* &var */
      p = &a[0];       /* &head */
      p = &a[2];       /* &tail */
      i = 1;
      p = &a[i];       /* &unknown */
      x = *p;          /* deref */
      pt = &t;
      pt->f = p;       /* (*pt).f */
      x = t.arr[0];    /* field + index */
      return x;
    })");
  EXPECT_NE(S.find("p = &x;"), std::string::npos) << S;
  EXPECT_NE(S.find("p = &a[0];"), std::string::npos) << S;
  EXPECT_NE(S.find("p = &a[+];"), std::string::npos) << S;
  EXPECT_NE(S.find("p = &a[?];"), std::string::npos) << S;
  EXPECT_NE(S.find("(*p)"), std::string::npos) << S;
  EXPECT_NE(S.find("(*pt).f"), std::string::npos) << S;
  EXPECT_NE(S.find("t.arr[0]"), std::string::npos) << S;
}

TEST(PrinterTest, StatementKinds) {
  std::string S = lowered(R"(
    void *malloc(int);
    int callee(int v) { return v; }
    int main(void) {
      int x; int i; int *p;
      x = 1 + 2;
      p = (int *)malloc(4);
      x = callee(x);
      callee(0);
      for (i = 0; i < 3; i++)
        if (x) x--; else continue;
      do x++; while (x < 2);
      switch (x) { case 1: break; default: x = 0; }
      while (1) break;
      return x;
    })");
  EXPECT_NE(S.find("= malloc()"), std::string::npos) << S;
  EXPECT_NE(S.find("= callee("), std::string::npos) << S;
  EXPECT_NE(S.find("callee(0);"), std::string::npos) << S;
  EXPECT_NE(S.find("while ("), std::string::npos) << S;
  EXPECT_NE(S.find("do-while ("), std::string::npos) << S;
  EXPECT_NE(S.find("switch ("), std::string::npos) << S;
  EXPECT_NE(S.find("case 1:"), std::string::npos) << S;
  EXPECT_NE(S.find("default:"), std::string::npos) << S;
  EXPECT_NE(S.find("break;"), std::string::npos) << S;
  EXPECT_NE(S.find("continue;"), std::string::npos) << S;
  EXPECT_NE(S.find("while (1)"), std::string::npos) << S;
  EXPECT_NE(S.find("return x;"), std::string::npos) << S;
}

TEST(PrinterTest, IndirectCallRendering) {
  std::string S = lowered(R"(
    int f(void) { return 0; }
    int main(void) {
      int (*fp)(void);
      fp = f;
      return fp();
    })");
  EXPECT_NE(S.find("fp = &f;"), std::string::npos) << S;
  EXPECT_NE(S.find("(*fp)()"), std::string::npos) << S;
}

TEST(PrinterTest, GlobalInitSection) {
  std::string S = lowered("int g = 4; int main(void) { return g; }");
  EXPECT_NE(S.find("global-init:"), std::string::npos) << S;
  EXPECT_NE(S.find("g = 4;"), std::string::npos) << S;
}

TEST(PrinterTest, StringAndNullOperands) {
  std::string S = lowered(R"(
    int main(void) {
      char *s; int *p;
      s = "hello";
      p = NULL;
      return 0;
    })");
  EXPECT_NE(S.find("s = str#0;"), std::string::npos) << S;
  EXPECT_NE(S.find("p = NULL;"), std::string::npos) << S;
}

} // namespace
