//===- DiagnosticsTest.cpp - error handling & recovery tests -------------------===//
//
// Bad input must produce diagnostics (never crashes, never silent
// acceptance), and the pipeline must degrade cleanly.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mcpta;

namespace {

Pipeline expectErrors(const std::string &Src) {
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_TRUE(P.Diags.hasErrors()) << "expected diagnostics for:\n" << Src;
  EXPECT_FALSE(P.ok());
  return P;
}

TEST(DiagnosticsTest, UndeclaredVariable) {
  auto P = expectErrors("int main(void) { return nothere; }");
  EXPECT_NE(P.Diags.dump().find("undeclared identifier"),
            std::string::npos);
}

TEST(DiagnosticsTest, UndeclaredFunction) {
  expectErrors("int main(void) { return missing(); }");
}

TEST(DiagnosticsTest, DerefOfInt) {
  auto P = expectErrors("int main(void) { int x; return *x; }");
  EXPECT_NE(P.Diags.dump().find("dereference"), std::string::npos);
}

TEST(DiagnosticsTest, MissingSemicolonRecovers) {
  // Recovery must keep parsing: both errors reported, no crash.
  Pipeline P = Pipeline::analyzeSource(R"(
    int main(void) {
      int x
      x = missing;
      return 0;
    })");
  EXPECT_TRUE(P.Diags.hasErrors());
}

TEST(DiagnosticsTest, UnbalancedBraces) {
  expectErrors("int main(void) { if (1) { return 0; ");
}

TEST(DiagnosticsTest, BadStructMember) {
  auto P = expectErrors(R"(
    struct S { int a; };
    int main(void) { struct S s; return s.missing; })");
  EXPECT_NE(P.Diags.dump().find("no member named"), std::string::npos);
}

TEST(DiagnosticsTest, ArrowOnNonPointer) {
  expectErrors(R"(
    struct S { int a; };
    int main(void) { struct S s; return s->a; })");
}

TEST(DiagnosticsTest, CallNonFunction) {
  auto P = expectErrors("int main(void) { int x; return x(1); }");
  EXPECT_NE(P.Diags.dump().find("is not a function"), std::string::npos);
}

TEST(DiagnosticsTest, GotoExplainsStructuringPhase) {
  auto P = expectErrors(
      "int main(void) { goto end; end: return 0; }");
  EXPECT_NE(P.Diags.dump().find("goto"), std::string::npos);
}

TEST(DiagnosticsTest, StructRedefinition) {
  expectErrors("struct S { int a; }; struct S { int b; };");
}

TEST(DiagnosticsTest, DiagnosticsCarryLocations) {
  Pipeline P = Pipeline::analyzeSource("int main(void) {\n  return oops;\n}");
  ASSERT_TRUE(P.Diags.hasErrors());
  const Diagnostic &D = P.Diags.diagnostics().front();
  EXPECT_EQ(D.Loc.Line, 2u);
  EXPECT_GT(D.Loc.Col, 0u);
}

TEST(DiagnosticsTest, NoMainIsNotAnError) {
  // A library-like translation unit parses and lowers fine; only the
  // analysis declines (it needs an entry point), with a warning.
  Pipeline P = Pipeline::analyzeSource("int helper(void) { return 1; }");
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_NE(P.Prog, nullptr);
  EXPECT_FALSE(P.Analysis.Analyzed);
  ASSERT_FALSE(P.Analysis.Warnings.empty());
  EXPECT_NE(P.Analysis.Warnings[0].find("main"), std::string::npos);
}

TEST(DiagnosticsTest, EmptySource) {
  Pipeline P = Pipeline::analyzeSource("");
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_FALSE(P.Analysis.Analyzed);
}

TEST(DiagnosticsTest, DumpFormatsLineColLevel) {
  DiagnosticsEngine D;
  D.error(SourceLoc(3, 7), "something broke");
  D.warning(SourceLoc(1, 1), "heads up");
  std::string Out = D.dump();
  EXPECT_NE(Out.find("3:7: error: something broke"), std::string::npos);
  EXPECT_NE(Out.find("1:1: warning: heads up"), std::string::npos);
  EXPECT_EQ(D.errorCount(), 1u);
}

TEST(DiagnosticsTest, CastIntToPointerWarns) {
  Pipeline P = Pipeline::analyzeSource(
      "int main(void) { int *p; p = (int *)1234; return 0; }");
  EXPECT_FALSE(P.Diags.hasErrors());
  bool Warned = false;
  for (const Diagnostic &D : P.Diags.diagnostics())
    if (D.Level == DiagLevel::Warning &&
        D.Message.find("unknown target") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
}

} // namespace
