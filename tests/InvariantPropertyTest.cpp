//===- InvariantPropertyTest.cpp - structural analysis invariants --------------===//
//
// Property suites P2-P4 of DESIGN.md, checked across the corpus and a
// seeded generator sweep:
//   P2 — a source location with a definite pair has no other outgoing
//        pair (Definitions 3.1/3.3: definite means "on all paths",
//        which excludes any second target);
//   P3 — covered structurally in SimplifierTest;
//   P4 — analysis results are deterministic across runs.
// Plus: no pair may originate at the NULL location or at a function,
// and every recorded statement set only mentions interned locations.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::testutil;

namespace {

void checkSetInvariants(const PointsToSet &S, const LocationTable &Locs,
                        const std::string &Label) {
  // P2: definite source => unique target.
  std::set<const Location *> Sources;
  S.forEach(Locs, [&](const Location *Src, const Location *Dst, Def) {
    (void)Dst;
    Sources.insert(Src);
  });
  for (const Location *Src : Sources) {
    auto Ts = S.targetsOf(Src, Locs);
    bool HasDefinite = false;
    for (const LocDef &T : Ts)
      HasDefinite |= T.D == Def::D;
    if (HasDefinite) {
      EXPECT_EQ(Ts.size(), 1u)
          << Label << ": " << Src->str()
          << " has a definite pair plus others: " << S.str(Locs);
    }
  }

  // Structural sanity: NULL and functions never point anywhere, and
  // definite pairs never involve summary locations on either side
  // (Definition 3.1 requires both ends to be single reals).
  S.forEach(Locs, [&](const Location *Src, const Location *Dst, Def D) {
    EXPECT_FALSE(Src->isNull()) << Label;
    EXPECT_FALSE(Src->isFunction()) << Label;
    if (D == Def::D) {
      EXPECT_FALSE(Src->isSummary())
          << Label << ": definite from summary " << Src->str();
      EXPECT_FALSE(Dst->isSummary())
          << Label << ": definite to summary " << Dst->str();
    }
  });
}

void checkProgramInvariants(const std::string &Src,
                            const std::string &Label) {
  Pipeline P = Pipeline::analyzeSource(Src);
  ASSERT_FALSE(P.Diags.hasErrors()) << Label << "\n" << P.Diags.dump();
  ASSERT_TRUE(P.Analysis.Analyzed) << Label;
  for (const auto &OptIn : P.Analysis.StmtIn)
    if (OptIn)
      checkSetInvariants(*OptIn, *P.Analysis.Locs, Label);
  if (P.Analysis.MainOut)
    checkSetInvariants(*P.Analysis.MainOut, *P.Analysis.Locs, Label);
}

TEST(InvariantPropertyTest, CorpusSatisfiesP2) {
  for (const auto &CP : corpus::corpus())
    checkProgramInvariants(CP.Source, CP.Name);
}

TEST(InvariantPropertyTest, GeneratedProgramsSatisfyP2) {
  for (uint64_t Seed = 100; Seed < 112; ++Seed) {
    wlgen::GenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.UseFunctionPointers = Seed % 3 == 0;
    Cfg.UseRecursion = Seed % 2 == 0;
    checkProgramInvariants(wlgen::generateProgram(Cfg),
                           "seed" + std::to_string(Seed));
  }
}

TEST(InvariantPropertyTest, AnalysisIsDeterministic) {
  for (const char *Name : {"hash", "stanford", "toplev"}) {
    const auto *CP = corpus::find(Name);
    Pipeline P1 = Pipeline::analyzeSource(CP->Source);
    Pipeline P2 = Pipeline::analyzeSource(CP->Source);
    ASSERT_TRUE(P1.Analysis.MainOut && P2.Analysis.MainOut) << Name;
    EXPECT_EQ(P1.Analysis.MainOut->str(*P1.Analysis.Locs),
              P2.Analysis.MainOut->str(*P2.Analysis.Locs))
        << Name;
    EXPECT_EQ(P1.Analysis.IG->str(), P2.Analysis.IG->str()) << Name;
    EXPECT_EQ(P1.Analysis.BodyAnalyses, P2.Analysis.BodyAnalyses) << Name;
  }
}

TEST(InvariantPropertyTest, StmtSetsCoverReachableBasicStmts) {
  // Every basic statement reachable from main must have a recorded
  // input set (the stats clients rely on this).
  Pipeline P = Pipeline::analyzeSource(R"(
    int g;
    void touch(void) { g = 1; }
    int main(void) {
      touch();
      return g;
    })");
  unsigned Recorded = 0;
  for (const auto &OptIn : P.Analysis.StmtIn)
    if (OptIn)
      ++Recorded;
  EXPECT_GE(Recorded, P.Prog->numBasicStmts())
      << "every reachable stmt (plus control stmts) records its input";
}

} // namespace
