//===- RecursionTest.cpp - Figure 4 fixed-point tests --------------------------===//

#include "TestUtil.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

TEST(RecursionTest, SimpleRecursionTerminates) {
  auto P = analyze(R"(
    int fact(int n) {
      if (n <= 1)
        return 1;
      return n * fact(n - 1);
    }
    int main(void) { return fact(5); })");
  ASSERT_TRUE(P.Analysis.IG);
  EXPECT_EQ(P.Analysis.IG->numRecursive(), 1u);
  EXPECT_EQ(P.Analysis.IG->numApproximate(), 1u);
}

TEST(RecursionTest, RecursionWithPointerEffects) {
  auto P = analyze(R"(
    int g;
    void rec(int **pp, int n) {
      if (n <= 0) {
        *pp = &g;
        return;
      }
      rec(pp, n - 1);
    }
    int main(void) {
      int *p;
      rec(&p, 4);
      return *p;
    })");
  // Every path through the recursion ends at the base-case write, so
  // the pair is definite — strictly more precise than merely possible.
  EXPECT_TRUE(mainHasPair(P, "p", "g", 'D')) << mainOut(P);
}

TEST(RecursionTest, MutualRecursion) {
  // Figure 2(c): simple and mutual recursion combined.
  auto P = analyze(R"(
    int g; int *gp;
    void even(int n);
    void odd(int n);
    void even(int n) {
      if (n == 0) { gp = &g; return; }
      odd(n - 1);
    }
    void odd(int n) {
      if (n == 0) { gp = NULL; return; }
      even(n - 1);
    }
    int main(void) {
      even(8);
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "gp", "NULL", 'P')) << mainOut(P);
  EXPECT_GE(P.Analysis.IG->numRecursive(), 1u);
  EXPECT_GE(P.Analysis.IG->numApproximate(), 1u);
}

TEST(RecursionTest, RecursiveListBuilderOverStack) {
  // Stack-allocated recursive structure threaded through recursion:
  // exercises symbolic-name chains and the k-limit.
  auto P = analyze(R"(
    struct N { struct N *next; int v; };
    int depth;
    void build(struct N *parent, int n) {
      struct N node;
      node.next = parent;
      node.v = n;
      if (n > 0)
        build(&node, n - 1);
      else
        depth = parent->v;
    }
    int main(void) {
      build(NULL, 6);
      return depth;
    })");
  // Termination and a safe result are the point; the IG has the R/A pair.
  EXPECT_EQ(P.Analysis.IG->numRecursive(), 1u);
}

TEST(RecursionTest, RecursionInputGeneralization) {
  // Each level narrows/changes what p points to; the fixed point must
  // generalize the input until stable.
  auto P = analyze(R"(
    int a; int b;
    void swapper(int **pp, int n) {
      if (n <= 0)
        return;
      if (*pp == &a)
        *pp = &b;
      else
        *pp = &a;
      swapper(pp, n - 1);
    }
    int main(void) {
      int *p;
      p = &a;
      swapper(&p, 9);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "b", 'P')) << mainOut(P);
}

TEST(RecursionTest, TreeRecursionTwoSelfCalls) {
  auto P = analyze(R"(
    int count;
    void walk(int n) {
      if (n <= 0) return;
      count = count + 1;
      walk(n - 1);
      walk(n - 2);
    }
    int main(void) { walk(6); return count; })");
  // Two approximate call sites pair with one recursive node.
  EXPECT_EQ(P.Analysis.IG->numRecursive(), 1u);
  EXPECT_EQ(P.Analysis.IG->numApproximate(), 2u);
}

TEST(RecursionTest, RecursionThroughThreeFunctions) {
  auto P = analyze(R"(
    int g; int *gp;
    void a(int n);
    void b(int n);
    void c(int n);
    void a(int n) { if (n > 0) b(n - 1); }
    void b(int n) { if (n > 0) c(n - 1); }
    void c(int n) { gp = &g; if (n > 0) a(n - 1); }
    int main(void) { a(7); return 0; })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'P')) << mainOut(P);
  EXPECT_GE(P.Analysis.IG->numApproximate(), 1u);
}

TEST(RecursionTest, NonRecursiveDiamondIsNotRecursive) {
  auto P = analyze(R"(
    int g; int *gp;
    void leaf(void) { gp = &g; }
    void left(void) { leaf(); }
    void right(void) { leaf(); }
    int main(void) { left(); right(); return 0; })");
  EXPECT_EQ(P.Analysis.IG->numRecursive(), 0u);
  EXPECT_EQ(P.Analysis.IG->numApproximate(), 0u);
  // Two invocation chains to leaf (Figure 2(a)'s point).
  EXPECT_EQ(P.Analysis.IG->numNodes(), 5u);
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'D')) << mainOut(P);
}

TEST(RecursionTest, RecursiveNodeMemoizedAcrossSiblingCalls) {
  auto P = analyze(R"(
    int acc;
    int sum(int n) {
      if (n <= 0) return 0;
      return n + sum(n - 1);
    }
    int main(void) {
      acc = sum(3);
      acc = acc + sum(3);
      return acc;
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
  // Both call sites create their own IG subtrees.
  EXPECT_EQ(P.Analysis.IG->numRecursive(), 2u);
}

} // namespace
