//===- SchedulerTest.cpp - scheduler layer unit tests --------------------------===//
//
// The dependency-tracked dispatcher and the StmtIn fold offload that
// form the scheduler layer of the parallel engine (docs/PARALLEL.md):
// dependency ordering, exception propagation, cycle/degenerate inputs,
// and the folder's sequential-equivalence per slot.
//
//===----------------------------------------------------------------------===//

#include "pointsto/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

using namespace mcpta;
using namespace mcpta::pta;
using mcpta::support::ThreadPool;

namespace {

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, EmptySchedulerRunsToCompletion) {
  ThreadPool Pool(4);
  Scheduler S(Pool);
  EXPECT_NO_THROW(S.run());
  EXPECT_EQ(S.counters().Tasks.load(), 0u);
}

TEST(SchedulerTest, IndependentUnitsAllRun) {
  ThreadPool Pool(4);
  Scheduler S(Pool);
  std::atomic<int> Count{0};
  for (int I = 0; I < 64; ++I)
    S.addUnit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
  S.run();
  EXPECT_EQ(Count.load(), 64);
  EXPECT_EQ(S.counters().Tasks.load(), 64u);
}

TEST(SchedulerTest, DependenciesRunBeforeDependents) {
  ThreadPool Pool(4);
  Scheduler S(Pool);
  // A diamond: Tail observes both Left and Right, which observe Head.
  std::atomic<int> HeadDone{0}, LeftDone{0}, RightDone{0};
  std::atomic<bool> OrderOk{true};
  Scheduler::UnitId Head = S.addUnit([&] { HeadDone.store(1); });
  Scheduler::UnitId Left = S.addUnit(
      [&] {
        if (!HeadDone.load())
          OrderOk.store(false);
        LeftDone.store(1);
      },
      {Head});
  Scheduler::UnitId Right = S.addUnit(
      [&] {
        if (!HeadDone.load())
          OrderOk.store(false);
        RightDone.store(1);
      },
      {Head});
  S.addUnit(
      [&] {
        if (!LeftDone.load() || !RightDone.load())
          OrderOk.store(false);
      },
      {Left, Right});
  S.run();
  EXPECT_TRUE(OrderOk.load());
}

TEST(SchedulerTest, ChainRunsInOrderOnInlinePool) {
  ThreadPool Pool(1);
  Scheduler S(Pool);
  std::vector<int> Order;
  Scheduler::UnitId Prev = S.addUnit([&] { Order.push_back(0); });
  for (int I = 1; I < 10; ++I)
    Prev = S.addUnit([&, I] { Order.push_back(I); }, {Prev});
  S.run();
  ASSERT_EQ(Order.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(SchedulerTest, ForwardDependencyIsRejected) {
  ThreadPool Pool(1);
  Scheduler S(Pool);
  // Dependencies must name earlier units; a dep on the unit itself (or
  // a later one) can never be satisfied.
  EXPECT_THROW(S.addUnit([] {}, {0}), std::logic_error);
}

TEST(SchedulerTest, UnitExceptionPropagatesFromRun) {
  ThreadPool Pool(4);
  Scheduler S(Pool);
  std::atomic<int> Count{0};
  for (int I = 0; I < 16; ++I)
    S.addUnit([&, I] {
      if (I == 5)
        throw std::runtime_error("unit failed");
      Count.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_THROW(S.run(), std::runtime_error);
  EXPECT_EQ(Count.load(), 15);
}

TEST(SchedulerTest, SchedulerIsSingleShot) {
  ThreadPool Pool(2);
  Scheduler S(Pool);
  std::atomic<int> Count{0};
  S.addUnit([&] { Count.fetch_add(1); });
  S.run();
  EXPECT_EQ(Count.load(), 1);
  // run() consumed the units; a second run has nothing to do.
  EXPECT_NO_THROW(S.run());
  EXPECT_EQ(Count.load(), 1);
}

//===----------------------------------------------------------------------===//
// StmtInFolder
//===----------------------------------------------------------------------===//

PointsToSet makeSet(std::initializer_list<std::pair<uint32_t, uint32_t>> Pairs,
                    Def D = Def::P) {
  PointsToSet S;
  for (auto &[Src, Dst] : Pairs)
    S.insertKey(PointsToSet::keyIds(Src, Dst), D);
  return S;
}

TEST(StmtInFolderTest, FinishWithNoRecordsReturnsImmediately) {
  ThreadPool Pool(4);
  ParCounters Par;
  std::vector<OptSet> Slots(4);
  StmtInFolder Folder(Pool, Slots, Par);
  EXPECT_NO_THROW(Folder.finish());
  for (const OptSet &S : Slots)
    EXPECT_FALSE(S.has_value());
}

TEST(StmtInFolderTest, RecordsFoldIntoSlots) {
  ThreadPool Pool(4);
  ParCounters Par;
  std::vector<OptSet> Slots(8);
  StmtInFolder Folder(Pool, Slots, Par);
  Folder.record(3, makeSet({{1, 2}}));
  Folder.record(3, makeSet({{5, 6}}));
  Folder.record(5, makeSet({{7, 8}}, Def::D));
  Folder.finish();
  ASSERT_TRUE(Slots[3].has_value());
  EXPECT_TRUE(*Slots[3] == makeSet({{1, 2}, {5, 6}}));
  ASSERT_TRUE(Slots[5].has_value());
  EXPECT_TRUE(*Slots[5] == makeSet({{7, 8}}, Def::D));
  EXPECT_FALSE(Slots[0].has_value());
}

TEST(StmtInFolderTest, MatchesSequentialFoldUnderLoad) {
  // The determinism contract: after finish(), every slot holds exactly
  // what the sequential `StmtIn[id] ← merge(StmtIn[id], IN)` loop would
  // have produced.
  constexpr unsigned NumSlots = 64;
  constexpr unsigned NumRecords = 5000;
  ThreadPool Pool(4);
  ParCounters Par;
  std::vector<OptSet> Slots(NumSlots);
  std::vector<OptSet> Reference(NumSlots);
  StmtInFolder Folder(Pool, Slots, Par);
  uint64_t Seed = 0x9e3779b97f4a7c15ull;
  for (unsigned I = 0; I < NumRecords; ++I) {
    Seed = Seed * 6364136223846793005ull + 1442695040888963407ull;
    unsigned Id = unsigned(Seed >> 33) % NumSlots;
    uint32_t Src = uint32_t(Seed % 16);
    uint32_t Dst = uint32_t((Seed >> 8) % 16);
    Def D = (Seed & 1) ? Def::D : Def::P;
    PointsToSet S = makeSet({{Src, Dst}}, D);
    Folder.record(Id, S);
    if (!Reference[Id])
      Reference[Id] = S;
    else
      Reference[Id]->mergeWith(S);
  }
  Folder.finish();
  EXPECT_EQ(Par.FoldRecords.load(), uint64_t(NumRecords));
  for (unsigned I = 0; I < NumSlots; ++I) {
    ASSERT_EQ(Slots[I].has_value(), Reference[I].has_value()) << "slot " << I;
    if (Slots[I])
      EXPECT_TRUE(*Slots[I] == *Reference[I]) << "slot " << I;
  }
}

TEST(StmtInFolderTest, ReusableAfterFinish) {
  // The incremental engine re-enters the analyzer on the same Result;
  // the folder must accept records again after a barrier.
  ThreadPool Pool(2);
  ParCounters Par;
  std::vector<OptSet> Slots(2);
  StmtInFolder Folder(Pool, Slots, Par);
  Folder.record(0, makeSet({{1, 2}}));
  Folder.finish();
  Folder.record(0, makeSet({{3, 4}}));
  Folder.record(1, makeSet({{5, 6}}));
  Folder.finish();
  ASSERT_TRUE(Slots[0].has_value());
  EXPECT_EQ(Slots[0]->size(), 2u);
  ASSERT_TRUE(Slots[1].has_value());
  EXPECT_EQ(Slots[1]->size(), 1u);
}

TEST(StmtInFolderTest, InlinePoolFoldsSynchronously) {
  ThreadPool Pool(1);
  ParCounters Par;
  std::vector<OptSet> Slots(2);
  StmtInFolder Folder(Pool, Slots, Par);
  Folder.record(1, makeSet({{9, 9}}));
  // Inline pools run the drain inside record(); the slot is already
  // folded before the barrier.
  ASSERT_TRUE(Slots[1].has_value());
  Folder.finish();
  EXPECT_EQ(Slots[1]->size(), 1u);
}

} // namespace
