//===- BasicRulesTest.cpp - Figure 1 basic rule tests --------------------------===//
//
// Exercises the kill/change/gen rule of Figure 1 through complete little
// programs, checking the points-to set at the end of main.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

TEST(BasicRulesTest, AddressOfCreatesDefinitePair) {
  auto P = analyze("int main(void) { int x; int *p; p = &x; return *p; }");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, PointerInitializedToNull) {
  auto P = analyze("int main(void) { int *p; return 0; }");
  EXPECT_TRUE(mainHasPair(P, "p", "NULL", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, StrongUpdateKillsOldTarget) {
  auto P = analyze("int main(void) { int x; int y; int *p; "
                   "p = &x; p = &y; return *p; }");
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(BasicRulesTest, CopyPropagatesPairs) {
  auto P = analyze("int main(void) { int x; int *p; int *q; "
                   "p = &x; q = p; return *q; }");
  EXPECT_TRUE(mainHasPair(P, "q", "x", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, MultiLevelChain) {
  auto P = analyze("int main(void) { int x; int *p; int **q; "
                   "p = &x; q = &p; return **q; }");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "q", "p", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, StoreThroughDefinitePointerIsStrong) {
  // *q = &y with q definitely pointing to p kills p's old pairs — the
  // paper's motivating example for definite information.
  auto P = analyze("int main(void) { int x; int y; int *p; int **q; "
                   "p = &x; q = &p; *q = &y; return *p; }");
  EXPECT_TRUE(mainHasPair(P, "p", "y", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(BasicRulesTest, StoreThroughPossiblePointerIsWeak) {
  // q possibly points to p1 or p2; *q = &y must not kill either, and
  // their old definite pairs weaken to possible.
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int c;
      int *p1; int *p2; int **q;
      c = 1;
      p1 = &x; p2 = &x;
      if (c) q = &p1; else q = &p2;
      *q = &y;
      return *p1;
    })");
  EXPECT_TRUE(mainHasPair(P, "p1", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p1", "y", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p2", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p2", "y", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, LoadThroughPointer) {
  // x = *q where q -> p -> y gives x's value; for pointers: p2 = *q.
  auto P = analyze("int main(void) { int y; int *p; int **q; int *p2; "
                   "p = &y; q = &p; p2 = *q; return *p2; }");
  EXPECT_TRUE(mainHasPair(P, "p2", "y", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, MallocYieldsPossibleHeapPair) {
  auto P = analyze("void *malloc(int); int main(void) { int *p; "
                   "p = (int *)malloc(4); return 0; }");
  // Table 1: malloc() R-locations are {(heap, P)}.
  EXPECT_TRUE(mainHasPair(P, "p", "heap", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, HeapPointersStayPossible) {
  auto P = analyze("void *malloc(int); int main(void) { int **p; int *q; "
                   "p = (int **)malloc(8); *p = q; q = *p; return 0; }");
  // Stores into heap are weak; loads from heap are possible.
  EXPECT_TRUE(mainHasPair(P, "heap", "NULL", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, NullAssignment) {
  auto P = analyze("int main(void) { int x; int *p; p = &x; p = NULL; "
                   "return 0; }");
  EXPECT_TRUE(mainHasPair(P, "p", "NULL", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(BasicRulesTest, ZeroConstantIsNullForPointers) {
  auto P = analyze("int main(void) { int *p; p = 0; return 0; }");
  EXPECT_TRUE(mainHasPair(P, "p", "NULL", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, StringLiteralTarget) {
  auto P = analyze("int main(void) { char *s; s = \"hi\"; return *s; }");
  EXPECT_TRUE(mainHasPair(P, "s", "str$0[0]", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, FieldsAreSeparateLocations) {
  auto P = analyze(R"(
    struct S { int *a; int *b; };
    int main(void) {
      int x; int y;
      struct S s;
      s.a = &x;
      s.b = &y;
      return *s.a;
    })");
  EXPECT_TRUE(mainHasPair(P, "s.a", "x", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "s.b", "y", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, PointerToField) {
  auto P = analyze(R"(
    struct S { int a; int b; };
    int main(void) {
      struct S s;
      int *p;
      p = &s.b;
      *p = 3;
      return s.b;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "s.b", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, StructAssignmentCopiesPointerFields) {
  auto P = analyze(R"(
    struct S { int *p; int v; };
    int main(void) {
      int x;
      struct S s1; struct S s2;
      s1.p = &x;
      s2 = s1;
      return *s2.p;
    })");
  EXPECT_TRUE(mainHasPair(P, "s2.p", "x", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, ArrayHeadAndTail) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y;
      int *a[4];
      a[0] = &x;
      a[2] = &y;
      return 0;
    })");
  // a[0] is the head (strong-updatable single real); a[2] lands in the
  // tail summary (weak).
  EXPECT_TRUE(mainHasPair(P, "a[0]", "x", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "a[1..]", "y", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, UnknownIndexWritesBothHalves) {
  auto P = analyze(R"(
    int main(void) {
      int x; int i;
      int *a[4];
      i = 2;
      a[i] = &x;
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "a[0]", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "a[1..]", "x", 'P')) << mainOut(P);
  // Weak: the NULL initialization survives.
  EXPECT_TRUE(mainHasPair(P, "a[0]", "NULL", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, TailNeverKilled) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y;
      int *a[4];
      a[1] = &x;
      a[2] = &y;
      return 0;
    })");
  // Both writes land in the tail; neither kills the other.
  EXPECT_TRUE(mainHasPair(P, "a[1..]", "x", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "a[1..]", "y", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, PointerArithmeticStaysInObject) {
  auto P = analyze(R"(
    int main(void) {
      int a[8];
      int *p; int *q;
      p = &a[0];
      q = p + 3;
      return *q;
    })");
  // p points to a_head; p+3 lands in the tail.
  EXPECT_TRUE(mainHasPair(P, "p", "a[0]", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "q", "a[1..]", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, AddressOfArrayElementUnknown) {
  auto P = analyze(R"(
    int main(void) {
      int a[8]; int i; int *p;
      i = 3;
      p = &a[i];
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "a[0]", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "a[1..]", 'P')) << mainOut(P);
}

TEST(BasicRulesTest, FunctionPointerAssignment) {
  auto P = analyze("int f(void); int f(void) { return 1; } "
                   "int main(void) { int (*fp)(void); fp = f; "
                   "return fp(); }");
  EXPECT_TRUE(mainHasPair(P, "fp", "f", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, NonPointerAssignmentHasNoEffect) {
  auto P = analyze("int main(void) { int x; int y; int *p; p = &x; "
                   "y = 3; y = y + 1; return y; }");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, SelfAssignmentKeepsPairs) {
  auto P = analyze("int main(void) { int x; int *p; p = &x; p = p; "
                   "return *p; }");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(BasicRulesTest, CastThroughVoidPointerPreservesTargets) {
  auto P = analyze("int main(void) { int x; void *v; int *p; "
                   "v = (void *)&x; p = (int *)v; return *p; }");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

} // namespace
