//===- TypeTest.cpp - type system unit tests -----------------------------------===//

#include "cfront/AST.h"
#include "cfront/Type.h"

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::cfront;

namespace {

class TypeTest : public ::testing::Test {
protected:
  TypeContext Types;
};

TEST_F(TypeTest, BuiltinsAreSingletons) {
  EXPECT_EQ(Types.intType(), Types.builtin(BuiltinType::BK::Int));
  EXPECT_NE(Types.intType(), Types.charType());
  EXPECT_TRUE(Types.intType()->isInteger());
  EXPECT_TRUE(Types.doubleType()->isFloating());
  EXPECT_TRUE(Types.voidType()->isVoid());
  EXPECT_FALSE(Types.doubleType()->isInteger());
}

TEST_F(TypeTest, PointerInterning) {
  const Type *P1 = Types.pointerTo(Types.intType());
  const Type *P2 = Types.pointerTo(Types.intType());
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, Types.pointerTo(Types.charType()));
  EXPECT_TRUE(P1->isPointer());
  EXPECT_EQ(cast<PointerType>(P1)->pointee(), Types.intType());
}

TEST_F(TypeTest, ArrayInterning) {
  const Type *A1 = Types.arrayOf(Types.intType(), 10);
  EXPECT_EQ(A1, Types.arrayOf(Types.intType(), 10));
  EXPECT_NE(A1, Types.arrayOf(Types.intType(), 20));
  EXPECT_NE(A1, Types.arrayOf(Types.intType(), -1));
}

TEST_F(TypeTest, FunctionInterning) {
  const Type *F1 = Types.functionType(Types.intType(),
                                      {Types.pointerTo(Types.intType())},
                                      false);
  const Type *F2 = Types.functionType(Types.intType(),
                                      {Types.pointerTo(Types.intType())},
                                      false);
  EXPECT_EQ(F1, F2);
  const Type *FV = Types.functionType(Types.intType(),
                                      {Types.pointerTo(Types.intType())},
                                      true);
  EXPECT_NE(F1, FV);
}

TEST_F(TypeTest, PointerBearing) {
  EXPECT_FALSE(Types.intType()->isPointerBearing());
  EXPECT_TRUE(Types.pointerTo(Types.intType())->isPointerBearing());
  EXPECT_TRUE(
      Types.arrayOf(Types.pointerTo(Types.intType()), 4)->isPointerBearing());
  EXPECT_FALSE(Types.arrayOf(Types.intType(), 4)->isPointerBearing());

  RecordDecl RD("S", SourceLoc(), false);
  FieldDecl FInt("v", SourceLoc(), Types.intType(), &RD, 0);
  RD.addField(&FInt);
  RD.setComplete();
  EXPECT_FALSE(Types.recordType(&RD)->isPointerBearing());

  RecordDecl RD2("T", SourceLoc(), false);
  FieldDecl FPtr("p", SourceLoc(), Types.pointerTo(Types.intType()), &RD2,
                 0);
  RD2.addField(&FPtr);
  RD2.setComplete();
  EXPECT_TRUE(Types.recordType(&RD2)->isPointerBearing());
}

TEST_F(TypeTest, Rendering) {
  EXPECT_EQ(Types.intType()->str(), "int");
  EXPECT_EQ(Types.pointerTo(Types.pointerTo(Types.charType()))->str(),
            "char**");
  EXPECT_EQ(Types.arrayOf(Types.doubleType(), 8)->str(), "double[8]");
  const Type *F =
      Types.functionType(Types.intType(), {Types.charType()}, true);
  EXPECT_EQ(F->str(), "int(char,...)");
}

TEST_F(TypeTest, CastHelpers) {
  const Type *P = Types.pointerTo(Types.intType());
  EXPECT_NE(dynCast<PointerType>(P), nullptr);
  EXPECT_EQ(dynCast<ArrayType>(P), nullptr);
  EXPECT_EQ(dynCast<PointerType>(static_cast<const Type *>(nullptr)),
            nullptr);
}

} // namespace
