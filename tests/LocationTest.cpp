//===- LocationTest.cpp - abstract stack location unit tests -------------------===//

#include "pointsto/Location.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::cfront;

namespace {

class LocationTest : public ::testing::Test {
protected:
  LocationTest() {
    IntTy = Types.intType();
    IntPtr = Types.pointerTo(IntTy);
    IntPtrPtr = Types.pointerTo(IntPtr);
    Arr = Types.arrayOf(IntPtr, 4);
  }

  TypeContext Types;
  LocationTable Locs;
  const Type *IntTy;
  const Type *IntPtr;
  const Type *IntPtrPtr;
  const Type *Arr;
};

TEST_F(LocationTest, VariableEntitiesAreInterned) {
  VarDecl V("x", SourceLoc(), IntPtr, VarDecl::Storage::Local);
  EXPECT_EQ(Locs.variable(&V), Locs.variable(&V));
  EXPECT_EQ(Locs.varLoc(&V), Locs.varLoc(&V));
  EXPECT_EQ(Locs.varLoc(&V)->str(), "x");
}

TEST_F(LocationTest, HeapAndNullAreSingletons) {
  EXPECT_EQ(Locs.heap(), Locs.heap());
  EXPECT_EQ(Locs.null(), Locs.null());
  EXPECT_TRUE(Locs.heap()->isHeap());
  EXPECT_TRUE(Locs.heap()->isSummary());
  EXPECT_TRUE(Locs.null()->isNull());
  EXPECT_FALSE(Locs.null()->isSummary());
}

TEST_F(LocationTest, PathsAreInterned) {
  VarDecl V("a", SourceLoc(), Arr, VarDecl::Storage::Local);
  const Location *Base = Locs.varLoc(&V);
  const Location *Head = Locs.withElem(Base, true);
  const Location *Tail = Locs.withElem(Base, false);
  EXPECT_EQ(Head, Locs.withElem(Base, true));
  EXPECT_NE(Head, Tail);
  EXPECT_EQ(Head->str(), "a[0]");
  EXPECT_EQ(Tail->str(), "a[1..]");
  EXPECT_FALSE(Head->isSummary()) << "a[0] is one real location";
  EXPECT_TRUE(Tail->isSummary()) << "a[1..] summarizes many";
}

TEST_F(LocationTest, LocationTypesFollowPaths) {
  VarDecl V("a", SourceLoc(), Arr, VarDecl::Storage::Local);
  const Location *Head = Locs.withElem(Locs.varLoc(&V), true);
  EXPECT_EQ(Head->type(), IntPtr) << "element of int*[4] is int*";
}

TEST_F(LocationTest, HeapAbsorbsPaths) {
  RecordDecl RD("S", SourceLoc(), false);
  FieldDecl F("f", SourceLoc(), IntPtr, &RD, 0);
  EXPECT_EQ(Locs.withField(Locs.heap(), &F), Locs.heap());
  EXPECT_EQ(Locs.withElem(Locs.heap(), false), Locs.heap());
}

TEST_F(LocationTest, HeadToTail) {
  VarDecl V("a", SourceLoc(), Arr, VarDecl::Storage::Local);
  const Location *Head = Locs.withElem(Locs.varLoc(&V), true);
  const Location *Tail = Locs.withElem(Locs.varLoc(&V), false);
  EXPECT_EQ(Locs.headToTail(Head), Tail);
  EXPECT_EQ(Locs.headToTail(Tail), Tail) << "already at the tail";
  EXPECT_EQ(Locs.headToTail(Locs.varLoc(&V)), Locs.varLoc(&V))
      << "no trailing head: unchanged";
}

TEST_F(LocationTest, SymbolicNaming) {
  VarDecl X("x", SourceLoc(), IntPtrPtr, VarDecl::Storage::Param);
  FunctionDecl F("f", SourceLoc(),
                 Types.functionType(IntTy, {IntPtrPtr}, false));
  const Location *XLoc = Locs.varLoc(&X);
  const Entity *S1 = Locs.symbolic(&F, XLoc);
  EXPECT_EQ(S1->name(), "1_x");
  EXPECT_EQ(S1->symbolicLevel(), 1u);
  EXPECT_EQ(S1->type(), IntPtr) << "1_x has type int* when x is int**";

  const Entity *S2 = Locs.symbolic(&F, Locs.get(S1));
  EXPECT_EQ(S2->name(), "2_x");
  EXPECT_EQ(S2->symbolicLevel(), 2u);
  EXPECT_EQ(S2->type(), IntTy);

  // Cached per (frame, parent).
  EXPECT_EQ(Locs.symbolic(&F, XLoc), S1);
}

TEST_F(LocationTest, SymbolicKLimitCollapses) {
  Locs.setSymbolicLevelLimit(3);
  VarDecl X("x", SourceLoc(), IntPtrPtr, VarDecl::Storage::Param);
  FunctionDecl F("f", SourceLoc(),
                 Types.functionType(IntTy, {IntPtrPtr}, false));
  const Entity *S = Locs.symbolic(&F, Locs.varLoc(&X));
  for (int Level = 2; Level <= 3; ++Level)
    S = Locs.symbolic(&F, Locs.get(S));
  EXPECT_EQ(S->symbolicLevel(), 3u);
  // Beyond the limit the chain folds into the last symbolic ...
  const Entity *Beyond = Locs.symbolic(&F, Locs.get(S));
  EXPECT_EQ(Beyond, S);
  // ... which thereby becomes a summary.
  EXPECT_TRUE(S->isCollapsed());
  EXPECT_TRUE(Locs.get(S)->isSummary());
}

TEST_F(LocationTest, PointerSubLocations) {
  RecordDecl RD("S", SourceLoc(), false);
  FieldDecl F1("p", SourceLoc(), IntPtr, &RD, 0);
  FieldDecl F2("v", SourceLoc(), IntTy, &RD, 1);
  FieldDecl F3("arr", SourceLoc(), Arr, &RD, 2);
  RD.addField(&F1);
  RD.addField(&F2);
  RD.addField(&F3);
  RD.setComplete();
  const Type *STy = Types.recordType(&RD);

  VarDecl V("s", SourceLoc(), STy, VarDecl::Storage::Local);
  std::vector<const Location *> Subs;
  Locs.pointerSubLocations(Locs.varLoc(&V), Subs);

  std::vector<std::string> Names;
  for (const Location *L : Subs)
    Names.push_back(L->str());
  // s.p, s.arr[0], s.arr[1..] carry pointers; s.v does not.
  EXPECT_EQ(Names.size(), 3u);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "s.p"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "s.arr[0]"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "s.arr[1..]"),
            Names.end());
}

TEST_F(LocationTest, IdsAreDense) {
  VarDecl A("a", SourceLoc(), IntTy, VarDecl::Storage::Local);
  VarDecl B("b", SourceLoc(), IntTy, VarDecl::Storage::Local);
  const Location *LA = Locs.varLoc(&A);
  const Location *LB = Locs.varLoc(&B);
  EXPECT_EQ(Locs.byId(LA->id()), LA);
  EXPECT_EQ(Locs.byId(LB->id()), LB);
  EXPECT_EQ(LB->id(), LA->id() + 1);
}

} // namespace
