//===- InterpreterTest.cpp - concrete SIMPLE interpreter tests -----------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "interp/Interpreter.h"

using namespace mcpta;
using namespace mcpta::interp;
using namespace mcpta::testutil;

namespace {

long long runExit(const std::string &Src) {
  Pipeline P = Pipeline::frontend(Src);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  if (!P.Prog)
    return -999;
  RunResult R = run(*P.Prog);
  EXPECT_TRUE(R.Completed) << R.Error;
  return R.ExitValue;
}

TEST(InterpreterTest, Arithmetic) {
  EXPECT_EQ(runExit("int main(void){ return 2 + 3 * 4 - 6 / 2; }"), 11);
  EXPECT_EQ(runExit("int main(void){ return (7 % 3) << 2; }"), 4);
  EXPECT_EQ(runExit("int main(void){ return 10 > 3 && 2 < 1; }"), 0);
  EXPECT_EQ(runExit("int main(void){ return 10 > 3 || 2 < 1; }"), 1);
}

TEST(InterpreterTest, PointersReadAndWrite) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int x; int *p;
      x = 5;
      p = &x;
      *p = *p + 2;
      return x;
    })"),
            7);
}

TEST(InterpreterTest, MultiLevelPointers) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int x; int *p; int **q;
      x = 1;
      p = &x;
      q = &p;
      **q = 42;
      return x;
    })"),
            42);
}

TEST(InterpreterTest, Loops) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int i; int s;
      s = 0;
      for (i = 1; i <= 10; i++)
        s = s + i;
      return s;
    })"),
            55);
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int n; int c;
      n = 32; c = 0;
      while (n > 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        c++;
      }
      return c;
    })"),
            5);
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int n;
      n = 0;
      do { n++; } while (n < 3);
      return n;
    })"),
            3);
}

TEST(InterpreterTest, BreakContinue) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int i; int s;
      s = 0;
      for (i = 0; i < 10; i++) {
        if (i == 5) break;
        if (i % 2) continue;
        s = s + i;   /* 0 + 2 + 4 */
      }
      return s;
    })"),
            6);
}

TEST(InterpreterTest, SwitchWithFallthrough) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int x; int r;
      x = 2; r = 0;
      switch (x) {
      case 1: r = r + 1; break;
      case 2: r = r + 10;     /* falls into case 3 */
      case 3: r = r + 100; break;
      default: r = -1;
      }
      return r;
    })"),
            110);
}

TEST(InterpreterTest, Arrays) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int a[5]; int i; int s;
      for (i = 0; i < 5; i++)
        a[i] = i * i;
      s = 0;
      for (i = 0; i < 5; i++)
        s = s + a[i];
      return s;
    })"),
            30);
}

TEST(InterpreterTest, PointerArithmeticWalk) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int a[4]; int *p; int s; int i;
      for (i = 0; i < 4; i++)
        a[i] = i + 1;
      p = a;
      s = 0;
      for (i = 0; i < 4; i++) {
        s = s + *p;
        p = p + 1;
      }
      return s;
    })"),
            10);
}

TEST(InterpreterTest, StructsAndFields) {
  EXPECT_EQ(runExit(R"(
    struct P { int x; int y; };
    int main(void) {
      struct P a; struct P b; struct P *pp;
      a.x = 3; a.y = 4;
      b = a;
      pp = &b;
      pp->x = 10;
      return a.x + b.x + pp->y;
    })"),
            17);
}

TEST(InterpreterTest, FunctionsAndRecursion) {
  EXPECT_EQ(runExit(R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main(void) { return fib(10); })"),
            55);
}

TEST(InterpreterTest, OutputParameters) {
  EXPECT_EQ(runExit(R"(
    void divmod(int a, int b, int *q, int *r) {
      *q = a / b;
      *r = a % b;
    }
    int main(void) {
      int q; int r;
      divmod(17, 5, &q, &r);
      return q * 10 + r;
    })"),
            32);
}

TEST(InterpreterTest, FunctionPointerDispatch) {
  EXPECT_EQ(runExit(R"(
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int (*ops[2])(int, int) = {add, mul};
    int main(void) {
      int (*f)(int, int);
      f = ops[1];
      return f(6, 7);
    })"),
            42);
}

TEST(InterpreterTest, HeapAllocation) {
  EXPECT_EQ(runExit(R"(
    void *malloc(int);
    struct N { int v; struct N *next; };
    int main(void) {
      struct N *head; struct N *n;
      int i; int s;
      head = NULL;
      for (i = 1; i <= 4; i++) {
        n = (struct N *)malloc(16);
        n->v = i;
        n->next = head;
        head = n;
      }
      s = 0;
      while (head != NULL) {
        s = s + head->v;
        head = head->next;
      }
      return s;
    })"),
            10);
}

TEST(InterpreterTest, StringsAndLibrary) {
  EXPECT_EQ(runExit(R"(
    int strcmp(char *a, char *b);
    char *strcpy(char *dst, char *src);
    int strlen(char *s);
    int main(void) {
      char buf[8];
      strcpy(buf, "abc");
      if (strcmp(buf, "abc") == 0)
        return strlen(buf);
      return -1;
    })"),
            3);
}

TEST(InterpreterTest, GlobalInitializers) {
  EXPECT_EQ(runExit(R"(
    int g = 5;
    int a[3] = {1, 2, 3};
    int *gp = &g;
    int main(void) { return *gp + a[0] + a[2]; })"),
            9);
}

TEST(InterpreterTest, TernaryAndShortCircuit) {
  EXPECT_EQ(runExit(R"(
    int bump(int *c) { *c = *c + 1; return 1; }
    int main(void) {
      int calls; int r;
      calls = 0;
      r = 0 && bump(&calls);  /* bump must not run */
      r = r + (1 && bump(&calls)); /* bump runs */
      r = r + (1 ? 20 : 30);
      return r * 100 + calls;
    })"),
            2101);
}

TEST(InterpreterTest, StepBudgetStopsInfiniteLoops) {
  Pipeline P = Pipeline::frontend("int main(void){ while (1) { } return 0; }");
  ASSERT_TRUE(P.Prog);
  RunResult R = run(*P.Prog, 1000);
  EXPECT_FALSE(R.Completed);
}

TEST(InterpreterTest, CorpusProgramsExecute) {
  for (const auto &CP : corpus::corpus()) {
    Pipeline P = Pipeline::frontend(CP.Source);
    ASSERT_TRUE(P.Prog) << CP.Name;
    RunResult R = run(*P.Prog, 2000000);
    EXPECT_TRUE(R.Completed) << CP.Name << ": " << R.Error;
    EXPECT_TRUE(R.Error.empty()) << CP.Name << ": " << R.Error;
  }
}

} // namespace
