//===- ChaosTest.cpp - fault-injection chaos suite for the serve daemon --------===//
//
// The chaos invariants (docs/ROBUSTNESS.md, "Chaos testing"): under
// every injectable fault class the daemon must
//
//  - never crash and never hang,
//  - never return an unsound answer (a faulted request either fails
//    with an error or returns a soundly-degraded result), and
//  - keep serving: requests after the fault behave exactly as they
//    would on a fault-free daemon (same key, same result members).
//
// Fault injection is deterministic (support/FaultInjection.h), so every
// scenario here replays identically run over run.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"
#include "serve/Server.h"
#include "serve/SummaryCache.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace mcpta;
using namespace mcpta::serve;
using mcpta::support::FaultInjection;

namespace {

struct TempCacheDir {
  std::string Path;
  TempCacheDir(const char *Tag) {
    Path = ::testing::TempDir() + "/mcpta_chaos_test_" + Tag + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(Path);
  }
  ~TempCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

JsonValue parseResponse(const std::string &Line) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Line, V, Err)) << Err << "\nline: " << Line;
  return V;
}

/// A server with fault injection enabled ("on" unless a spec is given)
/// so requests may carry per-request "fault" members.
struct ChaosFixture {
  TempCacheDir Dir{"chaos"};
  Server S;
  std::ostringstream Log;

  ChaosFixture(const char *FaultSpec = "on", const std::string &CacheDir = "")
      : S(makeConfig(FaultSpec, CacheDir)) {}

  Server::Config makeConfig(const char *FaultSpec,
                            const std::string &CacheDir) {
    Server::Config Cfg;
    Cfg.Cache.Dir = CacheDir.empty() ? Dir.Path : CacheDir;
    Cfg.FaultSpec = FaultSpec;
    return Cfg;
  }

  JsonValue request(const std::string &Line) {
    bool Shut = false;
    return parseResponse(S.handleLine(Line, Shut, Log));
  }

  uint64_t counter(const std::string &Name) {
    auto Snap = S.telemetry().countersSnapshot();
    auto It = Snap.find(Name);
    return It == Snap.end() ? 0 : It->second;
  }
};

const char *kSource =
    "int main(void) { int x; int *p; int *q; p = &x; q = p; return *q; }";

std::string analyzeReq(int Id, const char *Fault = nullptr) {
  std::string R = "{\"id\":" + std::to_string(Id) +
                  ",\"method\":\"analyze\",\"source\":\"" + kSource + "\"";
  if (Fault)
    R += std::string(",\"fault\":\"") + Fault + "\"";
  R += "}";
  return R;
}

/// Analyze request over the embedded "hash" corpus program — big enough
/// that the analyzer's amortized budget checkpoints (every 64/256
/// statement visits) actually run, which the degradation-path scenarios
/// below rely on. The tiny inline source finishes before the first
/// checkpoint.
std::string corpusReq(int Id, const char *Extra = nullptr) {
  std::string R = "{\"id\":" + std::to_string(Id) +
                  ",\"method\":\"analyze\",\"corpus\":\"hash\"";
  if (Extra)
    R += Extra;
  R += "}";
  return R;
}

/// The result members that must be identical between a faulted-then-
/// recovered daemon and a fault-free one (everything except transport
/// metadata like elapsed_ms / cached / cid).
std::string resultSignature(const JsonValue &R) {
  std::ostringstream Sig;
  Sig << R.getBool("ok", false) << "|" << R.getBool("degraded", false) << "|"
      << R.getString("key", "") << "|" << R.getNumber("locations", -1) << "|"
      << R.getNumber("ig_nodes", -1) << "|"
      << R.getNumber("main_out_pairs", -1) << "|"
      << R.getNumber("alias_pairs", -1);
  return Sig.str();
}

//===----------------------------------------------------------------------===//
// Per-request fault gating
//===----------------------------------------------------------------------===//

TEST(ChaosTest, PerRequestFaultsRequireDaemonOptIn) {
  // Without --fault-inject, a "fault" member is a hard error: chaos
  // hooks can never fire in a production daemon by accident.
  TempCacheDir Dir("nofi");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Server S(Cfg);
  std::ostringstream Log;
  bool Shut = false;
  JsonValue R = parseResponse(
      S.handleLine(analyzeReq(1, "cache.read_io:once"), Shut, Log));
  EXPECT_FALSE(R.getBool("ok", true));
  EXPECT_NE(R.getString("error", "").find("--fault-inject"),
            std::string::npos);

  ChaosFixture F; // FaultSpec "on": no server-wide arms, gate open
  JsonValue Bad = F.request(analyzeReq(1, "cache.raed_io:once"));
  EXPECT_FALSE(Bad.getBool("ok", true)) << "typo'd point still rejected";
  JsonValue Ok = F.request(analyzeReq(2, "cache.read_io:once"));
  EXPECT_TRUE(Ok.getBool("ok", false));
}

TEST(ChaosTest, BadServerWideSpecRefusesToStart) {
  TempCacheDir Dir("badspec");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.FaultSpec = "cache.read_io:sometimes";
  Server S(Cfg);
  std::istringstream In("{\"id\":1,\"method\":\"stats\"}\n");
  std::ostringstream Out, Log;
  EXPECT_EQ(S.run(In, Out, Log), 1);
  EXPECT_NE(Log.str().find("fault-inject"), std::string::npos);
  EXPECT_TRUE(Out.str().empty()) << "no request is served";
}

//===----------------------------------------------------------------------===//
// Cache fault classes: corruption, read IO, write IO
//===----------------------------------------------------------------------===//

TEST(ChaosTest, CorruptBlobIsQuarantinedAndRecoversCleanly) {
  TempCacheDir Shared("corrupt");
  std::string CleanSig;
  {
    ChaosFixture F("on", Shared.Path);
    JsonValue R = F.request(analyzeReq(1));
    ASSERT_TRUE(R.getBool("ok", false));
    CleanSig = resultSignature(R);
  }
  // A fresh daemon over the same disk tier (empty LRU forces the disk
  // read) sees a bit-flipped blob. Invariant: miss + quarantine, then a
  // full re-analysis whose answer matches the fault-free one exactly.
  ChaosFixture F("on", Shared.Path);
  JsonValue R = F.request(analyzeReq(2, "cache.corrupt:once"));
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_FALSE(R.getBool("cached", true)) << "corrupt blob must not hit";
  EXPECT_EQ(resultSignature(R), CleanSig);
  EXPECT_NE(F.Log.str().find("quarantined"), std::string::npos);
  EXPECT_EQ(F.S.cache().stats().Quarantined, 1u);

  // The re-analysis republished the blob: the next lookup hits, and the
  // daemon kept serving throughout.
  JsonValue R2 = F.request(analyzeReq(3));
  EXPECT_TRUE(R2.getBool("ok", false));
  EXPECT_TRUE(R2.getBool("cached", false));
  EXPECT_EQ(resultSignature(R2), CleanSig);
}

TEST(ChaosTest, ReadIoFailureDegradesToMissNotQuarantine) {
  TempCacheDir Shared("readio");
  std::string CleanSig;
  {
    ChaosFixture F("on", Shared.Path);
    CleanSig = resultSignature(F.request(analyzeReq(1)));
  }
  ChaosFixture F("on", Shared.Path);
  JsonValue R = F.request(analyzeReq(2, "cache.read_io:once"));
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_FALSE(R.getBool("cached", true));
  EXPECT_EQ(resultSignature(R), CleanSig);
  // An IO error is transient by assumption: the blob is NOT moved
  // aside, so once the fault clears the disk tier serves it again.
  EXPECT_EQ(F.S.cache().stats().Quarantined, 0u);
  EXPECT_EQ(F.S.cache().stats().ReadIoErrors, 1u);
}

TEST(ChaosTest, WriteRetriesRideOutTransientIoFailures) {
  // Two injected write failures, then success: the store lands on disk
  // and the retry counter records exactly two extra attempts.
  TempCacheDir Dir("wretry");
  ChaosFixture F("cache.write_io:times=2", Dir.Path);
  JsonValue R = F.request(analyzeReq(1));
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_EQ(F.S.cache().stats().WriteRetries, 2u);
  std::string Key = R.getString("key", "");
  ASSERT_EQ(Key.size(), 32u);
  EXPECT_TRUE(std::filesystem::exists(Dir.Path + "/" + Key + ".mcpta"));
}

TEST(ChaosTest, PersistentWriteFailureDegradesToMemoryOnly) {
  TempCacheDir Dir("wfail");
  ChaosFixture F("cache.write_io:always", Dir.Path);
  JsonValue R = F.request(analyzeReq(1));
  EXPECT_TRUE(R.getBool("ok", false)) << "analysis itself is unaffected";
  std::string Key = R.getString("key", "");
  EXPECT_FALSE(std::filesystem::exists(Dir.Path + "/" + Key + ".mcpta"));
  EXPECT_NE(F.Log.str().find("memory-only"), std::string::npos);
  // The memory tier still answers: same key, cached, same result.
  JsonValue R2 = F.request(analyzeReq(2));
  EXPECT_TRUE(R2.getBool("cached", false));
  EXPECT_EQ(resultSignature(R2), resultSignature(R));
}

//===----------------------------------------------------------------------===//
// Allocation pressure
//===----------------------------------------------------------------------===//

TEST(ChaosTest, AllocPressureDegradesSoundlyUnderItsOwnKey) {
  ChaosFixture F;
  JsonValue Clean = F.request(corpusReq(1));
  ASSERT_TRUE(Clean.getBool("ok", false));
  EXPECT_FALSE(Clean.getBool("degraded", true));

  JsonValue Faulted =
      F.request(corpusReq(2, ",\"fault\":\"alloc.pressure:always:max=2\""));
  EXPECT_TRUE(Faulted.getBool("ok", false)) << "degrades, never fails";
  EXPECT_TRUE(Faulted.getBool("degraded", false));
  // The tightened budget is part of the cache key: the degraded result
  // can never poison the clean entry.
  EXPECT_NE(Faulted.getString("key", "x"), Clean.getString("key", "y"));

  JsonValue Clean2 = F.request(corpusReq(3));
  EXPECT_TRUE(Clean2.getBool("cached", false)) << "clean entry untouched";
  EXPECT_EQ(resultSignature(Clean2), resultSignature(Clean));
  EXPECT_EQ(F.counter("fault.injected.alloc.pressure"), 1u);
}

//===----------------------------------------------------------------------===//
// Stalls and the deadline watchdog
//===----------------------------------------------------------------------===//

TEST(ChaosTest, WatchdogCancelsStalledRequestAndResultIsNotCached) {
  ChaosFixture F;
  // The stall dwarfs the 25 ms budget; the hard deadline is
  // max(4x25, 25+50) = 100 ms. Sweep from this thread until it fires —
  // the same loop run()'s watchdog thread drives in production.
  std::string Req = corpusReq(1, ",\"limits\":{\"timeout_ms\":25},"
                                 "\"fault\":\"serve.stall:always:ms=20000\"");
  std::string Reply;
  std::thread Worker([&] {
    bool Shut = false;
    Reply = F.S.handleLine(Req, Shut, F.Log);
  });
  size_t Fired = 0;
  auto GiveUp = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!Fired && std::chrono::steady_clock::now() < GiveUp) {
    Fired = F.S.watchdogSweep();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Worker.join();
  ASSERT_EQ(Fired, 1u) << "watchdog never fired; request would hang";

  // No crash, no hang, no unsound answer: the reply is a well-formed
  // degraded success (the cancel flag trips the deadline-cut path).
  JsonValue R = parseResponse(Reply);
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_TRUE(R.getBool("degraded", false));
  EXPECT_EQ(F.counter("serve.watchdog.fired"), 1u);
  EXPECT_EQ(F.counter("fault.injected.serve.stall"), 1u);
  EXPECT_EQ(F.counter("serve.watchdog.uncached_results"), 1u);

  // A cancelled result reflects scheduler timing, so it must not be
  // served to anyone else: the same request without the fault misses
  // and re-analyzes.
  JsonValue Clean = F.request(corpusReq(2, ",\"limits\":{\"timeout_ms\":25}"));
  EXPECT_TRUE(Clean.getBool("ok", false));
  EXPECT_FALSE(Clean.getBool("cached", true))
      << "cancelled result must not have been cached";
}

TEST(ChaosTest, WatchdogSweepLeavesHealthyRequestsAlone) {
  ChaosFixture F;
  // Nothing in flight: a sweep is a no-op that still counts itself.
  EXPECT_EQ(F.S.watchdogSweep(), 0u);
  JsonValue R = F.request(
      "{\"id\":1,\"method\":\"analyze\",\"source\":\"" +
      std::string(kSource) + "\",\"limits\":{\"timeout_ms\":60000}}");
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_FALSE(R.getBool("degraded", true));
  EXPECT_EQ(F.counter("serve.watchdog.fired"), 0u);
  EXPECT_GE(F.counter("serve.watchdog.sweeps"), 1u);
}

//===----------------------------------------------------------------------===//
// Queue overload (injected) through the full concurrent loop
//===----------------------------------------------------------------------===//

TEST(ChaosTest, InjectedQueueOverloadShedsDeterministically) {
  TempCacheDir Dir("qfull");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.Threads = 2;
  Cfg.FaultSpec = "serve.queue_full:every=2"; // sheds lines 1, 3, 5
  Server S(Cfg);

  std::string Input;
  for (int I = 1; I <= 6; ++I)
    Input += analyzeReq(I) + "\n";
  std::istringstream In(Input);
  std::ostringstream Out, Log;
  ASSERT_EQ(S.run(In, Out, Log), 0);

  std::istringstream Lines(Out.str());
  std::string Line;
  int Ok = 0, Shed = 0;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    JsonValue R = parseResponse(Line);
    if (R.getBool("ok", false)) {
      ++Ok;
    } else {
      ++Shed;
      EXPECT_TRUE(R.getBool("overloaded", false));
      EXPECT_NE(R.getString("error", "").find("overloaded"),
                std::string::npos);
      // The shed response still echoes the id for correlation.
      EXPECT_GT(R.getNumber("id", 0), 0);
    }
  }
  EXPECT_EQ(Ok, 3);
  EXPECT_EQ(Shed, 3);
  auto Counters = S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["serve.admission.shed_full"], 3u);
  EXPECT_EQ(Counters["serve.admission.admitted"], 3u);
}

//===----------------------------------------------------------------------===//
// The full sweep: every fault class in one daemon lifetime, then prove
// the daemon answers a clean request exactly like a fault-free one.
//===----------------------------------------------------------------------===//

TEST(ChaosTest, DaemonRecoversIdenticallyAfterEveryFaultClass) {
  std::string CleanSig;
  {
    ChaosFixture Reference;
    CleanSig = resultSignature(Reference.request(analyzeReq(1)));
  }

  ChaosFixture F;
  const char *Faults[] = {
      "cache.read_io:once",
      "cache.write_io:once",
      "cache.corrupt:once",
      "alloc.pressure:once:max=2",
      "serve.stall:once:ms=1", // too short for the watchdog: plain delay
  };
  int Id = 10;
  for (const char *Fault : Faults) {
    JsonValue R = F.request(analyzeReq(Id++, Fault));
    EXPECT_TRUE(R.getBool("ok", false)) << Fault;
  }
  // After the whole gauntlet, a clean request is byte-identical in
  // every result member to the fault-free daemon's answer.
  JsonValue Final = F.request(analyzeReq(99));
  EXPECT_TRUE(Final.getBool("ok", false));
  EXPECT_EQ(resultSignature(Final), CleanSig);
}

} // namespace
