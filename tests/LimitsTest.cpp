//===- LimitsTest.cpp - resource-governance unit tests -------------------------===//
//
// BudgetMeter semantics: trip conditions, stickiness, amortized
// deadline checks, and the hard-deadline backstop (docs/ROBUSTNESS.md).
//
//===----------------------------------------------------------------------===//

#include "support/Limits.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

using namespace mcpta::support;

namespace {

TEST(LimitsTest, DefaultLimitsGovernNothing) {
  AnalysisLimits L;
  EXPECT_FALSE(L.any());
  L.MaxStmtVisits = 1;
  EXPECT_TRUE(L.any());
}

TEST(LimitsTest, EachFieldActivatesAny) {
  for (int F = 0; F < 5; ++F) {
    AnalysisLimits L;
    switch (F) {
    case 0: L.TimeoutMs = 1; break;
    case 1: L.MaxStmtVisits = 1; break;
    case 2: L.MaxLocations = 1; break;
    case 3: L.MaxIGNodes = 1; break;
    case 4: L.MaxRecPasses = 1; break;
    }
    EXPECT_TRUE(L.any()) << "field " << F;
  }
}

TEST(LimitsTest, LimitKindNamesAreStable) {
  EXPECT_STREQ(limitKindName(LimitKind::Deadline), "deadline");
  EXPECT_STREQ(limitKindName(LimitKind::StmtVisits), "stmt_visits");
  EXPECT_STREQ(limitKindName(LimitKind::Locations), "locations");
  EXPECT_STREQ(limitKindName(LimitKind::IGNodes), "ig_nodes");
  EXPECT_STREQ(limitKindName(LimitKind::RecPasses), "rec_passes");
}

TEST(LimitsTest, StmtVisitBudgetTrips) {
  AnalysisLimits L;
  L.MaxStmtVisits = 3;
  BudgetMeter M(L);
  EXPECT_TRUE(M.tick());
  EXPECT_TRUE(M.tick());
  EXPECT_TRUE(M.tick()); // exactly at the budget: still fine
  EXPECT_FALSE(M.tick());
  EXPECT_TRUE(M.tripped());
  EXPECT_TRUE(M.tripped(LimitKind::StmtVisits));
  EXPECT_FALSE(M.tripped(LimitKind::Deadline));
  EXPECT_EQ(M.stmtVisits(), 4u);
}

TEST(LimitsTest, TripsAreSticky) {
  AnalysisLimits L;
  L.MaxStmtVisits = 1;
  BudgetMeter M(L);
  M.tick();
  M.tick();
  ASSERT_TRUE(M.tripped(LimitKind::StmtVisits));
  // Nothing un-trips a budget.
  for (int I = 0; I < 100; ++I)
    M.tick();
  EXPECT_TRUE(M.tripped(LimitKind::StmtVisits));
}

TEST(LimitsTest, LocationCapTrips) {
  AnalysisLimits L;
  L.MaxLocations = 10;
  BudgetMeter M(L);
  M.noteLocations(10);
  EXPECT_FALSE(M.tripped());
  M.noteLocations(11);
  EXPECT_TRUE(M.tripped(LimitKind::Locations));
}

TEST(LimitsTest, IGNodeCapTrips) {
  AnalysisLimits L;
  L.MaxIGNodes = 5;
  BudgetMeter M(L);
  EXPECT_TRUE(M.noteIGNode(5));
  EXPECT_FALSE(M.noteIGNode(6));
  EXPECT_TRUE(M.tripped(LimitKind::IGNodes));
}

TEST(LimitsTest, RecPassQueryIsPureAgainstCap) {
  AnalysisLimits L;
  L.MaxRecPasses = 3;
  BudgetMeter M(L);
  EXPECT_FALSE(M.recPassesExceeded(2));
  EXPECT_TRUE(M.recPassesExceeded(3));
  EXPECT_TRUE(M.recPassesExceeded(4));
  // The query itself does not latch a trip: the cut is per fixed point
  // and the analyzer records it at the site.
  EXPECT_FALSE(M.tripped());
  AnalysisLimits Unlimited;
  BudgetMeter M2(Unlimited);
  EXPECT_FALSE(M2.recPassesExceeded(1000000));
}

TEST(LimitsTest, DeadlineTripsAfterTimeout) {
  AnalysisLimits L;
  L.TimeoutMs = 1;
  BudgetMeter M(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(M.checkDeadline());
  EXPECT_TRUE(M.tripped(LimitKind::Deadline));
}

TEST(LimitsTest, DeadlineCheckedEvery64Ticks) {
  AnalysisLimits L;
  L.TimeoutMs = 1;
  BudgetMeter M(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Fewer than 64 ticks: the amortized path has not read the clock yet.
  for (int I = 0; I < 32; ++I)
    M.tick();
  EXPECT_FALSE(M.tripped());
  for (int I = 0; I < 64; ++I)
    M.tick();
  EXPECT_TRUE(M.tripped(LimitKind::Deadline));
}

TEST(LimitsTest, HardDeadlineHasFloor) {
  AnalysisLimits L;
  L.TimeoutMs = 1;
  BudgetMeter M(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // 5ms is past the 1ms soft deadline but inside the +50ms hard floor.
  EXPECT_TRUE(M.checkDeadline());
  EXPECT_FALSE(M.hardDeadline());
}

TEST(LimitsTest, NoDeadlineMeansNoHardDeadline) {
  AnalysisLimits L;
  L.MaxStmtVisits = 1;
  BudgetMeter M(L);
  EXPECT_FALSE(M.hardDeadline());
  EXPECT_FALSE(M.checkDeadline());
}

TEST(LimitsTest, UnlimitedMeterNeverTrips) {
  AnalysisLimits L; // all zero
  BudgetMeter M(L);
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(M.tick());
  M.noteLocations(1u << 30);
  M.noteIGNode(1u << 30);
  EXPECT_FALSE(M.tripped());
}

} // namespace
