//===- IncrementalTest.cpp - incremental re-analysis equivalence ---------------===//
//
// The incremental engine's contract (incr/IncrementalEngine.h) is exact
// equivalence: re-analyzing an edited source against a baseline snapshot
// yields a serialized result byte-identical to a from-scratch run on the
// edited source. Falling back to a full re-analysis is allowed, but only
// with a recorded incr.fallback.* reason — never silently.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "incr/Fingerprint.h"
#include "incr/IncrementalEngine.h"
#include "serve/Serialize.h"
#include "support/Version.h"
#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::incr;
using namespace mcpta::serve;
using namespace mcpta::testutil;

namespace {

ResultSnapshot snapshotOf(const std::string &Source,
                          const pta::Analyzer::Options &Opts = {}) {
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  EXPECT_TRUE(P.Analysis.Analyzed);
  return ResultSnapshot::capture(*P.Prog, P.Analysis, optionsFingerprint(Opts));
}

std::string scratchBlob(const std::string &Source,
                        const pta::Analyzer::Options &Opts = {}) {
  return serialize(snapshotOf(Source, Opts));
}

ProgramMeta metaOf(const std::string &Source) {
  Pipeline P = Pipeline::frontend(Source);
  EXPECT_TRUE(P.Prog) << P.Diags.dump();
  return computeMeta(*P.Prog);
}

/// Runs one incremental step and checks the full contract: success, byte
/// equivalence with a from-scratch run, and no silent fallback.
void expectEquivalent(const ResultSnapshot &Baseline, const std::string &Edited,
                      const std::string &Label,
                      IncrOutput *OutParam = nullptr) {
  pta::Analyzer::Options Opts;
  support::Telemetry Telem(true);
  IncrOutput O = IncrementalEngine::reanalyze(Baseline, Edited, Opts, &Telem);
  ASSERT_TRUE(O.Ok) << Label << ": " << O.Error;
  EXPECT_EQ(O.Blob, scratchBlob(Edited, Opts))
      << Label << " (incremental=" << O.Stats.UsedIncremental
      << " fallback=" << O.Stats.FallbackReason << ")";
  if (O.Stats.UsedIncremental) {
    EXPECT_TRUE(O.Stats.FallbackReason.empty()) << Label;
  } else {
    // Fallback is allowed but must be recorded, both on the stats and
    // as a telemetry counter.
    ASSERT_FALSE(O.Stats.FallbackReason.empty()) << Label;
    EXPECT_GE(Telem.counter("incr.fallback." + O.Stats.FallbackReason).Value,
              1u)
        << Label;
  }
  if (OutParam)
    *OutParam = std::move(O);
}

//===----------------------------------------------------------------------===//
// The equivalence property: every corpus program x every mutation kind
//===----------------------------------------------------------------------===//

class IncrementalEquivalence : public ::testing::TestWithParam<const char *> {};

TEST_P(IncrementalEquivalence, EveryMutationKindMatchesScratchBytes) {
  const corpus::CorpusProgram *CP = corpus::find(GetParam());
  ASSERT_NE(CP, nullptr);
  std::string Seed = CP->Source;
  ResultSnapshot Baseline = snapshotOf(Seed);

  for (wlgen::MutationKind K : wlgen::AllMutationKinds) {
    std::string Edited = wlgen::mutateSource(Seed, K);
    ASSERT_NE(Edited, Seed) << wlgen::mutationKindName(K);
    expectEquivalent(Baseline, Edited,
                     std::string(CP->Name) + "/" + wlgen::mutationKindName(K));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCorpus, IncrementalEquivalence,
    ::testing::Values("genetic", "dry", "clinpack", "config", "toplev",
                      "compress", "mway", "hash", "misr", "xref", "stanford",
                      "fixoutput", "sim", "travel", "csuite", "msc", "lws",
                      "incrstress"),
    [](const ::testing::TestParamInfo<const char *> &I) {
      return std::string(I.param);
    });

TEST(IncrementalTest, IdenticalSourceReusesEverythingButMain) {
  // No edit at all: only main is dirty, every subtree under it grafts.
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  ASSERT_NE(CP, nullptr);
  ResultSnapshot Baseline = snapshotOf(CP->Source);
  pta::Analyzer::Options Opts;
  IncrOutput O = IncrementalEngine::reanalyze(Baseline, CP->Source, Opts);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_TRUE(O.Stats.UsedIncremental) << O.Stats.FallbackReason;
  EXPECT_EQ(O.Stats.DirtyFunctions, 1u); // main
  EXPECT_GT(O.Stats.SeedHits, 0u);
  EXPECT_GT(O.Stats.MemoReuse, 0u);
  EXPECT_EQ(O.Blob, serialize(Baseline));
}

TEST(IncrementalTest, RandomWalkChainsSnapshots) {
  // An N-edit walk where each step's baseline is the previous step's
  // (possibly incremental) output — drift would compound and show up as
  // a byte mismatch at the step that inherited a wrong snapshot.
  const corpus::CorpusProgram *CP = corpus::find("hash");
  ASSERT_NE(CP, nullptr);
  std::string Src = CP->Source;
  ResultSnapshot Baseline = snapshotOf(Src);
  unsigned Applied = 0;
  for (unsigned Step = 0; Step < 10; ++Step) {
    wlgen::MutationKind K =
        wlgen::AllMutationKinds[Step % std::size(wlgen::AllMutationKinds)];
    std::string Next = wlgen::mutateSource(Src, K, /*Salt=*/Step * 7 + 3);
    if (Next == Src)
      continue;
    ++Applied;
    IncrOutput O;
    expectEquivalent(Baseline, Next, "step " + std::to_string(Step) + "/" +
                                         wlgen::mutationKindName(K),
                     &O);
    if (HasFatalFailure())
      return;
    Src = std::move(Next);
    Baseline = std::move(O.Snapshot);
  }
  EXPECT_GE(Applied, 8u);
}

//===----------------------------------------------------------------------===//
// Dirty-set dependency edges
//===----------------------------------------------------------------------===//

TEST(DirtySetTest, DirectCallerClosure) {
  const char *Base = "int leaf(int x) { return x + 1; }\n"
                     "int mid(int x) { return leaf(x); }\n"
                     "int other(int x) { return x; }\n"
                     "int main(void) { return mid(1) + other(2); }\n";
  const char *Edit = "int leaf(int x) { return x + 2; }\n"
                     "int mid(int x) { return leaf(x); }\n"
                     "int other(int x) { return x; }\n"
                     "int main(void) { return mid(1) + other(2); }\n";
  std::set<std::string> D = computeDirtySet(snapshotOf(Base), metaOf(Edit));
  EXPECT_TRUE(D.count("leaf"));
  EXPECT_TRUE(D.count("mid")) << "transitive caller must be dirty";
  EXPECT_TRUE(D.count("main")) << "main is always dirty";
  EXPECT_FALSE(D.count("other")) << "unrelated function must stay clean";
}

TEST(DirtySetTest, GlobalVariableEdge) {
  const char *Base = "int g;\nint h;\n"
                     "int readsG(void) { return g; }\n"
                     "int readsH(void) { return h; }\n"
                     "int main(void) { g = 1; return readsG() + readsH(); }\n";
  // Changing h's initializing statement (attributed via main's body
  // would not count — globals diff keys on the lowered initializer), so
  // flip the declaration initializer instead.
  const char *Edit = "int g;\nint h = 5;\n"
                     "int readsG(void) { return g; }\n"
                     "int readsH(void) { return h; }\n"
                     "int main(void) { g = 1; return readsG() + readsH(); }\n";
  std::set<std::string> D = computeDirtySet(snapshotOf(Base), metaOf(Edit));
  EXPECT_TRUE(D.count("readsH")) << "referencer of the changed global";
  EXPECT_TRUE(D.count("main"));
}

TEST(DirtySetTest, FunctionPointerEdgeViaBaselineIG) {
  // dispatch calls handler only through a pointer, so there is no
  // CalleeNames edge — the closure must recover the dependency from the
  // baseline invocation graph's parent links.
  const char *Base = "int handler(int x) { return x + 1; }\n"
                     "int dispatch(int (*f)(int)) { return f(3); }\n"
                     "int main(void) { return dispatch(handler); }\n";
  const char *Edit = "int handler(int x) { return x + 2; }\n"
                     "int dispatch(int (*f)(int)) { return f(3); }\n"
                     "int main(void) { return dispatch(handler); }\n";
  std::set<std::string> D = computeDirtySet(snapshotOf(Base), metaOf(Edit));
  EXPECT_TRUE(D.count("handler"));
  EXPECT_TRUE(D.count("dispatch"))
      << "indirect caller must be dirtied via the baseline IG parent edge";
}

TEST(DirtySetTest, ExternChangeDirtiesIndirectCallers) {
  // No IG edge and no CalleeNames edge reaches an extern through a
  // pointer; a changed extern set must dirty every indirect-calling
  // function wholesale.
  const char *Base = "int ext(int x);\n"
                     "int viaPtr(int (*f)(int)) { return f(1); }\n"
                     "int plain(int x) { return x; }\n"
                     "int main(void) { return viaPtr(ext) + plain(2); }\n";
  const char *Edit = "int ext(int x);\nint ext2(int x);\n"
                     "int viaPtr(int (*f)(int)) { return f(1); }\n"
                     "int plain(int x) { return x; }\n"
                     "int main(void) { return viaPtr(ext) + plain(2); }\n";
  std::set<std::string> D = computeDirtySet(snapshotOf(Base), metaOf(Edit));
  EXPECT_TRUE(D.count("viaPtr"))
      << "indirect-calling function must be dirtied on any extern change";
  EXPECT_FALSE(D.count("plain"))
      << "pointer-free functions are unaffected by extern changes";
}

//===----------------------------------------------------------------------===//
// Old-format reader compatibility (v1 and v2 blobs)
//===----------------------------------------------------------------------===//

/// Hand-assembled minimal mcpta-result-v1 blob (empty analyzed result):
/// the layout deserialize() documents for version-1 input.
std::string minimalV1Blob() {
  std::string B;
  auto U32 = [&](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  auto U64 = [&](uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  B += "MCPT";
  U32(1);          // format version
  U32(0);          // options fingerprint (empty)
  U32(0);          // string table: no entries
  B.push_back(1);  // Analyzed
  U32(0);          // NumStmts
  U64(0);          // v1 run-history counters
  U64(0);
  U64(0);
  U32(0);          // locations
  B.push_back(0);  // HasMainOut
  U32(0);          // MainOut triples
  U32(0);          // StmtIn records
  U32(0);          // IG nodes
  U32(0);          // degradations
  U32(0);          // warnings
  U32(0);          // alias pairs
  U32(0);          // reads
  U32(0);          // writes
  return B;
}

/// Hand-assembled minimal mcpta-result-v2 blob (empty analyzed result):
/// v1 minus the run-history counters, plus the empty per-function
/// warning map and incremental meta sections, with flat (not run-
/// encoded) triple sections.
std::string minimalV2Blob() {
  std::string B;
  auto U32 = [&](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  auto U64 = [&](uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  B += "MCPT";
  U32(2);          // format version
  U32(0);          // options fingerprint (empty)
  U32(0);          // string table: no entries
  B.push_back(1);  // Analyzed
  U32(0);          // NumStmts
  U32(0);          // locations
  B.push_back(0);  // HasMainOut
  U32(0);          // MainOut triples (v2: flat triples)
  U32(0);          // StmtIn records
  U32(0);          // IG nodes
  U32(0);          // degradations
  U32(0);          // warnings
  U32(0);          // warnings-by-function entries
  U64(0);          // types fingerprint
  U64(0);          // global-init fingerprint
  U32(0);          // global-init string ids
  U32(0);          // function meta records
  U32(0);          // global meta records
  U32(0);          // alias pairs
  U32(0);          // reads
  U32(0);          // writes
  return B;
}

TEST(IncrementalTest, V1BlobStillDeserializes) {
  ResultSnapshot S;
  std::string Err;
  ASSERT_TRUE(deserialize(minimalV1Blob(), S, Err)) << Err;
  EXPECT_EQ(S.FormatVersion, 1u);
  EXPECT_TRUE(S.Analyzed);
  EXPECT_TRUE(S.Meta.Functions.empty()) << "v1 blobs carry no meta";
}

TEST(IncrementalTest, V2BlobStillDeserializes) {
  ResultSnapshot S;
  std::string Err;
  ASSERT_TRUE(deserialize(minimalV2Blob(), S, Err)) << Err;
  EXPECT_EQ(S.FormatVersion, 2u);
  EXPECT_TRUE(S.Analyzed);
  EXPECT_TRUE(S.WarningsByFn.empty());
}

TEST(IncrementalTest, V1BaselineFallsBackWithRecordedReason) {
  ResultSnapshot V1;
  std::string Err;
  ASSERT_TRUE(deserialize(minimalV1Blob(), V1, Err)) << Err;

  const char *Src = "int main(void) { return 0; }\n";
  pta::Analyzer::Options Opts;
  support::Telemetry Telem(true);
  IncrOutput O = IncrementalEngine::reanalyze(V1, Src, Opts, &Telem);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_FALSE(O.Stats.UsedIncremental);
  EXPECT_EQ(O.Stats.FallbackReason, "baseline-version");
  EXPECT_EQ(Telem.counter("incr.fallback.baseline-version").Value, 1u);
  // The fallback still produces a correct, current-format snapshot.
  EXPECT_EQ(O.Blob, scratchBlob(Src, Opts));
  EXPECT_EQ(O.Snapshot.FormatVersion, version::kResultFormatVersion);
}

TEST(IncrementalTest, V2BaselineFallsBackWithRecordedReason) {
  ResultSnapshot V2;
  std::string Err;
  ASSERT_TRUE(deserialize(minimalV2Blob(), V2, Err)) << Err;

  const char *Src = "int main(void) { return 0; }\n";
  pta::Analyzer::Options Opts;
  support::Telemetry Telem(true);
  IncrOutput O = IncrementalEngine::reanalyze(V2, Src, Opts, &Telem);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_FALSE(O.Stats.UsedIncremental);
  EXPECT_EQ(O.Stats.FallbackReason, "baseline-version");
  EXPECT_EQ(Telem.counter("incr.fallback.baseline-version").Value, 1u);
  EXPECT_EQ(O.Snapshot.FormatVersion, version::kResultFormatVersion);
}

//===----------------------------------------------------------------------===//
// Remaining fallback gates
//===----------------------------------------------------------------------===//

TEST(IncrementalTest, OptionFingerprintMismatchFallsBack) {
  const char *Src = "int main(void) { return 0; }\n";
  ResultSnapshot Baseline = snapshotOf(Src); // default options
  pta::Analyzer::Options Other;
  Other.SymbolicLevelLimit = 2;
  support::Telemetry Telem(true);
  IncrOutput O = IncrementalEngine::reanalyze(Baseline, Src, Other, &Telem);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_EQ(O.Stats.FallbackReason, "options-mismatch");
  EXPECT_EQ(O.Blob, scratchBlob(Src, Other));
}

TEST(IncrementalTest, FrontendErrorReportsFailure) {
  const char *Src = "int main(void) { return 0; }\n";
  ResultSnapshot Baseline = snapshotOf(Src);
  pta::Analyzer::Options Opts;
  support::Telemetry Telem(true);
  IncrOutput O =
      IncrementalEngine::reanalyze(Baseline, "int main( {", Opts, &Telem);
  EXPECT_FALSE(O.Ok);
  EXPECT_FALSE(O.Error.empty());
  EXPECT_EQ(O.Stats.FallbackReason, "frontend-error");
  EXPECT_EQ(Telem.counter("incr.fallback.frontend-error").Value, 1u);
}

TEST(IncrementalTest, TypeEditFallsBackAsTypesChanged) {
  const char *Base = "struct s { int a; };\n"
                     "int main(void) { struct s v; v.a = 1; return v.a; }\n";
  const char *Edit = "struct s { int a; int b; };\n"
                     "int main(void) { struct s v; v.a = 1; return v.a; }\n";
  ResultSnapshot Baseline = snapshotOf(Base);
  pta::Analyzer::Options Opts;
  support::Telemetry Telem(true);
  IncrOutput O = IncrementalEngine::reanalyze(Baseline, Edit, Opts, &Telem);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_EQ(O.Stats.FallbackReason, "types-changed");
  EXPECT_EQ(O.Blob, scratchBlob(Edit, Opts));
}

} // namespace
