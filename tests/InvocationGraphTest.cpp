//===- InvocationGraphTest.cpp - Figure 2 invocation graph tests ---------------===//

#include "TestUtil.h"

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::testutil;

namespace {

std::unique_ptr<InvocationGraph> buildIG(Pipeline &P) {
  return InvocationGraph::build(*P.Prog);
}

TEST(InvocationGraphTest, Figure2aDistinctChains) {
  // Figure 2(a): main calls g twice; g calls f. Each invocation chain
  // is a distinct path: two g nodes, each with its own f child.
  auto P = Pipeline::frontend(R"(
    void f(void) { }
    void g(void) { f(); }
    int main(void) { g(); g(); return 0; })");
  ASSERT_TRUE(P.Prog);
  auto IG = buildIG(P);
  ASSERT_TRUE(IG);
  EXPECT_EQ(IG->numNodes(), 5u) << IG->str(); // main, g, f, g, f
  EXPECT_EQ(IG->root()->children().size(), 2u);
  for (const IGNode *G : IG->root()->children()) {
    EXPECT_EQ(G->function()->name(), "g");
    ASSERT_EQ(G->children().size(), 1u);
    EXPECT_EQ(G->children()[0]->function()->name(), "f");
  }
}

TEST(InvocationGraphTest, Figure2bSimpleRecursion) {
  // Figure 2(b): main -> f -> f(approximate, back edge to recursive f).
  auto P = Pipeline::frontend(R"(
    void f(int n) { if (n) f(n - 1); }
    int main(void) { f(3); return 0; })");
  auto IG = buildIG(P);
  ASSERT_TRUE(IG);
  EXPECT_EQ(IG->numNodes(), 3u) << IG->str();
  const IGNode *F = IG->root()->children()[0];
  EXPECT_TRUE(F->isRecursive());
  ASSERT_EQ(F->children().size(), 1u);
  const IGNode *FA = F->children()[0];
  EXPECT_TRUE(FA->isApproximate());
  EXPECT_EQ(FA->recEdge(), F) << "back edge pairs approximate with "
                                 "its recursive ancestor";
}

TEST(InvocationGraphTest, Figure2cMutualAndSimpleRecursion) {
  // Figure 2(c)-style: f calls g and itself; g calls f.
  auto P = Pipeline::frontend(R"(
    void f(int n);
    void g(int n);
    void f(int n) { if (n) { f(n - 1); g(n - 1); } }
    void g(int n) { if (n) f(n - 1); }
    int main(void) { f(3); return 0; })");
  auto IG = buildIG(P);
  ASSERT_TRUE(IG);
  const IGNode *F = IG->root()->children()[0];
  EXPECT_TRUE(F->isRecursive());
  // f's children: approximate f (self-recursion) and g.
  ASSERT_EQ(F->children().size(), 2u);
  const IGNode *FA = F->children()[0];
  const IGNode *G = F->children()[1];
  EXPECT_TRUE(FA->isApproximate());
  EXPECT_EQ(FA->recEdge(), F);
  EXPECT_EQ(G->function()->name(), "g");
  // g's child: approximate f closing the mutual cycle.
  ASSERT_EQ(G->children().size(), 1u);
  EXPECT_TRUE(G->children()[0]->isApproximate());
  EXPECT_EQ(G->children()[0]->recEdge(), F);
}

TEST(InvocationGraphTest, NoMainMeansNoGraph) {
  auto P = Pipeline::frontend("void f(void) { }");
  EXPECT_EQ(buildIG(P), nullptr);
}

TEST(InvocationGraphTest, IndirectCallSitesLeftOpen) {
  auto P = Pipeline::frontend(R"(
    int f(void) { return 0; }
    int main(void) {
      int (*fp)(void);
      fp = f;
      return fp();
    })");
  auto IG = buildIG(P);
  ASSERT_TRUE(IG);
  // Before analysis the indirect site has no children.
  EXPECT_EQ(IG->numNodes(), 1u) << IG->str();
}

TEST(InvocationGraphTest, GetOrCreateChildIsIdempotent) {
  auto P = Pipeline::frontend(R"(
    void f(void) { }
    int main(void) { f(); return 0; })");
  auto IG = buildIG(P);
  ASSERT_TRUE(IG);
  IGNode *Root = IG->root();
  ASSERT_EQ(Root->children().size(), 1u);
  IGNode *F = Root->children()[0];
  EXPECT_EQ(IG->getOrCreateChild(Root, F->callSiteId(), F->function()), F);
  EXPECT_EQ(Root->children().size(), 1u);
}

TEST(InvocationGraphTest, DepthAndAncestors) {
  auto P = Pipeline::frontend(R"(
    void c(void) { }
    void b(void) { c(); }
    void a(void) { b(); }
    int main(void) { a(); return 0; })");
  auto IG = buildIG(P);
  const IGNode *A = IG->root()->children()[0];
  const IGNode *B = A->children()[0];
  const IGNode *C = B->children()[0];
  EXPECT_EQ(IG->root()->depth(), 0u);
  EXPECT_EQ(C->depth(), 3u);
  EXPECT_EQ(C->findAncestor(A->function()), A);
  EXPECT_EQ(C->findAncestor(IG->root()->function()), IG->root());
  EXPECT_EQ(A->findAncestor(C->function()), nullptr);
}

TEST(InvocationGraphTest, StrRendersShape) {
  auto P = Pipeline::frontend(R"(
    void f(int n) { if (n) f(n - 1); }
    int main(void) { f(1); return 0; })");
  auto IG = buildIG(P);
  std::string S = IG->str();
  EXPECT_NE(S.find("main"), std::string::npos);
  EXPECT_NE(S.find("f [R]"), std::string::npos) << S;
  EXPECT_NE(S.find("f [A]"), std::string::npos) << S;
}

} // namespace
