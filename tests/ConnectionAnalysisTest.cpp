//===- ConnectionAnalysisTest.cpp - heap connection matrix tests ---------------===//
//
// Tests the Sec. 8 future-work extension: connection matrices that
// approximate whether two heap-directed pointers can point into the
// same heap structure (the companion analysis referenced as [16]).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "heap/ConnectionAnalysis.h"

using namespace mcpta;
using namespace mcpta::heap;
using namespace mcpta::testutil;

namespace {

struct Conn {
  Pipeline P;
  ConnectionResult R;
};

Conn analyzeConn(const std::string &Src) {
  Conn C{analyze(Src), {}};
  C.R = runConnectionAnalysis(*C.P.Prog, C.P.Analysis);
  return C;
}

bool connectedInMain(Conn &C, const std::string &A, const std::string &B) {
  const cfront::FunctionDecl *Main = C.P.Unit->findFunction("main");
  const ConnectionMatrix *M = C.R.matrixOf(Main);
  if (!M)
    return false;
  const pta::Location *LA = findLoc(C.P, "main", A);
  const pta::Location *LB = findLoc(C.P, "main", B);
  if (!LA || !LB)
    return false;
  return M->connected(LA->root()->var(), LB->root()->var());
}

TEST(ConnectionAnalysisTest, FreshAllocationsAreDisjoint) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    struct N { struct N *next; int v; };
    int main(void) {
      struct N *a; struct N *b;
      a = (struct N *)malloc(16);
      b = (struct N *)malloc(16);
      a->v = 1;
      b->v = 2;
      return 0;
    })");
  EXPECT_FALSE(connectedInMain(C, "a", "b"))
      << "two fresh structures never linked";
}

TEST(ConnectionAnalysisTest, CopyConnects) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    int main(void) {
      int *a; int *b;
      a = (int *)malloc(4);
      b = a;
      return 0;
    })");
  EXPECT_TRUE(connectedInMain(C, "a", "b"));
}

TEST(ConnectionAnalysisTest, FieldStoreMergesStructures) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    struct N { struct N *next; };
    int main(void) {
      struct N *a; struct N *b; struct N *c;
      a = (struct N *)malloc(8);
      b = (struct N *)malloc(8);
      c = (struct N *)malloc(8);
      a->next = b;      /* a's and b's structures merge */
      return 0;
    })");
  EXPECT_TRUE(connectedInMain(C, "a", "b"));
  EXPECT_FALSE(connectedInMain(C, "a", "c"));
  EXPECT_FALSE(connectedInMain(C, "b", "c"));
}

TEST(ConnectionAnalysisTest, MergeIsTransitiveThroughGroups) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    struct N { struct N *next; };
    int main(void) {
      struct N *a; struct N *b; struct N *c;
      a = (struct N *)malloc(8);
      b = (struct N *)malloc(8);
      c = (struct N *)malloc(8);
      a->next = b;
      b->next = c;      /* now a, b, c are one structure */
      return 0;
    })");
  EXPECT_TRUE(connectedInMain(C, "a", "c"));
}

TEST(ConnectionAnalysisTest, ReallocationDetaches) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    int main(void) {
      int *a; int *b;
      a = (int *)malloc(4);
      b = a;            /* connected */
      a = (int *)malloc(4); /* a starts a fresh structure */
      return 0;
    })");
  EXPECT_FALSE(connectedInMain(C, "a", "b"));
}

TEST(ConnectionAnalysisTest, NullDetaches) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    int main(void) {
      int *a; int *b;
      a = (int *)malloc(4);
      b = a;
      b = NULL;
      return 0;
    })");
  EXPECT_FALSE(connectedInMain(C, "a", "b"));
}

TEST(ConnectionAnalysisTest, BranchesUnion) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    int main(void) {
      int *a; int *b; int *c; int cnd;
      a = (int *)malloc(4);
      c = (int *)malloc(4);
      if (cnd)
        b = a;
      else
        b = c;
      return 0;
    })");
  EXPECT_TRUE(connectedInMain(C, "a", "b"));
  EXPECT_TRUE(connectedInMain(C, "b", "c"));
  EXPECT_FALSE(connectedInMain(C, "a", "c"))
      << "a and c stay disjoint structures";
}

TEST(ConnectionAnalysisTest, ListWalkStaysInStructure) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    struct N { struct N *next; int v; };
    int main(void) {
      struct N *head; struct N *cur; struct N *n;
      int i;
      head = NULL;
      for (i = 0; i < 3; i++) {
        n = (struct N *)malloc(16);
        n->next = head;
        head = n;
      }
      cur = head;
      while (cur != NULL)
        cur = cur->next;
      return 0;
    })");
  EXPECT_TRUE(connectedInMain(C, "head", "cur"));
}

TEST(ConnectionAnalysisTest, DisjointListsStayDisjoint) {
  // The misr pattern the paper's parallelization work cares about: two
  // independently-built lists a transformation may process in parallel.
  auto C = analyzeConn(R"(
    void *malloc(int);
    struct N { struct N *next; };
    int main(void) {
      struct N *list1; struct N *list2; struct N *t;
      int i;
      list1 = NULL;
      for (i = 0; i < 4; i++) {
        t = (struct N *)malloc(8);
        t->next = list1;
        list1 = t;
      }
      list2 = NULL;
      for (i = 0; i < 4; i++) {
        t = (struct N *)malloc(8);
        t->next = list2;
        list2 = t;
      }
      return 0;
    })");
  EXPECT_FALSE(connectedInMain(C, "list1", "list2"))
      << "independently built lists are provably disjoint";
}

TEST(ConnectionAnalysisTest, CallsConservativelyConnectArguments) {
  auto C = analyzeConn(R"(
    void *malloc(int);
    struct N { struct N *next; };
    void link(struct N *x, struct N *y) { x->next = y; }
    int main(void) {
      struct N *a; struct N *b;
      a = (struct N *)malloc(8);
      b = (struct N *)malloc(8);
      link(a, b);
      return 0;
    })");
  EXPECT_TRUE(connectedInMain(C, "a", "b"))
      << "the callee may connect its heap arguments";
}

TEST(ConnectionAnalysisTest, StackOnlyPointersIgnored) {
  auto C = analyzeConn(R"(
    int main(void) {
      int x; int *p; int *q;
      p = &x;
      q = p;
      return 0;
    })");
  // Connection matrices only speak about heap-directed pointers.
  EXPECT_FALSE(connectedInMain(C, "p", "q"));
}

} // namespace
