//===- RequestQueueTest.cpp - bounded serve queue contracts --------------------===//
//
// The RequestQueue contracts (serve/RequestQueue.h):
//
//  - push() never blocks: Full at capacity, Closed after close().
//  - pop() blocks until an item arrives or the queue is closed AND
//    drained — items accepted before close() are never dropped.
//  - Exactly-once delivery under a concurrent producer/consumer mix.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

using mcpta::serve::RequestQueue;

namespace {

RequestQueue::Item item(const std::string &Line) {
  RequestQueue::Item I;
  I.Line = Line;
  I.EnqueuedAt = std::chrono::steady_clock::now();
  return I;
}

TEST(RequestQueueTest, PushRefusesAtCapacityWithoutBlocking) {
  RequestQueue Q(2);
  EXPECT_EQ(Q.push(item("a")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q.push(item("b")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q.push(item("c")), RequestQueue::PushResult::Full);
  EXPECT_EQ(Q.depth(), 2u);
  EXPECT_EQ(Q.capacity(), 2u);

  RequestQueue::Item It;
  ASSERT_TRUE(Q.pop(It));
  EXPECT_EQ(It.Line, "a");
  EXPECT_EQ(Q.push(item("c")), RequestQueue::PushResult::Ok)
      << "space freed by pop is usable again";
}

TEST(RequestQueueTest, CloseDrainsAcceptedItemsThenStopsConsumers) {
  RequestQueue Q(8);
  ASSERT_EQ(Q.push(item("a")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("b")), RequestQueue::PushResult::Ok);
  Q.close();
  EXPECT_TRUE(Q.closed());
  EXPECT_EQ(Q.push(item("c")), RequestQueue::PushResult::Closed);

  // Items accepted before close() still come out, in order; only then
  // does pop() report exhaustion.
  RequestQueue::Item It;
  ASSERT_TRUE(Q.pop(It));
  EXPECT_EQ(It.Line, "a");
  ASSERT_TRUE(Q.pop(It));
  EXPECT_EQ(It.Line, "b");
  EXPECT_FALSE(Q.pop(It));
}

TEST(RequestQueueTest, CloseWakesBlockedConsumer) {
  RequestQueue Q(4);
  std::atomic<bool> Returned{false};
  std::thread Consumer([&] {
    RequestQueue::Item It;
    EXPECT_FALSE(Q.pop(It));
    Returned.store(true);
  });
  // Give the consumer a moment to block, then close: it must wake and
  // return false rather than hang.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Consumer.join();
  EXPECT_TRUE(Returned.load());
}

TEST(RequestQueueTest, ConcurrentProducersConsumersDeliverExactlyOnce) {
  const int Producers = 4, Consumers = 4, PerProducer = 250;
  RequestQueue Q(16);
  std::mutex SeenMu;
  std::set<std::string> Seen;
  std::atomic<int> Accepted{0};

  std::vector<std::thread> Threads;
  for (int C = 0; C < Consumers; ++C)
    Threads.emplace_back([&] {
      RequestQueue::Item It;
      while (Q.pop(It)) {
        std::lock_guard<std::mutex> Lock(SeenMu);
        EXPECT_TRUE(Seen.insert(It.Line).second)
            << "duplicate delivery of " << It.Line;
      }
    });
  for (int P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I) {
        // The queue is small, so producers retry on Full — the serve
        // reader sheds instead, but here we want a known total through.
        std::string Line = std::to_string(P) + ":" + std::to_string(I);
        while (Q.push(item(Line)) != RequestQueue::PushResult::Ok)
          std::this_thread::yield();
        Accepted.fetch_add(1);
      }
    });
  for (int P = 0; P < Producers; ++P)
    Threads[Consumers + P].join();
  Q.close();
  for (int C = 0; C < Consumers; ++C)
    Threads[C].join();

  EXPECT_EQ(Accepted.load(), Producers * PerProducer);
  EXPECT_EQ(Seen.size(), static_cast<size_t>(Producers * PerProducer));
}

TEST(RequestQueueTest, ZeroCapacityClampsToOne) {
  RequestQueue Q(0);
  EXPECT_EQ(Q.capacity(), 1u);
  EXPECT_EQ(Q.push(item("a")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q.push(item("b")), RequestQueue::PushResult::Full);
}

} // namespace
