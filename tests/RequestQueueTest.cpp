//===- RequestQueueTest.cpp - bounded serve queue contracts --------------------===//
//
// The RequestQueue contracts (serve/RequestQueue.h):
//
//  - push() never blocks: Full at capacity, Closed after close().
//  - pop() blocks until an item arrives or the queue is closed AND
//    drained — items accepted before close() are never dropped.
//  - Exactly-once delivery under a concurrent producer/consumer mix.
//  - pushFair() per-cid fairness: on a full queue the newest item of
//    the strictly-heaviest tenant (smallest cid on ties) is evicted for
//    the newcomer; an incoming tenant that is itself heaviest sheds as
//    before (docs/SERVING.md, "Per-tenant fairness").
//
//===----------------------------------------------------------------------===//

#include "serve/RequestQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

using mcpta::serve::RequestQueue;

namespace {

RequestQueue::Item item(const std::string &Line) {
  RequestQueue::Item I;
  I.Line = Line;
  I.EnqueuedAt = std::chrono::steady_clock::now();
  return I;
}

TEST(RequestQueueTest, PushRefusesAtCapacityWithoutBlocking) {
  RequestQueue Q(2);
  EXPECT_EQ(Q.push(item("a")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q.push(item("b")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q.push(item("c")), RequestQueue::PushResult::Full);
  EXPECT_EQ(Q.depth(), 2u);
  EXPECT_EQ(Q.capacity(), 2u);

  RequestQueue::Item It;
  ASSERT_TRUE(Q.pop(It));
  EXPECT_EQ(It.Line, "a");
  EXPECT_EQ(Q.push(item("c")), RequestQueue::PushResult::Ok)
      << "space freed by pop is usable again";
}

TEST(RequestQueueTest, CloseDrainsAcceptedItemsThenStopsConsumers) {
  RequestQueue Q(8);
  ASSERT_EQ(Q.push(item("a")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("b")), RequestQueue::PushResult::Ok);
  Q.close();
  EXPECT_TRUE(Q.closed());
  EXPECT_EQ(Q.push(item("c")), RequestQueue::PushResult::Closed);

  // Items accepted before close() still come out, in order; only then
  // does pop() report exhaustion.
  RequestQueue::Item It;
  ASSERT_TRUE(Q.pop(It));
  EXPECT_EQ(It.Line, "a");
  ASSERT_TRUE(Q.pop(It));
  EXPECT_EQ(It.Line, "b");
  EXPECT_FALSE(Q.pop(It));
}

TEST(RequestQueueTest, CloseWakesBlockedConsumer) {
  RequestQueue Q(4);
  std::atomic<bool> Returned{false};
  std::thread Consumer([&] {
    RequestQueue::Item It;
    EXPECT_FALSE(Q.pop(It));
    Returned.store(true);
  });
  // Give the consumer a moment to block, then close: it must wake and
  // return false rather than hang.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Consumer.join();
  EXPECT_TRUE(Returned.load());
}

TEST(RequestQueueTest, ConcurrentProducersConsumersDeliverExactlyOnce) {
  const int Producers = 4, Consumers = 4, PerProducer = 250;
  RequestQueue Q(16);
  std::mutex SeenMu;
  std::set<std::string> Seen;
  std::atomic<int> Accepted{0};

  std::vector<std::thread> Threads;
  for (int C = 0; C < Consumers; ++C)
    Threads.emplace_back([&] {
      RequestQueue::Item It;
      while (Q.pop(It)) {
        std::lock_guard<std::mutex> Lock(SeenMu);
        EXPECT_TRUE(Seen.insert(It.Line).second)
            << "duplicate delivery of " << It.Line;
      }
    });
  for (int P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I) {
        // The queue is small, so producers retry on Full — the serve
        // reader sheds instead, but here we want a known total through.
        std::string Line = std::to_string(P) + ":" + std::to_string(I);
        while (Q.push(item(Line)) != RequestQueue::PushResult::Ok)
          std::this_thread::yield();
        Accepted.fetch_add(1);
      }
    });
  for (int P = 0; P < Producers; ++P)
    Threads[Consumers + P].join();
  Q.close();
  for (int C = 0; C < Consumers; ++C)
    Threads[C].join();

  EXPECT_EQ(Accepted.load(), Producers * PerProducer);
  EXPECT_EQ(Seen.size(), static_cast<size_t>(Producers * PerProducer));
}

TEST(RequestQueueTest, ZeroCapacityClampsToOne) {
  RequestQueue Q(0);
  EXPECT_EQ(Q.capacity(), 1u);
  EXPECT_EQ(Q.push(item("a")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q.push(item("b")), RequestQueue::PushResult::Full);
}

RequestQueue::Item item(const std::string &Line, const std::string &Cid) {
  RequestQueue::Item I = item(Line);
  I.Cid = Cid;
  return I;
}

TEST(RequestQueueTest, PushFairBehavesLikePushWithRoom) {
  RequestQueue Q(2);
  RequestQueue::Item Evicted;
  bool DidEvict = true;
  EXPECT_EQ(Q.pushFair(item("1", "a"), Evicted, DidEvict),
            RequestQueue::PushResult::Ok);
  EXPECT_FALSE(DidEvict);
  EXPECT_EQ(Q.pushFair(item("2", "b"), Evicted, DidEvict),
            RequestQueue::PushResult::Ok);
  EXPECT_FALSE(DidEvict);
  EXPECT_EQ(Q.depth(), 2u);
}

TEST(RequestQueueTest, PushFairEvictsHeaviestTenantsNewestItem) {
  RequestQueue Q(4);
  RequestQueue::Item Evicted;
  bool DidEvict = false;
  for (const char *L : {"a1", "a2", "a3"})
    ASSERT_EQ(Q.push(item(L, "a")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("b1", "b")), RequestQueue::PushResult::Ok);

  // Full; incoming tenant c holds 0 slots, a holds 3: a's newest goes.
  EXPECT_EQ(Q.pushFair(item("c1", "c"), Evicted, DidEvict),
            RequestQueue::PushResult::Ok);
  ASSERT_TRUE(DidEvict);
  EXPECT_EQ(Evicted.Line, "a3");
  EXPECT_EQ(Evicted.Cid, "a");
  EXPECT_EQ(Q.depth(), 4u);

  // FIFO order of the survivors is preserved; the newcomer is last.
  RequestQueue::Item It;
  std::vector<std::string> Drained;
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(Q.pop(It));
    Drained.push_back(It.Line);
  }
  EXPECT_EQ(Drained,
            (std::vector<std::string>{"a1", "a2", "b1", "c1"}));
}

TEST(RequestQueueTest, PushFairRefusesWhenIncomingTenantIsHeaviest) {
  RequestQueue Q(2);
  RequestQueue::Item Evicted;
  bool DidEvict = false;
  ASSERT_EQ(Q.push(item("a1", "a")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("a2", "a")), RequestQueue::PushResult::Ok);
  // a is the sole (heaviest) tenant; another a sheds the newcomer.
  EXPECT_EQ(Q.pushFair(item("a3", "a"), Evicted, DidEvict),
            RequestQueue::PushResult::Full);
  EXPECT_FALSE(DidEvict);
  EXPECT_EQ(Q.depth(), 2u);
}

TEST(RequestQueueTest, PushFairRefusesOnTiedOccupancy) {
  RequestQueue Q(2);
  RequestQueue::Item Evicted;
  bool DidEvict = false;
  ASSERT_EQ(Q.push(item("a1", "a")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("b1", "b")), RequestQueue::PushResult::Ok);
  // a and the incoming... a holds 1, b holds 1, incoming a holds 1:
  // nobody holds strictly more than the newcomer's tenant.
  EXPECT_EQ(Q.pushFair(item("a2", "a"), Evicted, DidEvict),
            RequestQueue::PushResult::Full);
  EXPECT_FALSE(DidEvict);
}

TEST(RequestQueueTest, PushFairTieAmongHeaviestEvictsSmallestCid) {
  RequestQueue Q(4);
  RequestQueue::Item Evicted;
  bool DidEvict = false;
  ASSERT_EQ(Q.push(item("b1", "b")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("a1", "a")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("b2", "b")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("a2", "a")), RequestQueue::PushResult::Ok);
  // a and b both hold 2; the tie breaks to the smallest cid ("a"), and
  // within it the newest item.
  EXPECT_EQ(Q.pushFair(item("c1", "c"), Evicted, DidEvict),
            RequestQueue::PushResult::Ok);
  ASSERT_TRUE(DidEvict);
  EXPECT_EQ(Evicted.Line, "a2");
}

TEST(RequestQueueTest, PushFairAnonymousRequestsShareOneBucket) {
  RequestQueue Q(3);
  RequestQueue::Item Evicted;
  bool DidEvict = false;
  ASSERT_EQ(Q.push(item("x1", "")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("x2", "")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q.push(item("a1", "a")), RequestQueue::PushResult::Ok);
  // The anonymous bucket ("") holds 2 > a's 1: its newest is evicted.
  EXPECT_EQ(Q.pushFair(item("a2", "a"), Evicted, DidEvict),
            RequestQueue::PushResult::Ok);
  ASSERT_TRUE(DidEvict);
  EXPECT_EQ(Evicted.Line, "x2");
  // And an incoming anonymous request is itself sheddable-by-refusal
  // when the anonymous bucket is heaviest.
  RequestQueue Q2(2);
  ASSERT_EQ(Q2.push(item("y1", "")), RequestQueue::PushResult::Ok);
  ASSERT_EQ(Q2.push(item("y2", "")), RequestQueue::PushResult::Ok);
  EXPECT_EQ(Q2.pushFair(item("y3", ""), Evicted, DidEvict),
            RequestQueue::PushResult::Full);
  EXPECT_FALSE(DidEvict);
}

TEST(RequestQueueTest, PushFairRespectsClose) {
  RequestQueue Q(2);
  Q.close();
  RequestQueue::Item Evicted;
  bool DidEvict = false;
  EXPECT_EQ(Q.pushFair(item("a1", "a"), Evicted, DidEvict),
            RequestQueue::PushResult::Closed);
  EXPECT_FALSE(DidEvict);
}

} // namespace
