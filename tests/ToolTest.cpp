//===- ToolTest.cpp - pta-tool CLI smoke tests ---------------------------------===//
//
// End-to-end checks of the command-line driver: real process, real
// files, real output.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

namespace {

struct ToolRun {
  int ExitCode = -1;
  std::string Output;
};

ToolRun runTool(const std::string &Args) {
  ToolRun R;
  std::string Cmd = std::string(PTA_TOOL_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return R;
  char Buf[4096];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WEXITSTATUS(Status);
  return R;
}

std::string writeTemp(const std::string &Contents) {
  std::string Path =
      ::testing::TempDir() + "/pta_tool_test_" +
      std::to_string(reinterpret_cast<uintptr_t>(&Contents)) + ".c";
  std::ofstream Out(Path);
  Out << Contents;
  return Path;
}

TEST(ToolTest, NoArgsShowsUsage) {
  ToolRun R = runTool("");
  EXPECT_EQ(R.ExitCode, 1); // exit 2 is reserved for --strict degradation
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

TEST(ToolTest, ListCorpus) {
  ToolRun R = runTool("--list-corpus");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("genetic"), std::string::npos);
  EXPECT_NE(R.Output.find("lws"), std::string::npos);
}

TEST(ToolTest, StatsOnCorpusProgram) {
  ToolRun R = runTool("--stats --corpus hash");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("indirect refs:"), std::string::npos);
  EXPECT_NE(R.Output.find("IG: nodes="), std::string::npos);
}

TEST(ToolTest, DumpSimpleOnFile) {
  std::string Path = writeTemp(
      "int main(void) { int x; int *p; p = &x; return *p; }");
  ToolRun R = runTool("--dump-simple --dump-pointsto " + Path);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("p = &x;"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("(p,x,D)"), std::string::npos) << R.Output;
  std::remove(Path.c_str());
}

TEST(ToolTest, DumpInvocationGraph) {
  std::string Path = writeTemp(R"(
    void f(int n) { if (n) f(n - 1); }
    int main(void) { f(2); return 0; })");
  ToolRun R = runTool("--dump-ig " + Path);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("f [R]"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("f [A]"), std::string::npos) << R.Output;
  std::remove(Path.c_str());
}

TEST(ToolTest, ParseErrorsExitNonzero) {
  std::string Path = writeTemp("int main(void) { return oops; }");
  ToolRun R = runTool(Path);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("error:"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ToolTest, MissingFileExitsNonzero) {
  ToolRun R = runTool("/nonexistent/file.c");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(ToolTest, UnknownCorpusName) {
  ToolRun R = runTool("--corpus doesnotexist");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(ToolTest, FnPtrModeFlags) {
  ToolRun Precise = runTool("--stats --fnptr=precise --corpus toplev");
  ToolRun All = runTool("--stats --fnptr=all --corpus toplev");
  EXPECT_EQ(Precise.ExitCode, 0);
  EXPECT_EQ(All.ExitCode, 0);
  // The all-functions instantiation yields a larger invocation graph.
  auto Nodes = [](const std::string &Out) {
    size_t Pos = Out.find("IG: nodes=");
    return Pos == std::string::npos
               ? -1
               : std::atoi(Out.c_str() + Pos + 10);
  };
  EXPECT_GT(Nodes(All.Output), Nodes(Precise.Output));
}

TEST(ToolTest, ContextInsensitiveFlag) {
  ToolRun R = runTool("--stats --context-insensitive --corpus dry");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(ToolTest, ProfileFlagPrintsPhaseTable) {
  ToolRun R = runTool("--profile --corpus hash");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("phase"), std::string::npos) << R.Output;
  for (const char *Phase : {"lex", "parse", "simplify", "pointsto", "total"})
    EXPECT_NE(R.Output.find(Phase), std::string::npos) << Phase;
}

TEST(ToolTest, StatsJsonExport) {
  std::string Path = ::testing::TempDir() + "/pta_tool_stats.json";
  ToolRun R = runTool("--json " + Path + " --corpus hash");
  EXPECT_EQ(R.ExitCode, 0);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string J((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"pta.memo_hits\""), std::string::npos);
  EXPECT_NE(J.find("\"mu.map_calls\""), std::string::npos);
  EXPECT_NE(J.find("\"phases_us\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ToolTest, TraceJsonExport) {
  std::string Path = ::testing::TempDir() + "/pta_tool_trace.json";
  ToolRun R = runTool("--trace-json " + Path + " --corpus hash");
  EXPECT_EQ(R.ExitCode, 0);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string J((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"pointsto\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ToolTest, AllObservabilityFlagsTogether) {
  // The acceptance-criteria invocation: profile table + stats JSON +
  // trace JSON from one run, against a real source file.
  std::string Src = writeTemp(R"(
    int g;
    void set(int **out, int *value) { *out = value; }
    int main(void) {
      int *p;
      set(&p, &g);
      return *p;
    })");
  std::string Stats = ::testing::TempDir() + "/pta_tool_all_stats.json";
  std::string Trace = ::testing::TempDir() + "/pta_tool_all_trace.json";
  ToolRun R = runTool("--profile --json " + Stats + " --trace-json " +
                      Trace + " " + Src);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("phase"), std::string::npos);
  EXPECT_TRUE(std::ifstream(Stats).good());
  EXPECT_TRUE(std::ifstream(Trace).good());
  std::remove(Src.c_str());
  std::remove(Stats.c_str());
  std::remove(Trace.c_str());
}

TEST(ToolTest, JsonFlagWithoutPathIsUsageError) {
  ToolRun R = runTool("--json");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Resource governance (docs/ROBUSTNESS.md)
//===----------------------------------------------------------------------===//

TEST(ToolTest, GenStressEmitsValidProgram) {
  ToolRun Gen = runTool("--gen-stress=3");
  EXPECT_EQ(Gen.ExitCode, 0);
  EXPECT_NE(Gen.Output.find("int main(void)"), std::string::npos);
  // The emitted program must analyze cleanly when ungoverned.
  std::string Path = writeTemp(Gen.Output);
  ToolRun R = runTool(Path);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::remove(Path.c_str());
}

TEST(ToolTest, TimeoutDegradesAndExitsZero) {
  // Pathological program under a tight deadline: terminates, reports
  // the degradation, still exits 0 without --strict.
  ToolRun Gen = runTool("--gen-stress=8");
  ASSERT_EQ(Gen.ExitCode, 0);
  std::string Path = writeTemp(Gen.Output);
  ToolRun R = runTool("--timeout-ms=50 " + Path);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("degraded: [deadline]"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("analysis degraded"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ToolTest, StrictModeExitsTwoOnDegradation) {
  ToolRun Gen = runTool("--gen-stress=8");
  ASSERT_EQ(Gen.ExitCode, 0);
  std::string Path = writeTemp(Gen.Output);
  ToolRun R = runTool("--strict --timeout-ms=50 " + Path);
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  std::remove(Path.c_str());
}

TEST(ToolTest, StrictModeExitsZeroWhenClean) {
  std::string Path = writeTemp(
      "int main(void) { int x; int *p; p = &x; return *p; }");
  ToolRun R = runTool("--strict --timeout-ms=10000 " + Path);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::remove(Path.c_str());
}

TEST(ToolTest, IGNodeCapDegrades) {
  ToolRun Gen = runTool("--gen-stress=6");
  ASSERT_EQ(Gen.ExitCode, 0);
  std::string Path = writeTemp(Gen.Output);
  ToolRun R = runTool("--max-ig-nodes=50 " + Path);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("degraded: [ig_nodes]"), std::string::npos)
      << R.Output;
  std::remove(Path.c_str());
}

TEST(ToolTest, BadLimitNumberIsError) {
  ToolRun R = runTool("--timeout-ms=abc --corpus hash");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("invalid number"), std::string::npos);
}

TEST(ToolTest, BatchIsolatesFailures) {
  std::string Dir = ::testing::TempDir() + "/pta_tool_batch";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream(Dir + "/good.c")
        << "int main(void) { int x; int *p; p = &x; return 0; }";
    std::ofstream(Dir + "/bad.c") << "int main(void { broken";
  }
  ToolRun R = runTool("--batch " + Dir);
  EXPECT_EQ(R.ExitCode, 1) << R.Output; // one file errored
  EXPECT_NE(R.Output.find("good.c: ok"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("bad.c: error"), std::string::npos) << R.Output;
  std::filesystem::remove_all(Dir);
}

TEST(ToolTest, BatchUsesSummaryCache) {
  std::string Dir = ::testing::TempDir() + "/pta_tool_batch_cache";
  std::string CacheDir = ::testing::TempDir() + "/pta_tool_batch_cache_dir";
  std::filesystem::create_directories(Dir);
  std::filesystem::remove_all(CacheDir);
  {
    std::ofstream(Dir + "/one.c")
        << "int main(void) { int x; int *p; p = &x; return 0; }";
    std::ofstream(Dir + "/two.c")
        << "int g; int main(void) { g = 1; return g; }";
  }
  // Cold run: everything analyzes, nothing hits.
  ToolRun R1 = runTool("--batch " + Dir + " --cache-dir=" + CacheDir);
  EXPECT_EQ(R1.ExitCode, 0) << R1.Output;
  EXPECT_NE(R1.Output.find("one.c: ok"), std::string::npos) << R1.Output;
  EXPECT_NE(R1.Output.find("batch: 2 file(s), 0 cache hit(s)"),
            std::string::npos)
      << R1.Output;

  // Second run over the same directory: both files served from cache.
  ToolRun R2 = runTool("--batch " + Dir + " --cache-dir=" + CacheDir);
  EXPECT_EQ(R2.ExitCode, 0) << R2.Output;
  EXPECT_NE(R2.Output.find("one.c: ok (cached)"), std::string::npos)
      << R2.Output;
  EXPECT_NE(R2.Output.find("batch: 2 file(s), 2 cache hit(s)"),
            std::string::npos)
      << R2.Output;

  // Without --cache-dir the batch never consults a cache.
  ToolRun R3 = runTool("--batch " + Dir);
  EXPECT_NE(R3.Output.find("batch: 2 file(s), 0 cache hit(s)"),
            std::string::npos)
      << R3.Output;
  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(CacheDir);
}

TEST(ToolTest, IncrementalBaselineChainsRuns) {
  std::string Src = writeTemp("void leaf(int *p) { *p = 1; }\n"
                              "void other(int *q) { *q = 2; }\n"
                              "int main(void) { int x; leaf(&x); "
                              "other(&x); return x; }");
  std::string Baseline = ::testing::TempDir() + "/pta_tool_incr.snapshot";
  std::remove(Baseline.c_str());

  ToolRun R1 = runTool("--incremental-baseline=" + Baseline + " " + Src);
  EXPECT_EQ(R1.ExitCode, 0) << R1.Output;
  EXPECT_NE(R1.Output.find("incremental: baseline created"),
            std::string::npos)
      << R1.Output;

  // Edit one constant: the next run re-analyzes only what changed.
  {
    std::ofstream Out(Src);
    Out << "void leaf(int *p) { *p = 3; }\n"
           "void other(int *q) { *q = 2; }\n"
           "int main(void) { int x; leaf(&x); other(&x); return x; }";
  }
  ToolRun R2 = runTool("--incremental-baseline=" + Baseline + " " + Src);
  EXPECT_EQ(R2.ExitCode, 0) << R2.Output;
  EXPECT_NE(R2.Output.find("incremental: dirty_functions=2"),
            std::string::npos)
      << R2.Output;
  EXPECT_NE(R2.Output.find("memo_reuse=1"), std::string::npos) << R2.Output;

  // The flag refuses to combine with serve mode.
  ToolRun R3 = runTool("--incremental-baseline=" + Baseline +
                       " --serve </dev/null");
  EXPECT_EQ(R3.ExitCode, 1);
  EXPECT_NE(R3.Output.find("does not apply"), std::string::npos) << R3.Output;
  std::remove(Src.c_str());
  std::remove(Baseline.c_str());
}

TEST(ToolTest, BatchIncrementalBaselinesChainRuns) {
  std::string Dir = ::testing::TempDir() + "/pta_tool_batch_incr";
  std::string BaseDir = ::testing::TempDir() + "/pta_tool_batch_incr_base";
  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(BaseDir);
  std::filesystem::create_directories(Dir);
  {
    std::ofstream(Dir + "/one.c")
        << "int main(void) { int x; int *p; p = &x; return 0; }";
    std::ofstream(Dir + "/two.c")
        << "int g; int main(void) { g = 1; return g; }";
  }

  // Cold run: every file creates its baseline.
  ToolRun R1 = runTool("--batch " + Dir + " --incremental-baseline=" +
                       BaseDir);
  EXPECT_EQ(R1.ExitCode, 0) << R1.Output;
  EXPECT_NE(R1.Output.find("one.c: incremental: baseline created"),
            std::string::npos)
      << R1.Output;
  EXPECT_NE(R1.Output.find("two.c: incremental: baseline created"),
            std::string::npos)
      << R1.Output;
  EXPECT_TRUE(
      std::filesystem::exists(BaseDir + "/one.snapshot") &&
      std::filesystem::exists(BaseDir + "/two.snapshot"))
      << R1.Output;

  // Warm run over unchanged sources: every file goes through the
  // incremental engine (not a fallback, not a baseline re-creation).
  ToolRun R2 = runTool("--batch " + Dir + " --incremental-baseline=" +
                       BaseDir);
  EXPECT_EQ(R2.ExitCode, 0) << R2.Output;
  EXPECT_NE(R2.Output.find("one.c: incremental: dirty_functions="),
            std::string::npos)
      << R2.Output;
  EXPECT_NE(R2.Output.find("two.c: incremental: dirty_functions="),
            std::string::npos)
      << R2.Output;
  EXPECT_EQ(R2.Output.find("full re-analysis"), std::string::npos)
      << R2.Output;
  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(BaseDir);
}

TEST(ToolTest, BatchIncrementalRejectsOptionsMismatchedBaseline) {
  // A baseline recorded under one options fingerprint must not seed a
  // run under another: the engine falls back to a full analysis and
  // says why.
  std::string Dir = ::testing::TempDir() + "/pta_tool_batch_incr_opts";
  std::string BaseDir =
      ::testing::TempDir() + "/pta_tool_batch_incr_opts_base";
  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(BaseDir);
  std::filesystem::create_directories(Dir);
  std::ofstream(Dir + "/one.c")
      << "int main(void) { int x; int *p; p = &x; return 0; }";

  ToolRun R1 = runTool("--batch " + Dir + " --incremental-baseline=" +
                       BaseDir);
  EXPECT_EQ(R1.ExitCode, 0) << R1.Output;

  ToolRun R2 = runTool("--batch " + Dir + " --incremental-baseline=" +
                       BaseDir + " --context-insensitive");
  EXPECT_EQ(R2.ExitCode, 0) << R2.Output;
  EXPECT_NE(
      R2.Output.find("one.c: incremental: full re-analysis (options-mismatch)"),
      std::string::npos)
      << R2.Output;

  // The fallback rewrote the baseline under the new fingerprint: the
  // repeat run no longer reports a mismatch (context-insensitive
  // results are never seeded, so the next gate reports that instead).
  ToolRun R3 = runTool("--batch " + Dir + " --incremental-baseline=" +
                       BaseDir + " --context-insensitive");
  EXPECT_EQ(R3.ExitCode, 0) << R3.Output;
  EXPECT_NE(R3.Output.find(
                "one.c: incremental: full re-analysis (options-unsupported)"),
            std::string::npos)
      << R3.Output;
  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(BaseDir);
}

TEST(ToolTest, BatchStrictReportsDegraded) {
  std::string Dir = ::testing::TempDir() + "/pta_tool_batch_strict";
  std::filesystem::create_directories(Dir);
  ToolRun Gen = runTool("--gen-stress=8");
  ASSERT_EQ(Gen.ExitCode, 0);
  {
    std::ofstream(Dir + "/stress.c") << Gen.Output;
    std::ofstream(Dir + "/tiny.c")
        << "int main(void) { int x; int *p; p = &x; return 0; }";
  }
  ToolRun R = runTool("--batch " + Dir + " --strict --timeout-ms=50");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("stress.c: degraded"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("tiny.c: ok"), std::string::npos) << R.Output;
  std::filesystem::remove_all(Dir);
}

} // namespace
