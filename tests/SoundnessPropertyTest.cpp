//===- SoundnessPropertyTest.cpp - Def. 3.3 safety oracle ----------------------===//
//
// Property P1 of DESIGN.md: runs real executions through the concrete
// SIMPLE interpreter and cross-checks every observable points-to fact
// against the analysis (Definition 3.3 of the paper):
//   (1) every concrete pointer fact must be covered by a D or P pair;
//   (2) every definite pair must agree with the concrete store.
// The sweep covers hand-written kernels, the whole corpus, and a seeded
// sweep of generated programs with varying feature mixes.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "interp/Interpreter.h"
#include "wlgen/WorkloadGen.h"

using namespace mcpta;
using namespace mcpta::interp;
using namespace mcpta::testutil;

namespace {

void expectSound(const std::string &Src, const std::string &Label) {
  Pipeline P = Pipeline::analyzeSource(Src);
  ASSERT_FALSE(P.Diags.hasErrors()) << Label << ": " << P.Diags.dump();
  ASSERT_TRUE(P.Analysis.Analyzed) << Label;
  InterpOptions Opts;
  Opts.MaxSteps = 2000000;
  RunResult R = runAndCheck(*P.Prog, P.Analysis, Opts);
  EXPECT_TRUE(R.Error.empty()) << Label << ": " << R.Error;
  for (const std::string &V : R.Violations)
    ADD_FAILURE() << Label << ": " << V;
  EXPECT_LE(R.Violations.size(), 0u) << Label;
}

TEST(SoundnessPropertyTest, BasicKernels) {
  expectSound(R"(
    int main(void) {
      int x; int y; int c; int *p; int **q;
      c = 1;
      p = &x;
      if (c) p = &y;
      q = &p;
      *q = &x;
      **q = 3;
      return x;
    })",
              "branches");
  expectSound(R"(
    int main(void) {
      int a[4]; int *p; int i;
      for (i = 0; i < 4; i++) {
        p = &a[i];
        *p = i;
      }
      return a[3];
    })",
              "arrays");
  expectSound(R"(
    void *malloc(int);
    struct N { struct N *next; int v; };
    int main(void) {
      struct N *h; struct N *t; int i;
      h = NULL;
      for (i = 0; i < 3; i++) {
        t = (struct N *)malloc(16);
        t->next = h;
        t->v = i;
        h = t;
      }
      while (h != NULL)
        h = h->next;
      return 0;
    })",
              "heap list");
}

TEST(SoundnessPropertyTest, InterproceduralKernels) {
  expectSound(R"(
    int g;
    void set(int **pp, int *v) { *pp = v; }
    int *pick(int c, int *a, int *b) {
      if (c) return a;
      return b;
    }
    int main(void) {
      int x; int y; int *p; int *q;
      set(&p, &x);
      q = pick(1, &x, &y);
      *q = 4;
      g = *p;
      return g;
    })",
              "calls");
  expectSound(R"(
    int g;
    void rec(int **pp, int n) {
      if (n <= 0) { *pp = &g; return; }
      rec(pp, n - 1);
    }
    int main(void) {
      int *p;
      rec(&p, 3);
      *p = 9;
      return g;
    })",
              "recursion");
  expectSound(R"(
    int t1(void) { return 1; }
    int t2(void) { return 2; }
    int (*tab[2])(void) = {t1, t2};
    int main(void) {
      int (*f)(void);
      int i; int s;
      s = 0;
      for (i = 0; i < 2; i++) {
        f = tab[i];
        s = s + f();
      }
      return s;
    })",
              "function pointers");
}

TEST(SoundnessPropertyTest, CorpusIsSound) {
  for (const auto &CP : corpus::corpus())
    expectSound(CP.Source, CP.Name);
}

/// Seeded generator sweep: one test instantiation per configuration.
struct SweepCase {
  const char *Name;
  wlgen::GenConfig Cfg;
};

class GeneratedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GeneratedSweep, Sound) {
  const SweepCase &C = GetParam();
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    wlgen::GenConfig Cfg = C.Cfg;
    Cfg.Seed = Seed;
    std::string Src = wlgen::generateProgram(Cfg);
    expectSound(Src, std::string(C.Name) + "/seed" + std::to_string(Seed));
  }
}

static SweepCase sweepCase(const char *Name, bool FnPtrs, bool Recursion,
                           bool Heap, bool Loops, unsigned Fns,
                           unsigned Stmts) {
  SweepCase C;
  C.Name = Name;
  C.Cfg.UseFunctionPointers = FnPtrs;
  C.Cfg.UseRecursion = Recursion;
  C.Cfg.UseHeap = Heap;
  C.Cfg.UseLoops = Loops;
  C.Cfg.NumFunctions = Fns;
  C.Cfg.StmtsPerFunction = Stmts;
  return C;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GeneratedSweep,
    ::testing::Values(
        sweepCase("plain", false, false, false, false, 4, 8),
        sweepCase("loops", false, false, false, true, 4, 10),
        sweepCase("heap", false, false, true, true, 5, 10),
        sweepCase("recursion", false, true, true, true, 5, 10),
        sweepCase("fnptrs", true, true, true, true, 6, 10),
        sweepCase("big", true, true, true, true, 8, 12)),
    [](const ::testing::TestParamInfo<SweepCase> &I) {
      return std::string(I.param.Name);
    });

} // namespace
