//===- MapUnmapTest.cpp - Sec. 4.1 map/unmap unit tests ------------------------===//
//
// Direct unit tests of the mapping machinery (symbolic name assignment,
// invisible-variable bookkeeping, unmapping), complementing the
// program-level InterproceduralTest.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pointsto/MapUnmap.h"

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::testutil;

namespace {

/// Finds the map info deposited at the (unique) IG node for CalleeName,
/// resolved to display names: symbolic name -> representative names.
std::map<std::string, std::vector<std::string>>
mapInfoOf(const Pipeline &P, const std::string &CalleeName, bool &Found) {
  std::map<std::string, std::vector<std::string>> Out;
  Found = false;
  const LocationTable &Locs = *P.Analysis.Locs;
  P.Analysis.IG->forEachNode([&](const IGNode *N) {
    if (!N->function() || N->function()->name() != CalleeName ||
        N->MapInfo.empty())
      return;
    Found = true;
    Out.clear();
    for (const MapInfoTable::Entry &E : N->MapInfo) {
      auto &Reps = Out[Locs.byId(E.Sym)->str()];
      for (LocationId R : E.Reps)
        Reps.push_back(Locs.byId(R)->str());
    }
  });
  return Out;
}

TEST(MapUnmapTest, SymbolicNameDepositedInMapInfo) {
  auto P = analyze(R"(
    int g;
    void f(int **pp) { *pp = &g; }
    int main(void) {
      int *p;
      f(&p);
      return 0;
    })");
  bool HasInfo = false;
  auto MI = mapInfoOf(P, "f", HasInfo);
  ASSERT_TRUE(HasInfo);
  // 1_pp represents main's p.
  auto It = MI.find("1_pp");
  ASSERT_NE(It, MI.end()) << "expected 1_pp in f's map info";
  ASSERT_EQ(It->second.size(), 1u);
  EXPECT_EQ(It->second[0], "p");
}

TEST(MapUnmapTest, PaperExampleSharedInvisible) {
  // Sec 4.1's example: both x and y definitely point to the same
  // invisible b — it must map to exactly one symbolic name, the other
  // anchor keeping an empty representative set.
  auto P = analyze(R"(
    int g;
    void callee(int **x, int **y) { g = **x + **y; }
    int main(void) {
      int b;
      int *pb;
      pb = &b;
      callee(&pb, &pb);
      return 0;
    })");
  bool HasInfo = false;
  auto MI = mapInfoOf(P, "callee", HasInfo);
  ASSERT_TRUE(HasInfo);
  // pb (invisible) appears under exactly one symbolic name.
  unsigned Count = 0;
  for (const auto &[Sym, Reps] : MI)
    for (const std::string &R : Reps)
      if (R == "pb")
        ++Count;
  EXPECT_EQ(Count, 1u) << "one invisible -> at most one symbolic name";
}

TEST(MapUnmapTest, MultipleInvisiblesShareSymbolicAsPossible) {
  // x possibly points to invisible a or b: both map to 1_x and all its
  // pairs are demoted to possible.
  auto P = analyze(R"(
    int g;
    void look(int **x) { g = **x; }
    int main(void) {
      int a; int b; int c;
      int *p;
      if (c) p = &a; else p = &b;
      look(&p);
      return *p;
    })");
  bool HasInfo = false;
  auto MI = mapInfoOf(P, "look", HasInfo);
  ASSERT_TRUE(HasInfo);
  if (auto It = MI.find("1_x"); It != MI.end()) {
    EXPECT_EQ(It->second.size(), 1u) << "p is the single invisible behind 1_x";
    EXPECT_EQ(It->second[0], "p");
  }
  // After the call, the caller pairs survive the round trip.
  EXPECT_TRUE(mainHasPair(P, "p", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "b", 'P')) << mainOut(P);
}

TEST(MapUnmapTest, UnmapIdentityThroughNoopCallee) {
  // P5: a callee that does nothing with its pointer argument leaves the
  // caller's relationships intact.
  auto P = analyze(R"(
    void noop(int **pp) { }
    int main(void) {
      int x; int *p;
      p = &x;
      noop(&p);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(MapUnmapTest, UnrepresentedLocationsSurviveCall) {
  auto P = analyze(R"(
    int g;
    void touch(int *q) { g = *q; }
    int main(void) {
      int x; int y;
      int *p; int *r;
      p = &x;
      r = &y;      /* r is not passed: unrepresented */
      touch(p);
      return *r;
    })");
  EXPECT_TRUE(mainHasPair(P, "r", "y", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(MapUnmapTest, GlobalsAlwaysMapped) {
  auto P = analyze(R"(
    int g1; int g2;
    int *gp;
    void rotate(void) {
      if (gp == &g1)
        gp = &g2;
      else
        gp = &g1;
    }
    int main(void) {
      gp = &g1;
      rotate();
      return *gp;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g1", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "gp", "g2", 'P')) << mainOut(P);
}

TEST(MapUnmapTest, HeapRelationsMapThrough) {
  auto P = analyze(R"(
    void *malloc(int);
    int g;
    void fill(int **cell) { *cell = &g; }
    int main(void) {
      int **p;
      p = (int **)malloc(8);
      fill(p);      /* cell aliases the heap */
      return 0;
    })");
  // The callee wrote &g through a heap cell.
  EXPECT_TRUE(mainHasPair(P, "heap", "g", 'P')) << mainOut(P);
}

TEST(MapUnmapTest, DeepChainRoundTrip) {
  auto P = analyze(R"(
    int g;
    void deep(int ****q) { ***q = &g; }
    int main(void) {
      int x;
      int *a; int **b; int ***c;
      a = &x; b = &a; c = &b;
      deep(&c);
      return *a;
    })");
  EXPECT_TRUE(mainHasPair(P, "a", "g", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "b", "a", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "a", "x")) << mainOut(P);
}

TEST(MapUnmapTest, StructuredInvisible) {
  // The invisible variable is a struct; its fields travel through the
  // symbolic name's paths.
  auto P = analyze(R"(
    struct Pair { int *fst; int *snd; };
    int g;
    void setFst(struct Pair *pp) { pp->fst = &g; }
    int main(void) {
      int y;
      struct Pair local;
      local.snd = &y;
      setFst(&local);
      return *local.fst + *local.snd;
    })");
  EXPECT_TRUE(mainHasPair(P, "local.fst", "g", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "local.snd", "y", 'D')) << mainOut(P);
}

TEST(MapUnmapTest, MapInfoIsContextSpecific) {
  // The same callee called twice with different invisibles: the node's
  // deposited map info reflects its own context.
  auto P = analyze(R"(
    int g;
    void write(int **pp) { *pp = &g; }
    int main(void) {
      int *p1; int *p2;
      write(&p1);
      write(&p2);
      return 0;
    })");
  // Two distinct IG nodes for write, each with its own map info.
  std::vector<std::string> Reps;
  const LocationTable &Locs = *P.Analysis.Locs;
  P.Analysis.IG->forEachNode([&](const IGNode *N) {
    if (!N->function() || N->function()->name() != "write")
      return;
    for (const MapInfoTable::Entry &E : N->MapInfo)
      for (LocationId R : E.Reps)
        Reps.push_back(Locs.byId(R)->str());
  });
  EXPECT_EQ(Reps.size(), 2u);
  EXPECT_NE(std::find(Reps.begin(), Reps.end(), "p1"), Reps.end());
  EXPECT_NE(std::find(Reps.begin(), Reps.end(), "p2"), Reps.end());
  EXPECT_TRUE(mainHasPair(P, "p1", "g", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p2", "g", 'D')) << mainOut(P);
}

} // namespace
