//===- StatsTest.cpp - Tables 3-6 statistics client tests ----------------------===//

#include "TestUtil.h"

#include "clients/GeneralStats.h"
#include "clients/IGStats.h"
#include "clients/IndirectRefStats.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::testutil;

namespace {

TEST(StatsTest, IndirectRefClassification) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y; int c;
      int *pd; int *pp;
      pd = &x;                      /* definite single */
      if (c) pp = &x; else pp = &y; /* two targets */
      return *pd + *pp;
    })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  EXPECT_EQ(A.Stats.IndirectRefs, 2u);
  EXPECT_EQ(A.Stats.OneD.total(), 1u);
  EXPECT_EQ(A.Stats.TwoP.total(), 1u);
  EXPECT_EQ(A.Stats.PairsToStack, 3u);
  EXPECT_EQ(A.Stats.PairsToHeap, 0u);
  EXPECT_NEAR(A.Stats.average(), 1.5, 1e-9);
  EXPECT_EQ(A.Stats.ScalarReplaceable, 1u);
}

TEST(StatsTest, PossiblySingleWithNull) {
  auto P = analyze(R"(
    int main(void) {
      int x; int c;
      int *p;
      if (c) p = &x;      /* else stays NULL */
      return *p;
    })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  // p -> {x(P), NULL}: the paper's "possibly one (the other NULL)".
  EXPECT_EQ(A.Stats.OneP.total(), 1u);
  EXPECT_EQ(A.Stats.OneD.total(), 0u);
}

TEST(StatsTest, ArrayStyleSplit) {
  auto P = analyze(R"(
    double m[4][4];
    double f(double (*x)[4], int i, int j) { return x[i][j]; }
    int main(void) {
      return (int)f(m, 1, 2);
    })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  EXPECT_GE(A.Stats.IndirectRefs, 1u);
  // The x[i][j] form counts in the array column.
  EXPECT_GE(A.Stats.OneD.Array + A.Stats.OneP.Array + A.Stats.TwoP.Array +
                A.Stats.ThreeP.Array + A.Stats.FourPlusP.Array,
            1u);
}

TEST(StatsTest, HeapTargetsCounted) {
  auto P = analyze(R"(
    void *malloc(int);
    int main(void) {
      int *p;
      p = (int *)malloc(4);
      return *p;
    })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  EXPECT_EQ(A.Stats.PairsToHeap, 1u);
  EXPECT_EQ(A.Stats.PairsToStack, 0u);
}

TEST(StatsTest, Table4FromCategories) {
  auto P = analyze(R"(
    int g; int *gp;
    int viaParam(int *fp_) { return *fp_; }   /* From formal */
    int main(void) {
      int x; int *lo;
      lo = &x;
      gp = &g;
      viaParam(lo);
      return *lo + *gp;   /* From local and from global */
    })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  EXPECT_GE(A.Categories.FromLocal, 1u);
  EXPECT_GE(A.Categories.FromGlobal, 1u);
  EXPECT_GE(A.Categories.FromFormal, 1u);
  EXPECT_GE(A.Categories.ToGlobal, 1u);
  EXPECT_GE(A.Categories.ToLocal, 1u);
}

TEST(StatsTest, Table4SymbolicTargets) {
  auto P = analyze(R"(
    int writeThrough(int **pp) { **pp = 1; return **pp; }
    int main(void) {
      int x; int *p;
      p = &x;
      return writeThrough(&p);
    })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  // Inside writeThrough, *pp reaches the symbolic 1_pp.
  EXPECT_GE(A.Categories.ToSymbolic, 1u);
}

TEST(StatsTest, GeneralStatsCountsAndMax) {
  auto P = analyze(R"(
    int main(void) {
      int x; int y;
      int *p; int *q;
      p = &x;
      q = &y;
      return *p + *q;
    })");
  auto G = GeneralStats::compute(*P.Prog, P.Analysis);
  EXPECT_GT(G.StackToStack, 0u);
  EXPECT_EQ(G.HeapToStack, 0u);
  EXPECT_GE(G.MaxPerStmt, 2u);
  EXPECT_GT(G.average(), 0.0);
  EXPECT_EQ(G.BasicStmts, P.Prog->numBasicStmts());
}

TEST(StatsTest, GeneralStatsExcludesNullPairs) {
  auto P = analyze("int main(void) { int *p; return 0; }");
  auto G = GeneralStats::compute(*P.Prog, P.Analysis);
  EXPECT_EQ(G.total(), 0u) << "only the automatic NULL init exists";
}

TEST(StatsTest, HeapToHeapPairs) {
  auto P = analyze(R"(
    void *malloc(int);
    struct N { struct N *next; };
    int main(void) {
      struct N *a; struct N *b;
      a = (struct N *)malloc(8);
      b = (struct N *)malloc(8);
      a->next = b;
      return 0;
    })");
  auto G = GeneralStats::compute(*P.Prog, P.Analysis);
  EXPECT_GT(G.HeapToHeap, 0u);
  EXPECT_GT(G.StackToHeap, 0u);
}

TEST(StatsTest, IGStatsComputed) {
  auto P = analyze(R"(
    void f(int n) { if (n) f(n - 1); }
    void g(void) { f(2); }
    int main(void) { g(); f(1); return 0; })");
  auto S = IGStats::compute(*P.Prog, P.Analysis);
  // main, g, f(R), f(A), f(R), f(A) = 6 nodes, 4 call sites, 3 fns.
  EXPECT_EQ(S.Nodes, 6u);
  EXPECT_EQ(S.CallSites, 4u);
  EXPECT_EQ(S.Functions, 3u);
  EXPECT_EQ(S.Recursive, 2u);
  EXPECT_EQ(S.Approximate, 2u);
  EXPECT_NEAR(S.avgPerCallSite(), 1.5, 1e-9);
  EXPECT_NEAR(S.avgPerFunction(), 2.0, 1e-9);
}

TEST(StatsTest, UnreachedStatementsNotCounted) {
  auto P = analyze(R"(
    int g; int *gp;
    void unused(void) { gp = &g; }
    int main(void) { return 0; })");
  auto A = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  EXPECT_EQ(A.Stats.IndirectRefs, 0u);
}

} // namespace
