//===- FaultInjectionTest.cpp - fault-injection registry contracts -------------===//
//
// The FaultInjection contracts (support/FaultInjection.h):
//
//  - The spec grammar parses what docs/ROBUSTNESS.md promises and
//    rejects everything else with a message — in particular a typo'd
//    point name, so a chaos test can never be silently disarmed.
//  - Every mode (always/once/times/every/prob) fires on exactly the
//    evaluations its definition names, and prob=P is deterministic
//    given the seed: reproducibility is the whole point.
//  - A disabled registry never fires and costs nothing to consult.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using mcpta::support::FaultInjection;

namespace {

TEST(FaultInjectionTest, DisabledRegistryNeverFires) {
  FaultInjection FI;
  EXPECT_FALSE(FI.enabled());
  EXPECT_FALSE(FI.armed("cache.read_io"));
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(FI.shouldFire("cache.read_io"));
  EXPECT_EQ(FI.totalFired(), 0u);
}

TEST(FaultInjectionTest, OnEnablesWithoutArming) {
  FaultInjection FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("on", Err)) << Err;
  EXPECT_TRUE(FI.enabled());
  EXPECT_FALSE(FI.armed("serve.stall"));
  EXPECT_FALSE(FI.shouldFire("serve.stall"));
}

TEST(FaultInjectionTest, GrammarRejectsBadSpecs) {
  FaultInjection FI;
  std::string Err;
  // Empty spec, unknown point, unknown mode, malformed params: each is
  // a hard error with a non-empty message.
  EXPECT_FALSE(FI.parse("", Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(FI.parse("cache.raed_io:always", Err)) << "typo'd point";
  EXPECT_NE(Err.find("cache.raed_io"), std::string::npos);
  EXPECT_FALSE(FI.parse("cache.read_io:sometimes", Err));
  EXPECT_FALSE(FI.parse("cache.read_io", Err)) << "missing mode";
  EXPECT_FALSE(FI.parse("cache.read_io:times=", Err));
  EXPECT_FALSE(FI.parse("cache.read_io:times=abc", Err));
  EXPECT_FALSE(FI.parse("cache.read_io:prob=1.5", Err));
  EXPECT_FALSE(FI.parse("cache.read_io:prob=-0.1", Err));
  EXPECT_FALSE(FI.parse("serve.stall:once:ms", Err)) << "param without =";
  // A failed parse leaves the registry disabled.
  EXPECT_FALSE(FI.enabled());
}

TEST(FaultInjectionTest, KnownPointsAreAClosedSet) {
  EXPECT_TRUE(FaultInjection::isKnownPoint("cache.read_io"));
  EXPECT_TRUE(FaultInjection::isKnownPoint("cache.write_io"));
  EXPECT_TRUE(FaultInjection::isKnownPoint("cache.corrupt"));
  EXPECT_TRUE(FaultInjection::isKnownPoint("serve.stall"));
  EXPECT_TRUE(FaultInjection::isKnownPoint("serve.queue_full"));
  EXPECT_TRUE(FaultInjection::isKnownPoint("alloc.pressure"));
  EXPECT_FALSE(FaultInjection::isKnownPoint("serve.everything"));
  EXPECT_FALSE(FaultInjection::isKnownPoint(""));
}

TEST(FaultInjectionTest, AlwaysOnceTimesEveryModes) {
  FaultInjection FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("cache.read_io:always,cache.write_io:once,"
                       "cache.corrupt:times=3,serve.stall:every=4",
                       Err))
      << Err;

  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(FI.shouldFire("cache.read_io"));

  EXPECT_TRUE(FI.shouldFire("cache.write_io"));
  for (int I = 0; I < 9; ++I)
    EXPECT_FALSE(FI.shouldFire("cache.write_io"));

  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(FI.shouldFire("cache.corrupt"));
  for (int I = 0; I < 7; ++I)
    EXPECT_FALSE(FI.shouldFire("cache.corrupt"));

  // every=4 fires on evaluations 0, 4, 8, ...
  std::vector<bool> Fires;
  for (int I = 0; I < 9; ++I)
    Fires.push_back(FI.shouldFire("serve.stall"));
  EXPECT_EQ(Fires, (std::vector<bool>{true, false, false, false, true, false,
                                      false, false, true}));

  EXPECT_EQ(FI.firedCount("cache.read_io"), 10u);
  EXPECT_EQ(FI.firedCount("cache.write_io"), 1u);
  EXPECT_EQ(FI.firedCount("cache.corrupt"), 3u);
  EXPECT_EQ(FI.firedCount("serve.stall"), 3u);
  EXPECT_EQ(FI.totalFired(), 17u);
}

TEST(FaultInjectionTest, ProbIsDeterministicUnderASeed) {
  // The same spec replayed from scratch fires on exactly the same
  // evaluation indices — the reproducibility contract chaos tests
  // depend on.
  auto Sequence = [](const char *Spec, int N) {
    FaultInjection FI;
    std::string Err;
    EXPECT_TRUE(FI.parse(Spec, Err)) << Err;
    std::vector<bool> Out;
    for (int I = 0; I < N; ++I)
      Out.push_back(FI.shouldFire("cache.read_io"));
    return Out;
  };
  std::vector<bool> A = Sequence("cache.read_io:prob=0.5:seed=7", 200);
  std::vector<bool> B = Sequence("cache.read_io:prob=0.5:seed=7", 200);
  EXPECT_EQ(A, B);
  // A different seed gives a different (but equally reproducible) draw.
  std::vector<bool> C = Sequence("cache.read_io:prob=0.5:seed=8", 200);
  EXPECT_NE(A, C);
  // p=0.5 over 200 draws: both outcomes must occur.
  EXPECT_NE(std::count(A.begin(), A.end(), true), 0);
  EXPECT_NE(std::count(A.begin(), A.end(), true), 200);
}

TEST(FaultInjectionTest, ProbExtremesNeverAndAlways) {
  FaultInjection FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("cache.read_io:prob=0,cache.write_io:prob=1", Err))
      << Err;
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(FI.shouldFire("cache.read_io"));
    EXPECT_TRUE(FI.shouldFire("cache.write_io"));
  }
}

TEST(FaultInjectionTest, ParamsReadBackWithDefaults) {
  FaultInjection FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("serve.stall:once:ms=350,alloc.pressure:always", Err))
      << Err;
  EXPECT_EQ(FI.param("serve.stall", "ms", 200), 350u);
  EXPECT_EQ(FI.param("serve.stall", "absent", 42), 42u);
  EXPECT_EQ(FI.param("alloc.pressure", "max", 8), 8u) << "default applies";
  EXPECT_EQ(FI.param("cache.read_io", "ms", 5), 5u) << "unarmed point";
}

TEST(FaultInjectionTest, ReparseReplacesArms) {
  FaultInjection FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("cache.read_io:always", Err)) << Err;
  EXPECT_TRUE(FI.shouldFire("cache.read_io"));
  ASSERT_TRUE(FI.parse("cache.write_io:always", Err)) << Err;
  EXPECT_FALSE(FI.armed("cache.read_io"));
  EXPECT_FALSE(FI.shouldFire("cache.read_io"));
  EXPECT_TRUE(FI.shouldFire("cache.write_io"));
}

TEST(FaultInjectionTest, ThreadSafeEvaluationCountsExactly) {
  // times=N under concurrent evaluation: exactly N fires total, no
  // lost or double-counted evaluations.
  FaultInjection FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("cache.read_io:times=100", Err)) << Err;
  std::vector<std::thread> Threads;
  std::atomic<int> Fired{0};
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 100; ++I)
        if (FI.shouldFire("cache.read_io"))
          Fired.fetch_add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Fired.load(), 100);
  EXPECT_EQ(FI.firedCount("cache.read_io"), 100u);
}

} // namespace
