//===- SerializeTest.cpp - mcpta-result-v3 round-trip properties ---------------===//
//
// The serialized result format's two contracts (serve/Serialize.h):
//
//  1. Determinism: serialize → deserialize → serialize is byte-identical,
//     and the deserialized snapshot compares equal to the captured one —
//     points-to sets, IG node kinds, degradations, and client outputs —
//     for every corpus program.
//  2. Corruption tolerance: truncated, bit-flipped, or wrong-header
//     input makes deserialize() return false with a message; it never
//     crashes, reads out of bounds, or silently accepts garbage.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "serve/Serialize.h"
#include "support/Version.h"

#include <algorithm>

using namespace mcpta;
using namespace mcpta::serve;

namespace {

ResultSnapshot captureSource(const std::string &Source,
                             const pta::Analyzer::Options &Opts = {}) {
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  return ResultSnapshot::capture(*P.Prog, P.Analysis, optionsFingerprint(Opts));
}

TEST(SerializeTest, RoundTripEveryCorpusProgram) {
  for (const corpus::CorpusProgram &CP : corpus::corpus()) {
    pta::Analyzer::Options Opts;
    Pipeline P = Pipeline::analyzeSource(CP.Source, Opts);
    ASSERT_FALSE(P.Diags.hasErrors()) << CP.Name << ":\n" << P.Diags.dump();
    ASSERT_TRUE(P.Analysis.Analyzed) << CP.Name;

    ResultSnapshot S =
        ResultSnapshot::capture(*P.Prog, P.Analysis, optionsFingerprint(Opts));
    std::string Blob = serialize(S);
    ASSERT_FALSE(Blob.empty()) << CP.Name;

    ResultSnapshot Back;
    std::string Err;
    ASSERT_TRUE(deserialize(Blob, Back, Err)) << CP.Name << ": " << Err;

    // Full structural equality: locations, MainOut/StmtIn triples, IG
    // shape with node kinds and memoized sets, degradations, warnings,
    // alias pairs, read/write sets.
    EXPECT_TRUE(S == Back) << CP.Name;

    // Byte-identical re-serialization (the cache dedupes on this).
    EXPECT_EQ(Blob, serialize(Back)) << CP.Name;
  }
}

TEST(SerializeTest, RoundTripPreservesDegradations) {
  // A tight IG-node budget forces the governance layer to degrade; the
  // degradation records must survive the trip.
  pta::Analyzer::Options Opts;
  Opts.Limits.MaxIGNodes = 2;
  const corpus::CorpusProgram *CP = corpus::find("hash");
  ASSERT_NE(CP, nullptr);
  Pipeline P = Pipeline::analyzeSource(CP->Source, Opts);
  ASSERT_FALSE(P.Diags.hasErrors());
  ASSERT_FALSE(P.Analysis.Degradations.empty());

  ResultSnapshot S =
      ResultSnapshot::capture(*P.Prog, P.Analysis, optionsFingerprint(Opts));
  EXPECT_TRUE(S.degraded());

  ResultSnapshot Back;
  std::string Err;
  ASSERT_TRUE(deserialize(serialize(S), Back, Err)) << Err;
  EXPECT_EQ(S.Degradations.size(), Back.Degradations.size());
  EXPECT_TRUE(S == Back);
}

TEST(SerializeTest, RoundTripWithoutStmtSets) {
  pta::Analyzer::Options Opts;
  Opts.RecordStmtSets = false;
  ResultSnapshot S = captureSource(
      "int main(void) { int x; int *p; p = &x; return *p; }", Opts);
  EXPECT_TRUE(S.StmtIn.empty());

  ResultSnapshot Back;
  std::string Err;
  std::string Blob = serialize(S);
  ASSERT_TRUE(deserialize(Blob, Back, Err)) << Err;
  EXPECT_TRUE(S == Back);
  EXPECT_EQ(Blob, serialize(Back));
}

TEST(SerializeTest, SnapshotAnswersQueries) {
  ResultSnapshot S = captureSource("int main(void) {\n"
                                   "  int x; int *p; int *q;\n"
                                   "  p = &x; q = p;\n"
                                   "  return *q;\n"
                                   "}");
  EXPECT_GE(S.locationIdByName("p"), 0);
  EXPECT_EQ(S.locationIdByName("no_such_var"), -1);

  auto Targets = S.pointsToTargets("p");
  ASSERT_EQ(Targets.size(), 1u);
  EXPECT_EQ(Targets[0].first, "x");
  EXPECT_TRUE(Targets[0].second); // definite

  // p and q both point to x: (*p, *q) alias, and each aliases x.
  EXPECT_TRUE(S.aliased("*p", "*q"));
  EXPECT_TRUE(S.aliased("*q", "*p")); // order-insensitive
  EXPECT_TRUE(S.aliased("*p", "x"));
  EXPECT_FALSE(S.aliased("p", "q"));

  // Read/write sets: main reads x through q, writes x's address into p.
  ASSERT_EQ(S.Writes.count("main"), 1u);
  const std::vector<std::string> &W = S.Writes.at("main");
  EXPECT_NE(std::find(W.begin(), W.end(), "p"), W.end());
}

TEST(SerializeTest, TruncationAlwaysFailsCleanly) {
  ResultSnapshot S = captureSource(
      "int g; int main(void) { int *p; p = &g; return *p; }");
  std::string Blob = serialize(S);
  ASSERT_GT(Blob.size(), 16u);

  // Every proper prefix must be rejected — no crash, no acceptance.
  for (size_t Len = 0; Len < Blob.size(); ++Len) {
    ResultSnapshot Out;
    std::string Err;
    EXPECT_FALSE(deserialize(std::string_view(Blob.data(), Len), Out, Err))
        << "accepted a " << Len << "-byte prefix of a " << Blob.size()
        << "-byte blob";
    EXPECT_FALSE(Err.empty());
  }
}

TEST(SerializeTest, BadMagicAndWrongVersionRejected) {
  ResultSnapshot S = captureSource("int main(void) { return 0; }");
  std::string Blob = serialize(S);

  std::string BadMagic = Blob;
  BadMagic[0] = 'X';
  ResultSnapshot Out;
  std::string Err;
  EXPECT_FALSE(deserialize(BadMagic, Out, Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;

  // The format version lives right after the 4-byte magic
  // (little-endian u32); a future version must be rejected, not
  // misparsed.
  std::string BadVersion = Blob;
  BadVersion[4] = static_cast<char>(version::kResultFormatVersion + 1);
  Err.clear();
  EXPECT_FALSE(deserialize(BadVersion, Out, Err));
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
}

TEST(SerializeTest, BitFlipsNeverCrash) {
  ResultSnapshot S = captureSource("struct N { struct N *next; int v; };\n"
                                   "int main(void) {\n"
                                   "  struct N a; struct N *p;\n"
                                   "  a.next = &a; p = a.next;\n"
                                   "  return p->v;\n"
                                   "}");
  std::string Blob = serialize(S);

  // Flip one bit at a time across the whole blob. A flip inside string
  // payload may legally still parse; a flip in structure must fail.
  // Either way: terminate, never crash.
  for (size_t I = 0; I < Blob.size(); ++I) {
    for (int Bit = 0; Bit < 8; Bit += 3) {
      std::string Mutated = Blob;
      Mutated[I] = static_cast<char>(Mutated[I] ^ (1 << Bit));
      ResultSnapshot Out;
      std::string Err;
      (void)deserialize(Mutated, Out, Err);
    }
  }
  SUCCEED();
}

TEST(SerializeTest, TrailingGarbageRejected) {
  ResultSnapshot S = captureSource("int main(void) { return 0; }");
  std::string Blob = serialize(S) + "extra";
  ResultSnapshot Out;
  std::string Err;
  EXPECT_FALSE(deserialize(Blob, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(SerializeTest, OptionsFingerprintCoversEveryKnob) {
  pta::Analyzer::Options Base;
  const std::string FP = optionsFingerprint(Base);

  auto Differs = [&FP](const pta::Analyzer::Options &O) {
    return optionsFingerprint(O) != FP;
  };

  pta::Analyzer::Options O = Base;
  O.FnPtr = pta::FnPtrMode::AllFunctions;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.ContextSensitive = false;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.RecordStmtSets = false;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.SymbolicLevelLimit = 2;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.MaxLoopIterations = 7;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.Limits.TimeoutMs = 100;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.Limits.MaxStmtVisits = 1000;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.Limits.MaxLocations = 500;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.Limits.MaxIGNodes = 50;
  EXPECT_TRUE(Differs(O));
  O = Base;
  O.Limits.MaxRecPasses = 3;
  EXPECT_TRUE(Differs(O));

  // Equal options fingerprint equally.
  EXPECT_EQ(optionsFingerprint(Base), optionsFingerprint(pta::Analyzer::Options{}));
}

TEST(SerializeTest, EqualResultsSerializeIdentically) {
  // Two independent runs of the same (source, options) must produce the
  // same bytes — the determinism the content-addressed cache relies on.
  const corpus::CorpusProgram *CP = corpus::find("misr");
  ASSERT_NE(CP, nullptr);
  std::string A = serialize(captureSource(CP->Source));
  std::string B = serialize(captureSource(CP->Source));
  EXPECT_EQ(A, B);
}

} // namespace
