//===- InterproceduralTest.cpp - map/unmap & call tests ------------------------===//
//
// Sec. 4 of the paper: context-sensitive interprocedural analysis with
// formal/actual association, globals, invisible variables and symbolic
// names, return values, and memoization.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

TEST(InterproceduralTest, OutputParameterWrites) {
  auto P = analyze(R"(
    int g;
    void set(int **out) { *out = &g; }
    int main(void) {
      int *p;
      set(&p);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, FormalsInheritActualPairs) {
  auto P = analyze(R"(
    int g; int *gp;
    void f(int *q) { gp = q; }
    int main(void) {
      f(&g);
      return *gp;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, CalleeCannotChangeCallerLocalDirectly) {
  auto P = analyze(R"(
    int g;
    void f(int *q) { q = &g; /* modifies only the copy */ }
    int main(void) {
      int x; int *p;
      p = &x;
      f(p);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "g")) << mainOut(P);
}

TEST(InterproceduralTest, InvisibleVariableRoundTrip) {
  // The callee writes through a pointer to a caller local (an invisible
  // variable renamed to 1_pp inside the callee).
  auto P = analyze(R"(
    int a; int b;
    void flip(int **pp, int c) {
      if (c)
        *pp = &a;
      else
        *pp = &b;
    }
    int main(void) {
      int *p;
      flip(&p, 1);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "b", 'P')) << mainOut(P);
}

TEST(InterproceduralTest, TwoLevelsOfInvisibles) {
  auto P = analyze(R"(
    int g;
    void deep(int ***ppp) { **ppp = &g; }
    int main(void) {
      int x;
      int *p; int **pp;
      p = &x; pp = &p;
      deep(&pp);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "g", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "x")) << mainOut(P);
}

TEST(InterproceduralTest, ContextSensitivityKeepsCallSitesApart) {
  // The classic: the same function called with different arguments must
  // not mix the call sites' information.
  auto P = analyze(R"(
    void assign(int **dst, int *src) { *dst = src; }
    int main(void) {
      int a; int b;
      int *p; int *q;
      assign(&p, &a);
      assign(&q, &b);
      return *p + *q;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "a", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "q", "b", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "p", "b")) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "q", "a")) << mainOut(P);
}

TEST(InterproceduralTest, GlobalsFlowThroughCalls) {
  auto P = analyze(R"(
    int g;
    int *gp;
    void setup(void) { gp = &g; }
    void clear(void) { gp = NULL; }
    int main(void) {
      setup();
      clear();
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "NULL", 'D')) << mainOut(P);
  EXPECT_FALSE(mainHasPair(P, "gp", "g")) << mainOut(P);
}

TEST(InterproceduralTest, GlobalPointingToCallerLocal) {
  auto P = analyze(R"(
    int *gp;
    void reader(int **out) { *out = gp; }
    int main(void) {
      int x; int *p;
      gp = &x;      /* global points at main's local */
      reader(&p);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, ReturnValuePointers) {
  auto P = analyze(R"(
    int g;
    int *pick(void) { return &g; }
    int main(void) {
      int *p;
      p = pick();
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, ReturnValueMergesPaths) {
  auto P = analyze(R"(
    int a; int b;
    int *pick(int c) {
      if (c)
        return &a;
      return &b;
    }
    int main(void) {
      int *p;
      p = pick(1);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "a", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "b", 'P')) << mainOut(P);
}

TEST(InterproceduralTest, ReturnOfParameter) {
  auto P = analyze(R"(
    int *identity(int *p) { return p; }
    int main(void) {
      int x; int *q;
      q = identity(&x);
      return *q;
    })");
  EXPECT_TRUE(mainHasPair(P, "q", "x", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, StructByValueParameter) {
  auto P = analyze(R"(
    struct S { int *p; };
    int g; int *gp;
    void use(struct S s) { gp = s.p; }
    int main(void) {
      struct S s;
      s.p = &g;
      use(s);
      return *gp;
    })");
  EXPECT_TRUE(mainHasPair(P, "gp", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, StructReturnValue) {
  auto P = analyze(R"(
    struct S { int *p; };
    int g;
    struct S make(void) {
      struct S s;
      s.p = &g;
      return s;
    }
    int main(void) {
      struct S t;
      t = make();
      return *t.p;
    })");
  EXPECT_TRUE(mainHasPair(P, "t.p", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, NestedCallsThreeDeep) {
  auto P = analyze(R"(
    int g;
    void inner(int **pp) { *pp = &g; }
    void middle(int **pp) { inner(pp); }
    void outer(int **pp) { middle(pp); }
    int main(void) {
      int *p;
      outer(&p);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, MemoizationReusesStoredOutput) {
  auto P = analyze(R"(
    int g;
    void set(int **pp) { *pp = &g; }
    int main(void) {
      int *a; int *b; int *c;
      set(&a);
      set(&b);
      set(&c);
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "a", "g", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "b", "g", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "c", "g", 'D')) << mainOut(P);
  // The body should not be reanalyzed once per identical input; with
  // identical mapped inputs the memo hit count keeps analyses low.
  EXPECT_LE(P.Analysis.BodyAnalyses, 5u);
}

TEST(InterproceduralTest, SharedInvisibleGetsSingleSymbolicName) {
  // Sec 4.1: if both x and y definitely point to invisible b, one
  // symbolic name must represent b (Property 3.1) — observable as the
  // callee seeing *x and *y as aliases.
  auto P = analyze(R"(
    int g;
    void through(int **x, int **y) {
      *x = &g;   /* writes b through x */
      g = **y;   /* reads the same b through y */
    }
    int main(void) {
      int *b;
      through(&b, &b);
      return *b;
    })");
  EXPECT_TRUE(mainHasPair(P, "b", "g", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, ExternCallLeavesPointersAlone) {
  auto P = analyze(R"(
    int printf(char *fmt, ...);
    int main(void) {
      int x; int *p;
      p = &x;
      printf("%d", *p);
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(InterproceduralTest, UnknownExternReturningPointerGetsHeap) {
  auto P = analyze(R"(
    char *getenv(char *name);
    int main(void) {
      char *e;
      e = getenv("HOME");
      return e != NULL;
    })");
  EXPECT_TRUE(mainHasPair(P, "e", "heap", 'P')) << mainOut(P);
  EXPECT_FALSE(P.Analysis.Warnings.empty());
}

TEST(InterproceduralTest, StrcpyReturnsItsDestination) {
  auto P = analyze(R"(
    char *strcpy(char *dst, char *src);
    int main(void) {
      char buf[16];
      char *r;
      r = strcpy(buf, "hi");
      return *r;
    })");
  EXPECT_TRUE(mainHasPair(P, "r", "buf[0]", 'P') ||
              mainHasPair(P, "r", "buf[1..]", 'P'))
      << mainOut(P);
}

TEST(InterproceduralTest, VarargsExtraArgumentsSurvive) {
  auto P = analyze(R"(
    int f(int n, ...);
    int f(int n, ...) { return n; }
    int main(void) {
      int x; int *p;
      p = &x;
      f(1, p);
      return *p;
    })");
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

} // namespace
