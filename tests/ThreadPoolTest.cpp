//===- ThreadPoolTest.cpp - work-stealing pool unit tests ----------------------===//
//
// The pool under the parallel fixed-point engine (docs/PARALLEL.md):
// inline degradation at width <= 1, completion of nested submissions,
// exception capture and single rethrow from wait(), and reuse of the
// pool across wait() barriers.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace mcpta::support;

namespace {

TEST(ThreadPoolTest, InlinePoolRunsTasksImmediately) {
  ThreadPool Pool(1);
  EXPECT_FALSE(Pool.parallel());
  EXPECT_EQ(Pool.width(), 1u);
  int Ran = 0;
  Pool.submit([&] { ++Ran; });
  // Inline pools execute inside submit(), before wait() is ever called.
  EXPECT_EQ(Ran, 1);
  Pool.wait();
  EXPECT_EQ(Ran, 1);
  EXPECT_EQ(Pool.stats().TasksExecuted, 1u);
}

TEST(ThreadPoolTest, ZeroThreadsMeansInline) {
  ThreadPool Pool(0);
  EXPECT_FALSE(Pool.parallel());
  EXPECT_EQ(Pool.width(), 1u);
  int Ran = 0;
  Pool.submit([&] { ++Ran; });
  EXPECT_EQ(Ran, 1);
  Pool.wait();
}

TEST(ThreadPoolTest, ParallelPoolRunsEveryTask) {
  ThreadPool Pool(4);
  EXPECT_TRUE(Pool.parallel());
  EXPECT_EQ(Pool.width(), 4u);
  std::atomic<int> Count{0};
  constexpr int N = 500;
  for (int I = 0; I < N; ++I)
    Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), N);
  EXPECT_EQ(Pool.stats().TasksExecuted, uint64_t(N));
}

TEST(ThreadPoolTest, NestedSubmissionsFinishBeforeWaitReturns) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I < 20; ++I)
    Pool.submit([&] {
      Count.fetch_add(1, std::memory_order_relaxed);
      for (int J = 0; J < 5; ++J)
        Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 20 + 20 * 5);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  for (int I = 0; I < 50; ++I)
    Pool.submit([&, I] {
      if (I == 7)
        throw std::runtime_error("task failure");
      Completed.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // A failed task does not cancel its siblings.
  EXPECT_EQ(Completed.load(), 49);
  // The error was consumed by the rethrow: a later barrier is clean.
  Pool.submit([] {});
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPoolTest, InlinePoolDefersExceptionToWait) {
  ThreadPool Pool(1);
  // submit() must not leak the exception out of the caller: the
  // parallel and inline pools share the wait()-rethrows contract.
  EXPECT_NO_THROW(Pool.submit([] { throw std::runtime_error("boom"); }));
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBarriers) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Round = 0; Round < 10; ++Round) {
    for (int I = 0; I < 50; ++I)
      Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 50);
  }
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Inline(1);
  EXPECT_NO_THROW(Inline.wait());
  ThreadPool Par(4);
  EXPECT_NO_THROW(Par.wait());
}

TEST(ThreadPoolTest, SubmitFromForeignThread) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  std::vector<std::thread> Submitters;
  for (int T = 0; T < 4; ++T)
    Submitters.emplace_back([&] {
      for (int I = 0; I < 100; ++I)
        Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  for (std::thread &T : Submitters)
    T.join();
  Pool.wait();
  EXPECT_EQ(Count.load(), 400);
}

} // namespace
