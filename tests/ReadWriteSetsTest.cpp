//===- ReadWriteSetsTest.cpp - side-effect set tests ---------------------------===//

#include "TestUtil.h"

#include "clients/ReadWriteSets.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::testutil;

namespace {

TEST(ReadWriteSetsTest, DirectReadsAndWrites) {
  auto P = analyze(R"(
    int g;
    int h;
    void f(void) { g = h; }
    int main(void) { f(); return 0; })");
  auto RW = ReadWriteSets::compute(*P.Prog, P.Analysis);
  EXPECT_TRUE(RW.Writes["f"].count("g"));
  EXPECT_TRUE(RW.Reads["f"].count("h"));
  EXPECT_FALSE(RW.Writes["f"].count("h"));
}

TEST(ReadWriteSetsTest, IndirectWriteResolvesTargets) {
  auto P = analyze(R"(
    int a; int b;
    int *sel;
    void f(int c) {
      if (c) sel = &a; else sel = &b;
      *sel = 1;
    }
    int main(void) { f(1); return 0; })");
  auto RW = ReadWriteSets::compute(*P.Prog, P.Analysis);
  EXPECT_TRUE(RW.Writes["f"].count("a"));
  EXPECT_TRUE(RW.Writes["f"].count("b"));
  EXPECT_TRUE(RW.Writes["f"].count("sel"));
  EXPECT_TRUE(RW.Reads["f"].count("sel")) << "deref reads the pointer";
}

TEST(ReadWriteSetsTest, SymbolicNamesAppearForInvisibles) {
  auto P = analyze(R"(
    void f(int *p) { *p = 3; }
    int main(void) {
      int x;
      f(&x);
      return x;
    })");
  auto RW = ReadWriteSets::compute(*P.Prog, P.Analysis);
  EXPECT_TRUE(RW.Writes["f"].count("1_p"))
      << "callee writes the invisible 1_p";
}

TEST(ReadWriteSetsTest, ContextualizedWriteSets) {
  // Sec. 6.1: combine the context-free sets with one IG node's map
  // info to name the actual caller variables a call writes.
  auto P = analyze(R"(
    void set(int **pp) { *pp = NULL; }
    int main(void) {
      int *first; int *second;
      set(&first);
      set(&second);
      return 0;
    })");
  auto RW = ReadWriteSets::compute(*P.Prog, P.Analysis);
  ASSERT_TRUE(RW.Writes["set"].count("1_pp"))
      << "context-free set names the symbolic";

  std::vector<const pta::IGNode *> SetNodes;
  P.Analysis.IG->forEachNode([&](const pta::IGNode *N) {
    if (N->function() && N->function()->name() == "set")
      SetNodes.push_back(N);
  });
  ASSERT_EQ(SetNodes.size(), 2u);
  auto W1 = contextualize(RW.Writes["set"], *SetNodes[0], *P.Analysis.Locs);
  auto W2 = contextualize(RW.Writes["set"], *SetNodes[1], *P.Analysis.Locs);
  EXPECT_TRUE(W1.count("first")) << "first call writes main's 'first'";
  EXPECT_FALSE(W1.count("second"));
  EXPECT_TRUE(W2.count("second"));
  EXPECT_FALSE(W2.count("first"));
  // Context-independent names survive contextualization: the write
  // through *pp reads the formal pp itself.
  auto R1 = contextualize(RW.Reads["set"], *SetNodes[0], *P.Analysis.Locs);
  EXPECT_TRUE(R1.count("pp"));
}

TEST(ReadWriteSetsTest, ContextualizeSubstitutesFieldPaths) {
  auto P = analyze(R"(
    struct S { int *p; };
    void clear(struct S *sp) { sp->p = NULL; }
    int main(void) {
      struct S box;
      clear(&box);
      return 0;
    })");
  auto RW = ReadWriteSets::compute(*P.Prog, P.Analysis);
  const pta::IGNode *Node = nullptr;
  P.Analysis.IG->forEachNode([&](const pta::IGNode *N) {
    if (N->function() && N->function()->name() == "clear")
      Node = N;
  });
  ASSERT_NE(Node, nullptr);
  auto W = contextualize(RW.Writes["clear"], *Node, *P.Analysis.Locs);
  EXPECT_TRUE(W.count("box.p")) << "1_sp.p resolves to box.p";
}

TEST(ReadWriteSetsTest, CallArgumentsAreReads) {
  auto P = analyze(R"(
    int use(int v) { return v; }
    int main(void) {
      int x;
      x = 1;
      return use(x);
    })");
  auto RW = ReadWriteSets::compute(*P.Prog, P.Analysis);
  EXPECT_TRUE(RW.Reads["main"].count("x"));
}

} // namespace
