//===- ServeTest.cpp - summary cache and pta-serve daemon ----------------------===//
//
// The serve layer's contracts (serve/SummaryCache.h, serve/Server.h):
//
//  - Cache keys: byte-identical (source, options) reruns hit; any change
//    to the source, the AnalysisOptions, or the AnalysisLimits misses.
//  - Corruption tolerance: a truncated or garbage disk blob degrades to
//    a miss with a warning — never a crash, never a wrong answer.
//  - The LRU respects its bounds and the disk tier survives "restarts"
//    (a second SummaryCache instance over the same directory).
//  - The NDJSON protocol: analyze → query → cached re-analyze →
//    shutdown, plus every error path, all in-process via handleLine/run.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "serve/SummaryCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace mcpta;
using namespace mcpta::serve;

namespace {

/// A unique cache directory under the test temp dir, removed on scope
/// exit so tests cannot see each other's blobs.
struct TempCacheDir {
  std::string Path;
  TempCacheDir(const char *Tag) {
    Path = ::testing::TempDir() + "/mcpta_serve_test_" + Tag + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(Path);
  }
  ~TempCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

ResultSnapshot analyzeToSnapshot(const std::string &Source,
                                 const pta::Analyzer::Options &Opts = {}) {
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  return ResultSnapshot::capture(*P.Prog, P.Analysis, optionsFingerprint(Opts));
}

/// Parses a server response line with the serve layer's own JSON parser
/// and fails the test on malformed output.
JsonValue parseResponse(const std::string &Line) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Line, V, Err)) << Err << "\nline: " << Line;
  return V;
}

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST(SummaryCacheTest, IdenticalRerunsShareAKey) {
  const char *Src = "int main(void) { int x; int *p; p = &x; return *p; }";
  pta::Analyzer::Options Opts;
  EXPECT_EQ(SummaryCache::key(Src, Opts), SummaryCache::key(Src, Opts));
  EXPECT_EQ(SummaryCache::key(Src, Opts).size(), 32u);
}

TEST(SummaryCacheTest, SourceChangesMiss) {
  pta::Analyzer::Options Opts;
  EXPECT_NE(SummaryCache::key("int main(void) { return 0; }", Opts),
            SummaryCache::key("int main(void) { return 1; }", Opts));
}

TEST(SummaryCacheTest, OptionChangesMiss) {
  const char *Src = "int main(void) { return 0; }";
  pta::Analyzer::Options Base;
  const std::string K = SummaryCache::key(Src, Base);

  pta::Analyzer::Options O = Base;
  O.FnPtr = pta::FnPtrMode::AddressTaken;
  EXPECT_NE(SummaryCache::key(Src, O), K);
  O = Base;
  O.ContextSensitive = false;
  EXPECT_NE(SummaryCache::key(Src, O), K);
  O = Base;
  O.SymbolicLevelLimit = 1;
  EXPECT_NE(SummaryCache::key(Src, O), K);
}

TEST(SummaryCacheTest, LimitChangesMiss) {
  // AnalysisLimits shape the result (degradations), so they are part of
  // the key: the same source under a tighter budget is a different
  // cache entry.
  const char *Src = "int main(void) { return 0; }";
  pta::Analyzer::Options Base;
  const std::string K = SummaryCache::key(Src, Base);

  pta::Analyzer::Options O = Base;
  O.Limits.TimeoutMs = 50;
  EXPECT_NE(SummaryCache::key(Src, O), K);
  O = Base;
  O.Limits.MaxIGNodes = 4;
  EXPECT_NE(SummaryCache::key(Src, O), K);
  O = Base;
  O.Limits.MaxStmtVisits = 100;
  EXPECT_NE(SummaryCache::key(Src, O), K);
}

//===----------------------------------------------------------------------===//
// Store / lookup / persistence
//===----------------------------------------------------------------------===//

TEST(SummaryCacheTest, StoreThenLookupHitsMemoryAndDisk) {
  TempCacheDir Dir("hit");
  const char *Src = "int g; int main(void) { int *p; p = &g; return *p; }";
  pta::Analyzer::Options Opts;
  const std::string Key = SummaryCache::key(Src, Opts);
  ResultSnapshot Snap = analyzeToSnapshot(Src, Opts);

  {
    SummaryCache C({Dir.Path});
    EXPECT_EQ(C.lookup(Key), nullptr);
    EXPECT_EQ(C.stats().Misses, 1u);

    ASSERT_NE(C.store(Key, Snap), nullptr);
    auto Hit = C.lookup(Key);
    ASSERT_NE(Hit, nullptr);
    EXPECT_TRUE(*Hit == Snap);
    EXPECT_EQ(C.stats().Hits, 1u);
    EXPECT_EQ(C.stats().MemHits, 1u);
    EXPECT_GT(C.stats().BytesStored, 0u);
  }

  // A fresh instance over the same directory — a daemon restart — must
  // answer from the disk tier.
  SummaryCache C2({Dir.Path});
  auto Hit = C2.lookup(Key);
  ASSERT_NE(Hit, nullptr);
  EXPECT_TRUE(*Hit == Snap);
  EXPECT_EQ(C2.stats().Hits, 1u);
  EXPECT_EQ(C2.stats().MemHits, 0u); // came from disk, not the LRU

  // ...and the disk hit repopulates the LRU.
  (void)C2.lookup(Key);
  EXPECT_EQ(C2.stats().MemHits, 1u);
}

TEST(SummaryCacheTest, TruncatedBlobIsMissWithWarning) {
  TempCacheDir Dir("trunc");
  const char *Src = "int main(void) { int x; int *p; p = &x; return *p; }";
  const std::string Key = SummaryCache::key(Src, pta::Analyzer::Options{});

  {
    SummaryCache C({Dir.Path});
    C.store(Key, analyzeToSnapshot(Src));
  }

  // Truncate the blob on disk behind the cache's back.
  const std::string Blob = Dir.Path + "/" + Key + ".mcpta";
  ASSERT_TRUE(std::filesystem::exists(Blob));
  std::filesystem::resize_file(Blob, std::filesystem::file_size(Blob) / 2);

  SummaryCache C({Dir.Path});
  std::string Warning;
  EXPECT_EQ(C.lookup(Key, &Warning), nullptr);
  EXPECT_FALSE(Warning.empty());
  EXPECT_EQ(C.stats().Misses, 1u);
  EXPECT_EQ(C.stats().BadBlobs, 1u);
  // The poisoned blob is dropped so the next store can republish.
  EXPECT_FALSE(std::filesystem::exists(Blob));
}

TEST(SummaryCacheTest, GarbageBlobIsMissWithWarning) {
  TempCacheDir Dir("garbage");
  const std::string Key(32, 'a');
  std::filesystem::create_directories(Dir.Path);
  std::ofstream(Dir.Path + "/" + Key + ".mcpta") << "not a result blob";

  SummaryCache C({Dir.Path});
  std::string Warning;
  EXPECT_EQ(C.lookup(Key, &Warning), nullptr);
  EXPECT_FALSE(Warning.empty());
  EXPECT_EQ(C.stats().BadBlobs, 1u);
}

TEST(SummaryCacheTest, LruRespectsEntryBound) {
  // Memory-only cache bounded to 2 entries: a third store evicts the
  // least recently used.
  SummaryCache::Config Cfg;
  Cfg.MaxMemEntries = 2;
  SummaryCache C(Cfg);

  const char *Sources[3] = {
      "int main(void) { return 0; }",
      "int main(void) { return 1; }",
      "int main(void) { return 2; }",
  };
  std::string Keys[3];
  for (int I = 0; I < 3; ++I) {
    Keys[I] = SummaryCache::key(Sources[I], pta::Analyzer::Options{});
    C.store(Keys[I], analyzeToSnapshot(Sources[I]));
  }

  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_EQ(C.stats().MemEntries, 2u);
  EXPECT_EQ(C.lookup(Keys[0]), nullptr); // evicted; no disk tier
  EXPECT_NE(C.lookup(Keys[1]), nullptr);
  EXPECT_NE(C.lookup(Keys[2]), nullptr);
}

TEST(SummaryCacheTest, InvalidateDropsEverything) {
  TempCacheDir Dir("invalidate");
  const char *Src = "int main(void) { return 0; }";
  const std::string Key = SummaryCache::key(Src, pta::Analyzer::Options{});

  SummaryCache C({Dir.Path});
  C.store(Key, analyzeToSnapshot(Src));
  EXPECT_EQ(C.invalidate(), 1u);
  EXPECT_EQ(C.lookup(Key), nullptr);
  EXPECT_FALSE(std::filesystem::exists(Dir.Path + "/" + Key + ".mcpta"));
}

//===----------------------------------------------------------------------===//
// Server protocol
//===----------------------------------------------------------------------===//

struct ServerFixture {
  TempCacheDir Dir{"server"};
  Server S;
  std::ostringstream Log;

  ServerFixture() : S(makeConfig()) {}

  Server::Config makeConfig() {
    Server::Config Cfg;
    Cfg.Cache.Dir = Dir.Path;
    return Cfg;
  }

  /// One request through the protocol layer; returns the parsed reply.
  JsonValue request(const std::string &Line, bool *WantShutdown = nullptr) {
    bool Shut = false;
    std::string Reply = S.handleLine(Line, Shut, Log);
    if (WantShutdown)
      *WantShutdown = Shut;
    return parseResponse(Reply);
  }
};

TEST(ServerTest, AnalyzeThenCachedReanalyze) {
  ServerFixture F;
  const corpus::CorpusProgram *CP = corpus::find("hash");
  ASSERT_NE(CP, nullptr);

  JsonValue R1 = F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  EXPECT_TRUE(R1.getBool("ok", false));
  EXPECT_FALSE(R1.getBool("cached", true));
  EXPECT_TRUE(R1.getBool("analyzed", false));
  EXPECT_EQ(R1.getString("key", "").size(), 32u);
  EXPECT_GT(R1.getNumber("locations", 0), 0);
  EXPECT_GT(R1.getNumber("ig_nodes", 0), 0);

  // Byte-identical rerun: must be served from the cache.
  JsonValue R2 = F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  EXPECT_TRUE(R2.getBool("ok", false));
  EXPECT_TRUE(R2.getBool("cached", false));
  EXPECT_EQ(R2.getString("key", "x"), R1.getString("key", "y"));
  EXPECT_EQ(R2.getNumber("locations", -1), R1.getNumber("locations", -2));
}

TEST(ServerTest, DifferentOptionsDifferentKey) {
  ServerFixture F;
  JsonValue R1 = F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\"}");
  JsonValue R2 = F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"hash\","
                           "\"options\":{\"context_sensitive\":false}}");
  EXPECT_TRUE(R2.getBool("ok", false));
  EXPECT_FALSE(R2.getBool("cached", true)) << "options change must miss";
  EXPECT_NE(R1.getString("key", "x"), R2.getString("key", "x"));

  JsonValue R3 = F.request("{\"id\":3,\"method\":\"analyze\",\"corpus\":\"hash\","
                           "\"limits\":{\"max_ig_nodes\":3}}");
  EXPECT_FALSE(R3.getBool("cached", true)) << "limits change must miss";
  EXPECT_TRUE(R3.getBool("degraded", false));
}

TEST(ServerTest, QueriesAnswerFromSnapshot) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"source\":"
            "\"int main(void) { int x; int *p; int *q; p = &x; q = p; "
            "return *q; }\"}");

  JsonValue A = F.request(
      "{\"id\":2,\"method\":\"alias\",\"a\":\"*p\",\"b\":\"*q\"}");
  EXPECT_TRUE(A.getBool("ok", false));
  EXPECT_TRUE(A.getBool("aliased", false));

  JsonValue NA = F.request(
      "{\"id\":3,\"method\":\"alias\",\"a\":\"p\",\"b\":\"q\"}");
  EXPECT_TRUE(NA.getBool("ok", false));
  EXPECT_FALSE(NA.getBool("aliased", true));

  JsonValue PT =
      F.request("{\"id\":4,\"method\":\"points_to\",\"name\":\"p\"}");
  EXPECT_TRUE(PT.getBool("ok", false));
  const JsonValue *Targets = PT.find("targets");
  ASSERT_NE(Targets, nullptr);
  ASSERT_EQ(Targets->elements().size(), 1u);
  EXPECT_EQ(Targets->elements()[0].getString("target", ""), "x");
  EXPECT_TRUE(Targets->elements()[0].getBool("definite", false));

  JsonValue RW = F.request("{\"id\":5,\"method\":\"read_write_sets\","
                           "\"function\":\"main\"}");
  EXPECT_TRUE(RW.getBool("ok", false));
  ASSERT_NE(RW.find("writes"), nullptr);
}

TEST(ServerTest, ErrorPathsKeepTheLoopAlive) {
  ServerFixture F;

  JsonValue Bad = F.request("this is not json");
  EXPECT_FALSE(Bad.getBool("ok", true));
  EXPECT_NE(Bad.getString("error", "").find("JSON"), std::string::npos);

  JsonValue NoMethod = F.request("{\"id\":1}");
  EXPECT_FALSE(NoMethod.getBool("ok", true));

  JsonValue Unknown = F.request("{\"id\":2,\"method\":\"frobnicate\"}");
  EXPECT_FALSE(Unknown.getBool("ok", true));
  EXPECT_NE(Unknown.getString("error", "").find("frobnicate"),
            std::string::npos);

  // Query before any analyze: no snapshot to address.
  JsonValue Early = F.request(
      "{\"id\":3,\"method\":\"alias\",\"a\":\"p\",\"b\":\"q\"}");
  EXPECT_FALSE(Early.getBool("ok", true));

  // Frontend errors are reported, not cached.
  JsonValue Parse = F.request(
      "{\"id\":4,\"method\":\"analyze\",\"source\":\"int main( {\"}");
  EXPECT_FALSE(Parse.getBool("ok", true));
  EXPECT_FALSE(Parse.getString("error", "").empty());

  // The server still works after every failure above.
  JsonValue Ok = F.request(
      "{\"id\":5,\"method\":\"analyze\",\"source\":"
      "\"int main(void) { return 0; }\"}");
  EXPECT_TRUE(Ok.getBool("ok", false));
}

TEST(ServerTest, UnknownCorpusAndLocationsFail) {
  ServerFixture F;
  JsonValue R = F.request(
      "{\"id\":1,\"method\":\"analyze\",\"corpus\":\"no_such_program\"}");
  EXPECT_FALSE(R.getBool("ok", true));

  F.request("{\"id\":2,\"method\":\"analyze\",\"source\":"
            "\"int main(void) { return 0; }\"}");
  JsonValue PT = F.request(
      "{\"id\":3,\"method\":\"points_to\",\"name\":\"no_such_var\"}");
  EXPECT_FALSE(PT.getBool("ok", true));

  JsonValue RW = F.request("{\"id\":4,\"method\":\"read_write_sets\","
                           "\"function\":\"no_such_fn\"}");
  EXPECT_FALSE(RW.getBool("ok", true));
}

TEST(ServerTest, StatsAndInvalidate) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"misr\"}");

  JsonValue St = F.request("{\"id\":2,\"method\":\"stats\"}");
  EXPECT_TRUE(St.getBool("ok", false));
  EXPECT_FALSE(St.getString("tool_version", "").empty());
  EXPECT_EQ(St.getString("result_format", ""), "mcpta-result-v3");
  const JsonValue *Cache = St.find("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->getNumber("misses", -1), 1);
  const JsonValue *Counters = St.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GE(Counters->getNumber("serve.requests", 0), 2);

  JsonValue Inv = F.request("{\"id\":3,\"method\":\"invalidate\"}");
  EXPECT_TRUE(Inv.getBool("ok", false));
  EXPECT_EQ(Inv.getNumber("removed_blobs", -1), 1);

  // After invalidation the snapshot reference is gone too.
  JsonValue Q = F.request(
      "{\"id\":4,\"method\":\"alias\",\"a\":\"a\",\"b\":\"b\"}");
  EXPECT_FALSE(Q.getBool("ok", true));
}

TEST(ServerTest, IncrementalAnalyzeReusesBaseline) {
  ServerFixture F;
  // Two-function program; the edit below changes only a constant in
  // leaf, so `other` grafts from the baseline.
  const char *ReqA =
      "{\"id\":1,\"method\":\"analyze\",\"incremental\":true,\"source\":"
      "\"void leaf(int *p) { *p = 1; }\\n"
      "void other(int *q) { *q = 2; }\\n"
      "int main(void) { int x; leaf(&x); other(&x); return x; }\"}";
  const char *ReqB =
      "{\"id\":2,\"method\":\"analyze\",\"incremental\":true,\"source\":"
      "\"void leaf(int *p) { *p = 3; }\\n"
      "void other(int *q) { *q = 2; }\\n"
      "int main(void) { int x; leaf(&x); other(&x); return x; }\"}";

  // First analysis under these options: nothing to diff against.
  JsonValue R1 = F.request(ReqA);
  EXPECT_TRUE(R1.getBool("ok", false));
  EXPECT_FALSE(R1.getBool("incremental", true));
  EXPECT_EQ(R1.getString("fallback_reason", ""), "no-baseline");

  // The edited source re-analyzes against the previous snapshot.
  JsonValue R2 = F.request(ReqB);
  EXPECT_TRUE(R2.getBool("ok", false));
  EXPECT_FALSE(R2.getBool("cached", true));
  EXPECT_TRUE(R2.getBool("incremental", false));
  EXPECT_GE(R2.getNumber("dirty_functions", 0), 1);
  EXPECT_GT(R2.getNumber("memo_reuse", 0), 0);
  EXPECT_EQ(R2.find("fallback_reason"), nullptr);
  EXPECT_NE(R2.getString("key", "x"), R1.getString("key", "x"));

  // Engine activity lands in the daemon's telemetry counters.
  JsonValue St = F.request("{\"id\":3,\"method\":\"stats\"}");
  const JsonValue *Counters = St.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GE(Counters->getNumber("incr.memo_reuse", 0), 1);

  // A byte-identical rerun is a cache hit; no re-analysis happens.
  JsonValue R3 = F.request(ReqB);
  EXPECT_TRUE(R3.getBool("cached", false));
  EXPECT_FALSE(R3.getBool("incremental", true));
  EXPECT_EQ(R3.getString("fallback_reason", ""), "cache-hit");

  // The incremental result answers queries like any other snapshot.
  JsonValue PT =
      F.request("{\"id\":4,\"method\":\"points_to\",\"name\":\"x\"}");
  EXPECT_TRUE(PT.getBool("ok", false));
}

TEST(ServerTest, IncrementalAnalyzeFallsBackWithReason) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"incremental\":true,"
            "\"source\":\"int main(void) { return 0; }\"}");
  // A type edit defeats the snapshot diff: full re-analysis, reported.
  JsonValue R = F.request(
      "{\"id\":2,\"method\":\"analyze\",\"incremental\":true,\"source\":"
      "\"struct s { int a; };\\nint main(void) { return 0; }\"}");
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_FALSE(R.getBool("incremental", true));
  EXPECT_EQ(R.getString("fallback_reason", ""), "types-changed");

  JsonValue St = F.request("{\"id\":3,\"method\":\"stats\"}");
  const JsonValue *Counters = St.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->getNumber("incr.fallback.types-changed", 0), 1);
}

TEST(ServerTest, StatsReportsHitRatioAndUptime) {
  ServerFixture F;
  JsonValue St0 = F.request("{\"id\":1,\"method\":\"stats\"}");
  EXPECT_TRUE(St0.getBool("ok", false));
  EXPECT_EQ(St0.getNumber("cache_hit_ratio", -1), 0.0)
      << "no lookups yet: ratio must be 0, not NaN";
  EXPECT_GE(St0.getNumber("uptime_ms", -1), 0.0);

  // One miss then one hit: ratio is exactly 1/2.
  F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"misr\"}");
  F.request("{\"id\":3,\"method\":\"analyze\",\"corpus\":\"misr\"}");
  JsonValue St1 = F.request("{\"id\":4,\"method\":\"stats\"}");
  EXPECT_EQ(St1.getNumber("cache_hit_ratio", -1), 0.5);
  EXPECT_GE(St1.getNumber("uptime_ms", -1), St0.getNumber("uptime_ms", -1));

  // The aggregate cache.* counters agree with the cache's own Stats
  // block: each increment lands in the daemon aggregate exactly once
  // (via the request-scope merge), never once per telemetry sink.
  const JsonValue *Cache = St1.find("cache");
  const JsonValue *C = St1.find("counters");
  ASSERT_NE(Cache, nullptr);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getNumber("cache.hits", -1), Cache->getNumber("hits", -2));
  EXPECT_EQ(C->getNumber("cache.misses", -1),
            Cache->getNumber("misses", -2));
  EXPECT_EQ(C->getNumber("cache.hits", -1), 1);
  EXPECT_EQ(C->getNumber("cache.misses", -1), 1);
  EXPECT_EQ(C->getNumber("cache.stores", -1), 1);
}

TEST(ServerTest, ShutdownFlagsAndRunLoop) {
  ServerFixture F;
  bool Shut = false;
  JsonValue R = F.request("{\"id\":9,\"method\":\"shutdown\"}", &Shut);
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_TRUE(Shut);

  // Full loop over streams: banner on the log, one response per
  // request, orderly exit code.
  TempCacheDir Dir("runloop");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Server S(Cfg);
  std::istringstream In("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"misr\"}\n"
                        "\n" // blank lines are skipped
                        "{\"id\":2,\"method\":\"stats\"}\n"
                        "{\"id\":3,\"method\":\"shutdown\"}\n"
                        "{\"id\":4,\"method\":\"stats\"}\n"); // after shutdown
  std::ostringstream Out, Log;
  EXPECT_EQ(S.run(In, Out, Log), 0);
  EXPECT_NE(Log.str().find("pta-serve"), std::string::npos);

  // Exactly three responses: the post-shutdown line is never read.
  std::istringstream Lines(Out.str());
  std::string Line;
  int N = 0;
  while (std::getline(Lines, Line))
    if (!Line.empty()) {
      parseResponse(Line);
      ++N;
    }
  EXPECT_EQ(N, 3);
}

//===----------------------------------------------------------------------===//
// Observability: correlation ids, latency quantiles, per-method errors,
// the flight recorder, and the no-perturbation guarantee.
//===----------------------------------------------------------------------===//

TEST(ServerTest, ResponsesCarryCorrelationIds) {
  ServerFixture F;
  // Client-supplied cid is echoed verbatim.
  JsonValue R1 = F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":"
                           "\"misr\",\"cid\":\"build-42\"}");
  EXPECT_EQ(R1.getString("cid", ""), "build-42");
  // Without one, the server generates a monotone r<seq> id.
  JsonValue R2 = F.request("{\"id\":2,\"method\":\"stats\"}");
  EXPECT_EQ(R2.getString("cid", ""), "r2");
}

TEST(ServerTest, TraceOnDemandReturnsRequestScopedFragment) {
  ServerFixture F;
  JsonValue R = F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":"
                          "\"misr\",\"cid\":\"t1\",\"trace\":true}");
  EXPECT_TRUE(R.getBool("ok", false));
  const JsonValue *Trace = R.find("trace");
  ASSERT_NE(Trace, nullptr);
  // The fragment is a complete Chrome-trace document for THIS request:
  // the pipeline spans are present and the correlation id is stamped.
  const JsonValue *Events = Trace->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool SawPointsTo = false;
  for (const JsonValue &E : Events->elements())
    if (E.getString("name", "") == "pointsto")
      SawPointsTo = true;
  EXPECT_TRUE(SawPointsTo);
  const JsonValue *Other = Trace->find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Other->getString("correlation_id", ""), "t1");
  // A cached rerun without "trace" has no fragment.
  JsonValue R2 =
      F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"misr\"}");
  EXPECT_EQ(R2.find("trace"), nullptr);
}

TEST(ServerTest, StatsReportsLatencyQuantilesAndMemory) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"misr\"}");
  F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"misr\"}");
  F.request("{\"id\":3,\"method\":\"stats\"}");
  JsonValue St = F.request("{\"id\":4,\"method\":\"stats\"}");

  const JsonValue *Latency = St.find("latency");
  ASSERT_NE(Latency, nullptr);
  const JsonValue *Analyze = Latency->find("serve.latency.analyze");
  ASSERT_NE(Analyze, nullptr);
  EXPECT_EQ(Analyze->getNumber("count", -1), 2);
  EXPECT_GT(Analyze->getNumber("p50", -1), 0.0);
  EXPECT_GE(Analyze->getNumber("p95", -1), Analyze->getNumber("p50", -1));
  EXPECT_GE(Analyze->getNumber("p99", -1), Analyze->getNumber("p95", -1));
  EXPECT_GE(Analyze->getNumber("max", -1), 0.0);
  // The earlier stats request recorded its own latency too.
  const JsonValue *StatsLat = Latency->find("serve.latency.stats");
  ASSERT_NE(StatsLat, nullptr);
  EXPECT_GE(StatsLat->getNumber("count", -1), 1);

  const JsonValue *Mem = St.find("mem");
  ASSERT_NE(Mem, nullptr);
  EXPECT_GT(Mem->getNumber("mem.peak_rss_kb", -1), 0);
  EXPECT_GE(Mem->getNumber("mem.cache_resident_bytes", -1), 0);
  // The analyze requests merged their analyzer-side gauges in.
  EXPECT_GT(Mem->getNumber("mem.location_table_locations", -1), 0);
}

TEST(ServerTest, PerMethodErrorCountersSeparateProtocolFailures) {
  ServerFixture F;
  F.request("not json at all");                          // protocol
  F.request("{\"id\":1,\"method\":\"frobnicate\"}");     // protocol
  F.request("{\"id\":2,\"method\":\"alias\",\"a\":\"p\","
            "\"b\":\"q\"}"); // alias fails: nothing analyzed yet
  F.request("{\"id\":3,\"method\":\"analyze\",\"corpus\":\"misr\"}"); // ok

  JsonValue St = F.request("{\"id\":4,\"method\":\"stats\"}");
  const JsonValue *C = St.find("counters");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getNumber("serve.errors", 0), 3);
  EXPECT_EQ(C->getNumber("serve.errors.protocol", 0), 2);
  EXPECT_EQ(C->getNumber("serve.errors.alias", 0), 1);
  EXPECT_EQ(C->getNumber("serve.errors.analyze", -1), -1)
      << "no analyze failed: its error counter must not exist";
}

TEST(ServerTest, EventsMethodExposesFlightRecorder) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"misr\","
            "\"cid\":\"e1\"}");
  F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"misr\"}");

  JsonValue Ev = F.request("{\"id\":3,\"method\":\"events\"}");
  EXPECT_TRUE(Ev.getBool("ok", false));
  EXPECT_GT(Ev.getNumber("recorded", 0), 0);
  EXPECT_EQ(Ev.getNumber("dropped", -1), 0);
  EXPECT_GT(Ev.getNumber("capacity", 0), 0);
  const JsonValue *Events = Ev.find("events");
  ASSERT_NE(Events, nullptr);

  // The first analyze left a start/miss/store/end trail under its cid;
  // the second was a cache hit.
  auto Count = [&](const std::string &Kind, const std::string &Cid) {
    int N = 0;
    for (const JsonValue &E : Events->elements())
      if (E.getString("kind", "") == Kind &&
          (Cid.empty() || E.getString("cid", "") == Cid))
        ++N;
    return N;
  };
  EXPECT_EQ(Count("request.start", "e1"), 1);
  EXPECT_EQ(Count("cache.miss", "e1"), 1);
  EXPECT_EQ(Count("cache.store", "e1"), 1);
  EXPECT_EQ(Count("request.end", "e1"), 1);
  EXPECT_EQ(Count("cache.hit", "r2"), 1);
  // Sequence numbers are monotone.
  double LastSeq = 0;
  for (const JsonValue &E : Events->elements()) {
    EXPECT_GT(E.getNumber("seq", -1), LastSeq);
    LastSeq = E.getNumber("seq", -1);
  }

  // A limit returns only the most recent events.
  JsonValue One = F.request("{\"id\":4,\"method\":\"events\",\"limit\":1}");
  ASSERT_NE(One.find("events"), nullptr);
  EXPECT_EQ(One.find("events")->elements().size(), 1u);
}

TEST(ServerTest, DegradationsLeaveFlightRecorderEvents) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\","
            "\"cid\":\"d1\",\"limits\":{\"max_ig_nodes\":2}}");
  JsonValue Ev = F.request("{\"id\":2,\"method\":\"events\"}");
  const JsonValue *Events = Ev.find("events");
  ASSERT_NE(Events, nullptr);
  bool Saw = false;
  for (const JsonValue &E : Events->elements())
    if (E.getString("kind", "") == "degradation" &&
        E.getString("cid", "") == "d1")
      Saw = true;
  EXPECT_TRUE(Saw);
}

TEST(ServerTest, ConcurrentRequestsKeepExactTotals) {
  // handleLine from several threads at once: every response parses, and
  // the daemon aggregate counts every request exactly once.
  ServerFixture F;
  F.request("{\"id\":0,\"method\":\"analyze\",\"corpus\":\"misr\"}");
  constexpr unsigned NumThreads = 4;
  constexpr int PerThread = 25;
  std::vector<std::vector<std::string>> Replies(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&F, &Replies, T] {
      std::ostringstream Sink; // per-thread log; ostringstream isn't MT-safe
      for (int I = 0; I < PerThread; ++I) {
        bool Shut = false;
        const char *Req =
            (I % 3 == 0)
                ? "{\"method\":\"analyze\",\"corpus\":\"misr\"}"
                : (I % 3 == 1 ? "{\"method\":\"stats\"}"
                              : "{\"method\":\"alias\",\"a\":\"c\","
                                "\"b\":\"v\"}");
        Replies[T].push_back(F.S.handleLine(Req, Shut, Sink));
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (const auto &PerThreadReplies : Replies)
    for (const std::string &Line : PerThreadReplies) {
      JsonValue R = parseResponse(Line);
      EXPECT_TRUE(R.getBool("ok", false)) << Line;
    }
  JsonValue St = F.request("{\"id\":9,\"method\":\"stats\"}");
  const JsonValue *C = St.find("counters");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getNumber("serve.requests", 0),
            1 + NumThreads * PerThread + 1);
  EXPECT_EQ(C->getNumber("serve.errors", -1), -1);
}

TEST(ServerTest, TelemetryDoesNotPerturbResults) {
  // The same source analyzed with and without telemetry attached must
  // serialize to byte-identical snapshots — instrumentation observes,
  // never steers.
  const corpus::CorpusProgram *CP = corpus::find("hash");
  ASSERT_NE(CP, nullptr);
  pta::Analyzer::Options Opts;
  Pipeline Plain = Pipeline::analyzeSource(CP->Source, Opts);
  ASSERT_FALSE(Plain.Diags.hasErrors());
  Pipeline Traced = Pipeline::analyzeSourceTraced(CP->Source, Opts);
  ASSERT_FALSE(Traced.Diags.hasErrors());
  const std::string FP = optionsFingerprint(Opts);
  EXPECT_EQ(
      serialize(ResultSnapshot::capture(*Plain.Prog, Plain.Analysis, FP)),
      serialize(ResultSnapshot::capture(*Traced.Prog, Traced.Analysis, FP)));

  // And through the daemon (child telemetry attached): same key, same
  // headline numbers as the plain pipeline's snapshot.
  ServerFixture F;
  JsonValue R = F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":"
                          "\"hash\"}");
  EXPECT_EQ(R.getString("key", ""), SummaryCache::key(CP->Source, Opts));
}

//===----------------------------------------------------------------------===//
// Concurrent loop: worker pool, bounded lines, shutdown drain
//===----------------------------------------------------------------------===//

/// Splits daemon stdout into parsed response lines.
std::vector<JsonValue> parseResponses(const std::string &Out) {
  std::vector<JsonValue> Rs;
  std::istringstream Lines(Out);
  std::string Line;
  while (std::getline(Lines, Line))
    if (!Line.empty())
      Rs.push_back(parseResponse(Line));
  return Rs;
}

TEST(ServerTest, OversizedLineIsAProtocolErrorAndTheLoopContinues) {
  TempCacheDir Dir("linebound");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.MaxLineBytes = 64;
  Server S(Cfg);
  std::string Huge(1000, 'x');
  std::istringstream In(Huge + "\n"
                        "{\"id\":2,\"method\":\"stats\"}\n"
                        "{\"id\":3,\"method\":\"shutdown\"}\n");
  std::ostringstream Out, Log;
  EXPECT_EQ(S.run(In, Out, Log), 0);
  std::vector<JsonValue> Rs = parseResponses(Out.str());
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_FALSE(Rs[0].getBool("ok", true));
  EXPECT_NE(Rs[0].getString("error", "").find("64-byte bound"),
            std::string::npos);
  // The oversized line was fully consumed: the next line parses
  // normally and the daemon keeps serving.
  EXPECT_TRUE(Rs[1].getBool("ok", false));
  EXPECT_TRUE(Rs[2].getBool("ok", false));
  auto Counters = S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["serve.errors.protocol"], 1u);
}

TEST(ServerTest, NonUtf8LineIsAProtocolError) {
  TempCacheDir Dir("utf8");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Server S(Cfg);
  std::string Bad = "{\"id\":1,\"method\":\"stats\",\"cid\":\"\xff\xfe\"}";
  std::istringstream In(Bad + "\n"
                        "{\"id\":2,\"method\":\"shutdown\"}\n");
  std::ostringstream Out, Log;
  EXPECT_EQ(S.run(In, Out, Log), 0);
  std::vector<JsonValue> Rs = parseResponses(Out.str());
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_FALSE(Rs[0].getBool("ok", true));
  EXPECT_NE(Rs[0].getString("error", "").find("UTF-8"), std::string::npos);
  EXPECT_TRUE(Rs[1].getBool("ok", false));
}

TEST(ServerTest, PoolDrainsInFlightRequestsOnShutdown) {
  // Four analyzes then shutdown through the Threads=2 loop: every
  // accepted request gets exactly one response (out of order is fine —
  // correlation is by id), and the flight-recorder dump happens exactly
  // once, after the pool has fully drained.
  TempCacheDir Dir("pooldrain");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.Threads = 2;
  Server S(Cfg);
  std::string Input;
  const char *Sources[] = {
      "int main(void) { int a; int *p; p = &a; return *p; }",
      "int main(void) { int b; int *q; q = &b; return *q; }",
      "int main(void) { int c; int *r; r = &c; return *r; }",
      "int main(void) { int d; int *s; s = &d; return *s; }",
  };
  for (int I = 0; I < 4; ++I)
    Input += "{\"id\":" + std::to_string(I + 1) +
             ",\"method\":\"analyze\",\"source\":\"" + Sources[I] + "\"}\n";
  Input += "{\"id\":5,\"method\":\"shutdown\"}\n";
  std::istringstream In(Input);
  std::ostringstream Out, Log;
  EXPECT_EQ(S.run(In, Out, Log), 0);

  std::vector<JsonValue> Rs = parseResponses(Out.str());
  std::map<int, int> ById;
  for (const JsonValue &R : Rs) {
    int Id = static_cast<int>(R.getNumber("id", -1));
    ++ById[Id];
    if (Id >= 1 && Id <= 4) {
      EXPECT_TRUE(R.getBool("ok", false)) << "id " << Id;
      EXPECT_TRUE(R.getBool("analyzed", false)) << "id " << Id;
    }
  }
  for (int Id = 1; Id <= 5; ++Id)
    EXPECT_EQ(ById[Id], 1) << "id " << Id << " answered exactly once";

  const std::string LogText = Log.str();
  size_t First = LogText.find("flight recorder:");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(LogText.find("flight recorder:", First + 1), std::string::npos)
      << "dump must happen exactly once";
}

TEST(ServerTest, PostShutdownLinesAreRejectedNotServed) {
  // Lines racing a shutdown through the pool are either answered (they
  // were admitted before the queue sealed) or rejected with a shutdown
  // error — never dropped silently mid-read, never half-served.
  TempCacheDir Dir("postshut");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.Threads = 2;
  Server S(Cfg);
  std::string Input = "{\"id\":1,\"method\":\"shutdown\"}\n";
  for (int I = 2; I <= 10; ++I)
    Input += "{\"id\":" + std::to_string(I) + ",\"method\":\"stats\"}\n";
  std::istringstream In(Input);
  std::ostringstream Out, Log;
  EXPECT_EQ(S.run(In, Out, Log), 0);
  bool SawShutdownOk = false;
  for (const JsonValue &R : parseResponses(Out.str())) {
    if (R.getNumber("id", -1) == 1) {
      EXPECT_TRUE(R.getBool("ok", false));
      SawShutdownOk = true;
    } else if (!R.getBool("ok", false)) {
      EXPECT_NE(R.getString("error", "").find("shutting down"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(SawShutdownOk);
}

TEST(ServerTest, PoolAnswersAreIdenticalToSequentialAnswers) {
  // The same request stream through Threads=1 and Threads=4 daemons
  // (fresh cache each): for every id, all result members must match
  // exactly. Only transport metadata (elapsed_ms, response order) may
  // differ — concurrency buys throughput, never different answers.
  const char *SourcesById[] = {
      "int main(void) { int a; int *p; p = &a; return *p; }",
      "int main(void) { int b; int *q; int **h; q = &b; h = &q; "
      "return **h; }",
      "int f(int *x) { return *x; } int main(void) { int c; "
      "return f(&c); }",
      "int g(void) { return 1; } int main(void) { int (*fp)(void); "
      "fp = g; return fp(); }",
  };
  auto Collect = [&](unsigned Threads) {
    TempCacheDir Dir(Threads == 1 ? "ident_seq" : "ident_pool");
    Server::Config Cfg;
    Cfg.Cache.Dir = Dir.Path;
    Cfg.Threads = Threads;
    Server S(Cfg);
    std::string Input;
    for (int I = 0; I < 12; ++I)
      Input += "{\"id\":" + std::to_string(I + 1) +
               ",\"method\":\"analyze\",\"source\":\"" +
               SourcesById[I % 4] + "\"}\n";
    Input += "{\"id\":99,\"method\":\"shutdown\"}\n";
    std::istringstream In(Input);
    std::ostringstream Out, Log;
    EXPECT_EQ(S.run(In, Out, Log), 0);
    std::map<int, std::string> ById;
    for (const JsonValue &R : parseResponses(Out.str())) {
      int Id = static_cast<int>(R.getNumber("id", -1));
      if (Id == 99)
        continue;
      std::ostringstream Sig;
      Sig << R.getBool("ok", false) << "|" << R.getBool("degraded", false)
          << "|" << R.getString("key", "") << "|"
          << R.getNumber("locations", -1) << "|"
          << R.getNumber("ig_nodes", -1) << "|"
          << R.getNumber("main_out_pairs", -1) << "|"
          << R.getNumber("alias_pairs", -1);
      ById[Id] = Sig.str();
    }
    return ById;
  };
  std::map<int, std::string> Seq = Collect(1);
  std::map<int, std::string> Pool = Collect(4);
  ASSERT_EQ(Seq.size(), 12u);
  ASSERT_EQ(Pool.size(), 12u);
  for (int Id = 1; Id <= 12; ++Id)
    EXPECT_EQ(Pool[Id], Seq[Id]) << "id " << Id;
}

TEST(ServerTest, QueueWaitPastDeadlineShedsTheRequest) {
  // Drive the admission path directly: a worker dequeuing a request
  // that already waited past the whole deadline sheds it instead of
  // starting an analysis it cannot finish in budget.
  TempCacheDir Dir("latewait");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.RequestDeadlineMs = 50;
  Server S(Cfg);
  std::ostringstream Log;
  bool Shut = false;
  Server::Admission Late;
  Late.QueueWaitMs = 120;
  Late.QueueDepth = 1;
  Late.QueueCap = 8;
  JsonValue R = parseResponse(S.handleLine(
      "{\"id\":1,\"method\":\"analyze\",\"source\":"
      "\"int main(void) { return 0; }\"}",
      Shut, Log, Late));
  EXPECT_FALSE(R.getBool("ok", true));
  EXPECT_TRUE(R.getBool("overloaded", false));
  auto Counters = S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["serve.admission.shed_wait"], 1u);

  // Queries are never shed on wait: the answer is a map lookup.
  S.handleLine("{\"id\":2,\"method\":\"analyze\",\"source\":"
               "\"int main(void) { return 0; }\"}",
               Shut, Log);
  JsonValue Q = parseResponse(S.handleLine(
      "{\"id\":3,\"method\":\"read_write_sets\"}", Shut, Log, Late));
  EXPECT_TRUE(Q.getBool("ok", false));
}

TEST(ServerTest, QueuePressureTightensTheLadderButKeepsServing) {
  // Depth at 75% of capacity: ladder level 2, TimeoutMs clamped to
  // deadline/4, the response says so, and the result is still sound.
  TempCacheDir Dir("ladder");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Cfg.RequestDeadlineMs = 60000; // generous: tightened, not tripped
  Server S(Cfg);
  std::ostringstream Log;
  bool Shut = false;
  Server::Admission Busy;
  Busy.QueueWaitMs = 1;
  Busy.QueueDepth = 6;
  Busy.QueueCap = 8;
  JsonValue R = parseResponse(S.handleLine(
      "{\"id\":1,\"method\":\"analyze\",\"source\":"
      "\"int main(void) { int x; int *p; p = &x; return *p; }\"}",
      Shut, Log, Busy));
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_EQ(R.getNumber("ladder_level", 0), 2);
  EXPECT_FALSE(R.getBool("degraded", true)) << "tiny program: budget ample";
  auto Counters = S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["serve.admission.tightened"], 1u);
  EXPECT_EQ(Counters["serve.admission.tightened.l2"], 1u);

  // An idle daemon then serves the untightened request as a fresh entry
  // (the tightened key is distinct), and a repeat of the busy request
  // hits the tightened entry.
  JsonValue Idle = parseResponse(S.handleLine(
      "{\"id\":2,\"method\":\"analyze\",\"source\":"
      "\"int main(void) { int x; int *p; p = &x; return *p; }\"}",
      Shut, Log));
  EXPECT_TRUE(Idle.getBool("ok", false));
  EXPECT_NE(Idle.getString("key", ""), R.getString("key", ""));
}

//===----------------------------------------------------------------------===//
// Demand strategy (docs/DEMAND.md)
//===----------------------------------------------------------------------===//

TEST(ServerTest, DemandStrategyAnswersFromPrunedRun) {
  ServerFixture F;
  const char *Src = "\"int main(void) { int x; int y; int *p; int *q; "
                    "p = &x; q = &y; return *p; }\"";
  // Analyze stores the source; the demand query re-frontends it.
  JsonValue A = F.request("{\"id\":1,\"method\":\"analyze\",\"source\":" +
                          std::string(Src) + "}");
  ASSERT_TRUE(A.getBool("ok", false));

  JsonValue P = F.request("{\"id\":2,\"method\":\"points_to\","
                          "\"name\":\"p\",\"strategy\":\"demand\"}");
  EXPECT_TRUE(P.getBool("ok", false));
  EXPECT_EQ(P.getString("strategy", ""), "demand");
  EXPECT_GT(P.getNumber("visited_stmts", -1), 0);

  // The snapshot path answers the same question identically.
  JsonValue PX = F.request("{\"id\":3,\"method\":\"points_to\","
                           "\"name\":\"p\",\"strategy\":\"exhaustive\"}");
  EXPECT_TRUE(PX.getBool("ok", false));
  EXPECT_EQ(PX.getString("strategy", ""), "exhaustive");

  JsonValue AL = F.request("{\"id\":4,\"method\":\"alias\",\"a\":\"*p\","
                           "\"b\":\"*q\",\"strategy\":\"demand\"}");
  EXPECT_TRUE(AL.getBool("ok", false));
  EXPECT_EQ(AL.getString("strategy", ""), "demand");
  EXPECT_FALSE(AL.getBool("aliased", true));

  auto Counters = F.S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["demand.queries"], 2u);
  EXPECT_EQ(Counters["demand.answered"], 2u);
  EXPECT_EQ(Counters["demand.fallbacks"], 0u);
}

TEST(ServerTest, DemandStrategyTakesInlineSourceOrCorpus) {
  ServerFixture F;
  // No prior analyze: the query must carry its own program.
  JsonValue P = F.request(
      "{\"id\":1,\"method\":\"points_to\",\"name\":\"p\","
      "\"strategy\":\"demand\",\"source\":\"int main(void) "
      "{ int x; int *p; p = &x; return 0; }\"}");
  EXPECT_TRUE(P.getBool("ok", false));
  EXPECT_EQ(P.getString("strategy", ""), "demand");

  JsonValue NoSrc = F.request("{\"id\":2,\"method\":\"alias\",\"a\":\"p\","
                              "\"b\":\"q\",\"strategy\":\"demand\"}");
  EXPECT_FALSE(NoSrc.getBool("ok", true));
  EXPECT_NE(NoSrc.getString("error", "").find("source"), std::string::npos);

  JsonValue BadCorpus =
      F.request("{\"id\":3,\"method\":\"points_to\",\"name\":\"p\","
                "\"strategy\":\"demand\",\"corpus\":\"nosuch\"}");
  EXPECT_FALSE(BadCorpus.getBool("ok", true));
}

TEST(ServerTest, DemandFallbackCarriesReason) {
  ServerFixture F;
  // A function-pointer program gates every demand query; the response
  // still answers (exhaustive fallback) and says why.
  JsonValue P = F.request(
      "{\"id\":1,\"method\":\"points_to\",\"name\":\"fp\","
      "\"strategy\":\"demand\",\"source\":\"int id(int a) { return a; } "
      "int main(void) { int (*fp)(int); int r; fp = &id; "
      "r = (*fp)(1); return r; }\"}");
  EXPECT_TRUE(P.getBool("ok", false));
  EXPECT_EQ(P.getString("strategy", ""), "exhaustive");
  EXPECT_EQ(P.getString("fallback_reason", ""), "fnptr");
  auto Counters = F.S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["demand.fallbacks"], 1u);
  EXPECT_EQ(Counters["demand.fallback.fnptr"], 1u);
}

TEST(ServerTest, UnknownStrategyIsAProtocolError) {
  ServerFixture F;
  JsonValue R = F.request("{\"id\":1,\"method\":\"alias\",\"a\":\"p\","
                          "\"b\":\"q\",\"strategy\":\"psychic\"}");
  EXPECT_FALSE(R.getBool("ok", true));
  EXPECT_NE(R.getString("error", "").find("strategy"), std::string::npos);
}

TEST(ServerTest, TightenedAdmissionAutoPicksDemand) {
  TempCacheDir Dir("autodemand");
  Server::Config Cfg;
  Cfg.Cache.Dir = Dir.Path;
  Server S(Cfg);
  std::ostringstream Log;
  bool Shut = false;
  JsonValue An = parseResponse(S.handleLine(
      "{\"id\":1,\"method\":\"analyze\",\"source\":"
      "\"int main(void) { int x; int *p; p = &x; return 0; }\"}",
      Shut, Log));
  ASSERT_TRUE(An.getBool("ok", false));

  // Queue at 50% of capacity: ladder level 1, and the un-pinned query
  // routes through the demand engine automatically.
  Server::Admission Busy;
  Busy.QueueDepth = 4;
  Busy.QueueCap = 8;
  JsonValue R = parseResponse(
      S.handleLine("{\"id\":2,\"method\":\"points_to\",\"name\":\"p\"}",
                   Shut, Log, Busy));
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_EQ(R.getString("strategy", ""), "demand");
  auto Counters = S.telemetry().countersSnapshot();
  EXPECT_EQ(Counters["demand.auto_picked"], 1u);

  // An idle queue keeps the classic snapshot path (no strategy member).
  JsonValue Idle = parseResponse(
      S.handleLine("{\"id\":3,\"method\":\"points_to\",\"name\":\"p\"}",
                   Shut, Log));
  EXPECT_TRUE(Idle.getBool("ok", false));
  EXPECT_EQ(Idle.getString("strategy", ""), "");
  EXPECT_TRUE(Idle.getBool("cached", false));

  // Pinning a snapshot key opts out of the auto pick even under load.
  JsonValue Pinned = parseResponse(S.handleLine(
      "{\"id\":4,\"method\":\"points_to\",\"name\":\"p\",\"key\":\"" +
          An.getString("key", "") + "\"}",
      Shut, Log, Busy));
  EXPECT_TRUE(Pinned.getBool("ok", false));
  EXPECT_EQ(Pinned.getString("strategy", ""), "");
  EXPECT_TRUE(Pinned.getBool("cached", false));
}

TEST(ServerTest, InvalidateClearsTheDemandSource) {
  ServerFixture F;
  F.request("{\"id\":1,\"method\":\"analyze\",\"source\":"
            "\"int main(void) { int x; int *p; p = &x; return 0; }\"}");
  F.request("{\"id\":2,\"method\":\"invalidate\"}");
  JsonValue R = F.request("{\"id\":3,\"method\":\"points_to\","
                          "\"name\":\"p\",\"strategy\":\"demand\"}");
  EXPECT_FALSE(R.getBool("ok", true));
  EXPECT_NE(R.getString("error", "").find("source"), std::string::npos);
}

TEST(ServerTest, DegradationWarningsAreDeduplicated) {
  ServerFixture F;
  // Two analyses degrading the same way: the log gets one warning line
  // per (kind, context), not one per request.
  F.request("{\"id\":1,\"method\":\"analyze\",\"corpus\":\"hash\","
            "\"limits\":{\"max_ig_nodes\":2}}");
  std::string After1 = F.Log.str();
  EXPECT_NE(After1.find("degraded"), std::string::npos);

  F.request("{\"id\":2,\"method\":\"analyze\",\"corpus\":\"hash\","
            "\"limits\":{\"max_ig_nodes\":2}}"); // cached: no new analysis
  F.request("{\"id\":3,\"method\":\"invalidate\"}");
  F.request("{\"id\":4,\"method\":\"analyze\",\"corpus\":\"hash\","
            "\"limits\":{\"max_ig_nodes\":2}}"); // re-analyzed, same degradations
  EXPECT_EQ(F.Log.str(), After1)
      << "repeated identical degradations must not re-log";
}

} // namespace
