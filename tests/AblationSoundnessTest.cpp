//===- AblationSoundnessTest.cpp - baselines must stay safe --------------------===//
//
// The ablation variants trade precision, never safety: the merged
// summary (context-insensitive) analysis and the naive function-pointer
// instantiation strategies must still satisfy Definition 3.3 on real
// executions. Same oracle as SoundnessPropertyTest, different analyzer
// options.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "interp/Interpreter.h"

using namespace mcpta;
using namespace mcpta::interp;

namespace {

void expectSoundWith(const std::string &Src, const std::string &Label,
                     const pta::Analyzer::Options &Opts) {
  Pipeline P = Pipeline::analyzeSource(Src, Opts);
  ASSERT_FALSE(P.Diags.hasErrors()) << Label << ": " << P.Diags.dump();
  ASSERT_TRUE(P.Analysis.Analyzed) << Label;
  InterpOptions IOpts;
  IOpts.MaxSteps = 2000000;
  RunResult R = runAndCheck(*P.Prog, P.Analysis, IOpts);
  EXPECT_TRUE(R.Error.empty()) << Label << ": " << R.Error;
  for (size_t I = 0; I < R.Violations.size() && I < 5; ++I)
    ADD_FAILURE() << Label << ": " << R.Violations[I];
}

TEST(AblationSoundnessTest, ContextInsensitiveCorpus) {
  pta::Analyzer::Options Opts;
  Opts.ContextSensitive = false;
  for (const auto &CP : corpus::corpus())
    expectSoundWith(CP.Source, std::string("CI/") + CP.Name, Opts);
}

TEST(AblationSoundnessTest, AddressTakenModeOnFnPtrPrograms) {
  pta::Analyzer::Options Opts;
  Opts.FnPtr = pta::FnPtrMode::AddressTaken;
  expectSoundWith(corpus::find("toplev")->Source, "AT/toplev", Opts);
  expectSoundWith(corpus::find("config")->Source, "AT/config", Opts);
}

TEST(AblationSoundnessTest, TightKLimitStaysSound) {
  // An aggressive k-limit collapses symbolic chains early; results get
  // coarser but must stay safe.
  pta::Analyzer::Options Opts;
  Opts.SymbolicLevelLimit = 1;
  for (const char *Name : {"dry", "xref", "hash", "stanford"})
    expectSoundWith(corpus::find(Name)->Source,
                    std::string("K1/") + Name, Opts);
}

} // namespace
