//===- PointsToSetTest.cpp - lattice unit tests --------------------------------===//
//
// Unit and property tests for the points-to set lattice operations
// (merge, subset, kill, demote) — DESIGN.md property P4.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pointsto/PointsToSet.h"
#include "wlgen/WorkloadGen.h"

#include <gtest/gtest.h>

#include <map>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::cfront;

namespace {

/// Fixture providing a handful of variable locations.
class PointsToSetTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (int I = 0; I < 6; ++I) {
      auto VD = std::make_unique<VarDecl>(
          "v" + std::to_string(I), SourceLoc(), nullptr,
          VarDecl::Storage::Global);
      L[I] = Locs.varLoc(VD.get());
      Vars.push_back(std::move(VD));
    }
  }

  LocationTable Locs;
  std::vector<std::unique_ptr<VarDecl>> Vars;
  const Location *L[6];
};

TEST_F(PointsToSetTest, InsertAndLookup) {
  PointsToSet S;
  EXPECT_TRUE(S.insert(L[0], L[1], Def::D));
  EXPECT_FALSE(S.insert(L[0], L[1], Def::D)) << "re-insert is a no-op";
  ASSERT_TRUE(S.lookup(L[0], L[1]).has_value());
  EXPECT_EQ(*S.lookup(L[0], L[1]), Def::D);
  EXPECT_FALSE(S.lookup(L[1], L[0]).has_value());
}

TEST_F(PointsToSetTest, ConflictingDefinitenessWeakens) {
  PointsToSet S;
  S.insert(L[0], L[1], Def::D);
  S.insert(L[0], L[1], Def::P);
  EXPECT_EQ(*S.lookup(L[0], L[1]), Def::P);

  PointsToSet T;
  T.insert(L[0], L[1], Def::P);
  T.insert(L[0], L[1], Def::D);
  EXPECT_EQ(*T.lookup(L[0], L[1]), Def::P) << "P is sticky";
}

TEST_F(PointsToSetTest, KillRemovesAllFromSource) {
  PointsToSet S;
  S.insert(L[0], L[1], Def::P);
  S.insert(L[0], L[2], Def::P);
  S.insert(L[3], L[1], Def::D);
  EXPECT_TRUE(S.killFrom(L[0]));
  EXPECT_FALSE(S.killFrom(L[0])) << "second kill removes nothing";
  EXPECT_FALSE(S.contains(L[0], L[1]));
  EXPECT_FALSE(S.contains(L[0], L[2]));
  EXPECT_TRUE(S.contains(L[3], L[1])) << "other sources untouched";
}

TEST_F(PointsToSetTest, DemoteWeakensOnlySource) {
  PointsToSet S;
  S.insert(L[0], L[1], Def::D);
  S.insert(L[2], L[3], Def::D);
  S.demoteFrom(L[0]);
  EXPECT_EQ(*S.lookup(L[0], L[1]), Def::P);
  EXPECT_EQ(*S.lookup(L[2], L[3]), Def::D);
}

TEST_F(PointsToSetTest, MergeDefiniteOnlyWhenBothDefinite) {
  PointsToSet A, B;
  A.insert(L[0], L[1], Def::D); // in both as D
  B.insert(L[0], L[1], Def::D);
  A.insert(L[2], L[3], Def::D); // only in A
  B.insert(L[4], L[5], Def::D); // only in B
  A.insert(L[1], L[2], Def::D); // D in A, P in B
  B.insert(L[1], L[2], Def::P);

  A.mergeWith(B);
  EXPECT_EQ(*A.lookup(L[0], L[1]), Def::D);
  EXPECT_EQ(*A.lookup(L[2], L[3]), Def::P);
  EXPECT_EQ(*A.lookup(L[4], L[5]), Def::P);
  EXPECT_EQ(*A.lookup(L[1], L[2]), Def::P);
}

TEST_F(PointsToSetTest, MergeIsIdempotent) {
  PointsToSet A;
  A.insert(L[0], L[1], Def::D);
  A.insert(L[2], L[3], Def::P);
  PointsToSet B = A;
  A.mergeWith(B);
  EXPECT_EQ(A, B);
}

TEST_F(PointsToSetTest, MergeIsCommutative) {
  PointsToSet A, B;
  A.insert(L[0], L[1], Def::D);
  A.insert(L[1], L[2], Def::P);
  B.insert(L[0], L[1], Def::P);
  B.insert(L[3], L[4], Def::D);

  PointsToSet AB = A;
  AB.mergeWith(B);
  PointsToSet BA = B;
  BA.mergeWith(A);
  EXPECT_EQ(AB, BA);
}

TEST_F(PointsToSetTest, MergeIsAssociative) {
  PointsToSet A, B, C;
  A.insert(L[0], L[1], Def::D);
  B.insert(L[0], L[1], Def::D);
  B.insert(L[1], L[2], Def::D);
  C.insert(L[2], L[3], Def::P);

  PointsToSet AB_C = A;
  AB_C.mergeWith(B);
  AB_C.mergeWith(C);

  PointsToSet BC = B;
  BC.mergeWith(C);
  PointsToSet A_BC = A;
  A_BC.mergeWith(BC);

  EXPECT_EQ(AB_C, A_BC);
}

TEST_F(PointsToSetTest, SubsetSemantics) {
  PointsToSet Small, Big;
  Small.insert(L[0], L[1], Def::D);
  Big.insert(L[0], L[1], Def::P);
  Big.insert(L[2], L[3], Def::P);

  // D pair covered by the same pair as P.
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));

  // A possible pair is NOT covered by a definite pair.
  PointsToSet PossOnly, DefOnly;
  PossOnly.insert(L[0], L[1], Def::P);
  DefOnly.insert(L[0], L[1], Def::D);
  EXPECT_FALSE(PossOnly.subsetOf(DefOnly));
  EXPECT_TRUE(DefOnly.subsetOf(PossOnly));
}

TEST_F(PointsToSetTest, MergeUpperBounds) {
  // Merge produces an upper bound of both operands.
  PointsToSet A, B;
  A.insert(L[0], L[1], Def::D);
  A.insert(L[1], L[2], Def::P);
  B.insert(L[0], L[1], Def::P);
  B.insert(L[4], L[5], Def::D);
  PointsToSet M = A;
  M.mergeWith(B);
  EXPECT_TRUE(A.subsetOf(M));
  EXPECT_TRUE(B.subsetOf(M));
}

TEST_F(PointsToSetTest, TargetsOfSortedByLocationId) {
  PointsToSet S;
  S.insert(L[0], L[3], Def::P);
  S.insert(L[0], L[1], Def::D);
  S.insert(L[0], L[2], Def::P);
  auto Ts = S.targetsOf(L[0], Locs);
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Loc, L[1]);
  EXPECT_EQ(Ts[1].Loc, L[2]);
  EXPECT_EQ(Ts[2].Loc, L[3]);
}

TEST_F(PointsToSetTest, StrIsSortedAndStable) {
  PointsToSet S;
  S.insert(L[2], L[0], Def::P);
  S.insert(L[0], L[1], Def::D);
  EXPECT_EQ(S.str(Locs), "(v0,v1,D) (v2,v0,P)");
}

//===----------------------------------------------------------------------===//
// Randomized equivalence: flat representation vs naive reference
//===----------------------------------------------------------------------===//

/// Reference implementation: the ordered-map representation the flat
/// vector replaced, with every operation spelled directly from the
/// paper's definitions. The flat set must agree with it on every
/// operation's result AND return value.
struct NaiveSet {
  std::map<PointsToSet::PairKey, Def> M;

  bool insert(PointsToSet::PairKey K, Def D) {
    auto [It, New] = M.emplace(K, D);
    if (New)
      return true;
    Def Weakened = meet(It->second, D);
    bool Changed = Weakened != It->second;
    It->second = Weakened;
    return Changed;
  }
  bool killFrom(LocationId Src) {
    bool Any = false;
    for (auto It = M.begin(); It != M.end();)
      if (static_cast<LocationId>(It->first >> 32) == Src) {
        It = M.erase(It);
        Any = true;
      } else
        ++It;
    return Any;
  }
  void demoteFrom(LocationId Src) {
    for (auto &[K, D] : M)
      if (static_cast<LocationId>(K >> 32) == Src)
        D = Def::P;
  }
  bool mergeWith(const NaiveSet &O) {
    std::map<PointsToSet::PairKey, Def> Out;
    for (const auto &[K, D] : M) {
      auto It = O.M.find(K);
      Out[K] = It == O.M.end() ? Def::P : meet(D, It->second);
    }
    for (const auto &[K, D] : O.M)
      if (!M.count(K))
        Out[K] = Def::P;
    bool Changed = Out != M;
    M = std::move(Out);
    return Changed;
  }
  bool subsetOf(const NaiveSet &O) const {
    for (const auto &[K, D] : M) {
      auto It = O.M.find(K);
      if (It == O.M.end() || (D == Def::P && It->second == Def::D))
        return false;
    }
    return true;
  }
};

/// Deterministic 64-bit LCG; the test is reproducible per seed.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed * 2862933555777941757ULL + 1) {}
  uint32_t next(uint32_t Bound) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((State >> 33) % Bound);
  }
};

std::vector<PointsToSet::Entry> entriesOf(const PointsToSet &S) {
  return {S.entries(), S.entries() + S.size()};
}

std::vector<PointsToSet::Entry> entriesOf(const NaiveSet &S) {
  std::vector<PointsToSet::Entry> Out;
  for (const auto &[K, D] : S.M)
    Out.push_back({K, D});
  return Out;
}

TEST_F(PointsToSetTest, RandomizedOpsMatchNaiveReference) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Rng R(Seed);
    PointsToSet Flat, FlatB;
    NaiveSet Ref, RefB;
    for (int Op = 0; Op < 300; ++Op) {
      LocationId S = L[R.next(6)]->id();
      LocationId D = L[R.next(6)]->id();
      PointsToSet::PairKey K = PointsToSet::keyIds(S, D);
      Def Dd = R.next(2) ? Def::D : Def::P;
      switch (R.next(8)) {
      case 0:
      case 1:
      case 2: // bias toward growth so kills have something to do
        EXPECT_EQ(Flat.insertKey(K, Dd), Ref.insert(K, Dd));
        break;
      case 3:
        EXPECT_EQ(Flat.killFrom(Locs.byId(S)), Ref.killFrom(S));
        break;
      case 4:
        Flat.demoteFrom(Locs.byId(S));
        Ref.demoteFrom(S);
        break;
      case 5: // batch kill/demote over a random sorted id subset
      {
        std::vector<LocationId> Ids;
        for (int I = 0; I < 6; ++I)
          if (R.next(3) == 0)
            Ids.push_back(L[I]->id());
        std::sort(Ids.begin(), Ids.end());
        if (R.next(2)) {
          bool Changed = false;
          NaiveSet Before = Ref;
          for (LocationId Id : Ids)
            Changed |= Ref.killFrom(Id);
          EXPECT_EQ(Flat.killFromAll(Ids), Changed);
          (void)Before;
        } else {
          Flat.demoteFromAll(Ids);
          for (LocationId Id : Ids)
            Ref.demoteFrom(Id);
        }
        break;
      }
      case 6:
        EXPECT_EQ(Flat.insertKey(K, Dd), Ref.insert(K, Dd));
        FlatB.insertKey(K, Dd);
        RefB.insert(K, Dd);
        break;
      case 7:
        EXPECT_EQ(Flat.mergeWith(FlatB), Ref.mergeWith(RefB));
        break;
      }
      ASSERT_EQ(entriesOf(Flat), entriesOf(Ref))
          << "seed " << Seed << " op " << Op;
      EXPECT_EQ(Flat.subsetOf(FlatB), Ref.subsetOf(RefB));
      EXPECT_EQ(FlatB.subsetOf(Flat), RefB.subsetOf(Ref));
    }
  }
}

TEST_F(PointsToSetTest, RandomizedMergeAllMatchesSequentialFold) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng R(Seed);
    std::vector<PointsToSet> Sets(2 + R.next(4));
    for (PointsToSet &S : Sets)
      for (uint32_t I = 0, N = R.next(12); I < N; ++I)
        S.insertKey(PointsToSet::keyIds(L[R.next(6)]->id(), L[R.next(6)]->id()),
                    R.next(2) ? Def::D : Def::P);

    std::vector<const PointsToSet *> Ptrs;
    for (const PointsToSet &S : Sets)
      Ptrs.push_back(&S);
    PointsToSet KWay = PointsToSet::mergeAll(Ptrs);

    PointsToSet Fold = Sets[0];
    for (size_t I = 1; I < Sets.size(); ++I)
      Fold.mergeWith(Sets[I]);
    EXPECT_EQ(entriesOf(KWay), entriesOf(Fold)) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// wlgen-driven lattice laws on real analysis sets
//===----------------------------------------------------------------------===//

/// Harvests every points-to set a real analysis run materializes:
/// per-statement inputs, memoized IG inputs/outputs, and main's output.
std::vector<PointsToSet> harvestSets(const Pipeline &P) {
  std::vector<PointsToSet> Out;
  for (const auto &S : P.Analysis.StmtIn)
    if (S && !S->empty())
      Out.push_back(*S);
  P.Analysis.IG->forEachNode([&](const IGNode *N) {
    if (N->StoredInput && !N->StoredInput->empty())
      Out.push_back(*N->StoredInput);
    if (N->StoredOutput && !N->StoredOutput->empty())
      Out.push_back(*N->StoredOutput);
  });
  if (P.Analysis.MainOut)
    Out.push_back(*P.Analysis.MainOut);
  return Out;
}

TEST(PointsToSetLawsTest, WlgenProgramsObeyLatticeLaws) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    wlgen::GenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumFunctions = 5;
    Cfg.StmtsPerFunction = 8;
    Cfg.UseFunctionPointers = Seed % 2 == 0;
    auto P = testutil::analyze(wlgen::generateProgram(Cfg));
    ASSERT_TRUE(P.Analysis.Analyzed) << "seed " << Seed;
    std::vector<PointsToSet> Sets = harvestSets(P);
    ASSERT_GE(Sets.size(), 3u) << "seed " << Seed;

    Rng R(Seed);
    for (int Round = 0; Round < 40; ++Round) {
      const PointsToSet &A = Sets[R.next(static_cast<uint32_t>(Sets.size()))];
      const PointsToSet &B = Sets[R.next(static_cast<uint32_t>(Sets.size()))];
      const PointsToSet &C = Sets[R.next(static_cast<uint32_t>(Sets.size()))];

      // Idempotent: A ∪ A = A.
      PointsToSet AA = A;
      AA.mergeWith(A);
      EXPECT_EQ(AA, A);

      // Commutative: A ∪ B = B ∪ A.
      PointsToSet AB = A, BA = B;
      AB.mergeWith(B);
      BA.mergeWith(A);
      EXPECT_EQ(AB, BA);

      // Associative: (A ∪ B) ∪ C = A ∪ (B ∪ C).
      PointsToSet AB_C = AB, BC = B;
      AB_C.mergeWith(C);
      BC.mergeWith(C);
      PointsToSet A_BC = A;
      A_BC.mergeWith(BC);
      EXPECT_EQ(AB_C, A_BC);

      // subsetOf is a partial order over merge results: reflexive,
      // both operands below the join, and transitive up a join chain.
      EXPECT_TRUE(A.subsetOf(A));
      EXPECT_TRUE(A.subsetOf(AB));
      EXPECT_TRUE(B.subsetOf(AB));
      EXPECT_TRUE(A.subsetOf(AB_C)) << "transitivity through A ∪ B";
      if (AB.subsetOf(A))
        EXPECT_EQ(AB, A) << "antisymmetry";

      // Definition 3.3: a pair is definite in the merge iff present and
      // definite in BOTH operands; pairs of one operand only are
      // possible.
      size_t IA = 0, NA = A.size();
      const PointsToSet::Entry *EA = A.entries();
      for (size_t I = 0, N = AB.size(); I < N; ++I) {
        const PointsToSet::Entry &E = AB.entries()[I];
        while (IA < NA && EA[IA].K < E.K)
          ++IA;
        bool InA = IA < NA && EA[IA].K == E.K;
        const Def *InB = nullptr;
        for (size_t J = 0, M = B.size(); J < M; ++J)
          if (B.entries()[J].K == E.K) {
            InB = &B.entries()[J].D;
            break;
          }
        ASSERT_TRUE(InA || InB);
        Def Expect = (InA && InB) ? meet(EA[IA].D, *InB) : Def::P;
        EXPECT_EQ(E.D, Expect) << "D-in-both-stays-D (Def. 3.3)";
      }

      // mergeAll(A, B, C) = fold of pairwise merges.
      PointsToSet KWay = PointsToSet::mergeAll({&A, &B, &C});
      PointsToSet Fold = AB_C;
      EXPECT_EQ(KWay, Fold);
    }
  }
}

} // namespace
