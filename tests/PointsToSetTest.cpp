//===- PointsToSetTest.cpp - lattice unit tests --------------------------------===//
//
// Unit and property tests for the points-to set lattice operations
// (merge, subset, kill, demote) — DESIGN.md property P4.
//
//===----------------------------------------------------------------------===//

#include "pointsto/PointsToSet.h"

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::cfront;

namespace {

/// Fixture providing a handful of variable locations.
class PointsToSetTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (int I = 0; I < 6; ++I) {
      auto VD = std::make_unique<VarDecl>(
          "v" + std::to_string(I), SourceLoc(), nullptr,
          VarDecl::Storage::Global);
      L[I] = Locs.varLoc(VD.get());
      Vars.push_back(std::move(VD));
    }
  }

  LocationTable Locs;
  std::vector<std::unique_ptr<VarDecl>> Vars;
  const Location *L[6];
};

TEST_F(PointsToSetTest, InsertAndLookup) {
  PointsToSet S;
  EXPECT_TRUE(S.insert(L[0], L[1], Def::D));
  EXPECT_FALSE(S.insert(L[0], L[1], Def::D)) << "re-insert is a no-op";
  ASSERT_TRUE(S.lookup(L[0], L[1]).has_value());
  EXPECT_EQ(*S.lookup(L[0], L[1]), Def::D);
  EXPECT_FALSE(S.lookup(L[1], L[0]).has_value());
}

TEST_F(PointsToSetTest, ConflictingDefinitenessWeakens) {
  PointsToSet S;
  S.insert(L[0], L[1], Def::D);
  S.insert(L[0], L[1], Def::P);
  EXPECT_EQ(*S.lookup(L[0], L[1]), Def::P);

  PointsToSet T;
  T.insert(L[0], L[1], Def::P);
  T.insert(L[0], L[1], Def::D);
  EXPECT_EQ(*T.lookup(L[0], L[1]), Def::P) << "P is sticky";
}

TEST_F(PointsToSetTest, KillRemovesAllFromSource) {
  PointsToSet S;
  S.insert(L[0], L[1], Def::P);
  S.insert(L[0], L[2], Def::P);
  S.insert(L[3], L[1], Def::D);
  EXPECT_TRUE(S.killFrom(L[0]));
  EXPECT_FALSE(S.killFrom(L[0])) << "second kill removes nothing";
  EXPECT_FALSE(S.contains(L[0], L[1]));
  EXPECT_FALSE(S.contains(L[0], L[2]));
  EXPECT_TRUE(S.contains(L[3], L[1])) << "other sources untouched";
}

TEST_F(PointsToSetTest, DemoteWeakensOnlySource) {
  PointsToSet S;
  S.insert(L[0], L[1], Def::D);
  S.insert(L[2], L[3], Def::D);
  S.demoteFrom(L[0]);
  EXPECT_EQ(*S.lookup(L[0], L[1]), Def::P);
  EXPECT_EQ(*S.lookup(L[2], L[3]), Def::D);
}

TEST_F(PointsToSetTest, MergeDefiniteOnlyWhenBothDefinite) {
  PointsToSet A, B;
  A.insert(L[0], L[1], Def::D); // in both as D
  B.insert(L[0], L[1], Def::D);
  A.insert(L[2], L[3], Def::D); // only in A
  B.insert(L[4], L[5], Def::D); // only in B
  A.insert(L[1], L[2], Def::D); // D in A, P in B
  B.insert(L[1], L[2], Def::P);

  A.mergeWith(B);
  EXPECT_EQ(*A.lookup(L[0], L[1]), Def::D);
  EXPECT_EQ(*A.lookup(L[2], L[3]), Def::P);
  EXPECT_EQ(*A.lookup(L[4], L[5]), Def::P);
  EXPECT_EQ(*A.lookup(L[1], L[2]), Def::P);
}

TEST_F(PointsToSetTest, MergeIsIdempotent) {
  PointsToSet A;
  A.insert(L[0], L[1], Def::D);
  A.insert(L[2], L[3], Def::P);
  PointsToSet B = A;
  A.mergeWith(B);
  EXPECT_EQ(A, B);
}

TEST_F(PointsToSetTest, MergeIsCommutative) {
  PointsToSet A, B;
  A.insert(L[0], L[1], Def::D);
  A.insert(L[1], L[2], Def::P);
  B.insert(L[0], L[1], Def::P);
  B.insert(L[3], L[4], Def::D);

  PointsToSet AB = A;
  AB.mergeWith(B);
  PointsToSet BA = B;
  BA.mergeWith(A);
  EXPECT_EQ(AB, BA);
}

TEST_F(PointsToSetTest, MergeIsAssociative) {
  PointsToSet A, B, C;
  A.insert(L[0], L[1], Def::D);
  B.insert(L[0], L[1], Def::D);
  B.insert(L[1], L[2], Def::D);
  C.insert(L[2], L[3], Def::P);

  PointsToSet AB_C = A;
  AB_C.mergeWith(B);
  AB_C.mergeWith(C);

  PointsToSet BC = B;
  BC.mergeWith(C);
  PointsToSet A_BC = A;
  A_BC.mergeWith(BC);

  EXPECT_EQ(AB_C, A_BC);
}

TEST_F(PointsToSetTest, SubsetSemantics) {
  PointsToSet Small, Big;
  Small.insert(L[0], L[1], Def::D);
  Big.insert(L[0], L[1], Def::P);
  Big.insert(L[2], L[3], Def::P);

  // D pair covered by the same pair as P.
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));

  // A possible pair is NOT covered by a definite pair.
  PointsToSet PossOnly, DefOnly;
  PossOnly.insert(L[0], L[1], Def::P);
  DefOnly.insert(L[0], L[1], Def::D);
  EXPECT_FALSE(PossOnly.subsetOf(DefOnly));
  EXPECT_TRUE(DefOnly.subsetOf(PossOnly));
}

TEST_F(PointsToSetTest, MergeUpperBounds) {
  // Merge produces an upper bound of both operands.
  PointsToSet A, B;
  A.insert(L[0], L[1], Def::D);
  A.insert(L[1], L[2], Def::P);
  B.insert(L[0], L[1], Def::P);
  B.insert(L[4], L[5], Def::D);
  PointsToSet M = A;
  M.mergeWith(B);
  EXPECT_TRUE(A.subsetOf(M));
  EXPECT_TRUE(B.subsetOf(M));
}

TEST_F(PointsToSetTest, TargetsOfSortedByLocationId) {
  PointsToSet S;
  S.insert(L[0], L[3], Def::P);
  S.insert(L[0], L[1], Def::D);
  S.insert(L[0], L[2], Def::P);
  auto Ts = S.targetsOf(L[0], Locs);
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Loc, L[1]);
  EXPECT_EQ(Ts[1].Loc, L[2]);
  EXPECT_EQ(Ts[2].Loc, L[3]);
}

TEST_F(PointsToSetTest, StrIsSortedAndStable) {
  PointsToSet S;
  S.insert(L[2], L[0], Def::P);
  S.insert(L[0], L[1], Def::D);
  EXPECT_EQ(S.str(Locs), "(v0,v1,D) (v2,v0,P)");
}

} // namespace
