//===- AliasPairsTest.cpp - Sec. 7.1 / Figures 8 & 9 tests ---------------------===//

#include "TestUtil.h"

#include "clients/AliasPairs.h"

using namespace mcpta;
using namespace mcpta::testutil;
using namespace mcpta::clients;

namespace {

std::set<std::pair<std::string, std::string>> pairsAtEnd(const Pipeline &P) {
  return aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 2);
}

TEST(AliasPairsTest, SimplePointsToImpliesAlias) {
  auto P = analyze("int main(void){ int y; int *x; x = &y; return 0; }");
  auto Pairs = pairsAtEnd(P);
  EXPECT_TRUE(hasAlias(Pairs, "*x", "y"));
}

TEST(AliasPairsTest, PaperFigure8NoSpuriousPair) {
  // Figure 8: x = &y; y = &z; y = &w.
  // At S3 the points-to set is (x,y,D),(y,w,D); the alias pairs are
  // (*x,y), (*y,w), (**x,*y), (**x,w) — and crucially NOT (**x,z),
  // the spurious pair the Landi/Ryder representation reports.
  auto P = analyze(R"(
    int main(void) {
      int **x; int *y; int z; int w;
      x = &y;   /* S1 */
      y = &z;   /* S2 */
      y = &w;   /* S3 */
      return 0;
    })");
  auto Pairs = pairsAtEnd(P);
  EXPECT_TRUE(hasAlias(Pairs, "*x", "y"));
  EXPECT_TRUE(hasAlias(Pairs, "*y", "w"));
  EXPECT_TRUE(hasAlias(Pairs, "**x", "*y"));
  EXPECT_TRUE(hasAlias(Pairs, "**x", "w"));
  EXPECT_FALSE(hasAlias(Pairs, "**x", "z"))
      << "the kill at S3 removes the z alias";
}

TEST(AliasPairsTest, PaperFigure9TransitiveClosureArtifact) {
  // Figure 9: branches assign a = &b and b = &c; at S3 the points-to
  // set is (a,b,P),(b,c,P) and the closure reports the spurious
  // (**a,c) — the case where alias pairs are more precise than the
  // points-to abstraction. We document the artifact by asserting it.
  auto P = analyze(R"(
    int main(void) {
      int **a; int *b; int c;
      if (c)
        a = &b;   /* S1 */
      else
        b = &c;   /* S2 */
      /* S3 */
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "a", "b", 'P')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "b", "c", 'P')) << mainOut(P);
  auto Pairs = pairsAtEnd(P);
  EXPECT_TRUE(hasAlias(Pairs, "*a", "b"));
  EXPECT_TRUE(hasAlias(Pairs, "*b", "c"));
  EXPECT_TRUE(hasAlias(Pairs, "**a", "c"))
      << "expected closure artifact of the points-to abstraction";
}

TEST(AliasPairsTest, DepthLimitRespected) {
  auto P = analyze(R"(
    int main(void) {
      int ***t; int **x; int *y; int z;
      y = &z; x = &y; t = &x;
      return 0;
    })");
  auto Depth1 = aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 1);
  EXPECT_TRUE(hasAlias(Depth1, "*t", "x"));
  EXPECT_FALSE(hasAlias(Depth1, "**t", "y"));
  auto Depth2 = aliasPairs(*P.Analysis.MainOut, *P.Analysis.Locs, 2);
  EXPECT_TRUE(hasAlias(Depth2, "**t", "y"));
}

TEST(AliasPairsTest, NoAliasBetweenUnrelated) {
  auto P = analyze("int main(void){ int a; int b; int *p; int *q; "
                   "p = &a; q = &b; return 0; }");
  auto Pairs = pairsAtEnd(P);
  EXPECT_FALSE(hasAlias(Pairs, "*p", "*q"));
  EXPECT_TRUE(hasAlias(Pairs, "*p", "a"));
  EXPECT_TRUE(hasAlias(Pairs, "*q", "b"));
}

TEST(AliasPairsTest, SharedTargetAliasesThroughBothPointers) {
  auto P = analyze("int main(void){ int a; int *p; int *q; "
                   "p = &a; q = &a; return 0; }");
  auto Pairs = pairsAtEnd(P);
  EXPECT_TRUE(hasAlias(Pairs, "*p", "*q"));
}

} // namespace
