//===- DemandTest.cpp - demand-driven query engine -----------------------------===//
//
// The demand engine's contracts (demand/DemandQuery.h, docs/DEMAND.md):
//
//  - Exactness: every alias / points_to answer the engine produces by
//    the pruned "demand" strategy is byte-equal to the exhaustive
//    answer (targets in the same canonical order, same definite/
//    possible classification) — across the whole embedded corpus and
//    randomized wlgen query workloads.
//  - Fallbacks are never silent: a query the engine does not answer by
//    the pruned run carries a recorded FallbackReason, and the fallback
//    answer (from the exhaustive run) is still correct.
//  - The gates fire for exactly the envelope described in the header:
//    no-main, options, fnptr, recursion, stmt-scope, unresolved-name,
//    ambiguous-name, not-main-scope.
//  - Pruning is real: on the incrstress corpus program a query about
//    main's locals visits a small constant number of statements while
//    the exhaustive run visits over a million.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "demand/DemandQuery.h"
#include "driver/Pipeline.h"
#include "wlgen/WorkloadGen.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace mcpta;
using namespace mcpta::demand;

namespace {

/// Frontend + engine bundle keeping the Pipeline alive for the
/// engine's lifetime.
struct EngineFixture {
  Pipeline FE;
  std::unique_ptr<DemandEngine> Engine;

  explicit EngineFixture(const std::string &Source, DemandOptions DO = {})
      : FE(Pipeline::frontend(Source)) {
    EXPECT_TRUE(FE.Prog != nullptr) << FE.Diags.dump();
    if (FE.Prog)
      Engine = std::make_unique<DemandEngine>(*FE.Prog, DO);
  }
};

/// Runs one query and checks it against the engine's exhaustive
/// snapshot: demand answers must be byte-equal, fallbacks must carry a
/// reason. Returns the answer for further assertions.
Answer checkEquivalent(DemandEngine &E, const Query &Q,
                       const std::string &Tag) {
  Answer A = E.query(Q);
  const serve::ResultSnapshot &S = E.exhaustiveSnapshot();
  if (!A.Ok) {
    // The only unanswered case with the exhaustive fallback enabled:
    // the location is unknown to the exhaustive result too.
    EXPECT_FALSE(A.Error.empty()) << Tag;
    if (Q.K == Query::Kind::PointsTo)
      EXPECT_LT(S.locationIdByName(Q.Name), 0) << Tag;
    return A;
  }
  if (A.Strategy != "demand") {
    EXPECT_EQ(A.Strategy, "exhaustive") << Tag;
    EXPECT_FALSE(A.FallbackReason.empty())
        << Tag << ": fallback without a recorded reason";
  }
  if (Q.K == Query::Kind::Alias) {
    EXPECT_EQ(A.Aliased, S.aliased(Q.A, Q.B))
        << Tag << ": alias(" << Q.A << ", " << Q.B << ") strategy "
        << A.Strategy;
  } else {
    EXPECT_EQ(A.Targets, S.pointsToTargets(Q.Name, Q.StmtId))
        << Tag << ": points_to(" << Q.Name << ") strategy " << A.Strategy;
  }
  return A;
}

/// Names worth querying in a program: globals first, then main's
/// params and declared locals (simplifier temporaries excluded — their
/// dotted names never resolve), capped so the corpus sweep stays fast.
std::vector<std::string> queryNames(const simple::Program &Prog,
                                    size_t Cap) {
  std::vector<std::string> Names;
  std::set<std::string> Seen;
  auto Add = [&](const std::string &N) {
    if (Names.size() < Cap && !N.empty() && N[0] != '.' &&
        Seen.insert(N).second)
      Names.push_back(N);
  };
  for (const cfront::VarDecl *G : Prog.globals())
    Add(G->name());
  for (const simple::FunctionIR &F : Prog.functions()) {
    if (!F.Decl || F.Decl->name() != "main")
      continue;
    for (const cfront::VarDecl *P : F.Decl->params())
      Add(P->name());
    for (const cfront::VarDecl *L : F.Locals)
      Add(L->name());
  }
  return Names;
}

//===----------------------------------------------------------------------===//
// parseAliasExpr
//===----------------------------------------------------------------------===//

TEST(ParseAliasExprTest, StarsAndIdentifiers) {
  EXPECT_EQ(parseAliasExpr("p"), std::make_pair(0, std::string("p")));
  EXPECT_EQ(parseAliasExpr("*p"), std::make_pair(1, std::string("p")));
  EXPECT_EQ(parseAliasExpr("**q_1"), std::make_pair(2, std::string("q_1")));
  EXPECT_EQ(parseAliasExpr("").first, -1);
  EXPECT_EQ(parseAliasExpr("*").first, -1);
  EXPECT_EQ(parseAliasExpr("p.f").first, -1);
  EXPECT_EQ(parseAliasExpr("p[0]").first, -1);
  EXPECT_EQ(parseAliasExpr("2p").first, -1);
  EXPECT_EQ(parseAliasExpr("* p").first, -1);
}

//===----------------------------------------------------------------------===//
// Gates
//===----------------------------------------------------------------------===//

TEST(DemandGateTest, NoMain) {
  EngineFixture F("int f(void) { return 0; }");
  ASSERT_TRUE(F.Engine);
  EXPECT_EQ(F.Engine->programGate(), "no-main");
  Answer A = F.Engine->query(Query::pointsTo("x"));
  EXPECT_EQ(A.FallbackReason, "no-main");
}

TEST(DemandGateTest, NonDefaultOptionsGate) {
  DemandOptions DO;
  DO.Analyzer.ContextSensitive = false;
  EngineFixture F("int main(void) { int x; int *p; p = &x; return 0; }",
                  DO);
  ASSERT_TRUE(F.Engine);
  EXPECT_EQ(F.Engine->programGate(), "options");
  Answer A = F.Engine->query(Query::pointsTo("p"));
  EXPECT_EQ(A.FallbackReason, "options");
  EXPECT_EQ(A.Strategy, "exhaustive");
  EXPECT_TRUE(A.Ok);
}

TEST(DemandGateTest, FunctionPointerGate) {
  EngineFixture F("int id(int a) { return a; }\n"
                  "int main(void) {\n"
                  "  int (*fp)(int); int r;\n"
                  "  fp = &id; r = (*fp)(1);\n"
                  "  return r;\n"
                  "}\n");
  ASSERT_TRUE(F.Engine);
  EXPECT_EQ(F.Engine->programGate(), "fnptr");
  Answer A = F.Engine->query(Query::pointsTo("fp"));
  EXPECT_EQ(A.FallbackReason, "fnptr");
  checkEquivalent(*F.Engine, Query::pointsTo("fp"), "fnptr-gate");
}

TEST(DemandGateTest, RecursionGate) {
  EngineFixture F("int down(int d) {\n"
                  "  if (d <= 0) return 0;\n"
                  "  return down(d - 1);\n"
                  "}\n"
                  "int main(void) { return down(3); }\n");
  ASSERT_TRUE(F.Engine);
  EXPECT_EQ(F.Engine->programGate(), "recursion");
}

TEST(DemandGateTest, PerQueryGates) {
  EngineFixture F("int g;\n"
                  "int helper(int *a) { int inner; inner = *a; return inner; }\n"
                  "int main(void) {\n"
                  "  int x; int *p; int dup; int r;\n"
                  "  p = &x; dup = 0;\n"
                  "  r = helper(p);\n"
                  "  return r + dup;\n"
                  "}\n"
                  "int other(void) { int dup; dup = 1; return dup; }\n");
  ASSERT_TRUE(F.Engine);
  ASSERT_EQ(F.Engine->programGate(), "");

  // Statement-scoped points_to needs every statement visited.
  EXPECT_EQ(F.Engine->query(Query::pointsTo("p", 3)).FallbackReason,
            "stmt-scope");
  // No such variable.
  EXPECT_EQ(F.Engine->query(Query::pointsTo("nosuch")).FallbackReason,
            "unresolved-name");
  // "dup" names locals in two functions.
  EXPECT_EQ(F.Engine->query(Query::pointsTo("dup")).FallbackReason,
            "ambiguous-name");
  // A function name is not a data variable the slicer can seed.
  EXPECT_EQ(F.Engine->query(Query::pointsTo("helper")).FallbackReason,
            "unresolved-name");
  // Unique, but lives in helper's frame, not main's.
  EXPECT_EQ(F.Engine->query(Query::pointsTo("inner")).FallbackReason,
            "not-main-scope");
  // Bad alias syntax falls back as unresolved.
  EXPECT_EQ(F.Engine->query(Query::alias("p[0]", "x")).FallbackReason,
            "unresolved-name");
  // And the in-envelope query still answers by demand.
  EXPECT_TRUE(F.Engine->query(Query::pointsTo("p")).answeredByDemand());
}

//===----------------------------------------------------------------------===//
// Pruning effectiveness
//===----------------------------------------------------------------------===//

TEST(DemandTest, IncrstressPrunesToAHandfulOfStatements) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  ASSERT_NE(CP, nullptr);
  EngineFixture F(CP->Source);
  ASSERT_TRUE(F.Engine);
  ASSERT_EQ(F.Engine->programGate(), "");

  Answer A = checkEquivalent(*F.Engine, Query::pointsTo("p"), "incrstress");
  ASSERT_TRUE(A.answeredByDemand());
  // main's p is never address-taken and no call's mod set reaches it:
  // the slice is a handful of statements, not the million-visit
  // exhaustive run.
  EXPECT_LT(A.VisitedStmts, 100u);
  EXPECT_GT(A.SkippedStmts, 0u);
  EXPECT_LT(A.LiveBasic, A.SliceBasic);

  Answer AA =
      checkEquivalent(*F.Engine, Query::alias("*p", "*q"), "incrstress");
  EXPECT_TRUE(AA.answeredByDemand());
  EXPECT_LT(AA.VisitedStmts, 100u);
}

//===----------------------------------------------------------------------===//
// Corpus-wide equivalence
//===----------------------------------------------------------------------===//

TEST(DemandTest, CorpusEquivalence) {
  size_t DemandAnswered = 0, Fallbacks = 0;
  for (const corpus::CorpusProgram &CP : corpus::corpus()) {
    EngineFixture F(CP.Source);
    ASSERT_TRUE(F.Engine) << CP.Name;
    std::vector<std::string> Names = queryNames(*F.FE.Prog, 8);
    for (const std::string &N : Names) {
      Answer A = checkEquivalent(*F.Engine, Query::pointsTo(N), CP.Name);
      (A.answeredByDemand() ? DemandAnswered : Fallbacks) += 1;
    }
    // Alias pairs over the first few names with 0/1-star shapes.
    size_t PairBudget = 6;
    for (size_t I = 0; I < Names.size() && PairBudget; ++I)
      for (size_t J = I + 1; J < Names.size() && PairBudget; ++J) {
        checkEquivalent(*F.Engine, Query::alias(Names[I], Names[J]),
                        CP.Name);
        checkEquivalent(*F.Engine,
                        Query::alias("*" + Names[I], "*" + Names[J]),
                        CP.Name);
        --PairBudget;
      }
  }
  // The sweep must actually exercise both paths.
  EXPECT_GT(DemandAnswered, 0u);
  EXPECT_GT(Fallbacks, 0u);
}

//===----------------------------------------------------------------------===//
// Randomized wlgen equivalence
//===----------------------------------------------------------------------===//

TEST(DemandTest, QueryWorkloadEquivalence) {
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    wlgen::QueryWorkloadConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumQueries = 16;
    wlgen::QueryWorkload W = wlgen::queryWorkload(Cfg);
    EngineFixture F(W.Source);
    ASSERT_TRUE(F.Engine) << "seed " << Seed;
    size_t Hot = 0;
    for (const wlgen::QuerySpec &QS : W.Queries) {
      Query Q = QS.K == wlgen::QuerySpec::Kind::PointsTo
                    ? Query::pointsTo(QS.Name)
                    : Query::alias(QS.A, QS.B);
      Answer A =
          checkEquivalent(*F.Engine, Q, "seed " + std::to_string(Seed));
      if (A.answeredByDemand())
        ++Hot;
    }
    EXPECT_GT(Hot, 0u) << "seed " << Seed
                       << ": no query answered by demand";
  }
}

TEST(DemandTest, QueryWorkloadFnptrAndRecursionFallBack) {
  for (int Mode = 0; Mode < 2; ++Mode) {
    wlgen::QueryWorkloadConfig Cfg;
    Cfg.Seed = 7;
    Cfg.NumQueries = 8;
    Cfg.UseFunctionPointers = Mode == 0;
    Cfg.UseRecursion = Mode == 1;
    wlgen::QueryWorkload W = wlgen::queryWorkload(Cfg);
    EngineFixture F(W.Source);
    ASSERT_TRUE(F.Engine);
    // Whole-program gate: every non-trivial query falls back with the
    // program's reason, and equivalence still holds (the fallback IS
    // the exhaustive answer).
    EXPECT_TRUE(F.Engine->programGate() == "fnptr" ||
                F.Engine->programGate() == "recursion")
        << F.Engine->programGate();
    for (const wlgen::QuerySpec &QS : W.Queries) {
      Query Q = QS.K == wlgen::QuerySpec::Kind::PointsTo
                    ? Query::pointsTo(QS.Name)
                    : Query::alias(QS.A, QS.B);
      Answer A = checkEquivalent(*F.Engine, Q, "gated workload");
      if (!A.answeredByDemand() && A.Ok)
        EXPECT_FALSE(A.FallbackReason.empty());
    }
  }
}

//===----------------------------------------------------------------------===//
// Analyzer LiveStmts plumbing
//===----------------------------------------------------------------------===//

TEST(AnalyzerLiveStmtsTest, AllLiveMatchesUnfiltered) {
  const char *Src = "int g; int *gp;\n"
                    "int main(void) {\n"
                    "  int x; int *p; int **q;\n"
                    "  p = &x; q = &p; gp = &g;\n"
                    "  return 0;\n"
                    "}\n";
  Pipeline Full = Pipeline::analyzeSource(Src);
  ASSERT_TRUE(Full.ok());

  Pipeline FE = Pipeline::frontend(Src);
  ASSERT_TRUE(FE.Prog != nullptr);
  pta::Analyzer::Options Opts;
  std::vector<uint8_t> AllLive(1024, 1);
  Opts.LiveStmts = &AllLive;
  pta::Analyzer::Result R = pta::Analyzer::run(*FE.Prog, Opts);
  ASSERT_TRUE(R.Analyzed);

  serve::ResultSnapshot SFull =
      serve::ResultSnapshot::capture(*Full.Prog, Full.Analysis, "");
  serve::ResultSnapshot SLive =
      serve::ResultSnapshot::capture(*FE.Prog, R, "");
  for (const char *N : {"p", "q", "gp"})
    EXPECT_EQ(SLive.pointsToTargets(N), SFull.pointsToTargets(N)) << N;
}

TEST(AnalyzerLiveStmtsTest, AllDeadSkipsEveryStatement) {
  Pipeline FE = Pipeline::frontend(
      "int main(void) { int x; int *p; p = &x; return 0; }");
  ASSERT_TRUE(FE.Prog != nullptr);
  support::Telemetry Telem(/*Enabled=*/true);
  pta::Analyzer::Options Opts;
  Opts.Telem = &Telem;
  std::vector<uint8_t> AllDead(1024, 0);
  Opts.LiveStmts = &AllDead;
  pta::Analyzer::Result R = pta::Analyzer::run(*FE.Prog, Opts);
  ASSERT_TRUE(R.Analyzed);
  auto Counters = Telem.countersSnapshot();
  EXPECT_EQ(Counters["pta.stmt_visits"], 0u);
  EXPECT_GT(Counters["pta.stmt_skips"], 0u);
}

} // namespace
