//===- RobustnessTest.cpp - frontend fuzz-ish robustness -----------------------===//
//
// The pipeline must never crash on garbage: random token soup, truncated
// programs, deeply nested expressions. Acceptance is fine, rejection is
// fine, crashing or hanging is not.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mcpta;

namespace {

/// Deterministic LCG for reproducible "fuzzing".
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 88172645463325252ULL + 1) {}
  unsigned next(unsigned N) {
    S = S * 6364136223846793005ULL + 1442695040888963407ULL;
    return (S >> 17) % N;
  }
};

TEST(RobustnessTest, RandomTokenSoupNeverCrashes) {
  static const char *const Tokens[] = {
      "int",  "char",   "*",      "&",    "(",      ")",     "{",
      "}",    "[",      "]",      ";",    ",",      "=",     "+",
      "-",    "if",     "else",   "while", "for",   "return", "x",
      "y",    "f",      "struct", "42",   "\"s\"",  "->",    ".",
      "==",   "NULL",   "void",   "do",   "switch", "case",  ":",
  };
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    Rng R(Seed);
    std::string Src;
    unsigned Len = 10 + R.next(120);
    for (unsigned I = 0; I < Len; ++I) {
      Src += Tokens[R.next(sizeof(Tokens) / sizeof(Tokens[0]))];
      Src += " ";
    }
    // Must terminate without crashing; diagnostics expected.
    Pipeline P = Pipeline::analyzeSource(Src);
    (void)P;
  }
}

TEST(RobustnessTest, TruncatedProgramsNeverCrash) {
  const std::string Full = R"(
    struct N { struct N *next; int v; };
    int walk(struct N *n) {
      int s; s = 0;
      while (n != NULL) { s = s + n->v; n = n->next; }
      return s;
    }
    int main(void) { struct N a; a.v = 1; a.next = NULL; return walk(&a); })";
  for (size_t Len = 0; Len < Full.size(); Len += 7) {
    Pipeline P = Pipeline::analyzeSource(Full.substr(0, Len));
    (void)P;
  }
}

TEST(RobustnessTest, DeeplyNestedExpressions) {
  std::string Src = "int main(void) { int x; x = ";
  for (int I = 0; I < 200; ++I)
    Src += "(1 + ";
  Src += "0";
  for (int I = 0; I < 200; ++I)
    Src += ")";
  Src += "; return x; }";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(RobustnessTest, DeeplyNestedBlocks) {
  std::string Src = "int main(void) { int x; x = 0; ";
  for (int I = 0; I < 150; ++I)
    Src += "{ x = x + 1; ";
  for (int I = 0; I < 150; ++I)
    Src += "}";
  Src += " return x; }";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(RobustnessTest, ManyVariablesAndPairs) {
  // A wide, flat program: 200 pointers to 200 targets.
  std::string Src = "int main(void) {\n";
  for (int I = 0; I < 200; ++I)
    Src += "  int x" + std::to_string(I) + "; int *p" +
           std::to_string(I) + ";\n";
  for (int I = 0; I < 200; ++I)
    Src += "  p" + std::to_string(I) + " = &x" + std::to_string(I) +
           ";\n";
  Src += "  return *p0;\n}\n";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_TRUE(P.Analysis.Analyzed);
  EXPECT_TRUE(testutil::mainHasPair(P, "p199", "x199", 'D'));
}

TEST(RobustnessTest, LongCallChain) {
  // f0 -> f1 -> ... -> f60 threading a pointer all the way down.
  std::string Src = "int g;\n";
  Src += "void f60(int **pp) { *pp = &g; }\n";
  for (int I = 59; I >= 0; --I)
    Src += "void f" + std::to_string(I) + "(int **pp) { f" +
           std::to_string(I + 1) + "(pp); }\n";
  Src += "int main(void) { int *p; f0(&p); return *p; }\n";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_TRUE(testutil::mainHasPair(P, "p", "g", 'D'))
      << testutil::mainOut(P);
}

TEST(RobustnessTest, UnterminatedConstructs) {
  for (const char *Src : {
           "int main(void) { \"unterminated",
           "int main(void) { 'x",
           "/* never closed",
           "int a[",
           "struct S {",
           "int f(",
           "int main(void) { if (",
       }) {
    Pipeline P = Pipeline::analyzeSource(Src);
    EXPECT_TRUE(P.Diags.hasErrors()) << Src;
  }
}

} // namespace
