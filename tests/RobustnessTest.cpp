//===- RobustnessTest.cpp - frontend fuzz-ish robustness -----------------------===//
//
// The pipeline must never crash on garbage: random token soup, truncated
// programs, deeply nested expressions. Acceptance is fine, rejection is
// fine, crashing or hanging is not.
//
// The second half covers resource governance (docs/ROBUSTNESS.md):
// wlgen's pathological programs under tight budgets must terminate,
// report their degradations, and keep the degraded result sound —
// a superset of the ungoverned precise pairs and a subset of the
// Andersen flow-insensitive over-approximation, both compared at
// root-entity granularity.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "baselines/Andersen.h"
#include "wlgen/WorkloadGen.h"

#include <chrono>
#include <set>

using namespace mcpta;

namespace {

/// Deterministic LCG for reproducible "fuzzing".
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 88172645463325252ULL + 1) {}
  unsigned next(unsigned N) {
    S = S * 6364136223846793005ULL + 1442695040888963407ULL;
    return (S >> 17) % N;
  }
};

TEST(RobustnessTest, RandomTokenSoupNeverCrashes) {
  static const char *const Tokens[] = {
      "int",  "char",   "*",      "&",    "(",      ")",     "{",
      "}",    "[",      "]",      ";",    ",",      "=",     "+",
      "-",    "if",     "else",   "while", "for",   "return", "x",
      "y",    "f",      "struct", "42",   "\"s\"",  "->",    ".",
      "==",   "NULL",   "void",   "do",   "switch", "case",  ":",
  };
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    Rng R(Seed);
    std::string Src;
    unsigned Len = 10 + R.next(120);
    for (unsigned I = 0; I < Len; ++I) {
      Src += Tokens[R.next(sizeof(Tokens) / sizeof(Tokens[0]))];
      Src += " ";
    }
    // Must terminate without crashing; diagnostics expected.
    Pipeline P = Pipeline::analyzeSource(Src);
    (void)P;
  }
}

TEST(RobustnessTest, TruncatedProgramsNeverCrash) {
  const std::string Full = R"(
    struct N { struct N *next; int v; };
    int walk(struct N *n) {
      int s; s = 0;
      while (n != NULL) { s = s + n->v; n = n->next; }
      return s;
    }
    int main(void) { struct N a; a.v = 1; a.next = NULL; return walk(&a); })";
  for (size_t Len = 0; Len < Full.size(); Len += 7) {
    Pipeline P = Pipeline::analyzeSource(Full.substr(0, Len));
    (void)P;
  }
}

TEST(RobustnessTest, DeeplyNestedExpressions) {
  std::string Src = "int main(void) { int x; x = ";
  for (int I = 0; I < 200; ++I)
    Src += "(1 + ";
  Src += "0";
  for (int I = 0; I < 200; ++I)
    Src += ")";
  Src += "; return x; }";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(RobustnessTest, DeeplyNestedBlocks) {
  std::string Src = "int main(void) { int x; x = 0; ";
  for (int I = 0; I < 150; ++I)
    Src += "{ x = x + 1; ";
  for (int I = 0; I < 150; ++I)
    Src += "}";
  Src += " return x; }";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(RobustnessTest, ManyVariablesAndPairs) {
  // A wide, flat program: 200 pointers to 200 targets.
  std::string Src = "int main(void) {\n";
  for (int I = 0; I < 200; ++I)
    Src += "  int x" + std::to_string(I) + "; int *p" +
           std::to_string(I) + ";\n";
  for (int I = 0; I < 200; ++I)
    Src += "  p" + std::to_string(I) + " = &x" + std::to_string(I) +
           ";\n";
  Src += "  return *p0;\n}\n";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_TRUE(P.Analysis.Analyzed);
  EXPECT_TRUE(testutil::mainHasPair(P, "p199", "x199", 'D'));
}

TEST(RobustnessTest, LongCallChain) {
  // f0 -> f1 -> ... -> f60 threading a pointer all the way down.
  std::string Src = "int g;\n";
  Src += "void f60(int **pp) { *pp = &g; }\n";
  for (int I = 59; I >= 0; --I)
    Src += "void f" + std::to_string(I) + "(int **pp) { f" +
           std::to_string(I + 1) + "(pp); }\n";
  Src += "int main(void) { int *p; f0(&p); return *p; }\n";
  Pipeline P = Pipeline::analyzeSource(Src);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_TRUE(testutil::mainHasPair(P, "p", "g", 'D'))
      << testutil::mainOut(P);
}

TEST(RobustnessTest, UnterminatedConstructs) {
  for (const char *Src : {
           "int main(void) { \"unterminated",
           "int main(void) { 'x",
           "/* never closed",
           "int a[",
           "struct S {",
           "int f(",
           "int main(void) { if (",
       }) {
    Pipeline P = Pipeline::analyzeSource(Src);
    EXPECT_TRUE(P.Diags.hasErrors()) << Src;
  }
}

TEST(RobustnessTest, ConflictingRedeclarationsAreNotFatal) {
  // parseFunctionDefinition used to assert when the defined name did
  // not resolve to a FunctionDecl. Whatever each shape resolves to now
  // (silent rebind or diagnostic), none of them may crash or hang.
  for (const char *Src : {
           "int x; int x(void) { return 0; } int main(void) { return x; }",
           "int x(void) { return 0; } int x; int main(void) { return 0; }",
           "int f(void); int f; int f(void) { return 0; } "
           "int main(void) { return f(); }",
       }) {
    Pipeline P = Pipeline::analyzeSource(Src);
    if (!P.Diags.hasErrors())
      EXPECT_TRUE(P.Analysis.Analyzed) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Resource governance: pathological programs under tight budgets
//===----------------------------------------------------------------------===//

/// Andersen-compatible name of a location's root entity, or "" for
/// roots outside Andersen's abstraction (null, retval, symbolic).
std::string andersenRootName(const pta::Location *L) {
  const pta::Entity *Root = L->root();
  switch (Root->kind()) {
  case pta::Entity::Kind::Variable: {
    const cfront::VarDecl *V = Root->var();
    if (!V)
      return "";
    return (V->owner() ? V->owner()->name() + "::" : std::string()) +
           V->name();
  }
  case pta::Entity::Kind::Heap:
    return "heap";
  case pta::Entity::Kind::Function:
    return Root->function() ? Root->function()->name() : "";
  default:
    return "";
  }
}

/// End-of-main pairs collapsed to root-entity granularity. The
/// degraded fallbacks merge contexts and collapse symbolic chains, so
/// per-path comparison would be too strict; root granularity is what
/// both the superset and the Andersen-subset properties promise.
std::set<std::string> rootPairs(const Pipeline &P) {
  std::set<std::string> Out;
  if (!P.Analysis.MainOut)
    return Out;
  P.Analysis.MainOut->forEach(
      *P.Analysis.Locs,
      [&](const pta::Location *S, const pta::Location *T, pta::Def) {
        std::string A = andersenRootName(S), B = andersenRootName(T);
        if (!A.empty() && !B.empty())
          Out.insert(A + " -> " + B);
      });
  return Out;
}

std::string stressProgram() { return wlgen::pathologicalSource(5, 3, 4, 8); }

/// Runs the three-way soundness sandwich for one governed options set:
/// degraded result must exist, be flagged, contain every precise root
/// pair, and stay inside the Andersen over-approximation.
void expectDegradedSoundly(const std::string &Src,
                           const pta::Analyzer::Options &Governed) {
  Pipeline Precise = Pipeline::analyzeSource(Src);
  ASSERT_TRUE(Precise.ok()) << Precise.Diags.dump();
  ASSERT_FALSE(Precise.degraded());

  Pipeline Degraded = Pipeline::analyzeSource(Src, Governed);
  ASSERT_TRUE(Degraded.Analysis.Analyzed);
  EXPECT_FALSE(Degraded.Diags.hasErrors()) << Degraded.Diags.dump();
  ASSERT_TRUE(Degraded.degraded());
  for (const support::Degradation &D : Degraded.Analysis.Degradations) {
    EXPECT_FALSE(D.Context.empty());
    EXPECT_FALSE(D.Action.empty());
  }

  // Sound over-approximation: nothing the precise run knows is lost...
  std::set<std::string> P = rootPairs(Precise), D = rootPairs(Degraded);
  for (const std::string &Pair : P)
    EXPECT_TRUE(D.count(Pair)) << "degraded run lost pair: " << Pair;

  // ...and nothing outside the flow-insensitive Andersen solution is
  // invented (both abstractions skip null/retval/symbolic roots).
  baselines::AndersenResult A =
      baselines::AndersenAnalysis::run(*Degraded.Prog);
  for (const std::string &Pair : D) {
    size_t Sep = Pair.find(" -> ");
    ASSERT_NE(Sep, std::string::npos);
    const std::string Src2 = Pair.substr(0, Sep);
    const std::string Dst = Pair.substr(Sep + 4);
    EXPECT_TRUE(A.pointsTo(Src2).count(Dst))
        << "degraded pair outside Andersen: " << Pair;
  }
}

TEST(RobustnessTest, StmtBudgetDegradesSoundly) {
  pta::Analyzer::Options Opts;
  Opts.Limits.MaxStmtVisits = 2000;
  expectDegradedSoundly(stressProgram(), Opts);
}

TEST(RobustnessTest, IGNodeCapDegradesSoundly) {
  pta::Analyzer::Options Opts;
  Opts.Limits.MaxIGNodes = 40;
  expectDegradedSoundly(stressProgram(), Opts);
}

TEST(RobustnessTest, LocationCapDegradesSoundly) {
  pta::Analyzer::Options Opts;
  Opts.Limits.MaxLocations = 60;
  expectDegradedSoundly(stressProgram(), Opts);
}

TEST(RobustnessTest, RecPassCapTerminatesAndReports) {
  // Cutting a recursion fixed point short can drop pairs the full
  // generalization would have found, so only termination, flagging,
  // and crash-freedom are promised here (see docs/ROBUSTNESS.md).
  pta::Analyzer::Options Opts;
  Opts.Limits.MaxRecPasses = 1;
  Pipeline P = Pipeline::analyzeSource(stressProgram(), Opts);
  ASSERT_TRUE(P.Analysis.Analyzed);
  EXPECT_TRUE(P.degraded());
  bool SawRecCut = false;
  for (const support::Degradation &D : P.Analysis.Degradations)
    SawRecCut |= D.Kind == support::LimitKind::RecPasses;
  EXPECT_TRUE(SawRecCut);
}

TEST(RobustnessTest, DeadlineBoundsWallClock) {
  // Depth 8 is ~3^8 invocation-graph contexts: tens of seconds
  // ungoverned. Under a 100ms deadline the run must finish fast (soft
  // trip switches to merged summaries; the 4x hard deadline cuts any
  // in-flight fixed point) and report what happened.
  const std::string Src = wlgen::pathologicalSource(8);
  pta::Analyzer::Options Opts;
  Opts.Limits.TimeoutMs = 100;
  auto T0 = std::chrono::steady_clock::now();
  Pipeline P = Pipeline::analyzeSource(Src, Opts);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  ASSERT_TRUE(P.Analysis.Analyzed);
  EXPECT_TRUE(P.degraded());
  // Generous bound for loaded CI machines; the point is "not 20s".
  EXPECT_LT(Ms, 5000.0);
}

TEST(RobustnessTest, DegradationsSurfaceAsWarnings) {
  pta::Analyzer::Options Opts;
  Opts.Limits.MaxIGNodes = 40;
  Pipeline P = Pipeline::analyzeSource(stressProgram(), Opts);
  ASSERT_TRUE(P.degraded());
  bool Found = false;
  for (const Diagnostic &D : P.Diags.diagnostics())
    if (D.Level == DiagLevel::Warning &&
        D.Message.find("analysis degraded [ig_nodes]") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(RobustnessTest, UngovernedPathologicalRunStaysClean) {
  // Without limits the same generator output analyzes cleanly: no
  // meter, no degradations, deterministic result.
  Pipeline P = Pipeline::analyzeSource(stressProgram());
  ASSERT_TRUE(P.ok()) << P.Diags.dump();
  EXPECT_FALSE(P.degraded());
  EXPECT_TRUE(P.Analysis.Degradations.empty());
}

} // namespace
