//===- AnalyzerOptionsTest.cpp - analyzer option behavior ----------------------===//

#include "TestUtil.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

TEST(AnalyzerOptionsTest, RecordStmtSetsOffLeavesStmtInEmpty) {
  pta::Analyzer::Options Opts;
  Opts.RecordStmtSets = false;
  auto P = analyze("int main(void) { int x; int *p; p = &x; "
                   "return *p; }",
                   Opts);
  for (const auto &OptIn : P.Analysis.StmtIn)
    EXPECT_FALSE(OptIn.has_value());
  // The final result is unaffected.
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(AnalyzerOptionsTest, SymbolicLevelLimitBoundsChains) {
  // A 6-level pointer chain passed to a callee needs symbolic names up
  // to level 5: a generous limit resolves the deep write definitely, a
  // tight limit collapses the chain into a summary — coarser (possible
  // pairs, old target may survive) but still covering the real fact.
  const char *Src = R"(
    int g;
    void deep(int ******pp) { *****pp = &g; }
    int main(void) {
      int x;
      int *p1; int **p2; int ***p3; int ****p4; int *****p5;
      p1 = &x; p2 = &p1; p3 = &p2; p4 = &p3; p5 = &p4;
      deep(&p5);
      return *p1;
    })";

  pta::Analyzer::Options Generous;
  Generous.SymbolicLevelLimit = 8;
  auto Full = analyze(Src, Generous);
  EXPECT_TRUE(mainHasPair(Full, "p1", "g", 'D')) << mainOut(Full);

  pta::Analyzer::Options Tight;
  Tight.SymbolicLevelLimit = 2;
  auto Limited = analyze(Src, Tight);
  EXPECT_TRUE(mainHasPair(Limited, "p1", "g")) << mainOut(Limited);
}

TEST(AnalyzerOptionsTest, LoopIterationLimitWarnsButStaysSafe) {
  // The three-stage copy chain needs three head merges to stabilize;
  // the cap of one iteration trips the safety valve.
  pta::Analyzer::Options Opts;
  Opts.MaxLoopIterations = 1;
  auto P = analyze(R"(
    int main(void) {
      int a; int b; int n;
      int *p1; int *p2; int *p3;
      p1 = &a;
      n = 10;
      while (n > 0) {
        p3 = p2;
        p2 = p1;
        p1 = &b;
        n = n - 1;
      }
      return *p3;
    })",
                   Opts);
  bool Warned = false;
  for (const std::string &W : P.Analysis.Warnings)
    if (W.find("loop fixed point") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
}

TEST(AnalyzerOptionsTest, CountersArePopulated) {
  // Memo hits arise when one invocation-graph node is re-evaluated with
  // an unchanged input. The copy chain keeps the loop fixed point
  // iterating after set()'s input has already stabilized, so the later
  // iterations answer the call from the stored IN/OUT pair.
  auto P = analyze(R"(
    int g;
    void set(int **pp) { *pp = &g; }
    int main(void) {
      int a; int b;
      int *q; int *p1; int *p2; int *p3;
      int n;
      p1 = &a;
      n = 5;
      while (n > 0) {
        set(&q);
        p3 = p2;
        p2 = p1;
        p1 = &b;
        n = n - 1;
      }
      return *q;
    })");
  EXPECT_GT(P.Analysis.BodyAnalyses, 0u);
  EXPECT_GT(P.Analysis.LoopIterations, 0u);
  EXPECT_GT(P.Analysis.MemoHits, 0u)
      << "re-evaluations with unchanged inputs hit the memoized "
         "IN/OUT pair";
}

} // namespace
