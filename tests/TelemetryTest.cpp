//===- TelemetryTest.cpp - instrumentation layer tests -------------------------===//
//
// Covers the observability substrate: RAII span nesting, counter and
// histogram bookkeeping, exact hot-path counter totals on fixture
// programs, JSON validity of both exporters, and the disabled
// (null-sink) mode recording nothing.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/FlightRecorder.h"
#include "support/Telemetry.h"

#include <sstream>
#include <thread>
#include <vector>

using namespace mcpta;
using namespace mcpta::support;
using namespace mcpta::testutil;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON validator (syntax only) for exporter output.
//===----------------------------------------------------------------------===//

struct JsonChecker {
  const std::string &S;
  size_t I = 0;
  bool Ok = true;

  explicit JsonChecker(const std::string &S) : S(S) {}

  void ws() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\n' || S[I] == '\t' ||
                            S[I] == '\r'))
      ++I;
  }
  bool eat(char C) {
    ws();
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  void fail() { Ok = false; }

  void value() {
    if (!Ok)
      return;
    ws();
    if (I >= S.size())
      return fail();
    char C = S[I];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == '-' || (C >= '0' && C <= '9'))
      return number();
    if (S.compare(I, 4, "true") == 0) {
      I += 4;
      return;
    }
    if (S.compare(I, 5, "false") == 0) {
      I += 5;
      return;
    }
    if (S.compare(I, 4, "null") == 0) {
      I += 4;
      return;
    }
    fail();
  }
  void object() {
    if (!eat('{'))
      return fail();
    if (eat('}'))
      return;
    do {
      string();
      if (!Ok || !eat(':'))
        return fail();
      value();
      if (!Ok)
        return;
    } while (eat(','));
    if (!eat('}'))
      fail();
  }
  void array() {
    if (!eat('['))
      return fail();
    if (eat(']'))
      return;
    do {
      value();
      if (!Ok)
        return;
    } while (eat(','));
    if (!eat(']'))
      fail();
  }
  void string() {
    if (!eat('"'))
      return fail();
    while (I < S.size() && S[I] != '"') {
      if (S[I] == '\\')
        ++I;
      ++I;
    }
    if (!eat('"'))
      fail();
  }
  void number() {
    if (S[I] == '-')
      ++I;
    while (I < S.size() && ((S[I] >= '0' && S[I] <= '9') || S[I] == '.' ||
                            S[I] == 'e' || S[I] == 'E' || S[I] == '+' ||
                            S[I] == '-'))
      ++I;
  }

  bool validate() {
    value();
    ws();
    return Ok && I == S.size();
  }
};

bool isValidJson(const std::string &S) { return JsonChecker(S).validate(); }

//===----------------------------------------------------------------------===//
// Core primitives
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, SpanNestingRecorded) {
  Telemetry T;
  {
    Telemetry::Span Outer(&T, "outer");
    {
      Telemetry::Span Inner(&T, "inner");
    }
  }
  ASSERT_EQ(T.spans().size(), 2u);
  // Inner spans close first.
  EXPECT_EQ(T.spans()[0].Name, "inner");
  EXPECT_EQ(T.spans()[0].Depth, 1u);
  EXPECT_EQ(T.spans()[1].Name, "outer");
  EXPECT_EQ(T.spans()[1].Depth, 0u);
  // The inner span is contained in the outer one.
  EXPECT_GE(T.spans()[0].StartUs, T.spans()[1].StartUs);
  EXPECT_GE(T.phaseUs("outer"), T.phaseUs("inner"));
}

TEST(TelemetryTest, RepeatedSpansAggregateInPhaseUs) {
  Telemetry T;
  for (int I = 0; I < 3; ++I)
    Telemetry::Span S(&T, "phase");
  EXPECT_EQ(T.spans().size(), 3u);
  EXPECT_EQ(T.phaseUs("nonexistent"), 0u);
}

TEST(TelemetryTest, CountersAccumulateByName) {
  Telemetry T;
  ++T.counter("a");
  T.counter("a") += 4;
  T.add("b", 2);
  T.add("zero", 0); // registers the key even with no traffic
  EXPECT_EQ(T.counters().at("a").Value, 5u);
  EXPECT_EQ(T.counters().at("b").Value, 2u);
  EXPECT_EQ(T.counters().at("zero").Value, 0u);
  EXPECT_EQ(T.counters().size(), 3u);
}

TEST(TelemetryTest, CountersSnapshotIsALockedCopy) {
  Telemetry T;
  T.add("a", 5);
  T.add("b", 2);
  std::map<std::string, uint64_t, std::less<>> Snap = T.countersSnapshot();
  EXPECT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap.at("a"), 5u);
  EXPECT_EQ(Snap.at("b"), 2u);
  // The copy is decoupled from later traffic.
  T.add("a", 1);
  EXPECT_EQ(Snap.at("a"), 5u);
  EXPECT_EQ(T.countersSnapshot().at("a"), 6u);
}

TEST(TelemetryTest, EmptyHistogramSummariesAreSafe) {
  // min() must not report the ~0 sentinel and mean() must not divide by
  // zero for a histogram that never recorded.
  Telemetry T;
  const Histogram &H = T.histogram("empty");
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  // The exporter renders it without NaN/inf artifacts.
  std::ostringstream OS;
  T.writeStatsJson(OS);
  EXPECT_TRUE(isValidJson(OS.str())) << OS.str();
  EXPECT_NE(OS.str().find("\"empty\":{\"count\":0,\"sum\":0,\"min\":0,"
                          "\"max\":0,\"mean\":0.000}"),
            std::string::npos)
      << OS.str();
}

TEST(TelemetryTest, HistogramSummaries) {
  Telemetry T;
  for (uint64_t V : {0u, 1u, 2u, 5u, 8u})
    T.record("h", V);
  const Histogram &H = T.histograms().at("h");
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 16u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 8u);
  EXPECT_NEAR(H.mean(), 3.2, 1e-9);
  EXPECT_EQ(H.bucket(Histogram::bucketOf(0)), 1u);
  // 5 and... bucketOf(5)=3 ([4,8)); bucketOf(8)=4 ([8,16)).
  EXPECT_EQ(H.bucket(3), 1u);
  EXPECT_EQ(H.bucket(4), 1u);
}

TEST(TelemetryTest, DisabledModeIsANullSink) {
  Telemetry T(/*Enabled=*/false);
  {
    Telemetry::Span S(&T, "never");
    ++T.counter("x");
    T.add("y", 10);
    T.record("h", 3);
  }
  EXPECT_FALSE(T.enabled());
  EXPECT_TRUE(T.spans().empty());
  EXPECT_TRUE(T.counters().empty());
  EXPECT_TRUE(T.histograms().empty());
  // Exporters still emit syntactically valid (empty) documents.
  std::ostringstream Trace, Stats;
  T.writeTraceJson(Trace);
  T.writeStatsJson(Stats);
  EXPECT_TRUE(isValidJson(Trace.str())) << Trace.str();
  EXPECT_TRUE(isValidJson(Stats.str())) << Stats.str();
}

TEST(TelemetryTest, NullTelemetrySpanIsSafe) {
  Telemetry::Span S(nullptr, "no-op"); // must not crash
}

//===----------------------------------------------------------------------===//
// Concurrency: the thread-safety contract the serve daemon and the
// future work-stealing pool rely on.
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, ConcurrentCounterHammerKeepsExactTotals) {
  // N threads x M increments through shared handles: relaxed atomics
  // must lose nothing, and concurrent first-use registration of fresh
  // names must not corrupt the registries.
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 20000;
  Telemetry T;
  Counter &Shared = T.counter("hammer.shared");
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&T, &Shared, I] {
      Histogram &H = T.histogram("hammer.hist");
      LatencyRecorder &L = T.latency("hammer.lat");
      std::string Own = "hammer.t" + std::to_string(I);
      for (uint64_t J = 0; J < PerThread; ++J) {
        ++Shared;
        T.add(Own, 1);
        H.record(J & 0xff);
        L.recordUs(J & 0xfff);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(T.counters().at("hammer.shared").load(), NumThreads * PerThread);
  for (unsigned I = 0; I < NumThreads; ++I)
    EXPECT_EQ(T.counters().at("hammer.t" + std::to_string(I)).load(),
              PerThread);
  EXPECT_EQ(T.histograms().at("hammer.hist").count(),
            NumThreads * PerThread);
  EXPECT_EQ(T.latencies().at("hammer.lat").count(), NumThreads * PerThread);
}

TEST(TelemetryTest, ConcurrentSpansAndExports) {
  // Spans opened on several threads while another thread exports: the
  // registration mutex must keep the span vector and the exporters
  // coherent (exact interleaving is unspecified; no crash, valid JSON).
  Telemetry T;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < 4; ++I)
    Threads.emplace_back([&T] {
      for (int J = 0; J < 200; ++J) {
        Telemetry::Span S(&T, "worker");
        ++T.counter("spun");
      }
    });
  for (int J = 0; J < 20; ++J) {
    std::ostringstream OS;
    T.writeStatsJson(OS);
    EXPECT_TRUE(isValidJson(OS.str()));
    // The locked copy the serve stats path iterates must also be safe
    // against concurrent name registration ("spun" may not be
    // registered yet on early iterations).
    std::map<std::string, uint64_t, std::less<>> Snap = T.countersSnapshot();
    auto It = Snap.find("spun");
    if (It != Snap.end())
      EXPECT_LE(It->second, 800u);
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(T.spans().size(), 800u);
  EXPECT_EQ(T.counters().at("spun").load(), 800u);
}

TEST(TelemetryTest, MergeFromFoldsChildIntoAggregate) {
  Telemetry Daemon;
  Daemon.add("serve.requests", 3);
  Daemon.record("sizes", 10);
  {
    Telemetry Child;
    Child.setCorrelationId("r7");
    Child.add("serve.requests", 1);
    Child.add("pta.body_analyses", 5);
    Child.record("sizes", 2);
    Child.latency("serve.latency.analyze").recordUs(1500);
    Child.gauge("mem.peak_rss_kb", 4096);
    {
      Telemetry::Span S(&Child, "analyze");
    }
    Daemon.mergeFrom(Child);
  }
  EXPECT_EQ(Daemon.counters().at("serve.requests").load(), 4u);
  EXPECT_EQ(Daemon.counters().at("pta.body_analyses").load(), 5u);
  const Histogram &H = Daemon.histograms().at("sizes");
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.min(), 2u);
  EXPECT_EQ(H.max(), 10u);
  EXPECT_EQ(Daemon.latencies().at("serve.latency.analyze").count(), 1u);
  EXPECT_EQ(Daemon.gauges().at("mem.peak_rss_kb"), 4096u);
  // Spans stay request-scoped: the aggregate never accumulates them.
  EXPECT_TRUE(Daemon.spans().empty());
  // The child's correlation id does not leak into the aggregate.
  EXPECT_EQ(Daemon.correlationId(), "");
  // Self-merge is a guarded no-op, not a deadlock or a doubling.
  Daemon.mergeFrom(Daemon);
  EXPECT_EQ(Daemon.counters().at("serve.requests").load(), 4u);
}

TEST(TelemetryTest, MergeFromToleratesRacingChildRegistration) {
  // Exact totals want a quiescent child, but a child that is still
  // registering names while an aggregate merges must be structurally
  // safe: mergeFrom snapshots the child's registries under its lock.
  Telemetry Daemon;
  Telemetry Child;
  std::thread Writer([&Child] {
    for (int I = 0; I < 500; ++I)
      Child.add("race." + std::to_string(I), 1);
  });
  for (int I = 0; I < 20; ++I)
    Daemon.mergeFrom(Child);
  Writer.join();
  // One merge after quiescence: every counter lands with its final
  // value (merges add, so totals are >= 1; exactness is not the point).
  Daemon.mergeFrom(Child);
  std::map<std::string, uint64_t, std::less<>> Snap =
      Daemon.countersSnapshot();
  EXPECT_EQ(Snap.count("race.0"), 1u);
  EXPECT_EQ(Snap.count("race.499"), 1u);
  EXPECT_GE(Snap.at("race.499"), 1u);
}

TEST(TelemetryTest, LatencyQuantilesAreConservative) {
  Telemetry T;
  LatencyRecorder &L = T.latency("lat");
  // 100 samples 1..100 ms: p50 must cover 50ms, p99 must cover 99ms,
  // and the log-linear buckets overstate by at most ~12.5%.
  for (uint64_t Ms = 1; Ms <= 100; ++Ms)
    L.recordUs(Ms * 1000);
  EXPECT_EQ(L.count(), 100u);
  EXPECT_GE(L.quantileUs(0.50), 50u * 1000);
  EXPECT_LE(L.quantileUs(0.50), 57u * 1000);
  EXPECT_GE(L.quantileUs(0.99), 99u * 1000);
  EXPECT_LE(L.quantileUs(0.99), 112u * 1000);
  EXPECT_GE(L.quantileUs(1.0), L.quantileUs(0.5));
  EXPECT_NEAR(L.maxMs(), 100.0, 1e-9);
  EXPECT_NEAR(L.meanMs(), 50.5, 1e-9);
  // Empty recorder: all summaries zero.
  const LatencyRecorder &E = T.latency("empty");
  EXPECT_EQ(E.quantileUs(0.5), 0u);
  EXPECT_EQ(E.maxMs(), 0.0);
  EXPECT_EQ(E.meanMs(), 0.0);
}

TEST(TelemetryTest, LatencyBucketBoundsRoundTrip) {
  // Every value maps into a bucket whose upper bound covers it, within
  // one sub-bucket of log-linear resolution.
  for (uint64_t V : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull,
                     1000ull, 123456ull, 10000000ull}) {
    unsigned B = LatencyRecorder::bucketOf(V);
    EXPECT_GE(LatencyRecorder::bucketUpperUs(B), V) << V;
    if (B > 0) {
      EXPECT_LT(LatencyRecorder::bucketUpperUs(B - 1), V) << V;
    }
  }
}

TEST(TelemetryTest, GaugesExportAndOverwrite) {
  Telemetry T;
  T.gauge("mem.peak_rss_kb", 100);
  T.gauge("mem.peak_rss_kb", 250); // last write wins
  T.gauge("mem.cache_resident_bytes", 12345);
  EXPECT_EQ(T.gauges().at("mem.peak_rss_kb"), 250u);
  std::ostringstream OS;
  T.writeStatsJson(OS);
  EXPECT_TRUE(isValidJson(OS.str())) << OS.str();
  EXPECT_NE(OS.str().find("\"gauges\":{\"mem.cache_resident_bytes\":12345,"
                          "\"mem.peak_rss_kb\":250}"),
            std::string::npos)
      << OS.str();
}

TEST(TelemetryTest, PeakRssKbReportsSomethingPlausible) {
  uint64_t Kb = peakRssKb();
  // A running test process holds at least a megabyte and (sanity bound)
  // less than a terabyte.
  EXPECT_GT(Kb, 1024u);
  EXPECT_LT(Kb, uint64_t(1) << 30);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, RingKeepsMostRecentAndCountsDrops) {
  FlightRecorder FR(/*Capacity=*/4);
  for (int I = 1; I <= 6; ++I)
    FR.record("request.start", "r" + std::to_string(I), "method=analyze");
  EXPECT_EQ(FR.totalRecorded(), 6u);
  EXPECT_EQ(FR.dropped(), 2u);
  std::vector<FlightRecorder::Event> Events = FR.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events.front().Cid, "r3"); // oldest retained
  EXPECT_EQ(Events.back().Cid, "r6");
  EXPECT_EQ(Events.back().Seq, 6u);
  // Limited snapshot returns the most recent events, oldest first.
  std::vector<FlightRecorder::Event> Two = FR.snapshot(2);
  ASSERT_EQ(Two.size(), 2u);
  EXPECT_EQ(Two[0].Cid, "r5");
  EXPECT_EQ(Two[1].Cid, "r6");
  // Timestamps are monotone.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_GE(Events[I].TsUs, Events[I - 1].TsUs);
}

TEST(FlightRecorderTest, EventJsonIsValid) {
  FlightRecorder FR;
  FR.record("degradation", "r1", "kind=\"deadline\"\ncontext=f");
  std::string J = FlightRecorder::eventJson(FR.snapshot().front());
  EXPECT_TRUE(isValidJson(J)) << J;
  EXPECT_NE(J.find("\"kind\":\"degradation\""), std::string::npos);
  EXPECT_NE(J.find("\"cid\":\"r1\""), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentRecordersLoseNothing) {
  FlightRecorder FR(/*Capacity=*/64);
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t PerThread = 5000;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&FR, I] {
      for (uint64_t J = 0; J < PerThread; ++J)
        FR.record("tick", "t" + std::to_string(I), "");
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(FR.totalRecorded(), NumThreads * PerThread);
  EXPECT_EQ(FR.dropped(), NumThreads * PerThread - 64);
  EXPECT_EQ(FR.snapshot().size(), 64u);
}

//===----------------------------------------------------------------------===//
// Pipeline integration: exact counts on fixture programs
//===----------------------------------------------------------------------===//

// A direct call evaluated twice with identical inputs inside a loop
// fixed point: first evaluation analyzes the body (miss), the second is
// answered from the node's memoized IN/OUT pair.
constexpr const char *TwoEvaluationFixture = R"(
  int g1; int g2;
  void f(void) { }
  int main(void) {
    int c; int *q;
    q = &g1;
    while (c) { f(); q = &g2; }
    return 0;
  })";

TEST(TelemetryTest, MemoHitCountOnLoopFixture) {
  Pipeline P = Pipeline::analyzeSourceTraced(TwoEvaluationFixture);
  ASSERT_TRUE(P.ok());
  ASSERT_NE(P.Telem, nullptr);
  const auto &C = P.Telem->counters();
  // Loop converges in two passes: f() is evaluated once per pass.
  EXPECT_EQ(C.at("pta.loop_iterations").Value, 2u);
  EXPECT_EQ(C.at("pta.memo_hits").Value, 1u);
  // Bodies analyzed: main + f (once; the second call is the memo hit).
  EXPECT_EQ(C.at("pta.body_analyses").Value, 2u);
  EXPECT_EQ(C.at("mu.map_calls").Value, 2u);
  EXPECT_EQ(C.at("mu.unmap_calls").Value, 2u);
  // The per-loop iteration histogram saw one loop with two passes.
  const Histogram &H = P.Telem->histograms().at("pta.loop_fixpoint_iters");
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.max(), 2u);
}

TEST(TelemetryTest, InvisibleVariableCounter) {
  // writeThrough's **pp reaches caller-invisible storage: mapping must
  // create symbolic stand-ins (1_pp for p, 2_pp for x).
  Pipeline P = Pipeline::analyzeSourceTraced(R"(
    int writeThrough(int **pp) { **pp = 1; return **pp; }
    int main(void) {
      int x; int *p;
      p = &x;
      return writeThrough(&p);
    })");
  ASSERT_TRUE(P.ok());
  EXPECT_GE(P.Telem->counters().at("mu.invisible_vars").Value, 2u);
}

TEST(TelemetryTest, ThinResultFieldsMatchTelemetryCounters) {
  Pipeline P = Pipeline::analyzeSourceTraced(TwoEvaluationFixture);
  ASSERT_TRUE(P.ok());
  const auto &C = P.Telem->counters();
  EXPECT_EQ(P.Analysis.BodyAnalyses, C.at("pta.body_analyses").Value);
  EXPECT_EQ(P.Analysis.LoopIterations, C.at("pta.loop_iterations").Value);
  EXPECT_EQ(P.Analysis.MemoHits, C.at("pta.memo_hits").Value);
}

TEST(TelemetryTest, UntracedPipelineHasNoTelemetryButKeepsCounters) {
  Pipeline P = analyze(TwoEvaluationFixture);
  EXPECT_EQ(P.Telem, nullptr);
  // The legacy thin-read fields are still populated without telemetry.
  EXPECT_EQ(P.Analysis.BodyAnalyses, 2u);
  EXPECT_EQ(P.Analysis.MemoHits, 1u);
  EXPECT_EQ(P.Analysis.LoopIterations, 2u);
}

TEST(TelemetryTest, PipelineRecordsAllPhases) {
  Pipeline P = Pipeline::analyzeSourceTraced(TwoEvaluationFixture);
  ASSERT_TRUE(P.ok());
  auto HasSpan = [&](const char *Name) {
    for (const auto &S : P.Telem->spans())
      if (S.Name == Name)
        return true;
    return false;
  };
  for (const char *Phase :
       {"lex", "parse", "simplify", "analyze", "ig-build", "pointsto"})
    EXPECT_TRUE(HasSpan(Phase)) << Phase;
  // ig-build and pointsto nest inside analyze.
  for (const auto &S : P.Telem->spans())
    if (S.Name == "ig-build" || S.Name == "pointsto") {
      EXPECT_EQ(S.Depth, 1u) << S.Name;
    }
}

TEST(TelemetryTest, WarningsSurfaceThroughDiagnostics) {
  // An unresolvable indirect call produces an analysis warning; it must
  // be mirrored into the DiagnosticsEngine, not silently dropped.
  Pipeline P = Pipeline::analyzeSource(R"(
    int main(void) {
      int (*fp)(void);
      return fp();
    })");
  ASSERT_FALSE(P.Analysis.Warnings.empty());
  bool Mirrored = false;
  for (const Diagnostic &D : P.Diags.diagnostics())
    if (D.Level == DiagLevel::Warning &&
        D.Message == P.Analysis.Warnings.front())
      Mirrored = true;
  EXPECT_TRUE(Mirrored) << P.Diags.dump();
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, StatsJsonIsValidAndComplete) {
  Pipeline P = Pipeline::analyzeSourceTraced(TwoEvaluationFixture);
  ASSERT_TRUE(P.ok());
  std::ostringstream OS;
  P.Telem->writeStatsJson(OS);
  std::string J = OS.str();
  EXPECT_TRUE(isValidJson(J)) << J;
  // The acceptance bar: at least 10 named counters, including the
  // headline ones.
  EXPECT_GE(P.Telem->counters().size(), 10u);
  for (const char *Key :
       {"\"pta.memo_hits\"", "\"pta.body_analyses\"", "\"mu.map_calls\"",
        "\"mu.unmap_calls\"", "\"pta.loop_iterations\"",
        "\"mu.invisible_vars\"", "\"ig.nodes\"", "\"counters\"",
        "\"histograms\"", "\"phases_us\""})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
}

TEST(TelemetryTest, TraceJsonIsValidTraceEventFormat) {
  Pipeline P = Pipeline::analyzeSourceTraced(TwoEvaluationFixture);
  ASSERT_TRUE(P.ok());
  std::ostringstream OS;
  P.Telem->writeTraceJson(OS);
  std::string J = OS.str();
  EXPECT_TRUE(isValidJson(J)) << J;
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"pointsto\""), std::string::npos);
  // Every complete event needs ts and dur for trace viewers.
  EXPECT_NE(J.find("\"ts\":"), std::string::npos);
  EXPECT_NE(J.find("\"dur\":"), std::string::npos);
}

TEST(TelemetryTest, JsonEscaping) {
  EXPECT_EQ(Telemetry::jsonEscape("plain"), "plain");
  EXPECT_EQ(Telemetry::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(Telemetry::jsonEscape("x\ny"), "x\\ny");
}

TEST(TelemetryTest, ProfileTableListsPhases) {
  Pipeline P = Pipeline::analyzeSourceTraced(TwoEvaluationFixture);
  ASSERT_TRUE(P.ok());
  std::string Table = P.Telem->profileTable();
  for (const char *Phase : {"lex", "parse", "simplify", "pointsto", "total"})
    EXPECT_NE(Table.find(Phase), std::string::npos) << Table;
}

TEST(TelemetryTest, ProfileTableSortsByWallTimeAndShowsMem) {
  Telemetry T;
  {
    Telemetry::Span Slow(&T, "slow");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  { Telemetry::Span Fast(&T, "fast"); }
  T.gauge("mem.peak_rss_kb", 777);
  std::string Table = T.profileTable();
  // Hottest phase first, regardless of start order.
  EXPECT_LT(Table.find("slow"), Table.find("fast")) << Table;
  // mem.* gauges surface as a final summary line.
  EXPECT_NE(Table.find("mem:"), std::string::npos) << Table;
  EXPECT_NE(Table.find("peak_rss_kb=777"), std::string::npos) << Table;
}

//===----------------------------------------------------------------------===//
// Resource-governance counters (docs/ROBUSTNESS.md)
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, LoopLimitHitsCounter) {
  // Same fixture as AnalyzerOptionsTest.LoopIterationLimitWarnsButStaysSafe:
  // the three-stage copy chain needs three head merges; a cap of one
  // trips the safety valve, which must now also bump the counter.
  const char *Src = R"(
    int main(void) {
      int a; int b; int n;
      int *p1; int *p2; int *p3;
      p1 = &a;
      n = 10;
      while (n > 0) {
        p3 = p2;
        p2 = p1;
        p1 = &b;
        n = n - 1;
      }
      return *p3;
    })";
  pta::Analyzer::Options Capped;
  Capped.MaxLoopIterations = 1;
  Pipeline P = Pipeline::analyzeSourceTraced(Src, Capped);
  ASSERT_TRUE(P.ok());
  EXPECT_EQ(P.Telem->counters().at("pta.loop_limit_hits").Value, 1u);

  Pipeline Clean = Pipeline::analyzeSourceTraced(Src);
  ASSERT_TRUE(Clean.ok());
  EXPECT_EQ(Clean.Telem->counters().at("pta.loop_limit_hits").Value, 0u);
}

TEST(TelemetryTest, DegradationCountersPublished) {
  // pta.degraded.<kind> exists for every limit kind (zero-filled), and
  // a tripped budget shows up in both its kind counter and the total.
  const char *Src = R"(
    int g; int *gp;
    void touch(int *p) { gp = p; }
    int main(void) { touch(&g); touch(gp); return 0; })";
  pta::Analyzer::Options Governed;
  Governed.Limits.MaxStmtVisits = 3;
  Pipeline P = Pipeline::analyzeSourceTraced(Src, Governed);
  ASSERT_TRUE(P.Analysis.Analyzed);
  const auto &C = P.Telem->counters();
  for (const char *Key :
       {"pta.degraded.deadline", "pta.degraded.stmt_visits",
        "pta.degraded.locations", "pta.degraded.ig_nodes",
        "pta.degraded.rec_passes", "pta.degradations"})
    EXPECT_TRUE(C.count(Key)) << Key;
  EXPECT_GE(C.at("pta.degraded.stmt_visits").Value, 1u);
  EXPECT_EQ(C.at("pta.degradations").Value, P.Analysis.Degradations.size());

  std::ostringstream OS;
  P.Telem->writeStatsJson(OS);
  EXPECT_NE(OS.str().find("\"pta.degraded.stmt_visits\""),
            std::string::npos);
  EXPECT_NE(OS.str().find("\"pta.loop_limit_hits\""), std::string::npos);
}

} // namespace
