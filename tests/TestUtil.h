//===- TestUtil.h - shared test helpers -------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MCPTA_TESTS_TESTUTIL_H
#define MCPTA_TESTS_TESTUTIL_H

#include "driver/Pipeline.h"
#include "pointsto/LRLocations.h"

#include <gtest/gtest.h>

#include <string>

namespace mcpta {
namespace testutil {

/// Parses+lowers+analyzes; fails the test on any diagnostic.
inline Pipeline analyze(const std::string &Source) {
  Pipeline P = Pipeline::analyzeSource(Source);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  EXPECT_TRUE(P.Analysis.Analyzed);
  return P;
}

inline Pipeline analyze(const std::string &Source,
                        const pta::Analyzer::Options &Opts) {
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  return P;
}

/// The final points-to set of main rendered as a canonical string.
inline std::string mainOut(const Pipeline &P) {
  if (!P.Analysis.MainOut)
    return "<bottom>";
  return P.Analysis.MainOut->str(*P.Analysis.Locs);
}

/// True if the final set at end of main contains (Src, Dst) with the
/// given definiteness ('D', 'P', or '*' for either).
inline bool mainHasPair(const Pipeline &P, const std::string &Src,
                        const std::string &Dst, char D = '*') {
  if (!P.Analysis.MainOut)
    return false;
  std::string S = mainOut(P);
  if (D == '*')
    return S.find("(" + Src + "," + Dst + ",") != std::string::npos;
  return S.find("(" + Src + "," + Dst + "," + D + ")") != std::string::npos;
}

/// Looks up a local/global variable's location by (function, name).
/// Function name empty = global.
inline const pta::Location *findLoc(const Pipeline &P,
                                    const std::string &Func,
                                    const std::string &Var) {
  const cfront::VarDecl *Found = nullptr;
  if (Func.empty()) {
    for (const cfront::VarDecl *G : P.Prog->globals())
      if (G->name() == Var)
        Found = G;
  } else {
    for (const simple::FunctionIR &F : P.Prog->functions()) {
      if (F.Decl->name() != Func)
        continue;
      for (const cfront::VarDecl *L : F.Locals)
        if (L->name() == Var)
          Found = L;
      for (const cfront::VarDecl *Param : F.Decl->params())
        if (Param->name() == Var)
          Found = Param;
    }
  }
  if (!Found)
    return nullptr;
  return P.Analysis.Locs->varLoc(Found);
}

} // namespace testutil
} // namespace mcpta

#endif // MCPTA_TESTS_TESTUTIL_H
