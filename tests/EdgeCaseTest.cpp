//===- EdgeCaseTest.cpp - tricky C constructs end-to-end -----------------------===//
//
// Gnarly-but-legal C that stresses the frontend + simplifier + analysis
// together; each case must analyze cleanly and (where stated) produce
// the expected facts or interpret to the expected value.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"

using namespace mcpta;
using namespace mcpta::testutil;

namespace {

long long runExit(const std::string &Src) {
  Pipeline P = Pipeline::frontend(Src);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  auto R = interp::run(*P.Prog);
  EXPECT_TRUE(R.Completed) << R.Error;
  return R.ExitValue;
}

TEST(EdgeCaseTest, CommaOperator) {
  EXPECT_EQ(runExit("int main(void){ int a; int b; "
                    "a = (b = 3, b + 1); return a * 10 + b; }"),
            43);
}

TEST(EdgeCaseTest, NestedTernary) {
  EXPECT_EQ(runExit("int main(void){ int x; x = 2; "
                    "return x == 1 ? 10 : x == 2 ? 20 : 30; }"),
            20);
}

TEST(EdgeCaseTest, ChainedAssignment) {
  EXPECT_EQ(runExit("int main(void){ int a; int b; int c; "
                    "a = b = c = 7; return a + b + c; }"),
            21);
}

TEST(EdgeCaseTest, PointerComparisonDrivesControl) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int x; int *p; int *q;
      p = &x; q = &x;
      if (p == q) return 1;
      return 0;
    })"),
            1);
}

TEST(EdgeCaseTest, ArrayOfStructsWithPointers) {
  auto P = analyze(R"(
    struct S { int *p; };
    int main(void) {
      int x; int y;
      struct S arr[4];
      arr[0].p = &x;
      arr[2].p = &y;
      return *arr[0].p;
    })");
  EXPECT_TRUE(mainHasPair(P, "arr[0].p", "x", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "arr[1..].p", "y", 'P')) << mainOut(P);
}

TEST(EdgeCaseTest, StructContainingArrayOfPointers) {
  auto P = analyze(R"(
    struct Tab { int *slots[4]; int n; };
    int main(void) {
      int x;
      struct Tab t;
      t.slots[0] = &x;
      return *t.slots[0];
    })");
  EXPECT_TRUE(mainHasPair(P, "t.slots[0]", "x", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, NestedStructs) {
  auto P = analyze(R"(
    struct Inner { int *ptr; };
    struct Outer { struct Inner in; int v; };
    int main(void) {
      int x;
      struct Outer o;
      o.in.ptr = &x;
      return *o.in.ptr;
    })");
  EXPECT_TRUE(mainHasPair(P, "o.in.ptr", "x", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, SelfReferentialStructOnStack) {
  auto P = analyze(R"(
    struct N { struct N *next; };
    int main(void) {
      struct N a; struct N b;
      a.next = &b;
      b.next = &a;   /* cycle through the stack */
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "a.next", "b", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "b.next", "a", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, MultiDimensionalArrays) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int m[3][4];
      int i; int j; int s;
      for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
          m[i][j] = i * 4 + j;
      s = 0;
      for (i = 0; i < 3; i++)
        s = s + m[i][3];
      return s;
    })"),
            21);
}

TEST(EdgeCaseTest, TypedefChains) {
  auto P = analyze(R"(
    typedef int myint;
    typedef myint *pmyint;
    typedef pmyint *ppmyint;
    int main(void) {
      myint x;
      pmyint p;
      ppmyint q;
      p = &x;
      q = &p;
      return **q;
    })");
  EXPECT_TRUE(mainHasPair(P, "q", "p", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, UnionMembersAreSeparateLocations) {
  // Documented limitation (AST.h): union members are distinct abstract
  // locations; type punning through unions is out of scope.
  auto P = analyze(R"(
    union U { int *a; int *b; };
    int main(void) {
      int x;
      union U u;
      u.a = &x;
      return *u.a;
    })");
  EXPECT_TRUE(mainHasPair(P, "u.a", "x", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, EnumsInExpressions) {
  EXPECT_EQ(runExit(R"(
    enum Color { RED, GREEN = 10, BLUE };
    int main(void) {
      int c;
      c = BLUE;
      switch (c) {
      case BLUE: return GREEN;
      default: return RED;
      }
    })"),
            10);
}

TEST(EdgeCaseTest, StaticLocalPersistsAcrossCalls) {
  EXPECT_EQ(runExit(R"(
    int counter(void) {
      static int n;
      n = n + 1;
      return n;
    }
    int main(void) {
      counter();
      counter();
      return counter();
    })"),
            3);
}

TEST(EdgeCaseTest, ConditionWithAssignmentSideEffect) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int n; int count;
      n = 16; count = 0;
      while ((n = n / 2) > 0)
        count++;
      return count;
    })"),
            4);
}

TEST(EdgeCaseTest, VoidFunctionCallsAsStatements) {
  auto P = analyze(R"(
    int g;
    void bump(void) { g = g + 1; }
    int main(void) {
      bump();
      bump();
      return g;
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
}

TEST(EdgeCaseTest, DeeplyNestedControlFlow) {
  EXPECT_EQ(runExit(R"(
    int main(void) {
      int i; int j; int k; int s;
      s = 0;
      for (i = 0; i < 3; i++) {
        for (j = 0; j < 3; j++) {
          if (j == 2) break;
          k = 0;
          do {
            switch (k) {
            case 0: s = s + 1; break;
            case 1: s = s + 2; /* fall */
            default: s = s + 3;
            }
            k++;
          } while (k < 3);
        }
      }
      return s;
    })"),
            54);
}

TEST(EdgeCaseTest, AddressOfDereference) {
  // &*p is p's value — no actual dereference.
  auto P = analyze(R"(
    int main(void) {
      int x; int *p; int *q;
      p = &x;
      q = &*p;
      return *q;
    })");
  EXPECT_TRUE(mainHasPair(P, "q", "x", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, PointerToPointerParameterChains) {
  auto P = analyze(R"(
    void step(int ***ppp) { *ppp = NULL; }
    int main(void) {
      int x; int *p; int **pp;
      p = &x; pp = &p;
      step(&pp);
      return 0;
    })");
  EXPECT_TRUE(mainHasPair(P, "pp", "NULL", 'D')) << mainOut(P);
  EXPECT_TRUE(mainHasPair(P, "p", "x", 'D')) << mainOut(P);
}

TEST(EdgeCaseTest, NegativeAndHexLiterals) {
  EXPECT_EQ(runExit("int main(void){ return -5 + 0x10; }"), 11);
}

TEST(EdgeCaseTest, CharArithmetic) {
  EXPECT_EQ(runExit("int main(void){ char c; c = 'a'; "
                    "return c + 1 == 'b'; }"),
            1);
}

TEST(EdgeCaseTest, EmptyFunctionBodies) {
  auto P = analyze("void nop(void) { } int main(void) { nop(); "
                   "return 0; }");
  ASSERT_TRUE(P.Analysis.Analyzed);
}

TEST(EdgeCaseTest, RecursionThroughFunctionPointerParameter) {
  auto P = analyze(R"(
    int apply(int (*f)(int), int n) { return f(n); }
    int half(int n) {
      if (n <= 1) return 0;
      return 1 + apply(half, n / 2);
    }
    int main(void) {
      return apply(half, 16);
    })");
  ASSERT_TRUE(P.Analysis.Analyzed);
  EXPECT_GE(P.Analysis.IG->numRecursive(), 1u) << P.Analysis.IG->str();
}

} // namespace
