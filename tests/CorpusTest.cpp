//===- CorpusTest.cpp - corpus analysis smoke & shape tests --------------------===//
//
// Every Table 2 stand-in must parse, lower, analyze, and produce
// statistics with the qualitative shapes the paper reports (see
// DESIGN.md substitution 2).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "clients/GeneralStats.h"
#include "clients/IGStats.h"
#include "clients/IndirectRefStats.h"
#include "corpus/Corpus.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::testutil;

namespace {

TEST(CorpusTest, EighteenPrograms) {
  EXPECT_EQ(corpus::corpus().size(), 18u);
  EXPECT_NE(corpus::find("hash"), nullptr);
  EXPECT_NE(corpus::find("lws"), nullptr);
  EXPECT_NE(corpus::find("incrstress"), nullptr);
  EXPECT_EQ(corpus::find("nonexistent"), nullptr);
}

class CorpusAnalysis : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusAnalysis, AnalyzesCleanly) {
  const corpus::CorpusProgram *CP = corpus::find(GetParam());
  ASSERT_NE(CP, nullptr);
  Pipeline P = Pipeline::analyzeSource(CP->Source);
  ASSERT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  ASSERT_TRUE(P.Analysis.Analyzed);

  auto IR = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  auto GS = GeneralStats::compute(*P.Prog, P.Analysis);
  auto IS = IGStats::compute(*P.Prog, P.Analysis);

  // Table 5 shape: the paper's striking column — no heap-to-stack
  // pairs in any benchmark; our stand-ins preserve this.
  EXPECT_EQ(GS.HeapToStack, 0u) << GetParam();

  // Table 3 shape: the average number of targets per indirect
  // reference stays small. The paper reports 1.13 overall (max 1.77);
  // our miniatures inflate somewhat because statement sets are merged
  // over contexts and the single-heap summary is field-insensitive,
  // but the average must stay bounded.
  // hash walks ten string-literal keys through one merged char
  // pointer (2 locations per literal), the densest legitimate fan-in
  // in the corpus.
  if (IR.Stats.IndirectRefs > 0) {
    EXPECT_LE(IR.Stats.average(), 12.0) << GetParam();
  }

  // Table 6 shape: the invocation graph is modest (avg nodes per call
  // site stays in low single digits; paper max 2.53).
  if (IS.CallSites > 0) {
    EXPECT_LE(IS.avgPerCallSite(), 4.0) << GetParam();
  }

  EXPECT_GE(IS.Nodes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    All, CorpusAnalysis,
    ::testing::Values("genetic", "dry", "clinpack", "config", "toplev",
                      "compress", "mway", "hash", "misr", "xref",
                      "stanford", "fixoutput", "sim", "travel", "csuite",
                      "msc", "lws"),
    [](const ::testing::TestParamInfo<const char *> &I) {
      return std::string(I.param);
    });

// incrstress is synthetic (a generated stress program for the incremental
// engine, not a Table 2 stand-in), so it is exempt from the paper-shape
// assertions above — its whole point is an invocation graph whose context
// count dwarfs the static call-site count. It still has to analyze
// cleanly, and it must stay recursion- and fnptr-free so that every
// context is a graftable memo donor.
TEST(CorpusTest, IncrStressAnalyzesCleanly) {
  const corpus::CorpusProgram *CP = corpus::find("incrstress");
  ASSERT_NE(CP, nullptr);
  Pipeline P = Pipeline::analyzeSource(CP->Source);
  ASSERT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  ASSERT_TRUE(P.Analysis.Analyzed);
  EXPECT_TRUE(P.Analysis.Warnings.empty());
  EXPECT_EQ(P.Analysis.IG->numRecursive(), 0u);
  EXPECT_EQ(P.Analysis.IG->numApproximate(), 0u);
  // Contexts dwarf functions: the property bench_incr relies on.
  auto IS = IGStats::compute(*P.Prog, P.Analysis);
  EXPECT_GT(IS.Nodes, 20u * IS.Functions);
}

TEST(CorpusTest, HashUsesHeap) {
  Pipeline P = Pipeline::analyzeSource(corpus::find("hash")->Source);
  auto GS = GeneralStats::compute(*P.Prog, P.Analysis);
  EXPECT_GT(GS.StackToHeap, 0u) << "hash allocates nodes on the heap";
  EXPECT_GT(GS.HeapToHeap, 0u) << "hash chains heap nodes";
}

TEST(CorpusTest, ToplevHasFunctionPointerTable) {
  Pipeline P = Pipeline::analyzeSource(corpus::find("toplev")->Source);
  std::string IG = P.Analysis.IG->str();
  // The dispatch loop reaches all four handlers through the table.
  EXPECT_NE(IG.find("setO"), std::string::npos) << IG;
  EXPECT_NE(IG.find("setG"), std::string::npos) << IG;
  EXPECT_NE(IG.find("setW"), std::string::npos) << IG;
  EXPECT_NE(IG.find("setNone"), std::string::npos) << IG;
}

TEST(CorpusTest, StanfordHasRecursion) {
  Pipeline P = Pipeline::analyzeSource(corpus::find("stanford")->Source);
  EXPECT_GE(P.Analysis.IG->numRecursive(), 2u)
      << "permute/towers/queens recurse";
  EXPECT_GE(P.Analysis.IG->numApproximate(), 2u);
}

TEST(CorpusTest, XrefBuildsRecursiveTree) {
  Pipeline P = Pipeline::analyzeSource(corpus::find("xref")->Source);
  EXPECT_GE(P.Analysis.IG->numRecursive(), 1u);
  auto GS = GeneralStats::compute(*P.Prog, P.Analysis);
  EXPECT_GT(GS.HeapToHeap, 0u) << "tree nodes link heap to heap";
}

TEST(CorpusTest, ClinpackIsArrayHeavy) {
  Pipeline P = Pipeline::analyzeSource(corpus::find("clinpack")->Source);
  auto IR = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  // Most indirect references go through array-style pointers.
  EXPECT_GT(IR.Stats.IndirectRefs, 0u);
  unsigned ArrayStyle = IR.Stats.OneD.Array + IR.Stats.OneP.Array +
                        IR.Stats.TwoP.Array + IR.Stats.ThreeP.Array +
                        IR.Stats.FourPlusP.Array;
  EXPECT_GT(ArrayStyle, 0u);
}

TEST(CorpusTest, Table4FormalsDominantInParameterHeavyPrograms) {
  // Table 4's observation: most pairs used by indirect refs arise from
  // formal parameters.
  Pipeline P = Pipeline::analyzeSource(corpus::find("lws")->Source);
  auto IR = IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  EXPECT_GT(IR.Categories.FromFormal,
            IR.Categories.FromGlobal + IR.Categories.FromLocal)
      << "lws passes molecule pointers through parameters";
}

} // namespace
