//===- ParallelDeterminismTest.cpp - threads-N byte equivalence ----------------===//
//
// The parallel engine's core contract (docs/PARALLEL.md): the analysis
// result is byte-identical at any --analysis-threads width. Every
// corpus program is analyzed at widths 1, 2, and 8 with statement-set
// recording on, captured to a ResultSnapshot, and serialized; the
// mcpta-result-v3 blobs must match the sequential baseline exactly.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "serve/Serialize.h"

#include <gtest/gtest.h>

#include <string>

using namespace mcpta;

namespace {

std::string analyzeToBlob(const std::string &Source, unsigned Threads) {
  pta::Analyzer::Options Opts;
  Opts.RecordStmtSets = true;
  Opts.AnalysisThreads = Threads;
  Pipeline P = Pipeline::analyzeSource(Source, Opts);
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.dump();
  EXPECT_TRUE(P.Analysis.Analyzed);
  serve::ResultSnapshot Snap = serve::ResultSnapshot::capture(
      *P.Prog, P.Analysis, serve::optionsFingerprint(Opts));
  return serve::serialize(Snap);
}

class ParallelDeterminism : public ::testing::TestWithParam<const char *> {};

TEST_P(ParallelDeterminism, ByteIdenticalAcrossThreadCounts) {
  const corpus::CorpusProgram *CP = corpus::find(GetParam());
  ASSERT_NE(CP, nullptr);
  std::string Sequential = analyzeToBlob(CP->Source, 1);
  ASSERT_FALSE(Sequential.empty());
  for (unsigned Threads : {2u, 8u}) {
    std::string Parallel = analyzeToBlob(CP->Source, Threads);
    // EXPECT_EQ on the blobs would dump megabytes on failure; compare
    // and report only the verdict plus the first divergence offset.
    if (Parallel == Sequential)
      continue;
    size_t Off = 0;
    while (Off < Parallel.size() && Off < Sequential.size() &&
           Parallel[Off] == Sequential[Off])
      ++Off;
    ADD_FAILURE() << GetParam() << ": threads=" << Threads
                  << " blob diverges from sequential at byte " << Off
                  << " (sizes " << Parallel.size() << " vs "
                  << Sequential.size() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCorpus, ParallelDeterminism,
    ::testing::Values("genetic", "dry", "clinpack", "config", "toplev",
                      "compress", "mway", "hash", "misr", "xref", "stanford",
                      "fixoutput", "sim", "travel", "csuite", "msc", "lws",
                      "incrstress"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

// The fnptr resolution policies drive different IG growth; the
// determinism bar holds under each of them.
TEST(ParallelDeterminism, HoldsAcrossFnptrPolicies) {
  const corpus::CorpusProgram *CP = corpus::find("toplev");
  ASSERT_NE(CP, nullptr);
  for (pta::FnPtrMode Mode :
       {pta::FnPtrMode::Precise, pta::FnPtrMode::AllFunctions,
        pta::FnPtrMode::AddressTaken}) {
    pta::Analyzer::Options Seq, Par;
    Seq.FnPtr = Mode;
    Par.FnPtr = Mode;
    Par.AnalysisThreads = 4;
    Pipeline PS = Pipeline::analyzeSource(CP->Source, Seq);
    Pipeline PP = Pipeline::analyzeSource(CP->Source, Par);
    ASSERT_FALSE(PS.Diags.hasErrors());
    ASSERT_FALSE(PP.Diags.hasErrors());
    std::string BS = serve::serialize(serve::ResultSnapshot::capture(
        *PS.Prog, PS.Analysis, serve::optionsFingerprint(Seq)));
    std::string BP = serve::serialize(serve::ResultSnapshot::capture(
        *PP.Prog, PP.Analysis, serve::optionsFingerprint(Par)));
    EXPECT_TRUE(BS == BP) << "fnptr mode " << int(Mode);
  }
}

} // namespace
