//===- ParserTest.cpp - parser unit tests --------------------------------------===//

#include "cfront/Parser.h"

#include <gtest/gtest.h>

using namespace mcpta;
using namespace mcpta::cfront;

namespace {

struct Parsed {
  ASTContext Ctx;
  DiagnosticsEngine Diags;
  std::unique_ptr<TranslationUnit> Unit;
};

std::unique_ptr<Parsed> parse(const std::string &Src) {
  auto P = std::make_unique<Parsed>();
  P->Unit = Parser::parseSource(Src, P->Ctx, P->Diags);
  return P;
}

std::unique_ptr<Parsed> parseOk(const std::string &Src) {
  auto P = parse(Src);
  EXPECT_FALSE(P->Diags.hasErrors()) << P->Diags.dump();
  return P;
}

TEST(ParserTest, GlobalVariable) {
  auto P = parseOk("int x;");
  ASSERT_EQ(P->Unit->globals().size(), 1u);
  EXPECT_EQ(P->Unit->globals()[0]->name(), "x");
  EXPECT_TRUE(P->Unit->globals()[0]->type()->isInteger());
}

TEST(ParserTest, MultiLevelPointers) {
  auto P = parseOk("int ***x;");
  const Type *Ty = P->Unit->globals()[0]->type();
  for (int I = 0; I < 3; ++I) {
    ASSERT_TRUE(Ty->isPointer());
    Ty = cast<PointerType>(Ty)->pointee();
  }
  EXPECT_TRUE(Ty->isInteger());
}

TEST(ParserTest, ArrayDeclarator) {
  auto P = parseOk("double a[10][20];");
  const Type *Ty = P->Unit->globals()[0]->type();
  ASSERT_TRUE(Ty->isArray());
  EXPECT_EQ(cast<ArrayType>(Ty)->size(), 10);
  const Type *Inner = cast<ArrayType>(Ty)->element();
  ASSERT_TRUE(Inner->isArray());
  EXPECT_EQ(cast<ArrayType>(Inner)->size(), 20);
}

TEST(ParserTest, FunctionPointerDeclarator) {
  auto P = parseOk("int (*fp)(int, char *);");
  const Type *Ty = P->Unit->globals()[0]->type();
  ASSERT_TRUE(Ty->isPointer());
  const Type *Fn = cast<PointerType>(Ty)->pointee();
  ASSERT_TRUE(Fn->isFunction());
  const auto *FT = cast<FunctionType>(Fn);
  EXPECT_TRUE(FT->returnType()->isInteger());
  ASSERT_EQ(FT->paramTypes().size(), 2u);
  EXPECT_TRUE(FT->paramTypes()[1]->isPointer());
}

TEST(ParserTest, ArrayOfFunctionPointers) {
  auto P = parseOk("int (*table[8])(void);");
  const Type *Ty = P->Unit->globals()[0]->type();
  ASSERT_TRUE(Ty->isArray());
  EXPECT_EQ(cast<ArrayType>(Ty)->size(), 8);
  const Type *Elem = cast<ArrayType>(Ty)->element();
  ASSERT_TRUE(Elem->isPointer());
  EXPECT_TRUE(cast<PointerType>(Elem)->pointee()->isFunction());
}

TEST(ParserTest, FunctionReturningPointer) {
  auto P = parseOk("int *f(void);");
  ASSERT_EQ(P->Unit->functions().size(), 1u);
  EXPECT_TRUE(P->Unit->functions()[0]->returnType()->isPointer());
}

TEST(ParserTest, StructDefinitionAndFields) {
  auto P = parseOk("struct Node { int value; struct Node *next; };");
  ASSERT_EQ(P->Unit->records().size(), 1u);
  RecordDecl *RD = P->Unit->records()[0];
  EXPECT_TRUE(RD->isComplete());
  ASSERT_EQ(RD->fields().size(), 2u);
  EXPECT_EQ(RD->fields()[0]->name(), "value");
  EXPECT_TRUE(RD->fields()[1]->type()->isPointer());
}

TEST(ParserTest, TypedefResolution) {
  auto P = parseOk("typedef int myint; typedef myint *pint; pint g;");
  const Type *Ty = P->Unit->globals()[0]->type();
  ASSERT_TRUE(Ty->isPointer());
  EXPECT_TRUE(cast<PointerType>(Ty)->pointee()->isInteger());
}

TEST(ParserTest, EnumConstants) {
  auto P = parseOk("enum Color { RED, GREEN = 5, BLUE }; int a[BLUE];");
  const Type *Ty = P->Unit->globals()[0]->type();
  ASSERT_TRUE(Ty->isArray());
  EXPECT_EQ(cast<ArrayType>(Ty)->size(), 6); // BLUE == 6
}

TEST(ParserTest, FunctionDefinitionWithBody) {
  auto P = parseOk("int add(int a, int b) { return a + b; }");
  FunctionDecl *F = P->Unit->functions()[0];
  EXPECT_TRUE(F->isDefined());
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->params()[0]->name(), "a");
}

TEST(ParserTest, PrototypeThenDefinitionSharesDecl) {
  auto P = parseOk("int f(int); int f(int x) { return x; }");
  ASSERT_EQ(P->Unit->functions().size(), 1u);
  EXPECT_TRUE(P->Unit->functions()[0]->isDefined());
}

TEST(ParserTest, UseOfUndeclaredIdentifier) {
  auto P = parse("int main(void) { return undeclared; }");
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, GotoRejected) {
  auto P = parse("int main(void) { goto out; out: return 0; }");
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, StatementsParse) {
  auto P = parseOk(R"(
    int main(void) {
      int i; int s;
      s = 0;
      for (i = 0; i < 10; i++) s += i;
      while (s > 5) s--;
      do s++; while (s < 3);
      if (s) s = 1; else s = 2;
      switch (s) { case 1: s = 9; break; default: s = 8; }
      return s;
    })");
  EXPECT_TRUE(P->Unit->functions()[0]->isDefined());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto P = parseOk("int main(void) { int x; x = 1 + 2 * 3; return x; }");
  // Walk: body -> [decl, exprstmt(assign), return].
  auto *Body = P->Unit->functions()[0]->body();
  auto *ES = dynCastStmt<ExprStmt>(Body->body()[1]);
  ASSERT_NE(ES, nullptr);
  auto *Assign = dynCastExpr<AssignExpr>(ES->expr());
  ASSERT_NE(Assign, nullptr);
  auto *Add = dynCastExpr<BinaryExpr>(Assign->rhs());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  auto *Mul = dynCastExpr<BinaryExpr>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(ParserTest, AddressOfAndDerefTypes) {
  auto P = parseOk(
      "int main(void) { int x; int *p; p = &x; x = *p; return x; }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, DerefNonPointerDiagnosed) {
  auto P = parse("int main(void) { int x; x = *x; return 0; }");
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, MemberAccessTyping) {
  auto P = parseOk(R"(
    struct S { int a; int *p; };
    int main(void) {
      struct S s; struct S *ps;
      ps = &s; s.a = 1;
      return *ps->p == 0 ? ps->a : s.a;
    })");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, UnknownMemberDiagnosed) {
  auto P = parse("struct S { int a; }; int main(void) { struct S s; "
                 "return s.b; }");
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, CallTyping) {
  auto P = parseOk("int *get(void); int main(void) { int *p; p = get(); "
                   "return *p; }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, CallingNonFunctionDiagnosed) {
  auto P = parse("int main(void) { int x; return x(); }");
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, IndirectCallThroughPointer) {
  auto P = parseOk("int f(void); int main(void) { int (*fp)(void); "
                   "fp = f; return fp() + (*fp)(); }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, SizeofFoldsToConstant) {
  auto P = parseOk("int main(void) { return sizeof(int) + sizeof(char *); }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, CastExpression) {
  auto P = parseOk("void *malloc(int); int main(void) { int *p; "
                   "p = (int *)malloc(4); return *p; }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, VariadicFunctionDeclaration) {
  auto P = parseOk("int printf(char *fmt, ...);");
  EXPECT_TRUE(P->Unit->functions()[0]->type()->isVariadic());
}

TEST(ParserTest, InitializerLists) {
  auto P = parseOk("int a[3] = {1, 2, 3}; struct S { int x; int y; }; "
                   "struct S s = {4, 5};");
  ASSERT_EQ(P->Unit->globals().size(), 2u);
  EXPECT_NE(P->Unit->globals()[0]->init(), nullptr);
}

TEST(ParserTest, StaticLocalBecomesGlobalStorage) {
  auto P = parseOk("int f(void) { static int counter; counter++; "
                   "return counter; }");
  // static locals are registered as globals (they live like globals).
  ASSERT_EQ(P->Unit->globals().size(), 1u);
  EXPECT_EQ(P->Unit->globals()[0]->name(), "counter");
}

TEST(ParserTest, RedefinitionOfStructDiagnosed) {
  auto P = parse("struct S { int a; }; struct S { int b; };");
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, ScopedShadowing) {
  auto P = parseOk(R"(
    int x;
    int main(void) {
      int x;
      x = 1;
      { int x; x = 2; }
      return x;
    })");
  EXPECT_FALSE(P->Diags.hasErrors());
}

} // namespace
