//===- Simplifier.cpp - AST-to-SIMPLE lowering ------------------------------===//

#include "simple/Simplifier.h"

#include <cassert>

using namespace mcpta;
using namespace mcpta::simple;
using namespace mcpta::cfront;

bool mcpta::simple::isAllocatorName(const std::string &Name) {
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "valloc" || Name == "memalign" || Name == "strdup";
}

bool mcpta::simple::isNoReturnName(const std::string &Name) {
  return Name == "exit" || Name == "abort" || Name == "_exit";
}

namespace {

/// True if evaluating E can have side effects (assignments, calls,
/// increments). Used to decide whether && / || need control-flow
/// lowering.
bool hasSideEffects(const Expr *E) {
  if (!E)
    return false;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::FloatLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::NullLiteral:
  case Expr::Kind::DeclRef:
    return false;
  case Expr::Kind::Assign:
  case Expr::Kind::Call:
    return true;
  case Expr::Kind::Unary: {
    const auto *U = dynCastExpr<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      return true;
    default:
      return hasSideEffects(U->sub());
    }
  }
  case Expr::Kind::Binary: {
    const auto *B = dynCastExpr<BinaryExpr>(E);
    return hasSideEffects(B->lhs()) || hasSideEffects(B->rhs());
  }
  case Expr::Kind::Conditional: {
    const auto *C = dynCastExpr<ConditionalExpr>(E);
    return hasSideEffects(C->cond()) || hasSideEffects(C->thenExpr()) ||
           hasSideEffects(C->elseExpr());
  }
  case Expr::Kind::Member:
    return hasSideEffects(dynCastExpr<MemberExpr>(E)->base());
  case Expr::Kind::ArraySubscript: {
    const auto *A = dynCastExpr<ArraySubscriptExpr>(E);
    return hasSideEffects(A->base()) || hasSideEffects(A->index());
  }
  case Expr::Kind::Cast:
    return hasSideEffects(dynCastExpr<CastExpr>(E)->sub());
  case Expr::Kind::InitList: {
    for (const Expr *I : dynCastExpr<InitListExpr>(E)->inits())
      if (hasSideEffects(I))
        return true;
    return false;
  }
  }
  return true;
}

} // namespace

struct Simplifier::Impl {
  TranslationUnit &Unit;
  ASTContext &Ctx;
  TypeContext &Types;
  DiagnosticsEngine &Diags;
  std::unique_ptr<Program> Prog;

  FunctionDecl *CurFunction = nullptr;
  FunctionIR *CurIR = nullptr;
  std::vector<BlockStmt *> BlockStack;
  unsigned TempCount = 0;

  Impl(TranslationUnit &Unit, DiagnosticsEngine &Diags)
      : Unit(Unit), Ctx(Unit.context()), Types(Ctx.types()), Diags(Diags) {}

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  BlockStmt *pushBlock(SourceLoc Loc) {
    BlockStmt *B = Prog->create<BlockStmt>(Loc);
    BlockStack.push_back(B);
    return B;
  }
  BlockStmt *popBlock() {
    BlockStmt *B = BlockStack.back();
    BlockStack.pop_back();
    return B;
  }
  void emit(Stmt *S) {
    assert(!BlockStack.empty() && "no active block");
    BlockStack.back()->Body.push_back(S);
  }

  const VarDecl *makeTemp(const Type *Ty, SourceLoc Loc) {
    std::string Name = "$t" + std::to_string(TempCount++);
    auto *VD = Ctx.create<VarDecl>(Name, Loc, Ty, VarDecl::Storage::Temp);
    VD->setOwner(CurFunction);
    if (CurIR)
      CurIR->Locals.push_back(VD);
    return VD;
  }

  static Reference varRef(const VarDecl *V) {
    Reference R;
    R.Base = V;
    R.Ty = V->type();
    return R;
  }

  /// The value of an lvalue reference used as an rvalue operand.
  static Operand refOperand(const Reference &R) { return Operand::makeRef(R); }

  /// Normalizes a literal-0 operand assigned/compared to a pointer into
  /// the NULL constant (the paper treats NULL as a distinguished target).
  Operand coerce(Operand Op, const Type *DstTy) {
    if (!DstTy)
      return Op;
    const Type *D = DstTy;
    if (D->isPointer() && Op.K == Operand::Kind::IntConst &&
        Op.IntValue == 0)
      return Operand::makeNull(D);
    return Op;
  }

  void emitAssignOperand(Reference Lhs, Operand Rhs, SourceLoc Loc) {
    Rhs = coerce(std::move(Rhs), Lhs.Ty);
    auto *S = Prog->create<AssignStmt>(Loc, std::move(Lhs));
    S->RK = AssignStmt::RhsKind::Operand;
    S->A = std::move(Rhs);
    emit(S);
  }

  Operand materializeTo(const Type *Ty, Operand Op, SourceLoc Loc) {
    const VarDecl *T = makeTemp(Ty, Loc);
    emitAssignOperand(varRef(T), std::move(Op), Loc);
    return refOperand(varRef(T));
  }

  //===--------------------------------------------------------------------===//
  // References (lvalue lowering)
  //===--------------------------------------------------------------------===//

  /// Array decay: the value of an array-typed reference is the address of
  /// its first element.
  Reference decayArrayRef(Reference R) {
    if (!R.Ty || !R.Ty->isArray()) {
      // Lowering inconsistency: a non-array reference reached array
      // decay. Diagnose and pass it through unchanged rather than
      // dying on malformed input.
      Diags.error(SourceLoc(),
                  "internal: array decay applied to a non-array reference");
      return R;
    }
    const Type *Elem = cast<ArrayType>(R.Ty)->element();
    R.Path.push_back(Accessor::index(IndexKind::Zero));
    R.AddrOf = true;
    R.Ty = Types.pointerTo(Elem);
    return R;
  }

  /// Lowers E to a plain pointer-typed variable (for use as the base of a
  /// dereference). Emits a copy through a temp unless E already is a
  /// simple variable.
  const VarDecl *materializePointerVar(Expr *E) {
    if (auto *DR = dynCastExpr<DeclRefExpr>(E))
      if (auto *VD = dynCastDecl<VarDecl>(DR->decl()))
        if (VD->type()->isPointer())
          return VD;
    Operand Op = lowerExpr(E);
    const Type *Ty = Op.Ty;
    if (Ty && Ty->isArray())
      Ty = Types.pointerTo(cast<ArrayType>(Ty)->element());
    if (!Ty || !Ty->isPointer()) {
      Diags.error(E->loc(), "expected pointer-typed expression");
      Ty = Types.pointerTo(Types.intType());
    }
    const VarDecl *T = makeTemp(Ty, E->loc());
    emitAssignOperand(varRef(T), std::move(Op), E->loc());
    return T;
  }

  /// Lowers a subscript expression into an index accessor. The abstract
  /// kind (0 / positive / unknown) feeds the analysis; the concrete
  /// constant or temp variable feeds the SIMPLE interpreter.
  Accessor makeIndexAccessor(Expr *Index) {
    if (const auto *IL = dynCastExpr<IntLiteralExpr>(Index))
      return Accessor::index(IL->value() == 0  ? IndexKind::Zero
                             : IL->value() > 0 ? IndexKind::Positive
                                               : IndexKind::Unknown,
                             IL->value());
    Operand Op = lowerExpr(Index);
    if (Op.K == Operand::Kind::IntConst)
      return Accessor::index(Op.IntValue == 0  ? IndexKind::Zero
                             : Op.IntValue > 0 ? IndexKind::Positive
                                               : IndexKind::Unknown,
                             Op.IntValue);
    if (!Op.isRef() || Op.Ref.Deref || Op.Ref.AddrOf ||
        !Op.Ref.Path.empty())
      Op = materializeTo(Types.intType(), std::move(Op), Index->loc());
    return Accessor::index(IndexKind::Unknown, 0, Op.Ref.Base);
  }

  /// Lowers an lvalue expression to a SIMPLE reference (Table 1 forms).
  Reference lowerLvalue(Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::DeclRef: {
      auto *DR = castExpr<DeclRefExpr>(E);
      if (auto *VD = dynCastDecl<VarDecl>(DR->decl()))
        return varRef(VD);
      Diags.error(E->loc(), "expression is not an assignable location");
      break;
    }
    case Expr::Kind::Member: {
      auto *M = castExpr<MemberExpr>(E);
      Reference R;
      if (M->isArrow()) {
        const VarDecl *P = materializePointerVar(M->base());
        R.Base = P;
        R.Deref = true;
      } else {
        R = lowerLvalue(M->base());
        if (R.AddrOf) {
          Diags.error(E->loc(), "cannot select member of address value");
          return R;
        }
      }
      R.Path.push_back(Accessor::field(M->member()));
      R.Ty = M->member()->type();
      return R;
    }
    case Expr::Kind::Unary: {
      auto *U = castExpr<UnaryExpr>(E);
      if (U->op() == UnaryOp::Deref) {
        Reference R;
        R.Base = materializePointerVar(U->sub());
        R.Deref = true;
        R.Ty = E->type();
        return R;
      }
      break;
    }
    case Expr::Kind::ArraySubscript: {
      auto *A = castExpr<ArraySubscriptExpr>(E);
      Accessor Idx = makeIndexAccessor(A->index());
      const Type *BaseTy = A->base()->type();
      Reference R;
      if (BaseTy->isArray()) {
        R = lowerLvalue(A->base());
        if (R.AddrOf) {
          Diags.error(E->loc(), "cannot subscript address value");
          return R;
        }
        R.Path.push_back(Idx);
        R.Ty = E->type();
        return R;
      }
      // Pointer subscript: p[i] is *(p + i) — a shift across cells.
      Idx.IsShift = true;
      R.Base = materializePointerVar(A->base());
      R.Deref = true;
      R.Path.push_back(Idx);
      R.Ty = E->type();
      return R;
    }
    case Expr::Kind::Cast:
      // Lvalue casts: lower through (types were checked by the parser).
      return lowerLvalue(castExpr<CastExpr>(E)->sub());
    default:
      break;
    }
    Diags.error(E->loc(), "expression is not an assignable location");
    Reference R;
    R.Base = makeTemp(E->type(), E->loc());
    R.Ty = E->type();
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  /// Lowers one call argument to a constant or plain variable name.
  Operand lowerArg(Expr *E) {
    Operand Op = lowerExpr(E);
    switch (Op.K) {
    case Operand::Kind::Ref: {
      const Reference &R = Op.Ref;
      bool Plain = !R.Deref && !R.AddrOf && R.Path.empty();
      if (Plain)
        return Op;
      return materializeTo(R.Ty ? R.Ty : E->type(), std::move(Op), E->loc());
    }
    case Operand::Kind::FunctionAddr: {
      // Function arguments become plain function-pointer variables.
      const Type *PT = Types.pointerTo(Op.Fn->type());
      return materializeTo(PT, std::move(Op), E->loc());
    }
    default:
      return Op;
    }
  }

  /// Builds the CallInfo for a call expression (lowering the callee and
  /// args), or returns std::nullopt for allocator calls.
  CallInfo lowerCallInfo(CallExpr *CE) {
    CallInfo CI;
    CI.CallSiteId = Prog->allocCallSiteId();
    if (FunctionDecl *FD = CE->directCallee()) {
      CI.Callee = FD;
      CI.NoReturn = isNoReturnName(FD->name());
    } else {
      // Indirect call: reduce the function pointer to a plain scalar
      // variable.
      Expr *Callee = CE->callee();
      // Peel the no-op deref of the function designator: in (*fp)() the
      // deref yields the function itself, so the call goes through fp.
      // A deref yielding another function *pointer* (e.g. (*pfp) with
      // pfp of type int(**)(void)) is a real load and must stay.
      while (true) {
        if (auto *C = dynCastExpr<CastExpr>(Callee)) {
          Callee = C->sub();
          continue;
        }
        if (auto *U = dynCastExpr<UnaryExpr>(Callee)) {
          if (U->op() == UnaryOp::Deref && U->type()->isFunction()) {
            Callee = U->sub();
            continue;
          }
        }
        break;
      }
      const VarDecl *FP = materializePointerVar(Callee);
      CI.FnPtr = varRef(FP);
    }
    for (Expr *Arg : CE->args())
      CI.Args.push_back(lowerArg(Arg));
    return CI;
  }

  bool isAllocatorCall(const CallExpr *CE) {
    const FunctionDecl *FD = CE->directCallee();
    return FD && isAllocatorName(FD->name());
  }

  /// Lowers a call in value position into `lhs = call`.
  void emitCallAssign(Reference Lhs, CallExpr *CE) {
    auto *S = Prog->create<AssignStmt>(CE->loc(), std::move(Lhs));
    if (isAllocatorCall(CE)) {
      // Arguments of malloc & friends are size expressions; evaluate for
      // side effects only.
      for (Expr *Arg : CE->args())
        if (hasSideEffects(Arg))
          lowerExpr(Arg);
      S->RK = AssignStmt::RhsKind::Alloc;
    } else {
      S->RK = AssignStmt::RhsKind::Call;
      S->Call = lowerCallInfo(CE);
    }
    emit(S);
  }

  //===--------------------------------------------------------------------===//
  // Expressions (rvalue lowering)
  //===--------------------------------------------------------------------===//

  Operand lowerExpr(Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return Operand::makeInt(castExpr<IntLiteralExpr>(E)->value(),
                              E->type());
    case Expr::Kind::FloatLiteral:
      return Operand::makeFloat(castExpr<FloatLiteralExpr>(E)->value(),
                                E->type());
    case Expr::Kind::NullLiteral:
      return Operand::makeNull(E->type());
    case Expr::Kind::StringLiteral: {
      unsigned Id =
          Prog->internString(castExpr<StringLiteralExpr>(E)->value());
      return Operand::makeString(Id, Types.pointerTo(Types.charType()));
    }
    case Expr::Kind::DeclRef: {
      auto *DR = castExpr<DeclRefExpr>(E);
      if (auto *FD = dynCastDecl<FunctionDecl>(DR->decl())) {
        FD->setAddressTaken();
        return Operand::makeFunction(FD, Types.pointerTo(FD->type()));
      }
      auto *VD = dynCastDecl<VarDecl>(DR->decl());
      if (!VD) {
        Diags.error(E->loc(), "unsupported declaration reference");
        return Operand::makeInt(0, Types.intType());
      }
      Reference R = varRef(VD);
      if (R.Ty->isArray())
        R = decayArrayRef(std::move(R));
      return refOperand(R);
    }
    case Expr::Kind::Unary:
      return lowerUnary(castExpr<UnaryExpr>(E));
    case Expr::Kind::Binary:
      return lowerBinary(castExpr<BinaryExpr>(E));
    case Expr::Kind::Assign:
      return lowerAssign(castExpr<AssignExpr>(E));
    case Expr::Kind::Conditional: {
      auto *C = castExpr<ConditionalExpr>(E);
      const Type *Ty = E->type();
      const VarDecl *T = makeTemp(Ty, E->loc());
      Operand Cond = lowerCondition(C->cond());
      BlockStmt *ThenB = pushBlock(E->loc());
      emitAssignOperand(varRef(T), lowerExpr(C->thenExpr()), E->loc());
      popBlock();
      BlockStmt *ElseB = pushBlock(E->loc());
      emitAssignOperand(varRef(T), lowerExpr(C->elseExpr()), E->loc());
      popBlock();
      emit(Prog->create<IfStmt>(E->loc(), std::move(Cond), ThenB, ElseB));
      return refOperand(varRef(T));
    }
    case Expr::Kind::Call: {
      auto *CE = castExpr<CallExpr>(E);
      const Type *Ty = E->type()->isVoid() ? Types.intType() : E->type();
      const VarDecl *T = makeTemp(Ty, E->loc());
      emitCallAssign(varRef(T), CE);
      return refOperand(varRef(T));
    }
    case Expr::Kind::Member:
    case Expr::Kind::ArraySubscript: {
      Reference R = lowerLvalue(E);
      if (R.Ty && R.Ty->isArray())
        R = decayArrayRef(std::move(R));
      return refOperand(R);
    }
    case Expr::Kind::Cast: {
      auto *C = castExpr<CastExpr>(E);
      Operand Op = lowerExpr(C->sub());
      const Type *DstTy = E->type();
      if (DstTy->isPointer() && Op.K == Operand::Kind::IntConst) {
        if (Op.IntValue == 0)
          return Operand::makeNull(DstTy);
        Diags.warning(E->loc(),
                      "cast of non-zero integer to pointer yields an "
                      "unknown target; no points-to pair is recorded");
      }
      Op.Ty = DstTy;
      return Op;
    }
    case Expr::Kind::InitList:
      Diags.error(E->loc(), "initializer list in expression context");
      return Operand::makeInt(0, Types.intType());
    }
    return Operand::makeInt(0, Types.intType());
  }

  Operand lowerUnary(UnaryExpr *U) {
    SourceLoc Loc = U->loc();
    switch (U->op()) {
    case UnaryOp::AddrOf: {
      // &function handled via DeclRef lowering below.
      if (auto *DR = dynCastExpr<DeclRefExpr>(U->sub()))
        if (auto *FD = dynCastDecl<FunctionDecl>(DR->decl())) {
          FD->setAddressTaken();
          return Operand::makeFunction(FD, Types.pointerTo(FD->type()));
        }
      Reference R = lowerLvalue(U->sub());
      if (R.AddrOf) {
        Diags.error(Loc, "cannot take address of address value");
        return refOperand(R);
      }
      R.AddrOf = true;
      R.Ty = U->type();
      return refOperand(R);
    }
    case UnaryOp::Deref: {
      // Deref of a function pointer in value position denotes the
      // function itself; keep the pointer value.
      if (U->type()->isFunction())
        return lowerExpr(U->sub());
      Reference R = lowerLvalue(U);
      if (R.Ty && R.Ty->isArray())
        R = decayArrayRef(std::move(R));
      return refOperand(R);
    }
    case UnaryOp::Plus:
      return lowerExpr(U->sub());
    case UnaryOp::Minus:
    case UnaryOp::Not:
    case UnaryOp::BitNot: {
      Operand Sub = lowerExpr(U->sub());
      const VarDecl *T = makeTemp(U->type(), Loc);
      auto *S = Prog->create<AssignStmt>(Loc, varRef(T));
      S->RK = AssignStmt::RhsKind::Unary;
      S->UOp = U->op();
      S->A = std::move(Sub);
      emit(S);
      return refOperand(varRef(T));
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec: {
      Reference Lv = lowerLvalue(U->sub());
      emitIncDec(Lv, U->op() == UnaryOp::PreInc, Loc);
      return refOperand(Lv);
    }
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      Reference Lv = lowerLvalue(U->sub());
      Operand Old = materializeTo(Lv.Ty, refOperand(Lv), Loc);
      emitIncDec(Lv, U->op() == UnaryOp::PostInc, Loc);
      return Old;
    }
    }
    return Operand::makeInt(0, Types.intType());
  }

  void emitIncDec(const Reference &Lv, bool IsInc, SourceLoc Loc) {
    auto *S = Prog->create<AssignStmt>(Loc, Lv);
    S->RK = AssignStmt::RhsKind::Binary;
    S->BOp = IsInc ? BinaryOp::Add : BinaryOp::Sub;
    S->A = refOperand(Lv);
    S->B = Operand::makeInt(1, Types.intType());
    emit(S);
  }

  Operand lowerBinary(BinaryExpr *B) {
    SourceLoc Loc = B->loc();
    if (B->op() == BinaryOp::Comma) {
      lowerExpr(B->lhs());
      return lowerExpr(B->rhs());
    }
    if ((B->op() == BinaryOp::LogAnd || B->op() == BinaryOp::LogOr) &&
        hasSideEffects(B->rhs())) {
      // Control-flow lowering preserves the guard for side effects:
      //   t = a; if (t) t = (b != 0);      (&&)
      //   t = a; if (!t) t = (b != 0);     (||) — via inverted temp
      const VarDecl *T = makeTemp(Types.intType(), Loc);
      Operand A = lowerExpr(B->lhs());
      emitAssignOperand(varRef(T), std::move(A), Loc);
      Operand Guard = refOperand(varRef(T));
      if (B->op() == BinaryOp::LogOr) {
        const VarDecl *Inv = makeTemp(Types.intType(), Loc);
        auto *S = Prog->create<AssignStmt>(Loc, varRef(Inv));
        S->RK = AssignStmt::RhsKind::Unary;
        S->UOp = UnaryOp::Not;
        S->A = refOperand(varRef(T));
        emit(S);
        Guard = refOperand(varRef(Inv));
      }
      BlockStmt *ThenB = pushBlock(Loc);
      emitAssignOperand(varRef(T), lowerExpr(B->rhs()), Loc);
      popBlock();
      emit(Prog->create<IfStmt>(Loc, std::move(Guard), ThenB, nullptr));
      return refOperand(varRef(T));
    }
    Operand A = lowerExpr(B->lhs());
    Operand BOp = lowerExpr(B->rhs());
    const VarDecl *T = makeTemp(B->type(), Loc);
    auto *S = Prog->create<AssignStmt>(Loc, varRef(T));
    S->RK = AssignStmt::RhsKind::Binary;
    S->BOp = B->op();
    S->A = std::move(A);
    S->B = std::move(BOp);
    emit(S);
    return refOperand(varRef(T));
  }

  Operand lowerAssign(AssignExpr *A) {
    SourceLoc Loc = A->loc();
    Reference Lhs = lowerLvalue(A->lhs());
    if (A->op() == AssignOp::Assign) {
      emitStore(Lhs, A->rhs(), Loc);
    } else {
      static const BinaryOp OpMap[] = {
          BinaryOp::Add /*unused: Assign*/, BinaryOp::Add, BinaryOp::Sub,
          BinaryOp::Mul, BinaryOp::Div, BinaryOp::Rem, BinaryOp::Shl,
          BinaryOp::Shr, BinaryOp::BitAnd, BinaryOp::BitOr,
          BinaryOp::BitXor};
      Operand Rhs = lowerExpr(A->rhs());
      auto *S = Prog->create<AssignStmt>(Loc, Lhs);
      S->RK = AssignStmt::RhsKind::Binary;
      S->BOp = OpMap[static_cast<int>(A->op())];
      S->A = refOperand(Lhs);
      S->B = std::move(Rhs);
      emit(S);
    }
    return refOperand(Lhs);
  }

  /// Stores the value of Rhs into Lhs, handling call/alloc rhs directly.
  void emitStore(const Reference &Lhs, Expr *Rhs, SourceLoc Loc) {
    if (auto *CE = dynCastExpr<CallExpr>(Rhs)) {
      emitCallAssign(Lhs, CE);
      return;
    }
    if (auto *C = dynCastExpr<CastExpr>(Rhs))
      if (auto *CE = dynCastExpr<CallExpr>(C->sub())) {
        emitCallAssign(Lhs, CE);
        return;
      }
    emitAssignOperand(Lhs, lowerExpr(Rhs), Loc);
  }

  /// Lowers a condition to an operand (usually a plain variable).
  Operand lowerCondition(Expr *E) {
    Operand Op = lowerExpr(E);
    if (Op.isRef() && !Op.Ref.Deref && !Op.Ref.AddrOf && Op.Ref.Path.empty())
      return Op;
    if (Op.K != Operand::Kind::Ref)
      return Op; // constant condition
    return materializeTo(Op.Ty ? Op.Ty : Types.intType(), std::move(Op),
                         E->loc());
  }

  /// Lowers a condition to a plain variable and returns it, emitting the
  /// evaluation code into the current block. Returns null for a constant
  /// non-zero condition (infinite loop) .
  const VarDecl *lowerLoopCondition(Expr *E, SourceLoc Loc,
                                    const VarDecl *Into) {
    if (!E)
      return nullptr;
    if (const auto *IL = dynCastExpr<IntLiteralExpr>(E))
      if (IL->value() != 0)
        return nullptr;
    Operand Op = lowerExpr(E);
    const VarDecl *T = Into ? Into : makeTemp(Types.intType(), Loc);
    emitAssignOperand(varRef(T), std::move(Op), Loc);
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Initializers
  //===--------------------------------------------------------------------===//

  void lowerInit(const Reference &Target, Expr *Init) {
    if (auto *IL = dynCastExpr<InitListExpr>(Init)) {
      const Type *Ty = Target.Ty;
      if (const auto *AT = dynCast<ArrayType>(Ty)) {
        unsigned I = 0;
        for (Expr *Elem : IL->inits()) {
          Reference ER = Target;
          ER.Path.push_back(Accessor::index(
              I == 0 ? IndexKind::Zero : IndexKind::Positive, I));
          ER.Ty = AT->element();
          lowerInit(ER, Elem);
          ++I;
        }
        return;
      }
      if (const auto *RT = dynCast<RecordType>(Ty)) {
        const auto &Fields = RT->decl()->fields();
        for (unsigned I = 0; I < IL->inits().size() && I < Fields.size();
             ++I) {
          Reference FR = Target;
          FR.Path.push_back(Accessor::field(Fields[I]));
          FR.Ty = Fields[I]->type();
          lowerInit(FR, IL->inits()[I]);
        }
        return;
      }
      if (!IL->inits().empty())
        lowerInit(Target, IL->inits()[0]);
      return;
    }
    emitStore(Target, Init, Init->loc());
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmt(cfront::Stmt *S) {
    switch (S->kind()) {
    case cfront::Stmt::Kind::Compound: {
      for (cfront::Stmt *Child : castStmt<cfront::CompoundStmt>(S)->body())
        lowerStmt(Child);
      return;
    }
    case cfront::Stmt::Kind::Decl: {
      for (VarDecl *V : castStmt<cfront::DeclStmt>(S)->vars()) {
        if (V->storage() != VarDecl::Storage::Global && CurIR)
          CurIR->Locals.push_back(V);
        if (V->init())
          lowerInit(varRef(V), V->init());
      }
      return;
    }
    case cfront::Stmt::Kind::Expr: {
      Expr *E = castStmt<cfront::ExprStmt>(S)->expr();
      lowerExprStmt(E);
      return;
    }
    case cfront::Stmt::Kind::If: {
      auto *I = castStmt<cfront::IfStmt>(S);
      Operand Cond = lowerCondition(I->cond());
      BlockStmt *ThenB = pushBlock(S->loc());
      lowerStmt(I->thenStmt());
      popBlock();
      BlockStmt *ElseB = nullptr;
      if (I->elseStmt()) {
        ElseB = pushBlock(S->loc());
        lowerStmt(I->elseStmt());
        popBlock();
      }
      emit(Prog->create<IfStmt>(S->loc(), std::move(Cond), ThenB, ElseB));
      return;
    }
    case cfront::Stmt::Kind::While: {
      auto *W = castStmt<cfront::WhileStmt>(S);
      const VarDecl *CondVar =
          lowerLoopCondition(W->cond(), S->loc(), nullptr);
      auto *L = Prog->create<LoopStmt>(S->loc());
      L->CondVar = CondVar;
      L->PostTest = false;
      pushBlock(S->loc());
      lowerStmt(W->body());
      L->Body = popBlock();
      if (CondVar) {
        pushBlock(S->loc());
        lowerLoopCondition(W->cond(), S->loc(), CondVar);
        L->Trailer = popBlock();
      }
      emit(L);
      return;
    }
    case cfront::Stmt::Kind::Do: {
      auto *D = castStmt<cfront::DoStmt>(S);
      auto *L = Prog->create<LoopStmt>(S->loc());
      L->PostTest = true;
      pushBlock(S->loc());
      lowerStmt(D->body());
      L->Body = popBlock();
      // Pre-compute the condition variable name by lowering into the
      // trailer; a constant-true condition leaves CondVar null.
      pushBlock(S->loc());
      L->CondVar = lowerLoopCondition(D->cond(), S->loc(), nullptr);
      L->Trailer = popBlock();
      if (L->Trailer && castStmt<BlockStmt>(L->Trailer)->Body.empty())
        L->Trailer = nullptr;
      emit(L);
      return;
    }
    case cfront::Stmt::Kind::For: {
      auto *F = castStmt<cfront::ForStmt>(S);
      if (F->init())
        lowerStmt(F->init());
      const VarDecl *CondVar =
          lowerLoopCondition(F->cond(), S->loc(), nullptr);
      auto *L = Prog->create<LoopStmt>(S->loc());
      L->CondVar = CondVar;
      L->PostTest = false;
      pushBlock(S->loc());
      lowerStmt(F->body());
      L->Body = popBlock();
      pushBlock(S->loc());
      if (F->inc())
        lowerExprStmt(F->inc());
      if (CondVar)
        lowerLoopCondition(F->cond(), S->loc(), CondVar);
      L->Trailer = popBlock();
      if (castStmt<BlockStmt>(L->Trailer)->Body.empty())
        L->Trailer = nullptr;
      emit(L);
      return;
    }
    case cfront::Stmt::Kind::Switch: {
      auto *Sw = castStmt<cfront::SwitchStmt>(S);
      Operand Cond = lowerCondition(Sw->cond());
      auto *SS = Prog->create<SwitchStmt>(S->loc(), std::move(Cond));
      for (const cfront::SwitchCase &C : Sw->cases()) {
        SwitchStmt::Case SC;
        SC.Values = C.Values;
        SC.IsDefault = C.IsDefault;
        BlockStmt *B = pushBlock(S->loc());
        for (cfront::Stmt *Child : C.Body)
          lowerStmt(Child);
        popBlock();
        SC.Body = B->Body;
        SS->Cases.push_back(std::move(SC));
      }
      emit(SS);
      return;
    }
    case cfront::Stmt::Kind::Break:
      emit(Prog->create<BreakStmt>(S->loc()));
      return;
    case cfront::Stmt::Kind::Continue:
      emit(Prog->create<ContinueStmt>(S->loc()));
      return;
    case cfront::Stmt::Kind::Return: {
      auto *R = castStmt<cfront::ReturnStmt>(S);
      std::optional<Operand> Value;
      if (R->value()) {
        Operand Op = lowerExpr(R->value());
        Op = coerce(std::move(Op), CurFunction->returnType());
        // Return operands are constants or plain variables, like args.
        if (Op.isRef() && (Op.Ref.Deref || Op.Ref.AddrOf ||
                           !Op.Ref.Path.empty()))
          Op = materializeTo(Op.Ty, std::move(Op), S->loc());
        else if (Op.K == Operand::Kind::FunctionAddr)
          Op = materializeTo(Types.pointerTo(Op.Fn->type()), std::move(Op),
                             S->loc());
        Value = std::move(Op);
      }
      emit(Prog->create<simple::ReturnStmt>(S->loc(), std::move(Value)));
      return;
    }
    case cfront::Stmt::Kind::Null:
      return;
    }
  }

  /// Statement-position expression: avoid dead result temps for calls
  /// and assignments.
  void lowerExprStmt(Expr *E) {
    if (auto *CE = dynCastExpr<CallExpr>(E)) {
      if (isAllocatorCall(CE)) {
        // Result discarded; still model the allocation? A discarded
        // malloc has no points-to effect.
        for (Expr *Arg : CE->args())
          if (hasSideEffects(Arg))
            lowerExpr(Arg);
        return;
      }
      emit(Prog->create<CallStmt>(E->loc(), lowerCallInfo(CE)));
      return;
    }
    if (auto *A = dynCastExpr<AssignExpr>(E)) {
      lowerAssign(A);
      return;
    }
    lowerExpr(E);
  }

  //===--------------------------------------------------------------------===//
  // Top level
  //===--------------------------------------------------------------------===//

  void simplifyFunction(FunctionDecl *FD, FunctionIR &FIR) {
    CurFunction = FD;
    CurIR = &FIR;

    FIR.Decl = FD;
    pushBlock(FD->loc());
    lowerStmt(FD->body());
    FIR.Body = popBlock();
    CurFunction = nullptr;
    CurIR = nullptr;
  }

  std::unique_ptr<Program> run() {
    Prog = std::make_unique<Program>(Unit);
    for (const VarDecl *G : Unit.globals())
      Prog->addGlobal(G);

    // Reserve function IR slots first so global-init temps can be owned
    // by main if needed.
    std::vector<FunctionDecl *> Defined;
    for (FunctionDecl *FD : Unit.functions())
      if (FD->isDefined())
        Defined.push_back(FD);

    FunctionDecl *Main = Unit.findFunction("main");

    Prog->functions().resize(Defined.size());
    FunctionIR *MainIR = nullptr;
    for (size_t I = 0; I < Defined.size(); ++I) {
      Prog->functions()[I].Decl = Defined[I];
      if (Defined[I] == Main)
        MainIR = &Prog->functions()[I];
    }

    CurFunction = Main;
    CurIR = MainIR;

    BlockStmt *InitB = pushBlock(SourceLoc());
    for (const VarDecl *G : Unit.globals())
      if (G->init())
        lowerInit(varRef(G), const_cast<VarDecl *>(G)->init());
    popBlock();
    Prog->setGlobalInit(InitB);
    CurFunction = nullptr;
    CurIR = nullptr;

    for (FunctionIR &FIR : Prog->functions())
      simplifyFunction(const_cast<FunctionDecl *>(FIR.Decl), FIR);

    if (Diags.hasErrors())
      return nullptr;
    return std::move(Prog);
  }
};

Simplifier::Simplifier(TranslationUnit &Unit, DiagnosticsEngine &Diags)
    : PImpl(std::make_unique<Impl>(Unit, Diags)) {}

Simplifier::~Simplifier() = default;

std::unique_ptr<Program> Simplifier::run() { return PImpl->run(); }
