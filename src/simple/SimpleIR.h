//===- SimpleIR.h - SIMPLE intermediate representation ----------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMPLE intermediate representation (Sec. 2 of the paper). SIMPLE
/// is a structured (compositional) IR: complex statements are compiled
/// into sequences of *basic statements* whose variable references have at
/// most one level of pointer indirection, plus explicit compositional
/// control statements (if, loop, switch, break, continue, return).
///
/// The reference forms match Table 1 of the paper: a, a.f, a[i], *a,
/// (*a).f, (*a)[i], and &-of those, generalized to arbitrary field/index
/// paths after the (at most one) dereference.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SIMPLE_SIMPLEIR_H
#define MCPTA_SIMPLE_SIMPLEIR_H

#include "cfront/AST.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mcpta {
namespace simple {

//===----------------------------------------------------------------------===//
// References and operands
//===----------------------------------------------------------------------===//

/// How much is known about an array subscript. The points-to analysis
/// only distinguishes index 0 (the a_head abstract location), a known
/// positive index (within a_tail), and an unknown index (either).
enum class IndexKind { Zero, Positive, Unknown };

/// One step of a reference path after the base variable (and optional
/// dereference): a struct field selection or an array subscript.
///
/// Index accessors additionally carry the concrete subscript (a
/// constant, or the temp variable the simplifier lowered the index
/// expression into). The points-to analysis only consults IndexKind;
/// the concrete SIMPLE interpreter (the soundness oracle) consults the
/// concrete subscript.
struct Accessor {
  enum class Kind { Field, Index };
  Kind K = Kind::Field;
  const cfront::FieldDecl *Field = nullptr;
  IndexKind Index = IndexKind::Unknown;
  long long IndexConst = 0;                    ///< valid when !IndexVar
  const cfront::VarDecl *IndexVar = nullptr;   ///< runtime subscript
  /// Distinguishes the two C subscript semantics: p[i] on a pointer
  /// *shifts* across sibling cells of the pointed-to object (pointer
  /// arithmetic); a[i] on an array lvalue *selects* an element inside
  /// the aggregate. Only the simplifier knows which one the source
  /// meant, so it records the choice here.
  bool IsShift = false;

  static Accessor field(const cfront::FieldDecl *F) {
    Accessor A;
    A.K = Kind::Field;
    A.Field = F;
    return A;
  }
  static Accessor index(IndexKind IK, long long Const = 0,
                        const cfront::VarDecl *Var = nullptr) {
    Accessor A;
    A.K = Kind::Index;
    A.Index = IK;
    A.IndexConst = Const;
    A.IndexVar = Var;
    return A;
  }
  static Accessor shiftIndex(IndexKind IK, long long Const = 0,
                             const cfront::VarDecl *Var = nullptr) {
    Accessor A = index(IK, Const, Var);
    A.IsShift = true;
    return A;
  }
  bool operator==(const Accessor &O) const {
    return K == O.K && Field == O.Field &&
           (K == Kind::Field || Index == O.Index);
  }
};

/// A SIMPLE variable reference. Invariant (paper Sec. 2): at most one
/// level of pointer indirection — either Deref is false, or Deref is true
/// and Base is a plain (pointer-typed) variable.
struct Reference {
  const cfront::VarDecl *Base = nullptr;
  bool Deref = false;
  std::vector<Accessor> Path;
  /// &ref — the value is the address of the referenced location.
  bool AddrOf = false;
  /// Type of the reference's value.
  const cfront::Type *Ty = nullptr;

  bool isValid() const { return Base != nullptr; }
  /// An indirect reference in the sense of the paper's Table 3: the
  /// dereferenced pointer is consulted to find the accessed location.
  bool isIndirect() const { return Deref && !AddrOf; }
  std::string str() const;
};

/// Right-hand-side / argument operand: a reference or a constant.
struct Operand {
  enum class Kind {
    Ref,
    IntConst,
    FloatConst,
    NullConst,
    StringConst,
    FunctionAddr,
  };
  Kind K = Kind::IntConst;
  Reference Ref;
  long long IntValue = 0;
  double FloatValue = 0;
  unsigned StringId = 0; // index into Program::stringLiterals()
  const cfront::FunctionDecl *Fn = nullptr;
  const cfront::Type *Ty = nullptr;

  static Operand makeRef(Reference R) {
    Operand O;
    O.K = Kind::Ref;
    O.Ty = R.Ty;
    O.Ref = std::move(R);
    return O;
  }
  static Operand makeInt(long long V, const cfront::Type *Ty) {
    Operand O;
    O.K = Kind::IntConst;
    O.IntValue = V;
    O.Ty = Ty;
    return O;
  }
  static Operand makeFloat(double V, const cfront::Type *Ty) {
    Operand O;
    O.K = Kind::FloatConst;
    O.FloatValue = V;
    O.Ty = Ty;
    return O;
  }
  static Operand makeNull(const cfront::Type *Ty) {
    Operand O;
    O.K = Kind::NullConst;
    O.Ty = Ty;
    return O;
  }
  static Operand makeString(unsigned Id, const cfront::Type *Ty) {
    Operand O;
    O.K = Kind::StringConst;
    O.StringId = Id;
    O.Ty = Ty;
    return O;
  }
  static Operand makeFunction(const cfront::FunctionDecl *F,
                              const cfront::Type *Ty) {
    Operand O;
    O.K = Kind::FunctionAddr;
    O.Fn = F;
    O.Ty = Ty;
    return O;
  }

  bool isRef() const { return K == Kind::Ref; }
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt;

/// A call, either direct (Callee set) or through a function pointer
/// (FnPtr set — always a plain scalar variable reference after
/// simplification, which is exactly the shape the paper's 'livc'
/// benchmark discussion describes).
struct CallInfo {
  const cfront::FunctionDecl *Callee = nullptr;
  Reference FnPtr;
  std::vector<Operand> Args;
  /// Dense program-wide call-site number (Table 6 statistics).
  unsigned CallSiteId = 0;
  /// Calls like exit() that never return.
  bool NoReturn = false;

  bool isIndirect() const { return Callee == nullptr; }
};

/// Base class of SIMPLE statements. Each statement has a dense
/// program-wide Id used to attach analysis results.
class Stmt {
public:
  enum class Kind {
    Assign,
    Call,   // call with unused result
    Return,
    Block,
    If,
    Loop,
    Switch,
    Break,
    Continue,
  };

  Kind kind() const { return K; }
  unsigned id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  virtual ~Stmt() = default;

  /// Basic statements are the unit of the paper's per-statement
  /// statistics (Tables 2 and 5).
  bool isBasic() const {
    return K == Kind::Assign || K == Kind::Call || K == Kind::Return;
  }

protected:
  Stmt(Kind K, unsigned Id, SourceLoc Loc) : K(K), Id(Id), Loc(Loc) {}

private:
  Kind K;
  unsigned Id;
  SourceLoc Loc;
};

template <typename To> To *dynCastStmt(Stmt *S) {
  if (S && To::classof(S))
    return static_cast<To *>(S);
  return nullptr;
}
template <typename To> const To *dynCastStmt(const Stmt *S) {
  if (S && To::classof(S))
    return static_cast<const To *>(S);
  return nullptr;
}
template <typename To> To *castStmt(Stmt *S) {
  assert(S && To::classof(S) && "invalid stmt cast");
  return static_cast<To *>(S);
}
template <typename To> const To *castStmt(const Stmt *S) {
  assert(S && To::classof(S) && "invalid stmt cast");
  return static_cast<const To *>(S);
}

/// lhs = rhs. The rhs is one of: a plain operand, a unary/binary
/// expression over operands, a heap allocation, or a call.
class AssignStmt : public Stmt {
public:
  enum class RhsKind { Operand, Unary, Binary, Alloc, Call };

  AssignStmt(unsigned Id, SourceLoc Loc, Reference Lhs)
      : Stmt(Kind::Assign, Id, Loc), Lhs(std::move(Lhs)) {}

  Reference Lhs;
  RhsKind RK = RhsKind::Operand;
  Operand A; // Operand / Unary operand / Binary lhs
  Operand B; // Binary rhs
  cfront::UnaryOp UOp = cfront::UnaryOp::Plus;
  cfront::BinaryOp BOp = cfront::BinaryOp::Add;
  CallInfo Call;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }
};

/// A call whose result is discarded.
class CallStmt : public Stmt {
public:
  CallStmt(unsigned Id, SourceLoc Loc, CallInfo CI)
      : Stmt(Kind::Call, Id, Loc), Call(std::move(CI)) {}

  CallInfo Call;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(unsigned Id, SourceLoc Loc, std::optional<Operand> Value)
      : Stmt(Kind::Return, Id, Loc), Value(std::move(Value)) {}

  std::optional<Operand> Value;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }
};

class BlockStmt : public Stmt {
public:
  BlockStmt(unsigned Id, SourceLoc Loc) : Stmt(Kind::Block, Id, Loc) {}

  std::vector<Stmt *> Body;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }
};

class IfStmt : public Stmt {
public:
  IfStmt(unsigned Id, SourceLoc Loc, Operand Cond, Stmt *Then, Stmt *Else)
      : Stmt(Kind::If, Id, Loc), Cond(std::move(Cond)), Then(Then),
        Else(Else) {}

  Operand Cond;
  Stmt *Then;
  Stmt *Else; // may be null

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }
};

/// Unified structured loop covering while/do/for.
///
/// Semantics:
///   - PostTest == false (while/for):
///       test CondVar; if false exit; Body; Trailer; test CondVar; ...
///     The simplifier emits the initial condition evaluation *before*
///     the loop, and Trailer re-evaluates it (plus the for-step).
///   - PostTest == true (do-while):
///       Body; Trailer; test CondVar; Body; ...
///   - CondVar == nullptr: infinite loop (exits only via break/return).
///
/// `continue` transfers to the Trailer; `break` exits the loop.
class LoopStmt : public Stmt {
public:
  LoopStmt(unsigned Id, SourceLoc Loc)
      : Stmt(Kind::Loop, Id, Loc) {}

  const cfront::VarDecl *CondVar = nullptr;
  Stmt *Body = nullptr;
  Stmt *Trailer = nullptr; // may be null; straight-line code only
  bool PostTest = false;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Loop; }
};

class SwitchStmt : public Stmt {
public:
  struct Case {
    std::vector<long long> Values;
    bool IsDefault = false;
    std::vector<Stmt *> Body;
  };

  SwitchStmt(unsigned Id, SourceLoc Loc, Operand Cond)
      : Stmt(Kind::Switch, Id, Loc), Cond(std::move(Cond)) {}

  Operand Cond;
  std::vector<Case> Cases;
  bool hasDefault() const {
    for (const Case &C : Cases)
      if (C.IsDefault)
        return true;
    return false;
  }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Switch; }
};

class BreakStmt : public Stmt {
public:
  BreakStmt(unsigned Id, SourceLoc Loc) : Stmt(Kind::Break, Id, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt(unsigned Id, SourceLoc Loc) : Stmt(Kind::Continue, Id, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

//===----------------------------------------------------------------------===//
// Functions and program
//===----------------------------------------------------------------------===//

/// SIMPLE form of one function.
struct FunctionIR {
  const cfront::FunctionDecl *Decl = nullptr;
  BlockStmt *Body = nullptr;
  /// All locals, including simplifier temporaries, in declaration order.
  std::vector<const cfront::VarDecl *> Locals;
};

/// A whole simplified program. Owns all SIMPLE statements and any
/// VarDecls created during simplification (temporaries).
class Program {
public:
  explicit Program(cfront::TranslationUnit &Unit) : Unit(&Unit) {}

  cfront::TranslationUnit &unit() const { return *Unit; }

  const std::vector<FunctionIR> &functions() const { return Funcs; }
  std::vector<FunctionIR> &functions() { return Funcs; }
  const FunctionIR *findFunction(const cfront::FunctionDecl *F) const;

  const std::vector<const cfront::VarDecl *> &globals() const {
    return Globals;
  }
  void addGlobal(const cfront::VarDecl *G) { Globals.push_back(G); }

  /// Global-variable initializers, lowered to assignments; analyzed
  /// before main's body.
  BlockStmt *globalInit() const { return GlobalInit; }
  void setGlobalInit(BlockStmt *B) { GlobalInit = B; }

  const std::vector<std::string> &stringLiterals() const { return Strings; }
  unsigned internString(std::string S) {
    Strings.push_back(std::move(S));
    return static_cast<unsigned>(Strings.size() - 1);
  }

  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_unique<T>(NextStmtId++, std::forward<Args>(As)...);
    T *Ptr = Node.get();
    AllStmts.push_back(Ptr);
    OwnedStmts.push_back(std::move(Node));
    return Ptr;
  }

  const std::vector<Stmt *> &allStmts() const { return AllStmts; }
  unsigned numStmts() const { return NextStmtId; }

  unsigned allocCallSiteId() { return NextCallSiteId++; }
  unsigned numCallSites() const { return NextCallSiteId; }

  /// Number of basic statements (Table 2's "# of stmts in SIMPLE").
  unsigned numBasicStmts() const;

  std::string str() const;

private:
  cfront::TranslationUnit *Unit;
  std::vector<FunctionIR> Funcs;
  std::vector<const cfront::VarDecl *> Globals;
  std::vector<std::string> Strings;
  BlockStmt *GlobalInit = nullptr;
  std::vector<Stmt *> AllStmts;
  std::vector<std::unique_ptr<Stmt>> OwnedStmts;
  unsigned NextStmtId = 0;
  unsigned NextCallSiteId = 0;
};

/// Pretty-prints a statement tree (used by tests and the pta-tool
/// --dump-simple mode).
std::string printStmt(const Stmt *S, unsigned Indent = 0);

} // namespace simple
} // namespace mcpta

#endif // MCPTA_SIMPLE_SIMPLEIR_H
