//===- SimpleIR.cpp - SIMPLE intermediate representation -------------------===//

#include "simple/SimpleIR.h"

using namespace mcpta;
using namespace mcpta::simple;

std::string Reference::str() const {
  std::string S;
  if (AddrOf)
    S += "&";
  std::string Core = Base ? Base->name() : "<null>";
  if (Deref)
    Core = "(*" + Core + ")";
  for (const Accessor &A : Path) {
    if (A.K == Accessor::Kind::Field) {
      Core += ".";
      Core += A.Field->name();
    } else {
      switch (A.Index) {
      case IndexKind::Zero: Core += "[0]"; break;
      case IndexKind::Positive: Core += "[+]"; break;
      case IndexKind::Unknown: Core += "[?]"; break;
      }
    }
  }
  return S + Core;
}

std::string Operand::str() const {
  switch (K) {
  case Kind::Ref:
    return Ref.str();
  case Kind::IntConst:
    return std::to_string(IntValue);
  case Kind::FloatConst:
    return std::to_string(FloatValue);
  case Kind::NullConst:
    return "NULL";
  case Kind::StringConst:
    return "str#" + std::to_string(StringId);
  case Kind::FunctionAddr:
    return "&" + Fn->name();
  }
  return "?";
}

static const char *binOpName(cfront::BinaryOp Op) {
  using BO = cfront::BinaryOp;
  switch (Op) {
  case BO::Add: return "+";
  case BO::Sub: return "-";
  case BO::Mul: return "*";
  case BO::Div: return "/";
  case BO::Rem: return "%";
  case BO::Shl: return "<<";
  case BO::Shr: return ">>";
  case BO::Lt: return "<";
  case BO::Gt: return ">";
  case BO::Le: return "<=";
  case BO::Ge: return ">=";
  case BO::Eq: return "==";
  case BO::Ne: return "!=";
  case BO::BitAnd: return "&";
  case BO::BitXor: return "^";
  case BO::BitOr: return "|";
  case BO::LogAnd: return "&&";
  case BO::LogOr: return "||";
  case BO::Comma: return ",";
  }
  return "?";
}

static const char *unOpName(cfront::UnaryOp Op) {
  using UO = cfront::UnaryOp;
  switch (Op) {
  case UO::Minus: return "-";
  case UO::Not: return "!";
  case UO::BitNot: return "~";
  default: return "?";
  }
}

static std::string callString(const CallInfo &CI) {
  std::string S;
  if (CI.isIndirect())
    S = "(*" + CI.FnPtr.str() + ")";
  else
    S = CI.Callee->name();
  S += "(";
  bool First = true;
  for (const Operand &A : CI.Args) {
    if (!First)
      S += ", ";
    S += A.str();
    First = false;
  }
  S += ")";
  return S;
}

std::string mcpta::simple::printStmt(const Stmt *S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    std::string Rhs;
    switch (A->RK) {
    case AssignStmt::RhsKind::Operand:
      Rhs = A->A.str();
      break;
    case AssignStmt::RhsKind::Unary:
      Rhs = std::string(unOpName(A->UOp)) + A->A.str();
      break;
    case AssignStmt::RhsKind::Binary:
      Rhs = A->A.str() + " " + binOpName(A->BOp) + " " + A->B.str();
      break;
    case AssignStmt::RhsKind::Alloc:
      Rhs = "malloc()";
      break;
    case AssignStmt::RhsKind::Call:
      Rhs = callString(A->Call);
      break;
    }
    return Pad + A->Lhs.str() + " = " + Rhs + ";\n";
  }
  case Stmt::Kind::Call:
    return Pad + callString(castStmt<CallStmt>(S)->Call) + ";\n";
  case Stmt::Kind::Return: {
    const auto *R = castStmt<ReturnStmt>(S);
    if (R->Value)
      return Pad + "return " + R->Value->str() + ";\n";
    return Pad + "return;\n";
  }
  case Stmt::Kind::Block: {
    std::string Out = Pad + "{\n";
    for (const Stmt *Child : castStmt<BlockStmt>(S)->Body)
      Out += printStmt(Child, Indent + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    std::string Out = Pad + "if (" + I->Cond.str() + ")\n";
    Out += printStmt(I->Then, Indent + 1);
    if (I->Else) {
      Out += Pad + "else\n";
      Out += printStmt(I->Else, Indent + 1);
    }
    return Out;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    std::string Cond = L->CondVar ? L->CondVar->name() : "1";
    std::string Out =
        Pad + (L->PostTest ? "do-while (" : "while (") + Cond + ")\n";
    Out += printStmt(L->Body, Indent + 1);
    if (L->Trailer) {
      Out += Pad + "trailer:\n";
      Out += printStmt(L->Trailer, Indent + 1);
    }
    return Out;
  }
  case Stmt::Kind::Switch: {
    const auto *Sw = castStmt<SwitchStmt>(S);
    std::string Out = Pad + "switch (" + Sw->Cond.str() + ") {\n";
    for (const SwitchStmt::Case &C : Sw->Cases) {
      if (C.IsDefault)
        Out += Pad + "default:\n";
      for (long long V : C.Values)
        Out += Pad + "case " + std::to_string(V) + ":\n";
      for (const Stmt *Child : C.Body)
        Out += printStmt(Child, Indent + 1);
    }
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::Kind::Break:
    return Pad + "break;\n";
  case Stmt::Kind::Continue:
    return Pad + "continue;\n";
  }
  return Pad + "<?>\n";
}

const FunctionIR *Program::findFunction(const cfront::FunctionDecl *F) const {
  for (const FunctionIR &FIR : Funcs)
    if (FIR.Decl == F)
      return &FIR;
  return nullptr;
}

unsigned Program::numBasicStmts() const {
  unsigned N = 0;
  for (const Stmt *S : AllStmts)
    if (S->isBasic())
      ++N;
  return N;
}

std::string Program::str() const {
  std::string Out;
  if (GlobalInit && !GlobalInit->Body.empty()) {
    Out += "global-init:\n";
    Out += printStmt(GlobalInit, 1);
  }
  for (const FunctionIR &F : Funcs) {
    Out += F.Decl->name() + ":\n";
    Out += printStmt(F.Body, 1);
  }
  return Out;
}
