//===- Simplifier.h - AST-to-SIMPLE lowering --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the typed C AST into SIMPLE (Sec. 2 of the paper). Typical
/// simplifications performed, mirroring McCAT:
///   - complex expressions become sequences of basic statements through
///     compiler temporaries;
///   - every variable reference has at most one level of indirection
///     (e.g. **p becomes t = *p; ... *t ...);
///   - conditional expressions of if/while are reduced to side-effect
///     free variable tests (condition code is emitted before the
///     construct and re-emitted in the loop trailer);
///   - procedure arguments are reduced to constants or variable names;
///   - variable initializers move from declarations into the body;
///   - && / || with side-effecting right operands become explicit ifs so
///     that no call is hoisted past its guard (preserving the definite
///     points-to information's path-sensitivity).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SIMPLE_SIMPLIFIER_H
#define MCPTA_SIMPLE_SIMPLIFIER_H

#include "simple/SimpleIR.h"
#include "support/Diagnostics.h"

#include <memory>

namespace mcpta {
namespace simple {

/// Names of heap allocator functions modeled as returning heap locations.
bool isAllocatorName(const std::string &Name);
/// Names of functions that never return.
bool isNoReturnName(const std::string &Name);

/// Lowers one translation unit to SIMPLE.
class Simplifier {
public:
  Simplifier(cfront::TranslationUnit &Unit, DiagnosticsEngine &Diags);
  ~Simplifier();

  /// Runs the lowering. Returns null if errors made lowering impossible.
  std::unique_ptr<Program> run();

private:
  struct Impl;
  std::unique_ptr<Impl> PImpl;
};

} // namespace simple
} // namespace mcpta

#endif // MCPTA_SIMPLE_SIMPLIFIER_H
