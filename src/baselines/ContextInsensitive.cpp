//===- ContextInsensitive.cpp - context-sensitivity ablation ------------------===//

#include "baselines/ContextInsensitive.h"

using namespace mcpta;
using namespace mcpta::baselines;
using namespace mcpta::pta;

PrecisionComparison
PrecisionComparison::compute(const simple::Program &Prog) {
  PrecisionComparison Out;

  Analyzer::Options Sens;
  Analyzer::Result RS = Analyzer::run(Prog, Sens);
  Out.Sensitive = clients::IndirectRefAnalysis::compute(Prog, RS);
  Out.SensitiveBodyAnalyses = RS.BodyAnalyses;

  Analyzer::Options Insens;
  Insens.ContextSensitive = false;
  Analyzer::Result RI = Analyzer::run(Prog, Insens);
  Out.Insensitive = clients::IndirectRefAnalysis::compute(Prog, RI);
  Out.InsensitiveBodyAnalyses = RI.BodyAnalyses;

  return Out;
}
