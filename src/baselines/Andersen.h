//===- Andersen.h - flow-insensitive inclusion baseline ---------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic Andersen-style inclusion-based points-to analysis used as
/// the flow-insensitivity ablation: one solution for the whole program,
/// no kill/definite information, field- and context-insensitive
/// (locations collapse to their root entities). Indirect calls are
/// resolved on the fly from the growing solution, like Figure 5 but
/// without contexts. The contrast against the paper's analysis shows
/// what flow-sensitivity and the D/P split buy.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_BASELINES_ANDERSEN_H
#define MCPTA_BASELINES_ANDERSEN_H

#include "pointsto/Location.h"
#include "simple/SimpleIR.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mcpta {
namespace baselines {

/// Result of the Andersen baseline.
struct AndersenResult {
  /// Points-to sets keyed by entity name (deterministic).
  using PtsMap = std::map<std::string, std::set<std::string>>;

  PtsMap Solution;
  const std::set<std::string> &pointsTo(const std::string &Var) const;

  /// Average number of (non-NULL) targets of the dereferenced pointer
  /// over all indirect references in the program.
  double AvgIndirectTargets = 0;
  unsigned IndirectRefs = 0;
  unsigned SolverIterations = 0;
  /// Total pairs in the solution.
  unsigned long long TotalPairs = 0;
};

/// Runs the baseline over a simplified program.
class AndersenAnalysis {
public:
  static AndersenResult run(const simple::Program &Prog);
};

} // namespace baselines
} // namespace mcpta

#endif // MCPTA_BASELINES_ANDERSEN_H
