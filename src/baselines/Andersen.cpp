//===- Andersen.cpp - flow-insensitive inclusion baseline ---------------------===//

#include "baselines/Andersen.h"

#include "simple/Simplifier.h"

#include <cassert>

using namespace mcpta;
using namespace mcpta::baselines;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

namespace {

/// Abstract nodes: program variables (field-insensitive), one heap, one
/// node per function, one per string literal.
struct Node {
  enum class Kind { Var, Heap, Function, String } K = Kind::Var;
  const cf::VarDecl *Var = nullptr;
  const cf::FunctionDecl *Fn = nullptr;
  unsigned StringId = 0;
  std::string Name;
};

class Solver {
public:
  explicit Solver(const Program &Prog) : Prog(Prog) {}

  AndersenResult solve();

private:
  unsigned varNode(const cf::VarDecl *V);
  unsigned heapNode();
  unsigned fnNode(const cf::FunctionDecl *F);
  unsigned stringNode(unsigned Id);
  unsigned retNode(const cf::FunctionDecl *F);

  void addAddress(unsigned Lhs, unsigned Obj) {
    AddrConstraints.push_back({Lhs, Obj});
  }
  void addCopy(unsigned Lhs, unsigned Rhs) {
    CopyConstraints.push_back({Lhs, Rhs});
  }
  void addLoad(unsigned Lhs, unsigned Ptr) {
    LoadConstraints.push_back({Lhs, Ptr});
  }
  void addStore(unsigned Ptr, unsigned Rhs) {
    StoreConstraints.push_back({Ptr, Rhs});
  }

  /// The node holding a reference's *value source*. For `*p...` the
  /// value is loaded through p; for `&x...` it is the address of x; a
  /// plain `x...` is a copy of x (fields collapse onto the base).
  void constrainRead(unsigned Lhs, const Reference &Ref);
  void constrainReadOperand(unsigned Lhs, const Operand &O);
  void constrainWrite(const Reference &Lhs, unsigned RhsTmp);
  unsigned freshTmp(const std::string &Hint);

  void genStmt(const Stmt *S);
  void genCall(const CallInfo &CI, const Reference *LhsRef);
  void bindCall(const CallInfo &CI, const cf::FunctionDecl *F,
                const Reference *LhsRef);

  const Program &Prog;
  std::vector<Node> Nodes;
  std::map<const cf::VarDecl *, unsigned> VarIds;
  std::map<const cf::FunctionDecl *, unsigned> FnIds;
  std::map<const cf::FunctionDecl *, unsigned> RetIds;
  std::map<unsigned, unsigned> StringIds;
  int Heap = -1;

  std::vector<std::pair<unsigned, unsigned>> AddrConstraints;
  std::vector<std::pair<unsigned, unsigned>> CopyConstraints;
  std::vector<std::pair<unsigned, unsigned>> LoadConstraints;
  std::vector<std::pair<unsigned, unsigned>> StoreConstraints;

  /// Indirect call sites, re-bound as the solution grows.
  struct IndirectSite {
    const CallInfo *CI;
    const Reference *LhsRef;
    std::set<const cf::FunctionDecl *> Bound;
  };
  std::vector<IndirectSite> IndirectSites;

  std::vector<std::set<unsigned>> Pts;
  /// retval node of the function currently being constrained.
  unsigned CurRet = ~0u;
};

unsigned Solver::varNode(const cf::VarDecl *V) {
  auto It = VarIds.find(V);
  if (It != VarIds.end())
    return It->second;
  Node N;
  N.K = Node::Kind::Var;
  N.Var = V;
  N.Name = (V->owner() ? V->owner()->name() + "::" : std::string()) +
           V->name();
  Nodes.push_back(N);
  unsigned Id = Nodes.size() - 1;
  VarIds[V] = Id;
  return Id;
}

unsigned Solver::heapNode() {
  if (Heap < 0) {
    Node N;
    N.K = Node::Kind::Heap;
    N.Name = "heap";
    Nodes.push_back(N);
    Heap = static_cast<int>(Nodes.size() - 1);
  }
  return static_cast<unsigned>(Heap);
}

unsigned Solver::fnNode(const cf::FunctionDecl *F) {
  auto It = FnIds.find(F);
  if (It != FnIds.end())
    return It->second;
  Node N;
  N.K = Node::Kind::Function;
  N.Fn = F;
  N.Name = F->name();
  Nodes.push_back(N);
  unsigned Id = Nodes.size() - 1;
  FnIds[F] = Id;
  return Id;
}

unsigned Solver::stringNode(unsigned SId) {
  auto It = StringIds.find(SId);
  if (It != StringIds.end())
    return It->second;
  Node N;
  N.K = Node::Kind::String;
  N.StringId = SId;
  N.Name = "str$" + std::to_string(SId);
  Nodes.push_back(N);
  unsigned Id = Nodes.size() - 1;
  StringIds[SId] = Id;
  return Id;
}

unsigned Solver::retNode(const cf::FunctionDecl *F) {
  auto It = RetIds.find(F);
  if (It != RetIds.end())
    return It->second;
  Node N;
  N.K = Node::Kind::Var;
  N.Name = "retval$" + F->name();
  Nodes.push_back(N);
  unsigned Id = Nodes.size() - 1;
  RetIds[F] = Id;
  return Id;
}

unsigned Solver::freshTmp(const std::string &Hint) {
  Node N;
  N.K = Node::Kind::Var;
  N.Name = "$andersen$" + Hint + std::to_string(Nodes.size());
  Nodes.push_back(N);
  return Nodes.size() - 1;
}

void Solver::constrainRead(unsigned Lhs, const Reference &Ref) {
  unsigned Base = varNode(Ref.Base);
  if (Ref.AddrOf) {
    if (Ref.Deref) {
      // &(*p).f and &p[i] copy (an offset of) p's value.
      addCopy(Lhs, Base);
      return;
    }
    addAddress(Lhs, Base);
    return;
  }
  if (Ref.Deref) {
    addLoad(Lhs, Base);
    return;
  }
  addCopy(Lhs, Base);
}

void Solver::constrainReadOperand(unsigned Lhs, const Operand &O) {
  switch (O.K) {
  case Operand::Kind::Ref:
    constrainRead(Lhs, O.Ref);
    return;
  case Operand::Kind::FunctionAddr:
    addAddress(Lhs, fnNode(O.Fn));
    return;
  case Operand::Kind::StringConst:
    addAddress(Lhs, stringNode(O.StringId));
    return;
  default:
    return; // constants and NULL add no targets
  }
}

void Solver::constrainWrite(const Reference &Lhs, unsigned RhsTmp) {
  unsigned Base = varNode(Lhs.Base);
  if (Lhs.Deref)
    addStore(Base, RhsTmp);
  else
    addCopy(Base, RhsTmp);
}

void Solver::genCall(const CallInfo &CI, const Reference *LhsRef) {
  if (!CI.isIndirect()) {
    bindCall(CI, CI.Callee, LhsRef);
    return;
  }
  IndirectSites.push_back({&CI, LhsRef, {}});
}

void Solver::bindCall(const CallInfo &CI, const cf::FunctionDecl *F,
                      const Reference *LhsRef) {
  const FunctionIR *FIR = Prog.findFunction(F);
  if (!FIR) {
    // Extern: pointer results conservatively point to heap.
    if (LhsRef && LhsRef->Ty && LhsRef->Ty->isPointerBearing()) {
      unsigned T = freshTmp("ext");
      addAddress(T, heapNode());
      constrainWrite(*LhsRef, T);
    }
    return;
  }
  const auto &Params = F->params();
  for (size_t I = 0; I < CI.Args.size() && I < Params.size(); ++I) {
    unsigned P = varNode(Params[I]);
    constrainReadOperand(P, CI.Args[I]);
  }
  if (LhsRef)
    constrainWrite(*LhsRef, retNode(F));
}

void Solver::genStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
      genStmt(C);
    return;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    genStmt(I->Then);
    genStmt(I->Else);
    return;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    genStmt(L->Body);
    genStmt(L->Trailer);
    return;
  }
  case Stmt::Kind::Switch:
    for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (const Stmt *B : C.Body)
        genStmt(B);
    return;
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    switch (A->RK) {
    case AssignStmt::RhsKind::Operand: {
      unsigned T = freshTmp("op");
      constrainReadOperand(T, A->A);
      constrainWrite(A->Lhs, T);
      return;
    }
    case AssignStmt::RhsKind::Binary: {
      unsigned T = freshTmp("bin");
      constrainReadOperand(T, A->A);
      constrainReadOperand(T, A->B);
      constrainWrite(A->Lhs, T);
      return;
    }
    case AssignStmt::RhsKind::Unary:
      return;
    case AssignStmt::RhsKind::Alloc: {
      unsigned T = freshTmp("alloc");
      addAddress(T, heapNode());
      constrainWrite(A->Lhs, T);
      return;
    }
    case AssignStmt::RhsKind::Call:
      genCall(A->Call, &A->Lhs);
      return;
    }
    return;
  }
  case Stmt::Kind::Call:
    genCall(castStmt<CallStmt>(S)->Call, nullptr);
    return;
  case Stmt::Kind::Return: {
    const auto *R = castStmt<ReturnStmt>(S);
    // Attribute the return value to the enclosing function; the walk
    // below passes it via CurFn.
    if (R->Value && CurRet != ~0u)
      constrainReadOperand(CurRet, *R->Value);
    return;
  }
  default:
    return;
  }
}

AndersenResult Solver::solve() {
  // Generate constraints for every function (whole-program,
  // flow-insensitive: reachability is ignored).
  for (const FunctionIR &F : Prog.functions()) {
    CurRet = retNode(F.Decl);
    genStmt(F.Body);
  }
  CurRet = ~0u;
  genStmt(Prog.globalInit());

  Pts.resize(Nodes.size());

  // Naive iteration to fixpoint; adequate at our program sizes.
  AndersenResult Res;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Res.SolverIterations;

    // New constraint batches may be added by indirect-call binding.
    for (const auto &[L, O] : AddrConstraints)
      Changed |= Pts[L].insert(O).second;
    for (const auto &[L, R] : CopyConstraints)
      for (unsigned O : Pts[R])
        Changed |= Pts[L].insert(O).second;
    for (const auto &[L, P] : LoadConstraints)
      for (unsigned T : Pts[P]) {
        if (Nodes[T].K == Node::Kind::Function)
          continue;
        for (unsigned O : Pts[T])
          Changed |= Pts[L].insert(O).second;
      }
    for (const auto &[P, R] : StoreConstraints)
      for (unsigned T : Pts[P]) {
        if (Nodes[T].K == Node::Kind::Function)
          continue;
        for (unsigned O : Pts[R])
          Changed |= Pts[T].insert(O).second;
      }

    // Grow indirect call bindings from the current solution.
    for (IndirectSite &Site : IndirectSites) {
      unsigned Fp = varNode(Site.CI->FnPtr.Base);
      if (Fp >= Pts.size())
        Pts.resize(Nodes.size());
      for (unsigned T : Pts[Fp]) {
        if (Nodes[T].K != Node::Kind::Function)
          continue;
        const cf::FunctionDecl *F = Nodes[T].Fn;
        if (!Site.Bound.insert(F).second)
          continue;
        bindCall(*Site.CI, F, Site.LhsRef);
        Changed = true;
      }
    }
    Pts.resize(Nodes.size());
  }

  // Export the solution and the indirect-reference metric.
  for (unsigned I = 0; I < Nodes.size(); ++I) {
    if (Pts[I].empty() || Nodes[I].Name.rfind("$andersen$", 0) == 0)
      continue;
    auto &Set = Res.Solution[Nodes[I].Name];
    for (unsigned O : Pts[I])
      Set.insert(Nodes[O].Name);
    Res.TotalPairs += Pts[I].size();
  }

  unsigned long long TargetSum = 0;
  unsigned Refs = 0;
  std::vector<const CallInfo *> Calls;
  for (const FunctionIR &F : Prog.functions()) {
    std::vector<const Stmt *> Stack = {F.Body};
    while (!Stack.empty()) {
      const Stmt *S = Stack.back();
      Stack.pop_back();
      if (!S)
        continue;
      switch (S->kind()) {
      case Stmt::Kind::Block:
        for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
          Stack.push_back(C);
        break;
      case Stmt::Kind::If:
        Stack.push_back(castStmt<IfStmt>(S)->Then);
        Stack.push_back(castStmt<IfStmt>(S)->Else);
        break;
      case Stmt::Kind::Loop:
        Stack.push_back(castStmt<LoopStmt>(S)->Body);
        Stack.push_back(castStmt<LoopStmt>(S)->Trailer);
        break;
      case Stmt::Kind::Switch:
        for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
          for (const Stmt *B : C.Body)
            Stack.push_back(B);
        break;
      case Stmt::Kind::Assign: {
        const auto *A = castStmt<AssignStmt>(S);
        auto Count = [&](const Reference &R) {
          if (!R.isIndirect())
            return;
          ++Refs;
          unsigned Base = varNode(R.Base);
          if (Base < Pts.size())
            TargetSum += Pts[Base].size();
        };
        Count(A->Lhs);
        if (A->A.isRef())
          Count(A->A.Ref);
        if (A->RK == AssignStmt::RhsKind::Binary && A->B.isRef())
          Count(A->B.Ref);
        break;
      }
      default:
        break;
      }
    }
  }
  Res.IndirectRefs = Refs;
  Res.AvgIndirectTargets =
      Refs ? static_cast<double>(TargetSum) / Refs : 0;
  return Res;
}

} // namespace

const std::set<std::string> &
AndersenResult::pointsTo(const std::string &Var) const {
  static const std::set<std::string> Empty;
  auto It = Solution.find(Var);
  return It == Solution.end() ? Empty : It->second;
}

AndersenResult AndersenAnalysis::run(const Program &Prog) {
  Solver S(Prog);
  return S.solve();
}
