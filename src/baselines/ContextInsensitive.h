//===- ContextInsensitive.h - context-sensitivity ablation ------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation baseline for the paper's central design decision: what the
/// same flow-sensitive analysis produces when every function is given a
/// single summary merged over all calling contexts (Sec. 4's discussion
/// of the calling context problem). The comparison metric follows
/// Table 3: the average number of locations the dereferenced pointer of
/// an indirect reference can point to, and the share of definite
/// single-target references.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_BASELINES_CONTEXTINSENSITIVE_H
#define MCPTA_BASELINES_CONTEXTINSENSITIVE_H

#include "clients/IndirectRefStats.h"
#include "pointsto/Analyzer.h"

namespace mcpta {
namespace baselines {

struct PrecisionComparison {
  clients::IndirectRefAnalysis Sensitive;
  clients::IndirectRefAnalysis Insensitive;
  unsigned SensitiveBodyAnalyses = 0;
  unsigned InsensitiveBodyAnalyses = 0;

  static PrecisionComparison compute(const simple::Program &Prog);
};

} // namespace baselines
} // namespace mcpta

#endif // MCPTA_BASELINES_CONTEXTINSENSITIVE_H
