//===- ConnectionAnalysis.h - companion heap connection matrices -*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sec. 8 future work, implemented: the simplest member of
/// the companion heap-analysis family ([16], later published as Ghiya &
/// Hendren's connection analysis) — *connection matrices* that
/// approximate, for every pair of heap-directed pointers, whether they
/// can point into the same heap data structure. The points-to analysis
/// deliberately collapses the heap to one summary location (Sec. 7.1);
/// connection matrices recover the practically useful part of what that
/// collapse loses: disjointness of whole structures, the property
/// parallelizing transformations need.
///
/// The analysis is flow-sensitive and intraprocedural over SIMPLE, with
/// conservative call handling (heap-directed actuals, globals, and
/// results become mutually connected), and consumes the points-to
/// results to know which pointers are heap-directed at each statement.
///
/// Transfer functions (C is a symmetric, reflexive relation):
///   p = malloc()   kill p's connections; p starts a fresh structure
///   p = q          p gets exactly q's connections
///   p = q->f, *q   same as p = q (stays within q's structure)
///   p->f = q       the structures of p and q merge
///   p = NULL       kill p's connections
///   join           union of relations
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_HEAP_CONNECTIONANALYSIS_H
#define MCPTA_HEAP_CONNECTIONANALYSIS_H

#include "pointsto/Analyzer.h"

#include <map>
#include <set>
#include <string>

namespace mcpta {
namespace heap {

/// A symmetric possibly-connected relation over heap-directed pointer
/// variables of one function.
class ConnectionMatrix {
public:
  /// True if P and Q may point into the same heap structure.
  bool connected(const cfront::VarDecl *P, const cfront::VarDecl *Q) const;

  void connect(const cfront::VarDecl *P, const cfront::VarDecl *Q);
  /// P gets exactly Q's connections (assignment p = q).
  void copyConnections(const cfront::VarDecl *P, const cfront::VarDecl *Q);
  /// The structures of P and Q merge (p->f = q): everything connected
  /// to either becomes connected to everything connected to the other.
  void mergeStructures(const cfront::VarDecl *P, const cfront::VarDecl *Q);
  void kill(const cfront::VarDecl *P);

  void unionWith(const ConnectionMatrix &Other);
  bool operator==(const ConnectionMatrix &O) const { return Rel == O.Rel; }

  /// All variables connected to P (excluding P itself).
  std::set<const cfront::VarDecl *>
  connectionsOf(const cfront::VarDecl *P) const;

  std::string str() const;

private:
  using VarPair = std::pair<const cfront::VarDecl *, const cfront::VarDecl *>;
  static VarPair key(const cfront::VarDecl *A, const cfront::VarDecl *B) {
    return A < B ? VarPair{A, B} : VarPair{B, A};
  }
  std::set<VarPair> Rel;
};

/// Per-function connection matrices at function exit.
struct ConnectionResult {
  std::map<const cfront::FunctionDecl *, ConnectionMatrix> AtExit;

  const ConnectionMatrix *matrixOf(const cfront::FunctionDecl *F) const {
    auto It = AtExit.find(F);
    return It == AtExit.end() ? nullptr : &It->second;
  }
};

/// Runs the connection analysis over every function of an analyzed
/// program, consuming the points-to results (which pointers are
/// heap-directed, and through which pointers stores can reach the
/// heap).
ConnectionResult runConnectionAnalysis(const simple::Program &Prog,
                                       const pta::Analyzer::Result &Res);

} // namespace heap
} // namespace mcpta

#endif // MCPTA_HEAP_CONNECTIONANALYSIS_H
