//===- ConnectionAnalysis.cpp - companion heap connection matrices -------------===//

#include "heap/ConnectionAnalysis.h"

#include <algorithm>

using namespace mcpta;
using namespace mcpta::heap;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

//===----------------------------------------------------------------------===//
// ConnectionMatrix
//===----------------------------------------------------------------------===//

bool ConnectionMatrix::connected(const cf::VarDecl *P,
                                 const cf::VarDecl *Q) const {
  if (P == Q)
    return true;
  return Rel.count(key(P, Q)) != 0;
}

void ConnectionMatrix::connect(const cf::VarDecl *P, const cf::VarDecl *Q) {
  if (P != Q)
    Rel.insert(key(P, Q));
}

std::set<const cf::VarDecl *>
ConnectionMatrix::connectionsOf(const cf::VarDecl *P) const {
  std::set<const cf::VarDecl *> Out;
  for (const VarPair &Pair : Rel) {
    if (Pair.first == P)
      Out.insert(Pair.second);
    else if (Pair.second == P)
      Out.insert(Pair.first);
  }
  return Out;
}

void ConnectionMatrix::kill(const cf::VarDecl *P) {
  for (auto It = Rel.begin(); It != Rel.end();) {
    if (It->first == P || It->second == P)
      It = Rel.erase(It);
    else
      ++It;
  }
}

void ConnectionMatrix::copyConnections(const cf::VarDecl *P,
                                       const cf::VarDecl *Q) {
  if (P == Q)
    return;
  std::set<const cf::VarDecl *> QConns = connectionsOf(Q);
  kill(P);
  for (const cf::VarDecl *C : QConns)
    if (C != P)
      connect(P, C);
  connect(P, Q);
}

void ConnectionMatrix::mergeStructures(const cf::VarDecl *P,
                                       const cf::VarDecl *Q) {
  std::set<const cf::VarDecl *> Group = connectionsOf(P);
  Group.insert(P);
  std::set<const cf::VarDecl *> Other = connectionsOf(Q);
  Other.insert(Q);
  for (const cf::VarDecl *A : Group)
    for (const cf::VarDecl *B : Other)
      connect(A, B);
}

void ConnectionMatrix::unionWith(const ConnectionMatrix &Other) {
  Rel.insert(Other.Rel.begin(), Other.Rel.end());
}

std::string ConnectionMatrix::str() const {
  std::vector<std::string> Rendered;
  for (const VarPair &Pair : Rel)
    Rendered.push_back("(" + Pair.first->name() + "~" +
                       Pair.second->name() + ")");
  std::sort(Rendered.begin(), Rendered.end());
  std::string Out;
  for (const std::string &S : Rendered) {
    if (!Out.empty())
      Out += " ";
    Out += S;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The flow analysis
//===----------------------------------------------------------------------===//

namespace {

/// Compositional walker mirroring the points-to analyzer's control
/// rules, over the much simpler connection lattice.
class ConnectionWalker {
public:
  ConnectionWalker(const Program &Prog, const pta::Analyzer::Result &Res)
      : Prog(Prog), Res(Res) {}

  ConnectionMatrix analyzeFunction(const FunctionIR &F) {
    // Heap-directed globals and parameters may alias on entry
    // (conservative: the caller could have connected them).
    ConnectionMatrix Entry;
    std::vector<const cf::VarDecl *> Incoming;
    for (const cf::VarDecl *G : Prog.globals())
      if (isHeapDirectedAnywhere(G))
        Incoming.push_back(G);
    for (const cf::VarDecl *P : F.Decl->params())
      if (isHeapDirectedAnywhere(P))
        Incoming.push_back(P);
    for (size_t I = 0; I < Incoming.size(); ++I)
      for (size_t J = I + 1; J < Incoming.size(); ++J)
        Entry.connect(Incoming[I], Incoming[J]);

    Flow St;
    St.Normal = Entry;
    St.HasNormal = true;
    exec(F.Body, St);
    ConnectionMatrix Out = St.HasNormal ? St.Normal : ConnectionMatrix();
    if (St.HasReturn) {
      Out.unionWith(St.Return);
      if (!St.HasNormal)
        Out = St.Return;
    }
    return Out;
  }

private:
  struct Flow {
    ConnectionMatrix Normal, Break, Continue, Return;
    bool HasNormal = false, HasBreak = false, HasContinue = false,
         HasReturn = false;
  };

  static void mergeInto(ConnectionMatrix &A, bool &HasA,
                        const ConnectionMatrix &B, bool HasB) {
    if (!HasB)
      return;
    if (!HasA) {
      A = B;
      HasA = true;
      return;
    }
    A.unionWith(B);
  }

  /// Could this variable ever hold a heap-directed pointer? (Checked
  /// against the merged per-statement sets once, cached.)
  bool isHeapDirectedAnywhere(const cf::VarDecl *V) {
    auto It = HeapDirected.find(V);
    if (It != HeapDirected.end())
      return It->second;
    bool Heapy = false;
    if (V->type()->isPointerBearing() && Res.Locs) {
      const Location *L = Res.Locs->varLoc(V);
      for (const auto &OptIn : Res.StmtIn) {
        if (!OptIn)
          continue;
        for (const LocDef &T : OptIn->targetsOf(L, *Res.Locs))
          if (T.Loc->isHeap()) {
            Heapy = true;
            break;
          }
        if (Heapy)
          break;
      }
    }
    HeapDirected[V] = Heapy;
    return Heapy;
  }

  /// The plain variable a reference reads/writes through, if any.
  static const cf::VarDecl *baseVar(const Reference &R) { return R.Base; }

  void execAssign(const AssignStmt *A, ConnectionMatrix &C) {
    const cf::VarDecl *Lhs = baseVar(A->Lhs);
    bool LhsDirect = !A->Lhs.Deref && A->Lhs.Path.empty();
    bool LhsThroughHeap = A->Lhs.Deref || !A->Lhs.Path.empty();

    auto RhsVar = [&]() -> const cf::VarDecl * {
      if (A->RK == AssignStmt::RhsKind::Operand && A->A.isRef())
        return A->A.Ref.Base;
      if (A->RK == AssignStmt::RhsKind::Binary && A->A.isRef())
        return A->A.Ref.Base; // pointer arithmetic keeps the structure
      return nullptr;
    };

    switch (A->RK) {
    case AssignStmt::RhsKind::Alloc:
      if (LhsDirect && isHeapDirectedAnywhere(Lhs)) {
        // p = malloc(): p starts a fresh, disconnected structure.
        C.kill(Lhs);
      }
      return;
    case AssignStmt::RhsKind::Call: {
      // Conservative: the callee may connect every heap-directed value
      // it can reach — arguments, globals, and the result.
      std::vector<const cf::VarDecl *> Touched;
      for (const Operand &Arg : A->Call.Args)
        if (Arg.isRef() && isHeapDirectedAnywhere(Arg.Ref.Base))
          Touched.push_back(Arg.Ref.Base);
      for (const cf::VarDecl *G : Prog.globals())
        if (isHeapDirectedAnywhere(G))
          Touched.push_back(G);
      if (LhsDirect && isHeapDirectedAnywhere(Lhs))
        Touched.push_back(Lhs);
      for (size_t I = 0; I < Touched.size(); ++I)
        for (size_t J = I + 1; J < Touched.size(); ++J)
          C.mergeStructures(Touched[I], Touched[J]);
      return;
    }
    case AssignStmt::RhsKind::Operand:
    case AssignStmt::RhsKind::Binary: {
      const cf::VarDecl *Rhs = RhsVar();
      bool RhsHeapy = Rhs && isHeapDirectedAnywhere(Rhs);
      bool LhsHeapy = Lhs && isHeapDirectedAnywhere(Lhs);

      if (LhsDirect && LhsHeapy) {
        if (A->RK == AssignStmt::RhsKind::Operand &&
            A->A.K == Operand::Kind::NullConst) {
          C.kill(Lhs); // p = NULL detaches p
          return;
        }
        if (RhsHeapy) {
          // p = q / p = q->f / p = q + i: p joins q's structure.
          C.copyConnections(Lhs, Rhs);
          return;
        }
        // Value from a non-heap source: conservative weak update only
        // when the rhs reads through a pointer we cannot track.
        if (A->A.isRef() && A->A.Ref.Deref)
          return; // stays within whatever structure it already had
        C.kill(Lhs);
        return;
      }
      if (LhsThroughHeap && LhsHeapy && RhsHeapy) {
        // p->f = q: the structures of p and q merge.
        C.mergeStructures(Lhs, Rhs);
        return;
      }
      return;
    }
    case AssignStmt::RhsKind::Unary:
      return;
    }
  }

  void execCall(const CallInfo &CI, ConnectionMatrix &C) {
    std::vector<const cf::VarDecl *> Touched;
    for (const Operand &Arg : CI.Args)
      if (Arg.isRef() && isHeapDirectedAnywhere(Arg.Ref.Base))
        Touched.push_back(Arg.Ref.Base);
    for (const cf::VarDecl *G : Prog.globals())
      if (isHeapDirectedAnywhere(G))
        Touched.push_back(G);
    for (size_t I = 0; I < Touched.size(); ++I)
      for (size_t J = I + 1; J < Touched.size(); ++J)
        C.mergeStructures(Touched[I], Touched[J]);
  }

  void exec(const Stmt *S, Flow &St) {
    if (!S || !St.HasNormal)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Child : castStmt<BlockStmt>(S)->Body) {
        exec(Child, St);
        if (!St.HasNormal)
          break;
      }
      return;
    case Stmt::Kind::Assign:
      execAssign(castStmt<AssignStmt>(S), St.Normal);
      return;
    case Stmt::Kind::Call:
      execCall(castStmt<CallStmt>(S)->Call, St.Normal);
      if (castStmt<CallStmt>(S)->Call.NoReturn)
        St.HasNormal = false;
      return;
    case Stmt::Kind::Return:
      mergeInto(St.Return, St.HasReturn, St.Normal, true);
      St.HasNormal = false;
      return;
    case Stmt::Kind::Break:
      mergeInto(St.Break, St.HasBreak, St.Normal, true);
      St.HasNormal = false;
      return;
    case Stmt::Kind::Continue:
      mergeInto(St.Continue, St.HasContinue, St.Normal, true);
      St.HasNormal = false;
      return;
    case Stmt::Kind::If: {
      const auto *I = castStmt<IfStmt>(S);
      Flow Then = St, Else = St;
      exec(I->Then, Then);
      if (I->Else)
        exec(I->Else, Else);
      St = Then;
      mergeInto(St.Normal, St.HasNormal, Else.Normal, Else.HasNormal);
      mergeInto(St.Break, St.HasBreak, Else.Break, Else.HasBreak);
      mergeInto(St.Continue, St.HasContinue, Else.Continue,
                Else.HasContinue);
      mergeInto(St.Return, St.HasReturn, Else.Return, Else.HasReturn);
      return;
    }
    case Stmt::Kind::Loop: {
      const auto *L = castStmt<LoopStmt>(S);
      ConnectionMatrix X = St.Normal;
      ConnectionMatrix BreakAcc;
      bool HasBreakAcc = false;
      ConnectionMatrix LastOut = X;
      bool HasLastOut = St.HasNormal;
      while (true) {
        ConnectionMatrix Prev = X;
        Flow Iter;
        Iter.Normal = X;
        Iter.HasNormal = true;
        exec(L->Body, Iter);
        mergeInto(BreakAcc, HasBreakAcc, Iter.Break, Iter.HasBreak);
        mergeInto(St.Return, St.HasReturn, Iter.Return, Iter.HasReturn);
        ConnectionMatrix After = Iter.Normal;
        bool HasAfter = Iter.HasNormal;
        mergeInto(After, HasAfter, Iter.Continue, Iter.HasContinue);
        if (HasAfter && L->Trailer) {
          Flow TF;
          TF.Normal = After;
          TF.HasNormal = true;
          exec(L->Trailer, TF);
          After = TF.Normal;
          HasAfter = TF.HasNormal;
          mergeInto(St.Return, St.HasReturn, TF.Return, TF.HasReturn);
        }
        LastOut = After;
        HasLastOut = HasAfter;
        if (HasAfter)
          X.unionWith(After);
        if (X == Prev)
          break;
      }
      if (L->PostTest) {
        St.Normal = LastOut;
        St.HasNormal = HasLastOut && L->CondVar != nullptr;
      } else {
        St.Normal = X;
        St.HasNormal = L->CondVar != nullptr;
      }
      mergeInto(St.Normal, St.HasNormal, BreakAcc, HasBreakAcc);
      return;
    }
    case Stmt::Kind::Switch: {
      const auto *Sw = castStmt<SwitchStmt>(S);
      ConnectionMatrix In = St.Normal;
      ConnectionMatrix Fall;
      bool HasFall = false;
      ConnectionMatrix BreakAcc;
      bool HasBreakAcc = false;
      for (const SwitchStmt::Case &C : Sw->Cases) {
        Flow CF;
        CF.Normal = In;
        CF.HasNormal = true;
        mergeInto(CF.Normal, CF.HasNormal, Fall, HasFall);
        for (const Stmt *B : C.Body) {
          exec(B, CF);
          if (!CF.HasNormal)
            break;
        }
        Fall = CF.Normal;
        HasFall = CF.HasNormal;
        mergeInto(BreakAcc, HasBreakAcc, CF.Break, CF.HasBreak);
        mergeInto(St.Return, St.HasReturn, CF.Return, CF.HasReturn);
        mergeInto(St.Continue, St.HasContinue, CF.Continue,
                  CF.HasContinue);
      }
      St.Normal = Fall;
      St.HasNormal = HasFall;
      if (!Sw->hasDefault())
        mergeInto(St.Normal, St.HasNormal, In, true);
      mergeInto(St.Normal, St.HasNormal, BreakAcc, HasBreakAcc);
      return;
    }
    }
  }

  const Program &Prog;
  const pta::Analyzer::Result &Res;
  std::map<const cf::VarDecl *, bool> HeapDirected;
};

} // namespace

ConnectionResult
mcpta::heap::runConnectionAnalysis(const Program &Prog,
                                   const pta::Analyzer::Result &Res) {
  ConnectionResult Out;
  ConnectionWalker Walker(Prog, Res);
  for (const FunctionIR &F : Prog.functions())
    Out.AtExit[F.Decl] = Walker.analyzeFunction(F);
  return Out;
}
