//===- ReadWriteSets.h - Read/write set computation -------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function read/write sets over abstract stack locations, the
/// building block the paper's Sec. 6.1 describes for the ALPHA
/// intermediate representation and interprocedural side-effect analysis.
/// A location is *written* when it appears in an L-location set of an
/// assignment in the function, and *read* when a reference's value is
/// consumed. Locations are reported by their context-free names
/// (including symbolic names); callers combine them with the invocation
/// graph's map information for context-specific views.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_READWRITESETS_H
#define MCPTA_CLIENTS_READWRITESETS_H

#include "pointsto/Analyzer.h"

#include <map>
#include <set>
#include <string>

namespace mcpta {
namespace clients {

struct ReadWriteSets {
  /// Function name -> sorted location names.
  std::map<std::string, std::set<std::string>> Reads;
  std::map<std::string, std::set<std::string>> Writes;

  static ReadWriteSets compute(const simple::Program &Prog,
                               const pta::Analyzer::Result &Res);
};

/// The context-specific view the paper describes in Sec. 6.1: the
/// context-free sets name invisible variables by their symbolic names;
/// combining them with one invocation-graph node's deposited map
/// information substitutes the caller locations those symbols stand for
/// in that context. Symbolic names without a binding in this context
/// are dropped (they belong to other call chains). The node's map info
/// is id-indexed, so the run's LocationTable resolves the names.
std::set<std::string>
contextualize(const std::set<std::string> &ContextFree,
              const pta::IGNode &Node, const pta::LocationTable &Locs);

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_READWRITESETS_H
