//===- PointerReplace.cpp - Pointer replacement transformation ----------------===//

#include "clients/PointerReplace.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;
using namespace mcpta::simple;

namespace {

/// Rewrites Ref in place if its dereferenced pointer definitely points
/// to a single plain variable. Returns true on success.
bool tryReplace(Reference &Ref, const PointsToSet &In, LocationTable &Locs,
                PointerReplaceResult &R) {
  if (!Ref.isIndirect())
    return false;
  ++R.Candidates;

  const Location *Ptr = Locs.varLoc(Ref.Base);
  const Location *Target = nullptr;
  for (const LocDef &T : In.targetsOf(Ptr, Locs)) {
    if (T.Loc->isNull())
      continue;
    if (T.D != Def::D || Target)
      return false; // not a unique definite target
    Target = T.Loc;
  }
  if (!Target)
    return false;
  // The replacement needs a directly nameable variable: a plain,
  // path-free, non-summary program variable.
  if (Target->root()->kind() != Entity::Kind::Variable ||
      !Target->path().empty() || Target->isSummary())
    return false;

  Ref.Base = Target->root()->var();
  Ref.Deref = false;
  ++R.Replaced;
  return true;
}

void replaceInStmt(Stmt *S, const pta::Analyzer::Result &Res,
                   PointerReplaceResult &R) {
  if (S->id() >= Res.StmtIn.size() || !Res.StmtIn[S->id()])
    return;
  const PointsToSet &In = *Res.StmtIn[S->id()];
  LocationTable &Locs = *Res.Locs;

  auto TryOperand = [&](Operand &O) {
    if (O.isRef())
      tryReplace(O.Ref, In, Locs, R);
  };
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    auto *A = castStmt<AssignStmt>(S);
    tryReplace(A->Lhs, In, Locs, R);
    switch (A->RK) {
    case AssignStmt::RhsKind::Operand:
    case AssignStmt::RhsKind::Unary:
      TryOperand(A->A);
      break;
    case AssignStmt::RhsKind::Binary:
      TryOperand(A->A);
      TryOperand(A->B);
      break;
    default:
      break;
    }
    return;
  }
  default:
    return;
  }
}

void walk(Stmt *S, const pta::Analyzer::Result &Res,
          PointerReplaceResult &R) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (Stmt *C : castStmt<BlockStmt>(S)->Body)
      walk(C, Res, R);
    return;
  case Stmt::Kind::If: {
    auto *I = castStmt<IfStmt>(S);
    walk(I->Then, Res, R);
    walk(I->Else, Res, R);
    return;
  }
  case Stmt::Kind::Loop: {
    auto *L = castStmt<LoopStmt>(S);
    walk(L->Body, Res, R);
    walk(L->Trailer, Res, R);
    return;
  }
  case Stmt::Kind::Switch:
    for (SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (Stmt *B : C.Body)
        walk(B, Res, R);
    return;
  default:
    replaceInStmt(S, Res, R);
    return;
  }
}

} // namespace

PointerReplaceResult
mcpta::clients::replacePointers(Program &Prog,
                                const pta::Analyzer::Result &Res) {
  PointerReplaceResult R;
  if (!Res.Analyzed)
    return R;
  for (FunctionIR &F : Prog.functions())
    walk(F.Body, Res, R);
  return R;
}
