//===- AliasPairs.h - Alias pair generation ---------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates traditional alias pairs from a points-to set (Sec. 7.1,
/// Figures 8 and 9): two access expressions are aliased when they
/// designate the same abstract location. Expressions are built by
/// prefixing location names with dereference stars up to a depth limit,
/// which reproduces the Landi/Ryder-style pairs ((*x, y), (**x, *y),
/// ...) that the paper compares against.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_ALIASPAIRS_H
#define MCPTA_CLIENTS_ALIASPAIRS_H

#include "pointsto/PointsToSet.h"

#include <set>
#include <string>
#include <utility>

namespace mcpta {
namespace clients {

/// The set of alias pairs implied by a points-to set, rendered as
/// canonical "(expr1,expr2)" strings with expr1 < expr2. \p MaxDerefs
/// bounds the number of stars prefixed to a variable name.
std::set<std::pair<std::string, std::string>>
aliasPairs(const pta::PointsToSet &S, const pta::LocationTable &Locs,
           unsigned MaxDerefs = 2);

/// Convenience: true if (A,B) (in either order) is in the alias set.
bool hasAlias(const std::set<std::pair<std::string, std::string>> &Pairs,
              const std::string &A, const std::string &B);

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_ALIASPAIRS_H
