//===- IGStats.cpp - Table 6 statistics ---------------------------------------===//

#include "clients/IGStats.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;
using namespace mcpta::simple;

IGStats IGStats::compute(const simple::Program &Prog,
                         const pta::Analyzer::Result &Res) {
  IGStats Out;
  if (!Res.IG)
    return Out;
  Out.Nodes = Res.IG->numNodes();
  Out.Recursive = Res.IG->numRecursive();
  Out.Approximate = Res.IG->numApproximate();
  Out.Functions = Res.IG->numFunctionsCovered();

  // Static call sites in the simplified program (reachable or not).
  std::vector<const CallInfo *> Calls;
  for (const FunctionIR &F : Prog.functions())
    collectCallInfos(F.Body, Calls);
  Out.CallSites = static_cast<unsigned>(Calls.size());
  return Out;
}
