//===- IndirectRefStats.cpp - Tables 3 & 4 statistics ------------------------===//

#include "clients/IndirectRefStats.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

namespace {

/// Collects the references appearing in one basic statement.
void collectRefs(const Stmt *S, std::vector<const Reference *> &Out) {
  auto AddOperand = [&Out](const Operand &O) {
    if (O.isRef())
      Out.push_back(&O.Ref);
  };
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    Out.push_back(&A->Lhs);
    switch (A->RK) {
    case AssignStmt::RhsKind::Operand:
    case AssignStmt::RhsKind::Unary:
      AddOperand(A->A);
      break;
    case AssignStmt::RhsKind::Binary:
      AddOperand(A->A);
      AddOperand(A->B);
      break;
    case AssignStmt::RhsKind::Alloc:
      break;
    case AssignStmt::RhsKind::Call:
      for (const Operand &Arg : A->Call.Args)
        AddOperand(Arg);
      if (A->Call.isIndirect())
        Out.push_back(&A->Call.FnPtr);
      break;
    }
    return;
  }
  case Stmt::Kind::Call: {
    const auto *C = castStmt<CallStmt>(S);
    for (const Operand &Arg : C->Call.Args)
      AddOperand(Arg);
    if (C->Call.isIndirect())
      Out.push_back(&C->Call.FnPtr);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = castStmt<ReturnStmt>(S);
    if (R->Value)
      AddOperand(*R->Value);
    return;
  }
  default:
    return;
  }
}

/// True when the indirect reference is of the paper's x[i][j] style: the
/// dereference is combined with array indexing.
bool isArrayStyle(const Reference &Ref) {
  for (const Accessor &A : Ref.Path)
    if (A.K == Accessor::Kind::Index)
      return true;
  return false;
}

void bump(SplitCount &C, bool Array) {
  if (Array)
    ++C.Array;
  else
    ++C.Scalar;
}

/// Table 4's From/To kind of a location.
enum class LocKind { Local, Global, Formal, Symbolic, Other };

LocKind kindOf(const Location *L) {
  switch (L->root()->kind()) {
  case Entity::Kind::Variable: {
    const cf::VarDecl *V = L->root()->var();
    if (V->isGlobal())
      return LocKind::Global;
    if (V->isParam())
      return LocKind::Formal;
    return LocKind::Local;
  }
  case Entity::Kind::Symbolic:
    return LocKind::Symbolic;
  case Entity::Kind::String:
    return LocKind::Global;
  case Entity::Kind::Retval:
    return LocKind::Local;
  default:
    return LocKind::Other;
  }
}

} // namespace

double IndirectRefStats::average() const {
  unsigned Resolved = OneD.total() + OneP.total() + TwoP.total() +
                      ThreeP.total() + FourPlusP.total();
  if (Resolved == 0)
    return 0;
  return static_cast<double>(totalPairs()) / Resolved;
}

IndirectRefAnalysis
IndirectRefAnalysis::compute(const simple::Program &Prog,
                             const pta::Analyzer::Result &Res) {
  IndirectRefAnalysis Out;
  if (!Res.Analyzed || !Res.Locs)
    return Out;
  LocationTable &Locs = *Res.Locs;

  for (const Stmt *S : Prog.allStmts()) {
    if (!S->isBasic())
      continue;
    if (S->id() >= Res.StmtIn.size() || !Res.StmtIn[S->id()])
      continue; // statement never reached
    const PointsToSet &In = *Res.StmtIn[S->id()];

    std::vector<const Reference *> Refs;
    collectRefs(S, Refs);
    for (const Reference *Ref : Refs) {
      if (!Ref->isIndirect())
        continue;
      ++Out.Stats.IndirectRefs;

      const Location *Ptr = Locs.varLoc(Ref->Base);
      bool Array = isArrayStyle(*Ref);

      // Resolve the dereferenced pointer; NULL does not count as a
      // target (the paper's "should not be NULL when dereferenced").
      std::vector<LocDef> Targets;
      bool HadNull = false;
      for (const LocDef &T : In.targetsOf(Ptr, Locs)) {
        if (T.Loc->isNull()) {
          HadNull = true;
          continue;
        }
        Targets.push_back(T);
      }
      (void)HadNull;
      if (Targets.empty())
        continue; // unreachable dereference; not classified

      if (Targets.size() == 1) {
        if (Targets[0].D == Def::D) {
          bump(Out.Stats.OneD, Array);
          // Replaceable by a direct reference unless the target is an
          // invisible (symbolic) variable or a summary location.
          if (!Targets[0].Loc->root()->isSymbolic() &&
              !Targets[0].Loc->isSummary() && !Targets[0].Loc->isHeap())
            ++Out.Stats.ScalarReplaceable;
        } else {
          bump(Out.Stats.OneP, Array);
        }
      } else if (Targets.size() == 2) {
        bump(Out.Stats.TwoP, Array);
      } else if (Targets.size() == 3) {
        bump(Out.Stats.ThreeP, Array);
      } else {
        bump(Out.Stats.FourPlusP, Array);
      }

      LocKind From = kindOf(Ptr);
      for (const LocDef &T : Targets) {
        if (T.Loc->isHeap()) {
          ++Out.Stats.PairsToHeap;
          continue;
        }
        ++Out.Stats.PairsToStack;
        switch (From) {
        case LocKind::Local: ++Out.Categories.FromLocal; break;
        case LocKind::Global: ++Out.Categories.FromGlobal; break;
        case LocKind::Formal: ++Out.Categories.FromFormal; break;
        case LocKind::Symbolic: ++Out.Categories.FromSymbolic; break;
        case LocKind::Other: break;
        }
        switch (kindOf(T.Loc)) {
        case LocKind::Local: ++Out.Categories.ToLocal; break;
        case LocKind::Global: ++Out.Categories.ToGlobal; break;
        case LocKind::Formal: ++Out.Categories.ToFormal; break;
        case LocKind::Symbolic: ++Out.Categories.ToSymbolic; break;
        case LocKind::Other: break;
        }
      }
    }
  }
  return Out;
}
