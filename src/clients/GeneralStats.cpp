//===- GeneralStats.cpp - Table 5 statistics ---------------------------------===//

#include "clients/GeneralStats.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;
using namespace mcpta::simple;

GeneralStats GeneralStats::compute(const simple::Program &Prog,
                                   const pta::Analyzer::Result &Res) {
  GeneralStats Out;
  if (!Res.Analyzed || !Res.Locs)
    return Out;
  LocationTable &Locs = *Res.Locs;

  for (const Stmt *S : Prog.allStmts()) {
    if (!S->isBasic())
      continue;
    ++Out.BasicStmts;
    if (S->id() >= Res.StmtIn.size() || !Res.StmtIn[S->id()])
      continue;
    const PointsToSet &In = *Res.StmtIn[S->id()];

    unsigned AtStmt = 0;
    In.forEach(Locs, [&](const Location *Src, const Location *Dst, Def) {
      if (Dst->isNull())
        return; // automatic NULL initialization is not counted
      ++AtStmt;
      if (Dst->isFunction() ||
          Dst->root()->kind() == Entity::Kind::String) {
        ++Out.ToStatic;
        return;
      }
      bool SrcHeap = Src->isHeap();
      bool DstHeap = Dst->isHeap();
      if (!SrcHeap && !DstHeap)
        ++Out.StackToStack;
      else if (!SrcHeap && DstHeap)
        ++Out.StackToHeap;
      else if (SrcHeap && DstHeap)
        ++Out.HeapToHeap;
      else
        ++Out.HeapToStack;
    });
    Out.MaxPerStmt = std::max(Out.MaxPerStmt, AtStmt);
  }
  return Out;
}
