//===- IGStats.h - Table 6 statistics ---------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invocation graph statistics (paper Table 6): node count, static call
/// sites, functions actually called, Recursive and Approximate node
/// counts, and the averages of nodes per call-site and per called
/// function.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_IGSTATS_H
#define MCPTA_CLIENTS_IGSTATS_H

#include "pointsto/Analyzer.h"

namespace mcpta {
namespace clients {

struct IGStats {
  unsigned Nodes = 0;
  unsigned CallSites = 0;
  unsigned Functions = 0; // functions actually called (incl. main)
  unsigned Recursive = 0;
  unsigned Approximate = 0;

  double avgPerCallSite() const {
    return CallSites ? static_cast<double>(Nodes) / CallSites : 0;
  }
  double avgPerFunction() const {
    return Functions ? static_cast<double>(Nodes) / Functions : 0;
  }

  static IGStats compute(const simple::Program &Prog,
                         const pta::Analyzer::Result &Res);
};

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_IGSTATS_H
