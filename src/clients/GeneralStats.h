//===- GeneralStats.h - Table 5 statistics ----------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// General points-to statistics (paper Table 5): total points-to pairs
/// summed over every basic statement of the simplified program,
/// classified by origin/target memory region (stack/heap), plus the
/// average and maximum pairs valid at a statement. NULL-target pairs are
/// excluded (they come from the automatic initialization). Pairs whose
/// target is static storage (string literals, functions) are counted
/// separately in ToStatic: they are neither stack nor heap, and folding
/// them into either column would distort the paper's headline
/// observation that heap-directed pointers never point back to the
/// stack.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_GENERALSTATS_H
#define MCPTA_CLIENTS_GENERALSTATS_H

#include "pointsto/Analyzer.h"

namespace mcpta {
namespace clients {

struct GeneralStats {
  unsigned long long StackToStack = 0;
  unsigned long long StackToHeap = 0;
  unsigned long long HeapToHeap = 0;
  unsigned long long HeapToStack = 0;
  unsigned long long ToStatic = 0; ///< targets in static storage
  unsigned BasicStmts = 0;
  unsigned MaxPerStmt = 0;

  unsigned long long total() const {
    return StackToStack + StackToHeap + HeapToHeap + HeapToStack +
           ToStatic;
  }
  double average() const {
    return BasicStmts ? static_cast<double>(total()) / BasicStmts : 0;
  }

  static GeneralStats compute(const simple::Program &Prog,
                              const pta::Analyzer::Result &Res);
};

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_GENERALSTATS_H
