//===- ReadWriteSets.cpp - Read/write set computation --------------------------===//

#include "clients/ReadWriteSets.h"

#include "pointsto/LRLocations.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;
using namespace mcpta::simple;

namespace {

struct Collector {
  const pta::Analyzer::Result &Res;
  LREvaluator Eval;
  std::set<std::string> *Reads = nullptr;
  std::set<std::string> *Writes = nullptr;

  explicit Collector(const pta::Analyzer::Result &Res)
      : Res(Res), Eval(*Res.Locs) {}

  const PointsToSet *inputOf(const Stmt *S) const {
    if (S->id() >= Res.StmtIn.size() || !Res.StmtIn[S->id()])
      return nullptr;
    return &*Res.StmtIn[S->id()];
  }

  void noteRead(const Reference &Ref, const PointsToSet &In) {
    for (const LocDef &L : Eval.refLocations(Ref, In))
      Reads->insert(L.Loc->str());
  }
  void noteReadOperand(const Operand &O, const PointsToSet &In) {
    if (O.isRef() && !O.Ref.AddrOf)
      noteRead(O.Ref, In);
  }
  void noteWrite(const Reference &Ref, const PointsToSet &In) {
    for (const LocDef &L : Eval.lvalLocations(Ref, In))
      Writes->insert(L.Loc->str());
    // A dereferencing write also reads the pointer itself.
    if (Ref.Deref)
      Reads->insert(Eval.baseLoc(Ref.Base)->str());
  }

  void visit(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Block:
      for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
        visit(C);
      return;
    case Stmt::Kind::If: {
      const auto *I = castStmt<IfStmt>(S);
      visit(I->Then);
      visit(I->Else);
      return;
    }
    case Stmt::Kind::Loop: {
      const auto *L = castStmt<LoopStmt>(S);
      visit(L->Body);
      visit(L->Trailer);
      return;
    }
    case Stmt::Kind::Switch:
      for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
        for (const Stmt *B : C.Body)
          visit(B);
      return;
    case Stmt::Kind::Assign: {
      const PointsToSet *In = inputOf(S);
      if (!In)
        return;
      const auto *A = castStmt<AssignStmt>(S);
      noteWrite(A->Lhs, *In);
      switch (A->RK) {
      case AssignStmt::RhsKind::Operand:
      case AssignStmt::RhsKind::Unary:
        noteReadOperand(A->A, *In);
        break;
      case AssignStmt::RhsKind::Binary:
        noteReadOperand(A->A, *In);
        noteReadOperand(A->B, *In);
        break;
      case AssignStmt::RhsKind::Alloc:
        break;
      case AssignStmt::RhsKind::Call:
        for (const Operand &Arg : A->Call.Args)
          noteReadOperand(Arg, *In);
        break;
      }
      return;
    }
    case Stmt::Kind::Call: {
      const PointsToSet *In = inputOf(S);
      if (!In)
        return;
      for (const Operand &Arg : castStmt<CallStmt>(S)->Call.Args)
        noteReadOperand(Arg, *In);
      return;
    }
    case Stmt::Kind::Return: {
      const PointsToSet *In = inputOf(S);
      if (!In)
        return;
      const auto *R = castStmt<ReturnStmt>(S);
      if (R->Value)
        noteReadOperand(*R->Value, *In);
      return;
    }
    default:
      return;
    }
  }
};

} // namespace

std::set<std::string>
mcpta::clients::contextualize(const std::set<std::string> &ContextFree,
                              const pta::IGNode &Node,
                              const pta::LocationTable &Locs) {
  // Index the node's map info by the symbolic root's display name.
  std::map<std::string, const std::vector<pta::LocationId> *> BySym;
  for (const pta::MapInfoTable::Entry &E : Node.MapInfo)
    BySym[Locs.byId(E.Sym)->str()] = &E.Reps;

  std::set<std::string> Out;
  for (const std::string &Name : ContextFree) {
    // A symbolic-rooted name looks like "<k>_<base>[.path]": match the
    // longest symbolic root that prefixes it.
    const std::vector<pta::LocationId> *Reps = nullptr;
    std::string Suffix;
    for (const auto &[SymName, R] : BySym) {
      if (Name.compare(0, SymName.size(), SymName) != 0)
        continue;
      if (Name.size() > SymName.size() && Name[SymName.size()] != '.' &&
          Name[SymName.size()] != '[')
        continue;
      Reps = R;
      Suffix = Name.substr(SymName.size());
    }
    if (Reps) {
      for (pta::LocationId Rep : *Reps)
        Out.insert(Locs.byId(Rep)->str() + Suffix);
      continue;
    }
    // Unbound symbolics belong to other contexts; everything else is a
    // context-independent name.
    bool LooksSymbolic = !Name.empty() && Name[0] >= '1' &&
                         Name[0] <= '9' &&
                         Name.find('_') != std::string::npos;
    if (!LooksSymbolic)
      Out.insert(Name);
  }
  return Out;
}

ReadWriteSets ReadWriteSets::compute(const Program &Prog,
                                     const pta::Analyzer::Result &Res) {
  ReadWriteSets Out;
  if (!Res.Analyzed)
    return Out;
  Collector C(Res);
  for (const FunctionIR &F : Prog.functions()) {
    C.Reads = &Out.Reads[F.Decl->name()];
    C.Writes = &Out.Writes[F.Decl->name()];
    C.visit(F.Body);
  }
  return Out;
}
