//===- CallGraphBaselines.h - 'livc' function-pointer study -----*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sec. 5/6 'livc' comparison: the size of the invocation graph when
/// indirect calls are instantiated (a) precisely from the function
/// pointer's points-to set (Figure 5), (b) naively with every function
/// in the program, and (c) with every function whose address is taken.
/// The paper reports 203 vs 619 vs 589 nodes for livc.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_CALLGRAPHBASELINES_H
#define MCPTA_CLIENTS_CALLGRAPHBASELINES_H

#include "pointsto/Analyzer.h"

namespace mcpta {
namespace clients {

struct CallGraphComparison {
  unsigned PreciseNodes = 0;
  unsigned AllFunctionsNodes = 0;
  unsigned AddressTakenNodes = 0;

  /// Runs the points-to analysis three times with the three
  /// instantiation strategies and reports the invocation graph sizes.
  static CallGraphComparison compute(const simple::Program &Prog);
};

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_CALLGRAPHBASELINES_H
