//===- CallGraphBaselines.cpp - 'livc' function-pointer study -----------------===//

#include "clients/CallGraphBaselines.h"

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;

CallGraphComparison
CallGraphComparison::compute(const simple::Program &Prog) {
  CallGraphComparison Out;

  auto Nodes = [&Prog](FnPtrMode Mode) -> unsigned {
    Analyzer::Options Opts;
    Opts.FnPtr = Mode;
    Opts.RecordStmtSets = false;
    Analyzer::Result Res = Analyzer::run(Prog, Opts);
    return Res.IG ? Res.IG->numNodes() : 0;
  };

  Out.PreciseNodes = Nodes(FnPtrMode::Precise);
  Out.AllFunctionsNodes = Nodes(FnPtrMode::AllFunctions);
  Out.AddressTakenNodes = Nodes(FnPtrMode::AddressTaken);
  return Out;
}
