//===- IndirectRefStats.h - Tables 3 & 4 statistics -------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Points-to statistics for indirect references (paper Tables 3 and 4).
/// For every indirect reference (a reference that consults a dereferenced
/// pointer: *x, (*x).f, and x[i][j] through a pointer) the dereferenced
/// pointer's resolved target set is classified:
///   - definitely one stack location / possibly one (the other being
///     NULL) / two / three / four-or-more targets;
///   - replaceable by a direct reference (definite single non-invisible
///     target);
///   - pairs used, split by target on stack vs heap;
///   - From/To categorization by source kind: local, global, formal
///     parameter, symbolic (Table 4).
/// Following the paper, relationships contributed only by the automatic
/// NULL initialization are not counted.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_INDIRECTREFSTATS_H
#define MCPTA_CLIENTS_INDIRECTREFSTATS_H

#include "pointsto/Analyzer.h"

#include <string>

namespace mcpta {
namespace clients {

/// One paired count: the paper reports scalar-style (*x, (*x).y.z) and
/// array-style (x[i][j]) indirect references separately.
struct SplitCount {
  unsigned Scalar = 0;
  unsigned Array = 0;
  unsigned total() const { return Scalar + Array; }
};

/// Table 3 row.
struct IndirectRefStats {
  SplitCount OneD;      // definitely one target
  SplitCount OneP;      // possibly one target (other NULL)
  SplitCount TwoP;      // two targets
  SplitCount ThreeP;    // three targets
  SplitCount FourPlusP; // >= four targets
  unsigned IndirectRefs = 0;
  unsigned ScalarReplaceable = 0;
  unsigned PairsToStack = 0;
  unsigned PairsToHeap = 0;
  unsigned totalPairs() const { return PairsToStack + PairsToHeap; }
  /// Average points-to pairs used per resolved indirect reference.
  double average() const;
};

/// Table 4 row: classification of pairs used by indirect references.
struct IndirectRefCategories {
  // From: kind of the dereferenced pointer's location.
  unsigned FromLocal = 0, FromGlobal = 0, FromFormal = 0, FromSymbolic = 0;
  // To: kind of the (stack) target location.
  unsigned ToLocal = 0, ToGlobal = 0, ToFormal = 0, ToSymbolic = 0;
};

/// Computes Tables 3 and 4 from an analysis result.
struct IndirectRefAnalysis {
  IndirectRefStats Stats;
  IndirectRefCategories Categories;

  static IndirectRefAnalysis compute(const simple::Program &Prog,
                                     const pta::Analyzer::Result &Res);
};

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_INDIRECTREFSTATS_H
