//===- AliasPairs.cpp - Alias pair generation ---------------------------------===//

#include "clients/AliasPairs.h"

#include <map>
#include <vector>

using namespace mcpta;
using namespace mcpta::clients;
using namespace mcpta::pta;

std::set<std::pair<std::string, std::string>>
mcpta::clients::aliasPairs(const PointsToSet &S, const LocationTable &Locs,
                           unsigned MaxDerefs) {
  // expressions[L] = access expressions that designate location L.
  // Depth 0: the location's own name. Depth k+1: "*e" for every e of
  // depth k designating some X with (X, L) in S.
  std::map<const Location *, std::vector<std::string>> Exprs;
  std::map<const Location *, std::vector<std::string>> Frontier;

  // Collect every location mentioned by the set.
  std::set<const Location *> Mentioned;
  S.forEach(Locs, [&](const Location *Src, const Location *Dst, Def) {
    Mentioned.insert(Src);
    Mentioned.insert(Dst);
  });
  for (const Location *L : Mentioned) {
    Exprs[L].push_back(L->str());
    Frontier[L].push_back(L->str());
  }

  for (unsigned Depth = 0; Depth < MaxDerefs; ++Depth) {
    std::map<const Location *, std::vector<std::string>> Next;
    for (const Location *Src : Mentioned) {
      auto It = Frontier.find(Src);
      if (It == Frontier.end() || It->second.empty())
        continue;
      for (const LocDef &T : S.targetsOf(Src, Locs)) {
        if (T.Loc->isNull())
          continue;
        for (const std::string &E : It->second) {
          std::string Deref = "*" + E;
          Next[T.Loc].push_back(Deref);
          Exprs[T.Loc].push_back(Deref);
        }
      }
    }
    Frontier = std::move(Next);
  }

  std::set<std::pair<std::string, std::string>> Out;
  for (const auto &[L, Es] : Exprs) {
    (void)L;
    for (size_t I = 0; I < Es.size(); ++I)
      for (size_t J = I + 1; J < Es.size(); ++J) {
        std::string A = Es[I], B = Es[J];
        if (A == B)
          continue;
        if (B < A)
          std::swap(A, B);
        Out.insert({A, B});
      }
  }
  return Out;
}

bool mcpta::clients::hasAlias(
    const std::set<std::pair<std::string, std::string>> &Pairs,
    const std::string &A, const std::string &B) {
  return Pairs.count({A, B}) || Pairs.count({B, A});
}
