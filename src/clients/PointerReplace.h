//===- PointerReplace.h - Pointer replacement transformation ----*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pointer-replacement transformation motivated in Sec. 1: given
/// `x = *q` and the information that q definitely points to y, rewrite
/// the access as `x = y`. Replacement requires the target to be a plain,
/// visible, non-summary variable (a definite pointer to an invisible
/// variable cannot be replaced — footnote 7 of the paper). The
/// transformation mutates the SIMPLE IR in place and reports how many
/// references it rewrote, feeding the Table 3 "Scalar Rep" column.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CLIENTS_POINTERREPLACE_H
#define MCPTA_CLIENTS_POINTERREPLACE_H

#include "pointsto/Analyzer.h"

namespace mcpta {
namespace clients {

struct PointerReplaceResult {
  unsigned Candidates = 0; ///< indirect references examined
  unsigned Replaced = 0;   ///< rewritten to direct references
};

/// Applies pointer replacement to the whole program (in place).
PointerReplaceResult replacePointers(simple::Program &Prog,
                                     const pta::Analyzer::Result &Res);

} // namespace clients
} // namespace mcpta

#endif // MCPTA_CLIENTS_POINTERREPLACE_H
