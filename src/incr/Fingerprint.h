//===- Fingerprint.h - Function fingerprints for incremental reuse -*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layer 1 of the incremental re-analysis subsystem (docs/INCREMENTAL.md):
/// a stable content hash per function over its SIMPLE IR, plus the
/// per-function structural metadata the incremental engine needs to
/// correlate a baseline snapshot with a freshly lowered program.
///
/// The hash must be stable under *unrelated* edits: SIMPLE statement ids,
/// call-site ids, string-literal ids and `$tN` temporary names are all
/// program-wide dense counters, so an edit to one function shifts them in
/// every function lowered after it. canonicalizeBody() therefore rewrites
/// `$t<N>` and `str#<N>` tokens to per-function first-occurrence indices
/// before hashing, and the id lists (StmtIds, CallSiteIds, StringIds) are
/// serialized so the engine can remap baseline ids to live ids
/// positionally (valid exactly when the fingerprint is unchanged, which
/// guarantees both walks have the same shape).
///
/// The dependency map for dirty-set closure comes from CalleeNames
/// (static direct calls, including extern targets so a definedness flip
/// dirties the caller) and GlobalRefs; indirect-call edges are recovered
/// from the baseline invocation graph by the engine.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_INCR_FINGERPRINT_H
#define MCPTA_INCR_FINGERPRINT_H

#include "simple/SimpleIR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mcpta {
namespace incr {

/// FNV-1a, the format's only hash. Exposed for tests.
inline uint64_t fnv1a(std::string_view S, uint64_t H = 0xcbf29ce484222325ull) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Structural metadata of one declared function (defined or extern),
/// serialized into mcpta-result-v3 snapshots.
struct FunctionMeta {
  std::string Name;
  uint8_t Defined = 0;
  /// Whether the body contains at least one call through a function
  /// pointer. Indirect calls have no CalleeNames edge, so a changed
  /// extern reachable only through a pointer would otherwise escape the
  /// dirty closure; the engine dirties every indirect-calling function
  /// when any extern declaration changes.
  uint8_t HasIndirectCalls = 0;
  /// Content hash: canonicalized body print + signature (return/param
  /// types and names) + address-taken flag + referenced globals
  /// (name + type). For extern declarations: signature only.
  uint64_t Fingerprint = 0;

  std::vector<std::string> ParamNames;
  /// FunctionIR::Locals order (declaration order, simplifier temps
  /// included). Baseline index k corresponds to live index k whenever
  /// the fingerprint is unchanged.
  std::vector<std::string> LocalNames;
  /// Direct callee names in first-call order, deduplicated; extern
  /// callees included.
  std::vector<std::string> CalleeNames;
  /// Referenced global variables, sorted, deduplicated.
  std::vector<std::string> GlobalRefs;
  /// Statement ids of the body in preorder walk order.
  std::vector<uint32_t> StmtIds;
  /// Call-site ids in collectCallInfos (program) order.
  std::vector<uint32_t> CallSiteIds;
  /// String-literal ids in operand walk order (duplicates preserved).
  std::vector<uint32_t> StringIds;

  bool operator==(const FunctionMeta &O) const {
    return Name == O.Name && Defined == O.Defined &&
           HasIndirectCalls == O.HasIndirectCalls &&
           Fingerprint == O.Fingerprint && ParamNames == O.ParamNames &&
           LocalNames == O.LocalNames && CalleeNames == O.CalleeNames &&
           GlobalRefs == O.GlobalRefs && StmtIds == O.StmtIds &&
           CallSiteIds == O.CallSiteIds && StringIds == O.StringIds;
  }
};

/// One global variable: name + content hash over its type and the
/// lowered initializer statements whose L-value root is the global.
struct GlobalMeta {
  std::string Name;
  uint64_t Fingerprint = 0;

  bool operator==(const GlobalMeta &O) const {
    return Name == O.Name && Fingerprint == O.Fingerprint;
  }
};

/// Program-level dependency metadata, captured into every v2 snapshot.
struct ProgramMeta {
  std::vector<FunctionMeta> Functions; ///< translation-unit order
  std::vector<GlobalMeta> Globals;     ///< Program::globals() order
  /// Hash of every record layout (field names and types). Record edits
  /// change analysis behavior without changing body prints, so a
  /// mismatch forces full re-analysis.
  uint64_t TypesFingerprint = 0;
  /// Hash of the whole lowered global-initializer block (canonicalized),
  /// covering initializer statements not attributable to a single
  /// global (temp computations). A mismatch conservatively dirties
  /// every global.
  uint64_t GlobalInitFingerprint = 0;
  /// String-literal ids appearing in globalInit operands, walk order.
  std::vector<uint32_t> GlobalInitStringIds;

  bool operator==(const ProgramMeta &O) const {
    return Functions == O.Functions && Globals == O.Globals &&
           TypesFingerprint == O.TypesFingerprint &&
           GlobalInitFingerprint == O.GlobalInitFingerprint &&
           GlobalInitStringIds == O.GlobalInitStringIds;
  }
};

/// Rewrites program-wide `$t<N>` / `str#<N>` tokens in a statement print
/// to first-occurrence indices, making the text invariant under edits to
/// other functions. Exposed for tests.
std::string canonicalizeBody(const std::string &Print);

/// Computes the full metadata for a lowered program.
ProgramMeta computeMeta(const simple::Program &Prog);

} // namespace incr
} // namespace mcpta

#endif // MCPTA_INCR_FINGERPRINT_H
