//===- IncrementalEngine.h - Incremental re-analysis engine -----*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layer 2 of the incremental re-analysis subsystem: given a baseline
/// result snapshot (mcpta-result-v3) and an edited source text,
/// re-analyze only what the edit can affect.
///
/// The contract is *exact equivalence*: the snapshot an incremental run
/// produces is byte-identical to a from-scratch run of the same source
/// with the same options (IncrementalTest proves this over the whole
/// corpus x every mutation kind). That is only possible because reuse is
/// gated three ways:
///
///  1. a *dirty set* — changed functions plus everything that can
///     observe them (transitive callers over direct-call edges, baseline
///     invocation-graph parent edges for indirect calls, referencers of
///     changed globals, and — because indirect extern calls leave no
///     edge at all — every indirect-calling function when any extern
///     declaration changes);
///  2. *donor eligibility* — a baseline invocation-graph subtree is
///     reusable only if every function in it is clean, it evaluated
///     exactly once, and no recursion back edge escapes it;
///  3. *input matching* — a donor fires only for a live calling context
///     whose input points-to set is structurally identical to the
///     donor's memoized input (locations compared by the same canonical
///     keys serve::capture sorts by).
///
/// When any gate cannot be established the engine falls back to a full
/// re-analysis and says why (IncrStats::FallbackReason, surfaced as an
/// `incr.fallback.<reason>` telemetry counter) — degradation is never
/// silent, matching the robustness layer's philosophy.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_INCR_INCREMENTALENGINE_H
#define MCPTA_INCR_INCREMENTALENGINE_H

#include "serve/Serialize.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <set>
#include <string>

namespace mcpta {
namespace incr {

/// What one reanalyze() call did, for callers and telemetry.
struct IncrStats {
  /// True when memo seeding ran to completion; false means a full
  /// from-scratch analysis was performed instead.
  bool UsedIncremental = false;
  /// Why the engine fell back ("" when UsedIncremental). One of:
  /// baseline-version (blob from an older format revision),
  /// options-mismatch (baseline produced under a different options
  /// fingerprint), options-unsupported, baseline-unanalyzed,
  /// baseline-degraded, frontend-error, types-changed, no-main,
  /// analysis-failed, graft-failed, coverage, restore-failed.
  std::string FallbackReason;
  /// Live defined functions in the dirty closure.
  uint64_t DirtyFunctions = 0;
  /// Baseline body evaluations whose replay was skipped (sum of donor
  /// EvalCount over fired grafts).
  uint64_t MemoReuse = 0;
  /// Grafts that fired (donor subtrees spliced into the live graph).
  uint64_t SeedHits = 0;
};

struct IncrOutput {
  serve::ResultSnapshot Snapshot;
  std::string Blob; ///< Snapshot serialized (current mcpta-result format)
  IncrStats Stats;
  bool Ok = false;   ///< false only when the *source* fails to analyze
  std::string Error; ///< set when !Ok
};

/// The dirty closure: names of functions whose analysis results may
/// differ from the baseline's. Includes baseline-only (deleted) names;
/// gate donors on membership, count live members for reporting.
/// Exposed separately for the dependency-edge unit tests.
std::set<std::string> computeDirtySet(const serve::ResultSnapshot &Baseline,
                                      const ProgramMeta &Live);

class IncrementalEngine {
public:
  /// Re-analyzes \p Source against \p Baseline. Always produces a
  /// complete snapshot (incremental when every gate holds, full
  /// re-analysis otherwise — see IncrStats); Ok is false only when the
  /// source itself does not analyze. \p Telem (optional) receives
  /// incr.dirty_functions / incr.memo_reuse / incr.seed_hits /
  /// incr.fallback.* counters and is forwarded to the analyzer.
  static IncrOutput reanalyze(const serve::ResultSnapshot &Baseline,
                              const std::string &Source,
                              const pta::Analyzer::Options &Opts,
                              support::Telemetry *Telem = nullptr);
};

} // namespace incr
} // namespace mcpta

#endif // MCPTA_INCR_INCREMENTALENGINE_H
