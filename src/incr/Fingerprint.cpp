//===- Fingerprint.cpp - Function fingerprints for incremental reuse ---------===//

#include "incr/Fingerprint.h"

#include "ig/InvocationGraph.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

using namespace mcpta;
using namespace mcpta::incr;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

std::string incr::canonicalizeBody(const std::string &Print) {
  // Rewrite "$t<digits>" and "str#<digits>" to per-text first-occurrence
  // indices. '$' and '#' cannot appear in source identifiers, so the
  // token prefixes are unambiguous in a statement print.
  std::string Out;
  Out.reserve(Print.size());
  std::map<std::string, unsigned> TempIdx, StrIdx;
  size_t I = 0;
  auto digitsAt = [&](size_t P) {
    size_t E = P;
    while (E < Print.size() && std::isdigit(static_cast<unsigned char>(Print[E])))
      ++E;
    return E;
  };
  while (I < Print.size()) {
    if (Print.compare(I, 2, "$t") == 0) {
      size_t E = digitsAt(I + 2);
      if (E > I + 2) {
        std::string Tok = Print.substr(I, E - I);
        auto [It, New] = TempIdx.emplace(Tok, TempIdx.size());
        (void)New;
        Out += "$t" + std::to_string(It->second);
        I = E;
        continue;
      }
    }
    if (Print.compare(I, 4, "str#") == 0) {
      size_t E = digitsAt(I + 4);
      if (E > I + 4) {
        std::string Tok = Print.substr(I, E - I);
        auto [It, New] = StrIdx.emplace(Tok, StrIdx.size());
        (void)New;
        Out += "str#" + std::to_string(It->second);
        I = E;
        continue;
      }
    }
    Out += Print[I++];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Walks
//===----------------------------------------------------------------------===//

namespace {

/// Preorder statement walk: node first, then children in program order.
/// The exact order is irrelevant as long as both the baseline and the
/// live program use this one walk (positional id remapping).
template <typename Fn> void walkStmts(const Stmt *S, Fn F) {
  if (!S)
    return;
  F(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
      walkStmts(C, F);
    return;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    walkStmts(I->Then, F);
    walkStmts(I->Else, F);
    return;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    walkStmts(L->Body, F);
    walkStmts(L->Trailer, F);
    return;
  }
  case Stmt::Kind::Switch:
    for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (const Stmt *B : C.Body)
        walkStmts(B, F);
    return;
  default:
    return;
  }
}

/// Visits every Operand of a statement tree in a fixed order.
template <typename Fn> void walkOperands(const Stmt *Root, Fn F) {
  walkStmts(Root, [&](const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = castStmt<AssignStmt>(S);
      if (A->RK == AssignStmt::RhsKind::Call) {
        for (const Operand &Arg : A->Call.Args)
          F(Arg);
        return;
      }
      F(A->A);
      if (A->RK == AssignStmt::RhsKind::Binary)
        F(A->B);
      return;
    }
    case Stmt::Kind::Call:
      for (const Operand &Arg : castStmt<CallStmt>(S)->Call.Args)
        F(Arg);
      return;
    case Stmt::Kind::Return: {
      const auto *R = castStmt<ReturnStmt>(S);
      if (R->Value)
        F(*R->Value);
      return;
    }
    case Stmt::Kind::If:
      F(castStmt<IfStmt>(S)->Cond);
      return;
    case Stmt::Kind::Switch:
      F(castStmt<SwitchStmt>(S)->Cond);
      return;
    default:
      return;
    }
  });
}

/// Visits every variable a statement tree references (reference bases,
/// runtime subscripts, loop condition variables).
template <typename Fn> void walkVars(const Stmt *Root, Fn F) {
  auto visitRef = [&](const Reference &R) {
    if (R.Base)
      F(R.Base);
    for (const Accessor &A : R.Path)
      if (A.K == Accessor::Kind::Index && A.IndexVar)
        F(A.IndexVar);
  };
  walkStmts(Root, [&](const Stmt *S) {
    if (S->kind() == Stmt::Kind::Loop) {
      if (const cf::VarDecl *V = castStmt<LoopStmt>(S)->CondVar)
        F(V);
      return;
    }
    if (S->kind() == Stmt::Kind::Assign) {
      const auto *A = castStmt<AssignStmt>(S);
      visitRef(A->Lhs);
      if (A->RK == AssignStmt::RhsKind::Call && A->Call.isIndirect())
        visitRef(A->Call.FnPtr);
      return;
    }
    if (S->kind() == Stmt::Kind::Call) {
      const auto *C = castStmt<CallStmt>(S);
      if (C->Call.isIndirect())
        visitRef(C->Call.FnPtr);
    }
  });
  walkOperands(Root, [&](const Operand &Op) {
    if (Op.isRef())
      visitRef(Op.Ref);
  });
}

std::string typeStr(const cf::Type *Ty) { return Ty ? Ty->str() : "<null>"; }

uint64_t hashRecordLayouts(const cf::TranslationUnit &Unit) {
  uint64_t H = fnv1a("records:");
  for (const cf::RecordDecl *R : Unit.records()) {
    H = fnv1a(R->name() + (R->isUnion() ? "|u{" : "|s{"), H);
    for (const cf::FieldDecl *F : R->fields())
      H = fnv1a(F->name() + ":" + typeStr(F->type()) + ";", H);
    H = fnv1a("}", H);
  }
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// computeMeta
//===----------------------------------------------------------------------===//

ProgramMeta incr::computeMeta(const Program &Prog) {
  ProgramMeta M;
  const cf::TranslationUnit &Unit = Prog.unit();

  M.TypesFingerprint = hashRecordLayouts(Unit);

  // --- globals --------------------------------------------------------
  // Attribute each lowered initializer statement to the global its
  // L-value roots at; everything else (temp computations) lands in the
  // program-level GlobalInitFingerprint.
  std::map<std::string, std::string> InitByGlobal;
  std::string InitAll;
  if (const BlockStmt *GI = Prog.globalInit()) {
    for (const Stmt *S : GI->Body) {
      std::string P = printStmt(S);
      InitAll += P;
      if (const auto *A = dynCastStmt<AssignStmt>(S))
        if (A->Lhs.Base && A->Lhs.Base->isGlobal())
          InitByGlobal[A->Lhs.Base->name()] += P;
    }
    walkOperands(GI, [&](const Operand &Op) {
      if (Op.K == Operand::Kind::StringConst)
        M.GlobalInitStringIds.push_back(Op.StringId);
    });
  }
  M.GlobalInitFingerprint = fnv1a(canonicalizeBody(InitAll));

  for (const cf::VarDecl *G : Prog.globals()) {
    GlobalMeta GM;
    GM.Name = G->name();
    std::string Text = G->name() + "|" + typeStr(G->type()) + "|";
    auto It = InitByGlobal.find(G->name());
    if (It != InitByGlobal.end())
      Text += canonicalizeBody(It->second);
    GM.Fingerprint = fnv1a(Text);
    M.Globals.push_back(std::move(GM));
  }

  // --- functions ------------------------------------------------------
  for (const cf::FunctionDecl *F : Unit.functions()) {
    FunctionMeta FM;
    FM.Name = F->name();

    std::string Sig = "ret:" + typeStr(F->returnType()) + ";";
    for (const cf::VarDecl *P : F->params()) {
      Sig += P->name() + ":" + typeStr(P->type()) + ";";
      FM.ParamNames.push_back(P->name());
    }
    if (F->type() && F->type()->isVariadic())
      Sig += "...;";
    Sig += F->isAddressTaken() ? "addrtaken;" : "";

    const FunctionIR *FIR = Prog.findFunction(F);
    if (!FIR) {
      FM.Defined = 0;
      FM.Fingerprint = fnv1a("extern|" + Sig);
      M.Functions.push_back(std::move(FM));
      continue;
    }
    FM.Defined = 1;

    for (const cf::VarDecl *V : FIR->Locals)
      FM.LocalNames.push_back(V->name());

    walkStmts(FIR->Body,
              [&](const Stmt *S) { FM.StmtIds.push_back(S->id()); });

    std::vector<const CallInfo *> Calls;
    pta::collectCallInfos(FIR->Body, Calls);
    std::set<std::string> SeenCallees;
    for (const CallInfo *CI : Calls) {
      FM.CallSiteIds.push_back(CI->CallSiteId);
      if (CI->isIndirect())
        FM.HasIndirectCalls = 1;
      if (CI->Callee && SeenCallees.insert(CI->Callee->name()).second)
        FM.CalleeNames.push_back(CI->Callee->name());
    }

    walkOperands(FIR->Body, [&](const Operand &Op) {
      if (Op.K == Operand::Kind::StringConst)
        FM.StringIds.push_back(Op.StringId);
    });

    std::set<std::string> GlobalSet;
    std::string GlobalText;
    walkVars(FIR->Body, [&](const cf::VarDecl *V) {
      if (V->isGlobal() && GlobalSet.insert(V->name()).second)
        FM.GlobalRefs.push_back(V->name());
    });
    std::sort(FM.GlobalRefs.begin(), FM.GlobalRefs.end());
    for (const std::string &G : FM.GlobalRefs)
      GlobalText += G + ";";

    std::string Body = canonicalizeBody(printStmt(FIR->Body));
    // Local declaration order and types participate too: a pointer-type
    // change alters NULL-initialization even when no statement prints
    // differently.
    std::string LocalsText;
    for (const cf::VarDecl *V : FIR->Locals)
      LocalsText += V->name() + ":" + typeStr(V->type()) + ";";

    FM.Fingerprint = fnv1a("def|" + Sig + "|locals:" + LocalsText +
                           "|globals:" + GlobalText + "|body:" + Body);
    M.Functions.push_back(std::move(FM));
  }

  return M;
}
