//===- IncrementalEngine.cpp - Incremental re-analysis engine ----------------===//
//
// The equivalence argument, in one place.
//
// An incremental run must serialize to the exact bytes a from-scratch
// run would produce. Scratch state is a function of (program, options),
// so it suffices that every piece of state the snapshot captures —
// canonical locations, per-statement input sets, invocation-graph shape
// and memo sets, warnings — ends up equal. Reuse enters in exactly one
// way: trySeed() satisfies the *first* evaluation of a live node from a
// baseline donor subtree. That is valid when
//
//  (a) the donor root's function and every function in its subtree are
//      fingerprint-clean and outside the dirty closure, so the bodies
//      the skipped evaluation would have run are textually identical;
//  (b) the donor root evaluated exactly once in the baseline, so its
//      StoredInput is the single input its whole subtree state derives
//      from;
//  (c) no recursion back edge escapes the subtree, so the skipped
//      evaluation depended on no ancestor summary that may differ; and
//  (d) the live calling input equals the donor's input under canonical
//      structural keys (the same keys serve::capture sorts by).
//
// Under (a)-(d) a fresh evaluation is a deterministic replay of the
// baseline's, so grafting the recorded subtree — kinds, recursion
// edges, memoized IN/OUT, evaluation counts — reproduces its exact
// final state, and the skipped bodies' per-statement contributions are
// exactly the baseline's rows for those functions (restored by merge
// afterwards). The remaining gap is baseline evaluations of restored
// functions *outside* any fired graft: checkCoverage() proves each one
// is mirrored by an equal live evaluation, which makes
//   scratch contexts = live contexts  ∪  grafted baseline contexts
// an equality of per-statement joins and warning sets, not just an
// inclusion. Whenever any of this cannot be established the engine
// discards the run and re-analyzes from scratch, recording why.
//
//===----------------------------------------------------------------------===//

#include "incr/IncrementalEngine.h"

#include "driver/Pipeline.h"
#include "ig/InvocationGraph.h"
#include "pointsto/Location.h"
#include "support/Version.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>
#include <vector>

using namespace mcpta;
using namespace mcpta::incr;
namespace cf = mcpta::cfront;

//===----------------------------------------------------------------------===//
// Dirty closure
//===----------------------------------------------------------------------===//

std::set<std::string>
incr::computeDirtySet(const serve::ResultSnapshot &Baseline,
                      const ProgramMeta &Live) {
  const ProgramMeta &Base = Baseline.Meta;
  std::map<std::string, const FunctionMeta *> BF, LF;
  for (const FunctionMeta &F : Base.Functions)
    BF.emplace(F.Name, &F);
  for (const FunctionMeta &F : Live.Functions)
    LF.emplace(F.Name, &F);

  // Seed 1: functions whose own content changed (edited, definedness
  // flipped, new, or deleted — deleted names seed the closure through
  // their callers even though they are not live).
  std::set<std::string> Dirty;
  for (const auto &[Name, F] : LF) {
    auto It = BF.find(Name);
    if (It == BF.end() || It->second->Fingerprint != F->Fingerprint ||
        It->second->Defined != F->Defined)
      Dirty.insert(Name);
  }
  for (const auto &[Name, F] : BF)
    if (!LF.count(Name))
      Dirty.insert(Name);

  // Indirect calls have no CalleeNames edge, and extern callees have no
  // invocation-graph node either — so when any extern declaration is
  // among the content changes, every indirect-calling live function is
  // dirtied wholesale (the pointer could have reached it).
  bool ExternChanged = false;
  for (const std::string &Name : Dirty) {
    auto BIt = BF.find(Name);
    auto LIt = LF.find(Name);
    if ((BIt != BF.end() && !BIt->second->Defined) ||
        (LIt != LF.end() && !LIt->second->Defined))
      ExternChanged = true;
  }
  if (ExternChanged)
    for (const auto &[Name, F] : LF)
      if (F->HasIndirectCalls)
        Dirty.insert(Name);

  // Seed 2: referencers of changed globals. A GlobalInitFingerprint
  // mismatch means unattributable initializer statements changed, which
  // conservatively dirties every global.
  std::map<std::string, uint64_t> BG, LG;
  for (const GlobalMeta &G : Base.Globals)
    BG.emplace(G.Name, G.Fingerprint);
  for (const GlobalMeta &G : Live.Globals)
    LG.emplace(G.Name, G.Fingerprint);
  bool AllGlobals = Base.GlobalInitFingerprint != Live.GlobalInitFingerprint;
  std::set<std::string> ChangedGlobals;
  for (const auto &[Name, FP] : LG) {
    auto It = BG.find(Name);
    if (AllGlobals || It == BG.end() || It->second != FP)
      ChangedGlobals.insert(Name);
  }
  for (const auto &[Name, FP] : BG)
    if (!LG.count(Name))
      ChangedGlobals.insert(Name);
  if (!ChangedGlobals.empty())
    for (const auto &[Name, F] : LF) {
      if (Dirty.count(Name))
        continue;
      for (const std::string &G : F->GlobalRefs)
        if (ChangedGlobals.count(G)) {
          Dirty.insert(Name);
          break;
        }
    }

  // Reverse closure: anything that calls a dirty function can observe
  // its changed summary. Direct edges come from both metadata sides;
  // indirect edges from the baseline invocation graph's parent links
  // (the live graph does not exist yet — live-only indirect edges into
  // a dirty callee can only originate in functions that are themselves
  // already dirty, since creating a new indirect edge requires a
  // changed function-pointer value).
  std::map<std::string, std::set<std::string>> Rev;
  for (const auto &[Name, F] : BF)
    for (const std::string &C : F->CalleeNames)
      Rev[C].insert(Name);
  for (const auto &[Name, F] : LF)
    for (const std::string &C : F->CalleeNames)
      Rev[C].insert(Name);
  for (const serve::IGNodeRecord &N : Baseline.IG)
    if (N.Parent >= 0 && (size_t)N.Parent < Baseline.IG.size())
      Rev[N.Function].insert(Baseline.IG[N.Parent].Function);

  std::vector<std::string> Work(Dirty.begin(), Dirty.end());
  while (!Work.empty()) {
    std::string N = std::move(Work.back());
    Work.pop_back();
    auto It = Rev.find(N);
    if (It == Rev.end())
      continue;
    for (const std::string &Caller : It->second)
      if (Dirty.insert(Caller).second)
        Work.push_back(Caller);
  }

  // The root context re-evaluates unconditionally, and keeping main out
  // of the donor pool keeps the special-cased top-level invocation away
  // from the graft machinery.
  Dirty.insert("main");
  return Dirty;
}

//===----------------------------------------------------------------------===//
// The seeding session
//===----------------------------------------------------------------------===//

namespace {

class IncrSession : public pta::MemoSeeder {
public:
  IncrSession(const serve::ResultSnapshot &Baseline, const ProgramMeta &LiveMeta,
              const std::set<std::string> &Dirty)
      : Baseline(Baseline), LiveMeta(LiveMeta), Dirty(Dirty) {}

  void begin(const simple::Program &P, pta::InvocationGraph &G,
             pta::LocationTable &L) override;
  bool trySeed(pta::IGNode *Node, const pta::PointsToSet &Input) override;

  bool failed() const { return Failed; }
  uint64_t seedHits() const { return SeedHits; }
  uint64_t memoReuse() const { return MemoReuse; }

  /// Proves every baseline evaluation of a restored function outside the
  /// fired grafts is mirrored by an equal live evaluation. Must pass
  /// before restore(); a failure demands a full re-analysis.
  bool checkCoverage(const pta::Analyzer::Result &Res);

  /// Merges the skipped evaluations' per-statement rows and warnings
  /// back into \p Res. Returns false when some baseline row cannot be
  /// mapped into the live program (full re-analysis required).
  bool restore(pta::Analyzer::Result &Res);

private:
  bool applyGraft(pta::IGNode *LiveRoot, uint32_t D,
                  const pta::PointsToSet &Input);
  const pta::Location *resolveLive(uint32_t Bid);
  const pta::Location *resolveRecord(const serve::LocationRecord &R);
  std::optional<pta::PointsToSet>
  resolveSet(const std::vector<serve::Triple> &Ts);
  const std::string &rk(uint32_t Bid);
  std::optional<std::string>
  canonBaselineSet(const std::vector<serve::Triple> &Ts);
  std::string canonLiveSet(const pta::PointsToSet &S);
  const std::string *donorCanon(uint32_t D);
  void collectStringTypes(const simple::Stmt *S);

  const serve::ResultSnapshot &Baseline;
  const ProgramMeta &LiveMeta;
  const std::set<std::string> &Dirty;

  const simple::Program *Prog = nullptr;
  pta::InvocationGraph *IG = nullptr;
  pta::LocationTable *Locs = nullptr;
  const cf::TranslationUnit *Unit = nullptr;

  std::map<std::string, const FunctionMeta *> BaseFns, LiveFns;
  std::set<std::string> Clean;
  std::map<std::string, std::map<uint32_t, uint32_t>> CallSiteRemap, StmtRemap;
  std::map<uint32_t, uint32_t> StringRemap;
  std::map<unsigned, const cf::Type *> LiveStringTy;
  std::map<std::string, const cf::VarDecl *> LiveGlobalVars;
  std::map<std::string, std::vector<const cf::VarDecl *>> LiveFnVars;
  std::optional<serve::StructuralKeys> LiveKeys;

  std::vector<uint32_t> Size; ///< preorder subtree sizes of Baseline.IG
  std::map<std::string, std::vector<uint32_t>> DonorsByFn;
  std::map<uint32_t, size_t> StmtRowById;

  // Memoized baseline-record keys ("" = unmappable) and minted live
  // locations, each with a 0/1/2 visit status for cycle protection
  // (SymParent indices are range-checked, not topology-checked).
  std::vector<std::string> RkMemo;
  std::vector<uint8_t> RkStatus;
  std::vector<const pta::Location *> RMemo;
  std::vector<uint8_t> RStatus;
  std::map<uint32_t, std::optional<std::string>> DonorCanonMemo;

  std::vector<std::pair<uint32_t, uint32_t>> FiredSpans;
  std::set<std::string> RestoredFns;
  bool Failed = false;
  uint64_t SeedHits = 0;
  uint64_t MemoReuse = 0;
};

void IncrSession::collectStringTypes(const simple::Stmt *S) {
  using namespace mcpta::simple;
  if (!S)
    return;
  auto Op = [&](const Operand &O) {
    if (O.K == Operand::Kind::StringConst)
      LiveStringTy.emplace(O.StringId, O.Ty);
  };
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
      collectStringTypes(C);
    return;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    Op(I->Cond);
    collectStringTypes(I->Then);
    collectStringTypes(I->Else);
    return;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    collectStringTypes(L->Body);
    collectStringTypes(L->Trailer);
    return;
  }
  case Stmt::Kind::Switch: {
    const auto *Sw = castStmt<SwitchStmt>(S);
    Op(Sw->Cond);
    for (const SwitchStmt::Case &C : Sw->Cases)
      for (const Stmt *B : C.Body)
        collectStringTypes(B);
    return;
  }
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    if (A->RK == AssignStmt::RhsKind::Call) {
      for (const Operand &Arg : A->Call.Args)
        Op(Arg);
      return;
    }
    Op(A->A);
    if (A->RK == AssignStmt::RhsKind::Binary)
      Op(A->B);
    return;
  }
  case Stmt::Kind::Call:
    for (const Operand &Arg : castStmt<CallStmt>(S)->Call.Args)
      Op(Arg);
    return;
  case Stmt::Kind::Return: {
    const auto *R = castStmt<ReturnStmt>(S);
    if (R->Value)
      Op(*R->Value);
    return;
  }
  default:
    return;
  }
}

void IncrSession::begin(const simple::Program &P, pta::InvocationGraph &G,
                        pta::LocationTable &L) {
  Prog = &P;
  IG = &G;
  Locs = &L;
  Unit = &P.unit();

  for (const FunctionMeta &F : Baseline.Meta.Functions)
    BaseFns.emplace(F.Name, &F);
  for (const FunctionMeta &F : LiveMeta.Functions)
    LiveFns.emplace(F.Name, &F);

  // Clean = defined on both sides, fingerprint-equal, outside the dirty
  // closure. The id-list length checks guard against the (astronomically
  // unlikely) hash collision that would break positional remapping.
  for (const auto &[Name, LFm] : LiveFns) {
    auto BIt = BaseFns.find(Name);
    if (BIt == BaseFns.end())
      continue;
    const FunctionMeta *BFm = BIt->second;
    if (!LFm->Defined || !BFm->Defined ||
        BFm->Fingerprint != LFm->Fingerprint || Dirty.count(Name))
      continue;
    if (BFm->CallSiteIds.size() != LFm->CallSiteIds.size() ||
        BFm->StmtIds.size() != LFm->StmtIds.size() ||
        BFm->StringIds.size() != LFm->StringIds.size())
      continue;
    Clean.insert(Name);
    auto &CS = CallSiteRemap[Name];
    for (size_t K = 0; K < BFm->CallSiteIds.size(); ++K)
      CS[BFm->CallSiteIds[K]] = LFm->CallSiteIds[K];
    auto &SM = StmtRemap[Name];
    for (size_t K = 0; K < BFm->StmtIds.size(); ++K)
      SM[BFm->StmtIds[K]] = LFm->StmtIds[K];
  }

  // Positional string-literal remap over clean functions (plus the
  // global initializer when unchanged). A baseline id two positions
  // disagree about is dropped entirely — unmappable, never guessed.
  std::set<uint32_t> Conflicts;
  auto AddPair = [&](uint32_t B, uint32_t Lv) {
    if (Conflicts.count(B))
      return;
    auto [It, New] = StringRemap.emplace(B, Lv);
    if (!New && It->second != Lv) {
      StringRemap.erase(It);
      Conflicts.insert(B);
    }
  };
  for (const std::string &Name : Clean) {
    const FunctionMeta *BFm = BaseFns.at(Name), *LFm = LiveFns.at(Name);
    for (size_t K = 0; K < BFm->StringIds.size(); ++K)
      AddPair(BFm->StringIds[K], LFm->StringIds[K]);
  }
  if (Baseline.Meta.GlobalInitFingerprint == LiveMeta.GlobalInitFingerprint &&
      Baseline.Meta.GlobalInitStringIds.size() ==
          LiveMeta.GlobalInitStringIds.size())
    for (size_t K = 0; K < Baseline.Meta.GlobalInitStringIds.size(); ++K)
      AddPair(Baseline.Meta.GlobalInitStringIds[K],
              LiveMeta.GlobalInitStringIds[K]);

  for (const cf::VarDecl *V : P.globals())
    LiveGlobalVars.emplace(V->name(), V);
  for (const cf::FunctionDecl *F : Unit->functions()) {
    auto &Vec = LiveFnVars[F->name()];
    for (const cf::VarDecl *Pv : F->params())
      Vec.push_back(Pv);
    if (const simple::FunctionIR *FIR = P.findFunction(F)) {
      for (const cf::VarDecl *V : FIR->Locals)
        Vec.push_back(V);
      collectStringTypes(FIR->Body);
    }
  }
  collectStringTypes(P.globalInit());

  LiveKeys.emplace(serve::localIndexMap(P));

  // Preorder subtree spans of the baseline graph: children carry larger
  // indices than their parent, so a reverse sweep accumulates final
  // subtree sizes. A parent index that is not strictly smaller marks a
  // malformed record; such nodes never become donors (guarded below).
  const auto &BIG = Baseline.IG;
  Size.assign(BIG.size(), 1);
  for (size_t I = BIG.size(); I-- > 1;) {
    int32_t Par = BIG[I].Parent;
    if (Par >= 0 && (size_t)Par < I)
      Size[Par] += Size[I];
  }

  std::vector<uint8_t> NodeClean(BIG.size(), 0);
  for (size_t I = 0; I < BIG.size(); ++I)
    NodeClean[I] = Clean.count(BIG[I].Function) ? 1 : 0;
  for (size_t D = 0; D < BIG.size(); ++D) {
    const serve::IGNodeRecord &R = BIG[D];
    if (R.Kind == (uint8_t)pta::IGNode::Kind::Approximate)
      continue;
    if (!R.HasInput || R.EvalCount != 1 || !NodeClean[D])
      continue;
    if (D + Size[D] > BIG.size())
      continue;
    bool Ok = true;
    for (size_t J = D; J < D + Size[D] && Ok; ++J) {
      if (!NodeClean[J])
        Ok = false;
      else if (BIG[J].RecEdge >= 0 && (size_t)BIG[J].RecEdge < D)
        Ok = false; // recursion back edge escapes the subtree
      else if (J > D && (BIG[J].Parent < (int32_t)D ||
                         (size_t)BIG[J].Parent >= J))
        Ok = false; // malformed preorder
    }
    if (Ok)
      DonorsByFn[R.Function].push_back((uint32_t)D);
  }

  for (size_t I = 0; I < Baseline.StmtIn.size(); ++I)
    StmtRowById.emplace(Baseline.StmtIn[I].StmtId, I);

  RkMemo.assign(Baseline.Locations.size(), std::string());
  RkStatus.assign(Baseline.Locations.size(), 0);
  RMemo.assign(Baseline.Locations.size(), nullptr);
  RStatus.assign(Baseline.Locations.size(), 0);
}

//===----------------------------------------------------------------------===//
// Structural keys of baseline records
//===----------------------------------------------------------------------===//

const std::string &IncrSession::rk(uint32_t Bid) {
  static const std::string Empty;
  if (Bid >= Baseline.Locations.size())
    return Empty;
  if (RkStatus[Bid] == 2)
    return RkMemo[Bid];
  if (RkStatus[Bid] == 1)
    return Empty; // SymParent cycle in a corrupt snapshot
  RkStatus[Bid] = 1;

  const serve::LocationRecord &R = Baseline.Locations[Bid];
  std::string K;
  switch ((pta::Entity::Kind)R.EntityKind) {
  case pta::Entity::Kind::Variable:
    if (R.Owner.empty()) {
      K = "v||" + R.RootName + "|-1";
    } else if (Clean.count(R.Owner) && R.LocalIndex >= 0) {
      // Frame locals are only comparable when the frame is clean: the
      // LocalIndex vocabulary of a dirty function may have shifted.
      K = "v|" + R.Owner + "|" + R.RootName + "|" +
          std::to_string(R.LocalIndex);
    }
    break;
  case pta::Entity::Kind::Retval:
    K = "r|" + R.Owner;
    break;
  case pta::Entity::Kind::Function:
    K = "f|" + R.RootName;
    break;
  case pta::Entity::Kind::String: {
    auto It = StringRemap.find(R.StringId);
    if (It != StringRemap.end())
      K = "s|" + std::to_string(It->second);
    break;
  }
  case pta::Entity::Kind::Heap:
    K = "h";
    break;
  case pta::Entity::Kind::Null:
    K = "n";
    break;
  case pta::Entity::Kind::Symbolic:
    if (R.SymParent >= 0) {
      const std::string &PK = rk((uint32_t)R.SymParent);
      if (!PK.empty())
        K = "y|" + R.Owner + "|" + PK + "|";
    }
    break;
  }
  if (!K.empty()) {
    size_t FieldCursor = 0;
    for (uint8_t PK : R.PathKinds) {
      if (PK == 0) {
        if (FieldCursor >= R.FieldNames.size()) {
          K.clear();
          break;
        }
        K += ".f:" + R.FieldNames[FieldCursor++];
      } else if (PK == 1) {
        K += "[0]";
      } else {
        K += "[1..]";
      }
    }
  }
  RkStatus[Bid] = 2;
  RkMemo[Bid] = std::move(K);
  return RkMemo[Bid];
}

std::optional<std::string>
IncrSession::canonBaselineSet(const std::vector<serve::Triple> &Ts) {
  std::vector<std::string> Lines;
  Lines.reserve(Ts.size());
  for (const serve::Triple &T : Ts) {
    const std::string &A = rk(T.Src);
    const std::string &B = rk(T.Dst);
    if (A.empty() || B.empty())
      return std::nullopt;
    Lines.push_back(A + ">" + B + (T.Definite ? ":D" : ":P"));
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &Ln : Lines) {
    Out += Ln;
    Out += '\n';
  }
  return Out;
}

std::string IncrSession::canonLiveSet(const pta::PointsToSet &S) {
  std::vector<std::string> Lines;
  Lines.reserve(S.size());
  S.forEach(*Locs, [&](const pta::Location *A, const pta::Location *B,
                       pta::Def D) {
    Lines.push_back(LiveKeys->key(A) + ">" + LiveKeys->key(B) +
                    (D == pta::Def::D ? ":D" : ":P"));
  });
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &Ln : Lines) {
    Out += Ln;
    Out += '\n';
  }
  return Out;
}

const std::string *IncrSession::donorCanon(uint32_t D) {
  auto It = DonorCanonMemo.find(D);
  if (It == DonorCanonMemo.end())
    It = DonorCanonMemo.emplace(D, canonBaselineSet(Baseline.IG[D].Input))
             .first;
  return It->second ? &*It->second : nullptr;
}

//===----------------------------------------------------------------------===//
// Minting resolver: baseline record -> live location
//===----------------------------------------------------------------------===//

const pta::Location *IncrSession::resolveLive(uint32_t Bid) {
  if (Bid >= Baseline.Locations.size())
    return nullptr;
  if (RStatus[Bid] == 2)
    return RMemo[Bid];
  if (RStatus[Bid] == 1)
    return nullptr;
  RStatus[Bid] = 1;
  const pta::Location *L = resolveRecord(Baseline.Locations[Bid]);
  RStatus[Bid] = 2;
  RMemo[Bid] = L;
  return L;
}

const pta::Location *
IncrSession::resolveRecord(const serve::LocationRecord &R) {
  const pta::Entity *E = nullptr;
  switch ((pta::Entity::Kind)R.EntityKind) {
  case pta::Entity::Kind::Variable:
    if (R.Owner.empty()) {
      auto It = LiveGlobalVars.find(R.RootName);
      if (It == LiveGlobalVars.end())
        return nullptr;
      E = Locs->variable(It->second);
    } else {
      auto FIt = LiveFnVars.find(R.Owner);
      if (FIt == LiveFnVars.end() || R.LocalIndex < 0 ||
          (size_t)R.LocalIndex >= FIt->second.size())
        return nullptr;
      const cf::VarDecl *V = FIt->second[R.LocalIndex];
      if (V->name() != R.RootName)
        return nullptr;
      E = Locs->variable(V);
    }
    break;
  case pta::Entity::Kind::Retval: {
    const cf::FunctionDecl *F = Unit->findFunction(R.Owner);
    if (!F)
      return nullptr;
    E = Locs->retval(F);
    break;
  }
  case pta::Entity::Kind::Function: {
    const cf::FunctionDecl *F = Unit->findFunction(R.RootName);
    if (!F)
      return nullptr;
    E = Locs->function(F);
    break;
  }
  case pta::Entity::Kind::String: {
    auto It = StringRemap.find(R.StringId);
    if (It == StringRemap.end())
      return nullptr;
    auto TIt = LiveStringTy.find(It->second);
    if (TIt == LiveStringTy.end())
      return nullptr;
    E = Locs->stringLit(It->second, TIt->second);
    break;
  }
  case pta::Entity::Kind::Heap:
    E = Locs->heapEntity();
    break;
  case pta::Entity::Kind::Null:
    E = Locs->nullEntity();
    break;
  case pta::Entity::Kind::Symbolic: {
    if (R.SymParent < 0)
      return nullptr;
    const pta::Location *Parent = resolveLive((uint32_t)R.SymParent);
    if (!Parent || R.Owner.empty())
      return nullptr;
    const cf::FunctionDecl *Frame = Unit->findFunction(R.Owner);
    if (!Frame)
      return nullptr;
    const pta::Entity *SE = Locs->symbolic(Frame, Parent);
    if (SE->symbolicLevel() != R.SymbolicLevel)
      return nullptr;
    if (R.Collapsed && !SE->isCollapsed()) {
      // The baseline run k-limit-folded this entity; replay the fold.
      // symbolic() collapses a parent at the level limit into itself.
      if (SE->symbolicLevel() < Locs->symbolicLevelLimit())
        return nullptr;
      const pta::Entity *Folded = Locs->symbolic(Frame, Locs->get(SE));
      if (Folded != SE || !SE->isCollapsed())
        return nullptr;
    }
    E = SE;
    break;
  }
  }
  if (!E)
    return nullptr;

  const pta::Location *L = Locs->get(E);
  size_t FieldCursor = 0;
  for (uint8_t PK : R.PathKinds) {
    switch (PK) {
    case 0: {
      if (FieldCursor >= R.FieldNames.size())
        return nullptr;
      const std::string &QF = R.FieldNames[FieldCursor++];
      size_t Pos = QF.find("::");
      if (Pos == std::string::npos)
        return nullptr;
      std::string RecName = QF.substr(0, Pos);
      std::string FldName = QF.substr(Pos + 2);
      const cf::RecordDecl *RD = nullptr;
      for (const cf::RecordDecl *Cand : Unit->records())
        if (Cand->name() == RecName) {
          if (RD)
            return nullptr; // ambiguous record name
          RD = Cand;
        }
      if (!RD)
        return nullptr;
      const cf::FieldDecl *FD = RD->findField(FldName);
      if (!FD)
        return nullptr;
      L = Locs->withField(L, FD);
      break;
    }
    case 1:
      L = Locs->withElem(L, true);
      break;
    case 2:
      L = Locs->withElem(L, false);
      break;
    default:
      return nullptr;
    }
  }
  return L;
}

std::optional<pta::PointsToSet>
IncrSession::resolveSet(const std::vector<serve::Triple> &Ts) {
  pta::PointsToSet S;
  for (const serve::Triple &T : Ts) {
    const pta::Location *Src = resolveLive(T.Src);
    const pta::Location *Dst = resolveLive(T.Dst);
    if (!Src || !Dst)
      return std::nullopt;
    S.insert(Src, Dst, T.Definite ? pta::Def::D : pta::Def::P);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Seeding
//===----------------------------------------------------------------------===//

bool IncrSession::trySeed(pta::IGNode *Node, const pta::PointsToSet &Input) {
  if (Failed)
    return false;
  const std::string &FnName = Node->function()->name();
  auto DIt = DonorsByFn.find(FnName);
  if (DIt == DonorsByFn.end())
    return false;

  std::string LiveCanon = canonLiveSet(Input);
  std::set<std::string> AncestorFns;
  for (pta::IGNode *A = Node->parent(); A; A = A->parent())
    AncestorFns.insert(A->function()->name());

  for (uint32_t D : DIt->second) {
    const std::string *DC = donorCanon(D);
    if (!DC || *DC != LiveCanon)
      continue;
    // If any function of the donor subtree sits on the live ancestor
    // chain, grafting would splice in recursion the analyzer never
    // detected; skip the donor (a fresh evaluation handles it).
    bool Clash = false;
    for (uint32_t J = D; J < D + Size[D] && !Clash; ++J)
      if (AncestorFns.count(Baseline.IG[J].Function))
        Clash = true;
    if (Clash)
      continue;
    if (!applyGraft(Node, D, Input)) {
      // A partially applied graft cannot be unwound; poison the session
      // so the engine discards this run entirely.
      Failed = true;
      return false;
    }
    ++SeedHits;
    for (uint32_t J = D; J < D + Size[D]; ++J) {
      MemoReuse += Baseline.IG[J].EvalCount;
      RestoredFns.insert(Baseline.IG[J].Function);
    }
    FiredSpans.emplace_back(D, D + Size[D]);
    return true;
  }
  return false;
}

bool IncrSession::applyGraft(pta::IGNode *LiveRoot, uint32_t D,
                             const pta::PointsToSet &Input) {
  const auto &BIG = Baseline.IG;

  // Consistency check: canonical-key equality must coincide with actual
  // set equality once the donor input is minted into the live table. A
  // mismatch means the key logic diverged somewhere — fall back rather
  // than trust it.
  std::optional<pta::PointsToSet> RootIn = resolveSet(BIG[D].Input);
  if (!RootIn || !(*RootIn == Input))
    return false;

  std::map<uint32_t, pta::IGNode *> LiveOf;
  for (uint32_t J = D; J < D + Size[D]; ++J) {
    const serve::IGNodeRecord &R = BIG[J];
    pta::IGNode *N;
    if (J == D) {
      N = LiveRoot;
      if (R.Kind == (uint8_t)pta::IGNode::Kind::Recursive &&
          !N->isRecursive())
        N->markRecursive();
      if ((uint8_t)N->kind() != R.Kind)
        return false;
    } else {
      auto PIt = LiveOf.find((uint32_t)R.Parent);
      if (PIt == LiveOf.end())
        return false;
      pta::IGNode *ParentLive = PIt->second;
      auto CSIt = CallSiteRemap.find(BIG[R.Parent].Function);
      if (CSIt == CallSiteRemap.end())
        return false;
      auto MIt = CSIt->second.find(R.CallSiteId);
      if (MIt == CSIt->second.end())
        return false;
      unsigned LiveCS = MIt->second;
      const cf::FunctionDecl *Callee = Unit->findFunction(R.Function);
      if (!Callee)
        return false;
      pta::IGNode *RecLive = nullptr;
      if (R.RecEdge >= 0) {
        auto RIt = LiveOf.find((uint32_t)R.RecEdge);
        if (RIt == LiveOf.end())
          return false;
        RecLive = RIt->second;
      }
      auto Kind = static_cast<pta::IGNode::Kind>(R.Kind);
      if (pta::IGNode *Existing = ParentLive->findChild(LiveCS, Callee)) {
        // Eagerly-built direct child: overlay. The only legal kind drift
        // is Ordinary -> Recursive (the baseline discovered indirect
        // recursion the eager build could not see).
        if (Existing->kind() != Kind) {
          if (Kind == pta::IGNode::Kind::Recursive &&
              Existing->kind() == pta::IGNode::Kind::Ordinary)
            Existing->markRecursive();
          else
            return false;
        }
        if (Existing->recEdge() != RecLive)
          return false;
        N = Existing;
      } else {
        N = IG->graftChild(ParentLive, LiveCS, Callee, Kind, RecLive);
        if (!N)
          return false;
      }
    }
    LiveOf[J] = N;

    if (R.HasInput) {
      std::optional<pta::PointsToSet> In = resolveSet(R.Input);
      if (!In)
        return false;
      N->StoredInput = std::move(*In);
    } else {
      N->StoredInput.reset();
    }
    if (R.HasOutput) {
      std::optional<pta::PointsToSet> Out = resolveSet(R.Output);
      if (!Out)
        return false;
      N->StoredOutput = std::move(*Out);
    } else {
      N->StoredOutput.reset();
    }
    N->EvalCount = R.EvalCount;
    N->PendingList.clear();
    if (N->isRecursive())
      N->FixpointDone = true;
    // Replicate recordMemoDeps: versions of every recursive ancestor at
    // store time. Ancestors inside the span were just grafted (version
    // 0); outside ones carry their live mid-run versions — exactly what
    // a fresh evaluation finishing now would have recorded.
    N->MemoDeps.clear();
    for (pta::IGNode *A = N->parent(); A; A = A->parent())
      if (A->isRecursive())
        N->MemoDeps.emplace_back(A, A->SummaryVersion);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Coverage and restoration
//===----------------------------------------------------------------------===//

bool IncrSession::checkCoverage(const pta::Analyzer::Result &Res) {
  if (RestoredFns.empty())
    return true;

  auto InFired = [&](uint32_t I) {
    for (const auto &[B, E] : FiredSpans)
      if (I >= B && I < E)
        return true;
    return false;
  };

  // Live evaluations per function: (kind, canonical input).
  std::map<std::string, std::vector<std::pair<uint8_t, std::string>>> LiveIdx;
  Res.IG->forEachNode([&](const pta::IGNode *N) {
    if (N->EvalCount >= 1 && N->StoredInput &&
        RestoredFns.count(N->function()->name()))
      LiveIdx[N->function()->name()].emplace_back(
          (uint8_t)N->kind(), canonLiveSet(*N->StoredInput));
  });

  const auto &BIG = Baseline.IG;
  for (uint32_t I = 0; I < BIG.size(); ++I) {
    const serve::IGNodeRecord &R = BIG[I];
    if (R.EvalCount == 0 || !RestoredFns.count(R.Function))
      continue;
    if (InFired(I))
      continue;
    // This baseline evaluation was not grafted: its per-statement rows
    // ride along in the wholesale function restore, so an equal live
    // evaluation must exist or the restored rows would over-approximate.
    if (R.EvalCount != 1 || !R.HasInput)
      return false;
    if (I + Size[I] > BIG.size())
      return false;
    for (uint32_t J = I; J < I + Size[I]; ++J)
      if (BIG[J].RecEdge >= 0 && (uint32_t)BIG[J].RecEdge < I)
        return false; // depended on an ancestor summary; not comparable
    std::optional<std::string> C = canonBaselineSet(R.Input);
    if (!C)
      return false;
    auto LIt = LiveIdx.find(R.Function);
    if (LIt == LiveIdx.end())
      return false;
    bool Found = false;
    for (const auto &[K, LC] : LIt->second)
      if (K == R.Kind && LC == *C) {
        Found = true;
        break;
      }
    if (!Found)
      return false;
  }
  return true;
}

bool IncrSession::restore(pta::Analyzer::Result &Res) {
  for (const std::string &Fn : RestoredFns) {
    auto BIt = BaseFns.find(Fn);
    auto SIt = StmtRemap.find(Fn);
    if (BIt == BaseFns.end() || SIt == StmtRemap.end())
      return false;
    for (uint32_t BS : BIt->second->StmtIds) {
      auto RowIt = StmtRowById.find(BS);
      if (RowIt == StmtRowById.end())
        continue; // statement never reached in the baseline
      auto MIt = SIt->second.find(BS);
      if (MIt == SIt->second.end())
        return false;
      uint32_t LiveId = MIt->second;
      if (LiveId >= Res.StmtIn.size())
        return false;
      std::optional<pta::PointsToSet> Set =
          resolveSet(Baseline.StmtIn[RowIt->second].Triples);
      if (!Set)
        return false;
      if (Res.StmtIn[LiveId])
        Res.StmtIn[LiveId]->mergeWith(*Set);
      else
        Res.StmtIn[LiveId] = std::move(*Set);
    }
  }

  // The live warning log is keyed by FunctionDecl; resolve the baseline's
  // function names against the live program before re-attributing.
  std::map<std::string, const cfront::FunctionDecl *> DeclByName;
  for (const simple::FunctionIR &F : Res.IG->program().functions())
    DeclByName[F.Decl->name()] = F.Decl;

  std::set<std::string> Seen(Res.Warnings.begin(), Res.Warnings.end());
  for (const std::string &Fn : RestoredFns) {
    auto It = Baseline.WarningsByFn.find(Fn);
    if (It == Baseline.WarningsByFn.end())
      continue;
    auto DIt = DeclByName.find(Fn);
    if (DIt == DeclByName.end())
      return false; // a restored function must exist in the live program
    for (const std::string &Msg : It->second) {
      Res.WarningsByFn.add(DIt->second, Msg);
      if (Seen.insert(Msg).second)
        Res.Warnings.push_back(Msg);
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine driver
//===----------------------------------------------------------------------===//

IncrOutput IncrementalEngine::reanalyze(const serve::ResultSnapshot &Baseline,
                                        const std::string &Source,
                                        const pta::Analyzer::Options &Opts,
                                        support::Telemetry *Telem) {
  IncrOutput O;
  std::string OptsFP = serve::optionsFingerprint(Opts);

  auto FullRun = [&](std::string Reason) -> IncrOutput & {
    if (Telem)
      Telem->add("incr.fallback." + Reason, 1);
    pta::Analyzer::Options FOpts = Opts;
    FOpts.Seeder = nullptr;
    if (Telem)
      FOpts.Telem = Telem;
    Pipeline P = Pipeline::analyzeSource(Source, FOpts);
    if (!P.ok()) {
      O.Ok = false;
      O.Error = P.Diags.dump();
      if (O.Error.empty())
        O.Error = "analysis failed";
      O.Stats.FallbackReason = std::move(Reason);
      return O;
    }
    O.Snapshot = serve::ResultSnapshot::capture(*P.Prog, P.Analysis, OptsFP);
    O.Blob = serve::serialize(O.Snapshot);
    O.Ok = true;
    O.Stats.UsedIncremental = false;
    O.Stats.FallbackReason = std::move(Reason);
    return O;
  };

  if (Baseline.FormatVersion != version::kResultFormatVersion)
    return FullRun("baseline-version");
  if (OptsFP != Baseline.OptionsFingerprint)
    return FullRun("options-mismatch");
  if (!Opts.ContextSensitive || Opts.FnPtr != pta::FnPtrMode::Precise ||
      Opts.Limits.any())
    return FullRun("options-unsupported");
  if (!Baseline.Analyzed)
    return FullRun("baseline-unanalyzed");
  if (Baseline.degraded())
    return FullRun("baseline-degraded");

  Pipeline FE = Pipeline::frontend(Source);
  if (!FE.Prog || FE.Diags.hasErrors()) {
    if (Telem)
      Telem->add("incr.fallback.frontend-error", 1);
    O.Ok = false;
    O.Error = FE.Diags.dump();
    if (O.Error.empty())
      O.Error = "frontend failed";
    O.Stats.FallbackReason = "frontend-error";
    return O;
  }

  ProgramMeta LiveMeta = computeMeta(*FE.Prog);
  if (LiveMeta.TypesFingerprint != Baseline.Meta.TypesFingerprint)
    return FullRun("types-changed");
  const cfront::FunctionDecl *Main = FE.Unit->findFunction("main");
  if (!Main || !FE.Prog->findFunction(Main))
    return FullRun("no-main");

  std::set<std::string> Dirty = computeDirtySet(Baseline, LiveMeta);
  uint64_t DirtyLive = 0;
  for (const FunctionMeta &F : LiveMeta.Functions)
    if (F.Defined && Dirty.count(F.Name))
      ++DirtyLive;
  O.Stats.DirtyFunctions = DirtyLive;
  if (Telem)
    Telem->add("incr.dirty_functions", DirtyLive);

  IncrSession Session(Baseline, LiveMeta, Dirty);
  pta::Analyzer::Options IOpts = Opts;
  IOpts.Seeder = &Session;
  if (Telem)
    IOpts.Telem = Telem;
  pta::Analyzer::Result Res = pta::Analyzer::run(*FE.Prog, IOpts);

  if (Session.failed())
    return FullRun("graft-failed");
  if (!Res.Analyzed)
    return FullRun("analysis-failed");
  if (!Session.checkCoverage(Res))
    return FullRun("coverage");
  if (!Session.restore(Res))
    return FullRun("restore-failed");

  O.Stats.MemoReuse = Session.memoReuse();
  O.Stats.SeedHits = Session.seedHits();
  if (Telem) {
    Telem->add("incr.memo_reuse", O.Stats.MemoReuse);
    Telem->add("incr.seed_hits", O.Stats.SeedHits);
  }
  O.Snapshot = serve::ResultSnapshot::capture(*FE.Prog, Res, OptsFP);
  O.Blob = serve::serialize(O.Snapshot);
  O.Ok = true;
  O.Stats.UsedIncremental = true;
  return O;
}
