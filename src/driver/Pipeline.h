//===- Pipeline.h - One-call analysis facade --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door: parse C source, lower to SIMPLE, run the
/// context-sensitive points-to analysis, and keep every intermediate
/// artifact alive for clients. Most examples, tests and benchmarks go
/// through Pipeline::analyzeSource.
///
/// \code
///   auto P = mcpta::Pipeline::analyzeSource(SourceText);
///   if (!P.ok()) { ... P.Diags.dump() ... }
///   auto Stats = mcpta::clients::IndirectRefAnalysis::compute(
///       *P.Prog, P.Analysis);
/// \endcode
///
/// For observability, analyzeSourceTraced runs the same pipeline with a
/// Pipeline-owned support::Telemetry instance attached: phase spans
/// (lex, parse, simplify, ig-build, pointsto), hot-path counters, and
/// histograms are recorded and can be exported as Chrome trace JSON or
/// flat stats JSON (see docs/OBSERVABILITY.md):
///
/// \code
///   auto P = mcpta::Pipeline::analyzeSourceTraced(SourceText);
///   P.Telem->writeStatsJsonFile("stats.json");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_DRIVER_PIPELINE_H
#define MCPTA_DRIVER_PIPELINE_H

#include "cfront/Parser.h"
#include "pointsto/Analyzer.h"
#include "simple/Simplifier.h"
#include "support/Telemetry.h"

#include <memory>
#include <string>

namespace mcpta {

/// Owns every stage's artifacts for one analyzed program.
struct Pipeline {
  DiagnosticsEngine Diags;
  std::unique_ptr<cfront::ASTContext> Ctx;
  std::unique_ptr<cfront::TranslationUnit> Unit;
  std::unique_ptr<simple::Program> Prog;
  pta::Analyzer::Result Analysis;
  /// Instrumentation for this run. Null for the untraced entry points
  /// (zero observability overhead); owned and populated by the *Traced
  /// variants. Analysis warnings are mirrored into Diags either way.
  std::unique_ptr<support::Telemetry> Telem;

  /// True when parsing, simplification, and analysis all succeeded.
  bool ok() const {
    return !Diags.hasErrors() && Prog != nullptr && Analysis.Analyzed;
  }

  /// True when the analysis ran but tripped a resource budget and took
  /// one or more conservative fallbacks (see Analysis.Degradations and
  /// docs/ROBUSTNESS.md). A degraded result is still ok(): clients that
  /// need full precision must check this separately (pta-tool maps it
  /// to exit code 2 under --strict).
  bool degraded() const { return Analysis.degraded(); }

  /// Parses and lowers only (no analysis). Prog is null on error.
  static Pipeline frontend(const std::string &Source);

  /// Full pipeline with default analysis options.
  static Pipeline analyzeSource(const std::string &Source);
  /// Full pipeline with explicit analysis options. If Opts.Telem is set
  /// the analyzer records into the caller's Telemetry (but no frontend
  /// phase spans are produced; use analyzeSourceTraced for those).
  static Pipeline analyzeSource(const std::string &Source,
                                const pta::Analyzer::Options &Opts);

  /// Full pipeline with telemetry enabled end-to-end: the returned
  /// Pipeline owns an enabled Telemetry (P.Telem) holding phase spans
  /// for lex, parse, simplify, analyze (with ig-build and pointsto
  /// children), plus every analyzer counter and histogram. Any Telem
  /// already present in \p Opts is overridden by the owned instance.
  static Pipeline analyzeSourceTraced(const std::string &Source,
                                      pta::Analyzer::Options Opts = {});
};

} // namespace mcpta

#endif // MCPTA_DRIVER_PIPELINE_H
