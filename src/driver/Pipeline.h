//===- Pipeline.h - One-call analysis facade --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door: parse C source, lower to SIMPLE, run the
/// context-sensitive points-to analysis, and keep every intermediate
/// artifact alive for clients. Most examples, tests and benchmarks go
/// through Pipeline::analyzeSource.
///
/// \code
///   auto P = mcpta::Pipeline::analyzeSource(SourceText);
///   if (!P.ok()) { ... P.Diags.dump() ... }
///   auto Stats = mcpta::clients::IndirectRefAnalysis::compute(
///       *P.Prog, P.Analysis);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_DRIVER_PIPELINE_H
#define MCPTA_DRIVER_PIPELINE_H

#include "cfront/Parser.h"
#include "pointsto/Analyzer.h"
#include "simple/Simplifier.h"

#include <memory>
#include <string>

namespace mcpta {

/// Owns every stage's artifacts for one analyzed program.
struct Pipeline {
  DiagnosticsEngine Diags;
  std::unique_ptr<cfront::ASTContext> Ctx;
  std::unique_ptr<cfront::TranslationUnit> Unit;
  std::unique_ptr<simple::Program> Prog;
  pta::Analyzer::Result Analysis;

  /// True when parsing, simplification, and analysis all succeeded.
  bool ok() const {
    return !Diags.hasErrors() && Prog != nullptr && Analysis.Analyzed;
  }

  /// Parses and lowers only (no analysis). Prog is null on error.
  static Pipeline frontend(const std::string &Source);

  /// Full pipeline with default analysis options.
  static Pipeline analyzeSource(const std::string &Source);
  /// Full pipeline with explicit analysis options.
  static Pipeline analyzeSource(const std::string &Source,
                                const pta::Analyzer::Options &Opts);
};

} // namespace mcpta

#endif // MCPTA_DRIVER_PIPELINE_H
