//===- ToolMain.cpp - pta-tool command line driver -----------------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Usage:
//   pta-tool [options] file.c
//   pta-tool [options] --corpus NAME      (embedded benchmark)
//   pta-tool --list-corpus
//
// Options:
//   --dump-simple     print the SIMPLE lowering
//   --dump-ig         print the invocation graph
//   --dump-pointsto   print the points-to set at the end of main
//   --stats           print Tables 3-6 style statistics
//   --fnptr=MODE      precise | all | address-taken
//   --context-insensitive
//   --profile         print a per-phase wall-time table
//   --json FILE       write flat stats JSON (counters/histograms/phases)
//   --trace-json FILE write Chrome trace_event JSON (chrome://tracing,
//                     Perfetto)
//
//===----------------------------------------------------------------------===//

#include "clients/GeneralStats.h"
#include "clients/IGStats.h"
#include "clients/IndirectRefStats.h"
#include "corpus/Corpus.h"
#include "driver/Pipeline.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace mcpta;

static int usage() {
  std::fprintf(stderr,
               "usage: pta-tool [--dump-simple] [--dump-ig] "
               "[--dump-pointsto] [--stats]\n"
               "                [--fnptr=precise|all|address-taken] "
               "[--context-insensitive]\n"
               "                [--profile] [--json FILE] "
               "[--trace-json FILE]\n"
               "                (file.c | --corpus NAME | --list-corpus)\n");
  return 2;
}

int main(int argc, char **argv) {
  bool DumpSimple = false, DumpIG = false, DumpPointsTo = false,
       Stats = false, Profile = false;
  pta::Analyzer::Options Opts;
  std::string File, CorpusName, StatsJsonPath, TraceJsonPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--dump-simple")
      DumpSimple = true;
    else if (Arg == "--dump-ig")
      DumpIG = true;
    else if (Arg == "--dump-pointsto")
      DumpPointsTo = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--profile")
      Profile = true;
    else if (Arg == "--fnptr=precise")
      Opts.FnPtr = pta::FnPtrMode::Precise;
    else if (Arg == "--fnptr=all")
      Opts.FnPtr = pta::FnPtrMode::AllFunctions;
    else if (Arg == "--fnptr=address-taken")
      Opts.FnPtr = pta::FnPtrMode::AddressTaken;
    else if (Arg == "--context-insensitive")
      Opts.ContextSensitive = false;
    else if (Arg == "--json" && I + 1 < argc)
      StatsJsonPath = argv[++I];
    else if (Arg == "--trace-json" && I + 1 < argc)
      TraceJsonPath = argv[++I];
    else if (Arg == "--list-corpus") {
      for (const corpus::CorpusProgram &P : corpus::corpus())
        std::printf("%-10s %s\n", P.Name, P.Description);
      return 0;
    } else if (Arg == "--corpus" && I + 1 < argc) {
      CorpusName = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }

  std::string Source;
  if (!CorpusName.empty()) {
    const corpus::CorpusProgram *P = corpus::find(CorpusName);
    if (!P) {
      std::fprintf(stderr, "error: unknown corpus program '%s'\n",
                   CorpusName.c_str());
      return 2;
    }
    Source = P->Source;
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    return usage();
  }

  // Any observability flag turns on the instrumented pipeline; the
  // default path stays uninstrumented (no telemetry overhead at all).
  bool WantTelemetry =
      Profile || !StatsJsonPath.empty() || !TraceJsonPath.empty();
  Pipeline P = WantTelemetry ? Pipeline::analyzeSourceTraced(Source, Opts)
                             : Pipeline::analyzeSource(Source, Opts);
  if (P.Diags.hasErrors()) {
    std::fputs(P.Diags.dump().c_str(), stderr);
    return 1;
  }
  // Analysis warnings (e.g. a MaxLoopIterations safety-valve trip or an
  // unresolved function pointer) are surfaced through the diagnostics
  // engine; never drop them silently.
  for (const Diagnostic &D : P.Diags.diagnostics())
    if (D.Level == DiagLevel::Warning)
      std::fprintf(stderr, "warning: %s\n", D.Message.c_str());

  if (DumpSimple)
    std::fputs(P.Prog->str().c_str(), stdout);
  if (DumpIG && P.Analysis.IG)
    std::fputs(P.Analysis.IG->str().c_str(), stdout);
  if (DumpPointsTo && P.Analysis.MainOut)
    std::printf("%s\n",
                P.Analysis.MainOut->str(*P.Analysis.Locs).c_str());

  if (Stats) {
    support::Telemetry::Span ClientsSpan(P.Telem.get(), "clients");
    auto IR = clients::IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    auto GS = clients::GeneralStats::compute(*P.Prog, P.Analysis);
    auto IS = clients::IGStats::compute(*P.Prog, P.Analysis);
    std::printf("SIMPLE stmts:        %u\n", P.Prog->numBasicStmts());
    std::printf("indirect refs:       %u (avg targets %.2f)\n",
                IR.Stats.IndirectRefs, IR.Stats.average());
    std::printf("  1D=%u 1P=%u 2=%u 3=%u 4+=%u replaceable=%u\n",
                IR.Stats.OneD.total(), IR.Stats.OneP.total(),
                IR.Stats.TwoP.total(), IR.Stats.ThreeP.total(),
                IR.Stats.FourPlusP.total(), IR.Stats.ScalarReplaceable);
    std::printf("pairs: SS=%llu SH=%llu HH=%llu HS=%llu avg=%.1f max=%u\n",
                GS.StackToStack, GS.StackToHeap, GS.HeapToHeap,
                GS.HeapToStack, GS.average(), GS.MaxPerStmt);
    std::printf("IG: nodes=%u callsites=%u fns=%u R=%u A=%u "
                "avgc=%.2f avgf=%.2f\n",
                IS.Nodes, IS.CallSites, IS.Functions, IS.Recursive,
                IS.Approximate, IS.avgPerCallSite(), IS.avgPerFunction());
  }

  if (Profile && P.Telem)
    std::fputs(P.Telem->profileTable().c_str(), stdout);
  if (!StatsJsonPath.empty() && P.Telem &&
      !P.Telem->writeStatsJsonFile(StatsJsonPath)) {
    std::fprintf(stderr, "error: cannot write stats JSON to '%s'\n",
                 StatsJsonPath.c_str());
    return 1;
  }
  if (!TraceJsonPath.empty() && P.Telem &&
      !P.Telem->writeTraceJsonFile(TraceJsonPath)) {
    std::fprintf(stderr, "error: cannot write trace JSON to '%s'\n",
                 TraceJsonPath.c_str());
    return 1;
  }
  return 0;
}
