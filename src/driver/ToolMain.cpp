//===- ToolMain.cpp - pta-tool command line driver -----------------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Usage:
//   pta-tool [options] file.c
//   pta-tool [options] --corpus NAME      (embedded benchmark)
//   pta-tool [options] --batch DIR        (every *.c file, isolated)
//   pta-tool [options] --serve            (NDJSON daemon on stdin/stdout)
//   pta-tool --list-corpus
//   pta-tool --gen-stress[=DEPTH]         (print a pathological program)
//   pta-tool --version
//
// Options:
//   --dump-simple     print the SIMPLE lowering
//   --dump-ig         print the invocation graph
//   --dump-pointsto   print the points-to set at the end of main
//   --stats           print Tables 3-6 style statistics
//   --fnptr=MODE      precise | all | address-taken
//   --context-insensitive
//   --profile         print a per-phase wall-time table, hottest phase
//                     first, with a final mem.* summary line (peak RSS,
//                     set-heap peak, location-table sizes)
//   --json FILE       write flat stats JSON (counters/histograms/phases)
//   --trace-json FILE write Chrome trace_event JSON (chrome://tracing,
//                     Perfetto)
//
// Parallel engine (docs/PARALLEL.md):
//   --analysis-threads=N  width of the parallel fixed-point engine
//                         (default 1 = classic sequential engine).
//                         Single file: offloads the per-statement set
//                         folding onto a work-stealing pool. --batch:
//                         analyzes N files concurrently in-process
//                         (replacing the fork-per-file isolation) with
//                         output replayed in input order. Results are
//                         byte-identical at any N.
//
// Resource governance (docs/ROBUSTNESS.md):
//   --timeout-ms=N        wall-clock deadline for the analysis
//   --max-stmt-visits=N   statement-visit budget
//   --max-locations=N     abstract-location cap
//   --max-ig-nodes=N      invocation-graph node cap
//   --max-rec-passes=N    recursion-generalization pass cap
//   --strict              exit 2 when the analysis degraded
//
// Serving (docs/SERVING.md):
//   --serve               long-lived NDJSON request loop over
//                         stdin/stdout (analyze/alias/points_to/
//                         read_write_sets/stats/invalidate/shutdown)
//   --cache-dir=DIR       persistent summary-cache directory (default
//                         $MCPTA_CACHE_DIR, else .mcpta-cache; "" for
//                         a memory-only cache). Also threads the cache
//                         through --batch: cached files skip analysis
//                         and the batch summary line reports hits.
//   --serve-threads=N     worker threads for the daemon (default 1 =
//                         sequential loop; N > 1 enables the bounded
//                         queue + pool, responses may be out of order)
//   --serve-queue-cap=N   bounded request-queue capacity (default 128);
//                         a full queue sheds with an overloaded error
//   --serve-deadline-ms=N per-request deadline budget; queue wait
//                         counts against it and pressure tightens it
//   --serve-max-line-bytes=N
//                         NDJSON input-line bound (default 8 MiB)
//   --fault-inject=SPEC   deterministic fault injection for chaos
//                         testing (docs/ROBUSTNESS.md grammar); "on"
//                         accepts per-request "fault" members only
//
// Incremental re-analysis (docs/INCREMENTAL.md):
//   --incremental-baseline=PATH
//                         single-source mode: re-analyze against the
//                         snapshot in file PATH (when it exists)
//                         through the incremental engine, then write
//                         the new snapshot back. The first run creates
//                         the baseline with a full analysis.
//                         batch mode: PATH is a directory holding one
//                         baseline per source file (<stem>.snapshot);
//                         each file re-analyzes against and updates its
//                         own baseline. In both modes a baseline
//                         recorded under a different options
//                         fingerprint (or an older format version) is
//                         never reused: the run falls back to a full
//                         analysis with the reason printed and recorded
//                         as an incr.fallback.* counter. Not applicable
//                         to --serve.
//
// One-shot demand queries (docs/DEMAND.md):
//   --points-to=NAME      print the points-to targets of location NAME
//                         at the end of main, then exit
//   --alias=A:B           print whether access paths A and B (zero or
//                         more '*' prefixes on a variable) may alias
//   --strategy=MODE       demand (default; liveness-pruned run with
//                         exhaustive fallback) | exhaustive
//
// Exit codes: 0 = clean run (degraded runs included unless --strict),
// 1 = usage/input/diagnostics error, 2 = analysis degraded under
// --strict.
//
//===----------------------------------------------------------------------===//

#include "clients/GeneralStats.h"
#include "clients/IGStats.h"
#include "clients/IndirectRefStats.h"
#include "corpus/Corpus.h"
#include "demand/DemandQuery.h"
#include "driver/Pipeline.h"
#include "incr/IncrementalEngine.h"
#include "serve/Serialize.h"
#include "serve/Server.h"
#include "serve/SummaryCache.h"
#include "support/ThreadPool.h"
#include "support/Version.h"
#include "wlgen/WorkloadGen.h"

#include <memory>

#include <algorithm>
#include <iostream>
#include <mutex>
#include <set>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace mcpta;

namespace {

struct ToolConfig {
  bool DumpSimple = false;
  bool DumpIG = false;
  bool DumpPointsTo = false;
  bool Stats = false;
  bool Profile = false;
  bool Strict = false;
  pta::Analyzer::Options Opts;
  std::string StatsJsonPath, TraceJsonPath;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: pta-tool [--dump-simple] [--dump-ig] "
      "[--dump-pointsto] [--stats]\n"
      "                [--fnptr=precise|all|address-taken] "
      "[--context-insensitive]\n"
      "                [--profile] [--json FILE] [--trace-json FILE]\n"
      "                [--analysis-threads=N]\n"
      "                [--timeout-ms=N] [--max-stmt-visits=N] "
      "[--max-locations=N]\n"
      "                [--max-ig-nodes=N] [--max-rec-passes=N] [--strict]\n"
      "                [--cache-dir=DIR] [--incremental-baseline=PATH]\n"
      "                [--serve-threads=N] [--serve-queue-cap=N]\n"
      "                [--serve-deadline-ms=N] [--serve-max-line-bytes=N]\n"
      "                [--fault-inject=SPEC]\n"
      "                [--points-to=NAME | --alias=A:B] "
      "[--strategy=demand|exhaustive]\n"
      "                (file.c | --corpus NAME | --batch DIR | --serve |\n"
      "                 --list-corpus | --gen-stress[=DEPTH] | --version)\n");
  return 1;
}

/// Parses "--name=NUM" into \p Out. Returns false when \p Arg does not
/// start with "--name="; a malformed number is reported and exits 1
/// through \p Bad.
bool parseU64Flag(const std::string &Arg, const char *Name, uint64_t &Out,
                  bool &Bad) {
  std::string Prefix = std::string(Name) + "=";
  if (Arg.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  const std::string Val = Arg.substr(Prefix.size());
  char *End = nullptr;
  unsigned long long N = std::strtoull(Val.c_str(), &End, 10);
  if (Val.empty() || !End || *End != '\0') {
    std::fprintf(stderr, "error: invalid number in '%s'\n", Arg.c_str());
    Bad = true;
    return true;
  }
  Out = N;
  return true;
}

/// Analyzes one source text; prints per the config. Returns the process
/// exit code (0 clean, 1 error, 2 degraded under --strict). When
/// \p CaptureOut is non-null and the analysis ran, the result snapshot
/// is captured into it (for the batch-mode summary cache).
///
/// Output goes to \p OutF / \p ErrF rather than stdout/stderr directly:
/// the parallel batch runs several of these concurrently, each writing
/// into a private memory stream that is replayed in input order. When
/// \p BatchTelem is set (parallel batch with an observability flag),
/// the per-file telemetry is folded into it under \p BatchTelemMu via
/// Telemetry::mergeFrom instead of being written per file.
int runOne(const std::string &Source, const ToolConfig &Cfg,
           serve::ResultSnapshot *CaptureOut = nullptr, FILE *OutF = stdout,
           FILE *ErrF = stderr, support::Telemetry *BatchTelem = nullptr,
           std::mutex *BatchTelemMu = nullptr) {
  pta::Analyzer::Options Opts = Cfg.Opts;
  // Any observability flag turns on the instrumented pipeline; the
  // default path stays uninstrumented (no telemetry overhead at all).
  bool WantTelemetry = Cfg.Profile || !Cfg.StatsJsonPath.empty() ||
                       !Cfg.TraceJsonPath.empty();
  Pipeline P = WantTelemetry ? Pipeline::analyzeSourceTraced(Source, Opts)
                             : Pipeline::analyzeSource(Source, Opts);
  if (P.Diags.hasErrors()) {
    std::fputs(P.Diags.dump().c_str(), ErrF);
    return 1;
  }
  // Analysis warnings (e.g. a MaxLoopIterations safety-valve trip or an
  // unresolved function pointer) are surfaced through the diagnostics
  // engine; never drop them silently.
  for (const Diagnostic &D : P.Diags.diagnostics())
    if (D.Level == DiagLevel::Warning)
      std::fprintf(ErrF, "warning: %s\n", D.Message.c_str());

  // Budget degradations: one structured line per distinct (kind,
  // context category), plus a headline so batch logs stay greppable.
  // Under sustained budget pressure the contexts name individual
  // functions/call sites; printing every one would flood the log, so
  // repeats of the same failure mode are summarized — full counts stay
  // in the pta.degraded.* counters and in P.Analysis.Degradations.
  if (P.degraded()) {
    std::set<std::string> Printed;
    unsigned Suppressed = 0;
    for (const support::Degradation &D : P.Analysis.Degradations) {
      std::string Key = std::string(support::limitKindName(D.Kind)) + "|" +
                        support::degradationCategory(D.Context);
      if (!Printed.insert(Key).second) {
        ++Suppressed;
        continue;
      }
      std::fprintf(ErrF, "degraded: [%s] %s: %s\n",
                   support::limitKindName(D.Kind), D.Context.c_str(),
                   D.Action.c_str());
    }
    if (Suppressed)
      std::fprintf(ErrF,
                   "note: %u similar degradation line(s) suppressed (see "
                   "pta.degraded.* counters for full counts)\n",
                   Suppressed);
    std::fprintf(ErrF,
                 "note: analysis degraded (%zu fallback(s)); results are "
                 "conservative but less precise\n",
                 P.Analysis.Degradations.size());
  }

  if (Cfg.DumpSimple)
    std::fputs(P.Prog->str().c_str(), OutF);
  if (Cfg.DumpIG && P.Analysis.IG)
    std::fputs(P.Analysis.IG->str().c_str(), OutF);
  if (Cfg.DumpPointsTo && P.Analysis.MainOut)
    std::fprintf(OutF, "%s\n",
                 P.Analysis.MainOut->str(*P.Analysis.Locs).c_str());

  if (Cfg.Stats) {
    support::Telemetry::Span ClientsSpan(P.Telem.get(), "clients");
    auto IR = clients::IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
    auto GS = clients::GeneralStats::compute(*P.Prog, P.Analysis);
    auto IS = clients::IGStats::compute(*P.Prog, P.Analysis);
    std::fprintf(OutF, "SIMPLE stmts:        %u\n", P.Prog->numBasicStmts());
    std::fprintf(OutF, "indirect refs:       %u (avg targets %.2f)\n",
                 IR.Stats.IndirectRefs, IR.Stats.average());
    std::fprintf(OutF, "  1D=%u 1P=%u 2=%u 3=%u 4+=%u replaceable=%u\n",
                 IR.Stats.OneD.total(), IR.Stats.OneP.total(),
                 IR.Stats.TwoP.total(), IR.Stats.ThreeP.total(),
                 IR.Stats.FourPlusP.total(), IR.Stats.ScalarReplaceable);
    std::fprintf(OutF,
                 "pairs: SS=%llu SH=%llu HH=%llu HS=%llu avg=%.1f max=%u\n",
                 GS.StackToStack, GS.StackToHeap, GS.HeapToHeap,
                 GS.HeapToStack, GS.average(), GS.MaxPerStmt);
    std::fprintf(OutF,
                 "IG: nodes=%u callsites=%u fns=%u R=%u A=%u "
                 "avgc=%.2f avgf=%.2f\n",
                 IS.Nodes, IS.CallSites, IS.Functions, IS.Recursive,
                 IS.Approximate, IS.avgPerCallSite(), IS.avgPerFunction());
  }

  if (BatchTelem && P.Telem) {
    // Parallel batch: fold this file's quiescent telemetry into the
    // batch aggregate; the batch writes the profile/JSON exports once.
    std::lock_guard<std::mutex> Lock(*BatchTelemMu);
    BatchTelem->mergeFrom(*P.Telem);
  } else {
    if (Cfg.Profile && P.Telem)
      std::fputs(P.Telem->profileTable().c_str(), OutF);
    if (!Cfg.StatsJsonPath.empty() && P.Telem &&
        !P.Telem->writeStatsJsonFile(Cfg.StatsJsonPath)) {
      std::fprintf(ErrF, "error: cannot write stats JSON to '%s'\n",
                   Cfg.StatsJsonPath.c_str());
      return 1;
    }
    if (!Cfg.TraceJsonPath.empty() && P.Telem &&
        !P.Telem->writeTraceJsonFile(Cfg.TraceJsonPath)) {
      std::fprintf(ErrF, "error: cannot write trace JSON to '%s'\n",
                   Cfg.TraceJsonPath.c_str());
      return 1;
    }
  }
  if (CaptureOut)
    *CaptureOut = serve::ResultSnapshot::capture(
        *P.Prog, P.Analysis, serve::optionsFingerprint(Opts));
  return (Cfg.Strict && P.degraded()) ? 2 : 0;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int runIncremental(const std::string &Source, const ToolConfig &Cfg,
                   const std::string &BaselinePath);

/// In-process parallel batch (--analysis-threads=N with --batch): the
/// files are dispatched as file-granularity tasks onto one shared
/// work-stealing pool; each task analyzes sequentially (nesting pools
/// would oversubscribe) into private memory streams, and the captured
/// output is replayed in input order afterwards, so stdout/stderr are
/// byte-identical to the sequential batch at any thread count. The
/// summary cache is shared across workers (its locking makes concurrent
/// lookup/store safe), and per-file telemetry folds into one batch
/// aggregate via Telemetry::mergeFrom. Trade-off vs. the fork-per-file
/// path: no process isolation — a crashing input takes the batch down —
/// in exchange for near-linear throughput (docs/PARALLEL.md).
int runBatchParallel(const std::vector<std::string> &Files,
                     const ToolConfig &Cfg, serve::SummaryCache *Cache,
                     const std::string &FP) {
  struct FileOutcome {
    int Code = 1;
    bool Cached = false;
    bool CachedDegraded = false;
    bool OpenFailed = false;
    std::string Out, Err;
  };
  std::vector<FileOutcome> Outcomes(Files.size());

  const bool WantTelemetry = Cfg.Profile || !Cfg.StatsJsonPath.empty() ||
                             !Cfg.TraceJsonPath.empty();
  support::Telemetry BatchTelem(WantTelemetry);
  std::mutex BatchTelemMu;

  ToolConfig FileCfg = Cfg;
  FileCfg.Opts.AnalysisThreads = 1; // file-granularity parallelism only
  FileCfg.Opts.Pool = nullptr;

  support::ThreadPool Pool(Cfg.Opts.AnalysisThreads);
  for (size_t I = 0; I < Files.size(); ++I) {
    Pool.submit([&, I] {
      FileOutcome &O = Outcomes[I];
      std::string Source;
      if (!readFile(Files[I], Source)) {
        O.OpenFailed = true;
        O.Code = 1;
        return;
      }
      std::string Key;
      if (Cache) {
        Key = serve::SummaryCache::key(Source, FP);
        std::string Warning;
        if (auto Snap = Cache->lookup(Key, &Warning)) {
          O.Cached = true;
          O.CachedDegraded = Snap->degraded();
          O.Code = (Cfg.Strict && O.CachedDegraded) ? 2 : 0;
          return;
        }
        if (!Warning.empty())
          O.Err += "warning: " + Warning + "\n";
      }
      char *OutBuf = nullptr, *ErrBuf = nullptr;
      size_t OutLen = 0, ErrLen = 0;
      FILE *OutF = open_memstream(&OutBuf, &OutLen);
      FILE *ErrF = open_memstream(&ErrBuf, &ErrLen);
      if (!OutF || !ErrF) {
        if (OutF)
          std::fclose(OutF);
        if (ErrF)
          std::fclose(ErrF);
        std::free(OutBuf);
        std::free(ErrBuf);
        O.Err += "error: cannot allocate output buffer\n";
        O.Code = 1;
        return;
      }
      serve::ResultSnapshot Snap;
      try {
        O.Code = runOne(Source, FileCfg, Cache ? &Snap : nullptr, OutF, ErrF,
                        WantTelemetry ? &BatchTelem : nullptr, &BatchTelemMu);
      } catch (const std::exception &E) {
        std::fprintf(ErrF, "error: %s\n", E.what());
        O.Code = 1;
      }
      std::fclose(OutF);
      std::fclose(ErrF);
      O.Out.assign(OutBuf, OutLen);
      O.Err.append(ErrBuf, ErrLen);
      std::free(OutBuf);
      std::free(ErrBuf);
      if (Cache && O.Code != 1) {
        std::string StoreWarning;
        Cache->store(Key, std::move(Snap), &StoreWarning);
        if (!StoreWarning.empty())
          O.Err += "warning: " + StoreWarning + "\n";
      }
    });
  }
  Pool.wait();

  // Replay in input order: same lines, same order, as the sequential
  // fork-per-file batch.
  bool AnyError = false, AnyDegraded = false;
  uint64_t CacheHits = 0;
  for (size_t I = 0; I < Files.size(); ++I) {
    const FileOutcome &O = Outcomes[I];
    if (!O.Err.empty())
      std::fwrite(O.Err.data(), 1, O.Err.size(), stderr);
    if (O.OpenFailed) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Files[I].c_str());
      std::printf("%s: error\n", Files[I].c_str());
      AnyError = true;
      continue;
    }
    if (!O.Out.empty())
      std::fwrite(O.Out.data(), 1, O.Out.size(), stdout);
    if (O.Cached) {
      ++CacheHits;
      if (Cfg.Strict && O.CachedDegraded) {
        std::printf("%s: degraded (cached)\n", Files[I].c_str());
        AnyDegraded = true;
      } else {
        std::printf("%s: ok (cached)\n", Files[I].c_str());
      }
      continue;
    }
    if (O.Code == 0)
      std::printf("%s: ok\n", Files[I].c_str());
    else if (O.Code == 2) {
      std::printf("%s: degraded\n", Files[I].c_str());
      AnyDegraded = true;
    } else {
      std::printf("%s: error\n", Files[I].c_str());
      AnyError = true;
    }
  }
  std::printf("batch: %zu file(s), %llu cache hit(s)\n", Files.size(),
              static_cast<unsigned long long>(CacheHits));

  if (WantTelemetry) {
    if (Cfg.Profile)
      std::fputs(BatchTelem.profileTable().c_str(), stdout);
    if (!Cfg.StatsJsonPath.empty() &&
        !BatchTelem.writeStatsJsonFile(Cfg.StatsJsonPath)) {
      std::fprintf(stderr, "error: cannot write stats JSON to '%s'\n",
                   Cfg.StatsJsonPath.c_str());
      return 1;
    }
    if (!Cfg.TraceJsonPath.empty() &&
        !BatchTelem.writeTraceJsonFile(Cfg.TraceJsonPath)) {
      std::fprintf(stderr, "error: cannot write trace JSON to '%s'\n",
                   Cfg.TraceJsonPath.c_str());
      return 1;
    }
  }
  if (AnyError)
    return 1;
  return AnyDegraded ? 2 : 0;
}

/// Batch mode: analyzes every *.c file under \p Dir, each in a forked
/// child so one pathological or crashing input cannot take down the
/// rest of the batch. Prints one status line per file and a final
/// summary line. When \p CacheDir is non-empty, results are read from
/// and written to the summary cache there: cached files skip the fork
/// and the analysis entirely. When \p IncrDir is non-empty, every file
/// runs through the incremental engine against its own baseline
/// snapshot at IncrDir/<stem>.snapshot (created on the first run,
/// updated on every run); baseline reuse supersedes the content cache,
/// so the summary cache is not consulted in that mode.
int runBatch(const std::string &Dir, const ToolConfig &Cfg,
             const std::string &CacheDir, const std::string &IncrDir) {
  namespace fs = std::filesystem;
  std::error_code EC;
  std::vector<std::string> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC))
    if (E.is_regular_file() && E.path().extension() == ".c")
      Files.push_back(E.path().string());
  if (EC) {
    std::fprintf(stderr, "error: cannot read directory '%s': %s\n",
                 Dir.c_str(), EC.message().c_str());
    return 1;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "error: no .c files in '%s'\n", Dir.c_str());
    return 1;
  }
  std::sort(Files.begin(), Files.end());

  const bool Incremental = !IncrDir.empty();
  if (Incremental) {
    std::error_code DirEC;
    fs::create_directories(IncrDir, DirEC);
    if (DirEC) {
      std::fprintf(stderr, "error: cannot create baseline directory '%s': %s\n",
                   IncrDir.c_str(), DirEC.message().c_str());
      return 1;
    }
  }

  std::unique_ptr<serve::SummaryCache> Cache;
  serve::SummaryCache::Config CacheCfg;
  if (!CacheDir.empty() && !Incremental) {
    CacheCfg.Dir = CacheDir;
    Cache = std::make_unique<serve::SummaryCache>(CacheCfg, nullptr);
  }
  const std::string FP = serve::optionsFingerprint(Cfg.Opts);

  // Parallel in-process batch. Incremental batch keeps the sequential
  // fork path: each file mutates its own baseline snapshot and the
  // engine's output interleaves with the parent's prefix lines.
  if (Cfg.Opts.AnalysisThreads > 1 && !Incremental)
    return runBatchParallel(Files, Cfg, Cache.get(), FP);

  // Worst outcome across the batch: error (1) beats degraded-under-
  // strict (2) beats clean (0).
  bool AnyError = false, AnyDegraded = false;
  uint64_t CacheHits = 0;
  for (const std::string &F : Files) {
    std::string Source;
    if (!readFile(F, Source)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", F.c_str());
      std::printf("%s: error\n", F.c_str());
      AnyError = true;
      continue;
    }
    std::string Key;
    if (Cache) {
      Key = serve::SummaryCache::key(Source, FP);
      std::string Warning;
      if (auto Snap = Cache->lookup(Key, &Warning)) {
        ++CacheHits;
        if (Cfg.Strict && Snap->degraded()) {
          std::printf("%s: degraded (cached)\n", F.c_str());
          AnyDegraded = true;
        } else {
          std::printf("%s: ok (cached)\n", F.c_str());
        }
        continue;
      }
      if (!Warning.empty())
        std::fprintf(stderr, "warning: %s\n", Warning.c_str());
    }
    if (Incremental) {
      // The child completes this line with the engine's status (e.g.
      // "incremental: dirty_functions=0 ..." or "incremental: full
      // re-analysis (options-mismatch)").
      std::printf("%s: ", F.c_str());
    }
    // The child inherits stdio buffers; flush so nothing is emitted
    // twice (parent) or dropped at _exit (child flushes explicitly).
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t Pid = fork();
    if (Pid < 0) {
      std::fprintf(stderr, "error: fork failed for '%s'\n", F.c_str());
      return 1;
    }
    if (Pid == 0) {
      if (Incremental) {
        std::string BaselinePath =
            (fs::path(IncrDir) / (fs::path(F).stem().string() + ".snapshot"))
                .string();
        int Code = runIncremental(Source, Cfg, BaselinePath);
        if (Code == 1)
          std::printf("error\n"); // finish the parent's prefix line
        std::fflush(stdout);
        std::fflush(stderr);
        _exit(Code);
      }
      if (Cache) {
        // The disk tier is shared with the parent: files analyzed here
        // are hits for identical inputs later in this batch and in the
        // next run. Children run sequentially, so writes do not race.
        serve::ResultSnapshot Snap;
        int Code = runOne(Source, Cfg, &Snap);
        if (Code != 1) {
          serve::SummaryCache ChildCache(CacheCfg, nullptr);
          std::string StoreWarning;
          ChildCache.store(Key, std::move(Snap), &StoreWarning);
          if (!StoreWarning.empty())
            std::fprintf(stderr, "warning: %s\n", StoreWarning.c_str());
        }
        // _exit skips stdio teardown; flush or the child's dump/stats
        // output is silently dropped whenever stdout is not a tty.
        std::fflush(stdout);
        std::fflush(stderr);
        _exit(Code);
      }
      {
        int Code = runOne(Source, Cfg);
        std::fflush(stdout);
        std::fflush(stderr);
        _exit(Code);
      }
    }
    int Status = 0;
    if (waitpid(Pid, &Status, 0) < 0) {
      std::fprintf(stderr, "error: waitpid failed for '%s'\n", F.c_str());
      return 1;
    }
    if (WIFSIGNALED(Status)) {
      if (Incremental) // the file prefix is already on the line
        std::printf("CRASHED (signal %d)\n", WTERMSIG(Status));
      else
        std::printf("%s: CRASHED (signal %d)\n", F.c_str(),
                    WTERMSIG(Status));
      AnyError = true;
      continue;
    }
    int Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : 1;
    if (Incremental) {
      // The child already completed the status line.
      if (Code == 2)
        AnyDegraded = true;
      else if (Code != 0)
        AnyError = true;
      continue;
    }
    if (Code == 0)
      std::printf("%s: ok\n", F.c_str());
    else if (Code == 2) {
      std::printf("%s: degraded\n", F.c_str());
      AnyDegraded = true;
    } else {
      std::printf("%s: error\n", F.c_str());
      AnyError = true;
    }
  }
  std::printf("batch: %zu file(s), %llu cache hit(s)\n", Files.size(),
              static_cast<unsigned long long>(CacheHits));
  if (AnyError)
    return 1;
  return AnyDegraded ? 2 : 0;
}

/// Incremental single-source mode (docs/INCREMENTAL.md): re-analyze
/// \p Source against the snapshot stored at \p BaselinePath when one
/// exists (full analysis otherwise), print what the engine did, and
/// write the new snapshot back so consecutive runs chain.
int runIncremental(const std::string &Source, const ToolConfig &Cfg,
                   const std::string &BaselinePath) {
  bool WantTelemetry = Cfg.Profile || !Cfg.StatsJsonPath.empty() ||
                       !Cfg.TraceJsonPath.empty();
  support::Telemetry Telem(WantTelemetry);

  serve::ResultSnapshot Baseline;
  bool HaveBaseline = false;
  std::string Blob;
  if (readFile(BaselinePath, Blob) && !Blob.empty()) {
    std::string Err;
    if (serve::deserialize(Blob, Baseline, Err)) {
      HaveBaseline = true;
    } else {
      std::fprintf(stderr,
                   "warning: ignoring unreadable baseline '%s': %s\n",
                   BaselinePath.c_str(), Err.c_str());
    }
  }

  bool Degraded = false;
  std::string NewBlob;
  if (HaveBaseline) {
    incr::IncrOutput O = incr::IncrementalEngine::reanalyze(
        Baseline, Source, Cfg.Opts, WantTelemetry ? &Telem : nullptr);
    if (!O.Ok) {
      std::fputs(O.Error.c_str(), stderr);
      return 1;
    }
    if (O.Stats.UsedIncremental)
      std::printf("incremental: dirty_functions=%llu memo_reuse=%llu "
                  "seed_hits=%llu\n",
                  static_cast<unsigned long long>(O.Stats.DirtyFunctions),
                  static_cast<unsigned long long>(O.Stats.MemoReuse),
                  static_cast<unsigned long long>(O.Stats.SeedHits));
    else
      std::printf("incremental: full re-analysis (%s)\n",
                  O.Stats.FallbackReason.c_str());
    Degraded = O.Snapshot.degraded();
    NewBlob = std::move(O.Blob);
  } else {
    Pipeline P = Pipeline::analyzeSource(Source, Cfg.Opts);
    if (P.Diags.hasErrors()) {
      std::fputs(P.Diags.dump().c_str(), stderr);
      return 1;
    }
    serve::ResultSnapshot S = serve::ResultSnapshot::capture(
        *P.Prog, P.Analysis, serve::optionsFingerprint(Cfg.Opts));
    Degraded = S.degraded();
    NewBlob = serve::serialize(S);
    std::printf("incremental: baseline created\n");
  }

  std::ofstream Out(BaselinePath, std::ios::binary | std::ios::trunc);
  if (!Out.write(NewBlob.data(),
                 static_cast<std::streamsize>(NewBlob.size()))) {
    std::fprintf(stderr, "error: cannot write baseline '%s'\n",
                 BaselinePath.c_str());
    return 1;
  }

  if (Cfg.Profile)
    std::fputs(Telem.profileTable().c_str(), stdout);
  if (!Cfg.StatsJsonPath.empty() &&
      !Telem.writeStatsJsonFile(Cfg.StatsJsonPath)) {
    std::fprintf(stderr, "error: cannot write stats JSON to '%s'\n",
                 Cfg.StatsJsonPath.c_str());
    return 1;
  }
  if (!Cfg.TraceJsonPath.empty() &&
      !Telem.writeTraceJsonFile(Cfg.TraceJsonPath)) {
    std::fprintf(stderr, "error: cannot write trace JSON to '%s'\n",
                 Cfg.TraceJsonPath.c_str());
    return 1;
  }
  return (Cfg.Strict && Degraded) ? 2 : 0;
}

/// One-shot demand query (--points-to / --alias): frontends the source,
/// runs the DemandEngine, prints the answer and which strategy produced
/// it. --strategy=exhaustive answers from the exhaustive snapshot
/// instead (same output shape, for diffing the two).
int runQuery(const std::string &Source, const ToolConfig &Cfg,
             const std::string &PointsToName, const std::string &AliasA,
             const std::string &AliasB, const std::string &Strategy) {
  Pipeline FE = Pipeline::frontend(Source);
  if (!FE.Prog) {
    std::fputs(FE.Diags.dump().c_str(), stderr);
    return 1;
  }
  demand::DemandOptions DO;
  DO.Analyzer = Cfg.Opts;
  demand::DemandEngine Engine(*FE.Prog, DO);

  const bool IsAlias = !AliasA.empty() || !AliasB.empty();
  if (Strategy == "exhaustive") {
    const serve::ResultSnapshot &S = Engine.exhaustiveSnapshot();
    if (!S.Analyzed) {
      std::fprintf(stderr, "error: analysis failed\n");
      return 1;
    }
    std::printf("strategy: exhaustive\n");
    if (IsAlias) {
      std::printf("alias(%s, %s): %s\n", AliasA.c_str(), AliasB.c_str(),
                  S.aliased(AliasA, AliasB) ? "yes" : "no");
    } else {
      if (S.locationIdByName(PointsToName) < 0) {
        std::fprintf(stderr, "error: unknown location '%s'\n",
                     PointsToName.c_str());
        return 1;
      }
      std::printf("points_to(%s):\n", PointsToName.c_str());
      for (const auto &[Target, Definite] :
           S.pointsToTargets(PointsToName))
        std::printf("  %s (%s)\n", Target.c_str(),
                    Definite ? "definite" : "possible");
    }
    return (Cfg.Strict && S.degraded()) ? 2 : 0;
  }

  demand::Answer A =
      Engine.query(IsAlias ? demand::Query::alias(AliasA, AliasB)
                           : demand::Query::pointsTo(PointsToName));
  if (!A.Ok) {
    std::fprintf(stderr, "error: %s\n",
                 A.Error.empty() ? "query failed" : A.Error.c_str());
    return 1;
  }
  std::printf("strategy: %s\n", A.Strategy.c_str());
  if (!A.FallbackReason.empty())
    std::printf("fallback_reason: %s\n", A.FallbackReason.c_str());
  if (A.Strategy == "demand")
    std::printf("visited_stmts: %llu\nskipped_stmts: %llu\n",
                static_cast<unsigned long long>(A.VisitedStmts),
                static_cast<unsigned long long>(A.SkippedStmts));
  if (IsAlias) {
    std::printf("alias(%s, %s): %s\n", AliasA.c_str(), AliasB.c_str(),
                A.Aliased ? "yes" : "no");
  } else {
    std::printf("points_to(%s):\n", PointsToName.c_str());
    for (const auto &[Target, Definite] : A.Targets)
      std::printf("  %s (%s)\n", Target.c_str(),
                  Definite ? "definite" : "possible");
  }
  return 0;
}

/// Serve-daemon knobs collected from the command line (--serve-* and
/// --fault-inject); zero means "keep the Server::Config default".
struct ServeConfig {
  uint64_t Threads = 0;
  uint64_t QueueCap = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MaxLineBytes = 0;
  std::string FaultSpec;
};

/// The long-lived daemon: NDJSON requests on stdin, one-line responses
/// on stdout, operational log on stderr (docs/SERVING.md).
int runServe(const ToolConfig &Cfg, const std::string &CacheDir,
             const ServeConfig &Serve) {
  serve::Server::Config SC;
  SC.Cache.Dir = CacheDir;
  SC.DefaultOpts = Cfg.Opts;
  if (Serve.Threads)
    SC.Threads = static_cast<unsigned>(Serve.Threads);
  if (Serve.QueueCap)
    SC.QueueCap = static_cast<size_t>(Serve.QueueCap);
  SC.RequestDeadlineMs = Serve.DeadlineMs;
  if (Serve.MaxLineBytes)
    SC.MaxLineBytes = static_cast<size_t>(Serve.MaxLineBytes);
  SC.FaultSpec = Serve.FaultSpec;
  serve::Server S(SC);
  return S.run(std::cin, std::cout, std::cerr);
}

} // namespace

int main(int argc, char **argv) {
  ToolConfig Cfg;
  std::string File, CorpusName, BatchDir, IncrBaselinePath;
  std::string QueryPointsTo, QueryAliasA, QueryAliasB;
  std::string QueryStrategy = "demand";
  bool HaveQuery = false;
  bool Serve = false;
  ServeConfig ServeCfg;
  const char *EnvCacheDir = std::getenv("MCPTA_CACHE_DIR");
  std::string CacheDir = EnvCacheDir ? EnvCacheDir : ".mcpta-cache";
  // Batch mode only caches when a directory was actually requested
  // (flag or environment), never through the silent default.
  bool CacheDirRequested = EnvCacheDir != nullptr;
  bool BadNumber = false;
  uint64_t AnalysisThreads = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--version") {
      std::printf("pta-tool %s (result format %s, version %u)\n",
                  mcpta::version::kToolVersion,
                  mcpta::version::kResultFormatName,
                  mcpta::version::kResultFormatVersion);
      return 0;
    } else if (Arg == "--serve")
      Serve = true;
    else if (parseU64Flag(Arg, "--serve-threads", ServeCfg.Threads,
                          BadNumber) ||
             parseU64Flag(Arg, "--serve-queue-cap", ServeCfg.QueueCap,
                          BadNumber) ||
             parseU64Flag(Arg, "--serve-deadline-ms", ServeCfg.DeadlineMs,
                          BadNumber) ||
             parseU64Flag(Arg, "--serve-max-line-bytes",
                          ServeCfg.MaxLineBytes, BadNumber)) {
      if (BadNumber)
        return 1;
    } else if (Arg.compare(0, 15, "--fault-inject=") == 0) {
      ServeCfg.FaultSpec = Arg.substr(15);
      // Validate up front: a typo'd point name should fail loudly at
      // startup, not after the daemon is wired into a pipeline.
      support::FaultInjection FI;
      std::string Err;
      if (!FI.parse(ServeCfg.FaultSpec, Err)) {
        std::fprintf(stderr, "error: bad --fault-inject spec: %s\n",
                     Err.c_str());
        return 1;
      }
    } else if (Arg.compare(0, 12, "--cache-dir=") == 0) {
      CacheDir = Arg.substr(12);
      CacheDirRequested = true;
    } else if (Arg.compare(0, 23, "--incremental-baseline=") == 0)
      IncrBaselinePath = Arg.substr(23);
    else if (Arg == "--dump-simple")
      Cfg.DumpSimple = true;
    else if (Arg == "--dump-ig")
      Cfg.DumpIG = true;
    else if (Arg == "--dump-pointsto")
      Cfg.DumpPointsTo = true;
    else if (Arg == "--stats")
      Cfg.Stats = true;
    else if (Arg == "--profile")
      Cfg.Profile = true;
    else if (Arg == "--strict")
      Cfg.Strict = true;
    else if (Arg == "--fnptr=precise")
      Cfg.Opts.FnPtr = pta::FnPtrMode::Precise;
    else if (Arg == "--fnptr=all")
      Cfg.Opts.FnPtr = pta::FnPtrMode::AllFunctions;
    else if (Arg == "--fnptr=address-taken")
      Cfg.Opts.FnPtr = pta::FnPtrMode::AddressTaken;
    else if (Arg == "--context-insensitive")
      Cfg.Opts.ContextSensitive = false;
    else if (parseU64Flag(Arg, "--analysis-threads", AnalysisThreads,
                          BadNumber)) {
      if (BadNumber)
        return 1;
      // 0 and 1 both mean the sequential engine.
      Cfg.Opts.AnalysisThreads =
          static_cast<unsigned>(std::min<uint64_t>(AnalysisThreads, 256));
    } else if (parseU64Flag(Arg, "--timeout-ms", Cfg.Opts.Limits.TimeoutMs,
                          BadNumber) ||
             parseU64Flag(Arg, "--max-stmt-visits",
                          Cfg.Opts.Limits.MaxStmtVisits, BadNumber) ||
             parseU64Flag(Arg, "--max-locations",
                          Cfg.Opts.Limits.MaxLocations, BadNumber) ||
             parseU64Flag(Arg, "--max-ig-nodes",
                          Cfg.Opts.Limits.MaxIGNodes, BadNumber) ||
             parseU64Flag(Arg, "--max-rec-passes",
                          Cfg.Opts.Limits.MaxRecPasses, BadNumber)) {
      if (BadNumber)
        return 1;
    } else if (Arg == "--json" && I + 1 < argc)
      Cfg.StatsJsonPath = argv[++I];
    else if (Arg == "--trace-json" && I + 1 < argc)
      Cfg.TraceJsonPath = argv[++I];
    else if (Arg == "--list-corpus") {
      for (const corpus::CorpusProgram &P : corpus::corpus())
        std::printf("%-10s %s\n", P.Name, P.Description);
      return 0;
    } else if (Arg == "--gen-stress" ||
               Arg.compare(0, 13, "--gen-stress=") == 0) {
      // Emit a terminating but analysis-hostile program (deep direct-
      // call fan-out + function-pointer dispatch + bounded recursion)
      // for budget-exhaustion smoke tests.
      unsigned Depth = 8;
      if (Arg.size() > 13) {
        uint64_t D = 0;
        bool Bad = false;
        if (!parseU64Flag(Arg, "--gen-stress", D, Bad) || Bad || D == 0)
          return usage();
        Depth = static_cast<unsigned>(D);
      }
      std::fputs(wlgen::pathologicalSource(Depth).c_str(), stdout);
      return 0;
    } else if (Arg.compare(0, 12, "--points-to=") == 0) {
      QueryPointsTo = Arg.substr(12);
      HaveQuery = true;
    } else if (Arg.compare(0, 8, "--alias=") == 0) {
      std::string Pair = Arg.substr(8);
      size_t Colon = Pair.find(':');
      if (Colon == std::string::npos) {
        std::fprintf(stderr, "error: --alias wants A:B access paths\n");
        return 1;
      }
      QueryAliasA = Pair.substr(0, Colon);
      QueryAliasB = Pair.substr(Colon + 1);
      HaveQuery = true;
    } else if (Arg.compare(0, 11, "--strategy=") == 0) {
      QueryStrategy = Arg.substr(11);
      if (QueryStrategy != "demand" && QueryStrategy != "exhaustive") {
        std::fprintf(stderr,
                     "error: --strategy wants demand or exhaustive\n");
        return 1;
      }
    } else if (Arg == "--corpus" && I + 1 < argc) {
      CorpusName = argv[++I];
    } else if (Arg == "--batch" && I + 1 < argc) {
      BatchDir = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }

  if (!IncrBaselinePath.empty() && Serve) {
    std::fprintf(stderr, "error: --incremental-baseline does not apply to "
                         "--serve (the daemon caches by content)\n");
    return 1;
  }
  if (!Serve && (ServeCfg.Threads || ServeCfg.QueueCap ||
                 ServeCfg.DeadlineMs || ServeCfg.MaxLineBytes ||
                 !ServeCfg.FaultSpec.empty())) {
    std::fprintf(stderr, "error: --serve-* and --fault-inject flags apply "
                         "only to --serve\n");
    return 1;
  }
  if (Serve)
    return runServe(Cfg, CacheDir, ServeCfg);
  if (!BatchDir.empty())
    return runBatch(BatchDir, Cfg, CacheDirRequested ? CacheDir : "",
                    IncrBaselinePath);

  std::string Source;
  if (!CorpusName.empty()) {
    const corpus::CorpusProgram *P = corpus::find(CorpusName);
    if (!P) {
      std::fprintf(stderr, "error: unknown corpus program '%s'\n",
                   CorpusName.c_str());
      return 1;
    }
    Source = P->Source;
  } else if (!File.empty()) {
    if (!readFile(File, Source)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 1;
    }
  } else {
    return usage();
  }

  if (HaveQuery) {
    if (!QueryPointsTo.empty() &&
        (!QueryAliasA.empty() || !QueryAliasB.empty())) {
      std::fprintf(stderr,
                   "error: --points-to and --alias are exclusive\n");
      return 1;
    }
    return runQuery(Source, Cfg, QueryPointsTo, QueryAliasA, QueryAliasB,
                    QueryStrategy);
  }
  if (!IncrBaselinePath.empty())
    return runIncremental(Source, Cfg, IncrBaselinePath);
  return runOne(Source, Cfg);
}
