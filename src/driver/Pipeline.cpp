//===- Pipeline.cpp - One-call analysis facade --------------------------------===//

#include "driver/Pipeline.h"

using namespace mcpta;

Pipeline Pipeline::frontend(const std::string &Source) {
  Pipeline P;
  P.Ctx = std::make_unique<cfront::ASTContext>();
  P.Unit = cfront::Parser::parseSource(Source, *P.Ctx, P.Diags);
  if (P.Diags.hasErrors())
    return P;
  simple::Simplifier Simp(*P.Unit, P.Diags);
  P.Prog = Simp.run();
  return P;
}

Pipeline Pipeline::analyzeSource(const std::string &Source,
                                 const pta::Analyzer::Options &Opts) {
  Pipeline P = frontend(Source);
  if (!P.Prog)
    return P;
  P.Analysis = pta::Analyzer::run(*P.Prog, Opts);
  return P;
}

Pipeline Pipeline::analyzeSource(const std::string &Source) {
  return analyzeSource(Source, pta::Analyzer::Options());
}
