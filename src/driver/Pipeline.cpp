//===- Pipeline.cpp - One-call analysis facade --------------------------------===//

#include "driver/Pipeline.h"

#include "cfront/Lexer.h"

using namespace mcpta;

namespace {

/// Lex + parse + simplify into \p P, recording frontend phase spans and
/// counters when \p P.Telem is an enabled sink.
void runFrontend(Pipeline &P, const std::string &Source) {
  support::Telemetry *T = P.Telem.get();
  P.Ctx = std::make_unique<cfront::ASTContext>();

  std::vector<cfront::Token> Tokens;
  {
    support::Telemetry::Span S(T, "lex");
    cfront::Lexer Lex(Source, P.Diags);
    Tokens = Lex.lexAll();
  }
  if (T)
    T->add("frontend.tokens", Tokens.size());

  {
    support::Telemetry::Span S(T, "parse");
    cfront::Parser Par(std::move(Tokens), *P.Ctx, P.Diags);
    P.Unit = Par.parseTranslationUnit();
  }
  if (P.Diags.hasErrors())
    return;

  {
    support::Telemetry::Span S(T, "simplify");
    simple::Simplifier Simp(*P.Unit, P.Diags);
    P.Prog = Simp.run();
  }
  if (T && P.Prog)
    T->add("simple.basic_stmts", P.Prog->numBasicStmts());
}

/// Runs the analyzer and mirrors its warnings into the diagnostics
/// engine, so drivers that only look at Diags still surface them (e.g.
/// a MaxLoopIterations safety-valve trip). Budget degradations arrive
/// through the same channel: every Result::Degradations entry has a
/// matching "analysis degraded [kind] ..." warning, so a degraded run
/// is visible in Diags while the structured report stays available in
/// P.Analysis.Degradations.
void runAnalysis(Pipeline &P, const pta::Analyzer::Options &Opts) {
  {
    support::Telemetry::Span S(P.Telem.get(), "analyze");
    P.Analysis = pta::Analyzer::run(*P.Prog, Opts);
  }
  for (const std::string &W : P.Analysis.Warnings)
    P.Diags.warning(SourceLoc(), W);
}

} // namespace

Pipeline Pipeline::frontend(const std::string &Source) {
  Pipeline P;
  runFrontend(P, Source);
  return P;
}

Pipeline Pipeline::analyzeSource(const std::string &Source,
                                 const pta::Analyzer::Options &Opts) {
  Pipeline P = frontend(Source);
  if (!P.Prog)
    return P;
  runAnalysis(P, Opts);
  return P;
}

Pipeline Pipeline::analyzeSource(const std::string &Source) {
  return analyzeSource(Source, pta::Analyzer::Options());
}

Pipeline Pipeline::analyzeSourceTraced(const std::string &Source,
                                       pta::Analyzer::Options Opts) {
  Pipeline P;
  P.Telem = std::make_unique<support::Telemetry>(/*Enabled=*/true);
  runFrontend(P, Source);
  if (!P.Prog)
    return P;
  Opts.Telem = P.Telem.get();
  runAnalysis(P, Opts);
  return P;
}
