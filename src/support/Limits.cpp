//===- Limits.cpp - Resource governance for analysis runs ---------------------===//

#include "support/Limits.h"

using namespace mcpta;
using namespace mcpta::support;

const char *mcpta::support::limitKindName(LimitKind K) {
  switch (K) {
  case LimitKind::Deadline:
    return "deadline";
  case LimitKind::StmtVisits:
    return "stmt_visits";
  case LimitKind::Locations:
    return "locations";
  case LimitKind::IGNodes:
    return "ig_nodes";
  case LimitKind::RecPasses:
    return "rec_passes";
  }
  return "unknown";
}
