//===- Limits.cpp - Resource governance for analysis runs ---------------------===//

#include "support/Limits.h"

using namespace mcpta;
using namespace mcpta::support;

const char *mcpta::support::limitKindName(LimitKind K) {
  switch (K) {
  case LimitKind::Deadline:
    return "deadline";
  case LimitKind::StmtVisits:
    return "stmt_visits";
  case LimitKind::Locations:
    return "locations";
  case LimitKind::IGNodes:
    return "ig_nodes";
  case LimitKind::RecPasses:
    return "rec_passes";
  }
  return "unknown";
}

std::string mcpta::support::degradationCategory(const std::string &Context) {
  size_t Open = Context.find('\'');
  if (Open == std::string::npos)
    return Context;
  size_t Close = Context.find('\'', Open + 1);
  if (Close == std::string::npos)
    return Context;
  return Context.substr(0, Open) + "'<...>'" + Context.substr(Close + 1);
}
