//===- Telemetry.h - Analysis instrumentation layer -------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate behind the paper's experimental section:
/// RAII phase spans over a monotonic clock (lex -> parse -> simplify ->
/// ig-build -> pointsto -> clients), named counters for the analysis hot
/// paths (body re-analyses, memo hits/misses, map/unmap traffic,
/// pending-list wakeups, loop fixed-point iterations), and size
/// histograms (per-statement points-to set sizes, iterations per loop).
///
/// Two exporters turn one run into machine-readable artifacts:
///  - writeTraceJson: Chrome `trace_event` JSON ("X" complete events),
///    loadable by chrome://tracing and Perfetto;
///  - writeStatsJson: a flat stats document for benchmark trajectories
///    (the BENCH_*.json files).
///
/// Instrumentation is pay-for-what-you-use: hot paths hold a
/// `Telemetry *` (or a cached `Counter *` / `Histogram *`) that is null
/// when telemetry is off, so the disabled cost is one branch on a null
/// pointer. A Telemetry constructed with Enabled=false is a null sink:
/// every mutation short-circuits and the exporters emit empty documents.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_TELEMETRY_H
#define MCPTA_SUPPORT_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mcpta {
namespace support {

/// One named monotonically increasing counter.
struct Counter {
  uint64_t Value = 0;

  Counter &operator++() {
    ++Value;
    return *this;
  }
  Counter &operator+=(uint64_t Delta) {
    Value += Delta;
    return *this;
  }
};

/// A size/count distribution: count, sum, min, max plus power-of-two
/// buckets (bucket i holds values v with 2^(i-1) <= v < 2^i; bucket 0
/// holds zeros).
class Histogram {
public:
  static constexpr unsigned NumBuckets = 33;

  void record(uint64_t V) {
    ++N;
    Sum += V;
    if (N == 1 || V < Lo)
      Lo = V;
    if (V > Hi)
      Hi = V;
    ++Buckets[bucketOf(V)];
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return N ? Lo : 0; }
  uint64_t max() const { return Hi; }
  double mean() const { return N ? double(Sum) / double(N) : 0.0; }
  uint64_t bucket(unsigned I) const { return Buckets[I]; }

  /// Index of the power-of-two bucket V falls into.
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B < NumBuckets ? B : NumBuckets - 1;
  }

private:
  uint64_t N = 0;
  uint64_t Sum = 0;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  uint64_t Buckets[NumBuckets] = {};
};

/// Collects spans, counters, and histograms for one pipeline run.
class Telemetry {
public:
  /// One completed phase span. Depth is the nesting level at the time
  /// the span opened (0 = top level).
  struct SpanRecord {
    std::string Name;
    uint64_t StartUs = 0;
    uint64_t DurUs = 0;
    unsigned Depth = 0;
  };

  /// RAII phase span. Constructing against a null or disabled Telemetry
  /// is a no-op; destruction appends a SpanRecord.
  class Span {
  public:
    Span(Telemetry *T, std::string_view Name);
    ~Span();
    Span(Span &&O) noexcept
        : T(O.T), Name(std::move(O.Name)), StartUs(O.StartUs),
          Depth(O.Depth) {
      O.T = nullptr;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    Span &operator=(Span &&) = delete;

  private:
    Telemetry *T = nullptr;
    std::string Name;
    uint64_t StartUs = 0;
    unsigned Depth = 0;
  };

  explicit Telemetry(bool Enabled = true);

  bool enabled() const { return Enabled; }

  /// Returns the named counter, creating it on first use. On a disabled
  /// instance, returns a shared scratch slot that is never exported.
  Counter &counter(std::string_view Name);
  /// Returns the named histogram (same disabled-mode contract).
  Histogram &histogram(std::string_view Name);

  /// Convenience mutators; both are no-ops when disabled. add() with a
  /// zero delta still registers the counter name, so a run's exported
  /// key set is deterministic.
  void add(std::string_view Name, uint64_t Delta) {
    if (Enabled)
      counter(Name) += Delta;
  }
  void record(std::string_view Name, uint64_t Value) {
    if (Enabled)
      histogram(Name).record(Value);
  }

  /// Completed spans in completion order (inner spans close first).
  const std::vector<SpanRecord> &spans() const { return Spans; }
  /// Total wall time of all spans with this name, in microseconds.
  uint64_t phaseUs(std::string_view Name) const;

  const std::map<std::string, Counter, std::less<>> &counters() const {
    return Counters;
  }
  const std::map<std::string, Histogram, std::less<>> &histograms() const {
    return Histograms;
  }

  //===--------------------------------------------------------------------===//
  // Exporters
  //===--------------------------------------------------------------------===//

  /// Human-readable per-phase wall-time table (the --profile output).
  std::string profileTable() const;

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  /// Loadable by chrome://tracing and Perfetto's trace_event parser.
  void writeTraceJson(std::ostream &OS) const;

  /// Flat stats JSON: counters, histogram summaries, and per-phase
  /// wall times under stable keys — the BENCH_*.json building block.
  void writeStatsJson(std::ostream &OS) const;

  /// File variants; return false (without throwing) if the file cannot
  /// be opened.
  bool writeTraceJsonFile(const std::string &Path) const;
  bool writeStatsJsonFile(const std::string &Path) const;

  /// Escapes a string for embedding in a JSON document (helper shared
  /// with the bench harness's composite exports).
  static std::string jsonEscape(std::string_view S);

private:
  friend class Span;

  uint64_t nowUs() const;

  bool Enabled;
  std::chrono::steady_clock::time_point Epoch;
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Histogram, std::less<>> Histograms;
  std::vector<SpanRecord> Spans;
  unsigned ActiveDepth = 0;
  Counter Scratch;
  Histogram HistScratch;
};

} // namespace support
} // namespace mcpta

#endif // MCPTA_SUPPORT_TELEMETRY_H
