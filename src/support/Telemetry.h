//===- Telemetry.h - Analysis instrumentation layer -------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate behind the paper's experimental section:
/// RAII phase spans over a monotonic clock (lex -> parse -> simplify ->
/// ig-build -> pointsto -> clients), named counters for the analysis hot
/// paths (body re-analyses, memo hits/misses, map/unmap traffic,
/// pending-list wakeups, loop fixed-point iterations), size histograms
/// (per-statement points-to set sizes, iterations per loop), log-bucketed
/// latency recorders (serve request quantiles), and gauges (memory
/// footprint snapshots such as `mem.peak_rss_kb`).
///
/// Two exporters turn one run into machine-readable artifacts:
///  - writeTraceJson: Chrome `trace_event` JSON ("X" complete events),
///    loadable by chrome://tracing and Perfetto;
///  - writeStatsJson: a flat stats document for benchmark trajectories
///    (the BENCH_*.json files).
///
/// Instrumentation is pay-for-what-you-use: hot paths hold a
/// `Telemetry *` (or a cached `Counter *` / `Histogram *`) that is null
/// when telemetry is off, so the disabled cost is one branch on a null
/// pointer. A Telemetry constructed with Enabled=false is a null sink:
/// every mutation short-circuits and the exporters emit empty documents.
///
/// Thread safety (the contract the work-stealing pool and the concurrent
/// serve daemon build on):
///  - Counter / Histogram / LatencyRecorder mutation is lock-free: all
///    fields are relaxed atomics, so any number of threads may share one
///    resolved handle and totals stay exact.
///  - Name registration (`counter()` / `histogram()` / `latency()` /
///    `gauge()`), span completion, and the exporters serialize on one
///    internal mutex. The registries are node-stable maps, so a handle
///    resolved once stays valid for the Telemetry's lifetime — keep the
///    resolve-handle-once idiom on hot paths and the lock is never on
///    them.
///  - The raw `counters()` / `histograms()` accessors return the live
///    maps; iterating them while another thread *registers new names*
///    is a race. Exporters and `mergeFrom` take the lock internally;
///    tests and single-threaded drivers may iterate freely. Concurrent
///    readers use the locked copies (`gauges()`, `countersSnapshot()`).
///  - `mergeFrom(Child)` folds a request-scoped child instance into an
///    aggregate. It locks the child's registries while snapshotting
///    them, so racing registration is structurally safe; the child
///    should still be quiescent (its request finished) for the merged
///    totals to be exact.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_TELEMETRY_H
#define MCPTA_SUPPORT_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mcpta {
namespace support {

/// Peak resident set size of this process in KiB (getrusage ru_maxrss).
/// Returns 0 when the platform cannot report it.
uint64_t peakRssKb();

/// Atomically raises \p Slot to \p V if V is larger (relaxed CAS loop).
inline void atomicMax(std::atomic<uint64_t> &Slot, uint64_t V) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (Cur < V &&
         !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

/// Atomically lowers \p Slot to \p V if V is smaller (relaxed CAS loop).
inline void atomicMin(std::atomic<uint64_t> &Slot, uint64_t V) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (Cur > V &&
         !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

/// One named monotonically increasing counter. All mutation is a relaxed
/// atomic add: concurrent increments through a shared handle never lose
/// updates, and the disabled-mode scratch slot tolerates racing writers.
/// Non-copyable — counters live in node-stable registries and are
/// addressed by reference.
struct Counter {
  std::atomic<uint64_t> Value{0};

  Counter() = default;
  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

  Counter &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Counter &operator+=(uint64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
    return *this;
  }
  uint64_t load() const { return Value.load(std::memory_order_relaxed); }
};

/// A size/count distribution: count, sum, min, max plus power-of-two
/// buckets (bucket i holds values v with 2^(i-1) <= v < 2^i; bucket 0
/// holds zeros). record() is lock-free (relaxed adds plus CAS min/max),
/// so one histogram can absorb concurrent recorders with exact count and
/// sum totals. All summaries are empty-safe: count/sum/min/max/mean are
/// 0 for a histogram that never recorded.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 33;

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  void record(uint64_t V) {
    N.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    atomicMin(Lo, V);
    atomicMax(Hi, V);
    Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() ? Lo.load(std::memory_order_relaxed) : 0;
  }
  uint64_t max() const { return Hi.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t C = count();
    return C ? double(sum()) / double(C) : 0.0;
  }
  uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Folds a quiescent histogram into this one (counts and buckets add,
  /// min/max widen).
  void mergeFrom(const Histogram &O);

  /// Index of the power-of-two bucket V falls into.
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B < NumBuckets ? B : NumBuckets - 1;
  }

private:
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Lo{~uint64_t(0)};
  std::atomic<uint64_t> Hi{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// A log-linear latency distribution over microseconds, built for the
/// serve daemon's per-method quantiles (`serve.latency.<method>.*`).
/// Buckets are power-of-two octaves split into 8 linear sub-buckets, so
/// a reported quantile overstates the true value by at most one
/// sub-bucket width (~12.5%). record is lock-free; quantiles are read
/// from a relaxed snapshot of the buckets (exact once recording stops,
/// approximate while racing — fine for monitoring output).
class LatencyRecorder {
public:
  static constexpr unsigned SubBuckets = 8; // per octave; power of two
  static constexpr unsigned NumBuckets = 62 * SubBuckets;

  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder &) = delete;
  LatencyRecorder &operator=(const LatencyRecorder &) = delete;

  void recordUs(uint64_t Us) {
    N.fetch_add(1, std::memory_order_relaxed);
    SumUs.fetch_add(Us, std::memory_order_relaxed);
    atomicMax(MaxUs, Us);
    Buckets[bucketOf(Us)].fetch_add(1, std::memory_order_relaxed);
  }
  void recordMs(double Ms) {
    recordUs(Ms <= 0 ? 0 : static_cast<uint64_t>(Ms * 1000.0 + 0.5));
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double maxMs() const {
    return double(MaxUs.load(std::memory_order_relaxed)) / 1000.0;
  }
  double meanMs() const {
    uint64_t C = count();
    return C ? double(SumUs.load(std::memory_order_relaxed)) / double(C) /
                   1000.0
             : 0.0;
  }

  /// The value at quantile \p Q in [0,1], in microseconds: the upper
  /// bound of the first bucket whose cumulative count reaches Q*N
  /// (conservative — never understates). 0 when empty.
  uint64_t quantileUs(double Q) const;
  double quantileMs(double Q) const { return double(quantileUs(Q)) / 1000.0; }

  /// Folds a quiescent recorder into this one.
  void mergeFrom(const LatencyRecorder &O);

  /// Log-linear bucket index for \p Us.
  static unsigned bucketOf(uint64_t Us);
  /// Upper bound (exclusive-1, i.e. largest member) of bucket \p I.
  static uint64_t bucketUpperUs(unsigned I);

private:
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> SumUs{0};
  std::atomic<uint64_t> MaxUs{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// Collects spans, counters, histograms, latency recorders, and gauges
/// for one pipeline run, one serve request, or a whole daemon lifetime.
class Telemetry {
public:
  /// One completed phase span. Depth is the nesting level at the time
  /// the span opened (0 = top level).
  struct SpanRecord {
    std::string Name;
    uint64_t StartUs = 0;
    uint64_t DurUs = 0;
    unsigned Depth = 0;
  };

  /// RAII phase span. Constructing against a null or disabled Telemetry
  /// is a no-op; destruction appends a SpanRecord.
  class Span {
  public:
    Span(Telemetry *T, std::string_view Name);
    ~Span();
    Span(Span &&O) noexcept
        : T(O.T), Name(std::move(O.Name)), StartUs(O.StartUs),
          Depth(O.Depth) {
      O.T = nullptr;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    Span &operator=(Span &&) = delete;

  private:
    Telemetry *T = nullptr;
    std::string Name;
    uint64_t StartUs = 0;
    unsigned Depth = 0;
  };

  explicit Telemetry(bool Enabled = true);

  bool enabled() const { return Enabled; }

  /// Request attribution: a correlation id stamped on every export this
  /// instance produces (the serve daemon gives each request-scoped child
  /// its request's cid). Empty by default.
  void setCorrelationId(std::string Cid);
  std::string correlationId() const;

  /// Returns the named counter, creating it on first use. On a disabled
  /// instance, returns a shared scratch slot that is never exported.
  /// The returned reference stays valid for the Telemetry's lifetime.
  Counter &counter(std::string_view Name);
  /// Returns the named histogram (same disabled-mode contract).
  Histogram &histogram(std::string_view Name);
  /// Returns the named latency recorder (same disabled-mode contract).
  LatencyRecorder &latency(std::string_view Name);

  /// Sets the named gauge to \p Value (last write wins — gauges are
  /// point-in-time snapshots such as `mem.peak_rss_kb`, not totals).
  /// No-op when disabled.
  void gauge(std::string_view Name, uint64_t Value);
  /// Copy of the gauge map (name -> latest value).
  std::map<std::string, uint64_t, std::less<>> gauges() const;

  /// Copy of the counter totals (name -> value), taken under the
  /// registration lock. The accessor to use while other threads may
  /// still be registering counter names (the serve daemon's stats
  /// path); the raw counters() map is only safe to iterate once
  /// registration has quiesced.
  std::map<std::string, uint64_t, std::less<>> countersSnapshot() const;

  /// Convenience mutators; both are no-ops when disabled. add() with a
  /// zero delta still registers the counter name, so a run's exported
  /// key set is deterministic.
  void add(std::string_view Name, uint64_t Delta) {
    if (Enabled)
      counter(Name) += Delta;
  }
  void record(std::string_view Name, uint64_t Value) {
    if (Enabled)
      histogram(Name).record(Value);
  }

  /// Folds a quiescent \p Child into this instance: counters add,
  /// histograms and latency recorders merge, gauges overwrite (last
  /// writer wins). Spans are NOT merged — a long-lived aggregate would
  /// grow without bound; per-request spans are exported from the child
  /// itself (writeTraceJson) while it is alive. Safe to call while other
  /// threads mutate this instance.
  void mergeFrom(const Telemetry &Child);

  /// Completed spans in completion order (inner spans close first).
  const std::vector<SpanRecord> &spans() const { return Spans; }
  /// Total wall time of all spans with this name, in microseconds.
  uint64_t phaseUs(std::string_view Name) const;

  const std::map<std::string, Counter, std::less<>> &counters() const {
    return Counters;
  }
  const std::map<std::string, Histogram, std::less<>> &histograms() const {
    return Histograms;
  }
  const std::map<std::string, LatencyRecorder, std::less<>> &
  latencies() const {
    return Latencies;
  }

  //===--------------------------------------------------------------------===//
  // Exporters
  //===--------------------------------------------------------------------===//

  /// Human-readable per-phase wall-time table (the --profile output),
  /// sorted by total wall time (hottest phase first). When any `mem.*`
  /// gauge is set, a final `mem:` summary line reports them, so a single
  /// profiled run shows memory without a JSON round-trip.
  std::string profileTable() const;

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  /// Loadable by chrome://tracing and Perfetto's trace_event parser.
  void writeTraceJson(std::ostream &OS) const;

  /// Flat stats JSON: counters, histogram summaries, gauges, latency
  /// quantiles, and per-phase wall times under stable keys — the
  /// BENCH_*.json building block.
  void writeStatsJson(std::ostream &OS) const;

  /// File variants; return false (without throwing) if the file cannot
  /// be opened.
  bool writeTraceJsonFile(const std::string &Path) const;
  bool writeStatsJsonFile(const std::string &Path) const;

  /// Renders every latency recorder as a JSON object keyed by recorder
  /// name: {"serve.latency.analyze":{"count":3,"p50":0.421,...},...}.
  /// Quantiles are milliseconds with 3 decimals. Shared between
  /// writeStatsJson and the serve `stats` method.
  std::string latencyJson() const;

  /// Escapes a string for embedding in a JSON document (helper shared
  /// with the bench harness's composite exports).
  static std::string jsonEscape(std::string_view S);

private:
  friend class Span;

  uint64_t nowUs() const;
  void statsJsonBody(std::ostream &OS) const;

  bool Enabled;
  std::chrono::steady_clock::time_point Epoch;
  /// Guards registration into the maps below, Spans/ActiveDepth, Gauges,
  /// and Cid. Mutating an already-resolved Counter/Histogram/
  /// LatencyRecorder handle never takes it.
  mutable std::mutex Mu;
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Histogram, std::less<>> Histograms;
  std::map<std::string, LatencyRecorder, std::less<>> Latencies;
  std::map<std::string, uint64_t, std::less<>> Gauges;
  std::vector<SpanRecord> Spans;
  std::string Cid;
  unsigned ActiveDepth = 0;
  Counter Scratch;
  Histogram HistScratch;
  LatencyRecorder LatScratch;
};

} // namespace support
} // namespace mcpta

#endif // MCPTA_SUPPORT_TELEMETRY_H
