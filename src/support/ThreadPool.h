//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing pool for the parallel fixed-point engine (see
/// docs/PARALLEL.md). Each worker owns a deque: it pushes and pops its
/// own tasks LIFO (cache-warm, depth-first), and steals from the other
/// end of a victim's deque FIFO when its own runs dry — the classic
/// Blumofe/Leiserson discipline, sized down to what the analyzer needs:
///
///  - submit() from any thread (external submissions round-robin onto
///    worker deques; a worker submits onto its own deque);
///  - wait() blocks until every submitted task has finished, then
///    rethrows the first task exception, if any (subsequent ones are
///    swallowed — one failure is enough to fail the run);
///  - no task-to-task return plumbing: tasks communicate through
///    whatever shared state the caller synchronizes (the scheduler's
///    memo table, the StmtIn folder's shards).
///
/// A pool constructed with 0 or 1 threads spawns no workers at all:
/// submit() runs the task inline and wait() only rethrows. This is the
/// sequential engine, byte-for-byte — callers never special-case it.
///
/// Stats are relaxed atomics mirrored into `pta.par.*` telemetry by the
/// scheduler layer; reading them mid-run gives a torn-but-harmless view.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_THREADPOOL_H
#define MCPTA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcpta {
namespace support {

class ThreadPool {
public:
  struct Stats {
    uint64_t TasksExecuted = 0; ///< tasks run to completion (any thread)
    uint64_t Steals = 0;        ///< tasks taken from another worker's deque
  };

  /// Spawns \p Threads - 1 workers (the calling thread is the pool's
  /// implicit first executor via wait()); 0 and 1 both mean inline
  /// execution with no threads at all.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Callable from any thread, including from inside
  /// a running task. Inline pools run it before returning.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far (including tasks those
  /// tasks submitted) has completed, then rethrows the first captured
  /// task exception. The calling thread helps drain the queues while it
  /// waits rather than sleeping on the barrier.
  void wait();

  /// The parallel width: 1 for an inline pool, else the worker count + 1
  /// (the waiting thread works too).
  unsigned width() const { return Workers.empty() ? 1 : unsigned(Workers.size()) + 1; }

  /// True when the pool actually runs tasks on other threads.
  bool parallel() const { return !Workers.empty(); }

  Stats stats() const {
    Stats S;
    S.TasksExecuted = TasksExecuted.load(std::memory_order_relaxed);
    S.Steals = Steals.load(std::memory_order_relaxed);
    return S;
  }

private:
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Self);
  /// Pops one task for thread-slot \p Self (own deque back first, then
  /// steals from the others' fronts). Returns false when every deque is
  /// empty at the moment of the sweep.
  bool popTask(unsigned Self, std::function<void()> &Out);
  void runTask(std::function<void()> &Task);

  /// One queue per worker plus a final slot for external submitters /
  /// the waiting thread. Index == thread slot.
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex Mu; ///< guards CV sleeping and Pending transitions to 0
  std::condition_variable WorkCv; ///< workers sleep here when idle
  std::condition_variable DoneCv; ///< wait() sleeps here
  std::atomic<uint64_t> Pending{0}; ///< submitted but not yet finished
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> NextQueue{0}; ///< round-robin for external submits

  std::mutex ErrMu;
  std::exception_ptr FirstError; ///< first task exception, rethrown by wait()

  std::atomic<uint64_t> TasksExecuted{0};
  std::atomic<uint64_t> Steals{0};
};

} // namespace support
} // namespace mcpta

#endif // MCPTA_SUPPORT_THREADPOOL_H
