//===- ThreadPool.cpp - Work-stealing thread pool -------------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

namespace mcpta {
namespace support {

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads <= 1)
    return; // inline pool: no queues, no workers
  unsigned NumWorkers = Threads - 1;
  // One queue per worker, one extra slot shared by external submitters
  // and the thread that parks in wait().
  for (unsigned I = 0; I < NumWorkers + 1; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  if (Workers.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop.store(true, std::memory_order_relaxed);
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    // Inline pool: run now, capture the first failure for wait().
    Pending.fetch_add(1, std::memory_order_relaxed);
    runTask(Task);
    return;
  }
  Pending.fetch_add(1, std::memory_order_acq_rel);
  unsigned Slot =
      NextQueue.fetch_add(1, std::memory_order_relaxed) % Queues.size();
  {
    std::lock_guard<std::mutex> Lock(Queues[Slot]->Mu);
    Queues[Slot]->Tasks.push_back(std::move(Task));
  }
  {
    // Pairs with the CV wait predicate: taking Mu here guarantees a
    // worker that saw empty queues is already parked in wait() and
    // receives this notification.
    std::lock_guard<std::mutex> Lock(Mu);
  }
  WorkCv.notify_one();
}

bool ThreadPool::popTask(unsigned Self, std::function<void()> &Out) {
  // Own deque first, newest task (LIFO: depth-first, cache-warm).
  {
    WorkerQueue &Q = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Q.Mu);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.back());
      Q.Tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other deques.
  for (size_t I = 1; I < Queues.size(); ++I) {
    WorkerQueue &Q = *Queues[(Self + I) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Q.Mu);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.front());
      Q.Tasks.pop_front();
      Steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(std::function<void()> &Task) {
  try {
    Task();
  } catch (...) {
    std::lock_guard<std::mutex> Lock(ErrMu);
    if (!FirstError)
      FirstError = std::current_exception();
  }
  TasksExecuted.fetch_add(1, std::memory_order_relaxed);
  if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> Lock(Mu);
    DoneCv.notify_all();
  }
}

void ThreadPool::workerLoop(unsigned Self) {
  std::function<void()> Task;
  for (;;) {
    if (popTask(Self, Task)) {
      runTask(Task);
      Task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mu);
    if (Stop.load(std::memory_order_relaxed))
      return;
    // Re-check under Mu: a submit between our empty sweep and this
    // lock acquisition already notified while holding Mu, so either we
    // see Pending work here or the wait observes the notification.
    WorkCv.wait_for(Lock, std::chrono::milliseconds(1), [this] {
      return Stop.load(std::memory_order_relaxed) ||
             Pending.load(std::memory_order_relaxed) != 0;
    });
    if (Stop.load(std::memory_order_relaxed))
      return;
  }
}

void ThreadPool::wait() {
  if (!Workers.empty()) {
    unsigned Self = unsigned(Queues.size()) - 1; // the external slot
    std::function<void()> Task;
    while (Pending.load(std::memory_order_acquire) != 0) {
      if (popTask(Self, Task)) {
        runTask(Task);
        Task = nullptr;
        continue;
      }
      std::unique_lock<std::mutex> Lock(Mu);
      DoneCv.wait_for(Lock, std::chrono::milliseconds(1), [this] {
        return Pending.load(std::memory_order_relaxed) == 0;
      });
    }
  }
  std::exception_ptr E;
  {
    std::lock_guard<std::mutex> Lock(ErrMu);
    E = FirstError;
    FirstError = nullptr;
  }
  if (E)
    std::rethrow_exception(E);
}

} // namespace support
} // namespace mcpta
