//===- FaultInjection.cpp - Deterministic fault-injection registry -------------===//

#include "support/FaultInjection.h"

#include <vector>

using namespace mcpta;
using namespace mcpta::support;

namespace {

/// splitmix64: a tiny, well-mixed 64-bit permutation. Good enough to
/// turn (seed, point, evaluation index) into an independent-looking
/// draw; the registry needs reproducibility, not cryptography.
uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t fnv1a(std::string_view Data) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::vector<std::string_view> split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos)
      Next = S.size();
    Parts.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
  return Parts;
}

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

bool parseProb(std::string_view S, double &Out) {
  // Accept "0.25", ".5", "1". Hand-rolled so a trailing junk byte is an
  // error instead of silently ignored.
  if (S.empty())
    return false;
  double V = 0.0;
  size_t I = 0;
  bool AnyDigit = false;
  for (; I < S.size() && S[I] >= '0' && S[I] <= '9'; ++I) {
    V = V * 10 + (S[I] - '0');
    AnyDigit = true;
  }
  if (I < S.size() && S[I] == '.') {
    ++I;
    double Scale = 0.1;
    for (; I < S.size() && S[I] >= '0' && S[I] <= '9'; ++I) {
      V += (S[I] - '0') * Scale;
      Scale *= 0.1;
      AnyDigit = true;
    }
  }
  if (!AnyDigit || I != S.size() || V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

} // namespace

bool FaultInjection::isKnownPoint(std::string_view Point) {
  return Point == "cache.read_io" || Point == "cache.write_io" ||
         Point == "cache.corrupt" || Point == "serve.stall" ||
         Point == "serve.queue_full" || Point == "alloc.pressure";
}

bool FaultInjection::parseArm(std::string_view Text, std::string &Error) {
  std::vector<std::string_view> Fields = split(Text, ':');
  if (Fields.size() < 2) {
    Error = "fault arm '" + std::string(Text) +
            "' needs at least point:mode";
    return false;
  }
  std::string_view Point = Fields[0];
  if (!isKnownPoint(Point)) {
    Error = "unknown fault-injection point '" + std::string(Point) + "'";
    return false;
  }
  Arm A;
  std::string_view ModeText = Fields[1];
  if (ModeText == "always") {
    A.M = Mode::Always;
  } else if (ModeText == "once") {
    A.M = Mode::Once;
  } else if (ModeText.rfind("times=", 0) == 0) {
    A.M = Mode::Times;
    if (!parseU64(ModeText.substr(6), A.N) || A.N == 0) {
      Error = "bad times=N in fault arm '" + std::string(Text) + "'";
      return false;
    }
  } else if (ModeText.rfind("every=", 0) == 0) {
    A.M = Mode::Every;
    if (!parseU64(ModeText.substr(6), A.N) || A.N == 0) {
      Error = "bad every=N in fault arm '" + std::string(Text) + "'";
      return false;
    }
  } else if (ModeText.rfind("prob=", 0) == 0) {
    A.M = Mode::Prob;
    if (!parseProb(ModeText.substr(5), A.P)) {
      Error = "bad prob=P in fault arm '" + std::string(Text) +
              "' (need 0 <= P <= 1)";
      return false;
    }
  } else {
    Error = "unknown fault mode '" + std::string(ModeText) +
            "' (expect always|once|times=N|every=N|prob=P)";
    return false;
  }
  for (size_t I = 2; I < Fields.size(); ++I) {
    size_t Eq = Fields[I].find('=');
    if (Eq == std::string_view::npos || Eq == 0) {
      Error = "bad fault parameter '" + std::string(Fields[I]) +
              "' (expect key=value)";
      return false;
    }
    std::string KeyName(Fields[I].substr(0, Eq));
    uint64_t Value = 0;
    if (!parseU64(Fields[I].substr(Eq + 1), Value)) {
      Error = "bad fault parameter value in '" + std::string(Fields[I]) + "'";
      return false;
    }
    if (KeyName == "seed")
      A.Seed = Value;
    else
      A.Params[KeyName] = Value;
  }
  Arms[std::string(Point)] = std::move(A);
  return true;
}

bool FaultInjection::parse(std::string_view Spec, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  Arms.clear();
  Enabled = false;
  if (Spec.empty()) {
    Error = "empty fault-injection spec";
    return false;
  }
  if (Spec == "on") {
    Enabled = true;
    return true;
  }
  for (std::string_view ArmText : split(Spec, ',')) {
    if (ArmText.empty()) {
      Error = "empty arm in fault-injection spec";
      Arms.clear();
      return false;
    }
    if (!parseArm(ArmText, Error)) {
      Arms.clear();
      return false;
    }
  }
  Enabled = true;
  return true;
}

bool FaultInjection::enabled() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Enabled;
}

bool FaultInjection::armed(std::string_view Point) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Arms.find(Point) != Arms.end();
}

bool FaultInjection::shouldFire(std::string_view Point) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Arms.find(Point);
  if (!Enabled || It == Arms.end())
    return false;
  Arm &A = It->second;
  uint64_t Eval = A.Evals++;
  bool Fire = false;
  switch (A.M) {
  case Mode::Always:
    Fire = true;
    break;
  case Mode::Once:
    Fire = (Eval == 0);
    break;
  case Mode::Times:
    Fire = (Eval < A.N);
    break;
  case Mode::Every:
    Fire = (Eval % A.N == 0);
    break;
  case Mode::Prob: {
    uint64_t Draw = splitmix64(A.Seed ^ fnv1a(Point) ^ (Eval * 0x9e37ull));
    // Top 53 bits -> uniform double in [0, 1).
    double U = static_cast<double>(Draw >> 11) * (1.0 / 9007199254740992.0);
    Fire = U < A.P;
    break;
  }
  }
  if (Fire)
    ++A.Fired;
  return Fire;
}

uint64_t FaultInjection::param(std::string_view Point, std::string_view Key,
                               uint64_t Default) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Arms.find(Point);
  if (It == Arms.end())
    return Default;
  auto P = It->second.Params.find(Key);
  return P == It->second.Params.end() ? Default : P->second;
}

uint64_t FaultInjection::firedCount(std::string_view Point) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Arms.find(Point);
  return It == Arms.end() ? 0 : It->second.Fired;
}

uint64_t FaultInjection::totalFired() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const auto &[Name, A] : Arms)
    Total += A.Fired;
  return Total;
}
