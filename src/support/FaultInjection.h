//===- FaultInjection.h - Deterministic fault-injection registry -*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable fault injection for chaos testing the serve
/// daemon (docs/ROBUSTNESS.md, "Fault injection"). Production code
/// calls `shouldFire("point")` at a handful of named injection points;
/// with no spec armed the call is a map lookup that always says no, and
/// the registry is only ever constructed when `--fault-inject` (or a
/// per-request `"fault"` member in tests) asks for it.
///
/// Spec grammar (comma-separated arms):
///
///   spec  ::= "on" | arm ("," arm)*
///   arm   ::= point ":" mode (":" key "=" value)*
///   mode  ::= "always" | "once" | "times=N" | "every=N" | "prob=P"
///
/// `"on"` arms nothing but marks the registry enabled, which is how the
/// daemon accepts per-request `"fault"` specs without any server-wide
/// fault. `prob=P` draws from a splitmix64 stream seeded by
/// (seed, point, evaluation index), so a given spec fires on exactly
/// the same evaluations in every run — chaos tests are reproducible by
/// construction. Extra `key=value` arms are free-form integer
/// parameters read back via `param()` (e.g. `serve.stall:once:ms=200`).
///
/// Point names are a closed set (see `isKnownPoint`); unknown names are
/// a parse error so a typo cannot silently disarm a chaos test.
///
/// Thread-safe: `shouldFire` serializes on an internal mutex (injection
/// points are cold paths by definition).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_FAULTINJECTION_H
#define MCPTA_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace mcpta {
namespace support {

class FaultInjection {
public:
  FaultInjection() = default;

  /// The closed set of injection points production code consults.
  ///   cache.read_io   - SummaryCache disk lookup fails as if read IO died
  ///   cache.write_io  - SummaryCache blob write fails (exercises retries)
  ///   cache.corrupt   - SummaryCache sees a bit-flipped blob on read
  ///   serve.stall     - analyze stalls (param ms=N, default 200) before
  ///                     running; cancellable by the deadline watchdog
  ///   serve.queue_full- reader sheds the request as if the queue were full
  ///   alloc.pressure  - analyze runs under a tiny MaxLocations budget
  ///                     (param max=N, default 8), forcing sound degradation
  static bool isKnownPoint(std::string_view Point);

  /// Parses \p Spec into this registry (replacing any prior arms).
  /// Returns false and fills \p Error on a malformed spec or an unknown
  /// point name. An empty spec is an error; "on" enables the registry
  /// with no arms.
  bool parse(std::string_view Spec, std::string &Error);

  /// True once parse() succeeded (even for "on"). A disabled registry
  /// never fires.
  bool enabled() const;

  /// True when \p Point has an arm configured (it may still decline to
  /// fire depending on its mode).
  bool armed(std::string_view Point) const;

  /// One evaluation of \p Point: counts the evaluation and returns
  /// whether the fault fires this time. Deterministic given the spec
  /// and the sequence of evaluations. Thread-safe.
  bool shouldFire(std::string_view Point);

  /// Integer parameter attached to \p Point's arm (e.g. ms=200), or
  /// \p Default when absent.
  uint64_t param(std::string_view Point, std::string_view Key,
                 uint64_t Default) const;

  /// How many times \p Point actually fired.
  uint64_t firedCount(std::string_view Point) const;

  /// Total fires across all points.
  uint64_t totalFired() const;

private:
  enum class Mode : uint8_t { Always, Once, Times, Every, Prob };

  struct Arm {
    Mode M = Mode::Always;
    uint64_t N = 0;   ///< times=N count / every=N modulus
    double P = 0.0;   ///< prob=P probability
    uint64_t Seed = 0;
    std::map<std::string, uint64_t, std::less<>> Params;
    uint64_t Evals = 0;
    uint64_t Fired = 0;
  };

  bool parseArm(std::string_view Text, std::string &Error);

  mutable std::mutex Mu;
  bool Enabled = false;
  std::map<std::string, Arm, std::less<>> Arms;
};

} // namespace support
} // namespace mcpta

#endif // MCPTA_SUPPORT_FAULTINJECTION_H
