//===- Diagnostics.cpp - Error and warning collection --------------------===//

#include "support/Diagnostics.h"

using namespace mcpta;

static const char *levelName(DiagLevel L) {
  switch (L) {
  case DiagLevel::Note:
    return "note";
  case DiagLevel::Warning:
    return "warning";
  case DiagLevel::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticsEngine::dump() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.Loc.str();
    Out += ": ";
    Out += levelName(D.Level);
    Out += ": ";
    Out += D.Message;
    Out += "\n";
  }
  return Out;
}
