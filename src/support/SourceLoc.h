//===- SourceLoc.h - Source position tracking -----------------*- C++ -*-===//
//
// Part of the mcpta project: a reproduction of Emami, Ghiya & Hendren,
// "Context-Sensitive Interprocedural Points-to Analysis in the Presence of
// Function Pointers", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight 1-based line/column source positions used by the lexer,
/// parser, and diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_SOURCELOC_H
#define MCPTA_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace mcpta {

/// A position in the source buffer. Line and column are 1-based; a
/// default-constructed SourceLoc (0,0) means "unknown location".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace mcpta

#endif // MCPTA_SUPPORT_SOURCELOC_H
