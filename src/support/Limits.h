//===- Limits.h - Resource governance for analysis runs ---------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance: budgets, deadlines, and the bookkeeping for
/// sound graceful degradation (see docs/ROBUSTNESS.md).
///
/// The paper's algorithm can blow up on adversarial inputs — the
/// invocation graph grows one node per (call site, callee, context)
/// chain, so a direct-call tree of depth d and fan-out f costs f^d
/// contexts before a single points-to fact is computed, and
/// function-pointer fan-out (Sec. 5) multiplies that further. A
/// production run must terminate within budget with a *sound* answer,
/// never hang or abort.
///
/// `AnalysisLimits` declares the budgets (all default to unlimited);
/// `BudgetMeter` is the cheap run-time meter checked at the existing
/// telemetry hook sites. When a budget trips the analysis does not die:
/// it switches the offending mechanism to a conservative fallback the
/// codebase already has (context-insensitive merged summaries,
/// address-taken binding for unresolved indirect calls, immediate
/// k-limit collapse for invisible-variable chains), records what
/// happened as `Degradation` entries, and keeps going. The channel is
/// exception-free by design: components poll the meter and branch; no
/// unwinding crosses layer boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_LIMITS_H
#define MCPTA_SUPPORT_LIMITS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace mcpta {
namespace support {

/// Which budget a degradation traces back to.
enum class LimitKind : uint8_t {
  Deadline,   ///< wall-clock deadline (AnalysisLimits::TimeoutMs)
  StmtVisits, ///< statement-visit budget (MaxStmtVisits)
  Locations,  ///< abstract-location cap (MaxLocations)
  IGNodes,    ///< invocation-graph node cap (MaxIGNodes)
  RecPasses,  ///< recursion-generalization pass cap (MaxRecPasses)
};
inline constexpr unsigned NumLimitKinds = 5;

/// Stable short name, e.g. for telemetry keys ("deadline", "ig_nodes").
const char *limitKindName(LimitKind K);

/// Budgets for one analysis run. Zero means unlimited; a
/// default-constructed AnalysisLimits governs nothing and costs
/// nothing (the analyzer then allocates no meter at all).
struct AnalysisLimits {
  /// Wall-clock deadline for the whole analysis, in milliseconds.
  uint64_t TimeoutMs = 0;
  /// Total statement visits (every re-analysis of a body counts its
  /// statements again) before the run degrades.
  uint64_t MaxStmtVisits = 0;
  /// Abstract locations in the LocationTable before invisible-variable
  /// chains collapse immediately (top-saturated symbolic names).
  uint64_t MaxLocations = 0;
  /// Invocation-graph nodes before context growth stops and calls share
  /// one canonical per-function node (evaluated context-insensitively).
  uint64_t MaxIGNodes = 0;
  /// Passes of one recursion-generalization fixed point (Figure 4
  /// restarts) before the summary is cut off and demoted to possible.
  uint64_t MaxRecPasses = 0;
  /// External cancellation hook (non-owning, may be null). When the
  /// pointed-to flag becomes true the meter behaves as if the
  /// wall-clock deadline expired: the Deadline trip latches degraded
  /// mode and hardDeadline() returns true so in-flight fixed points cut
  /// themselves off at their next poll. The serve watchdog uses this to
  /// cancel runaway requests (docs/SERVING.md). Excluded from the
  /// options fingerprint: cancellation is per-run plumbing, not part of
  /// what determines the result of an uncancelled run.
  const std::atomic<bool> *CancelFlag = nullptr;

  bool any() const {
    return TimeoutMs || MaxStmtVisits || MaxLocations || MaxIGNodes ||
           MaxRecPasses || CancelFlag;
  }
};

/// One recorded degradation event: which budget tripped, where, and
/// which conservative fallback the analysis switched to.
struct Degradation {
  LimitKind Kind;
  std::string Context; ///< region that degraded, e.g. "call evaluation"
  std::string Action;  ///< fallback taken, e.g. "merged summaries"
};

/// Collapses the per-site detail of a degradation context so repeats of
/// the same failure mode group together: the 'quoted' name — function,
/// call-site expression — becomes "<...>", e.g. both "recursion fixed
/// point of 'f'" and "recursion fixed point of 'g'" map to "recursion
/// fixed point of '<...>'". Warning dedup keys on (kind, category) so a
/// run under sustained budget pressure emits one warning per failure
/// mode, not one per function; full per-event detail stays in the
/// structured Degradation list and the pta.degraded.* counters.
std::string degradationCategory(const std::string &Context);

/// The run-time meter. Hot paths hold a `BudgetMeter *` that is null
/// when no limits are set, so the ungoverned cost is one branch on a
/// null pointer (the same discipline as support::Telemetry). Checks are
/// amortized: tick() reads the clock only every DeadlineCheckMask+1
/// visits.
///
/// Trips are sticky: once a budget is exceeded the corresponding bit
/// stays set for the rest of the run, and the consumer (the analyzer)
/// latches into degraded mode on its next poll.
class BudgetMeter {
public:
  explicit BudgetMeter(const AnalysisLimits &L)
      : Limits(L), Start(std::chrono::steady_clock::now()) {}

  const AnalysisLimits &limits() const { return Limits; }

  /// Per-statement-visit tick. Returns false once any budget is
  /// tripped. Deadline is re-checked every 64 visits. Thread-safe: the
  /// visit counter is a single atomic shared by every worker thread, so
  /// MaxStmtVisits is a per-run budget counted once — not once per
  /// thread — and the amortized deadline check keys off the returned
  /// (unique) count so exactly one thread performs each check.
  bool tick() {
    uint64_t N = StmtVisits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Limits.MaxStmtVisits && N > Limits.MaxStmtVisits)
      trip(LimitKind::StmtVisits);
    if ((N & DeadlineCheckMask) == 0)
      checkDeadline();
    return !tripped();
  }

  /// Records the current abstract-location count; trips Locations when
  /// the cap is exceeded.
  void noteLocations(uint64_t N) {
    if (Limits.MaxLocations && N > Limits.MaxLocations)
      trip(LimitKind::Locations);
  }

  /// Records the current invocation-graph node count; returns false
  /// (and trips IGNodes) when the cap is exceeded. Also amortizes a
  /// deadline check so graph construction itself is governed.
  bool noteIGNode(uint64_t Total) {
    if (Limits.MaxIGNodes && Total > Limits.MaxIGNodes)
      trip(LimitKind::IGNodes);
    if ((Total & DeadlineCheckMask) == 0)
      checkDeadline();
    return !tripped(LimitKind::IGNodes) && !tripped(LimitKind::Deadline);
  }

  /// True when \p Passes of one recursion fixed point exceed the cap.
  bool recPassesExceeded(unsigned Passes) const {
    return Limits.MaxRecPasses && Passes >= Limits.MaxRecPasses;
  }

  /// Forces a clock read; trips Deadline when expired. External
  /// cancellation (AnalysisLimits::CancelFlag) reads as an expired
  /// deadline so it rides the exact degradation path the deadline
  /// budget already exercises.
  bool checkDeadline() {
    if (cancelled()) {
      trip(LimitKind::Deadline);
      return true;
    }
    if (!Limits.TimeoutMs)
      return false;
    if (elapsedMs() > Limits.TimeoutMs)
      trip(LimitKind::Deadline);
    return tripped(LimitKind::Deadline);
  }

  /// True when the run is well past its deadline (4x, floor +50ms) or
  /// externally cancelled. In-flight fixed points cut themselves off at
  /// this point so even degraded evaluation cannot run away.
  bool hardDeadline() {
    if (cancelled())
      return true;
    if (!Limits.TimeoutMs)
      return false;
    uint64_t HardMs = Limits.TimeoutMs * 4;
    if (HardMs < Limits.TimeoutMs + 50)
      HardMs = Limits.TimeoutMs + 50;
    return elapsedMs() > HardMs;
  }

  /// External cancellation requested (watchdog or caller).
  bool cancelled() const {
    return Limits.CancelFlag &&
           Limits.CancelFlag->load(std::memory_order_relaxed);
  }

  void trip(LimitKind K) {
    TrippedMask.fetch_or(bit(K), std::memory_order_relaxed);
  }
  bool tripped() const {
    return TrippedMask.load(std::memory_order_relaxed) != 0;
  }
  bool tripped(LimitKind K) const {
    return (TrippedMask.load(std::memory_order_relaxed) & bit(K)) != 0;
  }

  uint64_t stmtVisits() const {
    return StmtVisits.load(std::memory_order_relaxed);
  }

  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

private:
  static constexpr uint64_t DeadlineCheckMask = 63;
  static uint8_t bit(LimitKind K) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(K));
  }

  AnalysisLimits Limits;
  std::chrono::steady_clock::time_point Start;
  /// Shared across worker threads (see tick()); relaxed is enough — the
  /// budgets are quantity caps, not synchronization points.
  std::atomic<uint64_t> StmtVisits{0};
  std::atomic<uint8_t> TrippedMask{0};
};

} // namespace support
} // namespace mcpta

#endif // MCPTA_SUPPORT_LIMITS_H
