//===- Version.h - Tool and artifact format versions ------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for every version that leaves the
/// process: the tool version, and the name + version of the binary
/// result format (`mcpta-result-v1`, see src/serve/Serialize.h). Both
/// are embedded in the `mcpta-stats-v1` JSON export and in every
/// serialized result header, so cache keys, stats files, and stored
/// blobs are attributable to the code that produced them.
///
/// Bump kResultFormatVersion on ANY change to the serialized layout —
/// the version participates in the summary-cache key, so a bump
/// invalidates every stored blob instead of misreading it.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_VERSION_H
#define MCPTA_SUPPORT_VERSION_H

#include <cstdint>

namespace mcpta {
namespace version {

/// Tool/library release. Advanced with user-visible feature changes.
inline constexpr const char *kToolVersion = "0.4.0";

/// Name of the binary result format produced by serve::serialize.
inline constexpr const char *kResultFormatName = "mcpta-result-v3";

/// Layout revision of that format. Part of every cache key.
/// Version 2 canonicalizes the location table (referenced locations
/// only, sorted by name), drops run-history counters from the wire,
/// and adds the per-function fingerprints and dependency metadata the
/// incremental engine (src/incr/) diffs against. Version 3 writes
/// every points-to set as id-sorted per-source runs (one source id
/// followed by its (dst, definite) pairs) instead of flat triples —
/// the shape the flat-vector PointsToSet representation produces
/// directly. deserialize() still reads version-1 and version-2 blobs.
inline constexpr uint32_t kResultFormatVersion = 3;

} // namespace version
} // namespace mcpta

#endif // MCPTA_SUPPORT_VERSION_H
