//===- Telemetry.cpp - Analysis instrumentation layer -------------------------===//

#include "support/Telemetry.h"

#include "support/Version.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace mcpta;
using namespace mcpta::support;

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Telemetry::Span::Span(Telemetry *T, std::string_view Name)
    : T(T && T->Enabled ? T : nullptr) {
  if (!this->T)
    return;
  this->Name = std::string(Name);
  StartUs = this->T->nowUs();
  Depth = this->T->ActiveDepth++;
}

Telemetry::Span::~Span() {
  if (!T)
    return;
  --T->ActiveDepth;
  T->Spans.push_back({std::move(Name), StartUs, T->nowUs() - StartUs, Depth});
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

Telemetry::Telemetry(bool Enabled)
    : Enabled(Enabled), Epoch(std::chrono::steady_clock::now()) {}

uint64_t Telemetry::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

Counter &Telemetry::counter(std::string_view Name) {
  if (!Enabled)
    return Scratch;
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), Counter()).first;
  return It->second;
}

Histogram &Telemetry::histogram(std::string_view Name) {
  if (!Enabled)
    return HistScratch;
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), Histogram()).first;
  return It->second;
}

uint64_t Telemetry::phaseUs(std::string_view Name) const {
  uint64_t Total = 0;
  for (const SpanRecord &S : Spans)
    if (S.Name == Name)
      Total += S.DurUs;
  return Total;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string Telemetry::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Telemetry::profileTable() const {
  // Aggregate same-name spans, ordered by first start time so the table
  // reads as a timeline.
  struct Row {
    std::string Name;
    uint64_t FirstStart = 0;
    uint64_t TotalUs = 0;
    unsigned Count = 0;
    unsigned Depth = 0;
  };
  std::vector<Row> Rows;
  for (const SpanRecord &S : Spans) {
    Row *R = nullptr;
    for (Row &Existing : Rows)
      if (Existing.Name == S.Name) {
        R = &Existing;
        break;
      }
    if (!R) {
      Rows.push_back({S.Name, S.StartUs, 0, 0, S.Depth});
      R = &Rows.back();
    }
    R->FirstStart = std::min(R->FirstStart, S.StartUs);
    R->TotalUs += S.DurUs;
    ++R->Count;
  }
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.FirstStart < B.FirstStart;
  });

  uint64_t TopLevelTotal = 0;
  for (const SpanRecord &S : Spans)
    if (S.Depth == 0)
      TopLevelTotal += S.DurUs;

  std::ostringstream OS;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%-24s %12s %8s %6s\n", "phase",
                "wall(us)", "%total", "spans");
  OS << Buf;
  for (const Row &R : Rows) {
    double Pct =
        TopLevelTotal ? 100.0 * double(R.TotalUs) / double(TopLevelTotal) : 0.0;
    std::string Indented(R.Depth * 2, ' ');
    Indented += R.Name;
    std::snprintf(Buf, sizeof(Buf), "%-24s %12llu %7.1f%% %6u\n",
                  Indented.c_str(),
                  static_cast<unsigned long long>(R.TotalUs), Pct, R.Count);
    OS << Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%-24s %12llu %7.1f%%\n", "total",
                static_cast<unsigned long long>(TopLevelTotal), 100.0);
  OS << Buf;
  return OS.str();
}

void Telemetry::writeTraceJson(std::ostream &OS) const {
  // Chrome trace_event "JSON Array Format" wrapped in an object, which
  // both chrome://tracing and Perfetto accept. All spans go on one
  // (pid, tid); nesting is reconstructed from ts/dur containment.
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const SpanRecord &S : Spans) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"name\":\"" << jsonEscape(S.Name)
       << "\",\"cat\":\"mcpta\",\"ph\":\"X\",\"ts\":" << S.StartUs
       << ",\"dur\":" << S.DurUs << ",\"pid\":1,\"tid\":1}";
  }
  // Counter totals as a single instant-event payload so a trace alone
  // carries the run's headline numbers.
  for (const auto &[Name, C] : Counters) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"name\":\"" << jsonEscape(Name)
       << "\",\"cat\":\"mcpta.counter\",\"ph\":\"C\",\"ts\":0,\"pid\":1,"
          "\"args\":{\"value\":"
       << C.Value << "}}";
  }
  OS << "]}\n";
}

void Telemetry::writeStatsJson(std::ostream &OS) const {
  // Version stamps make every stats document attributable: which tool
  // build produced it, and which result-format revision (and therefore
  // which summary-cache key space) that build addresses.
  OS << "{\"schema\":\"mcpta-stats-v1\"";
  OS << ",\"tool_version\":\"" << jsonEscape(version::kToolVersion) << "\"";
  OS << ",\"result_format\":\"" << jsonEscape(version::kResultFormatName)
     << "\"";
  OS << ",\"result_format_version\":" << version::kResultFormatVersion;

  OS << ",\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":" << C.Value;
  }
  OS << "}";

  OS << ",\"histograms\":{";
  First = true;
  char Buf[64];
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      OS << ",";
    First = false;
    std::snprintf(Buf, sizeof(Buf), "%.3f", H.mean());
    OS << "\"" << jsonEscape(Name) << "\":{\"count\":" << H.count()
       << ",\"sum\":" << H.sum() << ",\"min\":" << H.min()
       << ",\"max\":" << H.max() << ",\"mean\":" << Buf << "}";
  }
  OS << "}";

  OS << ",\"phases_us\":{";
  First = true;
  std::vector<std::string> Seen;
  for (const SpanRecord &S : Spans) {
    if (std::find(Seen.begin(), Seen.end(), S.Name) != Seen.end())
      continue;
    Seen.push_back(S.Name);
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(S.Name) << "\":" << phaseUs(S.Name);
  }
  OS << "}}\n";
}

bool Telemetry::writeTraceJsonFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeTraceJson(OS);
  return bool(OS);
}

bool Telemetry::writeStatsJsonFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeStatsJson(OS);
  return bool(OS);
}
