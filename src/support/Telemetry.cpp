//===- Telemetry.cpp - Analysis instrumentation layer -------------------------===//

#include "support/Telemetry.h"

#include "support/Version.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include <sys/resource.h>

using namespace mcpta;
using namespace mcpta::support;

//===----------------------------------------------------------------------===//
// Process memory
//===----------------------------------------------------------------------===//

uint64_t support::peakRssKb() {
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
  if (RU.ru_maxrss <= 0)
    return 0;
  uint64_t V = static_cast<uint64_t>(RU.ru_maxrss);
#ifdef __APPLE__
  // macOS reports ru_maxrss in bytes; Linux (the CI and serve target)
  // reports KiB.
  V /= 1024;
#endif
  return V;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void Histogram::mergeFrom(const Histogram &O) {
  uint64_t ON = O.count();
  if (!ON)
    return;
  N.fetch_add(ON, std::memory_order_relaxed);
  Sum.fetch_add(O.sum(), std::memory_order_relaxed);
  atomicMin(Lo, O.Lo.load(std::memory_order_relaxed));
  atomicMax(Hi, O.Hi.load(std::memory_order_relaxed));
  for (unsigned I = 0; I < NumBuckets; ++I)
    if (uint64_t B = O.bucket(I))
      Buckets[I].fetch_add(B, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// LatencyRecorder
//===----------------------------------------------------------------------===//

unsigned LatencyRecorder::bucketOf(uint64_t Us) {
  // Values below SubBuckets are exact (one bucket per value). Above,
  // each power-of-two octave splits into SubBuckets linear sub-buckets.
  if (Us < SubBuckets)
    return static_cast<unsigned>(Us);
  unsigned Msb = 63 - static_cast<unsigned>(__builtin_clzll(Us));
  // Octave for values in [2^Msb, 2^(Msb+1)); the first split octave is
  // Msb == 3 (values 8..15) which continues directly after the exact
  // region.
  unsigned Shift = Msb - 3;
  unsigned Sub = static_cast<unsigned>((Us >> Shift) - SubBuckets);
  unsigned Idx = Shift * SubBuckets + SubBuckets + Sub;
  return Idx < NumBuckets ? Idx : NumBuckets - 1;
}

uint64_t LatencyRecorder::bucketUpperUs(unsigned I) {
  if (I < SubBuckets)
    return I;
  unsigned Shift = (I - SubBuckets) / SubBuckets;
  unsigned Sub = (I - SubBuckets) % SubBuckets;
  // Largest value mapping to this bucket: ((8 + Sub + 1) << Shift) - 1.
  return ((uint64_t(SubBuckets + Sub + 1)) << Shift) - 1;
}

uint64_t LatencyRecorder::quantileUs(double Q) const {
  uint64_t Total = count();
  if (!Total)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  // Rank of the target sample, 1-based, ceiling so p100 is the max
  // bucket and p50 of two samples is the first.
  uint64_t Rank = static_cast<uint64_t>(Q * double(Total));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Cum = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Cum += Buckets[I].load(std::memory_order_relaxed);
    if (Cum >= Rank)
      return bucketUpperUs(I);
  }
  // Racing recorders can leave the snapshot short of Total; report the
  // highest populated bucket.
  for (unsigned I = NumBuckets; I-- > 0;)
    if (Buckets[I].load(std::memory_order_relaxed))
      return bucketUpperUs(I);
  return 0;
}

void LatencyRecorder::mergeFrom(const LatencyRecorder &O) {
  uint64_t ON = O.count();
  if (!ON)
    return;
  N.fetch_add(ON, std::memory_order_relaxed);
  SumUs.fetch_add(O.SumUs.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  atomicMax(MaxUs, O.MaxUs.load(std::memory_order_relaxed));
  for (unsigned I = 0; I < NumBuckets; ++I)
    if (uint64_t B = O.Buckets[I].load(std::memory_order_relaxed))
      Buckets[I].fetch_add(B, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Telemetry::Span::Span(Telemetry *T, std::string_view Name)
    : T(T && T->Enabled ? T : nullptr) {
  if (!this->T)
    return;
  this->Name = std::string(Name);
  StartUs = this->T->nowUs();
  std::lock_guard<std::mutex> Lock(this->T->Mu);
  Depth = this->T->ActiveDepth++;
}

Telemetry::Span::~Span() {
  if (!T)
    return;
  uint64_t DurUs = T->nowUs() - StartUs;
  std::lock_guard<std::mutex> Lock(T->Mu);
  --T->ActiveDepth;
  T->Spans.push_back({std::move(Name), StartUs, DurUs, Depth});
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

Telemetry::Telemetry(bool Enabled)
    : Enabled(Enabled), Epoch(std::chrono::steady_clock::now()) {}

uint64_t Telemetry::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void Telemetry::setCorrelationId(std::string NewCid) {
  std::lock_guard<std::mutex> Lock(Mu);
  Cid = std::move(NewCid);
}

std::string Telemetry::correlationId() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cid;
}

Counter &Telemetry::counter(std::string_view Name) {
  if (!Enabled)
    return Scratch;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.try_emplace(std::string(Name)).first;
  return It->second;
}

Histogram &Telemetry::histogram(std::string_view Name) {
  if (!Enabled)
    return HistScratch;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.try_emplace(std::string(Name)).first;
  return It->second;
}

LatencyRecorder &Telemetry::latency(std::string_view Name) {
  if (!Enabled)
    return LatScratch;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Latencies.find(Name);
  if (It == Latencies.end())
    It = Latencies.try_emplace(std::string(Name)).first;
  return It->second;
}

void Telemetry::gauge(std::string_view Name, uint64_t Value) {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    Gauges.emplace(std::string(Name), Value);
  else
    It->second = Value;
}

std::map<std::string, uint64_t, std::less<>> Telemetry::gauges() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Gauges;
}

std::map<std::string, uint64_t, std::less<>>
Telemetry::countersSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::map<std::string, uint64_t, std::less<>> Out;
  for (const auto &[Name, C] : Counters)
    Out.emplace(Name, C.load());
  return Out;
}

void Telemetry::mergeFrom(const Telemetry &Child) {
  if (!Enabled || !Child.Enabled || &Child == this)
    return;
  // Snapshot the child's registries under its registration lock, then
  // fold entry-by-entry. The registries are node-stable, so pointers
  // taken under the lock stay valid after it is released — holding both
  // mutexes at once (a lock-ordering hazard) is never needed. The child
  // should still be quiescent for *exact* totals (a racing recorder can
  // land an increment after its value is read), but a racing
  // registration on either side is structurally safe.
  std::vector<std::pair<std::string_view, const Counter *>> Cs;
  std::vector<std::pair<std::string_view, const Histogram *>> Hs;
  std::vector<std::pair<std::string_view, const LatencyRecorder *>> Ls;
  std::map<std::string, uint64_t, std::less<>> ChildGauges;
  {
    std::lock_guard<std::mutex> Lock(Child.Mu);
    Cs.reserve(Child.Counters.size());
    for (const auto &[Name, C] : Child.Counters)
      Cs.emplace_back(Name, &C);
    Hs.reserve(Child.Histograms.size());
    for (const auto &[Name, H] : Child.Histograms)
      Hs.emplace_back(Name, &H);
    Ls.reserve(Child.Latencies.size());
    for (const auto &[Name, L] : Child.Latencies)
      Ls.emplace_back(Name, &L);
    ChildGauges = Child.Gauges;
  }
  for (const auto &[Name, C] : Cs)
    counter(Name) += C->load();
  for (const auto &[Name, H] : Hs)
    histogram(Name).mergeFrom(*H);
  for (const auto &[Name, L] : Ls)
    latency(Name).mergeFrom(*L);
  for (const auto &[Name, V] : ChildGauges)
    gauge(Name, V);
  // Spans are intentionally not merged: a daemon aggregate would grow
  // without bound, and per-request spans are exported from the child.
}

uint64_t Telemetry::phaseUs(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const SpanRecord &S : Spans)
    if (S.Name == Name)
      Total += S.DurUs;
  return Total;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string Telemetry::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Telemetry::profileTable() const {
  std::lock_guard<std::mutex> Lock(Mu);
  // Aggregate same-name spans, ordered hottest-first so the phase worth
  // optimizing tops the table.
  struct Row {
    std::string Name;
    uint64_t FirstStart = 0;
    uint64_t TotalUs = 0;
    unsigned Count = 0;
    unsigned Depth = 0;
  };
  std::vector<Row> Rows;
  for (const SpanRecord &S : Spans) {
    Row *R = nullptr;
    for (Row &Existing : Rows)
      if (Existing.Name == S.Name) {
        R = &Existing;
        break;
      }
    if (!R) {
      Rows.push_back({S.Name, S.StartUs, 0, 0, S.Depth});
      R = &Rows.back();
    }
    R->FirstStart = std::min(R->FirstStart, S.StartUs);
    R->TotalUs += S.DurUs;
    ++R->Count;
  }
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.TotalUs != B.TotalUs)
      return A.TotalUs > B.TotalUs;
    return A.FirstStart < B.FirstStart;
  });

  uint64_t TopLevelTotal = 0;
  for (const SpanRecord &S : Spans)
    if (S.Depth == 0)
      TopLevelTotal += S.DurUs;

  std::ostringstream OS;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%-24s %12s %8s %6s\n", "phase",
                "wall(us)", "%total", "spans");
  OS << Buf;
  for (const Row &R : Rows) {
    double Pct =
        TopLevelTotal ? 100.0 * double(R.TotalUs) / double(TopLevelTotal) : 0.0;
    std::string Indented(R.Depth * 2, ' ');
    Indented += R.Name;
    std::snprintf(Buf, sizeof(Buf), "%-24s %12llu %7.1f%% %6u\n",
                  Indented.c_str(),
                  static_cast<unsigned long long>(R.TotalUs), Pct, R.Count);
    OS << Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%-24s %12llu %7.1f%%\n", "total",
                static_cast<unsigned long long>(TopLevelTotal), 100.0);
  OS << Buf;

  // Memory summary from mem.* gauges, so a single profiled run shows
  // footprint without a JSON round-trip.
  bool AnyMem = false;
  for (const auto &[Name, V] : Gauges) {
    if (Name.rfind("mem.", 0) != 0)
      continue;
    if (!AnyMem)
      OS << "mem:";
    else
      OS << " ";
    AnyMem = true;
    OS << " " << Name.substr(4) << "=" << V;
  }
  if (AnyMem)
    OS << "\n";
  return OS.str();
}

void Telemetry::writeTraceJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  // Chrome trace_event "JSON Array Format" wrapped in an object, which
  // both chrome://tracing and Perfetto accept. All spans go on one
  // (pid, tid); nesting is reconstructed from ts/dur containment.
  OS << "{\"displayTimeUnit\":\"ms\"";
  if (!Cid.empty())
    OS << ",\"otherData\":{\"correlation_id\":\"" << jsonEscape(Cid) << "\"}";
  OS << ",\"traceEvents\":[";
  bool First = true;
  for (const SpanRecord &S : Spans) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"name\":\"" << jsonEscape(S.Name)
       << "\",\"cat\":\"mcpta\",\"ph\":\"X\",\"ts\":" << S.StartUs
       << ",\"dur\":" << S.DurUs << ",\"pid\":1,\"tid\":1}";
  }
  // Counter totals as a single instant-event payload so a trace alone
  // carries the run's headline numbers.
  for (const auto &[Name, C] : Counters) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"name\":\"" << jsonEscape(Name)
       << "\",\"cat\":\"mcpta.counter\",\"ph\":\"C\",\"ts\":0,\"pid\":1,"
          "\"args\":{\"value\":"
       << C.load() << "}}";
  }
  OS << "]}\n";
}

std::string Telemetry::latencyJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  char Buf[64];
  OS << "{";
  bool First = true;
  for (const auto &[Name, L] : Latencies) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":{\"count\":" << L.count();
    std::snprintf(Buf, sizeof(Buf), "%.3f", L.quantileMs(0.50));
    OS << ",\"p50\":" << Buf;
    std::snprintf(Buf, sizeof(Buf), "%.3f", L.quantileMs(0.95));
    OS << ",\"p95\":" << Buf;
    std::snprintf(Buf, sizeof(Buf), "%.3f", L.quantileMs(0.99));
    OS << ",\"p99\":" << Buf;
    std::snprintf(Buf, sizeof(Buf), "%.3f", L.maxMs());
    OS << ",\"max\":" << Buf;
    std::snprintf(Buf, sizeof(Buf), "%.3f", L.meanMs());
    OS << ",\"mean\":" << Buf << "}";
  }
  OS << "}";
  return OS.str();
}

void Telemetry::writeStatsJson(std::ostream &OS) const {
  // Version stamps make every stats document attributable: which tool
  // build produced it, and which result-format revision (and therefore
  // which summary-cache key space) that build addresses.
  OS << "{\"schema\":\"mcpta-stats-v1\"";
  OS << ",\"tool_version\":\"" << jsonEscape(version::kToolVersion) << "\"";
  OS << ",\"result_format\":\"" << jsonEscape(version::kResultFormatName)
     << "\"";
  OS << ",\"result_format_version\":" << version::kResultFormatVersion;

  // latencyJson() takes Mu itself; render it before locking.
  std::string Latency = latencyJson();

  std::lock_guard<std::mutex> Lock(Mu);
  if (!Cid.empty())
    OS << ",\"correlation_id\":\"" << jsonEscape(Cid) << "\"";

  OS << ",\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":" << C.load();
  }
  OS << "}";

  OS << ",\"histograms\":{";
  First = true;
  char Buf[64];
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      OS << ",";
    First = false;
    std::snprintf(Buf, sizeof(Buf), "%.3f", H.mean());
    OS << "\"" << jsonEscape(Name) << "\":{\"count\":" << H.count()
       << ",\"sum\":" << H.sum() << ",\"min\":" << H.min()
       << ",\"max\":" << H.max() << ",\"mean\":" << Buf << "}";
  }
  OS << "}";

  OS << ",\"gauges\":{";
  First = true;
  for (const auto &[Name, V] : Gauges) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":" << V;
  }
  OS << "}";

  OS << ",\"latency\":" << Latency;

  OS << ",\"phases_us\":{";
  First = true;
  std::vector<std::string> Seen;
  for (const SpanRecord &S : Spans) {
    if (std::find(Seen.begin(), Seen.end(), S.Name) != Seen.end())
      continue;
    Seen.push_back(S.Name);
    if (!First)
      OS << ",";
    First = false;
    uint64_t Total = 0;
    for (const SpanRecord &T : Spans)
      if (T.Name == S.Name)
        Total += T.DurUs;
    OS << "\"" << jsonEscape(S.Name) << "\":" << Total;
  }
  OS << "}}\n";
}

bool Telemetry::writeTraceJsonFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeTraceJson(OS);
  return bool(OS);
}

bool Telemetry::writeStatsJsonFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeStatsJson(OS);
  return bool(OS);
}
