//===- Diagnostics.h - Error and warning collection ------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Components report errors and warnings here
/// instead of printing directly; the driver decides how to surface them.
/// Library code never throws for user-input errors — it records a
/// diagnostic and recovers or bails out, matching LLVM's recoverable-error
/// discipline.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_DIAGNOSTICS_H
#define MCPTA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace mcpta {

/// Severity of a diagnostic message.
enum class DiagLevel { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagLevel Level;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one translation unit.
class DiagnosticsEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagLevel::Error, Loc, std::move(Msg)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagLevel::Warning, Loc, std::move(Msg)});
  }
  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagLevel::Note, Loc, std::move(Msg)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic as "line:col: level: message" lines.
  std::string dump() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace mcpta

#endif // MCPTA_SUPPORT_DIAGNOSTICS_H
