//===- FlightRecorder.h - Bounded ring of structured events -----*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A black box for the serve daemon: a bounded, thread-safe ring buffer
/// of structured events (request start/end, degradations, cache
/// hits/misses/evictions, incremental fallbacks). When a multi-tenant
/// daemon misbehaves, the recent event history explains *which* request
/// degraded and why — counters alone only say *how often*.
///
/// Events are cheap fixed-shape records: a monotone sequence number, a
/// steady-clock timestamp relative to the recorder's construction, a
/// kind string (stable schema, see OBSERVABILITY.md), the correlation id
/// of the request that produced it, and a short free-form detail. The
/// ring holds the most recent `capacity` events; older ones are dropped
/// and counted, never blocking a writer.
///
/// All methods are safe to call from any thread; recording takes one
/// short mutex hold (the serve hot path records a handful of events per
/// request, so contention is negligible next to analysis work).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SUPPORT_FLIGHTRECORDER_H
#define MCPTA_SUPPORT_FLIGHTRECORDER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mcpta {
namespace support {

class FlightRecorder {
public:
  struct Event {
    uint64_t Seq = 0;   ///< Monotone per-recorder sequence number (1-based).
    uint64_t TsUs = 0;  ///< Microseconds since recorder construction.
    std::string Kind;   ///< Stable event kind, e.g. "request.start".
    std::string Cid;    ///< Correlation id of the originating request.
    std::string Detail; ///< Short free-form context, e.g. "method=analyze".
  };

  explicit FlightRecorder(size_t Capacity = kDefaultCapacity);

  /// Appends an event, evicting the oldest when full. Never blocks
  /// beyond the ring mutex.
  void record(std::string_view Kind, std::string_view Cid,
              std::string_view Detail);

  /// Copies the most recent events, oldest first. \p Limit of 0 means
  /// everything retained.
  std::vector<Event> snapshot(size_t Limit = 0) const;

  size_t capacity() const { return Cap; }
  /// Total events ever recorded (including dropped ones).
  uint64_t totalRecorded() const;
  /// Events evicted to make room.
  uint64_t dropped() const;

  /// Renders one event as a JSON object (stable field order: seq, ts_us,
  /// kind, cid, detail).
  static std::string eventJson(const Event &E);

  static constexpr size_t kDefaultCapacity = 256;

private:
  const size_t Cap;
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  std::deque<Event> Ring;
  uint64_t Total = 0;
  uint64_t Dropped = 0;
};

} // namespace support
} // namespace mcpta

#endif // MCPTA_SUPPORT_FLIGHTRECORDER_H
