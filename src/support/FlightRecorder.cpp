//===- FlightRecorder.cpp - Bounded ring of structured events -----------------===//

#include "support/FlightRecorder.h"

#include "support/Telemetry.h"

#include <sstream>

using namespace mcpta;
using namespace mcpta::support;

FlightRecorder::FlightRecorder(size_t Capacity)
    : Cap(Capacity ? Capacity : 1), Epoch(std::chrono::steady_clock::now()) {}

void FlightRecorder::record(std::string_view Kind, std::string_view Cid,
                            std::string_view Detail) {
  uint64_t TsUs = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - Epoch)
                      .count();
  std::lock_guard<std::mutex> Lock(Mu);
  ++Total;
  if (Ring.size() >= Cap) {
    Ring.pop_front();
    ++Dropped;
  }
  Ring.push_back(Event{Total, TsUs, std::string(Kind), std::string(Cid),
                       std::string(Detail)});
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot(size_t Limit) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = Ring.size();
  size_t Take = (Limit && Limit < N) ? Limit : N;
  std::vector<Event> Out;
  Out.reserve(Take);
  for (size_t I = N - Take; I < N; ++I)
    Out.push_back(Ring[I]);
  return Out;
}

uint64_t FlightRecorder::totalRecorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Total;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

std::string FlightRecorder::eventJson(const Event &E) {
  std::ostringstream OS;
  OS << "{\"seq\":" << E.Seq << ",\"ts_us\":" << E.TsUs << ",\"kind\":\""
     << Telemetry::jsonEscape(E.Kind) << "\",\"cid\":\""
     << Telemetry::jsonEscape(E.Cid) << "\",\"detail\":\""
     << Telemetry::jsonEscape(E.Detail) << "\"}";
  return OS.str();
}
