//===- Json.h - Minimal JSON value model and parser -------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON substrate of the serve layer: a small immutable value model
/// plus a strict recursive-descent parser, sized for one NDJSON request
/// line at a time. Writing JSON stays with the existing escape helper
/// (support::Telemetry::jsonEscape) and hand-built strings — the
/// response schemas are flat enough that a writer class would be more
/// code than the documents themselves.
///
/// The parser is defensive by design: it never throws, never reads past
/// the buffer, bounds nesting depth, and reports the first error with a
/// byte offset. A malformed request line must produce an error response,
/// not take down a long-lived daemon (see docs/SERVING.md).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_JSON_H
#define MCPTA_SERVE_JSON_H

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mcpta {
namespace serve {

/// One parsed JSON value. Objects keep their members in a sorted map
/// (request schemas never rely on member order).
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }

  /// Scalar accessors; wrong-kind access returns the fallback.
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  double asNumber(double Default = 0.0) const {
    return K == Kind::Number ? Num : Default;
  }
  const std::string &asString() const {
    static const std::string Empty;
    return K == Kind::String ? Str : Empty;
  }

  const std::vector<JsonValue> &elements() const { return Elems; }
  const std::map<std::string, JsonValue> &members() const { return Members; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(std::string_view Name) const;

  /// Convenience typed member reads with fallbacks.
  std::string getString(std::string_view Name,
                        const std::string &Default = "") const;
  double getNumber(std::string_view Name, double Default = 0.0) const;
  bool getBool(std::string_view Name, bool Default = false) const;

private:
  friend class JsonParser;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::map<std::string, JsonValue> Members;
};

/// Parses one complete JSON document from \p Text. Returns false and
/// fills \p Error (message + byte offset) on malformed input; \p Out is
/// unspecified then. Trailing non-whitespace after the document is an
/// error (one NDJSON line is one document).
bool parseJson(std::string_view Text, JsonValue &Out, std::string &Error);

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_JSON_H
