//===- Serialize.h - mcpta-result-v3 binary serialization -------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve layer's result model and its versioned binary format.
///
/// A live pta::Analyzer::Result is riddled with pointers into the AST
/// and the LocationTable of the run that produced it, so it cannot
/// outlive its Pipeline. ResultSnapshot is the self-contained mirror:
/// every data structure the analysis produces — abstract locations,
/// per-point points-to triples (x, y, D/P), the invocation-graph shape
/// with node kinds and memoized IN/OUT sets, degradation records,
/// warnings, and the client outputs (alias pairs, per-function
/// read/write sets) — flattened to dense ids and interned strings. A
/// snapshot answers every query the serve daemon exposes (alias,
/// points_to, read_write_sets, stats) without the source, the AST, or
/// a re-run.
///
/// Version 2 changes (all in service of the incremental engine,
/// src/incr/, whose oracle is byte-identity of snapshots):
///  - the location table is *canonical*: only locations referenced by
///    some serialized set (plus their transitive symbolic parents)
///    appear, sorted by a structural key and densely renumbered, so the
///    bytes no longer depend on LocationTable creation order;
///  - location records carry the structure needed to re-intern them in
///    a fresh LocationTable (root identity, local index, symbolic
///    parent link, path elements);
///  - invocation-graph nodes carry EvalCount;
///  - warnings are serialized sorted and deduplicated, plus a
///    per-function attribution map (WarningsByFn);
///  - per-function fingerprints and dependency metadata
///    (incr::ProgramMeta) are embedded;
///  - the run-history counters of v1 (BodyAnalyses, LoopIterations,
///    MemoHits) are gone — they described the trajectory, not the
///    result, and an incremental run legitimately has a different
///    trajectory.
///
/// The binary format `mcpta-result-v3` (support/Version.h) is
/// deterministic: the same snapshot always serializes to the same
/// bytes, so serialize → deserialize → serialize round-trips
/// byte-identically (SerializeTest relies on this, and the summary
/// cache deduplicates on it). Layout: a fixed header (magic, format
/// version, options fingerprint), a string-interning table, then the
/// sections in a fixed order, all integers little-endian fixed-width.
/// deserialize() is corruption-tolerant: truncated, oversized, or
/// inconsistent input yields `false` and an error message, never a
/// crash or an out-of-bounds read (the cache maps that to a miss).
/// Version-1 blobs are still read (FormatVersion records which reader
/// ran); version-1 snapshots lack the v2-only sections.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_SERIALIZE_H
#define MCPTA_SERVE_SERIALIZE_H

#include "incr/Fingerprint.h"
#include "pointsto/Analyzer.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcpta {
namespace serve {

/// One abstract location, flattened. Index in ResultSnapshot::Locations
/// equals the canonical id (dense, sorted by structural key).
struct LocationRecord {
  uint32_t Id = 0;
  uint8_t EntityKind = 0; ///< pta::Entity::Kind
  uint8_t Summary = 0;    ///< Location::isSummary()
  uint8_t Collapsed = 0;  ///< k-limit folded entity
  uint32_t SymbolicLevel = 0;
  std::string Name;  ///< display name, e.g. "x", "s.next", "2_x"
  std::string Owner; ///< owning function, "" for globals/program-wide

  /// v2 structural identity (defaults for v1-loaded snapshots):
  std::string RootName; ///< root entity display name
  /// For frame Variable roots: index into the owner's params+locals
  /// list; -1 for globals and non-variable roots. Disambiguates
  /// shadowed same-name locals.
  int32_t LocalIndex = -1;
  /// For Symbolic roots: canonical id of the parent location the
  /// entity's dereference stands for; -1 otherwise. May be larger than
  /// Id (canonical order is not topological).
  int32_t SymParent = -1;
  uint32_t StringId = 0; ///< for String roots: simple::Program literal id
  /// Access path: PathElem kinds (0=Field, 1=Head, 2=Tail) with the
  /// qualified "Record::field" names of the Field elements, in order
  /// (qualified because same-named fields of different records are
  /// distinct path elements).
  std::vector<uint8_t> PathKinds;
  std::vector<std::string> FieldNames;

  bool operator==(const LocationRecord &O) const {
    return Id == O.Id && EntityKind == O.EntityKind && Summary == O.Summary &&
           Collapsed == O.Collapsed && SymbolicLevel == O.SymbolicLevel &&
           Name == O.Name && Owner == O.Owner && RootName == O.RootName &&
           LocalIndex == O.LocalIndex && SymParent == O.SymParent &&
           StringId == O.StringId && PathKinds == O.PathKinds &&
           FieldNames == O.FieldNames;
  }
};

/// One points-to relationship (x, y, D|P) over canonical location ids.
struct Triple {
  uint32_t Src = 0;
  uint32_t Dst = 0;
  uint8_t Definite = 0; ///< 1 = D, 0 = P

  bool operator==(const Triple &O) const {
    return Src == O.Src && Dst == O.Dst && Definite == O.Definite;
  }
};

/// The merged input points-to set recorded at one statement.
struct StmtSetRecord {
  uint32_t StmtId = 0;
  std::vector<Triple> Triples;

  bool operator==(const StmtSetRecord &O) const {
    return StmtId == O.StmtId && Triples == O.Triples;
  }
};

/// One invocation-graph node in preorder. Parent/RecEdge are preorder
/// indices (-1 for none); preorder preserves child order, so the graph
/// shape reconstructs exactly.
struct IGNodeRecord {
  std::string Function;
  uint8_t Kind = 0; ///< pta::IGNode::Kind
  uint32_t CallSiteId = 0;
  int32_t Parent = -1;
  int32_t RecEdge = -1;
  /// Body-evaluation episodes (v2; 0 in v1-loaded snapshots). The
  /// incremental engine only trusts a node as a subtree-graft donor
  /// when it evaluated exactly once.
  uint32_t EvalCount = 0;
  uint8_t HasInput = 0;
  uint8_t HasOutput = 0;
  std::vector<Triple> Input;  ///< memoized IN, when stored
  std::vector<Triple> Output; ///< memoized OUT, when stored

  bool operator==(const IGNodeRecord &O) const {
    return Function == O.Function && Kind == O.Kind &&
           CallSiteId == O.CallSiteId && Parent == O.Parent &&
           RecEdge == O.RecEdge && EvalCount == O.EvalCount &&
           HasInput == O.HasInput && HasOutput == O.HasOutput &&
           Input == O.Input && Output == O.Output;
  }
};

/// One budget-triggered degradation (support::Degradation, flattened).
struct DegradationRecord {
  uint8_t Kind = 0; ///< support::LimitKind
  std::string Context;
  std::string Action;

  bool operator==(const DegradationRecord &O) const {
    return Kind == O.Kind && Context == O.Context && Action == O.Action;
  }
};

/// Everything one analysis run produced, self-contained.
struct ResultSnapshot {
  /// Which format revision this snapshot came from: the current
  /// version for capture(), the blob's header version for
  /// deserialize(). v1-loaded snapshots lack EvalCount, the structural
  /// location fields, WarningsByFn, and Meta.
  uint32_t FormatVersion = 0;
  /// Fingerprint of the Analyzer options + limits that produced this
  /// result (optionsFingerprint below); stored in the blob header so a
  /// loaded result is attributable.
  std::string OptionsFingerprint;
  uint8_t Analyzed = 0;
  uint32_t NumStmts = 0;

  std::vector<LocationRecord> Locations;
  uint8_t HasMainOut = 0;
  std::vector<Triple> MainOut; ///< sorted by (Src, Dst)
  std::vector<StmtSetRecord> StmtIn;
  std::vector<IGNodeRecord> IG;
  std::vector<DegradationRecord> Degradations;
  /// Sorted and deduplicated in v2 captures (v1 blobs preserved their
  /// emission order).
  std::vector<std::string> Warnings;
  /// v2: every warning message keyed by the emitting function ("" for
  /// warnings raised outside any body). Values sorted, deduplicated.
  std::map<std::string, std::vector<std::string>> WarningsByFn;

  /// v2: per-function fingerprints and dependency metadata.
  incr::ProgramMeta Meta;

  /// Client outputs: canonical "(a,b)" alias pairs over MainOut
  /// (clients::aliasPairs, sorted), and per-function read/write
  /// location-name sets (clients::ReadWriteSets, sorted).
  std::vector<std::pair<std::string, std::string>> AliasPairs;
  std::map<std::string, std::vector<std::string>> Reads;
  std::map<std::string, std::vector<std::string>> Writes;

  bool degraded() const { return !Degradations.empty(); }

  /// Flattens a live result. \p Prog must be the program \p Res was
  /// computed from (needed for the read/write-set client and the
  /// dependency metadata). Deterministic: two Results with equal
  /// analysis state capture to equal snapshots even when their
  /// LocationTables interned locations in different orders.
  static ResultSnapshot capture(const simple::Program &Prog,
                                const pta::Analyzer::Result &Res,
                                std::string OptionsFingerprint);

  //===--------------------------------------------------------------------===//
  // Queries (what the serve daemon answers without re-analysis)
  //===--------------------------------------------------------------------===//

  /// Location id for a display name; -1 when unknown.
  int64_t locationIdByName(std::string_view Name) const;

  /// Points-to targets of \p Name as (target name, definite) pairs, read
  /// from the end-of-main set, or from the merged per-statement input
  /// set when \p StmtId >= 0.
  std::vector<std::pair<std::string, bool>>
  pointsToTargets(std::string_view Name, int64_t StmtId = -1) const;

  /// True when the canonical alias pair (A,B) (either order) is present.
  bool aliased(const std::string &A, const std::string &B) const;

  bool operator==(const ResultSnapshot &O) const;
  bool operator!=(const ResultSnapshot &O) const { return !(*this == O); }
};

/// Position of every parameter and IR local in its function's
/// params+locals concatenation — the LocalIndex vocabulary of v2
/// location records. Exposed for the incremental engine.
std::map<const cfront::VarDecl *, int32_t>
localIndexMap(const simple::Program &Prog);

/// Computes the structural key of live locations — the canonical sort
/// key of capture(). The incremental engine matches baseline location
/// records against live locations by recomputing identical keys from
/// the serialized structural fields, so key construction must stay in
/// lockstep with the LocationRecord layout. Memoizing; one instance per
/// (LocationTable, program) pair.
class StructuralKeys {
public:
  explicit StructuralKeys(std::map<const cfront::VarDecl *, int32_t> LocalIdx)
      : LocalIdx(std::move(LocalIdx)) {}

  const std::string &key(const pta::Location *L);

private:
  std::string rootKey(const pta::Entity *E);

  std::map<const cfront::VarDecl *, int32_t> LocalIdx;
  std::map<const pta::Location *, std::string> Memo;
};

/// Stable fingerprint of every analyzer knob that can change the result:
/// Options (fnptr mode, context sensitivity, stmt-set recording, k-limit,
/// loop cap) and AnalysisLimits (all five budgets). Two runs with equal
/// fingerprints over equal sources produce equal results, so the
/// fingerprint is a summary-cache key component.
std::string optionsFingerprint(const pta::Analyzer::Options &Opts);

/// Serializes to the mcpta-result-v3 binary format. Deterministic:
/// equal snapshots yield equal bytes.
std::string serialize(const ResultSnapshot &S);

/// Parses a blob produced by serialize(), current or version-1 format.
/// Returns false with an error message on any malformed input (wrong
/// magic, unknown format version, truncation, out-of-range indices);
/// never throws or crashes.
bool deserialize(std::string_view Blob, ResultSnapshot &Out,
                 std::string &Error);

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_SERIALIZE_H
