//===- SummaryCache.h - Persistent analysis-result cache --------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve-from-cache layer: a content-addressed store of serialized
/// analysis results (mcpta-result-v3 blobs, see Serialize.h) with two
/// tiers — a bounded in-memory LRU of deserialized snapshots, and an
/// on-disk blob directory that survives process restarts.
///
/// The key is a hash of everything that determines the result:
///
///   key = H(format version ⊕ options fingerprint ⊕ source bytes)
///
/// so byte-identical re-analyses hit, any change to the source, the
/// AnalysisOptions, the AnalysisLimits, or the blob layout misses, and
/// stale blobs from older format versions are simply never addressed
/// (no migration logic needed). The store is corruption-tolerant by
/// contract: a truncated or bit-flipped blob deserializes to an error,
/// which lookup() converts into a miss plus a warning — a poisoned
/// cache can cost time, never correctness or a crash.
///
/// Telemetry: hits/misses/evictions/stored-bytes are kept in a local
/// Stats block and mirrored to `cache.*` counters when a Telemetry sink
/// is attached (see docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_SUMMARYCACHE_H
#define MCPTA_SERVE_SUMMARYCACHE_H

#include "serve/Serialize.h"
#include "support/FlightRecorder.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace mcpta {
namespace serve {

class SummaryCache {
public:
  struct Config {
    /// Blob directory. Empty disables the disk tier (memory-only LRU).
    /// Created on first store if missing.
    std::string Dir;
    /// In-memory LRU bounds: entry count and total serialized bytes.
    /// Whichever trips first evicts the least recently used snapshot
    /// (its disk blob, if any, stays).
    size_t MaxMemEntries = 64;
    uint64_t MaxMemBytes = 64 * 1024 * 1024;
  };

  struct Stats {
    uint64_t Hits = 0;       ///< lookups answered (memory or disk)
    uint64_t MemHits = 0;    ///< subset of Hits answered from the LRU
    uint64_t Misses = 0;     ///< lookups that found nothing usable
    uint64_t Evictions = 0;  ///< LRU entries dropped to respect bounds
    uint64_t BytesStored = 0;///< cumulative serialized bytes written
    uint64_t MemBytes = 0;   ///< current LRU footprint (serialized size)
    uint64_t MemEntries = 0; ///< current LRU entry count
    uint64_t BadBlobs = 0;   ///< corrupt disk blobs tolerated as misses
  };

  /// \p Telem may be null; when set, cache.{hits,misses,evictions,
  /// bytes,bad_blobs} counters mirror the Stats increments.
  explicit SummaryCache(Config C, support::Telemetry *Telem = nullptr);

  /// Attaches a flight recorder; cache hits/misses/evictions/bad blobs
  /// and stores then leave structured events attributed to the
  /// correlation id of the request driving the operation (see the
  /// RequestScope parameters below). May be null (the default).
  void setFlightRecorder(support::FlightRecorder *FR) { Recorder = FR; }

  /// Per-request attribution for one cache operation: when \p Telem is
  /// set, counters go to it *instead of* the construction-time
  /// aggregate sink (the caller is expected to fold the request scope
  /// into the aggregate via Telemetry::mergeFrom, as the serve daemon
  /// does — writing both would double-count), and flight-recorder
  /// events carry \p Cid. Both optional.
  struct RequestScope {
    support::Telemetry *Telem;
    std::string_view Cid;
    // Explicit constructors (not default member initializers): the
    // default argument `RequestScope()` below would otherwise need the
    // initializers before this enclosing class is complete.
    RequestScope() : Telem(nullptr), Cid() {}
    RequestScope(support::Telemetry *T, std::string_view C)
        : Telem(T), Cid(C) {}
  };

  /// The content address for one (source, options) pair under the
  /// current result-format version. 32 hex characters.
  static std::string key(std::string_view Source,
                         const pta::Analyzer::Options &Opts);
  static std::string key(std::string_view Source,
                         std::string_view OptionsFingerprint);

  /// Returns the cached snapshot for \p Key, consulting the LRU first
  /// and the disk tier second (a disk hit repopulates the LRU). Returns
  /// null on a miss. A corrupt disk blob counts as a miss; the
  /// diagnostic lands in \p Warning when the caller passes one.
  std::shared_ptr<const ResultSnapshot> lookup(const std::string &Key,
                                               std::string *Warning = nullptr,
                                               RequestScope Req = RequestScope());

  /// Serializes \p Snapshot, stores the blob under \p Key in both tiers
  /// (disk write is atomic: temp file + rename), and returns the shared
  /// snapshot. Disk-tier failures degrade to memory-only with a warning.
  std::shared_ptr<const ResultSnapshot>
  store(const std::string &Key, ResultSnapshot Snapshot,
        std::string *Warning = nullptr, RequestScope Req = RequestScope());

  /// Drops every entry: the whole LRU, and every *.mcpta blob in the
  /// disk directory. Returns the number of disk blobs removed.
  uint64_t invalidate();

  const Stats &stats() const { return S; }
  const Config &config() const { return Cfg; }

private:
  struct Entry {
    std::shared_ptr<const ResultSnapshot> Snapshot;
    uint64_t Bytes = 0; ///< serialized size (the LRU's byte accounting)
    std::list<std::string>::iterator LruIt;
  };

  std::string blobPath(const std::string &Key) const;
  void insertMem(const std::string &Key,
                 std::shared_ptr<const ResultSnapshot> Snap, uint64_t Bytes,
                 const RequestScope &Req);
  void touch(Entry &E, const std::string &Key);
  void evictToFit(const RequestScope &Req);
  void bump(const char *Name, uint64_t Delta = 1,
            const RequestScope &Req = RequestScope());
  void event(std::string_view Kind, const RequestScope &Req,
             std::string_view Detail);

  Config Cfg;
  support::Telemetry *Telem;
  support::FlightRecorder *Recorder = nullptr;
  Stats S;
  /// LRU list front = most recent. Map values hold list iterators.
  std::list<std::string> Lru;
  std::map<std::string, Entry> Mem;
};

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_SUMMARYCACHE_H
