//===- SummaryCache.h - Persistent analysis-result cache --------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve-from-cache layer: a content-addressed store of serialized
/// analysis results (mcpta-result-v3 blobs, see Serialize.h) with two
/// tiers — a bounded in-memory LRU of deserialized snapshots, and an
/// on-disk blob directory that survives process restarts.
///
/// The key is a hash of everything that determines the result:
///
///   key = H(format version ⊕ options fingerprint ⊕ source bytes)
///
/// so byte-identical re-analyses hit, any change to the source, the
/// AnalysisOptions, the AnalysisLimits, or the blob layout misses, and
/// stale blobs from older format versions are simply never addressed
/// (no migration logic needed). The store is corruption-tolerant by
/// contract: a truncated or bit-flipped blob deserializes to an error,
/// which lookup() converts into a miss plus a warning — a poisoned
/// cache can cost time, never correctness or a crash. The corrupt blob
/// is quarantined (renamed to `<key>.mcpta.bad`) and the key
/// negative-cached so it is reported once, not on every request; a
/// store under the same key republishes it. Disk writes retry with
/// bounded, jittered backoff before degrading to memory-only.
///
/// Thread-safe, with striped locking: the entry map and negative cache
/// are split into NumShards shards keyed by the content hash, each
/// behind its own mutex, so lookups for different keys never contend.
/// Recency is a per-entry stamp from a global monotonic clock rather
/// than a shared intrusive list — eviction selects the globally
/// smallest stamp, which preserves *exact* LRU order (identical to the
/// old single-list implementation) while keeping the hot hit path
/// shard-local. Serialization, disk reads/writes, and the write-retry
/// backoff all run outside every lock; only the map mutations are
/// covered.
///
/// Telemetry: hits/misses/evictions/stored-bytes are kept in a local
/// Stats block (atomic counters) and mirrored to `cache.*` counters
/// when a Telemetry sink is attached (see docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_SUMMARYCACHE_H
#define MCPTA_SERVE_SUMMARYCACHE_H

#include "serve/Serialize.h"
#include "support/FlightRecorder.h"
#include "support/Telemetry.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace mcpta {
namespace support {
class FaultInjection;
} // namespace support

namespace serve {

class SummaryCache {
public:
  struct Config {
    /// Blob directory. Empty disables the disk tier (memory-only LRU).
    /// Created on first store if missing.
    std::string Dir;
    /// In-memory LRU bounds: entry count and total serialized bytes.
    /// Whichever trips first evicts the least recently used snapshot
    /// (its disk blob, if any, stays).
    size_t MaxMemEntries = 64;
    uint64_t MaxMemBytes = 64 * 1024 * 1024;
  };

  struct Stats {
    uint64_t Hits = 0;       ///< lookups answered (memory or disk)
    uint64_t MemHits = 0;    ///< subset of Hits answered from the LRU
    uint64_t Misses = 0;     ///< lookups that found nothing usable
    uint64_t Evictions = 0;  ///< LRU entries dropped to respect bounds
    uint64_t BytesStored = 0;///< cumulative serialized bytes written
    uint64_t MemBytes = 0;   ///< current LRU footprint (serialized size)
    uint64_t MemEntries = 0; ///< current LRU entry count
    uint64_t BadBlobs = 0;   ///< corrupt disk blobs tolerated as misses
    uint64_t Quarantined = 0;  ///< corrupt blobs renamed aside + negative-cached
    uint64_t WriteRetries = 0; ///< disk-write attempts beyond the first
    uint64_t ReadIoErrors = 0; ///< disk reads that failed mid-blob
  };

  /// \p Telem may be null; when set, cache.{hits,misses,evictions,
  /// bytes,bad_blobs} counters mirror the Stats increments.
  explicit SummaryCache(Config C, support::Telemetry *Telem = nullptr);

  /// Attaches a flight recorder; cache hits/misses/evictions/bad blobs
  /// and stores then leave structured events attributed to the
  /// correlation id of the request driving the operation (see the
  /// RequestScope parameters below). May be null (the default).
  void setFlightRecorder(support::FlightRecorder *FR) { Recorder = FR; }

  /// Attaches a fault-injection registry consulted by every disk
  /// operation (points cache.read_io / cache.write_io / cache.corrupt,
  /// see support/FaultInjection.h). May be null (the default). A
  /// request-scoped registry in RequestScope::Faults takes precedence
  /// for the operations of that request.
  void setFaultInjection(support::FaultInjection *FI) { Faults = FI; }

  /// Per-request attribution for one cache operation: when \p Telem is
  /// set, counters go to it *instead of* the construction-time
  /// aggregate sink (the caller is expected to fold the request scope
  /// into the aggregate via Telemetry::mergeFrom, as the serve daemon
  /// does — writing both would double-count), and flight-recorder
  /// events carry \p Cid. Both optional.
  struct RequestScope {
    support::Telemetry *Telem;
    std::string_view Cid;
    /// Request-local fault injection (per-request "fault" member in
    /// tests); consulted before the cache-wide registry.
    support::FaultInjection *Faults;
    // Explicit constructors (not default member initializers): the
    // default argument `RequestScope()` below would otherwise need the
    // initializers before this enclosing class is complete.
    RequestScope() : Telem(nullptr), Cid(), Faults(nullptr) {}
    RequestScope(support::Telemetry *T, std::string_view C,
                 support::FaultInjection *F = nullptr)
        : Telem(T), Cid(C), Faults(F) {}
  };

  /// The content address for one (source, options) pair under the
  /// current result-format version. 32 hex characters.
  static std::string key(std::string_view Source,
                         const pta::Analyzer::Options &Opts);
  static std::string key(std::string_view Source,
                         std::string_view OptionsFingerprint);

  /// Returns the cached snapshot for \p Key, consulting the LRU first
  /// and the disk tier second (a disk hit repopulates the LRU). Returns
  /// null on a miss. A corrupt disk blob counts as a miss; the
  /// diagnostic lands in \p Warning when the caller passes one.
  std::shared_ptr<const ResultSnapshot> lookup(const std::string &Key,
                                               std::string *Warning = nullptr,
                                               RequestScope Req = RequestScope());

  /// Serializes \p Snapshot, stores the blob under \p Key in both tiers
  /// (disk write is atomic: temp file + rename), and returns the shared
  /// snapshot. Disk-tier failures degrade to memory-only with a warning.
  std::shared_ptr<const ResultSnapshot>
  store(const std::string &Key, ResultSnapshot Snapshot,
        std::string *Warning = nullptr, RequestScope Req = RequestScope());

  /// Drops every entry: the whole LRU, every *.mcpta blob in the disk
  /// directory, every quarantined *.bad carcass, and the negative
  /// cache. Returns the number of disk blobs removed.
  uint64_t invalidate();

  /// Copy of the counters. Each counter is individually coherent
  /// (atomic); at quiescence the copy is exact.
  Stats stats() const {
    Stats Out;
    Out.Hits = S.Hits.load(std::memory_order_relaxed);
    Out.MemHits = S.MemHits.load(std::memory_order_relaxed);
    Out.Misses = S.Misses.load(std::memory_order_relaxed);
    Out.Evictions = S.Evictions.load(std::memory_order_relaxed);
    Out.BytesStored = S.BytesStored.load(std::memory_order_relaxed);
    Out.MemBytes = S.MemBytes.load(std::memory_order_relaxed);
    Out.MemEntries = S.MemEntries.load(std::memory_order_relaxed);
    Out.BadBlobs = S.BadBlobs.load(std::memory_order_relaxed);
    Out.Quarantined = S.Quarantined.load(std::memory_order_relaxed);
    Out.WriteRetries = S.WriteRetries.load(std::memory_order_relaxed);
    Out.ReadIoErrors = S.ReadIoErrors.load(std::memory_order_relaxed);
    return Out;
  }
  const Config &config() const { return Cfg; }

private:
  struct Entry {
    std::shared_ptr<const ResultSnapshot> Snapshot;
    uint64_t Bytes = 0; ///< serialized size (the LRU's byte accounting)
    /// Global recency stamp from Clock; larger = more recently used.
    /// Eviction removes the entry with the smallest stamp cache-wide,
    /// which is exactly the least recently used one.
    uint64_t Stamp = 0;
  };

  /// One lock stripe: a slice of the entry map plus the matching slice
  /// of the negative cache, both guarded by the shard mutex. Keys land
  /// in a shard by content-hash, so the hit path for distinct keys is
  /// contention-free. Padded to a cache line to avoid false sharing.
  static constexpr unsigned NumShards = 16;
  struct Shard {
    alignas(64) mutable std::mutex Mu;
    std::map<std::string, Entry> Mem;
    /// Negative cache of quarantined keys: a corrupt blob is reported
    /// once, then reads skip the disk until a store republishes it.
    std::set<std::string> Quarantined;
  };

  Shard &shardFor(const std::string &Key) {
    return Shards[std::hash<std::string>{}(Key) % NumShards];
  }
  uint64_t nextStamp() { return Clock.fetch_add(1, std::memory_order_relaxed) + 1; }

  std::string blobPath(const std::string &Key) const;
  /// Inserts (or replaces) the entry in its shard, then evicts to the
  /// configured bounds. Takes the shard lock internally.
  void insertMem(const std::string &Key,
                 std::shared_ptr<const ResultSnapshot> Snap, uint64_t Bytes,
                 const RequestScope &Req);
  /// Evicts globally-least-recently-used entries until the bounds hold.
  /// Serialized on EvictMu; takes shard locks one at a time (never two
  /// at once — lock order is EvictMu, then a single Shard::Mu).
  void evictToFit(const RequestScope &Req);
  void bump(const char *Name, uint64_t Delta = 1,
            const RequestScope &Req = RequestScope());
  void event(std::string_view Kind, const RequestScope &Req,
             std::string_view Detail);
  /// The fault registry for one operation: request-local first, then
  /// the cache-wide one. Null when neither is attached.
  support::FaultInjection *faults(const RequestScope &Req) const;
  /// Moves the corrupt blob aside (rename to <key>.mcpta.bad, delete on
  /// rename failure) and negative-caches the key. Takes the shard lock
  /// for the negative-cache insert; the rename runs outside it.
  void quarantineBlob(const std::string &Key, const RequestScope &Req);

  Config Cfg;
  support::Telemetry *Telem;
  support::FlightRecorder *Recorder = nullptr;
  support::FaultInjection *Faults = nullptr;

  /// Counters are atomics so shards update them without a global lock.
  struct Counters {
    std::atomic<uint64_t> Hits{0}, MemHits{0}, Misses{0}, Evictions{0},
        BytesStored{0}, MemBytes{0}, MemEntries{0}, BadBlobs{0},
        Quarantined{0}, WriteRetries{0}, ReadIoErrors{0};
  };
  Counters S;
  /// Monotonic recency clock; every hit/insert stamps the entry.
  std::atomic<uint64_t> Clock{0};
  /// Disambiguates temp-file names of concurrent stores in one process.
  std::atomic<uint64_t> TmpSeq{0};
  /// Serializes evictions (and invalidate) so two threads never race to
  /// pick victims; individual shard operations do not take it.
  std::mutex EvictMu;
  std::array<Shard, NumShards> Shards;
};

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_SUMMARYCACHE_H
