//===- Server.h - Long-lived NDJSON query daemon ----------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pta-serve` daemon behind `pta-tool --serve`: a long-lived
/// request/response loop speaking NDJSON (one JSON object per line)
/// over an istream/ostream pair — stdin/stdout in production, string
/// streams in tests.
///
/// Methods: `analyze`, `alias`, `points_to`, `read_write_sets`,
/// `stats`, `invalidate`, `shutdown` (schemas in docs/SERVING.md).
/// Every `analyze` consults the SummaryCache before running the
/// pipeline; query methods are answered from cached ResultSnapshots
/// without touching the analyzer at all. An `analyze` request carrying
/// `"incremental": true` re-analyzes against the previous result with
/// the same options fingerprint through the IncrementalEngine
/// (docs/INCREMENTAL.md) instead of running from scratch. Per-request AnalysisOptions
/// and AnalysisLimits override the server defaults and ride on the
/// existing governance layer, so one hostile request degrades soundly
/// instead of stalling the daemon.
///
/// Every response carries `{id, ok, degraded, cached, elapsed_ms}`.
/// Malformed input — bad JSON, unknown method, missing parameters —
/// produces an `ok:false` response and the loop continues; nothing a
/// client sends terminates the server except `shutdown` (or EOF).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_SERVER_H
#define MCPTA_SERVE_SERVER_H

#include "serve/SummaryCache.h"

#include <chrono>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>

namespace mcpta {
namespace serve {

class JsonValue;

class Server {
public:
  struct Config {
    SummaryCache::Config Cache;
    /// Defaults for analyze requests; per-request "options"/"limits"
    /// members override individual fields.
    pta::Analyzer::Options DefaultOpts;
  };

  explicit Server(Config C);
  ~Server();

  /// Serves until `shutdown` or EOF on \p In. Responses (one line each)
  /// go to \p Out; operational log lines (startup banner, deduplicated
  /// degradation warnings) go to \p Log. Returns the process exit code
  /// (0 on orderly shutdown/EOF).
  int run(std::istream &In, std::ostream &Out, std::ostream &Log);

  /// Handles one request line and returns the response line (no
  /// trailing newline). Exposed for in-process tests; sets
  /// \p WantShutdown on a `shutdown` request.
  std::string handleLine(const std::string &Line, bool &WantShutdown,
                         std::ostream &Log);

  const SummaryCache &cache() const { return *Cache; }
  support::Telemetry &telemetry() { return *Telem; }

private:
  struct Response;

  void handleAnalyze(const JsonValue &Req, Response &Resp, std::ostream &Log);
  void handleAlias(const JsonValue &Req, Response &Resp);
  void handlePointsTo(const JsonValue &Req, Response &Resp);
  void handleReadWriteSets(const JsonValue &Req, Response &Resp);
  void handleStats(Response &Resp);
  void handleInvalidate(Response &Resp);

  /// Resolves the snapshot a query method addresses: the request's
  /// "key" member, or the most recently analyzed result. Null plus an
  /// error message when neither resolves.
  std::shared_ptr<const ResultSnapshot> querySnapshot(const JsonValue &Req,
                                                      std::string &Error);

  Config Cfg;
  std::unique_ptr<support::Telemetry> Telem;
  std::unique_ptr<SummaryCache> Cache;
  std::string LastKey;
  std::shared_ptr<const ResultSnapshot> LastSnapshot;
  /// Construction time, for the `stats` uptime_ms member.
  std::chrono::steady_clock::time_point StartTime;
  /// Most recent snapshot per options fingerprint: the baseline an
  /// `analyze {"incremental": true}` request re-analyzes against. Keyed
  /// by fingerprint (not cache key) because an edited source hashes to
  /// a different key — the baseline is the previous result computed
  /// under the *same options*, whatever its source was.
  std::map<std::string, std::shared_ptr<const ResultSnapshot>>
      BaselineByFingerprint;
  /// Degradation warnings already logged, keyed by (kind, context), so
  /// sustained budget pressure cannot flood the daemon log.
  std::set<std::string> LoggedDegradations;
};

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_SERVER_H
