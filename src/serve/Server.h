//===- Server.h - Long-lived NDJSON query daemon ----------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pta-serve` daemon behind `pta-tool --serve`: a long-lived
/// request/response loop speaking NDJSON (one JSON object per line)
/// over an istream/ostream pair — stdin/stdout in production, string
/// streams in tests.
///
/// Methods: `analyze`, `alias`, `points_to`, `read_write_sets`,
/// `stats`, `events`, `invalidate`, `shutdown` (schemas in
/// docs/SERVING.md). Every `analyze` consults the SummaryCache before
/// running the pipeline; query methods are answered from cached
/// ResultSnapshots without touching the analyzer at all. An `analyze`
/// request carrying `"incremental": true` re-analyzes against the
/// previous result with the same options fingerprint through the
/// IncrementalEngine (docs/INCREMENTAL.md) instead of running from
/// scratch. Per-request AnalysisOptions and AnalysisLimits override the
/// server defaults and ride on the existing governance layer, so one
/// hostile request degrades soundly instead of stalling the daemon.
///
/// Every response carries `{id, ok, degraded, cached, elapsed_ms, cid}`.
/// Malformed input — bad JSON, unknown method, missing parameters —
/// produces an `ok:false` response and the loop continues; nothing a
/// client sends terminates the server except `shutdown` (or EOF).
///
/// Observability: each request runs against a request-scoped child
/// Telemetry carrying a correlation id (client-supplied `"cid"` or a
/// generated `r<seq>`), threaded through the cache, the incremental
/// engine, and the analyzer, then merged into the daemon aggregate when
/// the request completes. A request with `"trace": true` gets its own
/// Chrome-trace fragment back in the response. Per-method latency
/// recorders feed `serve.latency.<method>.*` quantiles, and a bounded
/// FlightRecorder keeps the recent event history (`events` method;
/// dumped to the log on shutdown). `handleLine` is safe to call from
/// multiple threads: shared daemon state is mutex-guarded and the
/// telemetry core is lock-free on its hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_SERVER_H
#define MCPTA_SERVE_SERVER_H

#include "serve/SummaryCache.h"
#include "support/FlightRecorder.h"

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace mcpta {
namespace serve {

class JsonValue;

class Server {
public:
  struct Config {
    SummaryCache::Config Cache;
    /// Defaults for analyze requests; per-request "options"/"limits"
    /// members override individual fields.
    pta::Analyzer::Options DefaultOpts;
    /// Flight-recorder ring capacity (most recent events retained).
    size_t FlightRecorderCapacity = support::FlightRecorder::kDefaultCapacity;
  };

  explicit Server(Config C);
  ~Server();

  /// Serves until `shutdown` or EOF on \p In. Responses (one line each)
  /// go to \p Out; operational log lines (startup banner, deduplicated
  /// degradation warnings, the shutdown flight-recorder dump) go to
  /// \p Log. Returns the process exit code (0 on orderly shutdown/EOF).
  int run(std::istream &In, std::ostream &Out, std::ostream &Log);

  /// Handles one request line and returns the response line (no
  /// trailing newline). Exposed for in-process tests; sets
  /// \p WantShutdown on a `shutdown` request. Safe to call from
  /// multiple threads concurrently.
  std::string handleLine(const std::string &Line, bool &WantShutdown,
                         std::ostream &Log);

  const SummaryCache &cache() const { return *Cache; }
  support::Telemetry &telemetry() { return *Telem; }
  support::FlightRecorder &flightRecorder() { return *Recorder; }

private:
  struct Response;
  /// Request-scoped observability context: the correlation id and the
  /// child Telemetry this request's counters land in before merging
  /// into the daemon aggregate.
  struct RequestCtx {
    std::string Cid;
    support::Telemetry *Telem = nullptr;
  };

  void handleAnalyze(const JsonValue &Req, Response &Resp, std::ostream &Log,
                     const RequestCtx &Ctx);
  void handleAlias(const JsonValue &Req, Response &Resp,
                   const RequestCtx &Ctx);
  void handlePointsTo(const JsonValue &Req, Response &Resp,
                      const RequestCtx &Ctx);
  void handleReadWriteSets(const JsonValue &Req, Response &Resp,
                           const RequestCtx &Ctx);
  void handleStats(Response &Resp);
  void handleEvents(const JsonValue &Req, Response &Resp);
  void handleInvalidate(Response &Resp);

  /// Resolves the snapshot a query method addresses: the request's
  /// "key" member, or the most recently analyzed result. Null plus an
  /// error message when neither resolves. Caller must hold StateMu.
  std::shared_ptr<const ResultSnapshot> querySnapshot(const JsonValue &Req,
                                                      std::string &Error,
                                                      const RequestCtx &Ctx);

  Config Cfg;
  std::unique_ptr<support::Telemetry> Telem;
  std::unique_ptr<support::FlightRecorder> Recorder;
  std::unique_ptr<SummaryCache> Cache;
  /// Construction time, for the `stats` uptime_ms member.
  std::chrono::steady_clock::time_point StartTime;
  /// Monotone request sequence, source of generated correlation ids.
  std::atomic<uint64_t> RequestSeq{0};

  /// Guards the mutable daemon state below plus the SummaryCache (which
  /// is not internally synchronized). The telemetry core and the flight
  /// recorder have their own synchronization and are NOT covered.
  std::mutex StateMu;
  std::string LastKey;
  std::shared_ptr<const ResultSnapshot> LastSnapshot;
  /// Most recent snapshot per options fingerprint: the baseline an
  /// `analyze {"incremental": true}` request re-analyzes against. Keyed
  /// by fingerprint (not cache key) because an edited source hashes to
  /// a different key — the baseline is the previous result computed
  /// under the *same options*, whatever its source was.
  std::map<std::string, std::shared_ptr<const ResultSnapshot>>
      BaselineByFingerprint;
  /// Degradation warnings already logged, keyed by (kind, context), so
  /// sustained budget pressure cannot flood the daemon log.
  std::set<std::string> LoggedDegradations;
};

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_SERVER_H
