//===- Server.h - Long-lived NDJSON query daemon ----------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pta-serve` daemon behind `pta-tool --serve`: a long-lived
/// request/response loop speaking NDJSON (one JSON object per line)
/// over an istream/ostream pair — stdin/stdout in production, string
/// streams in tests.
///
/// Methods: `analyze`, `alias`, `points_to`, `read_write_sets`,
/// `stats`, `events`, `invalidate`, `shutdown` (schemas in
/// docs/SERVING.md). Every `analyze` consults the SummaryCache before
/// running the pipeline; query methods are answered from cached
/// ResultSnapshots without touching the analyzer at all — unless the
/// request selects `"strategy": "demand"` (or the admission ladder
/// picks it automatically under load), in which case `alias` /
/// `points_to` run the demand-driven engine (src/demand/,
/// docs/DEMAND.md) over the last analyzed source and answer from a
/// liveness-pruned analysis, falling back to exhaustive with a
/// recorded reason. An `analyze`
/// request carrying `"incremental": true` re-analyzes against the
/// previous result with the same options fingerprint through the
/// IncrementalEngine (docs/INCREMENTAL.md) instead of running from
/// scratch. Per-request AnalysisOptions and AnalysisLimits override the
/// server defaults and ride on the existing governance layer, so one
/// hostile request degrades soundly instead of stalling the daemon.
///
/// Every response carries `{id, ok, degraded, cached, elapsed_ms, cid}`.
/// Malformed input — bad JSON, unknown method, missing parameters —
/// produces an `ok:false` response and the loop continues; nothing a
/// client sends terminates the server except `shutdown` (or EOF).
///
/// Observability: each request runs against a request-scoped child
/// Telemetry carrying a correlation id (client-supplied `"cid"` or a
/// generated `r<seq>`), threaded through the cache, the incremental
/// engine, and the analyzer, then merged into the daemon aggregate when
/// the request completes. A request with `"trace": true` gets its own
/// Chrome-trace fragment back in the response. Per-method latency
/// recorders feed `serve.latency.<method>.*` quantiles, and a bounded
/// FlightRecorder keeps the recent event history (`events` method;
/// dumped to the log on shutdown). `handleLine` is safe to call from
/// multiple threads: shared daemon state is mutex-guarded, analyses run
/// outside any daemon lock, and the telemetry core is lock-free on its
/// hot paths.
///
/// Concurrency (docs/SERVING.md): with `Threads > 1`, run() becomes a
/// reader feeding a bounded RequestQueue drained by a worker pool.
/// Responses may then arrive out of request order — clients correlate
/// by `id`/`cid`, never by line position. The queue is the admission
/// controller: a full queue sheds the request with an `overloaded`
/// error, queue wait tightens the request's deadline budget along a
/// quantized degradation ladder, and a watchdog thread cancels requests
/// that outlive their hard deadline through the existing
/// deadline-degradation path (serve.admission.* / serve.watchdog.*
/// counters). Fault injection (`Config::FaultSpec`, per-request
/// `"fault"`) drives the chaos suite; see support/FaultInjection.h.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_SERVER_H
#define MCPTA_SERVE_SERVER_H

#include "serve/SummaryCache.h"
#include "support/FaultInjection.h"
#include "support/FlightRecorder.h"

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace mcpta {
namespace support {
class ThreadPool;
} // namespace support
namespace serve {

class JsonValue;

class Server {
public:
  struct Config {
    SummaryCache::Config Cache;
    /// Defaults for analyze requests; per-request "options"/"limits"
    /// members override individual fields. DefaultOpts.AnalysisThreads
    /// > 1 makes the daemon own one shared analysis pool
    /// (docs/PARALLEL.md); each analyze request's effective thread
    /// budget composes with the admission ladder — level L gets
    /// max(1, N >> L) threads, so an overloaded daemon sheds
    /// parallelism before it sheds precision.
    pta::Analyzer::Options DefaultOpts;
    /// Flight-recorder ring capacity (most recent events retained).
    size_t FlightRecorderCapacity = support::FlightRecorder::kDefaultCapacity;
    /// Worker threads. 1 keeps the classic sequential loop (responses
    /// in request order); N > 1 runs the reader + bounded queue +
    /// worker pool, and responses may arrive out of order.
    unsigned Threads = 1;
    /// Bounded request-queue capacity (pool mode). A full queue sheds
    /// new requests with an `overloaded` error instead of blocking.
    size_t QueueCap = 128;
    /// Per-request deadline budget in milliseconds (0 = none). Queue
    /// wait counts against it: a request that already waited this long
    /// is shed, and rising queue pressure tightens the analyze
    /// TimeoutMs along the quantized ladder D, D/2, D/4. Also the basis
    /// for the watchdog's hard deadline on requests without their own
    /// timeout.
    uint64_t RequestDeadlineMs = 0;
    /// NDJSON input-line bound; longer lines are consumed and answered
    /// with a protocol error instead of growing the buffer unboundedly.
    size_t MaxLineBytes = 8u << 20;
    /// Watchdog poll interval.
    uint64_t WatchdogPollMs = 10;
    /// Fault-injection spec (support/FaultInjection.h grammar), or "on"
    /// to accept per-request "fault" specs with no server-wide arms.
    /// Empty disables fault injection entirely (per-request "fault" is
    /// then a protocol error).
    std::string FaultSpec;
  };

  /// Admission context a pool worker computes when it dequeues a
  /// request: how long the line waited and how deep the queue is now.
  /// The default (all zero) is a direct call — no queue, no wait.
  struct Admission {
    double QueueWaitMs = 0;
    size_t QueueDepth = 0;
    size_t QueueCap = 0;
  };

  explicit Server(Config C);
  ~Server();

  /// Serves until `shutdown` or EOF on \p In. Responses (one line each)
  /// go to \p Out; operational log lines (startup banner, deduplicated
  /// degradation warnings, the shutdown flight-recorder dump) go to
  /// \p Log. Returns the process exit code (0 on orderly shutdown/EOF).
  int run(std::istream &In, std::ostream &Out, std::ostream &Log);

  /// Handles one request line and returns the response line (no
  /// trailing newline). Exposed for in-process tests; sets
  /// \p WantShutdown on a `shutdown` request. Safe to call from
  /// multiple threads concurrently.
  std::string handleLine(const std::string &Line, bool &WantShutdown,
                         std::ostream &Log);

  /// As above, with the admission context a pool worker carries for a
  /// dequeued request (queue wait, depth). Applies late shedding and
  /// the degradation ladder before dispatch.
  std::string handleLine(const std::string &Line, bool &WantShutdown,
                         std::ostream &Log, const Admission &Adm);

  /// One watchdog pass over the in-flight registry: cancels every
  /// request past its hard deadline. Returns how many were cancelled.
  /// run() drives this from the watchdog thread; exposed so tests can
  /// sweep deterministically.
  size_t watchdogSweep();

  const SummaryCache &cache() const { return *Cache; }
  support::Telemetry &telemetry() { return *Telem; }
  support::FlightRecorder &flightRecorder() { return *Recorder; }
  /// Null unless Config::FaultSpec parsed non-empty.
  support::FaultInjection *faultInjection() { return Faults.get(); }

private:
  struct Response;
  /// Request-scoped observability context: the correlation id and the
  /// child Telemetry this request's counters land in before merging
  /// into the daemon aggregate, plus the admission state (ladder level
  /// from queue pressure) and the per-request fault registry.
  struct RequestCtx {
    std::string Cid;
    support::Telemetry *Telem = nullptr;
    uint64_t Seq = 0;
    /// Degradation-ladder level from admission (0 = untightened).
    unsigned LadderLevel = 0;
    /// Request-local fault injection parsed from a "fault" member, or
    /// null. Takes precedence over the server-wide registry in cache
    /// operations scoped to this request.
    support::FaultInjection *ReqFaults = nullptr;
  };

  /// RAII registration of an analyze request in the watchdog's
  /// in-flight registry.
  class InFlightGuard;

  void handleAnalyze(const JsonValue &Req, Response &Resp, std::ostream &Log,
                     RequestCtx &Ctx);
  void handleAlias(const JsonValue &Req, Response &Resp,
                   const RequestCtx &Ctx);
  void handlePointsTo(const JsonValue &Req, Response &Resp,
                      const RequestCtx &Ctx);
  /// Demand-strategy path shared by alias/points_to (docs/DEMAND.md).
  /// Resolves the query's source (request "source"/"corpus", else the
  /// last analyzed source), runs the DemandEngine, and fills \p Resp
  /// with the answer plus "strategy"/"fallback_reason" members. In auto
  /// mode (\p Explicit = false, entered when admission tightened the
  /// request) an unresolvable source returns false and the caller falls
  /// through to the snapshot path; explicit mode fails the request
  /// instead. Returns true when it produced the response.
  bool handleDemandQuery(const JsonValue &Req, Response &Resp,
                         const RequestCtx &Ctx, bool IsAlias, bool Explicit);
  void handleReadWriteSets(const JsonValue &Req, Response &Resp,
                           const RequestCtx &Ctx);
  void handleStats(Response &Resp);
  void handleEvents(const JsonValue &Req, Response &Resp);
  void handleInvalidate(Response &Resp);

  /// Resolves the snapshot a query method addresses: the request's
  /// "key" member, or the most recently analyzed result. Null plus an
  /// error message when neither resolves. Takes StateMu internally.
  std::shared_ptr<const ResultSnapshot> querySnapshot(const JsonValue &Req,
                                                      std::string &Error,
                                                      const RequestCtx &Ctx);

  /// The classic loop: one line in, one response out, in order.
  int runSequential(std::istream &In, std::ostream &Out, std::ostream &Log);
  /// Reader + bounded queue + worker pool (Cfg.Threads workers).
  int runConcurrent(std::istream &In, std::ostream &Out, std::ostream &Log);
  /// Builds a response for a line the dispatcher never ran: oversized /
  /// non-UTF8 input (\p Kind = "protocol"), a shed request
  /// ("overloaded"), or a post-shutdown arrival ("shutdown"). \p Line
  /// may be null when the raw bytes are not trustworthy enough to parse
  /// for an id echo (oversized input).
  std::string rejectLine(const std::string *Line, const std::string &Msg,
                         const char *Kind);
  /// Registers/deregisters analyze requests for the watchdog.
  void registerInFlight(uint64_t Seq, const std::string &Cid,
                        uint64_t HardDeadlineMs,
                        std::shared_ptr<std::atomic<bool>> Cancel);
  void deregisterInFlight(uint64_t Seq);

  Config Cfg;
  /// The daemon's shared analysis pool (null when
  /// DefaultOpts.AnalysisThreads <= 1). All concurrent analyze requests
  /// with a parallel thread budget submit their fold work here; the
  /// pool's own synchronization makes that safe, and per-request
  /// barriers (StmtInFolder::finish) are request-local, so requests
  /// never wait on each other's work.
  std::unique_ptr<support::ThreadPool> AnalysisPool;
  std::unique_ptr<support::Telemetry> Telem;
  std::unique_ptr<support::FlightRecorder> Recorder;
  std::unique_ptr<SummaryCache> Cache;
  /// Server-wide fault-injection registry (Config::FaultSpec), or null.
  std::unique_ptr<support::FaultInjection> Faults;
  /// Per-request "fault" members are honored (FaultSpec non-empty).
  bool FaultsEnabled = false;
  /// Non-empty when Config::FaultSpec failed to parse; run() refuses to
  /// start and reports it.
  std::string FaultSpecError;
  /// Construction time, for the `stats` uptime_ms member.
  std::chrono::steady_clock::time_point StartTime;
  /// Monotone request sequence, source of generated correlation ids.
  std::atomic<uint64_t> RequestSeq{0};

  /// Watchdog in-flight registry: every analyze currently running, with
  /// the cancel flag its BudgetMeter polls (AnalysisLimits::CancelFlag).
  struct InFlight {
    std::string Cid;
    std::chrono::steady_clock::time_point Start;
    uint64_t HardDeadlineMs = 0;
    std::shared_ptr<std::atomic<bool>> Cancel;
  };
  std::mutex InFlightMu;
  std::map<uint64_t, InFlight> InFlightReqs;

  /// Serializes writes to the operational log: pool workers share one
  /// ostream, and interleaved partial lines would be garbage.
  std::mutex LogMu;

  /// Guards the mutable daemon state below. The SummaryCache, the
  /// telemetry core, and the flight recorder have their own
  /// synchronization and are NOT covered — analyses and cache IO run
  /// outside this lock so the worker pool actually overlaps.
  std::mutex StateMu;
  std::string LastKey;
  std::shared_ptr<const ResultSnapshot> LastSnapshot;
  /// Source text of the most recent analyze, kept so a later
  /// `{"strategy":"demand"}` query (or the admission ladder's automatic
  /// demand pick) can re-frontend and slice it without the client
  /// resending the program. Cleared by `invalidate` alongside LastKey.
  std::string LastSource;
  /// Most recent snapshot per options fingerprint: the baseline an
  /// `analyze {"incremental": true}` request re-analyzes against. Keyed
  /// by fingerprint (not cache key) because an edited source hashes to
  /// a different key — the baseline is the previous result computed
  /// under the *same options*, whatever its source was.
  std::map<std::string, std::shared_ptr<const ResultSnapshot>>
      BaselineByFingerprint;
  /// Degradation warnings already logged, keyed by (kind, context), so
  /// sustained budget pressure cannot flood the daemon log.
  std::set<std::string> LoggedDegradations;
};

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_SERVER_H
