//===- Json.cpp - Minimal JSON value model and parser --------------------------===//

#include "serve/Json.h"

#include <cctype>
#include <cstdlib>

using namespace mcpta;
using namespace mcpta::serve;

const JsonValue *JsonValue::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Members.find(std::string(Name));
  return It == Members.end() ? nullptr : &It->second;
}

std::string JsonValue::getString(std::string_view Name,
                                 const std::string &Default) const {
  const JsonValue *V = find(Name);
  return V && V->kind() == Kind::String ? V->Str : Default;
}

double JsonValue::getNumber(std::string_view Name, double Default) const {
  const JsonValue *V = find(Name);
  return V && V->kind() == Kind::Number ? V->Num : Default;
}

bool JsonValue::getBool(std::string_view Name, bool Default) const {
  const JsonValue *V = find(Name);
  return V && V->kind() == Kind::Bool ? V->B : Default;
}

namespace mcpta {
namespace serve {

/// Strict single-document parser. Depth-bounded so a hostile request of
/// ten thousand '[' characters cannot exhaust the stack.
class JsonParser {
public:
  JsonParser(std::string_view Text) : Text(Text) {}

  bool parse(JsonValue &Out, std::string &Error) {
    skipWs();
    if (!parseValue(Out, 0))
      return fail(Error);
    skipWs();
    if (Pos != Text.size()) {
      Err = "trailing characters after JSON document";
      return fail(Error);
    }
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(std::string &Error) {
    if (Err.empty())
      return true;
    Error = Err + " (at byte " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool error(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  bool consume(char C, const char *Msg) {
    if (Pos >= Text.size() || Text[Pos] != C)
      return error(Msg);
    ++Pos;
    return true;
  }

  bool literal(std::string_view Lit) {
    if (Text.compare(Pos, Lit.size(), Lit) != 0)
      return error("invalid literal");
    Pos += Lit.size();
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return error("nesting too deep");
    if (Pos >= Text.size())
      return error("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return error("expected object key");
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':', "expected ':' after object key"))
        return false;
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Members[Key] = std::move(V); // duplicate keys: last one wins
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}', "expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Elems.push_back(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']', "expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return error("unterminated escape");
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return error("truncated \\u escape");
          unsigned Code = 0;
          for (unsigned I = 0; I < 4; ++I) {
            char H = Text[Pos + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= unsigned(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= unsigned(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= unsigned(H - 'A' + 10);
            else
              return error("invalid \\u escape");
          }
          Pos += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what C analysis requests need; a lone surrogate encodes as
          // its raw code point).
          if (Code < 0x80) {
            Out += char(Code);
          } else if (Code < 0x800) {
            Out += char(0xC0 | (Code >> 6));
            Out += char(0x80 | (Code & 0x3F));
          } else {
            Out += char(0xE0 | (Code >> 12));
            Out += char(0x80 | ((Code >> 6) & 0x3F));
            Out += char(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return error("invalid escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return error("raw control character in string");
      Out += C;
      ++Pos;
    }
    return error("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return error("unexpected character");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return error("malformed number");
    Out.K = JsonValue::Kind::Number;
    Out.Num = D;
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

bool parseJson(std::string_view Text, JsonValue &Out, std::string &Error) {
  return JsonParser(Text).parse(Out, Error);
}

} // namespace serve
} // namespace mcpta
