//===- Server.cpp - Long-lived NDJSON query daemon -----------------------------===//

#include "serve/Server.h"

#include "corpus/Corpus.h"
#include "demand/DemandQuery.h"
#include "driver/Pipeline.h"
#include "incr/IncrementalEngine.h"
#include "serve/Json.h"
#include "serve/RequestQueue.h"
#include "support/ThreadPool.h"
#include "support/Version.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

using namespace mcpta;
using namespace mcpta::serve;

using support::FaultInjection;
using support::FlightRecorder;
using support::Telemetry;

//===----------------------------------------------------------------------===//
// Response assembly
//===----------------------------------------------------------------------===//

namespace {

std::string quoted(std::string_view S) {
  return "\"" + Telemetry::jsonEscape(S) + "\"";
}

/// Renders a request id for echoing. Anything unexpected echoes null.
std::string renderId(const JsonValue *Id) {
  if (!Id)
    return "null";
  switch (Id->kind()) {
  case JsonValue::Kind::Number: {
    double D = Id->asNumber();
    if (D == std::floor(D) && std::abs(D) < 9e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
      return Buf;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", D);
    return Buf;
  }
  case JsonValue::Kind::String:
    return quoted(Id->asString());
  case JsonValue::Kind::Bool:
    return Id->asBool() ? "true" : "false";
  default:
    return "null";
  }
}

uint64_t getU64(const JsonValue &Obj, std::string_view Name,
                uint64_t Default) {
  double D = Obj.getNumber(Name, static_cast<double>(Default));
  return D <= 0 ? 0 : static_cast<uint64_t>(D);
}

/// Best-effort extraction of the request's "cid" member without a full
/// JSON parse — the reader runs this on every admitted line, and the
/// admission path must stay cheap. A miss (no cid, exotic escaping)
/// returns "" and the request lands in the shared anonymous fairness
/// bucket; fairness accounting tolerates that.
std::string scrapeCid(const std::string &Line) {
  size_t Pos = Line.find("\"cid\"");
  if (Pos == std::string::npos)
    return "";
  Pos += 5;
  while (Pos < Line.size() &&
         (Line[Pos] == ' ' || Line[Pos] == '\t' || Line[Pos] == ':'))
    ++Pos;
  if (Pos >= Line.size() || Line[Pos] != '"')
    return "";
  ++Pos;
  std::string Cid;
  while (Pos < Line.size() && Line[Pos] != '"') {
    if (Line[Pos] == '\\') // escaped cids are rare; skip the escape pair
      ++Pos;
    if (Pos < Line.size())
      Cid += Line[Pos++];
  }
  return Cid;
}

/// The methods the daemon understands; per-method error counters and
/// latency recorders key off this list so telemetry names stay bounded
/// no matter what clients send.
bool isKnownMethod(std::string_view M) {
  return M == "analyze" || M == "alias" || M == "points_to" ||
         M == "read_write_sets" || M == "stats" || M == "events" ||
         M == "invalidate" || M == "shutdown";
}

double msSince(std::chrono::steady_clock::time_point T) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T)
      .count();
}

/// Strict UTF-8 validation (rejects overlongs, surrogates, > U+10FFFF).
/// The protocol is JSON, which is UTF-8 by definition; a line that is
/// not gets a protocol error before the parser ever sees it.
bool isValidUtf8(std::string_view S) {
  size_t I = 0;
  while (I < S.size()) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    if (C < 0x80) {
      ++I;
      continue;
    }
    size_t Need;
    if (C >= 0xc2 && C < 0xe0)
      Need = 1;
    else if (C >= 0xe0 && C < 0xf0)
      Need = 2;
    else if (C >= 0xf0 && C < 0xf5)
      Need = 3;
    else
      return false; // bare continuation, overlong lead, or > U+10FFFF
    if (S.size() - I - 1 < Need)
      return false;
    unsigned char C1 = static_cast<unsigned char>(S[I + 1]);
    unsigned char Lo = 0x80, Hi = 0xbf;
    if (C == 0xe0)
      Lo = 0xa0; // overlong 3-byte
    else if (C == 0xed)
      Hi = 0x9f; // UTF-16 surrogates
    else if (C == 0xf0)
      Lo = 0x90; // overlong 4-byte
    else if (C == 0xf4)
      Hi = 0x8f; // > U+10FFFF
    if (C1 < Lo || C1 > Hi)
      return false;
    for (size_t K = 2; K <= Need; ++K) {
      unsigned char CK = static_cast<unsigned char>(S[I + K]);
      if (CK < 0x80 || CK > 0xbf)
        return false;
    }
    I += Need + 1;
  }
  return true;
}

enum class LineRead { Ok, Eof, TooLong };

/// getline with a byte bound: an over-long line is consumed to its
/// newline (so the stream stays line-synchronized) but never buffered
/// beyond the cap — the defense the bound exists for.
LineRead readBoundedLine(std::istream &In, std::string &Line, size_t Max) {
  Line.clear();
  std::streambuf *SB = In.rdbuf();
  bool Over = false;
  while (true) {
    int C = SB ? SB->sbumpc() : std::char_traits<char>::eof();
    if (C == std::char_traits<char>::eof()) {
      In.setstate(std::ios::eofbit);
      if (Over)
        return LineRead::TooLong;
      return Line.empty() ? LineRead::Eof : LineRead::Ok;
    }
    if (C == '\n')
      return Over ? LineRead::TooLong : LineRead::Ok;
    if (!Over) {
      if (Line.size() >= Max) {
        Over = true;
        Line.clear();
      } else {
        Line.push_back(static_cast<char>(C));
      }
    }
  }
}

} // namespace

struct Server::Response {
  std::string IdJson = "null";
  bool Ok = true;
  bool Degraded = false;
  bool Cached = false;
  std::string Error;
  std::string Cid;
  /// Method-specific members, each pre-rendered as `,"name":value`.
  std::string Extra;

  void fail(std::string Msg) {
    Ok = false;
    Error = std::move(Msg);
  }
  void member(std::string_view Name, const std::string &RenderedValue) {
    Extra += ",";
    Extra += quoted(Name);
    Extra += ":";
    Extra += RenderedValue;
  }

  std::string render(double ElapsedMs) const {
    char Elapsed[32];
    std::snprintf(Elapsed, sizeof(Elapsed), "%.3f", ElapsedMs);
    std::string Out = "{\"id\":" + IdJson;
    Out += ",\"ok\":";
    Out += Ok ? "true" : "false";
    Out += ",\"degraded\":";
    Out += Degraded ? "true" : "false";
    Out += ",\"cached\":";
    Out += Cached ? "true" : "false";
    Out += ",\"elapsed_ms\":";
    Out += Elapsed;
    if (!Cid.empty())
      Out += ",\"cid\":" + quoted(Cid);
    if (!Ok)
      Out += ",\"error\":" + quoted(Error);
    Out += Extra;
    Out += "}";
    return Out;
  }
};

/// RAII registration in the watchdog's in-flight registry.
class Server::InFlightGuard {
public:
  InFlightGuard(Server &S, uint64_t Seq, const std::string &Cid,
                uint64_t HardDeadlineMs,
                std::shared_ptr<std::atomic<bool>> Cancel)
      : S(S), Seq(Seq) {
    S.registerInFlight(Seq, Cid, HardDeadlineMs, std::move(Cancel));
  }
  ~InFlightGuard() { S.deregisterInFlight(Seq); }
  InFlightGuard(const InFlightGuard &) = delete;
  InFlightGuard &operator=(const InFlightGuard &) = delete;

private:
  Server &S;
  uint64_t Seq;
};

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(Config C)
    : Cfg(std::move(C)),
      Telem(std::make_unique<Telemetry>(/*Enabled=*/true)),
      Recorder(std::make_unique<FlightRecorder>(Cfg.FlightRecorderCapacity)),
      Cache(std::make_unique<SummaryCache>(Cfg.Cache, Telem.get())),
      StartTime(std::chrono::steady_clock::now()) {
  Cache->setFlightRecorder(Recorder.get());
  // One shared analysis pool for the whole daemon: per-request private
  // pools would multiply threads by in-flight requests.
  if (Cfg.DefaultOpts.AnalysisThreads > 1)
    AnalysisPool =
        std::make_unique<support::ThreadPool>(Cfg.DefaultOpts.AnalysisThreads);
  if (!Cfg.FaultSpec.empty()) {
    auto FI = std::make_unique<FaultInjection>();
    std::string Err;
    if (FI->parse(Cfg.FaultSpec, Err)) {
      Faults = std::move(FI);
      FaultsEnabled = true;
      Cache->setFaultInjection(Faults.get());
    } else {
      FaultSpecError = "bad --fault-inject spec: " + Err;
    }
  }
}

Server::~Server() = default;

int Server::run(std::istream &In, std::ostream &Out, std::ostream &Log) {
  if (!FaultSpecError.empty()) {
    std::lock_guard<std::mutex> LogLock(LogMu);
    Log << "error: " << FaultSpecError << "\n" << std::flush;
    return 1;
  }
  {
    std::lock_guard<std::mutex> LogLock(LogMu);
    Log << "pta-serve " << version::kToolVersion << " (result format "
        << version::kResultFormatName << ", version "
        << version::kResultFormatVersion << ") ready; cache dir: "
        << (Cfg.Cache.Dir.empty() ? "<memory only>" : Cfg.Cache.Dir.c_str())
        << "; threads: " << (Cfg.Threads ? Cfg.Threads : 1);
    if (Cfg.Threads > 1)
      Log << "; queue capacity: " << Cfg.QueueCap;
    if (Cfg.RequestDeadlineMs)
      Log << "; request deadline: " << Cfg.RequestDeadlineMs << " ms";
    if (FaultsEnabled)
      Log << "; fault injection: " << Cfg.FaultSpec;
    Log << "\n" << std::flush;
  }

  // The watchdog outlives both loop shapes: it cancels analyses past
  // their hard deadline even when the (sequential) loop itself is the
  // thread stuck running them.
  std::atomic<bool> StopWatchdog{false};
  uint64_t PollMs = Cfg.WatchdogPollMs ? Cfg.WatchdogPollMs : 10;
  std::thread Watchdog([this, &StopWatchdog, PollMs] {
    while (!StopWatchdog.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(PollMs));
      watchdogSweep();
    }
  });

  int Code = Cfg.Threads > 1 ? runConcurrent(In, Out, Log)
                             : runSequential(In, Out, Log);

  StopWatchdog.store(true, std::memory_order_relaxed);
  Watchdog.join();

  // Black-box dump: the recent event history goes to the log so a
  // post-mortem has more than aggregate counters to work with.
  std::vector<FlightRecorder::Event> Events = Recorder->snapshot();
  std::lock_guard<std::mutex> LogLock(LogMu);
  Log << "flight recorder: " << Events.size() << " event(s) retained, "
      << Recorder->dropped() << " dropped, capacity "
      << Recorder->capacity() << "\n";
  for (const FlightRecorder::Event &E : Events)
    Log << "  " << FlightRecorder::eventJson(E) << "\n";
  Log << std::flush;
  return Code;
}

int Server::runSequential(std::istream &In, std::ostream &Out,
                          std::ostream &Log) {
  std::string Line;
  bool WantShutdown = false;
  while (!WantShutdown) {
    LineRead R = readBoundedLine(In, Line, Cfg.MaxLineBytes);
    if (R == LineRead::Eof)
      break;
    if (R == LineRead::TooLong) {
      Out << rejectLine(nullptr,
                        "request line exceeds the " +
                            std::to_string(Cfg.MaxLineBytes) +
                            "-byte bound and was discarded",
                        "protocol")
          << "\n"
          << std::flush;
      continue;
    }
    if (Line.empty())
      continue;
    if (!isValidUtf8(Line)) {
      Out << rejectLine(nullptr, "request line is not valid UTF-8",
                        "protocol")
          << "\n"
          << std::flush;
      continue;
    }
    Out << handleLine(Line, WantShutdown, Log) << "\n" << std::flush;
  }
  return 0;
}

int Server::runConcurrent(std::istream &In, std::ostream &Out,
                          std::ostream &Log) {
  RequestQueue Queue(Cfg.QueueCap);
  std::mutex OutMu;
  std::atomic<bool> ShuttingDown{false};

  std::vector<std::thread> Workers;
  Workers.reserve(Cfg.Threads);
  for (unsigned T = 0; T < Cfg.Threads; ++T) {
    Workers.emplace_back([this, &Queue, &Out, &OutMu, &Log, &ShuttingDown] {
      RequestQueue::Item It;
      while (Queue.pop(It)) {
        Admission Adm;
        Adm.QueueWaitMs = msSince(It.EnqueuedAt);
        Adm.QueueDepth = Queue.depth();
        Adm.QueueCap = Queue.capacity();
        bool WantShutdown = false;
        std::string Response = handleLine(It.Line, WantShutdown, Log, Adm);
        if (WantShutdown) {
          // Seal the queue: items already accepted keep draining (every
          // admitted request gets its answer), new lines are rejected.
          ShuttingDown.store(true, std::memory_order_relaxed);
          Queue.close();
        }
        std::lock_guard<std::mutex> OutLock(OutMu);
        Out << Response << "\n" << std::flush;
      }
    });
  }

  // This thread is the reader: it owns the istream, bounds each line,
  // and never blocks on the queue — admission control sheds instead.
  std::string Line;
  while (!ShuttingDown.load(std::memory_order_relaxed)) {
    LineRead R = readBoundedLine(In, Line, Cfg.MaxLineBytes);
    if (R == LineRead::Eof)
      break;
    std::string Reject;
    if (R == LineRead::TooLong) {
      Reject = rejectLine(nullptr,
                          "request line exceeds the " +
                              std::to_string(Cfg.MaxLineBytes) +
                              "-byte bound and was discarded",
                          "protocol");
    } else if (Line.empty()) {
      continue;
    } else if (!isValidUtf8(Line)) {
      Reject = rejectLine(nullptr, "request line is not valid UTF-8",
                          "protocol");
    } else if (Faults && Faults->shouldFire("serve.queue_full")) {
      // Injected overload: exercise the shed path without needing a
      // genuinely saturated pool.
      Telem->add("serve.admission.shed", 1);
      Telem->add("serve.admission.shed_full", 1);
      Recorder->record("admission.shed", "", "reason=queue_full injected=1");
      Reject = rejectLine(&Line, "overloaded: request queue is full",
                          "overloaded");
    } else {
      RequestQueue::Item It;
      It.Line = Line;
      It.Cid = scrapeCid(Line);
      It.EnqueuedAt = std::chrono::steady_clock::now();
      RequestQueue::Item Evicted;
      bool DidEvict = false;
      switch (Queue.pushFair(std::move(It), Evicted, DidEvict)) {
      case RequestQueue::PushResult::Ok:
        Telem->add("serve.admission.admitted", 1);
        if (DidEvict) {
          // Per-cid fairness: the queue was full and some tenant held
          // strictly more slots than this request's — its newest queued
          // item was traded out and is rejected here, so overload sheds
          // the queue hog rather than whoever arrives next.
          Telem->add("serve.admission.shed", 1);
          Telem->add("serve.admission.per_cid_shed", 1);
          Recorder->record("admission.shed", Evicted.Cid,
                           "reason=per_cid_fairness depth=" +
                               std::to_string(Queue.depth()));
          std::string EvictReject = rejectLine(
              &Evicted.Line, "overloaded: shed for per-cid fairness",
              "overloaded");
          std::lock_guard<std::mutex> OutLock(OutMu);
          Out << EvictReject << "\n" << std::flush;
        }
        break;
      case RequestQueue::PushResult::Full:
        Telem->add("serve.admission.shed", 1);
        Telem->add("serve.admission.shed_full", 1);
        Recorder->record("admission.shed", "",
                         "reason=queue_full depth=" +
                             std::to_string(Queue.depth()));
        Reject = rejectLine(&Line, "overloaded: request queue is full",
                            "overloaded");
        break;
      case RequestQueue::PushResult::Closed:
        Reject = rejectLine(&Line, "daemon is shutting down", "shutdown");
        break;
      }
    }
    if (!Reject.empty()) {
      std::lock_guard<std::mutex> OutLock(OutMu);
      Out << Reject << "\n" << std::flush;
    }
  }

  Queue.close();
  for (std::thread &W : Workers)
    W.join();
  return 0;
}

std::string Server::rejectLine(const std::string *Line, const std::string &Msg,
                               const char *Kind) {
  auto Start = std::chrono::steady_clock::now();
  uint64_t Seq = RequestSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  Telem->add("serve.requests", 1);

  Response Resp;
  Resp.Cid = "r" + std::to_string(Seq);
  if (Line) {
    // Best-effort id/cid echo so the client can correlate the
    // rejection. Oversized or non-UTF8 input never gets here — those
    // bytes are not worth parsing.
    JsonValue Req;
    std::string ParseError;
    if (parseJson(*Line, Req, ParseError) && Req.isObject()) {
      Resp.IdJson = renderId(Req.find("id"));
      std::string Cid = Req.getString("cid");
      if (!Cid.empty())
        Resp.Cid = Cid;
    }
  }
  if (std::string_view(Kind) == "overloaded")
    Resp.member("overloaded", "true");
  Resp.fail(Msg);
  Telem->add("serve.errors", 1);
  Telem->add(std::string("serve.errors.") + Kind, 1);
  Recorder->record("request.error", Resp.Cid, std::string("reason=") + Kind);
  return Resp.render(msSince(Start));
}

//===----------------------------------------------------------------------===//
// Watchdog
//===----------------------------------------------------------------------===//

void Server::registerInFlight(uint64_t Seq, const std::string &Cid,
                              uint64_t HardDeadlineMs,
                              std::shared_ptr<std::atomic<bool>> Cancel) {
  std::lock_guard<std::mutex> Lock(InFlightMu);
  InFlightReqs[Seq] =
      InFlight{Cid, std::chrono::steady_clock::now(), HardDeadlineMs,
               std::move(Cancel)};
}

void Server::deregisterInFlight(uint64_t Seq) {
  std::lock_guard<std::mutex> Lock(InFlightMu);
  InFlightReqs.erase(Seq);
}

size_t Server::watchdogSweep() {
  size_t Fired = 0;
  {
    std::lock_guard<std::mutex> Lock(InFlightMu);
    for (auto &[Seq, IF] : InFlightReqs) {
      if (!IF.HardDeadlineMs || !IF.Cancel)
        continue;
      double ElapsedMs = msSince(IF.Start);
      if (ElapsedMs > static_cast<double>(IF.HardDeadlineMs) &&
          !IF.Cancel->load(std::memory_order_relaxed)) {
        // Setting the flag forces the existing deadline-cut path: the
        // request's BudgetMeter reads it as an expired deadline, trips,
        // and the analysis degrades soundly instead of running away.
        IF.Cancel->store(true, std::memory_order_relaxed);
        ++Fired;
        Telem->add("serve.watchdog.fired", 1);
        char Detail[96];
        std::snprintf(Detail, sizeof(Detail),
                      "elapsed_ms=%.0f hard_deadline_ms=%llu", ElapsedMs,
                      static_cast<unsigned long long>(IF.HardDeadlineMs));
        Recorder->record("watchdog.cancel", IF.Cid, Detail);
      }
    }
  }
  Telem->add("serve.watchdog.sweeps", 1);
  return Fired;
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

std::string Server::handleLine(const std::string &Line, bool &WantShutdown,
                               std::ostream &Log) {
  return handleLine(Line, WantShutdown, Log, Admission{});
}

std::string Server::handleLine(const std::string &Line, bool &WantShutdown,
                               std::ostream &Log, const Admission &Adm) {
  auto Start = std::chrono::steady_clock::now();
  uint64_t Seq = RequestSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  Telem->add("serve.requests", 1);
  if (Adm.QueueCap) {
    Telem->latency("serve.latency.queue_wait").recordMs(Adm.QueueWaitMs);
    Telem->gauge("serve.admission.queue_depth", Adm.QueueDepth);
  }

  Response Resp;
  JsonValue Req;
  std::string ParseError;
  std::string Method;
  bool Dispatched = false;
  // Request-scoped child telemetry: the analyzer, the cache, and the
  // incremental engine write here; the daemon aggregate absorbs it when
  // the request completes. Spans stay in the child, so per-request trace
  // fragments are available without growing daemon state.
  Telemetry ReqTelem(/*Enabled=*/true);
  RequestCtx Ctx;
  Ctx.Telem = &ReqTelem;
  Ctx.Seq = Seq;
  bool ShedAtAdmission = false;

  if (!parseJson(Line, Req, ParseError)) {
    Telem->add("serve.parse_errors", 1);
    Resp.fail("request is not valid JSON: " + ParseError);
  } else if (!Req.isObject()) {
    Resp.fail("request must be a JSON object");
  } else {
    Resp.IdJson = renderId(Req.find("id"));
    Method = Req.getString("method");
    Ctx.Cid = Req.getString("cid");
    if (Ctx.Cid.empty())
      Ctx.Cid = "r" + std::to_string(Seq);
    Resp.Cid = Ctx.Cid;
    ReqTelem.setCorrelationId(Ctx.Cid);
    Recorder->record("request.start", Ctx.Cid,
                     "method=" + (Method.empty() ? "?" : Method));
    Dispatched = true;

    // Admission: queue pressure maps to a quantized degradation-ladder
    // level (depth >= 50% of capacity -> 1, >= 75% -> 2, long wait ->
    // at least 1). Quantized so tightened requests still share cache
    // keys — an exact per-request budget would make every key unique.
    if (Adm.QueueCap) {
      unsigned Level = 0;
      if (Adm.QueueDepth * 4 >= Adm.QueueCap * 3)
        Level = 2;
      else if (Adm.QueueDepth * 2 >= Adm.QueueCap)
        Level = 1;
      if (Level == 0 && Cfg.RequestDeadlineMs &&
          Adm.QueueWaitMs * 2 >= static_cast<double>(Cfg.RequestDeadlineMs))
        Level = 1;
      Ctx.LadderLevel = Level;
    }

    // Late shedding: a request that already burned its whole deadline
    // waiting in the queue is not worth starting.
    bool &Shed = ShedAtAdmission;
    if (Method == "analyze" && Cfg.RequestDeadlineMs &&
        Adm.QueueWaitMs >= static_cast<double>(Cfg.RequestDeadlineMs)) {
      Telem->add("serve.admission.shed", 1);
      Telem->add("serve.admission.shed_wait", 1);
      char Detail[96];
      std::snprintf(Detail, sizeof(Detail),
                    "reason=queue_wait waited_ms=%.1f deadline_ms=%llu",
                    Adm.QueueWaitMs,
                    static_cast<unsigned long long>(Cfg.RequestDeadlineMs));
      Recorder->record("admission.shed", Ctx.Cid, Detail);
      Resp.member("overloaded", "true");
      char Msg[128];
      std::snprintf(Msg, sizeof(Msg),
                    "overloaded: request waited %.0f ms in queue, deadline "
                    "is %llu ms",
                    Adm.QueueWaitMs,
                    static_cast<unsigned long long>(Cfg.RequestDeadlineMs));
      Resp.fail(Msg);
      Shed = true;
    }

    if (Shed) {
      // Response already carries the overloaded error.
    } else if (Method == "analyze") {
      handleAnalyze(Req, Resp, Log, Ctx);
    } else if (Method == "alias") {
      handleAlias(Req, Resp, Ctx);
    } else if (Method == "points_to") {
      handlePointsTo(Req, Resp, Ctx);
    } else if (Method == "read_write_sets") {
      handleReadWriteSets(Req, Resp, Ctx);
    } else if (Method == "stats") {
      handleStats(Resp);
    } else if (Method == "events") {
      handleEvents(Req, Resp);
    } else if (Method == "invalidate") {
      handleInvalidate(Resp);
    } else if (Method == "shutdown") {
      Telem->add("serve.shutdown", 1);
      Recorder->record("serve.shutdown", Ctx.Cid, "");
      WantShutdown = true;
    } else {
      Resp.fail(Method.empty() ? "missing \"method\" member"
                               : "unknown method '" + Method + "'");
    }
  }
  if (!Method.empty() && Method != "shutdown")
    Telem->add("serve." + Method, Resp.Ok ? 1 : 0);
  if (!Resp.Ok) {
    Telem->add("serve.errors", 1);
    // Per-method attribution: protocol failures (bad JSON, non-object,
    // unknown/missing method) are one bucket; each known method gets
    // its own, so "analyze requests failing" and "clients sending
    // garbage" are distinguishable.
    Telem->add("serve.errors." +
                   (isKnownMethod(Method) ? Method : std::string("protocol")),
               1);
  }

  double ElapsedMs = msSince(Start);
  // Shed requests are an admission outcome, not a service latency: the
  // serve.latency.* quantiles describe requests that were actually
  // served (queue wait has its own recorder).
  if (isKnownMethod(Method) && !ShedAtAdmission)
    Telem->latency("serve.latency." + Method).recordMs(ElapsedMs);

  if (Dispatched) {
    // Per-request trace fragment on demand, before the child merges
    // away. The fragment is a complete Chrome-trace document rendered
    // as a JSON value inside the response.
    if (Req.getBool("trace", false)) {
      std::ostringstream TS;
      ReqTelem.writeTraceJson(TS);
      std::string Trace = TS.str();
      while (!Trace.empty() &&
             (Trace.back() == '\n' || Trace.back() == '\r'))
        Trace.pop_back();
      Resp.member("trace", Trace);
    }
    Telem->mergeFrom(ReqTelem);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "method=%s ok=%d elapsed_ms=%.3f",
                  Method.empty() ? "?" : Method.c_str(), Resp.Ok ? 1 : 0,
                  ElapsedMs);
    Recorder->record(Resp.Ok ? "request.end" : "request.error", Ctx.Cid,
                     Buf);
  }
  return Resp.render(ElapsedMs);
}

//===----------------------------------------------------------------------===//
// analyze
//===----------------------------------------------------------------------===//

void Server::handleAnalyze(const JsonValue &Req, Response &Resp,
                           std::ostream &Log, RequestCtx &Ctx) {
  // Resolve the source text: inline "source" or an embedded "corpus"
  // program (handy for smoke tests — no C-in-JSON escaping needed).
  std::string Source;
  if (const JsonValue *Src = Req.find("source")) {
    Source = Src->asString();
  } else if (const JsonValue *Name = Req.find("corpus")) {
    const corpus::CorpusProgram *P = corpus::find(Name->asString());
    if (!P) {
      Resp.fail("unknown corpus program '" + Name->asString() + "'");
      return;
    }
    Source = P->Source;
  } else {
    Resp.fail("analyze needs a \"source\" or \"corpus\" member");
    return;
  }

  // Per-request fault injection: tests only, gated on the daemon having
  // fault injection enabled at all (any --fault-inject spec, including
  // the arm-less "on").
  FaultInjection ReqFI;
  if (const JsonValue *F = Req.find("fault")) {
    if (!FaultsEnabled) {
      Resp.fail("per-request fault injection requires the daemon to run "
                "with --fault-inject");
      return;
    }
    std::string FaultError;
    if (!ReqFI.parse(F->asString(), FaultError)) {
      Resp.fail("bad fault spec: " + FaultError);
      return;
    }
    Ctx.ReqFaults = &ReqFI;
  }
  FaultInjection *FI = Ctx.ReqFaults ? Ctx.ReqFaults : Faults.get();

  // Per-request options/limits override the server defaults and ride on
  // the existing resource-governance layer.
  pta::Analyzer::Options Opts = Cfg.DefaultOpts;
  // The child telemetry observes the analysis without affecting it: the
  // options fingerprint (and therefore the cache key) excludes the
  // sink, and the analyzer's behavior never branches on it.
  Opts.Telem = Ctx.Telem;
  if (const JsonValue *O = Req.find("options")) {
    std::string FnPtr = O->getString("fnptr");
    if (FnPtr == "precise")
      Opts.FnPtr = pta::FnPtrMode::Precise;
    else if (FnPtr == "all")
      Opts.FnPtr = pta::FnPtrMode::AllFunctions;
    else if (FnPtr == "address-taken")
      Opts.FnPtr = pta::FnPtrMode::AddressTaken;
    else if (!FnPtr.empty()) {
      Resp.fail("unknown fnptr mode '" + FnPtr + "'");
      return;
    }
    Opts.ContextSensitive =
        O->getBool("context_sensitive", Opts.ContextSensitive);
    Opts.RecordStmtSets = O->getBool("record_stmt_sets", Opts.RecordStmtSets);
    Opts.SymbolicLevelLimit = static_cast<unsigned>(
        getU64(*O, "symbolic_level_limit", Opts.SymbolicLevelLimit));
    Opts.MaxLoopIterations = static_cast<unsigned>(
        getU64(*O, "max_loop_iterations", Opts.MaxLoopIterations));
    // Capped at the daemon's configured width: the shared pool is sized
    // once at startup and a request cannot grow it.
    Opts.AnalysisThreads = static_cast<unsigned>(
        std::min<uint64_t>(getU64(*O, "analysis_threads",
                                  Opts.AnalysisThreads),
                           std::max(1u, Cfg.DefaultOpts.AnalysisThreads)));
  }
  if (const JsonValue *L = Req.find("limits")) {
    support::AnalysisLimits &Lim = Opts.Limits;
    Lim.TimeoutMs = getU64(*L, "timeout_ms", Lim.TimeoutMs);
    Lim.MaxStmtVisits = getU64(*L, "max_stmt_visits", Lim.MaxStmtVisits);
    Lim.MaxLocations = getU64(*L, "max_locations", Lim.MaxLocations);
    Lim.MaxIGNodes = getU64(*L, "max_ig_nodes", Lim.MaxIGNodes);
    Lim.MaxRecPasses = getU64(*L, "max_rec_passes", Lim.MaxRecPasses);
  }

  // Allocation-pressure fault: run this request under a tiny location
  // budget. Applied before the fingerprint so the (soundly) degraded
  // result is cached under its own key, never poisoning the clean one.
  if (FI && FI->shouldFire("alloc.pressure")) {
    uint64_t Cap = FI->param("alloc.pressure", "max", 8);
    support::AnalysisLimits &Lim = Opts.Limits;
    Lim.MaxLocations = Lim.MaxLocations ? std::min(Lim.MaxLocations, Cap)
                                        : Cap;
    Ctx.Telem->add("fault.injected.alloc.pressure", 1);
    Recorder->record("fault.injected", Ctx.Cid,
                     "point=alloc.pressure max=" + std::to_string(Cap));
  }

  // The per-request deadline budget folds into TimeoutMs along the
  // quantized ladder: level 0 gets the full deadline, each level halves
  // it. BaseOpts (level 0) keeps a fallback cache key so a tightened
  // request can still serve an already-computed full-budget result.
  auto ApplyDeadline = [this](support::AnalysisLimits &Lim, unsigned Level) {
    if (!Cfg.RequestDeadlineMs)
      return;
    uint64_t Effective = Cfg.RequestDeadlineMs >> Level;
    if (!Effective)
      Effective = 1;
    Lim.TimeoutMs =
        Lim.TimeoutMs ? std::min(Lim.TimeoutMs, Effective) : Effective;
  };
  pta::Analyzer::Options BaseOpts = Opts;
  ApplyDeadline(BaseOpts.Limits, 0);
  ApplyDeadline(Opts.Limits, Ctx.LadderLevel);
  if (Ctx.LadderLevel) {
    Telem->add("serve.admission.tightened", 1);
    Telem->add("serve.admission.tightened.l" +
                   std::to_string(Ctx.LadderLevel),
               1);
    Recorder->record("admission.tighten", Ctx.Cid,
                     "level=" + std::to_string(Ctx.LadderLevel) +
                         " timeout_ms=" +
                         std::to_string(Opts.Limits.TimeoutMs));
    Resp.member("ladder_level", std::to_string(Ctx.LadderLevel));
  }

  // Parallel engine budget, composed with the admission ladder exactly
  // like the deadline: ladder level L halves the thread budget L times
  // (min 1), so an overloaded daemon sheds parallelism before
  // precision. A budget of 1 runs the classic sequential engine; above
  // 1 the request submits its fold work to the daemon's shared pool.
  // Neither field is identity: the result is byte-identical at any
  // width, and optionsFingerprint excludes both (docs/PARALLEL.md).
  if (Opts.AnalysisThreads > 1) {
    unsigned Eff =
        std::max(1u, Opts.AnalysisThreads >> std::min(Ctx.LadderLevel, 31u));
    Opts.AnalysisThreads = Eff;
    Opts.Pool = (Eff > 1 && AnalysisPool) ? AnalysisPool.get() : nullptr;
    if (Opts.Pool)
      Telem->add("serve.par.requests", 1);
    else if (Ctx.LadderLevel)
      Telem->add("serve.par.shed_to_sequential", 1);
  }

  const std::string FP = optionsFingerprint(Opts);
  const std::string Key = SummaryCache::key(Source, FP);
  const std::string BaseFP =
      Ctx.LadderLevel ? optionsFingerprint(BaseOpts) : FP;
  const std::string BaseKey =
      Ctx.LadderLevel ? SummaryCache::key(Source, BaseFP) : Key;
  const bool WantIncremental = Req.getBool("incremental", false);
  const SummaryCache::RequestScope Scope{Ctx.Telem, Ctx.Cid, Ctx.ReqFaults};

  // Watchdog wiring: any request with a wall-clock budget gets a cancel
  // flag the BudgetMeter polls (AnalysisLimits::CancelFlag — set after
  // the fingerprint is computed; it is per-run plumbing, not identity).
  std::shared_ptr<std::atomic<bool>> Cancel;
  uint64_t HardMs = 0;
  if (Opts.Limits.TimeoutMs) {
    HardMs = Opts.Limits.TimeoutMs * 4;
    if (HardMs < Opts.Limits.TimeoutMs + 50)
      HardMs = Opts.Limits.TimeoutMs + 50;
  }
  std::unique_ptr<InFlightGuard> Guard;
  if (HardMs || (FI && FI->armed("serve.stall"))) {
    Cancel = std::make_shared<std::atomic<bool>>(false);
    Opts.Limits.CancelFlag = Cancel.get();
    Guard = std::make_unique<InFlightGuard>(*this, Ctx.Seq, Ctx.Cid, HardMs,
                                            Cancel);
  }

  // Stalled-request fault: burn wall clock before doing any work, in
  // small cancellable slices, so watchdog coverage is testable without
  // a genuinely slow analysis.
  if (FI && FI->shouldFire("serve.stall")) {
    uint64_t StallMs = FI->param("serve.stall", "ms", 200);
    Ctx.Telem->add("fault.injected.serve.stall", 1);
    Recorder->record("fault.injected", Ctx.Cid,
                     "point=serve.stall ms=" + std::to_string(StallMs));
    auto Until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(StallMs);
    while (std::chrono::steady_clock::now() < Until) {
      if (Cancel && Cancel->load(std::memory_order_relaxed))
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  std::string CacheWarning;
  std::shared_ptr<const ResultSnapshot> Snap =
      Cache->lookup(Key, &CacheWarning, Scope);
  bool ServedFromBaseKey = false;
  if (!Snap && BaseKey != Key) {
    // A tightened request gladly serves the full-budget result when one
    // is already cached: strictly more precise, and free.
    Snap = Cache->lookup(BaseKey, nullptr, Scope);
    if (Snap) {
      ServedFromBaseKey = true;
      Telem->add("serve.admission.base_key_hits", 1);
    }
  }
  if (!CacheWarning.empty()) {
    std::lock_guard<std::mutex> LogLock(LogMu);
    Log << "warning: " << CacheWarning << "\n";
  }

  std::shared_ptr<const ResultSnapshot> Baseline;
  if (WantIncremental && !Snap) {
    std::lock_guard<std::mutex> Lock(StateMu);
    auto BaselineIt = BaselineByFingerprint.find(FP);
    if (BaselineIt != BaselineByFingerprint.end())
      Baseline = BaselineIt->second;
  }

  // True when the watchdog cancelled this request mid-flight. Checked
  // after the compute paths; a cancelled (degraded) result is returned
  // but never cached — cancellation depends on scheduler timing, and a
  // cache key must map to a deterministic result.
  auto WasCancelled = [&Cancel] {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  };
  bool Cancelled = false;

  if (Snap) {
    Resp.Cached = true;
    if (WantIncremental) {
      // An exact cache hit answers without re-analyzing anything.
      Resp.member("incremental", "false");
      Resp.member("fallback_reason", quoted("cache-hit"));
    }
  } else if (Baseline) {
    incr::IncrOutput O = incr::IncrementalEngine::reanalyze(
        *Baseline, Source, Opts, Ctx.Telem);
    if (!O.Ok) {
      Resp.fail(O.Error);
      return;
    }
    if (!O.Stats.FallbackReason.empty())
      Recorder->record("incr.fallback", Ctx.Cid,
                       "reason=" + O.Stats.FallbackReason);
    Cancelled = WasCancelled();
    if (Cancelled) {
      Snap = std::make_shared<const ResultSnapshot>(std::move(O.Snapshot));
      Ctx.Telem->add("serve.watchdog.uncached_results", 1);
    } else {
      std::string StoreWarning;
      Snap = Cache->store(Key, std::move(O.Snapshot), &StoreWarning, Scope);
      if (!StoreWarning.empty()) {
        std::lock_guard<std::mutex> LogLock(LogMu);
        Log << "warning: " << StoreWarning << "\n";
      }
    }
    Resp.member("incremental", O.Stats.UsedIncremental ? "true" : "false");
    Resp.member("dirty_functions", std::to_string(O.Stats.DirtyFunctions));
    Resp.member("memo_reuse", std::to_string(O.Stats.MemoReuse));
    if (!O.Stats.FallbackReason.empty())
      Resp.member("fallback_reason", quoted(O.Stats.FallbackReason));
  } else {
    Pipeline P = Pipeline::analyzeSource(Source, Opts);
    if (P.Diags.hasErrors()) {
      // Frontend failures are not cached: the response carries the
      // diagnostics and the next attempt re-parses.
      std::string Msg = "analysis failed";
      for (const Diagnostic &D : P.Diags.diagnostics())
        if (D.Level == DiagLevel::Error) {
          Msg = D.Message;
          break;
        }
      Resp.fail(Msg);
      return;
    }
    ResultSnapshot Captured =
        ResultSnapshot::capture(*P.Prog, P.Analysis, FP);
    Cancelled = WasCancelled();
    if (Cancelled) {
      Snap = std::make_shared<const ResultSnapshot>(std::move(Captured));
      Ctx.Telem->add("serve.watchdog.uncached_results", 1);
    } else {
      std::string StoreWarning;
      Snap = Cache->store(Key, std::move(Captured), &StoreWarning, Scope);
      if (!StoreWarning.empty()) {
        std::lock_guard<std::mutex> LogLock(LogMu);
        Log << "warning: " << StoreWarning << "\n";
      }
    }
    if (WantIncremental) {
      // First analysis under these options: nothing to diff against.
      Resp.member("incremental", "false");
      Resp.member("fallback_reason", quoted("no-baseline"));
    }
  }

  const std::string &ServedKey = ServedFromBaseKey ? BaseKey : Key;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    LastKey = ServedKey;
    LastSnapshot = Snap;
    LastSource = Source;
    // Whatever this request produced (or re-validated) is the baseline
    // for the next incremental request under the same options — unless
    // the watchdog cut it short: a cancelled result is timing-dependent
    // and must not seed future incremental runs.
    if (!Cancelled)
      BaselineByFingerprint[ServedFromBaseKey ? BaseFP : FP] = Snap;
  }

  Resp.Degraded = Snap->degraded();
  // Degradations go to the daemon log once per (kind, context) for the
  // server's lifetime; the structured list is always in the response,
  // and each one leaves a flight-recorder event attributed to this
  // request's correlation id.
  for (const DegradationRecord &D : Snap->Degradations) {
    const char *KindName =
        support::limitKindName(static_cast<support::LimitKind>(D.Kind));
    Recorder->record("degradation", Ctx.Cid,
                     std::string(KindName) + ": " + D.Context);
    bool ShouldLog = false;
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      ShouldLog =
          LoggedDegradations.insert(std::string(KindName) + "|" + D.Context)
              .second;
    }
    if (ShouldLog) {
      std::lock_guard<std::mutex> LogLock(LogMu);
      Log << "degraded: [" << KindName << "] " << D.Context << ": "
          << D.Action << "\n";
    }
  }

  Resp.member("key", quoted(ServedKey));
  Resp.member("analyzed", Snap->Analyzed ? "true" : "false");
  Resp.member("locations", std::to_string(Snap->Locations.size()));
  Resp.member("ig_nodes", std::to_string(Snap->IG.size()));
  Resp.member("main_out_pairs", std::to_string(Snap->MainOut.size()));
  Resp.member("alias_pairs", std::to_string(Snap->AliasPairs.size()));
  std::string Warnings = "[";
  for (size_t I = 0; I < Snap->Warnings.size(); ++I) {
    if (I)
      Warnings += ",";
    Warnings += quoted(Snap->Warnings[I]);
  }
  Warnings += "]";
  Resp.member("warnings", Warnings);
  std::string Degs = "[";
  for (size_t I = 0; I < Snap->Degradations.size(); ++I) {
    const DegradationRecord &D = Snap->Degradations[I];
    if (I)
      Degs += ",";
    Degs += "{\"kind\":" +
            quoted(support::limitKindName(
                static_cast<support::LimitKind>(D.Kind))) +
            ",\"context\":" + quoted(D.Context) +
            ",\"action\":" + quoted(D.Action) + "}";
  }
  Degs += "]";
  Resp.member("degradations", Degs);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::shared_ptr<const ResultSnapshot>
Server::querySnapshot(const JsonValue &Req, std::string &Error,
                      const RequestCtx &Ctx) {
  std::string Key = Req.getString("key");
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (Key.empty()) {
      if (LastSnapshot)
        return LastSnapshot;
      Error = "no result to query: analyze first or pass a \"key\"";
      return nullptr;
    }
    if (Key == LastKey && LastSnapshot)
      return LastSnapshot;
  }
  std::shared_ptr<const ResultSnapshot> Snap =
      Cache->lookup(Key, nullptr, SummaryCache::RequestScope{Ctx.Telem,
                                                             Ctx.Cid});
  if (!Snap)
    Error = "no cached result for key " + Key;
  return Snap;
}

/// Renders a Targets vector in the points_to response shape.
static std::string renderTargets(
    const std::vector<std::pair<std::string, bool>> &Targets) {
  std::string Out = "[";
  bool First = true;
  for (const auto &[Target, Definite] : Targets) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"target\":" + quoted(Target) +
           ",\"definite\":" + (Definite ? "true" : "false") + "}";
  }
  Out += "]";
  return Out;
}

/// Validates the optional "strategy" member and decides whether the
/// demand path should run. "" in \p Strategy = valid request, caller
/// dispatches; non-empty \p Error = protocol failure.
static bool wantDemandStrategy(const JsonValue &Req, const std::string &Cid,
                               unsigned LadderLevel, std::string &Strategy,
                               std::string &Error, bool &Explicit,
                               bool &AutoPicked) {
  Strategy = Req.getString("strategy");
  Explicit = Strategy == "demand";
  AutoPicked = false;
  if (!Strategy.empty() && Strategy != "demand" && Strategy != "exhaustive") {
    Error = "unknown strategy '" + Strategy +
            "' (expected \"demand\" or \"exhaustive\")";
    return false;
  }
  if (Explicit)
    return true;
  // Auto pick: when admission tightened this request (ladder level >= 1)
  // the pruned demand run is the cheaper way to answer — unless the
  // client pinned a snapshot ("key") or the strategy explicitly.
  if (Strategy.empty() && LadderLevel >= 1 && !Req.find("key")) {
    AutoPicked = true;
    return true;
  }
  (void)Cid;
  return false;
}

bool Server::handleDemandQuery(const JsonValue &Req, Response &Resp,
                               const RequestCtx &Ctx, bool IsAlias,
                               bool Explicit) {
  // Resolve the program text the query runs against: inline "source",
  // an embedded "corpus" program, or the last analyzed source.
  std::string Source;
  bool HaveSource = false;
  if (const JsonValue *Src = Req.find("source")) {
    Source = Src->asString();
    HaveSource = true;
  } else if (const JsonValue *Name = Req.find("corpus")) {
    const corpus::CorpusProgram *P = corpus::find(Name->asString());
    if (!P) {
      Resp.fail("unknown corpus program '" + Name->asString() + "'");
      return true;
    }
    Source = P->Source;
    HaveSource = true;
  } else {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (!LastSource.empty()) {
      Source = LastSource;
      HaveSource = true;
    }
  }
  if (!HaveSource) {
    if (!Explicit)
      return false; // auto mode: fall through to the snapshot path
    Resp.fail("demand strategy needs a \"source\" or \"corpus\" member, "
              "or a prior analyze");
    return true;
  }

  const char *Method = IsAlias ? "alias" : "points_to";
  demand::Query Q;
  if (IsAlias) {
    const JsonValue *A = Req.find("a");
    const JsonValue *B = Req.find("b");
    if (!A || !B) {
      Resp.fail("alias needs \"a\" and \"b\" access expressions");
      return true;
    }
    Q = demand::Query::alias(A->asString(), B->asString());
  } else {
    std::string Name = Req.getString("name");
    if (Name.empty()) {
      Resp.fail("points_to needs a \"name\" member");
      return true;
    }
    int64_t StmtId = -1;
    if (const JsonValue *S = Req.find("stmt"))
      StmtId = static_cast<int64_t>(S->asNumber(-1));
    Q = demand::Query::pointsTo(Name, StmtId);
  }

  Ctx.Telem->add("demand.queries", 1);
  auto Start = std::chrono::steady_clock::now();
  Pipeline FE = Pipeline::frontend(Source);
  if (!FE.Prog) {
    std::string Msg = "demand: source does not parse";
    for (const Diagnostic &D : FE.Diags.diagnostics())
      if (D.Level == DiagLevel::Error) {
        Msg = D.Message;
        break;
      }
    Resp.fail(Msg);
    return true;
  }

  demand::DemandOptions DO;
  DO.Analyzer = Cfg.DefaultOpts;
  DO.Analyzer.Telem = Ctx.Telem;
  demand::DemandEngine Engine(*FE.Prog, DO);
  demand::Answer A = Engine.query(Q);
  Ctx.Telem->latency("demand.latency").recordMs(msSince(Start));

  if (A.answeredByDemand()) {
    Ctx.Telem->add("demand.answered", 1);
    Recorder->record("demand.answered", Ctx.Cid,
                     std::string("method=") + Method +
                         " visited=" + std::to_string(A.VisitedStmts) +
                         " skipped=" + std::to_string(A.SkippedStmts));
  } else if (!A.FallbackReason.empty()) {
    Ctx.Telem->add("demand.fallbacks", 1);
    Ctx.Telem->add("demand.fallback." + A.FallbackReason, 1);
    Recorder->record("demand.fallback", Ctx.Cid,
                     std::string("method=") + Method +
                         " reason=" + A.FallbackReason);
  }

  if (!A.Ok) {
    Resp.fail(A.Error.empty() ? "demand query failed" : A.Error);
    if (!A.FallbackReason.empty())
      Resp.member("fallback_reason", quoted(A.FallbackReason));
    return true;
  }
  Resp.member("strategy", quoted(A.Strategy));
  if (!A.FallbackReason.empty())
    Resp.member("fallback_reason", quoted(A.FallbackReason));
  if (A.Strategy == "demand") {
    Resp.member("visited_stmts", std::to_string(A.VisitedStmts));
    Resp.member("skipped_stmts", std::to_string(A.SkippedStmts));
  } else {
    // The fallback answered from the exhaustive run, which may itself
    // have degraded under resource budgets.
    Resp.Degraded = Engine.exhaustiveSnapshot().degraded();
  }
  if (IsAlias)
    Resp.member("aliased", A.Aliased ? "true" : "false");
  else
    Resp.member("targets", renderTargets(A.Targets));
  return true;
}

void Server::handleAlias(const JsonValue &Req, Response &Resp,
                         const RequestCtx &Ctx) {
  std::string Strategy, StratError;
  bool Explicit = false, AutoPicked = false;
  bool WantDemand = wantDemandStrategy(Req, Ctx.Cid, Ctx.LadderLevel,
                                       Strategy, StratError, Explicit,
                                       AutoPicked);
  if (!StratError.empty()) {
    Resp.fail(StratError);
    return;
  }
  if (WantDemand && handleDemandQuery(Req, Resp, Ctx, /*IsAlias=*/true,
                                      Explicit)) {
    if (AutoPicked)
      Ctx.Telem->add("demand.auto_picked", 1);
    return;
  }
  std::string Error;
  auto Snap = querySnapshot(Req, Error, Ctx);
  if (!Snap) {
    Resp.fail(Error);
    return;
  }
  Resp.Degraded = Snap->degraded();
  Resp.Cached = true;
  if (Strategy == "exhaustive")
    Resp.member("strategy", quoted("exhaustive"));
  const JsonValue *A = Req.find("a");
  const JsonValue *B = Req.find("b");
  if (!A || !B) {
    Resp.fail("alias needs \"a\" and \"b\" access expressions");
    return;
  }
  Resp.member("aliased",
              Snap->aliased(A->asString(), B->asString()) ? "true" : "false");
}

void Server::handlePointsTo(const JsonValue &Req, Response &Resp,
                            const RequestCtx &Ctx) {
  std::string Strategy, StratError;
  bool Explicit = false, AutoPicked = false;
  bool WantDemand = wantDemandStrategy(Req, Ctx.Cid, Ctx.LadderLevel,
                                       Strategy, StratError, Explicit,
                                       AutoPicked);
  if (!StratError.empty()) {
    Resp.fail(StratError);
    return;
  }
  if (WantDemand && handleDemandQuery(Req, Resp, Ctx, /*IsAlias=*/false,
                                      Explicit)) {
    if (AutoPicked)
      Ctx.Telem->add("demand.auto_picked", 1);
    return;
  }
  std::string Error;
  auto Snap = querySnapshot(Req, Error, Ctx);
  if (!Snap) {
    Resp.fail(Error);
    return;
  }
  Resp.Degraded = Snap->degraded();
  Resp.Cached = true;
  if (Strategy == "exhaustive")
    Resp.member("strategy", quoted("exhaustive"));
  std::string Name = Req.getString("name");
  if (Name.empty()) {
    Resp.fail("points_to needs a \"name\" member");
    return;
  }
  int64_t StmtId = -1;
  if (const JsonValue *S = Req.find("stmt"))
    StmtId = static_cast<int64_t>(S->asNumber(-1));
  if (Snap->locationIdByName(Name) < 0) {
    Resp.fail("unknown location '" + Name + "'");
    return;
  }
  Resp.member("targets", renderTargets(Snap->pointsToTargets(Name, StmtId)));
}

void Server::handleReadWriteSets(const JsonValue &Req, Response &Resp,
                                 const RequestCtx &Ctx) {
  std::string Error;
  auto Snap = querySnapshot(Req, Error, Ctx);
  if (!Snap) {
    Resp.fail(Error);
    return;
  }
  Resp.Degraded = Snap->degraded();
  Resp.Cached = true;
  std::string Function = Req.getString("function");

  auto RenderMap =
      [&](const std::map<std::string, std::vector<std::string>> &M) {
        std::string Out = "{";
        bool FirstFn = true;
        for (const auto &[Fn, Names] : M) {
          if (!Function.empty() && Fn != Function)
            continue;
          if (!FirstFn)
            Out += ",";
          FirstFn = false;
          Out += quoted(Fn) + ":[";
          for (size_t I = 0; I < Names.size(); ++I) {
            if (I)
              Out += ",";
            Out += quoted(Names[I]);
          }
          Out += "]";
        }
        Out += "}";
        return Out;
      };

  if (!Function.empty() && !Snap->Reads.count(Function) &&
      !Snap->Writes.count(Function)) {
    Resp.fail("unknown function '" + Function + "'");
    return;
  }
  Resp.member("reads", RenderMap(Snap->Reads));
  Resp.member("writes", RenderMap(Snap->Writes));
}

//===----------------------------------------------------------------------===//
// stats / events / invalidate
//===----------------------------------------------------------------------===//

void Server::handleStats(Response &Resp) {
  Resp.member("tool_version", quoted(version::kToolVersion));
  Resp.member("result_format", quoted(version::kResultFormatName));
  Resp.member("result_format_version",
              std::to_string(version::kResultFormatVersion));

  double UptimeMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - StartTime)
                        .count();
  char Uptime[32];
  std::snprintf(Uptime, sizeof(Uptime), "%.3f", UptimeMs);
  Resp.member("uptime_ms", Uptime);

  const SummaryCache::Stats CS = Cache->stats();
  uint64_t HitCount = CS.Hits; // MemHits is a subset of Hits
  uint64_t Lookups = HitCount + CS.Misses;
  char Ratio[32];
  std::snprintf(Ratio, sizeof(Ratio), "%.4f",
                Lookups ? static_cast<double>(HitCount) / Lookups : 0.0);
  Resp.member("cache_hit_ratio", Ratio);
  std::string CacheObj =
      "{\"hits\":" + std::to_string(CS.Hits) +
      ",\"mem_hits\":" + std::to_string(CS.MemHits) +
      ",\"misses\":" + std::to_string(CS.Misses) +
      ",\"evictions\":" + std::to_string(CS.Evictions) +
      ",\"bytes_stored\":" + std::to_string(CS.BytesStored) +
      ",\"mem_entries\":" + std::to_string(CS.MemEntries) +
      ",\"mem_bytes\":" + std::to_string(CS.MemBytes) +
      ",\"bad_blobs\":" + std::to_string(CS.BadBlobs) +
      ",\"quarantined\":" + std::to_string(CS.Quarantined) +
      ",\"write_retries\":" + std::to_string(CS.WriteRetries) + "}";
  Resp.member("cache", CacheObj);

  // Refresh the daemon memory gauges at observation time, so the stats
  // response and the next stats-JSON export agree.
  Telem->gauge("mem.peak_rss_kb", support::peakRssKb());
  Telem->gauge("mem.cache_resident_bytes", CS.MemBytes);
  std::string MemObj = "{";
  bool First = true;
  for (const auto &[Name, V] : Telem->gauges()) {
    if (Name.rfind("mem.", 0) != 0)
      continue;
    if (!First)
      MemObj += ",";
    First = false;
    MemObj += quoted(Name) + ":" + std::to_string(V);
  }
  MemObj += "}";
  Resp.member("mem", MemObj);

  Resp.member("latency", Telem->latencyJson());

  // Snapshot under the telemetry lock: other requests register counter
  // names concurrently (StateMu does not cover the telemetry maps), so
  // the raw counters() map must not be iterated live here.
  std::string Counters = "{";
  First = true;
  for (const auto &[Name, V] : Telem->countersSnapshot()) {
    if (!First)
      Counters += ",";
    First = false;
    Counters += quoted(Name) + ":" + std::to_string(V);
  }
  Counters += "}";
  Resp.member("counters", Counters);
}

void Server::handleEvents(const JsonValue &Req, Response &Resp) {
  uint64_t Limit = getU64(Req, "limit", 0);
  std::vector<FlightRecorder::Event> Events =
      Recorder->snapshot(static_cast<size_t>(Limit));
  std::string Arr = "[";
  for (size_t I = 0; I < Events.size(); ++I) {
    if (I)
      Arr += ",";
    Arr += FlightRecorder::eventJson(Events[I]);
  }
  Arr += "]";
  Resp.member("events", Arr);
  Resp.member("recorded", std::to_string(Recorder->totalRecorded()));
  Resp.member("dropped", std::to_string(Recorder->dropped()));
  Resp.member("capacity", std::to_string(Recorder->capacity()));
}

void Server::handleInvalidate(Response &Resp) {
  uint64_t Removed = Cache->invalidate();
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    LastKey.clear();
    LastSnapshot.reset();
    LastSource.clear();
  }
  Resp.member("removed_blobs", std::to_string(Removed));
}
