//===- Server.cpp - Long-lived NDJSON query daemon -----------------------------===//

#include "serve/Server.h"

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "incr/IncrementalEngine.h"
#include "serve/Json.h"
#include "support/Version.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

using namespace mcpta;
using namespace mcpta::serve;

using support::FlightRecorder;
using support::Telemetry;

//===----------------------------------------------------------------------===//
// Response assembly
//===----------------------------------------------------------------------===//

namespace {

std::string quoted(std::string_view S) {
  return "\"" + Telemetry::jsonEscape(S) + "\"";
}

/// Renders a request id for echoing. Anything unexpected echoes null.
std::string renderId(const JsonValue *Id) {
  if (!Id)
    return "null";
  switch (Id->kind()) {
  case JsonValue::Kind::Number: {
    double D = Id->asNumber();
    if (D == std::floor(D) && std::abs(D) < 9e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
      return Buf;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", D);
    return Buf;
  }
  case JsonValue::Kind::String:
    return quoted(Id->asString());
  case JsonValue::Kind::Bool:
    return Id->asBool() ? "true" : "false";
  default:
    return "null";
  }
}

uint64_t getU64(const JsonValue &Obj, std::string_view Name,
                uint64_t Default) {
  double D = Obj.getNumber(Name, static_cast<double>(Default));
  return D <= 0 ? 0 : static_cast<uint64_t>(D);
}

/// The methods the daemon understands; per-method error counters and
/// latency recorders key off this list so telemetry names stay bounded
/// no matter what clients send.
bool isKnownMethod(std::string_view M) {
  return M == "analyze" || M == "alias" || M == "points_to" ||
         M == "read_write_sets" || M == "stats" || M == "events" ||
         M == "invalidate" || M == "shutdown";
}

} // namespace

struct Server::Response {
  std::string IdJson = "null";
  bool Ok = true;
  bool Degraded = false;
  bool Cached = false;
  std::string Error;
  std::string Cid;
  /// Method-specific members, each pre-rendered as `,"name":value`.
  std::string Extra;

  void fail(std::string Msg) {
    Ok = false;
    Error = std::move(Msg);
  }
  void member(std::string_view Name, const std::string &RenderedValue) {
    Extra += ",";
    Extra += quoted(Name);
    Extra += ":";
    Extra += RenderedValue;
  }

  std::string render(double ElapsedMs) const {
    char Elapsed[32];
    std::snprintf(Elapsed, sizeof(Elapsed), "%.3f", ElapsedMs);
    std::string Out = "{\"id\":" + IdJson;
    Out += ",\"ok\":";
    Out += Ok ? "true" : "false";
    Out += ",\"degraded\":";
    Out += Degraded ? "true" : "false";
    Out += ",\"cached\":";
    Out += Cached ? "true" : "false";
    Out += ",\"elapsed_ms\":";
    Out += Elapsed;
    if (!Cid.empty())
      Out += ",\"cid\":" + quoted(Cid);
    if (!Ok)
      Out += ",\"error\":" + quoted(Error);
    Out += Extra;
    Out += "}";
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(Config C)
    : Cfg(std::move(C)),
      Telem(std::make_unique<Telemetry>(/*Enabled=*/true)),
      Recorder(std::make_unique<FlightRecorder>(Cfg.FlightRecorderCapacity)),
      Cache(std::make_unique<SummaryCache>(Cfg.Cache, Telem.get())),
      StartTime(std::chrono::steady_clock::now()) {
  Cache->setFlightRecorder(Recorder.get());
}

Server::~Server() = default;

int Server::run(std::istream &In, std::ostream &Out, std::ostream &Log) {
  Log << "pta-serve " << version::kToolVersion << " (result format "
      << version::kResultFormatName << ", version "
      << version::kResultFormatVersion << ") ready; cache dir: "
      << (Cfg.Cache.Dir.empty() ? "<memory only>" : Cfg.Cache.Dir.c_str())
      << "\n"
      << std::flush;
  std::string Line;
  bool WantShutdown = false;
  while (!WantShutdown && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Out << handleLine(Line, WantShutdown, Log) << "\n" << std::flush;
  }
  // Black-box dump: the recent event history goes to the log so a
  // post-mortem has more than aggregate counters to work with.
  std::vector<FlightRecorder::Event> Events = Recorder->snapshot();
  Log << "flight recorder: " << Events.size() << " event(s) retained, "
      << Recorder->dropped() << " dropped, capacity "
      << Recorder->capacity() << "\n";
  for (const FlightRecorder::Event &E : Events)
    Log << "  " << FlightRecorder::eventJson(E) << "\n";
  Log << std::flush;
  return 0;
}

std::string Server::handleLine(const std::string &Line, bool &WantShutdown,
                               std::ostream &Log) {
  auto Start = std::chrono::steady_clock::now();
  uint64_t Seq = RequestSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  Telem->add("serve.requests", 1);

  Response Resp;
  JsonValue Req;
  std::string ParseError;
  std::string Method;
  bool Dispatched = false;
  // Request-scoped child telemetry: the analyzer, the cache, and the
  // incremental engine write here; the daemon aggregate absorbs it when
  // the request completes. Spans stay in the child, so per-request trace
  // fragments are available without growing daemon state.
  Telemetry ReqTelem(/*Enabled=*/true);
  RequestCtx Ctx;
  Ctx.Telem = &ReqTelem;

  if (!parseJson(Line, Req, ParseError)) {
    Telem->add("serve.parse_errors", 1);
    Resp.fail("request is not valid JSON: " + ParseError);
  } else if (!Req.isObject()) {
    Resp.fail("request must be a JSON object");
  } else {
    Resp.IdJson = renderId(Req.find("id"));
    Method = Req.getString("method");
    Ctx.Cid = Req.getString("cid");
    if (Ctx.Cid.empty())
      Ctx.Cid = "r" + std::to_string(Seq);
    Resp.Cid = Ctx.Cid;
    ReqTelem.setCorrelationId(Ctx.Cid);
    Recorder->record("request.start", Ctx.Cid,
                     "method=" + (Method.empty() ? "?" : Method));
    Dispatched = true;

    if (Method == "analyze") {
      std::lock_guard<std::mutex> Lock(StateMu);
      handleAnalyze(Req, Resp, Log, Ctx);
    } else if (Method == "alias") {
      std::lock_guard<std::mutex> Lock(StateMu);
      handleAlias(Req, Resp, Ctx);
    } else if (Method == "points_to") {
      std::lock_guard<std::mutex> Lock(StateMu);
      handlePointsTo(Req, Resp, Ctx);
    } else if (Method == "read_write_sets") {
      std::lock_guard<std::mutex> Lock(StateMu);
      handleReadWriteSets(Req, Resp, Ctx);
    } else if (Method == "stats") {
      std::lock_guard<std::mutex> Lock(StateMu);
      handleStats(Resp);
    } else if (Method == "events") {
      handleEvents(Req, Resp);
    } else if (Method == "invalidate") {
      std::lock_guard<std::mutex> Lock(StateMu);
      handleInvalidate(Resp);
    } else if (Method == "shutdown") {
      Telem->add("serve.shutdown", 1);
      Recorder->record("serve.shutdown", Ctx.Cid, "");
      WantShutdown = true;
    } else {
      Resp.fail(Method.empty() ? "missing \"method\" member"
                               : "unknown method '" + Method + "'");
    }
  }
  if (!Method.empty() && Method != "shutdown")
    Telem->add("serve." + Method, Resp.Ok ? 1 : 0);
  if (!Resp.Ok) {
    Telem->add("serve.errors", 1);
    // Per-method attribution: protocol failures (bad JSON, non-object,
    // unknown/missing method) are one bucket; each known method gets
    // its own, so "analyze requests failing" and "clients sending
    // garbage" are distinguishable.
    Telem->add("serve.errors." +
                   (isKnownMethod(Method) ? Method : std::string("protocol")),
               1);
  }

  double ElapsedMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
  if (isKnownMethod(Method))
    Telem->latency("serve.latency." + Method).recordMs(ElapsedMs);

  if (Dispatched) {
    // Per-request trace fragment on demand, before the child merges
    // away. The fragment is a complete Chrome-trace document rendered
    // as a JSON value inside the response.
    if (Req.getBool("trace", false)) {
      std::ostringstream TS;
      ReqTelem.writeTraceJson(TS);
      std::string Trace = TS.str();
      while (!Trace.empty() &&
             (Trace.back() == '\n' || Trace.back() == '\r'))
        Trace.pop_back();
      Resp.member("trace", Trace);
    }
    Telem->mergeFrom(ReqTelem);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "method=%s ok=%d elapsed_ms=%.3f",
                  Method.empty() ? "?" : Method.c_str(), Resp.Ok ? 1 : 0,
                  ElapsedMs);
    Recorder->record(Resp.Ok ? "request.end" : "request.error", Ctx.Cid,
                     Buf);
  }
  return Resp.render(ElapsedMs);
}

//===----------------------------------------------------------------------===//
// analyze
//===----------------------------------------------------------------------===//

void Server::handleAnalyze(const JsonValue &Req, Response &Resp,
                           std::ostream &Log, const RequestCtx &Ctx) {
  // Resolve the source text: inline "source" or an embedded "corpus"
  // program (handy for smoke tests — no C-in-JSON escaping needed).
  std::string Source;
  if (const JsonValue *Src = Req.find("source")) {
    Source = Src->asString();
  } else if (const JsonValue *Name = Req.find("corpus")) {
    const corpus::CorpusProgram *P = corpus::find(Name->asString());
    if (!P) {
      Resp.fail("unknown corpus program '" + Name->asString() + "'");
      return;
    }
    Source = P->Source;
  } else {
    Resp.fail("analyze needs a \"source\" or \"corpus\" member");
    return;
  }

  // Per-request options/limits override the server defaults and ride on
  // the existing resource-governance layer.
  pta::Analyzer::Options Opts = Cfg.DefaultOpts;
  // The child telemetry observes the analysis without affecting it: the
  // options fingerprint (and therefore the cache key) excludes the
  // sink, and the analyzer's behavior never branches on it.
  Opts.Telem = Ctx.Telem;
  if (const JsonValue *O = Req.find("options")) {
    std::string FnPtr = O->getString("fnptr");
    if (FnPtr == "precise")
      Opts.FnPtr = pta::FnPtrMode::Precise;
    else if (FnPtr == "all")
      Opts.FnPtr = pta::FnPtrMode::AllFunctions;
    else if (FnPtr == "address-taken")
      Opts.FnPtr = pta::FnPtrMode::AddressTaken;
    else if (!FnPtr.empty()) {
      Resp.fail("unknown fnptr mode '" + FnPtr + "'");
      return;
    }
    Opts.ContextSensitive =
        O->getBool("context_sensitive", Opts.ContextSensitive);
    Opts.RecordStmtSets = O->getBool("record_stmt_sets", Opts.RecordStmtSets);
    Opts.SymbolicLevelLimit = static_cast<unsigned>(
        getU64(*O, "symbolic_level_limit", Opts.SymbolicLevelLimit));
    Opts.MaxLoopIterations = static_cast<unsigned>(
        getU64(*O, "max_loop_iterations", Opts.MaxLoopIterations));
  }
  if (const JsonValue *L = Req.find("limits")) {
    support::AnalysisLimits &Lim = Opts.Limits;
    Lim.TimeoutMs = getU64(*L, "timeout_ms", Lim.TimeoutMs);
    Lim.MaxStmtVisits = getU64(*L, "max_stmt_visits", Lim.MaxStmtVisits);
    Lim.MaxLocations = getU64(*L, "max_locations", Lim.MaxLocations);
    Lim.MaxIGNodes = getU64(*L, "max_ig_nodes", Lim.MaxIGNodes);
    Lim.MaxRecPasses = getU64(*L, "max_rec_passes", Lim.MaxRecPasses);
  }

  const std::string FP = optionsFingerprint(Opts);
  const std::string Key = SummaryCache::key(Source, FP);
  const bool WantIncremental = Req.getBool("incremental", false);
  const SummaryCache::RequestScope Scope{Ctx.Telem, Ctx.Cid};

  std::string CacheWarning;
  std::shared_ptr<const ResultSnapshot> Snap =
      Cache->lookup(Key, &CacheWarning, Scope);
  if (!CacheWarning.empty())
    Log << "warning: " << CacheWarning << "\n";

  auto BaselineIt = BaselineByFingerprint.end();
  if (WantIncremental && !Snap)
    BaselineIt = BaselineByFingerprint.find(FP);

  if (Snap) {
    Resp.Cached = true;
    if (WantIncremental) {
      // An exact cache hit answers without re-analyzing anything.
      Resp.member("incremental", "false");
      Resp.member("fallback_reason", quoted("cache-hit"));
    }
  } else if (BaselineIt != BaselineByFingerprint.end()) {
    incr::IncrOutput O = incr::IncrementalEngine::reanalyze(
        *BaselineIt->second, Source, Opts, Ctx.Telem);
    if (!O.Ok) {
      Resp.fail(O.Error);
      return;
    }
    if (!O.Stats.FallbackReason.empty())
      Recorder->record("incr.fallback", Ctx.Cid,
                       "reason=" + O.Stats.FallbackReason);
    std::string StoreWarning;
    Snap = Cache->store(Key, std::move(O.Snapshot), &StoreWarning, Scope);
    if (!StoreWarning.empty())
      Log << "warning: " << StoreWarning << "\n";
    Resp.member("incremental", O.Stats.UsedIncremental ? "true" : "false");
    Resp.member("dirty_functions", std::to_string(O.Stats.DirtyFunctions));
    Resp.member("memo_reuse", std::to_string(O.Stats.MemoReuse));
    if (!O.Stats.FallbackReason.empty())
      Resp.member("fallback_reason", quoted(O.Stats.FallbackReason));
  } else {
    Pipeline P = Pipeline::analyzeSource(Source, Opts);
    if (P.Diags.hasErrors()) {
      // Frontend failures are not cached: the response carries the
      // diagnostics and the next attempt re-parses.
      std::string Msg = "analysis failed";
      for (const Diagnostic &D : P.Diags.diagnostics())
        if (D.Level == DiagLevel::Error) {
          Msg = D.Message;
          break;
        }
      Resp.fail(Msg);
      return;
    }
    ResultSnapshot Captured =
        ResultSnapshot::capture(*P.Prog, P.Analysis, FP);
    std::string StoreWarning;
    Snap = Cache->store(Key, std::move(Captured), &StoreWarning, Scope);
    if (!StoreWarning.empty())
      Log << "warning: " << StoreWarning << "\n";
    if (WantIncremental) {
      // First analysis under these options: nothing to diff against.
      Resp.member("incremental", "false");
      Resp.member("fallback_reason", quoted("no-baseline"));
    }
  }

  LastKey = Key;
  LastSnapshot = Snap;
  // Whatever this request produced (or re-validated) is the baseline
  // for the next incremental request under the same options.
  BaselineByFingerprint[FP] = Snap;

  Resp.Degraded = Snap->degraded();
  // Degradations go to the daemon log once per (kind, context) for the
  // server's lifetime; the structured list is always in the response,
  // and each one leaves a flight-recorder event attributed to this
  // request's correlation id.
  for (const DegradationRecord &D : Snap->Degradations) {
    const char *KindName =
        support::limitKindName(static_cast<support::LimitKind>(D.Kind));
    Recorder->record("degradation", Ctx.Cid,
                     std::string(KindName) + ": " + D.Context);
    if (LoggedDegradations.insert(std::string(KindName) + "|" + D.Context)
            .second)
      Log << "degraded: [" << KindName << "] " << D.Context << ": "
          << D.Action << "\n";
  }

  Resp.member("key", quoted(Key));
  Resp.member("analyzed", Snap->Analyzed ? "true" : "false");
  Resp.member("locations", std::to_string(Snap->Locations.size()));
  Resp.member("ig_nodes", std::to_string(Snap->IG.size()));
  Resp.member("main_out_pairs", std::to_string(Snap->MainOut.size()));
  Resp.member("alias_pairs", std::to_string(Snap->AliasPairs.size()));
  std::string Warnings = "[";
  for (size_t I = 0; I < Snap->Warnings.size(); ++I) {
    if (I)
      Warnings += ",";
    Warnings += quoted(Snap->Warnings[I]);
  }
  Warnings += "]";
  Resp.member("warnings", Warnings);
  std::string Degs = "[";
  for (size_t I = 0; I < Snap->Degradations.size(); ++I) {
    const DegradationRecord &D = Snap->Degradations[I];
    if (I)
      Degs += ",";
    Degs += "{\"kind\":" +
            quoted(support::limitKindName(
                static_cast<support::LimitKind>(D.Kind))) +
            ",\"context\":" + quoted(D.Context) +
            ",\"action\":" + quoted(D.Action) + "}";
  }
  Degs += "]";
  Resp.member("degradations", Degs);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::shared_ptr<const ResultSnapshot>
Server::querySnapshot(const JsonValue &Req, std::string &Error,
                      const RequestCtx &Ctx) {
  std::string Key = Req.getString("key");
  if (Key.empty()) {
    if (LastSnapshot)
      return LastSnapshot;
    Error = "no result to query: analyze first or pass a \"key\"";
    return nullptr;
  }
  if (Key == LastKey && LastSnapshot)
    return LastSnapshot;
  std::shared_ptr<const ResultSnapshot> Snap =
      Cache->lookup(Key, nullptr, SummaryCache::RequestScope{Ctx.Telem,
                                                             Ctx.Cid});
  if (!Snap)
    Error = "no cached result for key " + Key;
  return Snap;
}

void Server::handleAlias(const JsonValue &Req, Response &Resp,
                         const RequestCtx &Ctx) {
  std::string Error;
  auto Snap = querySnapshot(Req, Error, Ctx);
  if (!Snap) {
    Resp.fail(Error);
    return;
  }
  Resp.Degraded = Snap->degraded();
  Resp.Cached = true;
  const JsonValue *A = Req.find("a");
  const JsonValue *B = Req.find("b");
  if (!A || !B) {
    Resp.fail("alias needs \"a\" and \"b\" access expressions");
    return;
  }
  Resp.member("aliased",
              Snap->aliased(A->asString(), B->asString()) ? "true" : "false");
}

void Server::handlePointsTo(const JsonValue &Req, Response &Resp,
                            const RequestCtx &Ctx) {
  std::string Error;
  auto Snap = querySnapshot(Req, Error, Ctx);
  if (!Snap) {
    Resp.fail(Error);
    return;
  }
  Resp.Degraded = Snap->degraded();
  Resp.Cached = true;
  std::string Name = Req.getString("name");
  if (Name.empty()) {
    Resp.fail("points_to needs a \"name\" member");
    return;
  }
  int64_t StmtId = -1;
  if (const JsonValue *S = Req.find("stmt"))
    StmtId = static_cast<int64_t>(S->asNumber(-1));
  if (Snap->locationIdByName(Name) < 0) {
    Resp.fail("unknown location '" + Name + "'");
    return;
  }
  std::string Targets = "[";
  bool First = true;
  for (const auto &[Target, Definite] : Snap->pointsToTargets(Name, StmtId)) {
    if (!First)
      Targets += ",";
    First = false;
    Targets += "{\"target\":" + quoted(Target) +
               ",\"definite\":" + (Definite ? "true" : "false") + "}";
  }
  Targets += "]";
  Resp.member("targets", Targets);
}

void Server::handleReadWriteSets(const JsonValue &Req, Response &Resp,
                                 const RequestCtx &Ctx) {
  std::string Error;
  auto Snap = querySnapshot(Req, Error, Ctx);
  if (!Snap) {
    Resp.fail(Error);
    return;
  }
  Resp.Degraded = Snap->degraded();
  Resp.Cached = true;
  std::string Function = Req.getString("function");

  auto RenderMap =
      [&](const std::map<std::string, std::vector<std::string>> &M) {
        std::string Out = "{";
        bool FirstFn = true;
        for (const auto &[Fn, Names] : M) {
          if (!Function.empty() && Fn != Function)
            continue;
          if (!FirstFn)
            Out += ",";
          FirstFn = false;
          Out += quoted(Fn) + ":[";
          for (size_t I = 0; I < Names.size(); ++I) {
            if (I)
              Out += ",";
            Out += quoted(Names[I]);
          }
          Out += "]";
        }
        Out += "}";
        return Out;
      };

  if (!Function.empty() && !Snap->Reads.count(Function) &&
      !Snap->Writes.count(Function)) {
    Resp.fail("unknown function '" + Function + "'");
    return;
  }
  Resp.member("reads", RenderMap(Snap->Reads));
  Resp.member("writes", RenderMap(Snap->Writes));
}

//===----------------------------------------------------------------------===//
// stats / events / invalidate
//===----------------------------------------------------------------------===//

void Server::handleStats(Response &Resp) {
  Resp.member("tool_version", quoted(version::kToolVersion));
  Resp.member("result_format", quoted(version::kResultFormatName));
  Resp.member("result_format_version",
              std::to_string(version::kResultFormatVersion));

  double UptimeMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - StartTime)
                        .count();
  char Uptime[32];
  std::snprintf(Uptime, sizeof(Uptime), "%.3f", UptimeMs);
  Resp.member("uptime_ms", Uptime);

  const SummaryCache::Stats &CS = Cache->stats();
  uint64_t HitCount = CS.Hits; // MemHits is a subset of Hits
  uint64_t Lookups = HitCount + CS.Misses;
  char Ratio[32];
  std::snprintf(Ratio, sizeof(Ratio), "%.4f",
                Lookups ? static_cast<double>(HitCount) / Lookups : 0.0);
  Resp.member("cache_hit_ratio", Ratio);
  std::string CacheObj = "{\"hits\":" + std::to_string(CS.Hits) +
                         ",\"mem_hits\":" + std::to_string(CS.MemHits) +
                         ",\"misses\":" + std::to_string(CS.Misses) +
                         ",\"evictions\":" + std::to_string(CS.Evictions) +
                         ",\"bytes_stored\":" + std::to_string(CS.BytesStored) +
                         ",\"mem_entries\":" + std::to_string(CS.MemEntries) +
                         ",\"mem_bytes\":" + std::to_string(CS.MemBytes) +
                         ",\"bad_blobs\":" + std::to_string(CS.BadBlobs) + "}";
  Resp.member("cache", CacheObj);

  // Refresh the daemon memory gauges at observation time, so the stats
  // response and the next stats-JSON export agree.
  Telem->gauge("mem.peak_rss_kb", support::peakRssKb());
  Telem->gauge("mem.cache_resident_bytes", CS.MemBytes);
  std::string MemObj = "{";
  bool First = true;
  for (const auto &[Name, V] : Telem->gauges()) {
    if (Name.rfind("mem.", 0) != 0)
      continue;
    if (!First)
      MemObj += ",";
    First = false;
    MemObj += quoted(Name) + ":" + std::to_string(V);
  }
  MemObj += "}";
  Resp.member("mem", MemObj);

  Resp.member("latency", Telem->latencyJson());

  // Snapshot under the telemetry lock: other requests register counter
  // names concurrently (StateMu does not cover the telemetry maps), so
  // the raw counters() map must not be iterated live here.
  std::string Counters = "{";
  First = true;
  for (const auto &[Name, V] : Telem->countersSnapshot()) {
    if (!First)
      Counters += ",";
    First = false;
    Counters += quoted(Name) + ":" + std::to_string(V);
  }
  Counters += "}";
  Resp.member("counters", Counters);
}

void Server::handleEvents(const JsonValue &Req, Response &Resp) {
  uint64_t Limit = getU64(Req, "limit", 0);
  std::vector<FlightRecorder::Event> Events =
      Recorder->snapshot(static_cast<size_t>(Limit));
  std::string Arr = "[";
  for (size_t I = 0; I < Events.size(); ++I) {
    if (I)
      Arr += ",";
    Arr += FlightRecorder::eventJson(Events[I]);
  }
  Arr += "]";
  Resp.member("events", Arr);
  Resp.member("recorded", std::to_string(Recorder->totalRecorded()));
  Resp.member("dropped", std::to_string(Recorder->dropped()));
  Resp.member("capacity", std::to_string(Recorder->capacity()));
}

void Server::handleInvalidate(Response &Resp) {
  uint64_t Removed = Cache->invalidate();
  LastKey.clear();
  LastSnapshot.reset();
  Resp.member("removed_blobs", std::to_string(Removed));
}
