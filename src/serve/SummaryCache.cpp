//===- SummaryCache.cpp - Persistent analysis-result cache ---------------------===//

#include "serve/SummaryCache.h"

#include "support/FaultInjection.h"
#include "support/Version.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace mcpta;
using namespace mcpta::serve;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Content addressing
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a over the key material, run twice with different offset bases
/// for a 128-bit address. Not cryptographic — the cache defends against
/// accidents, not adversaries; a collision requires ~2^64 distinct
/// translation units in one cache directory.
uint64_t fnv1a(std::string_view Data, uint64_t H) {
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

std::string SummaryCache::key(std::string_view Source,
                              std::string_view OptionsFingerprint) {
  // Separators keep (source, fingerprint) concatenation unambiguous.
  std::string Material = std::string(version::kResultFormatName) + ":" +
                         std::to_string(version::kResultFormatVersion) + "\x1f";
  Material.append(OptionsFingerprint);
  Material += '\x1f';
  Material.append(Source);
  uint64_t H1 = fnv1a(Material, 0xcbf29ce484222325ull);
  uint64_t H2 = fnv1a(Material, 0x9ae16a3b2f90404full);
  return hex64(H1) + hex64(H2);
}

std::string SummaryCache::key(std::string_view Source,
                              const pta::Analyzer::Options &Opts) {
  return key(Source, optionsFingerprint(Opts));
}

//===----------------------------------------------------------------------===//
// Cache
//===----------------------------------------------------------------------===//

SummaryCache::SummaryCache(Config C, support::Telemetry *Telem)
    : Cfg(std::move(C)), Telem(Telem) {}

void SummaryCache::bump(const char *Name, uint64_t Delta,
                        const RequestScope &Req) {
  // Exactly one sink per increment: the request scope when one is
  // attached (the server folds it into the daemon aggregate via
  // Telemetry::mergeFrom when the request completes), otherwise the
  // construction-time aggregate directly. Writing to both would double
  // the aggregate after the merge.
  if (Req.Telem && Req.Telem != Telem)
    Req.Telem->add(Name, Delta);
  else if (Telem)
    Telem->add(Name, Delta);
}

void SummaryCache::event(std::string_view Kind, const RequestScope &Req,
                         std::string_view Detail) {
  if (Recorder)
    Recorder->record(Kind, Req.Cid, Detail);
}

support::FaultInjection *SummaryCache::faults(const RequestScope &Req) const {
  return Req.Faults ? Req.Faults : Faults;
}

void SummaryCache::quarantineBlob(const std::string &Key,
                                  const RequestScope &Req) {
  // Move the carcass aside rather than deleting it: a post-mortem can
  // still inspect <key>.mcpta.bad, and the .mcpta path is free for the
  // next store to republish. Rename failure falls back to removal so
  // the poisoned blob never survives under its addressable name.
  std::error_code EC;
  fs::rename(blobPath(Key), blobPath(Key) + ".bad", EC);
  if (EC)
    fs::remove(blobPath(Key), EC);
  {
    Shard &Sh = shardFor(Key);
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    Sh.Quarantined.insert(Key);
  }
  S.Quarantined.fetch_add(1, std::memory_order_relaxed);
  bump("cache.quarantined", 1, Req);
  event("cache.quarantine", Req, "key=" + Key);
}

std::string SummaryCache::blobPath(const std::string &Key) const {
  return Cfg.Dir + "/" + Key + ".mcpta";
}

void SummaryCache::evictToFit(const RequestScope &Req) {
  // Fast path: bounds hold, no eviction lock taken.
  if (S.MemEntries.load(std::memory_order_relaxed) <= Cfg.MaxMemEntries &&
      S.MemBytes.load(std::memory_order_relaxed) <= Cfg.MaxMemBytes)
    return;

  std::lock_guard<std::mutex> EvictLock(EvictMu);
  while (S.MemEntries.load(std::memory_order_relaxed) > Cfg.MaxMemEntries ||
         S.MemBytes.load(std::memory_order_relaxed) > Cfg.MaxMemBytes) {
    // Pick the globally-oldest entry: smallest recency stamp across all
    // shards. The scan is O(entries) but the LRU is bounded and small
    // (default 64 entries) and eviction is the cold path — the trade
    // buys a contention-free, list-free hit path.
    Shard *VictimShard = nullptr;
    std::string VictimKey;
    uint64_t VictimStamp = std::numeric_limits<uint64_t>::max();
    for (Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.Mu);
      for (const auto &[Key, E] : Sh.Mem) {
        if (E.Stamp < VictimStamp) {
          VictimStamp = E.Stamp;
          VictimKey = Key;
          VictimShard = &Sh;
        }
      }
    }
    if (!VictimShard)
      return; // nothing left to evict

    std::lock_guard<std::mutex> Lock(VictimShard->Mu);
    auto It = VictimShard->Mem.find(VictimKey);
    if (It == VictimShard->Mem.end() || It->second.Stamp != VictimStamp)
      continue; // touched or replaced between scan and erase: re-pick
    event("cache.eviction", Req, "key=" + VictimKey);
    S.MemBytes.fetch_sub(It->second.Bytes, std::memory_order_relaxed);
    S.MemEntries.fetch_sub(1, std::memory_order_relaxed);
    VictimShard->Mem.erase(It);
    S.Evictions.fetch_add(1, std::memory_order_relaxed);
    bump("cache.evictions", 1, Req);
  }
}

void SummaryCache::insertMem(const std::string &Key,
                             std::shared_ptr<const ResultSnapshot> Snap,
                             uint64_t Bytes, const RequestScope &Req) {
  Shard &Sh = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto It = Sh.Mem.find(Key);
    if (It != Sh.Mem.end()) {
      S.MemBytes.fetch_sub(It->second.Bytes, std::memory_order_relaxed);
      It->second = Entry{std::move(Snap), Bytes, nextStamp()};
    } else {
      Sh.Mem[Key] = Entry{std::move(Snap), Bytes, nextStamp()};
      S.MemEntries.fetch_add(1, std::memory_order_relaxed);
    }
    S.MemBytes.fetch_add(Bytes, std::memory_order_relaxed);
  }
  evictToFit(Req);
}

std::shared_ptr<const ResultSnapshot>
SummaryCache::lookup(const std::string &Key, std::string *Warning,
                     RequestScope Req) {
  Shard &Sh = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto It = Sh.Mem.find(Key);
    if (It != Sh.Mem.end()) {
      It->second.Stamp = nextStamp();
      S.Hits.fetch_add(1, std::memory_order_relaxed);
      S.MemHits.fetch_add(1, std::memory_order_relaxed);
      bump("cache.hits", 1, Req);
      bump("cache.mem_hits", 1, Req);
      event("cache.hit", Req, "tier=mem key=" + Key);
      return It->second.Snapshot;
    }

    // Negative cache: a quarantined key was already reported once; skip
    // the disk (the carcass lives at <key>.mcpta.bad) until a store
    // republishes it.
    if (Sh.Quarantined.count(Key)) {
      S.Misses.fetch_add(1, std::memory_order_relaxed);
      bump("cache.misses", 1, Req);
      bump("cache.quarantine_skips", 1, Req);
      event("cache.miss", Req, "key=" + Key + " quarantined=1");
      return nullptr;
    }
  }

  // Disk tier — no locks held across the read or the deserialize. Two
  // threads racing on the same cold key may both read the blob; the
  // second insertMem replaces the first with identical content.
  if (!Cfg.Dir.empty()) {
    std::ifstream In(blobPath(Key), std::ios::binary);
    if (In) {
      support::FaultInjection *FI = faults(Req);
      if (FI && FI->shouldFire("cache.read_io")) {
        // Injected transient read failure: a miss with a warning, no
        // quarantine — the blob itself is presumed fine.
        S.ReadIoErrors.fetch_add(1, std::memory_order_relaxed);
        bump("cache.read_io_errors", 1, Req);
        event("cache.read_error", Req, "key=" + Key + " injected=1");
        if (Warning)
          *Warning = "cache blob for key " + Key +
                     " could not be read (IO error); treated as a miss";
      } else {
        std::ostringstream SS;
        SS << In.rdbuf();
        std::string Blob = SS.str();
        if (In.bad()) {
          S.ReadIoErrors.fetch_add(1, std::memory_order_relaxed);
          bump("cache.read_io_errors", 1, Req);
          event("cache.read_error", Req, "key=" + Key);
          if (Warning)
            *Warning = "cache blob for key " + Key +
                       " could not be read (IO error); treated as a miss";
        } else {
          if (FI && !Blob.empty() && FI->shouldFire("cache.corrupt")) {
            // Injected corruption: mangle the bytes we just read so the
            // real deserialize-failure path runs end to end.
            Blob.resize(Blob.size() / 2 + 1);
            Blob[0] ^= 0x5a;
          }
          ResultSnapshot Snap;
          std::string Err;
          if (deserialize(Blob, Snap, Err)) {
            auto Shared =
                std::make_shared<const ResultSnapshot>(std::move(Snap));
            insertMem(Key, Shared, Blob.size(), Req);
            S.Hits.fetch_add(1, std::memory_order_relaxed);
            bump("cache.hits", 1, Req);
            bump("cache.disk_hits", 1, Req);
            event("cache.hit", Req, "tier=disk key=" + Key);
            return Shared;
          }
          // Bad blob: tolerate as a miss, report once, and quarantine
          // so the next lookup neither re-reads nor re-warns.
          S.BadBlobs.fetch_add(1, std::memory_order_relaxed);
          bump("cache.bad_blobs", 1, Req);
          event("cache.bad_blob", Req, "key=" + Key);
          if (Warning)
            *Warning = "cache blob for key " + Key +
                       " is unreadable and was quarantined: " + Err;
          quarantineBlob(Key, Req);
        }
      }
    }
  }

  S.Misses.fetch_add(1, std::memory_order_relaxed);
  bump("cache.misses", 1, Req);
  event("cache.miss", Req, "key=" + Key);
  return nullptr;
}

std::shared_ptr<const ResultSnapshot>
SummaryCache::store(const std::string &Key, ResultSnapshot Snapshot,
                    std::string *Warning, RequestScope Req) {
  // Serialization and all disk IO run lock-free; only the shard-map
  // mutations below take a mutex.
  std::string Blob = serialize(Snapshot);
  S.BytesStored.fetch_add(Blob.size(), std::memory_order_relaxed);
  bump("cache.bytes", Blob.size(), Req);
  bump("cache.stores", 1, Req);
  event("cache.store", Req,
        "key=" + Key + " bytes=" + std::to_string(Blob.size()));
  // A fresh blob under this key lifts any quarantine: the key is
  // addressable again.
  {
    Shard &Sh = shardFor(Key);
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    Sh.Quarantined.erase(Key);
  }

  if (!Cfg.Dir.empty()) {
    std::error_code EC;
    fs::create_directories(Cfg.Dir, EC);
    // Atomic publish: write a temp file, then rename into place, so a
    // concurrent reader (or a crash mid-write) never sees a torn blob.
    // The temp name carries a process-wide sequence number so two
    // threads storing the same key never share a temp file. Transient
    // write failures (disk pressure, injected cache.write_io) retry
    // with bounded exponential backoff plus a deterministic per-key
    // jitter; no lock is held across the sleeps.
    const std::string Tmp =
        blobPath(Key) + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(TmpSeq.fetch_add(1, std::memory_order_relaxed));
    support::FaultInjection *FI = faults(Req);
    constexpr unsigned MaxAttempts = 3;
    bool Written = false;
    for (unsigned Attempt = 0; Attempt < MaxAttempts && !Written; ++Attempt) {
      if (Attempt) {
        S.WriteRetries.fetch_add(1, std::memory_order_relaxed);
        bump("cache.write_retries", 1, Req);
        event("cache.write_retry", Req,
              "key=" + Key + " attempt=" + std::to_string(Attempt + 1));
        uint64_t BackoffUs = 1000ull << (Attempt - 1);
        BackoffUs += fnv1a(Key, 0xcbf29ce484222325ull + Attempt) % 400;
        std::this_thread::sleep_for(std::chrono::microseconds(BackoffUs));
      }
      if (FI && FI->shouldFire("cache.write_io"))
        continue; // injected write failure: this attempt never happened
      {
        std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
        Out.write(Blob.data(), static_cast<std::streamsize>(Blob.size()));
        Written = bool(Out);
      }
      if (Written) {
        fs::rename(Tmp, blobPath(Key), EC);
        if (EC)
          Written = false;
      }
      if (!Written)
        fs::remove(Tmp, EC);
    }
    if (!Written) {
      if (Warning)
        *Warning = "cache: cannot persist blob for key " + Key + " under '" +
                   Cfg.Dir + "' after " + std::to_string(MaxAttempts) +
                   " attempts; continuing memory-only";
      bump("cache.write_failures", 1, Req);
      event("cache.write_failure", Req, "key=" + Key);
    }
  }

  auto Shared = std::make_shared<const ResultSnapshot>(std::move(Snapshot));
  insertMem(Key, Shared, Blob.size(), Req);
  return Shared;
}

uint64_t SummaryCache::invalidate() {
  // EvictMu keeps a concurrent eviction from racing the teardown; shard
  // locks are taken one at a time, so a concurrent store lands either
  // before the sweep of its shard (dropped) or after (kept).
  std::lock_guard<std::mutex> EvictLock(EvictMu);
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    for (const auto &[Key, E] : Sh.Mem) {
      S.MemBytes.fetch_sub(E.Bytes, std::memory_order_relaxed);
      S.MemEntries.fetch_sub(1, std::memory_order_relaxed);
    }
    Sh.Mem.clear();
    Sh.Quarantined.clear();
  }

  uint64_t Removed = 0;
  if (!Cfg.Dir.empty()) {
    std::error_code EC;
    for (const fs::directory_entry &E : fs::directory_iterator(Cfg.Dir, EC)) {
      if (!E.is_regular_file())
        continue;
      // Live blobs count toward the removal total; quarantined *.bad
      // carcasses are swept alongside but are already non-addressable.
      if (E.path().extension() == ".mcpta") {
        std::error_code RemoveEC;
        if (fs::remove(E.path(), RemoveEC))
          ++Removed;
      } else if (E.path().extension() == ".bad") {
        std::error_code RemoveEC;
        fs::remove(E.path(), RemoveEC);
      }
    }
  }
  bump("cache.invalidations");
  return Removed;
}
