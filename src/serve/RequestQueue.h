//===- RequestQueue.h - Bounded request queue for the serve pool -*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded multi-producer/multi-consumer queue between the serve
/// daemon's reader and its worker pool (docs/SERVING.md, "Concurrency
/// model"). Capacity is the admission-control backstop: push() never
/// blocks — a full queue returns Full and the reader sheds the request
/// with an `overloaded` error instead of queueing unboundedly.
///
/// close() seals the producer side for orderly shutdown: pushes are
/// refused with Closed, but items already queued keep draining, so
/// requests accepted before a `shutdown` still get answers. pop()
/// blocks until an item is available or the queue is closed and empty.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_SERVE_REQUESTQUEUE_H
#define MCPTA_SERVE_REQUESTQUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace mcpta {
namespace serve {

class RequestQueue {
public:
  struct Item {
    std::string Line;
    uint64_t Seq = 0;
    /// Correlation id the reader scraped from the line (best effort;
    /// "" for requests that carry none — anonymous requests therefore
    /// share one fairness bucket). The per-cid fairness accounting of
    /// pushFair() treats each distinct cid as one tenant.
    std::string Cid;
    /// When the reader accepted the line; workers derive the queue-wait
    /// component of the request's admission budget from it.
    std::chrono::steady_clock::time_point EnqueuedAt;
  };

  enum class PushResult { Ok, Full, Closed };

  explicit RequestQueue(size_t Capacity) : Cap(Capacity ? Capacity : 1) {}

  /// Non-blocking enqueue: Full when at capacity (the caller sheds),
  /// Closed after close() (the caller rejects with a shutdown error).
  PushResult push(Item I) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (IsClosed)
        return PushResult::Closed;
      if (Q.size() >= Cap)
        return PushResult::Full;
      Q.push_back(std::move(I));
    }
    Cv.notify_one();
    return PushResult::Ok;
  }

  /// Fairness-aware enqueue (docs/SERVING.md, "Per-tenant fairness").
  /// Behaves like push() while there is room. On a full queue it
  /// computes per-cid occupancy: if some tenant holds strictly more
  /// queued slots than the incoming request's tenant, the *newest*
  /// queued item of the heaviest tenant (smallest cid on ties) is
  /// evicted into \p Evicted (\p DidEvict = true) and the incoming item
  /// takes its slot — overload sheds the tenant hogging the queue, not
  /// whoever arrives next. If the incoming tenant is itself (one of)
  /// the heaviest, returns Full and the caller sheds the newcomer as
  /// before.
  PushResult pushFair(Item I, Item &Evicted, bool &DidEvict) {
    DidEvict = false;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (IsClosed)
        return PushResult::Closed;
      if (Q.size() >= Cap) {
        std::map<std::string, size_t> Count;
        for (const Item &It : Q)
          ++Count[It.Cid];
        size_t Mine = 0;
        auto MineIt = Count.find(I.Cid);
        if (MineIt != Count.end())
          Mine = MineIt->second;
        const std::string *Heaviest = nullptr;
        size_t Max = 0;
        for (const auto &KV : Count)
          if (KV.second > Max) { // ascending keys: first max = smallest cid
            Max = KV.second;
            Heaviest = &KV.first;
          }
        if (!Heaviest || Max <= Mine)
          return PushResult::Full;
        for (auto It = Q.rbegin(); It != Q.rend(); ++It)
          if (It->Cid == *Heaviest) {
            Evicted = std::move(*It);
            Q.erase(std::next(It).base());
            DidEvict = true;
            break;
          }
      }
      Q.push_back(std::move(I));
    }
    Cv.notify_one();
    return PushResult::Ok;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  /// Returns false only in the latter case (the consumer's exit signal).
  bool pop(Item &Out) {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return !Q.empty() || IsClosed; });
    if (Q.empty())
      return false;
    Out = std::move(Q.front());
    Q.pop_front();
    return true;
  }

  /// Seals the producer side. Idempotent; queued items still drain.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      IsClosed = true;
    }
    Cv.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Q.size();
  }

  size_t capacity() const { return Cap; }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return IsClosed;
  }

private:
  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Item> Q;
  const size_t Cap;
  bool IsClosed = false;
};

} // namespace serve
} // namespace mcpta

#endif // MCPTA_SERVE_REQUESTQUEUE_H
