//===- Serialize.cpp - mcpta-result-v1 binary serialization --------------------===//

#include "serve/Serialize.h"

#include "clients/AliasPairs.h"
#include "clients/ReadWriteSets.h"
#include "ig/InvocationGraph.h"
#include "support/Version.h"

#include <algorithm>
#include <cstring>
#include <map>

using namespace mcpta;
using namespace mcpta::serve;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

std::string serve::optionsFingerprint(const pta::Analyzer::Options &Opts) {
  const support::AnalysisLimits &L = Opts.Limits;
  std::string FP = "fnptr=";
  FP += std::to_string(static_cast<int>(Opts.FnPtr));
  FP += ";cs=";
  FP += Opts.ContextSensitive ? "1" : "0";
  FP += ";stmtsets=";
  FP += Opts.RecordStmtSets ? "1" : "0";
  FP += ";k=";
  FP += std::to_string(Opts.SymbolicLevelLimit);
  FP += ";loopmax=";
  FP += std::to_string(Opts.MaxLoopIterations);
  FP += ";timeout=";
  FP += std::to_string(L.TimeoutMs);
  FP += ";stmtvisits=";
  FP += std::to_string(L.MaxStmtVisits);
  FP += ";locs=";
  FP += std::to_string(L.MaxLocations);
  FP += ";ignodes=";
  FP += std::to_string(L.MaxIGNodes);
  FP += ";recpasses=";
  FP += std::to_string(L.MaxRecPasses);
  return FP;
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

namespace {

std::vector<Triple> flattenSet(const pta::PointsToSet &S,
                               const pta::LocationTable &Locs) {
  std::vector<Triple> Out;
  Out.reserve(S.size());
  // forEach iterates in key order (source id, then target id), which is
  // the deterministic order the format requires.
  S.forEach(Locs, [&Out](const pta::Location *Src, const pta::Location *Dst,
                         pta::Def D) {
    Out.push_back({Src->id(), Dst->id(), D == pta::Def::D ? uint8_t(1)
                                                          : uint8_t(0)});
  });
  return Out;
}

} // namespace

ResultSnapshot ResultSnapshot::capture(const simple::Program &Prog,
                                       const pta::Analyzer::Result &Res,
                                       std::string OptionsFingerprint) {
  ResultSnapshot S;
  S.OptionsFingerprint = std::move(OptionsFingerprint);
  S.Analyzed = Res.Analyzed ? 1 : 0;
  S.NumStmts = Prog.numStmts();
  S.BodyAnalyses = Res.BodyAnalyses;
  S.LoopIterations = Res.LoopIterations;
  S.MemoHits = Res.MemoHits;

  const pta::LocationTable &Locs = *Res.Locs;
  for (uint32_t Id = 0; Id < Locs.numLocations(); ++Id) {
    const pta::Location *L = Locs.byId(Id);
    const pta::Entity *E = L->root();
    LocationRecord R;
    R.Id = Id;
    R.EntityKind = static_cast<uint8_t>(E->kind());
    R.Summary = L->isSummary() ? 1 : 0;
    R.Collapsed = E->isCollapsed() ? 1 : 0;
    R.SymbolicLevel = E->symbolicLevel();
    R.Name = L->str();
    R.Owner = E->owner() ? E->owner()->name() : "";
    S.Locations.push_back(std::move(R));
  }

  if (Res.MainOut) {
    S.HasMainOut = 1;
    S.MainOut = flattenSet(*Res.MainOut, Locs);
  }

  for (uint32_t Id = 0; Id < Res.StmtIn.size(); ++Id)
    if (Res.StmtIn[Id])
      S.StmtIn.push_back({Id, flattenSet(*Res.StmtIn[Id], Locs)});

  if (Res.IG) {
    std::vector<const pta::IGNode *> Preorder = Res.IG->preorder();
    std::map<const pta::IGNode *, int32_t> Index;
    for (const pta::IGNode *N : Preorder)
      Index[N] = static_cast<int32_t>(Index.size());
    for (const pta::IGNode *N : Preorder) {
      IGNodeRecord R;
      R.Function = N->function()->name();
      R.Kind = static_cast<uint8_t>(N->kind());
      R.CallSiteId = N->callSiteId();
      R.Parent = N->parent() ? Index.at(N->parent()) : -1;
      R.RecEdge = N->recEdge() ? Index.at(N->recEdge()) : -1;
      if (N->StoredInput) {
        R.HasInput = 1;
        R.Input = flattenSet(*N->StoredInput, Locs);
      }
      if (N->StoredOutput) {
        R.HasOutput = 1;
        R.Output = flattenSet(*N->StoredOutput, Locs);
      }
      S.IG.push_back(std::move(R));
    }
  }

  for (const support::Degradation &D : Res.Degradations)
    S.Degradations.push_back(
        {static_cast<uint8_t>(D.Kind), D.Context, D.Action});
  S.Warnings = Res.Warnings;

  if (Res.MainOut)
    for (const auto &[A, B] : clients::aliasPairs(*Res.MainOut, Locs))
      S.AliasPairs.emplace_back(A, B);

  clients::ReadWriteSets RW = clients::ReadWriteSets::compute(Prog, Res);
  for (const auto &[Fn, Names] : RW.Reads)
    S.Reads.emplace(Fn, std::vector<std::string>(Names.begin(), Names.end()));
  for (const auto &[Fn, Names] : RW.Writes)
    S.Writes.emplace(Fn, std::vector<std::string>(Names.begin(), Names.end()));

  return S;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

int64_t ResultSnapshot::locationIdByName(std::string_view Name) const {
  for (const LocationRecord &L : Locations)
    if (L.Name == Name)
      return L.Id;
  return -1;
}

std::vector<std::pair<std::string, bool>>
ResultSnapshot::pointsToTargets(std::string_view Name, int64_t StmtId) const {
  std::vector<std::pair<std::string, bool>> Out;
  int64_t Id = locationIdByName(Name);
  if (Id < 0)
    return Out;
  const std::vector<Triple> *Set = nullptr;
  if (StmtId < 0) {
    if (HasMainOut)
      Set = &MainOut;
  } else {
    for (const StmtSetRecord &R : StmtIn)
      if (R.StmtId == static_cast<uint32_t>(StmtId)) {
        Set = &R.Triples;
        break;
      }
  }
  if (!Set)
    return Out;
  for (const Triple &T : *Set)
    if (T.Src == static_cast<uint32_t>(Id) && T.Dst < Locations.size())
      Out.emplace_back(Locations[T.Dst].Name, T.Definite != 0);
  return Out;
}

bool ResultSnapshot::aliased(const std::string &A, const std::string &B) const {
  std::pair<std::string, std::string> P =
      A < B ? std::make_pair(A, B) : std::make_pair(B, A);
  return std::binary_search(AliasPairs.begin(), AliasPairs.end(), P);
}

bool ResultSnapshot::operator==(const ResultSnapshot &O) const {
  return OptionsFingerprint == O.OptionsFingerprint && Analyzed == O.Analyzed &&
         NumStmts == O.NumStmts && BodyAnalyses == O.BodyAnalyses &&
         LoopIterations == O.LoopIterations && MemoHits == O.MemoHits &&
         Locations == O.Locations && HasMainOut == O.HasMainOut &&
         MainOut == O.MainOut && StmtIn == O.StmtIn && IG == O.IG &&
         Degradations == O.Degradations && Warnings == O.Warnings &&
         AliasPairs == O.AliasPairs && Reads == O.Reads && Writes == O.Writes;
}

//===----------------------------------------------------------------------===//
// Binary writer
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'M', 'C', 'P', 'T'};

class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void bytes(std::string_view S) { Buf.append(S.data(), S.size()); }

  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Interns strings in first-use order, so the emitted table (and with
/// it the whole blob) is a pure function of the snapshot contents.
class StringInterner {
public:
  uint32_t intern(const std::string &S) {
    auto [It, Inserted] = Index.emplace(S, Table.size());
    if (Inserted)
      Table.push_back(S);
    return It->second;
  }
  const std::vector<std::string> &table() const { return Table; }

private:
  std::map<std::string, uint32_t> Index;
  std::vector<std::string> Table;
};

void writeTriples(ByteWriter &W, const std::vector<Triple> &Ts) {
  W.u32(static_cast<uint32_t>(Ts.size()));
  for (const Triple &T : Ts) {
    W.u32(T.Src);
    W.u32(T.Dst);
    W.u8(T.Definite);
  }
}

} // namespace

std::string serve::serialize(const ResultSnapshot &S) {
  StringInterner Strings;
  ByteWriter Body;

  Body.u8(S.Analyzed);
  Body.u32(S.NumStmts);
  Body.u64(S.BodyAnalyses);
  Body.u64(S.LoopIterations);
  Body.u64(S.MemoHits);

  Body.u32(static_cast<uint32_t>(S.Locations.size()));
  for (const LocationRecord &L : S.Locations) {
    Body.u32(L.Id);
    Body.u8(L.EntityKind);
    Body.u8(L.Summary);
    Body.u8(L.Collapsed);
    Body.u32(L.SymbolicLevel);
    Body.u32(Strings.intern(L.Name));
    Body.u32(Strings.intern(L.Owner));
  }

  Body.u8(S.HasMainOut);
  writeTriples(Body, S.MainOut);

  Body.u32(static_cast<uint32_t>(S.StmtIn.size()));
  for (const StmtSetRecord &R : S.StmtIn) {
    Body.u32(R.StmtId);
    writeTriples(Body, R.Triples);
  }

  Body.u32(static_cast<uint32_t>(S.IG.size()));
  for (const IGNodeRecord &N : S.IG) {
    Body.u32(Strings.intern(N.Function));
    Body.u8(N.Kind);
    Body.u32(N.CallSiteId);
    Body.i32(N.Parent);
    Body.i32(N.RecEdge);
    Body.u8(N.HasInput);
    Body.u8(N.HasOutput);
    writeTriples(Body, N.Input);
    writeTriples(Body, N.Output);
  }

  Body.u32(static_cast<uint32_t>(S.Degradations.size()));
  for (const DegradationRecord &D : S.Degradations) {
    Body.u8(D.Kind);
    Body.u32(Strings.intern(D.Context));
    Body.u32(Strings.intern(D.Action));
  }

  Body.u32(static_cast<uint32_t>(S.Warnings.size()));
  for (const std::string &W : S.Warnings)
    Body.u32(Strings.intern(W));

  Body.u32(static_cast<uint32_t>(S.AliasPairs.size()));
  for (const auto &[A, B] : S.AliasPairs) {
    Body.u32(Strings.intern(A));
    Body.u32(Strings.intern(B));
  }

  for (const auto *M : {&S.Reads, &S.Writes}) {
    Body.u32(static_cast<uint32_t>(M->size()));
    for (const auto &[Fn, Names] : *M) {
      Body.u32(Strings.intern(Fn));
      Body.u32(static_cast<uint32_t>(Names.size()));
      for (const std::string &N : Names)
        Body.u32(Strings.intern(N));
    }
  }

  ByteWriter Out;
  Out.bytes(std::string_view(Magic, sizeof(Magic)));
  Out.u32(version::kResultFormatVersion);
  Out.u32(static_cast<uint32_t>(S.OptionsFingerprint.size()));
  Out.bytes(S.OptionsFingerprint);
  Out.u32(static_cast<uint32_t>(Strings.table().size()));
  for (const std::string &Str : Strings.table()) {
    Out.u32(static_cast<uint32_t>(Str.size()));
    Out.bytes(Str);
  }
  Out.bytes(Body.take());
  return Out.take();
}

//===----------------------------------------------------------------------===//
// Binary reader
//===----------------------------------------------------------------------===//

namespace {

/// Bounds-checked cursor over an untrusted blob. Every read either
/// succeeds or latches the error flag; reads after an error are no-ops,
/// so parse code can stay straight-line and check once per section.
class ByteReader {
public:
  explicit ByteReader(std::string_view Blob) : Blob(Blob) {}

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }
  size_t remaining() const { return Blob.size() - Pos; }
  bool atEnd() const { return Pos == Blob.size(); }

  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " (at byte " + std::to_string(Pos) + ")";
  }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Blob[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Blob[Pos + I]))
           << (8 * I);
    Pos += 4;
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Blob[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }
  std::string str(uint32_t Len) {
    if (!need(Len))
      return "";
    std::string S(Blob.substr(Pos, Len));
    Pos += Len;
    return S;
  }

  /// Reads an element count and validates it against the bytes left
  /// (each element occupies at least \p MinElemBytes), so corrupt
  /// counts cannot drive a multi-gigabyte allocation.
  uint32_t count(size_t MinElemBytes) {
    uint32_t N = u32();
    if (ok() && MinElemBytes && N > remaining() / MinElemBytes) {
      fail("element count " + std::to_string(N) + " exceeds blob size");
      return 0;
    }
    return N;
  }

private:
  bool need(size_t N) {
    if (!ok())
      return false;
    if (Blob.size() - Pos < N) {
      fail("truncated blob");
      return false;
    }
    return true;
  }

  std::string_view Blob;
  size_t Pos = 0;
  std::string Err;
};

bool readTriples(ByteReader &R, std::vector<Triple> &Out, size_t NumLocs) {
  uint32_t N = R.count(9);
  Out.reserve(N);
  for (uint32_t I = 0; I < N && R.ok(); ++I) {
    Triple T;
    T.Src = R.u32();
    T.Dst = R.u32();
    T.Definite = R.u8();
    if (R.ok() && (T.Src >= NumLocs || T.Dst >= NumLocs || T.Definite > 1)) {
      R.fail("triple references out-of-range location id");
      return false;
    }
    Out.push_back(T);
  }
  return R.ok();
}

/// Resolves a string-table index, failing the reader on overflow.
const std::string &tableRef(ByteReader &R,
                            const std::vector<std::string> &Table,
                            uint32_t Idx) {
  static const std::string Empty;
  if (Idx >= Table.size()) {
    R.fail("string index " + std::to_string(Idx) + " out of range");
    return Empty;
  }
  return Table[Idx];
}

} // namespace

bool serve::deserialize(std::string_view Blob, ResultSnapshot &Out,
                        std::string &Error) {
  Out = ResultSnapshot();
  ByteReader R(Blob);

  std::string Head = R.str(4);
  if (R.ok() && std::memcmp(Head.data(), Magic, 4) != 0)
    R.fail("bad magic (not an mcpta-result blob)");
  uint32_t Version = R.u32();
  if (R.ok() && Version != version::kResultFormatVersion)
    R.fail("unsupported format version " + std::to_string(Version) +
           " (this build reads version " +
           std::to_string(version::kResultFormatVersion) + ")");
  Out.OptionsFingerprint = R.str(R.u32());

  std::vector<std::string> Strings;
  uint32_t NumStrings = R.count(4);
  Strings.reserve(NumStrings);
  for (uint32_t I = 0; I < NumStrings && R.ok(); ++I)
    Strings.push_back(R.str(R.u32()));

  Out.Analyzed = R.u8();
  Out.NumStmts = R.u32();
  Out.BodyAnalyses = R.u64();
  Out.LoopIterations = R.u64();
  Out.MemoHits = R.u64();

  uint32_t NumLocs = R.count(15);
  Out.Locations.reserve(NumLocs);
  for (uint32_t I = 0; I < NumLocs && R.ok(); ++I) {
    LocationRecord L;
    L.Id = R.u32();
    L.EntityKind = R.u8();
    L.Summary = R.u8();
    L.Collapsed = R.u8();
    L.SymbolicLevel = R.u32();
    L.Name = tableRef(R, Strings, R.u32());
    L.Owner = tableRef(R, Strings, R.u32());
    if (R.ok() && L.Id != I)
      R.fail("location ids are not dense");
    Out.Locations.push_back(std::move(L));
  }

  Out.HasMainOut = R.u8();
  if (R.ok() && Out.HasMainOut > 1)
    R.fail("corrupt MainOut flag");
  readTriples(R, Out.MainOut, Out.Locations.size());

  uint32_t NumStmtSets = R.count(8);
  Out.StmtIn.reserve(NumStmtSets);
  for (uint32_t I = 0; I < NumStmtSets && R.ok(); ++I) {
    StmtSetRecord Rec;
    Rec.StmtId = R.u32();
    if (R.ok() && Rec.StmtId >= Out.NumStmts) {
      R.fail("statement id out of range");
      break;
    }
    readTriples(R, Rec.Triples, Out.Locations.size());
    Out.StmtIn.push_back(std::move(Rec));
  }

  uint32_t NumIG = R.count(23);
  Out.IG.reserve(NumIG);
  for (uint32_t I = 0; I < NumIG && R.ok(); ++I) {
    IGNodeRecord N;
    N.Function = tableRef(R, Strings, R.u32());
    N.Kind = R.u8();
    N.CallSiteId = R.u32();
    N.Parent = R.i32();
    N.RecEdge = R.i32();
    N.HasInput = R.u8();
    N.HasOutput = R.u8();
    if (R.ok() && (N.Kind > 2 || N.HasInput > 1 || N.HasOutput > 1 ||
                   N.Parent < -1 || N.RecEdge < -1 ||
                   N.Parent >= static_cast<int32_t>(I) ||
                   N.RecEdge >= static_cast<int32_t>(I))) {
      // Preorder invariant: parents and recursion targets precede their
      // referencing node.
      R.fail("corrupt invocation-graph node record");
      break;
    }
    readTriples(R, N.Input, Out.Locations.size());
    readTriples(R, N.Output, Out.Locations.size());
    Out.IG.push_back(std::move(N));
  }

  uint32_t NumDeg = R.count(9);
  Out.Degradations.reserve(NumDeg);
  for (uint32_t I = 0; I < NumDeg && R.ok(); ++I) {
    DegradationRecord D;
    D.Kind = R.u8();
    D.Context = tableRef(R, Strings, R.u32());
    D.Action = tableRef(R, Strings, R.u32());
    if (R.ok() && D.Kind >= support::NumLimitKinds) {
      R.fail("degradation kind out of range");
      break;
    }
    Out.Degradations.push_back(std::move(D));
  }

  uint32_t NumWarn = R.count(4);
  Out.Warnings.reserve(NumWarn);
  for (uint32_t I = 0; I < NumWarn && R.ok(); ++I)
    Out.Warnings.push_back(tableRef(R, Strings, R.u32()));

  uint32_t NumAlias = R.count(8);
  Out.AliasPairs.reserve(NumAlias);
  for (uint32_t I = 0; I < NumAlias && R.ok(); ++I) {
    const std::string &A = tableRef(R, Strings, R.u32());
    const std::string &B = tableRef(R, Strings, R.u32());
    Out.AliasPairs.emplace_back(A, B);
  }

  for (auto *M : {&Out.Reads, &Out.Writes}) {
    uint32_t NumFns = R.count(8);
    for (uint32_t I = 0; I < NumFns && R.ok(); ++I) {
      const std::string &Fn = tableRef(R, Strings, R.u32());
      uint32_t NumNames = R.count(4);
      std::vector<std::string> Names;
      Names.reserve(NumNames);
      for (uint32_t J = 0; J < NumNames && R.ok(); ++J)
        Names.push_back(tableRef(R, Strings, R.u32()));
      if (R.ok())
        (*M)[Fn] = std::move(Names);
    }
  }

  if (R.ok() && !R.atEnd())
    R.fail("trailing bytes after result payload");

  if (!R.ok()) {
    Error = R.error();
    Out = ResultSnapshot();
    return false;
  }
  return true;
}
